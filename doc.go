// Package repro is a from-scratch Go reproduction of "Snorkel DryBell: A
// Case Study in Deploying Weak Supervision at Industrial Scale" (Bach et
// al., SIGMOD 2019). See README.md for the architecture overview, DESIGN.md
// for the system inventory and experiment index, and EXPERIMENTS.md for
// paper-versus-measured results. The root package holds only the benchmark
// harness (bench_test.go); the library lives under internal/ and the
// runnable entry points under cmd/ and examples/.
package repro
