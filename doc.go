// Package repro is a from-scratch Go reproduction of "Snorkel DryBell: A
// Case Study in Deploying Weak Supervision at Industrial Scale" (Bach et
// al., SIGMOD 2019).
//
// The supported public API is pkg/drybell: a composable, context-aware
// Pipeline over the paper's four-stage weak-supervision flow, with
// streaming ingestion, a pluggable trainer registry, and per-stage
// observability hooks. Start there (and with README.md's quickstart);
// everything under internal/ is implementation detail behind it. The
// runnable entry points live under cmd/ and examples/, and the root
// package holds only the benchmark harness (bench_test.go).
//
// Labeling functions execute on a coordinator/worker MapReduce runtime
// (internal/mapreduce) with per-task retry budgets, speculative
// re-execution of stragglers, and DFS-checkpointed task manifests. Two
// pipeline options surface the failure model: WithRetries sets the
// per-task attempt budget, and WithResume recovers a crashed run from
// filesystem state — skipping the staged corpus, loading completed vote
// artifacts, and re-executing only tasks without committed checkpoints.
// WithStragglerAfter enables deadline-based speculation. See the
// "Distributed execution" section of README.md.
//
// The same runtime scales past one process: internal/mapreduce/remote
// (surfaced as drybell.RemotePool, WithRemoteWorkers, and
// drybell.RunRemoteWorker) runs labeling-function tasks on separate worker
// processes over HTTP — per-task leases renewed by heartbeats, lease
// expiry folding worker death and network partitions into the ordinary
// retry path, and a DFS gateway so workers hold no state. `drybelld -mode
// worker` is the stock worker binary. See the "Multi-node execution"
// section of README.md.
package repro
