// Package repro is a from-scratch Go reproduction of "Snorkel DryBell: A
// Case Study in Deploying Weak Supervision at Industrial Scale" (Bach et
// al., SIGMOD 2019).
//
// The supported public API is pkg/drybell: a composable, context-aware
// Pipeline over the paper's four-stage weak-supervision flow, with
// streaming ingestion, a pluggable trainer registry, and per-stage
// observability hooks. Start there (and with README.md's quickstart);
// everything under internal/ is implementation detail behind it. The
// runnable entry points live under cmd/ and examples/, and the root
// package holds only the benchmark harness (bench_test.go).
package repro
