// Custom labeling functions: the authoring API end to end.
//
// This example builds a small celebrity-content LF set from the template
// library (pkg/drybell/lf) — a keyword Func, a model-based threshold, an
// aggregation-based two-pass function, and combinators deriving new
// functions from existing ones — registers it as a named Set, runs the
// batch pipeline with a dev set attached, and prints the development-loop
// analysis report (coverage, overlaps, conflicts, empirical accuracy) that
// an LF author iterates against.
//
//	go run ./examples/customlf
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/corpus"
	"repro/pkg/drybell"
	"repro/pkg/drybell/lf"
)

func main() {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 4000, PositiveRate: 0.05, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// --- Templates. ---

	// Default pipeline: a pure keyword heuristic.
	gossip := lf.New(
		lf.Meta{Name: "kw_gossip", Category: lf.ContentHeuristic, Servable: true},
		func(d *corpus.Document) lf.Label {
			for _, kw := range []string{"gossip", "paparazzi", "redcarpet"} {
				if strings.Contains(d.Text(), kw) {
					return lf.Positive
				}
			}
			return lf.Abstain
		},
	)

	// Model-based pipeline: an "internal model" score pushed through the
	// template's two threshold slots.
	engagement := &lf.ModelFunc[*corpus.Document]{
		Meta:          lf.Meta{Name: "engagement_model", Category: lf.ModelBased},
		Score:         func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
		PositiveAbove: 0.88,
		NegativeBelow: 0.18,
	}

	// Aggregation-based pipeline: pass one computes corpus statistics, pass
	// two votes each document against them. The executor runs both passes.
	shortDoc := &lf.AggregateFunc[*corpus.Document]{
		Meta:    lf.Meta{Name: "unusually_short", Category: lf.SourceHeuristic},
		Extract: func(d *corpus.Document) float64 { return float64(len(d.Text())) },
		VoteWith: func(_ *corpus.Document, v float64, s lf.Summary) lf.Label {
			// Far-below-average length → low-effort content → negative.
			if v < s.Mean-1.2*s.StdDev {
				return lf.Negative
			}
			return lf.Abstain
		},
	}

	// --- Combinators. ---

	// Threshold: a one-sided heuristic classifier in one line.
	lowEngagement := lf.Threshold(
		lf.Meta{Name: "low_engagement", Category: lf.SourceHeuristic},
		func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
		lf.NeverPositive, 0.10,
	)
	// Invert: jargon implies off-topic; its inverse votes nothing here but
	// shows polarity flipping — so instead derive "not boring" sources:
	finance := lf.New(
		lf.Meta{Name: "kw_finance", Category: lf.ContentHeuristic, Servable: true},
		func(d *corpus.Document) lf.Label {
			hits := 0
			for _, kw := range []string{"dividend", "earnings", "yield"} {
				if strings.Contains(d.Text(), kw) {
					hits++
				}
			}
			if hits >= 2 {
				return lf.Positive // "this is finance content"
			}
			return lf.Abstain
		},
	)
	notCelebrity := lf.Invert(finance) // finance content ⇒ not celebrity

	// All: unanimity ensemble — strong positive only when the keyword rule
	// and the engagement model agree.
	confident, err := lf.All(
		lf.Meta{Name: "confident_positive", Category: lf.ContentHeuristic},
		gossip, engagement,
	)
	if err != nil {
		log.Fatal(err)
	}

	// --- A named, validated set (unique names enforced). ---
	set, err := lf.NewSet("customlf-demo",
		gossip, engagement, shortDoc, lowEngagement, notCelebrity, confident,
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := lf.Register(set); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered sets: %v\n", lf.RegisteredSets())
	fmt.Printf("census: %v\n\n", set.Census())

	// --- Run the batch pipeline with a dev set attached. ---
	// A small hand-labeled dev set (here: gold labels for the first 500
	// docs) powers the empirical-accuracy column of the analysis report.
	dev := make([]lf.Label, len(docs))
	for i, d := range docs {
		if i >= 500 {
			break // rest stays Abstain = unlabeled
		}
		if d.Gold {
			dev[i] = lf.Positive
		} else {
			dev[i] = lf.Negative
		}
	}

	p, err := drybell.New[*corpus.Document](
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithDevLabels(dev),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 300, Seed: 7}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), set.LFs())
	if err != nil {
		log.Fatal(err)
	}

	// --- The development loop: read the report, fix the weakest LF, rerun. ---
	fmt.Println("LF analysis (the Snorkel development loop):")
	fmt.Print(res.Analysis)

	fmt.Println("\nlearned accuracies (no ground truth used by the label model):")
	for j, acc := range res.Model.Accuracies() {
		fmt.Printf("  %-24s learned=%.3f empirical=%.3f\n",
			res.Analysis.PerLF[j].Name, acc, res.Analysis.PerLF[j].EmpiricalAccuracy)
	}

	// The aggregation-based LF's first pass is reusable online: freeze its
	// summary into the serving path instead of refitting.
	if s, ok := shortDoc.Summary(); ok {
		fmt.Printf("\naggregate summary fitted offline: n=%d mean=%.1f stddev=%.1f (freeze this for online serving)\n",
			s.Count, s.Mean, s.StdDev)
	}
}
