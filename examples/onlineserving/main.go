// Online serving: from weak supervision to a live, hot-swappable model.
//
// The batch pipeline trains a classifier on probabilistic labels and stages
// it into an FS-backed serving registry; the serve package then answers
// requests with the promoted artifact (micro-batched scoring) and runs the
// labeling functions online per record (NLP calls behind an LRU cache).
// Finally a second version is staged and promoted *while requests are in
// flight* — the atomic hot swap of cmd/drybelld, in miniature.
//
//	go run ./examples/onlineserving
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/serving"
	"repro/pkg/drybell"
	"repro/pkg/drybell/serve"
)

func main() {
	ctx := context.Background()
	fsys := drybell.NewMemFS()
	reg, err := serving.OpenFSRegistry(fsys, "serving")
	if err != nil {
		log.Fatal(err)
	}
	runners := apps.TopicLFs(nil, 0.02, 1)

	// 1. Batch side: weak supervision → servable classifier → registry.
	// StageForServing validates (servable signals, latency budget), stages
	// v1, and promotes it.
	lm := trainAndStage(ctx, fsys, reg, runners, 1)

	// 2. Online side: serve the promoted artifact.
	s, err := serve.New(serve.Config[*corpus.Document]{
		Registry:   reg,
		Model:      "topic-classifier",
		Decode:     corpus.UnmarshalDocument,
		Featurize:  serve.DocumentFeaturizer,
		LFs:        runners,
		LabelModel: lm,
		BatchWait:  time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	doc := &corpus.Document{
		ID:       "live-1",
		Title:    "ava stone dazzles on the redcarpet",
		Body:     "paparazzi swarm as the premiere spotlight finds ava stone",
		URL:      "https://starbeat.example/stories/1",
		Language: "en",
		Crawler:  corpus.CrawlerStats{EngagementScore: 0.95},
	}
	res, err := s.Predict(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predict v%d: score=%.3f positive=%v\n", res.Version, res.Score, res.Positive)

	lab, err := s.Label(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("label: posterior=%.3f from %d online LF votes\n", *lab.Posterior, len(lab.Votes))

	// 3. Stage a retrained version and promote it under live traffic.
	trainAndStage(ctx, fsys, reg, runners, 7)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := s.Predict(ctx, doc); err != nil {
				log.Fatalf("request failed during promotion: %v", err)
			}
		}
	}()
	if err := s.Promote(2); err != nil {
		log.Fatal(err)
	}
	<-done
	res, err = s.Predict(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after hot swap, predict v%d: score=%.3f (zero requests dropped)\n", res.Version, res.Score)

	m := s.Metrics()
	fmt.Printf("metrics: %d predicts (p99 %.2fms), mean batch %.1f, NLP cache hit rate %.0f%%, %d swap(s)\n",
		m.Predict.Requests, m.Predict.P99Ms, m.Batches.MeanSize, 100*m.NLPCache.HitRate, m.Swaps)
}

// trainAndStage runs the batch pipeline on a fresh synthetic corpus and
// stages the resulting classifier, returning the trained label model.
func trainAndStage(ctx context.Context, fsys drybell.FS, reg serving.Catalog,
	runners []apps.DocLF, seed int64) *drybell.Model {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 1500, PositiveRate: 0.05, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	p, err := drybell.New[*corpus.Document](
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithFS(fsys),
		drybell.WithWorkDir(fmt.Sprintf("bootstrap/seed%d", seed)),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 300, Seed: seed}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(ctx, drybell.SliceSource(docs), runners)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := drybell.TrainContentClassifier(docs, res.Posteriors, docs[:150], drybell.ContentTrainConfig{
		FeatureDim: 1 << 14, Bigrams: true, Iterations: 15000, Seed: seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clf.StageForServing(reg, "topic-classifier", docs[:30], 100*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	return res.Model
}
