// Quickstart: the Snorkel DryBell pipeline in five minutes.
//
// We build a tiny "is this document about celebrities?" classifier without
// a single hand label: three labeling functions vote on 2000 unlabeled
// documents, the sampling-free generative model turns their noisy votes
// into probabilistic labels, and a servable logistic regression is trained
// on those labels. Everything goes through the public drybell SDK.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/corpus"
	"repro/internal/nlp"
	"repro/pkg/drybell"
	"repro/pkg/drybell/lf"
)

func main() {
	// 1. Unlabeled data. (Here synthetic; in DryBell this is the content
	//    stream after a coarse keyword filter.)
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 2000, PositiveRate: 0.05, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Labeling functions: black-box voters built from whatever the
	//    organization already has. Each returns Positive, Negative, or
	//    Abstain.
	keywordLF := &lf.Func[*corpus.Document]{
		Meta: lf.Meta{Name: "keyword_gossip", Category: lf.ContentHeuristic, Servable: true},
		Fn: func(d *corpus.Document) lf.Label {
			for _, kw := range []string{"paparazzi", "redcarpet", "gossip"} {
				if strings.Contains(d.Text(), kw) {
					return lf.Positive
				}
			}
			return lf.Abstain
		},
	}
	// The paper's §5.1 example: an expensive NER model, launched as a
	// model server on each compute node, votes "not celebrity" when the
	// text mentions no person at all.
	nerLF := &lf.NLPFunc[*corpus.Document]{
		Meta:      lf.Meta{Name: "ner_no_person", Category: lf.ModelBased, Servable: false},
		NewServer: func() *nlp.Server { return nlp.NewServer(0.02, 1) },
		GetText:   func(d *corpus.Document) string { return d.Text() },
		GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
			if len(res.People()) == 0 {
				return lf.Negative
			}
			return lf.Abstain
		},
	}
	topicLF := &lf.NLPFunc[*corpus.Document]{
		Meta:      lf.Meta{Name: "topicmodel_offtopic", Category: lf.ModelBased, Servable: false},
		NewServer: func() *nlp.Server { return nlp.NewServer(0, 1) },
		GetText:   func(d *corpus.Document) string { return d.Text() },
		GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
			switch res.TopTopic() {
			case nlp.TopicEntertainment, "":
				return lf.Abstain
			default:
				return lf.Negative
			}
		},
	}

	// 3. Build the pipeline and run it: stage to the distributed
	//    filesystem, execute each labeling function as its own MapReduce
	//    job, train the sampling-free generative model, persist
	//    probabilistic labels.
	p, err := drybell.New[*corpus.Document](
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 400, Seed: 7}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(docs),
		[]drybell.LF[*corpus.Document]{keywordLF, nerLF, topicLF})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("estimated labeling-function accuracies (no ground truth used):")
	accs := res.Model.Accuracies()
	for j, rep := range res.LFReport.PerLF {
		fmt.Printf("  %-22s accuracy=%.3f coverage=%.3f votes=%d\n",
			rep.Name, accs[j], res.Analysis.PerLF[j].Coverage, rep.Positives+rep.Negatives)
	}

	// 4. Train the servable end model on the probabilistic labels.
	clf, err := drybell.TrainContentClassifier(docs, res.Posteriors, docs[:200], drybell.ContentTrainConfig{
		Bigrams: true, Iterations: 30000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	met, err := clf.Evaluate(docs[200:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweakly supervised classifier: P=%.3f R=%.3f F1=%.3f (zero hand labels for training)\n",
		met.Precision, met.Recall, met.F1)
}
