// Real-time event classification (paper §3.3, §4, §6.4): cross-feature
// serving. 140 labeling functions vote using offline aggregates and
// relationship-graph scores that lag events by hours; the deployed DNN sees
// only the cheap real-time feature vector. DryBell transfers the offline
// knowledge to the online model, and its learned LF weights beat the
// Logical-OR combination that was the status quo.
//
//	go run ./examples/realtimeevents
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/model"
	"repro/pkg/drybell"
)

func main() {
	events, err := corpus.GenerateEvents(corpus.DefaultEventsSpec(10000, 5))
	if err != nil {
		log.Fatal(err)
	}
	runners := apps.EventLFs(apps.NumEventLFs, 1)
	fmt.Printf("%d events; %d labeling functions over non-servable features\n",
		len(events), len(runners))

	p, err := drybell.New[*corpus.Event](
		drybell.WithCodec(
			func(e *corpus.Event) ([]byte, error) { return e.Marshal() },
			corpus.UnmarshalEvent,
		),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 800, Seed: 2}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(events), runners)
	if err != nil {
		log.Fatal(err)
	}

	// §3.3: with 140 sources, hand-tuning combinations is hopeless; the
	// estimated accuracies also flag the low-quality sources directly.
	ranked := res.Model.RankByAccuracy()
	fmt.Println("\nfive lowest-quality sources by estimated accuracy:")
	for _, r := range ranked[:5] {
		fmt.Printf("  %-16s %.3f\n", res.LFReport.PerLF[r.Index].Name, r.Accuracy)
	}
	byFamily := map[string][]float64{}
	for j, a := range res.Model.Accuracies() {
		fam := strings.SplitN(res.LFReport.PerLF[j].Name, "_", 2)[0]
		byFamily[fam] = append(byFamily[fam], a)
	}
	fmt.Println("mean estimated accuracy by family:")
	for _, fam := range []string{"model", "graph", "heuristic"} {
		sum := 0.0
		for _, a := range byFamily[fam] {
			sum += a
		}
		fmt.Printf("  %-10s %.3f (n=%d)\n", fam, sum/float64(len(byFamily[fam])), len(byFamily[fam]))
	}

	// Train the same DNN architecture twice on the two label sets.
	trainDNN := func(labels []float64) *drybell.EventClassifier {
		clf, err := drybell.TrainEventClassifier(events, labels, drybell.EventTrainConfig{
			Hidden: []int{32, 16}, Epochs: 4, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return clf
	}
	dryBell := trainDNN(res.Posteriors)
	logicalOR := trainDNN(drybell.LogicalORPosteriors(res.Matrix))

	gold := corpus.EventGoldLabels(events)
	report := func(name string, clf *drybell.EventClassifier) model.Metrics {
		scores, err := clf.Scores(events)
		if err != nil {
			log.Fatal(err)
		}
		met, err := model.Evaluate(scores, gold, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		h := model.NewHistogram(scores, 10)
		fmt.Printf("%-12s P=%.3f R=%.3f F1=%.3f TP=%d  score mass at extremes=%.1f%%\n",
			name, met.Precision, met.Recall, met.F1, met.TP, 100*h.MassAtExtremes())
		return met
	}
	fmt.Println("\nDNN over servable real-time features, at threshold 0.5:")
	or := report("Logical-OR", logicalOR)
	db := report("DryBell", dryBell)
	if or.TP > 0 {
		fmt.Printf("\nDryBell identifies %+.1f%% events of interest vs Logical-OR (paper: +58%%)\n",
			100*(float64(db.TP)/float64(or.TP)-1))
	}
}
