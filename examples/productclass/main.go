// Product classification (paper §3.2): after a strategy change expanded the
// category of interest to include accessories and parts, existing labels
// depreciated overnight. Instead of relabeling, eight labeling functions —
// including Knowledge Graph keyword translations covering ten languages —
// rebuild the classifier. This example shows the language-coverage gap the
// graph closes: English-only keyword rules miss 60% of the (non-English)
// market.
//
//	go run ./examples/productclass
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/pkg/drybell"
)

func main() {
	graph := kgraph.Builtin()

	// The knowledge-graph queries the developers ran (§3.2).
	fmt.Println("knowledge graph: translations of \"helmet\":")
	for _, tr := range graph.TranslationsOf("helmet") {
		fmt.Printf("  %-3s %s\n", tr.Language, tr.Form)
	}
	fmt.Printf("\"bike accessories\" in category \"bicycles\": %v (after the expansion)\n\n",
		graph.IsDescendantOf(kgraph.CategoryID(kgraph.CategoryBikeAccessory), kgraph.CategoryID(kgraph.CategoryBicycles)))

	const n = 20000
	docs, err := corpus.GenerateProduct(corpus.ProductSpec{NumDocs: n, PositiveRate: 0.03, Graph: graph, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	split, err := corpus.MakeSplit(n, n/10, n/5, 22)
	if err != nil {
		log.Fatal(err)
	}
	train := corpus.Select(docs, split.Train)
	dev := corpus.Select(docs, split.Dev)
	test := corpus.Select(docs, split.Test)

	runners := apps.ProductLFs(graph, 1)
	run := func(name string, cols []int) {
		p, err := drybell.New[*corpus.Document](
			drybell.WithCodec(
				func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
				corpus.UnmarshalDocument,
			),
			drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 800, Seed: 2}),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Run(context.Background(), drybell.SliceSource(train), subset(runners, cols))
		if err != nil {
			log.Fatal(err)
		}
		clf, err := drybell.TrainContentClassifier(train, res.Posteriors, dev, drybell.ContentTrainConfig{
			Iterations: 20 * len(train), Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		met, err := clf.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s P=%.3f R=%.3f F1=%.3f\n", name, met.Precision, met.Recall, met.F1)
	}

	// The Table 3 story in miniature: English-only pattern rules vs the
	// full set with the Knowledge Graph's ten-language coverage.
	run("servable English keyword rules only:", drybell.ServableIndices(runners))
	run("+ Knowledge Graph and internal models:", nil)
}

func subset(runners []apps.DocLF, cols []int) []apps.DocLF {
	if cols == nil {
		return runners
	}
	out := make([]apps.DocLF, len(cols))
	for i, j := range cols {
		out[i] = runners[j]
	}
	return out
}
