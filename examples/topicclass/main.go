// Topic classification (paper §3.1): detect celebrity content with ten
// labeling functions built from organizational resources — URL heuristics,
// keyword rules, NER taggers, a coarse topic model, the knowledge graph,
// and crawler aggregates — then compare against a classifier trained on a
// small hand-labeled development set.
//
//	go run ./examples/topicclass
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/pkg/drybell"
)

func main() {
	const n = 20000
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: n, PositiveRate: 0.03, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	split, err := corpus.MakeSplit(n, n/10, n/5, 12)
	if err != nil {
		log.Fatal(err)
	}
	train := corpus.Select(docs, split.Train)
	dev := corpus.Select(docs, split.Dev)
	test := corpus.Select(docs, split.Test)

	runners := apps.TopicLFs(nil, 0.02, 1)
	fmt.Printf("topic classification: %d unlabeled, %d dev labels, %d LFs\n",
		len(train), len(dev), len(runners))

	p, err := drybell.New[*corpus.Document](
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 800, Seed: 2}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(train), runners)
	if err != nil {
		log.Fatal(err)
	}

	// §3.3's diagnostic workflow: rank LFs by estimated accuracy to find
	// low-quality sources — the keyword rule should surface at the bottom.
	fmt.Println("\nLFs ranked by estimated accuracy (worst first):")
	for _, r := range res.Model.RankByAccuracy() {
		fmt.Printf("  %-34s %.3f\n", res.LFReport.PerLF[r.Index].Name, r.Accuracy)
	}

	weak, err := drybell.TrainContentClassifier(train, res.Posteriors, dev, drybell.ContentTrainConfig{
		Bigrams: true, Iterations: 20 * len(train), Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := drybell.TrainSupervisedBaseline(dev, drybell.ContentTrainConfig{
		Bigrams: true, Iterations: 20 * len(dev), Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	weakMet, err := weak.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	baseMet, err := baseline.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-28s P=%.3f R=%.3f F1=%.3f\n", "dev-only baseline:", baseMet.Precision, baseMet.Recall, baseMet.F1)
	fmt.Printf("%-28s P=%.3f R=%.3f F1=%.3f\n", "DryBell (weak supervision):", weakMet.Precision, weakMet.Recall, weakMet.F1)
	if baseMet.F1 > 0 {
		fmt.Printf("relative F1: %.1f%% of baseline (paper Table 2: 117.5%%)\n", 100*weakMet.F1/baseMet.F1)
	}
}
