#!/usr/bin/env bash
# Overload-and-faults end-to-end smoke: start a real drybelld serve process
# with a deliberately tight admission budget, drive it past saturation with
# the open-loop load generator while a seeded fault schedule drops requests
# on the wire, and require the overload contract to hold: every admitted
# request answers (zero non-shed failures), at least one request is shed
# (the server really was saturated), and a SIGTERM afterwards drains to a
# clean exit. The remote-tier half of the story — training output
# byte-identical under the same injected faults — runs as a focused go test
# because it needs the in-process reference run to diff against.
set -euo pipefail

cd "$(dirname "$0")/.."

TASK=${TASK:-topic}
DOCS=${DOCS:-600}
STEPS=${STEPS:-50}
SEED=${SEED:-5}
PORT=${PORT:-$((20000 + $$ % 20000))}
OUT=${OUT:-/tmp/drybell-chaos-smoke.json}

work=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building drybelld + drybell-loadgen"
go build -o "$work/drybelld" ./cmd/drybelld
go build -o "$work/drybell-loadgen" ./cmd/drybell-loadgen

echo "== serve daemon (:$PORT) with a tight admission budget"
# Small queue + short latency budget so a 2x-capacity open-loop point is
# guaranteed to shed; one scoring worker keeps calibrated capacity low
# enough that the generator can comfortably over-drive it.
"$work/drybelld" -mode serve -root "$work/root" -addr "127.0.0.1:$PORT" \
    -task "$TASK" -docs "$DOCS" -steps "$STEPS" -seed "$SEED" \
    -workers 1 -batch 4 -latency-budget 25ms -max-queue 16 \
    -drain-timeout 10s &
server=$!
pids+=("$server")

# The daemon bootstraps (trains + promotes) before listening; give it time.
for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$server" 2>/dev/null; then
        echo "serve daemon died during bootstrap" >&2
        exit 1
    fi
    sleep 1
done
curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null

echo "== open-loop overload drive with injected wire faults"
# -require-sheds: fail unless saturation was actually reached.
# Any non-shed request failure makes the generator exit non-zero — that is
# the "admitted requests never fail" half of the contract.
"$work/drybell-loadgen" -url "http://127.0.0.1:$PORT" \
    -conc 16 -calibrate 1s -duration 2s -multipliers 0.5,1,2 \
    -chaos-drop 0.05 -chaos-delay-rate 0.10 -chaos-delay 2ms \
    -require-sheds -out "$OUT"

echo "== SIGTERM drain"
kill -TERM "$server"
if ! wait "$server"; then
    echo "serve daemon did not drain cleanly on SIGTERM" >&2
    exit 1
fi
pids=()

echo "== byte-identical training under injected network faults"
go test -count=1 -run 'TestRemoteByteIdenticalUnderNetworkFaults' ./internal/mapreduce/remote/

echo "OK: overload shed cleanly, admitted requests never failed, faulted training byte-identical ($OUT)"
