#!/usr/bin/env bash
# Multi-process end-to-end smoke for the remote execution backend: train the
# same pipeline twice — once in-process, once on a coordinator with two
# separate worker processes joined over HTTP — and require the persisted
# vote and label artifacts to be byte-identical. This is the acceptance bar
# the in-process fault suites cannot cover: real process boundaries, real
# sockets, real SIGTERM drains.
set -euo pipefail

cd "$(dirname "$0")/.."

TASK=${TASK:-topic}
DOCS=${DOCS:-800}
STEPS=${STEPS:-60}
SEED=${SEED:-5}
PORT=${PORT:-$((20000 + $$ % 20000))}
MODEL="$TASK-classifier"

work=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building drybelld"
go build -o "$work/drybelld" ./cmd/drybelld

echo "== in-process baseline"
"$work/drybelld" -mode train -root "$work/local" \
    -task "$TASK" -docs "$DOCS" -steps "$STEPS" -seed "$SEED"

echo "== coordinator (:$PORT) + 2 worker processes"
"$work/drybelld" -mode train -root "$work/remote" -addr "127.0.0.1:$PORT" -min-workers 2 \
    -task "$TASK" -docs "$DOCS" -steps "$STEPS" -seed "$SEED" &
coord=$!
pids+=("$coord")

for i in 1 2; do
    "$work/drybelld" -mode worker -coordinator "http://127.0.0.1:$PORT" \
        -task "$TASK" -seed "$SEED" &
    pids+=("$!")
done

if ! wait "$coord"; then
    echo "coordinator run failed" >&2
    exit 1
fi

# Coordinator is done; SIGTERM must drain each worker to a clean exit 0.
for pid in "${pids[@]:1}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${pids[@]:1}"; do
    if ! wait "$pid"; then
        echo "worker $pid did not drain cleanly on SIGTERM" >&2
        exit 1
    fi
done
pids=()

echo "== comparing artifacts"
fail=0
compare() {
    local what=$1 glob=$2
    local matched=0
    for a in "$work"/local/$glob; do
        [ -e "$a" ] || continue
        matched=1
        local b="$work/remote/${a#"$work/local/"}"
        if ! cmp -s "$a" "$b"; then
            echo "MISMATCH: $what shard ${a#"$work/local/"} differs" >&2
            fail=1
        fi
    done
    if [ "$matched" = 0 ]; then
        echo "MISSING: no $what artifacts under $glob" >&2
        fail=1
    fi
}
compare "votes"  "bootstrap/$MODEL/labels/votes*"
compare "labels" "bootstrap/$MODEL/output/problabels*"
[ "$fail" = 0 ] || exit 1

echo "OK: remote labels byte-identical to in-process run"
