#!/usr/bin/env bash
# End-to-end smoke for the incremental path on a real on-disk root: a base
# run plus a 10% corpus append plus one IncrementalRun plus Compact must
# leave input, vote, AND label artifacts BYTE-IDENTICAL to a cold full rerun
# over the grown corpus — warm and cold training are the same pure function
# of the vote matrix — while having executed only the delta's documents.
# This is the acceptance bar the in-process equivalence tests cannot cover:
# real files, real shard layout, and the compaction that folds the
# generation chain away.
set -euo pipefail

cd "$(dirname "$0")/.."

DOCS=${DOCS:-900}
DELTA=${DELTA:-90}
SEED=${SEED:-7}
STEPS=${STEPS:-200}
SHARDS=${SHARDS:-4}

work=$(mktemp -d)
cleanup() { rm -rf "$work"; }
trap cleanup EXIT

echo "== building drybell-inc"
go build -o "$work/drybell-inc" ./cmd/drybell-inc

echo "== base run ($DOCS docs)"
"$work/drybell-inc" -mode base -root "$work/inc" \
    -docs "$DOCS" -seed "$SEED" -steps "$STEPS" -shards "$SHARDS"

echo "== append $DELTA docs, incremental run, compact"
delta_out=$("$work/drybell-inc" -mode delta -root "$work/inc" \
    -docs "$DOCS" -delta "$DELTA" -seed "$SEED" -steps "$STEPS" -shards "$SHARDS")
echo "$delta_out"

# The run must have been genuinely incremental: exactly one new generation,
# exactly the appended documents executed (not the whole corpus), and a warm
# start from the base run's training state.
for want in "generations=[1]" "delta_docs=$DELTA" "warm_started=true"; do
    if ! grep -qF "$want" <<<"$delta_out"; then
        echo "FAIL: delta run output missing '$want'" >&2
        exit 1
    fi
done

echo "== cold full rerun ($((DOCS + DELTA)) docs)"
"$work/drybell-inc" -mode full -root "$work/cold" \
    -docs "$((DOCS + DELTA))" -seed "$SEED" -steps "$STEPS" -shards "$SHARDS"

echo "== comparing artifacts"
fail=0
compare() {
    local what=$1 glob=$2
    local matched=0
    for a in "$work"/inc/$glob; do
        [ -e "$a" ] || continue
        matched=1
        local b="$work/cold/${a#"$work/inc/"}"
        if ! cmp -s "$a" "$b"; then
            echo "MISMATCH: $what ${a#"$work/inc/"} differs from the cold rerun" >&2
            fail=1
        fi
    done
    if [ "$matched" = 0 ]; then
        echo "MISSING: no $what artifacts under $glob" >&2
        fail=1
    fi
}
# Compacted corpus staging, the folded vote artifact (shards + meta), and
# the persisted probabilistic labels must all match the cold rerun byte for
# byte. (The bare "votes" path is the folded generation chain's directory,
# not an artifact file — exclude it.)
compare "input shard" "inc/input/examples-*"
compare "votes shard" "inc/labels/votes-*"
compare "votes meta" "inc/labels/votes.meta"
compare "labels shard" "inc/output/problabels-*"
[ "$fail" = 0 ] || exit 1

# Decode the labels as well: a value-level comparison gives a row-indexed
# error if a future format change ever breaks the byte-level one.
"$work/drybell-inc" -mode compare -root "$work/inc" -cold "$work/cold" \
    -seed "$SEED" -steps "$STEPS" -shards "$SHARDS"

echo "OK: incremental run is byte-identical to the cold rerun (input, votes, labels) while executing only the $DELTA-doc delta"
