// Command drybell-loadgen is an open-loop load generator for drybelld's
// /v1/predict path. Unlike a closed-loop client — whose arrival rate
// politely collapses to whatever the server sustains — an open-loop
// generator keeps firing on its own schedule, which is the only way to
// observe what a server does *past* saturation: does latency grow without
// bound, or does admission control shed the excess and keep the admitted
// tail flat?
//
// The run has two phases. A short closed-loop calibration estimates the
// server's capacity (sustained answers/sec with -conc in-flight requests).
// Then each -multipliers entry drives an open-loop point at that multiple
// of capacity for -duration, recording offered vs admitted vs shed counts
// and client-observed latency quantiles for admitted requests only.
//
// The resulting saturation curve — admitted p50/p99 and shed rate per
// offered-load point — is printed as a table and, with -out, written as a
// BENCH-style JSON document.
//
// Exit status serves smoke tests: with -require-sheds the run fails unless
// the server shed at least one request (proof it was actually driven past
// saturation), and any non-shed request failure is always fatal — under
// overload the contract is "shed or answer", never "error".
//
//	drybell-loadgen -url http://localhost:8080 -multipliers 0.5,1,2 \
//	    -duration 5s -out BENCH_pr9.json -require-sheds
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/pkg/drybell/serve"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "base URL of the drybelld serve daemon")
		conc     = flag.Int("conc", 32, "closed-loop concurrency during calibration, and the per-point in-flight cap")
		calib    = flag.Duration("calibrate", 2*time.Second, "closed-loop calibration window used to estimate capacity")
		duration = flag.Duration("duration", 3*time.Second, "open-loop duration per load point")
		mults    = flag.String("multipliers", "0.5,1,1.5,2", "comma-separated load points, as multiples of calibrated capacity")
		deadline = flag.Duration("request-deadline", 0, "when > 0, stamp every request with this X-Request-Deadline")
		docs     = flag.Int("docs", 64, "distinct synthetic documents cycled through as request bodies")
		seed     = flag.Int64("seed", 1, "corpus seed for the request bodies")
		out      = flag.String("out", "", "write the saturation curve as JSON to this file ('-' for stdout)")
		requireS = flag.Bool("require-sheds", false, "exit non-zero unless the server shed at least one request")
		chaosDrp = flag.Float64("chaos-drop", 0, "probability a request is dropped on the wire before sending (injected network fault)")
		chaosDlR = flag.Float64("chaos-delay-rate", 0, "probability a request is delayed by -chaos-delay before sending")
		chaosDly = flag.Duration("chaos-delay", 5*time.Millisecond, "injected network delay for -chaos-delay-rate requests")
		chaosSed = flag.Int64("chaos-seed", 7, "seed for the injected fault schedule")
	)
	flag.Parse()
	cfg := chaosConfig{drop: *chaosDrp, delayRate: *chaosDlR, delay: *chaosDly, seed: *chaosSed}
	if err := run(*url, *conc, *calib, *duration, *mults, *deadline, *docs, *seed, *out, *requireS, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "drybell-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// chaosConfig describes the client-side fault injection: drops and delays
// on the wire between generator and server, so a smoke run can prove the
// admitted-traffic contract holds on an unreliable network.
type chaosConfig struct {
	drop, delayRate float64
	delay           time.Duration
	seed            int64
}

func (c chaosConfig) active() bool { return c.drop > 0 || c.delayRate > 0 }

// point is one open-loop measurement: offered load vs what came back.
type point struct {
	Multiplier float64 `json:"multiplier"`
	TargetRPS  float64 `json:"target_rps"`
	Offered    int64   `json:"offered"`
	Admitted   int64   `json:"admitted"`
	Shed       int64   `json:"shed"`
	Failed     int64   `json:"failed"`
	// Dropped counts requests the injected fault schedule killed on the
	// wire before they reached the server; they are chaos, not failures.
	Dropped int64 `json:"dropped,omitempty"`
	// NotSent counts schedule slots skipped because the in-flight cap was
	// reached — the generator's own safety valve, reported so a truncated
	// offer is visible instead of silently inflating admit rates.
	NotSent       int64   `json:"not_sent"`
	ShedRate      float64 `json:"shed_rate"`
	AdmittedP50Ms float64 `json:"admitted_p50_ms"`
	AdmittedP99Ms float64 `json:"admitted_p99_ms"`
}

// report is the JSON document -out writes.
type report struct {
	Bench       string          `json:"bench"`
	URL         string          `json:"url"`
	CapacityRPS float64         `json:"capacity_rps"`
	Points      []point         `json:"points"`
	Server      json.RawMessage `json:"server_metrics,omitempty"`
}

func run(url string, conc int, calib, duration time.Duration, mults string, deadline time.Duration,
	nDocs int, seed int64, out string, requireSheds bool, cc chaosConfig) error {
	bodies, err := makeBodies(nDocs, seed)
	if err != nil {
		return err
	}
	var transport http.RoundTripper = &http.Transport{
		MaxIdleConns:        4 * conc,
		MaxIdleConnsPerHost: 4 * conc,
	}
	var faults *chaos.Transport
	if cc.active() {
		faults = chaos.NewTransport(cc.seed, transport)
		faults.DropRate = cc.drop
		faults.DelayRate = cc.delayRate
		faults.Delay = cc.delay
		// Only /v1/predict traffic gets chaos; health checks and the final
		// metrics scrape should just work.
		faults.Match = func(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/predict") }
		transport = faults
	}
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}
	g := &generator{url: url, client: client, bodies: bodies, deadline: deadline}

	if err := g.waitHealthy(30 * time.Second); err != nil {
		return err
	}

	capacity, err := g.calibrate(conc, calib)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated capacity ≈ %.0f req/s (%d closed-loop clients, %s)\n", capacity, conc, calib)

	multipliers, err := parseMultipliers(mults)
	if err != nil {
		return err
	}
	rep := report{Bench: "drybell-loadgen", URL: url, CapacityRPS: capacity}
	fmt.Printf("%10s %10s %9s %9s %9s %8s %9s %9s\n",
		"load", "target/s", "admitted", "shed", "failed", "shed%", "p50(ms)", "p99(ms)")
	for _, m := range multipliers {
		p := g.drive(m, m*capacity, duration, conc)
		rep.Points = append(rep.Points, p)
		fmt.Printf("%9.2fx %10.0f %9d %9d %9d %7.1f%% %9.1f %9.1f\n",
			p.Multiplier, p.TargetRPS, p.Admitted, p.Shed, p.Failed,
			100*p.ShedRate, p.AdmittedP50Ms, p.AdmittedP99Ms)
	}
	if faults != nil {
		fmt.Printf("chaos: %d requests dropped on the wire, %d delayed\n",
			faults.Dropped.Load(), faults.Delayed.Load())
	}
	rep.Server = g.serverMetrics()

	var totalShed, totalFailed int64
	for _, p := range rep.Points {
		totalShed += p.Shed
		totalFailed += p.Failed
	}
	if out != "" {
		if err := writeReport(out, &rep); err != nil {
			return err
		}
	}
	if totalFailed > 0 {
		return fmt.Errorf("%d requests failed with non-shed errors; overload must shed, not error", totalFailed)
	}
	if requireSheds && totalShed == 0 {
		return fmt.Errorf("no request was shed; the server was never driven past saturation")
	}
	return nil
}

// makeBodies marshals nDocs synthetic topic documents to cycle through as
// request payloads, so the NLP/feature path sees varied content instead of
// one endlessly cached record.
func makeBodies(nDocs int, seed int64) ([][]byte, error) {
	all, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: nDocs, PositiveRate: 0.2, Seed: seed})
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(all))
	for i, d := range all {
		if bodies[i], err = d.Marshal(); err != nil {
			return nil, err
		}
	}
	return bodies, nil
}

func parseMultipliers(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad multiplier %q (want positive numbers, e.g. 0.5,1,2)", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no multipliers given")
	}
	return out, nil
}

type generator struct {
	url      string
	client   *http.Client
	bodies   [][]byte
	deadline time.Duration
	next     atomic.Int64 // round-robin body cursor
}

func (g *generator) waitHealthy(patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := g.client.Get(g.url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s never became healthy: %w", g.url, err)
			}
			return fmt.Errorf("server at %s never became healthy", g.url)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// predict fires one request and classifies the answer.
func (g *generator) predict() (admitted bool, shed bool, latency time.Duration, err error) {
	body := g.bodies[int(g.next.Add(1))%len(g.bodies)]
	req, err := http.NewRequest(http.MethodPost, g.url+"/v1/predict", strings.NewReader(string(body)))
	if err != nil {
		return false, false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if g.deadline > 0 {
		req.Header.Set(serve.DeadlineHeader, g.deadline.String())
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		return false, false, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	lat := time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, false, lat, nil
	case http.StatusTooManyRequests:
		return false, true, lat, nil
	default:
		return false, false, lat, fmt.Errorf("status %d", resp.StatusCode)
	}
}

// calibrate estimates capacity with a closed loop: conc clients re-request
// as fast as the server answers, so completions/sec converges on sustained
// throughput. Shed answers count toward nothing — capacity is what the
// server *serves*.
func (g *generator) calibrate(conc int, window time.Duration) (float64, error) {
	var done atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				admitted, shedded, _, err := g.predict()
				if errors.Is(err, chaos.ErrInjected) {
					continue // scheduled chaos, not a server failure
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if admitted {
					done.Add(1)
				}
				if shedded {
					// Closed-loop calibration shouldn't shed; if it does,
					// ease off so the estimate reflects served throughput.
					time.Sleep(10 * time.Millisecond)
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, fmt.Errorf("calibration: %w", err)
	}
	elapsed := time.Since(start).Seconds()
	capacity := float64(done.Load()) / elapsed
	if capacity <= 0 {
		return 0, fmt.Errorf("calibration answered no requests in %s", window)
	}
	return capacity, nil
}

// drive runs one open-loop point: fire at rate for duration regardless of
// responses (bounded only by a generous in-flight cap so a wedged server
// cannot leak goroutines without bound), then fold the answers into a point.
func (g *generator) drive(multiplier, rate float64, duration time.Duration, conc int) point {
	// Fire in small bursts on a coarse tick: sub-millisecond tickers are
	// noise, so for high rates send floor(rate*tick) per tick and carry the
	// remainder forward.
	const tick = 5 * time.Millisecond
	perTick := rate * tick.Seconds()

	inflight := make(chan struct{}, 8*conc)
	var offered, admitted, shed, failed, dropped, notSent atomic.Int64
	var mu sync.Mutex
	var latencies []time.Duration

	var wg sync.WaitGroup
	fire := func() {
		offered.Add(1)
		select {
		case inflight <- struct{}{}:
		default:
			notSent.Add(1)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			ok, sh, lat, err := g.predict()
			switch {
			case errors.Is(err, chaos.ErrInjected):
				dropped.Add(1)
			case err != nil:
				failed.Add(1)
			case sh:
				shed.Add(1)
			case ok:
				admitted.Add(1)
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}

	t := time.NewTicker(tick)
	defer t.Stop()
	end := time.Now().Add(duration)
	carry := 0.0
	for now := range t.C {
		if now.After(end) {
			break
		}
		carry += perTick
		for ; carry >= 1; carry-- {
			fire()
		}
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p := point{
		Multiplier:    multiplier,
		TargetRPS:     rate,
		Offered:       offered.Load(),
		Admitted:      admitted.Load(),
		Shed:          shed.Load(),
		Failed:        failed.Load(),
		Dropped:       dropped.Load(),
		NotSent:       notSent.Load(),
		AdmittedP50Ms: quantileMs(latencies, 0.50),
		AdmittedP99Ms: quantileMs(latencies, 0.99),
	}
	if answered := p.Admitted + p.Shed; answered > 0 {
		p.ShedRate = float64(p.Shed) / float64(answered)
	}
	return p
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// serverMetrics snapshots /v1/metrics for the report; best-effort.
func (g *generator) serverMetrics() json.RawMessage {
	resp, err := g.client.Get(g.url + "/v1/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(data) {
		return nil
	}
	return json.RawMessage(data)
}

func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
