// Command lfrun executes a single labeling function over a staged corpus,
// mirroring the paper's deployment model where "labeling functions are
// independent executables that use a distributed filesystem to share data"
// (§5.4) and each engineer's main file just names the function and runs it
// (§5.1).
//
// The corpus is staged from a JSON-lines file into a disk-backed DFS root,
// the named function runs as its own MapReduce job, and the columnar vote
// artifact's shard paths are printed. A second invocation against the same
// root merges another function's votes into the artifact alongside the
// first — exactly the loose coupling the paper describes, built on the
// drybell SDK's per-stage API.
//
// Usage:
//
//	lfrun -root /tmp/dfs -task topic -lf ner_no_person -input docs.jsonl
//	lfrun -root /tmp/dfs -task topic -list
//	lfrun -root /tmp/dfs -task topic -lf ner_no_person -trace trace.json
//
// Tasks are discovered through the SDK's labeling-function registry
// (pkg/drybell/lf), where each application registers its named Set.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/pkg/drybell"
	"repro/pkg/drybell/lf"
)

func main() {
	var (
		root   = flag.String("root", "", "disk-backed DFS root directory (required)")
		task   = flag.String("task", "topic", "LF set: topic or product")
		name   = flag.String("lf", "", "labeling function name to run")
		input  = flag.String("input", "", "JSON-lines document file to stage (omit if already staged)")
		shards = flag.Int("shards", 8, "input shards when staging")
		par    = flag.Int("parallelism", 0, "simulated cluster width (0 = one node per CPU)")
		list   = flag.Bool("list", false, "list the task's labeling functions and exit")
		trace  = flag.String("trace", "", "write a Chrome trace-event timeline of the run to this file (load in Perfetto)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the context so staging and LF execution abort
	// between records; the DFS commit discipline means no partial shard
	// becomes visible.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *root, *task, *name, *input, *shards, *par, *list, *trace); err != nil {
		code := 1
		if errors.Is(err, context.Canceled) {
			code = 130 // conventional interrupted-by-signal exit
		}
		fmt.Fprintf(os.Stderr, "lfrun: %v\n", err)
		os.Exit(code)
	}
}

func run(ctx context.Context, root, task, name, input string, shards, par int, list bool, trace string) error {
	// The task sets register themselves in the SDK's LF registry; from
	// here on the tool only discovers by name, never by constructor.
	if err := apps.RegisterSets(1); err != nil {
		return err
	}
	set, err := lf.Lookup[*corpus.Document](task)
	if err != nil {
		return err
	}
	if list {
		fmt.Printf("%-34s %-18s %s\n", "name", "category", "servable")
		for _, m := range set.Metas() {
			fmt.Printf("%-34s %-18s %v\n", m.Name, m.Category, m.Servable)
		}
		return nil
	}
	if root == "" {
		return fmt.Errorf("-root is required")
	}
	chosen, ok := set.Get(name)
	if !ok {
		return fmt.Errorf("no labeling function %q in task %s (use -list)", name, task)
	}

	fsys, err := drybell.NewDiskFS(root)
	if err != nil {
		return err
	}
	opts := []drybell.Option{
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithFS(fsys),
		drybell.WithShards(shards),
	}
	if par > 0 {
		opts = append(opts, drybell.WithParallelism(par))
	}
	var observer *drybell.Observer
	if trace != "" {
		observer = drybell.NewObserver()
		opts = append(opts, drybell.WithObserver(observer))
	}
	p, err := drybell.New[*corpus.Document](opts...)
	if err != nil {
		return err
	}

	if input != "" {
		records, err := readJSONL(input)
		if err != nil {
			return err
		}
		// The lines were validated by readJSONL and are already in the
		// pipeline's record format, so stage the raw bytes directly.
		n, err := p.StageRecords(ctx, drybell.SliceSource(records))
		if err != nil {
			return err
		}
		fmt.Printf("staged %d documents into %d shards under %s\n", n, shards, root)
	}

	_, report, err := p.ExecuteLFs(ctx, []drybell.LF[*corpus.Document]{chosen})
	if err != nil {
		return err
	}
	rep := report.PerLF[0]
	fmt.Printf("%s: %d examples in %v (pos %d / neg %d / abstain %d)\n",
		rep.Name, report.Examples, rep.Duration.Round(1e6), rep.Positives, rep.Negatives, rep.Abstains)
	fmt.Printf("execution: %d task attempts (%d speculative), %d tasks resumed\n",
		report.TaskAttempts, report.SpeculativeAttempts, report.TasksResumed)
	if observer != nil {
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := drybell.WriteTrace(f, observer); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (load in https://ui.perfetto.dev)\n", trace)
	}
	// Votes from every invocation accumulate as columns of one columnar
	// artifact; print its shards so the operator can see the shared state.
	paths, err := drybell.ListShards(fsys, p.VotesBase())
	if err != nil {
		return err
	}
	for _, path := range paths {
		fmt.Println("  ", path)
	}
	return nil
}

// readJSONL loads one document per line; each line must be a JSON document
// in the corpus.Document schema.
func readJSONL(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Validate eagerly so a malformed record names its line, rather
		// than surfacing later as an anonymous staging error.
		if _, err := corpus.UnmarshalDocument(line); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, lineNo, err)
		}
		cp := make([]byte, len(line))
		copy(cp, line)
		out = append(out, cp)
	}
	return out, sc.Err()
}
