package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serving"
	"repro/pkg/drybell"
)

// TestContinuousRoundPromotes drives one full continuous-training round
// in-process: base train, a -mode append style delta, then a single watch
// round that must delta-execute, warm-start retrain, and promote a new
// version into the registry.
func TestContinuousRoundPromotes(t *testing.T) {
	ctx := context.Background()
	fsys := drybell.NewMemFS()
	observer := drybell.NewObserver()
	reg, err := serving.OpenFSRegistry(fsys, "serving")
	if err != nil {
		t.Fatal(err)
	}
	const (
		task  = "topic"
		model = "topic-classifier"
		n     = 600
		seed  = int64(1)
		steps = 60
	)
	runners, bigrams, err := taskRunners(task, 256, seed)
	if err != nil {
		t.Fatal(err)
	}
	base, err := train(ctx, fsys, reg, observer, task, model, runners, bigrams, n, seed, steps, 1, false, true, nil)
	if err != nil {
		t.Fatalf("base train: %v", err)
	}

	// Stage a ~10% append exactly the way `drybelld -mode append` does.
	if err := runAppend(ctx, fsys, observer, task, model, n, seed, steps, 1, 60); err != nil {
		t.Fatalf("append: %v", err)
	}

	inc := incrementalFlags{continuous: true, watch: 10 * time.Millisecond, rounds: 1}
	if err := runContinuous(ctx, fsys, reg, observer, task, model, runners, bigrams, n, seed, steps, 1, false, nil, inc); err != nil {
		t.Fatalf("continuous round: %v", err)
	}

	live, err := reg.Live(model)
	if err != nil {
		t.Fatal(err)
	}
	if live.Version <= base {
		t.Fatalf("live version %d did not advance past base %d", live.Version, base)
	}
	// The loop's freshness metrics made it onto the shared registry.
	for _, series := range []string{"continuous_rounds_total", "continuous_promotions_total"} {
		if !strings.Contains(metricsText(t, observer), series) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}
}

func metricsText(t *testing.T, observer *drybell.Observer) string {
	t.Helper()
	var sb strings.Builder
	if err := drybell.WriteMetrics(&sb, observer); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestPromoteVersionHTTP covers the remote-promotion path: the loop POSTs
// /v1/promote to a serving daemon and treats any non-200 as a failed round.
func TestPromoteVersionHTTP(t *testing.T) {
	var gotPath, gotBody string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
	}))
	defer srv.Close()
	if err := promoteVersion(context.Background(), nil, "m", srv.URL, 7); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/promote" {
		t.Errorf("POSTed to %q, want /v1/promote", gotPath)
	}
	if gotBody != `{"version":7}` {
		t.Errorf("body = %q", gotBody)
	}

	fail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such version", http.StatusNotFound)
	}))
	defer fail.Close()
	err := promoteVersion(context.Background(), nil, "m", fail.URL, 7)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want HTTP 404 error, got %v", err)
	}
}
