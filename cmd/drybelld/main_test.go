package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFlags pins the fail-fast surface: every node-role flag
// mismatch is a usage error before any state is touched, and every
// legitimate single-node or multi-node invocation passes.
func TestValidateFlags(t *testing.T) {
	tests := []struct {
		name        string
		mode        string
		coordinator string
		root        string
		resume      bool
		minWorkers  int
		inc         incrementalFlags
		wantErr     string // substring; empty means valid
	}{
		{name: "serve defaults", mode: "serve"},
		{name: "train defaults", mode: "train"},
		{name: "train coordinator", mode: "train", minWorkers: 2},
		{name: "worker", mode: "worker", coordinator: "http://host:9090"},
		{name: "resume with root", mode: "train", root: "/tmp/x", resume: true},
		{name: "continuous train", mode: "train", inc: incrementalFlags{continuous: true, watch: time.Second}},
		{name: "continuous with promote-url", mode: "train",
			inc: incrementalFlags{continuous: true, watch: time.Second, promoteURL: "http://host:8080", rounds: 3, minDevAcc: 0.9}},
		{name: "append with root", mode: "append", root: "/tmp/x", inc: incrementalFlags{appendDocs: 100}},

		{name: "worker without coordinator", mode: "worker", wantErr: "-coordinator"},
		{name: "worker with resume", mode: "worker", coordinator: "http://host:9090", resume: true, wantErr: "-resume"},
		{name: "worker with min-workers", mode: "worker", coordinator: "http://host:9090", minWorkers: 2, wantErr: "-min-workers"},
		{name: "serve with coordinator", mode: "serve", coordinator: "http://host:9090", wantErr: "-coordinator"},
		{name: "train with coordinator", mode: "train", coordinator: "http://host:9090", wantErr: "-coordinator"},
		{name: "serve with min-workers", mode: "serve", minWorkers: 2, wantErr: "-min-workers"},
		{name: "negative min-workers", mode: "train", minWorkers: -1, wantErr: "-min-workers"},
		{name: "resume without root", mode: "train", resume: true, wantErr: "-resume"},

		{name: "continuous serve", mode: "serve", inc: incrementalFlags{continuous: true, watch: time.Second}, wantErr: "-continuous"},
		{name: "continuous without watch", mode: "train", inc: incrementalFlags{continuous: true}, wantErr: "-watch"},
		{name: "negative rounds", mode: "train", inc: incrementalFlags{continuous: true, watch: time.Second, rounds: -1}, wantErr: "-rounds"},
		{name: "bad dev accuracy", mode: "train", inc: incrementalFlags{continuous: true, watch: time.Second, minDevAcc: 1.5}, wantErr: "-min-dev-accuracy"},
		{name: "promote-url without continuous", mode: "train", inc: incrementalFlags{promoteURL: "http://host:8080"}, wantErr: "-promote-url"},
		{name: "append without root", mode: "append", wantErr: "-root"},
		{name: "append with resume", mode: "append", root: "/tmp/x", resume: true, wantErr: "-mode append"},
		{name: "append count on train", mode: "train", inc: incrementalFlags{appendDocs: 10}, wantErr: "-append"},
		{name: "negative append", mode: "append", root: "/tmp/x", inc: incrementalFlags{appendDocs: -1}, wantErr: "-append"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.mode, tt.coordinator, tt.root, tt.resume, tt.minWorkers, tt.inc)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags: want error mentioning %q, got nil", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateFlags: error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}
