package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/serving"
	"repro/pkg/drybell"
)

// runAppend is -mode append: stage the next k synthetic documents as a
// corpus delta on the shared filesystem, for a continuous trainer (possibly
// in another process) to pick up. Because the generators are prefix-stable,
// the appender only needs the same -task/-docs/-seed as the trainer to
// produce exactly the documents that come next.
func runAppend(ctx context.Context, fsys drybell.FS, observer *drybell.Observer,
	task, model string, n int, seed int64, steps, retries, k int) error {
	p, err := trainPipeline(fsys, observer, model, seed, steps, retries, false, nil)
	if err != nil {
		return err
	}
	trainDocs, _, _, err := syntheticCorpus(task, n, seed, 0)
	if err != nil {
		return err
	}
	total, err := p.CorpusRows()
	if err != nil {
		return fmt.Errorf("append needs a trained base corpus under -root (run -mode train first): %w", err)
	}
	extraSoFar := total - len(trainDocs)
	if extraSoFar < 0 {
		return fmt.Errorf("staged corpus has %d rows but task %q with -docs %d -seed %d stages %d; append would corrupt the ledger",
			total, task, n, seed, len(trainDocs))
	}
	_, _, appended, err := syntheticCorpus(task, n, seed, extraSoFar+k)
	if err != nil {
		return err
	}
	g, err := p.StageDelta(ctx, drybell.SliceSource(appended[extraSoFar:]))
	if err != nil {
		return err
	}
	fmt.Printf("staged corpus generation %d: %d documents at row %d\n", g.Gen, g.Records, g.StartRow)
	return nil
}

// runContinuous is -mode train -continuous: after ensuring a promoted base
// model exists, watch the corpus manifest and advance the pipeline by each
// batch of staged deltas — delta-only LF execution, warm-start label-model
// training, classifier retrain, dev validation, and promotion — so served
// labels stay minutes, not a full batch run, behind the corpus.
func runContinuous(ctx context.Context, fsys drybell.FS, reg serving.Catalog, observer *drybell.Observer,
	task, model string, runners []apps.DocLF, bigrams bool, n int, seed int64, steps, retries int,
	resume bool, pool *drybell.RemotePool, inc incrementalFlags) error {
	trainBase, dev, _, err := syntheticCorpus(task, n, seed, 0)
	if err != nil {
		return err
	}
	if _, err := reg.Live(model); err != nil {
		fmt.Printf("no live %s; running the base train first...\n", model)
		version, err := train(ctx, fsys, reg, observer, task, model, runners, bigrams, n, seed, steps, retries, resume, true, pool)
		if err != nil {
			return err
		}
		fmt.Printf("base model %s v%d promoted\n", model, version)
	}
	p, err := trainPipeline(fsys, observer, model, seed, steps, retries, false, pool)
	if err != nil {
		return err
	}

	met := observer.Metrics
	roundsTotal := met.Counter("continuous_rounds_total",
		"Incremental rounds completed by the continuous-training loop.")
	promotions := met.Counter("continuous_promotions_total",
		"Model versions promoted by the continuous-training loop.")
	vetoes := met.Counter("continuous_validation_vetoes_total",
		"Candidate models that failed dev validation and were not promoted.")
	devAccuracy := met.Gauge("continuous_dev_accuracy",
		"Dev-set accuracy of the last candidate the continuous loop trained.")

	// The vote store records how far execution has progressed; resuming a
	// loop against existing state must not re-run already-published deltas.
	done, err := p.ExecutedGeneration()
	if err != nil {
		return err
	}
	fmt.Printf("watching the corpus manifest every %v (executed through generation %d); append deltas with -mode append\n",
		inc.watch, done)
	completed := 0
	for {
		gens, err := p.CorpusGenerations()
		if err != nil {
			return err
		}
		if len(gens) <= done {
			select {
			case <-ctx.Done():
				fmt.Println("signal received; continuous loop exiting")
				return nil
			case <-time.After(inc.watch):
			}
			continue
		}

		res, err := p.IncrementalRun(ctx, runners)
		if err != nil {
			return err
		}
		done = len(gens)
		extra := len(res.Posteriors) - len(trainBase)
		if extra < 0 {
			return fmt.Errorf("view has %d rows, below the %d-row base; the continuous loop only follows appended deltas", len(res.Posteriors), len(trainBase))
		}
		_, _, appended, err := syntheticCorpus(task, n, seed, extra)
		if err != nil {
			return err
		}
		stagedDocs := append(append([]*corpus.Document(nil), trainBase...), appended...)
		clf, err := drybell.TrainContentClassifier(stagedDocs, res.Posteriors, dev, drybell.ContentTrainConfig{
			FeatureDim: 1 << 16, Bigrams: bigrams, Iterations: 10 * len(stagedDocs), Seed: seed + 3,
		})
		if err != nil {
			return err
		}
		m, err := clf.Evaluate(dev)
		if err != nil {
			return err
		}
		acc := float64(m.TP+m.TN) / float64(m.TP+m.FP+m.TN+m.FN)
		devAccuracy.Set(acc)
		roundsTotal.Inc()
		completed++
		fmt.Printf("round %d: generations %v (%d delta docs, %d delta tasks, %.0fs stale), warm start %v (%d iterations), dev accuracy %.3f F1 %.3f\n",
			completed, res.Generations, res.DeltaExamples, res.DeltaTaskAttempts, res.StalenessSeconds,
			res.WarmStarted, res.WarmIterations, acc, m.F1)

		if inc.minDevAcc > 0 && acc < inc.minDevAcc {
			vetoes.Inc()
			fmt.Printf("candidate vetoed: dev accuracy %.3f below -min-dev-accuracy %.3f; keeping the live version\n", acc, inc.minDevAcc)
		} else {
			version, err := stageVersion(fsys, reg, model, clf, res.Model, dev)
			if err != nil {
				return err
			}
			if err := promoteVersion(ctx, reg, model, inc.promoteURL, version); err != nil {
				return err
			}
			promotions.Inc()
			fmt.Printf("promoted %s v%d\n", model, version)
		}
		if inc.rounds > 0 && completed >= inc.rounds {
			fmt.Printf("completed %d rounds; exiting\n", completed)
			return nil
		}
	}
}

// promoteVersion makes the staged version live: directly in the shared
// registry, or — when a serve daemon's URL is configured — through its
// /v1/promote endpoint so the hot-swap happens immediately rather than at
// the daemon's next reload.
func promoteVersion(ctx context.Context, reg serving.Catalog, model, promoteURL string, version int) error {
	if promoteURL == "" {
		return reg.Promote(model, version)
	}
	body := fmt.Sprintf(`{"version":%d}`, version)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, promoteURL+"/v1/promote", bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("promote %s v%d via %s: %w", model, version, promoteURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote %s v%d via %s: HTTP %s", model, version, promoteURL, resp.Status)
	}
	return nil
}
