// Command drybelld is the online serving daemon: it answers /v1/predict
// with the currently-promoted artifact from the FS-persisted serving
// registry (micro-batched, hot-swappable) and /v1/label by running the
// task's labeling functions online against a single record — the production
// end state of the paper's §5.3 pipeline.
//
// State lives on the distributed filesystem under -root, so the daemon
// recovers its promoted model across restarts, and a training run in
// another process can stage new versions into the same registry for a live
// promotion via POST /v1/promote (or /v1/reload).
//
// Usage:
//
//	drybelld -root /tmp/drybell-serve                 # bootstrap if empty, then serve
//	drybelld -root /tmp/drybell-serve -mode train -seed 2   # stage a new version and exit
//	curl -s localhost:8080/v1/predict -d @doc.json
//	curl -s -X POST localhost:8080/v1/promote -d '{"version":2}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/serving"
	"repro/pkg/drybell"
	"repro/pkg/drybell/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		root      = flag.String("root", "", "disk-backed DFS root; empty serves from memory (state dies with the process)")
		task      = flag.String("task", "topic", "case study: topic or product")
		model     = flag.String("model", "", "model line to serve (default <task>-classifier)")
		mode      = flag.String("mode", "serve", "serve: run the daemon; train: stage a new version and exit")
		docs      = flag.Int("docs", 4000, "bootstrap corpus size")
		seed      = flag.Int64("seed", 1, "random seed for bootstrap training")
		steps     = flag.Int("steps", 300, "label model gradient steps during bootstrap")
		batch     = flag.Int("batch", 32, "max records per scoring micro-batch")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max wait to fill a micro-batch")
		workers   = flag.Int("workers", 0, "scoring worker pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 1024, "LRU capacity for online NLP/kgraph calls")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGTERM")
		retries   = flag.Int("retries", 2, "per-task retries (after the first attempt) for the training pipeline's MapReduce jobs")
		resume    = flag.Bool("resume", false, "resume a crashed training run from DFS checkpoints instead of restarting (needs -root)")
	)
	flag.Parse()
	if *model == "" {
		*model = *task + "-classifier"
	}
	if *resume && *root == "" {
		fmt.Fprintln(os.Stderr, "drybelld: -resume needs a durable -root; a fresh in-memory filesystem has no state to resume from")
		os.Exit(2)
	}
	if err := run(*addr, *root, *task, *model, *mode, *docs, *seed, *steps,
		*batch, *batchWait, *workers, *cacheSize, *drain, *retries, *resume); err != nil {
		fmt.Fprintf(os.Stderr, "drybelld: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, root, task, model, mode string, docs int, seed int64, steps,
	batch int, batchWait time.Duration, workers, cacheSize int, drain time.Duration,
	retries int, resume bool) error {
	// SIGINT/SIGTERM cancel the context: bootstrap runs abort cleanly, and
	// the serving loop drains before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var fsys drybell.FS
	if root == "" {
		fsys = drybell.NewMemFS()
	} else {
		var err error
		if fsys, err = drybell.NewDiskFS(root); err != nil {
			return err
		}
	}
	reg, err := serving.OpenFSRegistry(fsys, "serving")
	if err != nil {
		return err
	}
	runners, bigrams, err := taskRunners(task, cacheSize, seed)
	if err != nil {
		return err
	}

	switch mode {
	case "train":
		version, err := train(ctx, fsys, reg, task, model, runners, bigrams, docs, seed, steps, retries, resume, false)
		if err != nil {
			return err
		}
		fmt.Printf("staged %s v%d; promote it on a running daemon with:\n", model, version)
		fmt.Printf("  curl -s -X POST localhost%s/v1/promote -d '{\"version\":%d}'\n", portOf(addr), version)
		return nil
	case "serve":
		if _, err := reg.Live(model); err != nil {
			fmt.Printf("registry has no live %s; bootstrapping from %d synthetic documents...\n", model, docs)
			version, err := train(ctx, fsys, reg, task, model, runners, bigrams, docs, seed, steps, retries, resume, true)
			if err != nil {
				return err
			}
			fmt.Printf("bootstrapped and promoted %s v%d\n", model, version)
		}
		return serveHTTP(ctx, addr, fsys, reg, model, runners, batch, batchWait, workers, cacheSize, drain)
	default:
		return fmt.Errorf("unknown mode %q (serve or train)", mode)
	}
}

// taskRunners builds the task's labeling functions. Knowledge-graph LRU
// caching is owned by the templates (the apps sets cache by default); the
// daemon only passes its operator-tuned cache so -cache governs capacity.
func taskRunners(task string, cacheSize int, seed int64) ([]apps.DocLF, bool, error) {
	switch task {
	case "topic":
		kg, err := kgraph.NewCache(kgraph.Builtin(), cacheSize)
		if err != nil {
			return nil, false, err
		}
		return apps.TopicLFs(kg, 0.02, seed), true, nil
	case "product":
		return apps.ProductLFs(nil, seed), false, nil
	default:
		return nil, false, fmt.Errorf("unknown task %q (topic or product; the events DNN is not servable in-process)", task)
	}
}

func labelModelPath(model string) string { return "serving/labelmodel/" + model + ".json" }

// train runs the batch weak-supervision pipeline over a synthetic corpus on
// the daemon's own filesystem, trains the servable classifier on the
// probabilistic labels, stages it into the registry (promoting when asked),
// and persists the label model so the online /v1/label path can denoise
// votes without retraining. With resume, a run that crashed mid-pipeline
// picks up from the checkpoints the distributed runtime left on the DFS:
// the staged corpus is trusted, completed vote state is loaded, and only
// unfinished tasks re-execute.
func train(ctx context.Context, fsys drybell.FS, reg serving.Catalog, task, model string,
	runners []apps.DocLF, bigrams bool, n int, seed int64, steps, retries int, resume, promote bool) (int, error) {
	var all []*corpus.Document
	var err error
	switch task {
	case "topic":
		all, err = corpus.GenerateTopic(corpus.TopicSpec{NumDocs: n, PositiveRate: 0.05, Seed: seed})
	case "product":
		all, err = corpus.GenerateProduct(corpus.DefaultProductSpec(n, seed))
	}
	if err != nil {
		return 0, err
	}
	split, err := corpus.MakeSplit(len(all), n/12, n/5, seed+1)
	if err != nil {
		return 0, err
	}
	trainDocs := corpus.Select(all, split.Train)
	dev := corpus.Select(all, split.Dev)

	p, err := drybell.New[*corpus.Document](
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithFS(fsys),
		drybell.WithWorkDir("bootstrap/"+model),
		drybell.WithRetries(retries),
		drybell.WithResume(resume),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: steps, BatchSize: 64, LR: 0.05, Seed: seed + 2}),
	)
	if err != nil {
		return 0, err
	}
	res, err := p.Run(ctx, drybell.SliceSource(trainDocs), runners)
	if err != nil {
		return 0, err
	}
	clf, err := drybell.TrainContentClassifier(trainDocs, res.Posteriors, dev, drybell.ContentTrainConfig{
		FeatureDim: 1 << 16, Bigrams: bigrams, Iterations: 10 * len(trainDocs), Seed: seed + 3,
	})
	if err != nil {
		return 0, err
	}

	art, err := clf.Export(model)
	if err != nil {
		return 0, err
	}
	if err := serving.ValidateServable(art); err != nil {
		return 0, err
	}
	probes := clf.Hasher.DocumentVectors(dev[:min(len(dev), 50)], clf.Bigrams)
	if err := serving.ValidateLatency(art, probes, 100*time.Millisecond); err != nil {
		return 0, err
	}
	staged, err := reg.Stage(art)
	if err != nil {
		return 0, err
	}
	if promote {
		if err := reg.Promote(model, staged.Version); err != nil {
			return 0, err
		}
	}
	encoded, err := labelmodel.EncodeModel(res.Model)
	if err != nil {
		return 0, err
	}
	if err := fsys.WriteFile(labelModelPath(model), encoded); err != nil {
		return 0, err
	}
	return staged.Version, nil
}

func serveHTTP(ctx context.Context, addr string, fsys drybell.FS, reg serving.Catalog, model string,
	runners []apps.DocLF, batch int, batchWait time.Duration, workers, cacheSize int, drain time.Duration) error {
	var lm *labelmodel.Model
	if data, err := fsys.ReadFile(labelModelPath(model)); err == nil {
		if lm, err = labelmodel.DecodeModel(data); err != nil {
			return err
		}
		if lm.NumFuncs() != len(runners) {
			fmt.Printf("persisted label model covers %d LFs, task has %d; /v1/label serves votes only\n",
				lm.NumFuncs(), len(runners))
			lm = nil
		}
	} else {
		fmt.Println("no persisted label model; /v1/label serves votes only")
	}

	s, err := serve.New(serve.Config[*corpus.Document]{
		Registry:   reg,
		Model:      model,
		Decode:     corpus.UnmarshalDocument,
		Featurize:  serve.DocumentFeaturizer,
		LFs:        runners,
		LabelModel: lm,
		MaxBatch:   batch,
		BatchWait:  batchWait,
		Workers:    workers,
		CacheSize:  cacheSize,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving %s v%d on %s (predict, label, metrics, promote under /v1)\n",
		model, s.Version(), addr)

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting connections, let in-flight HTTP
	// requests finish, then drain the batcher. The drain deadline must be
	// independent of the already-canceled serve ctx, hence the fresh root.
	fmt.Println("signal received; draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain) //drybellvet:detached — drain must outlive the canceled serve ctx
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	s.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}

// portOf extracts the ":port" suffix for printed curl hints.
func portOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return addr
}
