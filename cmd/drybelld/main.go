// Command drybelld is the online serving daemon: it answers /v1/predict
// with the currently-promoted artifact from the FS-persisted serving
// registry (micro-batched, hot-swappable) and /v1/label by running the
// task's labeling functions online against a single record — the production
// end state of the paper's §5.3 pipeline.
//
// State lives on the distributed filesystem under -root, so the daemon
// recovers its promoted model across restarts, and a training run in
// another process can stage new versions into the same registry for a live
// promotion via POST /v1/promote (or /v1/reload).
//
// Usage:
//
//	drybelld -root /tmp/drybell-serve                 # bootstrap if empty, then serve
//	drybelld -root /tmp/drybell-serve -mode train -seed 2   # stage a new version and exit
//	curl -s localhost:8080/v1/predict -d @doc.json
//	curl -s -X POST localhost:8080/v1/promote -d '{"version":2}'
//	curl -s localhost:8080/metrics                    # Prometheus exposition
//	go tool pprof localhost:8080/debug/pprof/profile  # CPU profile
//
// Training can run multi-node: a train-mode coordinator started with
// -min-workers serves its task leases and DFS gateway on -addr and waits
// for that many worker processes before running the pipeline, and each
// worker process joins it with -mode worker -coordinator:
//
//	drybelld -mode train -min-workers 2 -addr :9090   # coordinator
//	drybelld -mode worker -coordinator http://host:9090   # each worker node
//
// Workers must be started with the same -task/-seed/-cache as the
// coordinator — the labeling functions live worker-side and only their
// names travel. On SIGTERM a worker drains gracefully: it finishes the
// task it holds, deregisters, and exits 0.
//
// Training can also run continuously: -mode train -continuous keeps the
// trainer alive after the base run, polling the corpus manifest every
// -watch for staged deltas. Each batch of deltas triggers delta-only LF
// execution (one vote generation per delta), a warm-start label-model
// retrain, a classifier retrain validated against the dev split
// (-min-dev-accuracy vetoes bad candidates), and a promotion — directly in
// the shared registry, or via POST /v1/promote on a running serve daemon
// when -promote-url is set. -mode append stages the next batch of synthetic
// documents as a corpus delta for the trainer to pick up; both sides only
// share the filesystem and the -task/-docs/-seed flags:
//
//	drybelld -root /tmp/d -mode train -continuous -rounds 10   # trainer
//	drybelld -root /tmp/d -mode append -append 400             # corpus grows
//
// The daemon always exposes its metrics registry — request counters and
// latency histograms shared with the /v1/metrics JSON snapshot, plus
// pipeline and filesystem metrics from bootstrap training — in Prometheus
// text format at /metrics, and the standard net/http/pprof profiling
// endpoints under /debug/pprof/. With -trace, spans are recorded (every
// request in serve mode, the whole pipeline in train mode) and written as a
// Perfetto-loadable Chrome trace on exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/serving"
	"repro/pkg/drybell"
	"repro/pkg/drybell/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		root         = flag.String("root", "", "disk-backed DFS root; empty serves from memory (state dies with the process)")
		task         = flag.String("task", "topic", "case study: topic or product")
		model        = flag.String("model", "", "model line to serve (default <task>-classifier)")
		mode         = flag.String("mode", "serve", "serve: run the daemon; train: stage a new version and exit; worker: execute tasks for a train-mode coordinator")
		coord        = flag.String("coordinator", "", "worker mode: base URL of the coordinator (e.g. http://host:9090)")
		minWork      = flag.Int("min-workers", 0, "train mode: serve a remote-worker coordinator on -addr and wait for this many workers before training (0 trains in-process)")
		docs         = flag.Int("docs", 4000, "bootstrap corpus size")
		seed         = flag.Int64("seed", 1, "random seed for bootstrap training")
		steps        = flag.Int("steps", 300, "label model gradient steps during bootstrap")
		batch        = flag.Int("batch", 32, "max records per scoring micro-batch")
		batchWait    = flag.Duration("batch-wait", 2*time.Millisecond, "max wait to fill a micro-batch")
		workers      = flag.Int("workers", 0, "scoring worker pool size (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "LRU capacity for online NLP/kgraph calls")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"graceful-drain bound on SIGTERM: in-flight HTTP requests (serve) or the leased task (worker) are abandoned after this long; 0 waits without bound")
		latencyBudget = flag.Duration("latency-budget", 100*time.Millisecond,
			"admission latency budget for /v1/predict: sustained queue waits above this shed new arrivals with 429 + Retry-After (negative disables admission control)")
		maxQueue  = flag.Int("max-queue", 0, "bound on predict requests queued or scoring at once (0 = 8x -batch)")
		deadline  = flag.Duration("deadline", 0, "server-imposed per-request deadline when the client sends no X-Request-Deadline header (0 = none)")
		retries   = flag.Int("retries", 2, "per-task retries (after the first attempt) for the training pipeline's MapReduce jobs")
		resume    = flag.Bool("resume", false, "resume a crashed training run from DFS checkpoints instead of restarting (needs -root)")
		tracePath = flag.String("trace", "", "record spans and write a Chrome trace-event timeline to this file on exit (load in Perfetto)")

		continuous = flag.Bool("continuous", false,
			"train mode: keep running after the base train, watching the corpus manifest for staged deltas (see -mode append); each batch of deltas triggers delta LF execution, a warm-start retrain, dev validation, and a promotion")
		watch      = flag.Duration("watch", 2*time.Second, "continuous mode: corpus-manifest poll interval")
		rounds     = flag.Int("rounds", 0, "continuous mode: exit after this many incremental rounds (0 = run until SIGTERM)")
		promoteURL = flag.String("promote-url", "",
			"continuous mode: base URL of a running serve daemon to POST /v1/promote to; empty promotes directly in the shared registry (the daemon's next /v1/reload or restart picks it up)")
		minDevAcc = flag.Float64("min-dev-accuracy", 0,
			"continuous mode: candidate models below this dev-set accuracy are not promoted (0 disables the gate)")
		appendDocs = flag.Int("append", 0, "append mode: synthetic documents to stage as the next corpus delta (0 = 10%% of -docs)")
	)
	flag.Parse()
	if *model == "" {
		*model = *task + "-classifier"
	}
	inc := incrementalFlags{
		continuous: *continuous,
		watch:      *watch,
		rounds:     *rounds,
		promoteURL: *promoteURL,
		minDevAcc:  *minDevAcc,
		appendDocs: *appendDocs,
	}
	if err := validateFlags(*mode, *coord, *root, *resume, *minWork, inc); err != nil {
		fmt.Fprintf(os.Stderr, "drybelld: %v\n", err)
		os.Exit(2)
	}
	if err := run(*addr, *root, *task, *model, *mode, *coord, *docs, *seed, *steps,
		*batch, *batchWait, *workers, *minWork, *cacheSize, *drainTimeout,
		*latencyBudget, *maxQueue, *deadline, *retries, *resume, *tracePath, inc); err != nil {
		fmt.Fprintf(os.Stderr, "drybelld: %v\n", err)
		os.Exit(1)
	}
}

// incrementalFlags bundles the continuous-training and append-mode flags.
type incrementalFlags struct {
	continuous bool
	watch      time.Duration
	rounds     int
	promoteURL string
	minDevAcc  float64
	appendDocs int
}

// validateFlags rejects bad flag combinations before any state — files,
// listeners, registries — is touched, so a misconfigured node fails fast
// with a usage error (exit 2) instead of dying mid-pipeline.
func validateFlags(mode, coordinator, root string, resume bool, minWorkers int, inc incrementalFlags) error {
	if minWorkers < 0 {
		return fmt.Errorf("-min-workers %d: want >= 0", minWorkers)
	}
	if inc.continuous && mode != "train" {
		return fmt.Errorf("-continuous only applies to -mode train (mode is %q)", mode)
	}
	if inc.continuous && inc.watch <= 0 {
		return fmt.Errorf("-watch %v: the continuous loop needs a positive poll interval", inc.watch)
	}
	if inc.rounds < 0 {
		return fmt.Errorf("-rounds %d: want >= 0", inc.rounds)
	}
	if inc.minDevAcc < 0 || inc.minDevAcc >= 1 {
		return fmt.Errorf("-min-dev-accuracy %v: want in [0, 1)", inc.minDevAcc)
	}
	if inc.promoteURL != "" && !inc.continuous {
		return errors.New("-promote-url only applies to -continuous training; one-shot train mode prints the curl instead")
	}
	if inc.appendDocs != 0 && mode != "append" {
		return fmt.Errorf("-append only applies to -mode append (mode is %q)", mode)
	}
	switch mode {
	case "worker":
		if coordinator == "" {
			return errors.New("-mode worker needs -coordinator <url>: a worker is nothing without its coordinator")
		}
		if resume {
			return errors.New("-resume is a coordinator-side flag: workers hold no checkpoints, the coordinator's runtime decides what re-executes")
		}
		if minWorkers != 0 {
			return errors.New("-min-workers is a coordinator-side flag; a worker node waits for no one")
		}
	case "append":
		if root == "" {
			return errors.New("-mode append needs a durable -root: the staged delta must land on the filesystem the trainer watches")
		}
		if coordinator != "" || minWorkers > 0 || resume {
			return errors.New("-mode append only stages a corpus delta; -coordinator, -min-workers, and -resume do not apply")
		}
		if inc.appendDocs < 0 {
			return fmt.Errorf("-append %d: want >= 0", inc.appendDocs)
		}
	default:
		if coordinator != "" {
			return fmt.Errorf("-coordinator only applies to -mode worker (mode is %q)", mode)
		}
		if minWorkers > 0 && mode != "train" {
			return fmt.Errorf("-min-workers only applies to -mode train (mode is %q)", mode)
		}
		if resume && root == "" {
			return errors.New("-resume needs a durable -root; a fresh in-memory filesystem has no state to resume from")
		}
	}
	return nil
}

func run(addr, root, task, model, mode, coordinator string, docs int, seed int64, steps,
	batch int, batchWait time.Duration, workers, minWorkers, cacheSize int, drainTimeout time.Duration,
	latencyBudget time.Duration, maxQueue int, deadline time.Duration,
	retries int, resume bool, tracePath string, inc incrementalFlags) error {
	// SIGINT/SIGTERM cancel the context: bootstrap runs abort cleanly, the
	// serving loop drains before exiting, and a worker finishes its leased
	// task and deregisters.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Worker mode never touches local state: its filesystem is the
	// coordinator's DFS gateway, its work arrives as task leases.
	if mode == "worker" {
		return runWorkerNode(ctx, coordinator, task, cacheSize, seed, drainTimeout)
	}

	// One observer backs everything the process does: pipeline and DFS
	// metrics during training, request metrics while serving, and — when
	// -trace is set — the span timeline written on exit.
	observer := drybell.NewObserver()
	if tracePath != "" {
		defer func() {
			if err := writeTraceFile(tracePath, observer); err != nil {
				fmt.Fprintf(os.Stderr, "drybelld: writing trace: %v\n", err)
				return
			}
			fmt.Printf("trace written to %s (load in https://ui.perfetto.dev)\n", tracePath)
		}()
	}

	var fsys drybell.FS
	if root == "" {
		fsys = drybell.NewMemFS()
	} else {
		var err error
		if fsys, err = drybell.NewDiskFS(root); err != nil {
			return err
		}
	}
	reg, err := serving.OpenFSRegistry(fsys, "serving")
	if err != nil {
		return err
	}
	runners, bigrams, err := taskRunners(task, cacheSize, seed)
	if err != nil {
		return err
	}

	switch mode {
	case "append":
		k := inc.appendDocs
		if k <= 0 {
			k = docs / 10
		}
		return runAppend(ctx, fsys, observer, task, model, docs, seed, steps, retries, k)
	case "train":
		pool, stopPool, err := startCoordinator(ctx, addr, fsys, observer, minWorkers)
		if err != nil {
			return err
		}
		defer stopPool()
		if inc.continuous {
			return runContinuous(ctx, fsys, reg, observer, task, model, runners, bigrams,
				docs, seed, steps, retries, resume, pool, inc)
		}
		version, err := train(ctx, fsys, reg, observer, task, model, runners, bigrams, docs, seed, steps, retries, resume, false, pool)
		if err != nil {
			return err
		}
		fmt.Printf("staged %s v%d; promote it on a running daemon with:\n", model, version)
		fmt.Printf("  curl -s -X POST localhost%s/v1/promote -d '{\"version\":%d}'\n", portOf(addr), version)
		return nil
	case "serve":
		if _, err := reg.Live(model); err != nil {
			fmt.Printf("registry has no live %s; bootstrapping from %d synthetic documents...\n", model, docs)
			version, err := train(ctx, fsys, reg, observer, task, model, runners, bigrams, docs, seed, steps, retries, resume, true, nil)
			if err != nil {
				return err
			}
			fmt.Printf("bootstrapped and promoted %s v%d\n", model, version)
		}
		return serveHTTP(ctx, addr, fsys, reg, observer, model, runners, batch, batchWait, workers, cacheSize,
			drainTimeout, latencyBudget, maxQueue, deadline, tracePath != "")
	default:
		return fmt.Errorf("unknown mode %q (serve, train, append, or worker)", mode)
	}
}

// runWorkerNode is -mode worker: register the task's labeling functions in
// a job-code registry, join the coordinator, and execute leased tasks until
// SIGTERM — then finish the task in hand, deregister, and exit 0.
func runWorkerNode(ctx context.Context, coordinator, task string, cacheSize int, seed int64, drainTimeout time.Duration) error {
	runners, _, err := taskRunners(task, cacheSize, seed)
	if err != nil {
		return err
	}
	jobs := drybell.NewRemoteRegistry()
	if err := drybell.RegisterRemoteLFs(jobs, runners, corpus.UnmarshalDocument); err != nil {
		return err
	}
	name := fmt.Sprintf("%s-worker-%d", task, os.Getpid())
	fmt.Printf("worker %s joining coordinator %s (%d labeling functions)\n", name, coordinator, len(runners))
	if err := drybell.RunRemoteWorker(ctx, drybell.RemoteWorkerOptions{
		Coordinator:  coordinator,
		Name:         name,
		Jobs:         jobs,
		DrainTimeout: drainTimeout,
	}); err != nil {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}

// startCoordinator, when minWorkers > 0, serves a remote-worker pool on
// addr and blocks until that many workers register; training then routes
// every labeling-function task to them. With minWorkers == 0 it is a no-op
// and training stays in-process.
func startCoordinator(ctx context.Context, addr string, fsys drybell.FS, observer *drybell.Observer, minWorkers int) (*drybell.RemotePool, func(), error) {
	if minWorkers == 0 {
		return nil, func() {}, nil
	}
	pool, err := drybell.NewRemotePool(drybell.RemotePoolOptions{FS: fsys, Observer: observer})
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Addr: addr, Handler: pool.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("coordinator on %s; waiting for %d workers...\n", addr, minWorkers)
	stopAll := func() {
		pool.Close()
		srv.Close()
	}
	if err := pool.AwaitWorkers(ctx, minWorkers); err != nil {
		stopAll()
		// A listener that never came up (port in use) is the root cause;
		// prefer its error over the wait's.
		select {
		case serveErr := <-errc:
			return nil, nil, serveErr
		default:
			return nil, nil, err
		}
	}
	fmt.Printf("%d workers registered; training\n", pool.NumWorkers())
	return pool, stopAll, nil
}

// writeTraceFile dumps the observer's recorded spans as Chrome trace-event
// JSON.
func writeTraceFile(path string, o *drybell.Observer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := drybell.WriteTrace(f, o); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// taskRunners builds the task's labeling functions. Knowledge-graph LRU
// caching is owned by the templates (the apps sets cache by default); the
// daemon only passes its operator-tuned cache so -cache governs capacity.
func taskRunners(task string, cacheSize int, seed int64) ([]apps.DocLF, bool, error) {
	switch task {
	case "topic":
		kg, err := kgraph.NewCache(kgraph.Builtin(), cacheSize)
		if err != nil {
			return nil, false, err
		}
		return apps.TopicLFs(kg, 0.02, seed), true, nil
	case "product":
		return apps.ProductLFs(nil, seed), false, nil
	default:
		return nil, false, fmt.Errorf("unknown task %q (topic or product; the events DNN is not servable in-process)", task)
	}
}

func labelModelPath(model string) string { return "serving/labelmodel/" + model + ".json" }

// train runs the batch weak-supervision pipeline over a synthetic corpus on
// the daemon's own filesystem, trains the servable classifier on the
// probabilistic labels, stages it into the registry (promoting when asked),
// and persists the label model so the online /v1/label path can denoise
// votes without retraining. With resume, a run that crashed mid-pipeline
// picks up from the checkpoints the distributed runtime left on the DFS:
// the staged corpus is trusted, completed vote state is loaded, and only
// unfinished tasks re-execute.
func train(ctx context.Context, fsys drybell.FS, reg serving.Catalog, observer *drybell.Observer, task, model string,
	runners []apps.DocLF, bigrams bool, n int, seed int64, steps, retries int, resume, promote bool,
	pool *drybell.RemotePool) (int, error) {
	trainDocs, dev, _, err := syntheticCorpus(task, n, seed, 0)
	if err != nil {
		return 0, err
	}
	p, err := trainPipeline(fsys, observer, model, seed, steps, retries, resume, pool)
	if err != nil {
		return 0, err
	}
	res, err := p.Run(ctx, drybell.SliceSource(trainDocs), runners)
	if err != nil {
		return 0, err
	}
	if rep := res.LFReport; rep != nil {
		fmt.Printf("execution: %d task attempts (%d speculative), %d tasks resumed\n",
			rep.TaskAttempts, rep.SpeculativeAttempts, rep.TasksResumed)
	}
	clf, err := drybell.TrainContentClassifier(trainDocs, res.Posteriors, dev, drybell.ContentTrainConfig{
		FeatureDim: 1 << 16, Bigrams: bigrams, Iterations: 10 * len(trainDocs), Seed: seed + 3,
	})
	if err != nil {
		return 0, err
	}
	version, err := stageVersion(fsys, reg, model, clf, res.Model, dev)
	if err != nil {
		return 0, err
	}
	if promote {
		if err := reg.Promote(model, version); err != nil {
			return 0, err
		}
	}
	return version, nil
}

// syntheticCorpus reconstructs the daemon's synthetic world from (task, n,
// seed): the base train/dev split over the first n documents, plus `extra`
// appended documents beyond them. The generators are prefix-stable —
// generating n+extra documents with the same seed yields the n base
// documents unchanged — which is what lets an append-mode process and a
// continuous trainer agree on the corpus without exchanging anything but
// the filesystem.
func syntheticCorpus(task string, n int, seed int64, extra int) (trainDocs, dev, appended []*corpus.Document, err error) {
	var all []*corpus.Document
	switch task {
	case "topic":
		all, err = corpus.GenerateTopic(corpus.TopicSpec{NumDocs: n + extra, PositiveRate: 0.05, Seed: seed})
	case "product":
		all, err = corpus.GenerateProduct(corpus.DefaultProductSpec(n+extra, seed))
	default:
		err = fmt.Errorf("unknown task %q", task)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	split, err := corpus.MakeSplit(n, n/12, n/5, seed+1)
	if err != nil {
		return nil, nil, nil, err
	}
	base := all[:n]
	return corpus.Select(base, split.Train), corpus.Select(base, split.Dev), all[n:], nil
}

// trainPipeline builds the daemon's training pipeline over its filesystem —
// one construction shared by one-shot train, append, and continuous modes so
// they all agree on the work directory and codec.
func trainPipeline(fsys drybell.FS, observer *drybell.Observer, model string, seed int64, steps, retries int,
	resume bool, pool *drybell.RemotePool) (*drybell.Pipeline[*corpus.Document], error) {
	opts := []drybell.Option{
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithFS(fsys),
		drybell.WithWorkDir("bootstrap/" + model),
		drybell.WithRetries(retries),
		drybell.WithResume(resume),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: steps, BatchSize: 64, LR: 0.05, Seed: seed + 2}),
		drybell.WithObserver(observer),
	}
	if pool != nil {
		opts = append(opts, drybell.WithRemoteWorkers(pool))
	}
	return drybell.New[*corpus.Document](opts...)
}

// stageVersion exports the classifier, validates servability and latency on
// dev probes, stages it into the registry, and persists the label model the
// online /v1/label path denoises with. It does not promote.
func stageVersion(fsys drybell.FS, reg serving.Catalog, model string,
	clf *drybell.ContentClassifier, lm *labelmodel.Model, dev []*corpus.Document) (int, error) {
	art, err := clf.Export(model)
	if err != nil {
		return 0, err
	}
	if err := serving.ValidateServable(art); err != nil {
		return 0, err
	}
	probes := clf.Hasher.DocumentVectors(dev[:min(len(dev), 50)], clf.Bigrams)
	if err := serving.ValidateLatency(art, probes, 100*time.Millisecond); err != nil {
		return 0, err
	}
	staged, err := reg.Stage(art)
	if err != nil {
		return 0, err
	}
	encoded, err := labelmodel.EncodeModel(lm)
	if err != nil {
		return 0, err
	}
	if err := fsys.WriteFile(labelModelPath(model), encoded); err != nil {
		return 0, err
	}
	return staged.Version, nil
}

func serveHTTP(ctx context.Context, addr string, fsys drybell.FS, reg serving.Catalog, observer *drybell.Observer, model string,
	runners []apps.DocLF, batch int, batchWait time.Duration, workers, cacheSize int,
	drainTimeout, latencyBudget time.Duration, maxQueue int, deadline time.Duration, traceRequests bool) error {
	var lm *labelmodel.Model
	if data, err := fsys.ReadFile(labelModelPath(model)); err == nil {
		if lm, err = labelmodel.DecodeModel(data); err != nil {
			return err
		}
		if lm.NumFuncs() != len(runners) {
			fmt.Printf("persisted label model covers %d LFs, task has %d; /v1/label serves votes only\n",
				lm.NumFuncs(), len(runners))
			lm = nil
		}
	} else {
		fmt.Println("no persisted label model; /v1/label serves votes only")
	}

	s, err := serve.New(serve.Config[*corpus.Document]{
		Registry:        reg,
		Model:           model,
		Decode:          corpus.UnmarshalDocument,
		Featurize:       serve.DocumentFeaturizer,
		LFs:             runners,
		LabelModel:      lm,
		Metrics:         observer.Metrics,
		MaxBatch:        batch,
		BatchWait:       batchWait,
		Workers:         workers,
		CacheSize:       cacheSize,
		LatencyBudget:   latencyBudget,
		MaxQueue:        maxQueue,
		DefaultDeadline: deadline,
	})
	if err != nil {
		return err
	}

	// The API handler mounts at the root; the operational endpoints —
	// Prometheus exposition over the shared registry, the standard pprof
	// profile handlers — sit beside it on the same listener.
	api := http.Handler(s.Handler())
	if traceRequests {
		next := api
		api = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			next.ServeHTTP(w, r.WithContext(observer.Context(r.Context())))
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("GET /metrics", observer.Metrics.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving %s v%d on %s (predict, label, metrics, promote under /v1; Prometheus at /metrics, profiles at /debug/pprof/)\n",
		model, s.Version(), addr)

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting connections, let in-flight HTTP
	// requests finish, then drain the batcher. The drain deadline must be
	// independent of the already-canceled serve ctx, hence the fresh root.
	fmt.Println("signal received; draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout) //drybellvet:detached — drain must outlive the canceled serve ctx
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	s.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}

// portOf extracts the ":port" suffix for printed curl hints.
func portOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return addr
}
