// Command drybell runs the full weak-supervision pipeline end to end for
// one of the three case studies and prints the per-stage report: labeling
// function execution, generative-model training, probabilistic-label
// statistics, discriminative training, and test metrics.
//
// Usage:
//
//	drybell -task topic -docs 30000
//	drybell -task product -docs 30000 -trainer gibbs
//	drybell -task events -docs 12000
//	drybell -task topic -docs 5000 -trace trace.json   # Perfetto-loadable timeline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/model"
	"repro/pkg/drybell"
)

func main() {
	var (
		task    = flag.String("task", "topic", "case study: topic, product, or events")
		docs    = flag.Int("docs", 30000, "corpus size")
		trainer = flag.String("trainer", drybell.TrainerSamplingFree,
			"label model trainer: "+strings.Join(drybell.Trainers(), ", "))
		seed  = flag.Int64("seed", 1, "random seed")
		steps = flag.Int("steps", 800, "label model gradient steps")
		trace = flag.String("trace", "", "write a Chrome trace-event timeline of the run to this file (load in Perfetto)")
	)
	flag.Parse()

	// Fail fast on a bad trainer name, before corpus generation and LF
	// execution burn minutes of work.
	if !drybell.HasTrainer(*trainer) {
		fmt.Fprintf(os.Stderr, "drybell: unknown trainer %q (available: %s)\n",
			*trainer, strings.Join(drybell.Trainers(), ", "))
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the pipeline context: the run aborts between
	// records instead of dying mid-write, leaving the DFS state clean.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var observer *drybell.Observer
	if *trace != "" {
		observer = drybell.NewObserver()
	}

	var err error
	switch *task {
	case "topic", "product":
		err = runContent(ctx, *task, *docs, *trainer, *seed, *steps, observer)
	case "events":
		err = runEvents(ctx, *docs, *trainer, *seed, *steps, observer)
	default:
		err = fmt.Errorf("unknown task %q", *task)
	}
	if err == nil && observer != nil {
		if err = writeTrace(*trace, observer); err == nil {
			fmt.Printf("\ntrace written to %s (load in https://ui.perfetto.dev)\n", *trace)
		}
	}
	if err != nil {
		code := 1
		if errors.Is(err, context.Canceled) {
			code = 130 // conventional interrupted-by-signal exit
		}
		fmt.Fprintf(os.Stderr, "drybell: %v\n", err)
		os.Exit(code)
	}
}

func contentPipeline(trainer string, seed int64, steps int, observer *drybell.Observer) (*drybell.Pipeline[*corpus.Document], error) {
	opts := []drybell.Option{
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithTrainer(trainer),
		drybell.WithLabelModel(drybell.LabelModelOptions{
			Steps: steps, BatchSize: 64, LR: 0.05, Seed: seed + 2,
		}),
	}
	if observer != nil {
		opts = append(opts, drybell.WithObserver(observer))
	}
	return drybell.New[*corpus.Document](opts...)
}

// writeTrace dumps the observer's recorded spans as Chrome trace-event JSON.
func writeTrace(path string, o *drybell.Observer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := drybell.WriteTrace(f, o); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runContent(ctx context.Context, task string, n int, trainer string, seed int64, steps int, observer *drybell.Observer) error {
	var docs []*corpus.Document
	var runners []apps.DocLF
	var bigrams bool
	var err error
	switch task {
	case "topic":
		docs, err = corpus.GenerateTopic(corpus.DefaultTopicSpec(n, seed))
		runners = apps.TopicLFs(nil, 0.02, seed)
		bigrams = true
	case "product":
		docs, err = corpus.GenerateProduct(corpus.DefaultProductSpec(n, seed))
		runners = apps.ProductLFs(nil, seed)
	}
	if err != nil {
		return err
	}
	split, err := corpus.MakeSplit(len(docs), n/12, n/5, seed+1)
	if err != nil {
		return err
	}
	train := corpus.Select(docs, split.Train)
	dev := corpus.Select(docs, split.Dev)
	test := corpus.Select(docs, split.Test)
	fmt.Printf("task=%s corpus=%d (train %d / dev %d / test %d), %d labeling functions\n",
		task, len(docs), len(train), len(dev), len(test), len(runners))

	p, err := contentPipeline(trainer, seed, steps, observer)
	if err != nil {
		return err
	}
	res, err := p.Run(ctx, drybell.SliceSource(train), runners)
	if err != nil {
		return err
	}
	printRun(res)

	clf, err := drybell.TrainContentClassifier(train, res.Posteriors, dev, drybell.ContentTrainConfig{
		Bigrams: bigrams, Iterations: 20 * len(train), Seed: seed + 3,
	})
	if err != nil {
		return err
	}
	met, err := clf.Evaluate(test)
	if err != nil {
		return err
	}
	fmt.Printf("\nservable classifier on test (threshold %.2f): P=%.3f R=%.3f F1=%.3f\n",
		clf.Threshold, met.Precision, met.Recall, met.F1)
	return nil
}

func runEvents(ctx context.Context, n int, trainer string, seed int64, steps int, observer *drybell.Observer) error {
	events, err := corpus.GenerateEvents(corpus.DefaultEventsSpec(n, seed))
	if err != nil {
		return err
	}
	runners := apps.EventLFs(apps.NumEventLFs, seed)
	fmt.Printf("task=events stream=%d, %d labeling functions over non-servable features\n",
		len(events), len(runners))
	opts := []drybell.Option{
		drybell.WithCodec(
			func(e *corpus.Event) ([]byte, error) { return e.Marshal() },
			corpus.UnmarshalEvent,
		),
		drybell.WithTrainer(trainer),
		drybell.WithLabelModel(drybell.LabelModelOptions{
			Steps: steps, BatchSize: 64, LR: 0.05, Seed: seed + 2,
		}),
	}
	if observer != nil {
		opts = append(opts, drybell.WithObserver(observer))
	}
	p, err := drybell.New[*corpus.Event](opts...)
	if err != nil {
		return err
	}
	res, err := p.Run(ctx, drybell.SliceSource(events), runners)
	if err != nil {
		return err
	}
	printRun(res)

	clf, err := drybell.TrainEventClassifier(events, res.Posteriors, drybell.EventTrainConfig{
		Hidden: []int{32, 16}, Epochs: 4, Seed: seed + 3,
	})
	if err != nil {
		return err
	}
	met, err := clf.Evaluate(events)
	if err != nil {
		return err
	}
	fmt.Printf("\nservable DNN (event-level features only): P=%.3f R=%.3f F1=%.3f\n",
		met.Precision, met.Recall, met.F1)
	return nil
}

// printRun reports pipeline stages and the LF quality ranking (§3.3: the
// estimated accuracies surface low-quality sources).
func printRun(res *drybell.Result) {
	fmt.Printf("\npipeline: stage=%v execute=%v labelmodel=%v persist=%v\n",
		res.Timings.Stage.Round(1e6), res.Timings.Execute.Round(1e6),
		res.Timings.TrainLabelModel.Round(1e6), res.Timings.Persist.Round(1e6))
	fmt.Printf("execution: %d task attempts (%d speculative), %d tasks resumed\n",
		res.LFReport.TaskAttempts, res.LFReport.SpeculativeAttempts, res.LFReport.TasksResumed)
	fmt.Printf("labels written to %s\n\n", res.LabelsPath)

	fmt.Printf("%-34s %9s %9s %9s %9s\n", "labeling function", "pos", "neg", "abstain", "acc(est)")
	acc := res.Model.Accuracies()
	type row struct {
		i int
		a float64
	}
	rows := make([]row, len(acc))
	for i, a := range acc {
		rows[i] = row{i, a}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].a < rows[b].a })
	for _, r := range rows {
		rep := res.LFReport.PerLF[r.i]
		fmt.Printf("%-34s %9d %9d %9d %8.3f\n", rep.Name, rep.Positives, rep.Negatives, rep.Abstains, r.a)
	}

	h := model.NewHistogram(res.Posteriors, 10)
	fmt.Printf("\nprobabilistic labels: %d, mass at extremes %.1f%%, entropy %.2f\n",
		len(res.Posteriors), 100*h.MassAtExtremes(), h.Entropy())
}
