// Command drybell-inc is the incremental-equivalence smoke driver
// (scripts/incremental_smoke.sh): small single-purpose modes that let a shell
// script prove, on a real on-disk root, that the incremental path is a pure
// latency optimization — a base run plus a staged delta plus IncrementalRun
// plus Compact leaves artifacts byte-identical to a cold full rerun, while
// executing only the delta's documents.
//
// Unlike drybelld, every mode trains over the entire generated corpus with no
// train/dev/test split: corpus.MakeSplit is corpus-size-dependent, so a split
// world can never make an N-doc-plus-delta run and an (N+K)-doc cold run
// stage the same documents. The generators are prefix-stable, which is all
// the delta mode needs.
//
// Modes:
//
//	drybell-inc -mode base -root DIR -docs N          # stage + full base run
//	drybell-inc -mode delta -root DIR -docs N -delta K # stage K more, IncrementalRun, Compact
//	drybell-inc -mode full -root DIR -docs M          # cold full run (the reference)
//	drybell-inc -mode compare -root DIR -cold DIR2    # labels: exact equality
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/pkg/drybell"
)

func main() {
	var (
		mode   = flag.String("mode", "", "base, delta, full, or compare")
		root   = flag.String("root", "", "pipeline root directory")
		cold   = flag.String("cold", "", "cold-rerun root directory (compare mode)")
		docs   = flag.Int("docs", 900, "base corpus size (full mode: total corpus size)")
		delta  = flag.Int("delta", 0, "documents to append in delta mode")
		seed   = flag.Int64("seed", 7, "corpus seed (must match across modes)")
		steps  = flag.Int("steps", 200, "label model gradient steps")
		shards = flag.Int("shards", 4, "DFS shards (must match across modes)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *root == "" {
		fmt.Fprintln(os.Stderr, "drybell-inc: -root is required")
		os.Exit(2)
	}
	var err error
	switch *mode {
	case "base":
		err = runFull(ctx, *root, *docs, *seed, *steps, *shards, "base")
	case "full":
		err = runFull(ctx, *root, *docs, *seed, *steps, *shards, "full")
	case "delta":
		err = runDelta(ctx, *root, *docs, *delta, *seed, *steps, *shards)
	case "compare":
		if *cold == "" {
			fmt.Fprintln(os.Stderr, "drybell-inc: -mode compare needs -cold")
			os.Exit(2)
		}
		err = runCompare(*root, *cold, *seed, *steps, *shards)
	default:
		err = fmt.Errorf("unknown -mode %q (want base, delta, full, or compare)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drybell-inc: %v\n", err)
		os.Exit(1)
	}
}

// newPipeline opens the smoke pipeline at an on-disk root. Training is
// pinned to the sampling-free fast trainer — the one IncrementalRun always
// uses — so cold reference runs go through the identical training path.
func newPipeline(root string, seed int64, steps, shards int) (*drybell.Pipeline[*corpus.Document], error) {
	fsys, err := drybell.NewDiskFS(root)
	if err != nil {
		return nil, err
	}
	return drybell.New[*corpus.Document](
		drybell.WithFS(fsys),
		drybell.WithWorkDir("inc"),
		drybell.WithShards(shards),
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithTrainer(drybell.TrainerSamplingFreeFast),
		drybell.WithLabelModel(drybell.LabelModelOptions{
			Steps: steps, BatchSize: 64, LR: 0.05, Seed: seed + 2,
		}),
	)
}

func generate(n int, seed int64) ([]*corpus.Document, error) {
	return corpus.GenerateTopic(corpus.TopicSpec{NumDocs: n, PositiveRate: 0.05, Seed: seed})
}

func runners() []apps.DocLF { return apps.TopicLFs(nil, 0.02, 1) }

// runFull stages n documents and runs the whole pipeline — the base for a
// later delta ("base") or the cold reference over the final corpus ("full").
func runFull(ctx context.Context, root string, n int, seed int64, steps, shards int, what string) error {
	p, err := newPipeline(root, seed, steps, shards)
	if err != nil {
		return err
	}
	all, err := generate(n, seed)
	if err != nil {
		return err
	}
	res, err := p.Run(ctx, drybell.SliceSource(all), runners())
	if err != nil {
		return err
	}
	fmt.Printf("%s: docs=%d task_attempts=%d labels=%s\n", what, n, res.LFReport.TaskAttempts, res.LabelsPath)
	return nil
}

// runDelta appends the next k prefix-stable documents as a corpus delta,
// advances the pipeline with one warm IncrementalRun, and compacts — leaving
// flat artifacts for the byte-comparison against the cold root. The printed
// delta_docs count is the witness that only the delta was executed.
func runDelta(ctx context.Context, root string, n, k int, seed int64, steps, shards int) error {
	if k <= 0 {
		return fmt.Errorf("-mode delta needs -delta > 0")
	}
	p, err := newPipeline(root, seed, steps, shards)
	if err != nil {
		return err
	}
	total, err := p.CorpusRows()
	if err != nil {
		return fmt.Errorf("delta needs a completed base run under -root: %w", err)
	}
	if total != n {
		return fmt.Errorf("root has %d staged rows, -docs says %d; the corpora would diverge", total, n)
	}
	all, err := generate(n+k, seed)
	if err != nil {
		return err
	}
	// Warm-start state lives in the Pipeline, not on disk, and the base run
	// happened in another process. A caught-up IncrementalRun (no pending
	// deltas: no LF execution, just training over the base view) establishes
	// it, so the delta round below exercises the real warm-start path.
	if _, err := p.IncrementalRun(ctx, runners()); err != nil {
		return fmt.Errorf("warm-up run: %w", err)
	}
	res, err := p.IncrementalRun(ctx, runners(), drybell.WithCorpusDelta(drybell.SliceSource(all[n:])))
	if err != nil {
		return err
	}
	fmt.Printf("delta: generations=%v delta_docs=%d delta_tasks=%d warm_started=%v warm_iterations=%d\n",
		res.Generations, res.DeltaExamples, res.DeltaTaskAttempts, res.WarmStarted, res.WarmIterations)
	if err := p.Compact(); err != nil {
		return fmt.Errorf("compact: %w", err)
	}
	fmt.Println("compacted: ledgers folded into flat artifacts")
	return nil
}

// runCompare loads the persisted labels from the incremental root and the
// cold root and requires them to be identical: warm and cold training are
// the same pure function of the vote matrix, so every persisted posterior
// must match exactly. (The vote artifacts themselves are byte-compared by
// the smoke script, not here.)
func runCompare(root, cold string, seed int64, steps, shards int) error {
	pa, err := newPipeline(root, seed, steps, shards)
	if err != nil {
		return err
	}
	pb, err := newPipeline(cold, seed, steps, shards)
	if err != nil {
		return err
	}
	a, err := pa.Labels()
	if err != nil {
		return fmt.Errorf("incremental labels: %w", err)
	}
	b, err := pb.Labels()
	if err != nil {
		return fmt.Errorf("cold labels: %w", err)
	}
	if len(a) != len(b) {
		return fmt.Errorf("incremental run persisted %d labels, cold rerun %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("label %d diverged: incremental %g, cold %g", i, a[i], b[i])
		}
	}
	fmt.Printf("compare: labels=%d identical\n", len(a))
	return nil
}
