// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark corpora.
//
// Usage:
//
//	experiments -run all
//	experiments -run table2 -topic-docs 60000
//	experiments -run table1,figure5 -seed 11
//	experiments -run scale -paper-scale   # 684K-document throughput run
//
// Experiment ids: table1 table2 table3 table4 figure2 figure5 figure6
// events p1 scale (or "all").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run         = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		topicDocs   = flag.Int("topic-docs", 0, "topic corpus size (default 60000)")
		productDocs = flag.Int("product-docs", 0, "product corpus size (default 60000)")
		events      = flag.Int("events", 0, "events stream size (default 12000)")
		seed        = flag.Int64("seed", 0, "random seed (default 2019)")
		paperScale  = flag.Bool("paper-scale", false, "use the paper's corpus sizes (684K topic, 6.5M product; slow)")
	)
	flag.Parse()

	cfg := experiments.Config{
		TopicDocs: *topicDocs, ProductDocs: *productDocs, Events: *events, Seed: *seed,
	}
	if *paperScale {
		cfg.TopicDocs = 684000
		cfg.ProductDocs = 6500000
	}

	type experiment struct {
		id  string
		fn  func(experiments.Config) (reporter, error)
		hdr string
	}
	all := []experiment{
		{"table1", wrap(experiments.Table1), "Table 1 — dataset statistics"},
		{"table2", wrap(experiments.Table2), "Table 2 — generative model vs DryBell"},
		{"table3", wrap(experiments.Table3), "Table 3 — servable-LF ablation"},
		{"table4", wrap(experiments.Table4), "Table 4 — equal-weights ablation"},
		{"figure2", wrap(experiments.Figure2), "Figure 2 — LF category census"},
		{"figure5", wrap(experiments.Figure5), "Figure 5 — hand-label trade-off"},
		{"figure6", wrap(experiments.Figure6), "Figure 6 — score histograms"},
		{"events", wrap(experiments.Events), "§6.4 — real-time events"},
		{"p1", wrap(experiments.P1), "P1 — sampling-free vs Gibbs"},
		{"scale", wrap(experiments.P2), "P2 — pipeline throughput"},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ranAny := false
	for _, e := range all {
		if !want["all"] && !want[e.id] {
			continue
		}
		ranAny = true
		fmt.Printf("==== %s ====\n", e.hdr)
		start := time.Now()
		res, err := e.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Print(res.Report())
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

// reporter is the shared result surface.
type reporter interface{ Report() string }

// wrap adapts a typed experiment constructor to the generic runner.
func wrap[T reporter](fn func(experiments.Config) (T, error)) func(experiments.Config) (reporter, error) {
	return func(cfg experiments.Config) (reporter, error) {
		res, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}
