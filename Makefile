# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so `make verify` locally is the merge gate.

# bench pipes `go test` into the recorder; without pipefail a benchmark
# failure after the first result line would still exit 0.
SHELL := /bin/bash -o pipefail

# Perf-critical benchmarks: label-model training (P1), labeling-function
# pipeline throughput (P2), online serving, and LF execution. `make bench`
# runs them and merges the numbers into $(BENCH_OUT) under $(BENCH_LABEL),
# building the repository's performance trajectory release over release.
BENCH      ?= BenchmarkP1_SamplingFreeVsGibbs|BenchmarkP2_PipelineThroughput|BenchmarkServePredict$$|BenchmarkExecuteLFs|BenchmarkIncremental
BENCHTIME  ?= 1s
# Each benchmark runs BENCHCOUNT times and the recorder keeps the fastest
# observation, so a noisy neighbour can't skew the committed trajectory.
BENCHCOUNT ?= 3
BENCH_OUT  ?= BENCH_pr10.json
BENCH_LABEL ?= pr10
# obs-smoke writes the smoke run's Chrome trace here; CI's nightly bench job
# uploads it next to the benchmark numbers.
TRACE_OUT  ?= /tmp/drybell-obs-trace.json

.PHONY: build test verify vet bench bench-smoke bench-gate obs-smoke remote-smoke chaos-smoke incremental-smoke

build:
	go build ./...

test:
	go test ./...

verify: build
	test -z "$$(gofmt -l .)"
	go vet ./...
	$(MAKE) vet
	go test ./...

# Repo-specific invariants: the drybellvet analyzer suite (determinism,
# ctxflow, dfspath, lockcheck, voteenc). Exits non-zero on any finding.
vet:
	go run ./tools/drybellvet ./...

bench:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . \
		| go run ./tools/benchjson -out $(BENCH_OUT) -label $(BENCH_LABEL)

# One-iteration smoke of the perf-critical benchmarks; CI runs this so the
# hot paths cannot silently rot between perf investigations.
bench-smoke:
	$(MAKE) bench BENCHTIME=1x BENCH_OUT=/tmp/drybell-bench-smoke.json BENCH_LABEL=smoke

# End-to-end observability smoke: run a small pipeline with tracing on, then
# validate the exported Chrome trace (parses, spans nest, timestamps sane).
# CI runs this so the trace exporter cannot silently produce timelines
# Perfetto refuses to load.
obs-smoke:
	go run ./cmd/drybell -task topic -docs 1500 -steps 100 -trace $(TRACE_OUT)
	go run ./tools/tracecheck $(TRACE_OUT)

# Multi-process end-to-end smoke of the remote execution backend: one
# coordinator process plus two worker processes over real sockets must
# produce vote and label artifacts byte-identical to an in-process run,
# and the workers must drain cleanly on SIGTERM. CI runs this so the
# lease protocol cannot rot behind the in-process test doubles.
remote-smoke:
	./scripts/remote_smoke.sh

# End-to-end smoke of the incremental path on a real on-disk root: base run
# + 10% append + IncrementalRun + Compact must leave input, vote, and label
# artifacts byte-identical to a cold full rerun while executing only the
# delta's documents. CI runs this so the versioned vote store and warm-start
# training cannot drift from "pure latency optimization" semantics.
incremental-smoke:
	./scripts/incremental_smoke.sh

# Bench-regression gate: re-run the perf-critical benchmarks (fastest of
# $(BENCHCOUNT) observations) and fail if any regresses more than 25%
# against the committed BENCH_pr*.json trajectory. CI runs this on every
# PR; tools/benchdiff is the checker. The benchtime is time-based, not
# -benchtime=1x: a single iteration of a fast serving benchmark is
# dominated by one-time warmup (cache fill, the first micro-batch window)
# and reads as a >10x fake regression against the steady-state baseline.
# 0.3s gives fast benchmarks thousands of iterations while the slow
# pipeline benchmarks still run just once.
bench-gate:
	$(MAKE) bench BENCHTIME=0.3s BENCH_OUT=/tmp/drybell-bench-gate.json BENCH_LABEL=gate
	go run ./tools/benchdiff -current /tmp/drybell-bench-gate.json BENCH_pr*.json

# Overload-and-faults smoke: a real serve process driven past saturation by
# the open-loop generator through a fault-injecting transport. Fails unless
# the server sheds (it truly saturated), every admitted request answers,
# SIGTERM drains cleanly, and remote training under the same faults stays
# byte-identical. CI runs this so the admission/degradation machinery cannot
# rot behind the in-process tests.
chaos-smoke:
	./scripts/chaos_smoke.sh
