package drybell_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/pkg/drybell"
)

// lfNames is the column order of testRunners.
func lfNames() []string { return []string{"kw_gossip", "kw_redcarpet", "kw_infra"} }

// rawShards reads every committed shard under base, in shard order.
func rawShards(t *testing.T, fs drybell.FS, base string) [][]byte {
	t.Helper()
	paths, err := fs.List(base + "-")
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, p := range paths {
		data, err := fs.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	if len(out) == 0 {
		t.Fatalf("no shards under %s", base)
	}
	return out
}

func matricesEqual(t *testing.T, a, b *drybell.Matrix) {
	t.Helper()
	if a.NumExamples() != b.NumExamples() || a.NumFuncs() != b.NumFuncs() {
		t.Fatalf("matrix shapes differ: %dx%d vs %dx%d",
			a.NumExamples(), a.NumFuncs(), b.NumExamples(), b.NumFuncs())
	}
	for i := 0; i < a.NumExamples(); i++ {
		for j := 0; j < a.NumFuncs(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("votes diverge at (%d,%d): %v vs %v", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

// TestPipelineEquivalenceUnderFaults is the PR's acceptance bar: a pipeline
// run through the coordinator/worker pool with injected faults — worker
// kills (failed attempt writes), commit-rename failures, slow straggling
// attempts with speculative re-execution — produces the identical vote
// matrix, identical per-LF reports, and byte-identical persisted label
// output to a clean in-process run.
func TestPipelineEquivalenceUnderFaults(t *testing.T) {
	docs := makeDocs(240)

	clean := newPipeline(t)
	cleanRes, err := clean.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	cleanLabels := rawShards(t, clean.FS(), clean.LabelsPath())
	cleanVotes, err := clean.LoadMatrix(lfNames())
	if err != nil {
		t.Fatal(err)
	}

	fault := dfs.NewFaultFS(dfs.NewMem(), 23)
	// Worker kills and commit failures aim at the runtime's attempt files;
	// everything behind these paths sits inside the coordinator's retry
	// loop. Latency plus a tight straggler deadline forces speculative
	// re-execution on top.
	fault.FailProbPath(dfs.OpWrite, "_attempts/", 0.15)
	fault.FailProbPath(dfs.OpRename, "_attempts/", 0.15)
	fault.FailProbPath(dfs.OpRead, "input/examples", 0.1)
	fault.SetLatency(3 * time.Millisecond)

	p := newPipeline(t,
		drybell.WithFS(fault),
		drybell.WithRetries(24), // 25 attempts per task
		drybell.WithStragglerAfter(2*time.Millisecond),
	)
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatalf("pipeline under faults failed: %v (injected %d)", err, fault.Injected())
	}
	if fault.Injected() == 0 {
		t.Fatal("no faults fired; test is vacuous")
	}
	if res.LFReport.SpeculativeAttempts == 0 {
		t.Error("straggler deadline never triggered a speculative attempt")
	}

	// Votes: the columnar labels/votes artifact decodes to the same matrix.
	matricesEqual(t, cleanRes.Matrix, res.Matrix)
	votes, err := p.LoadMatrix(lfNames())
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, cleanVotes, votes)

	// Reports: winner-only counter merging keeps per-LF vote counts
	// deterministic despite dozens of killed and duplicated attempts.
	for j, want := range cleanRes.LFReport.PerLF {
		got := res.LFReport.PerLF[j]
		if got.Positives != want.Positives || got.Negatives != want.Negatives || got.Abstains != want.Abstains {
			t.Errorf("LF %s counts under faults = %d/%d/%d, want %d/%d/%d", got.Name,
				got.Positives, got.Negatives, got.Abstains,
				want.Positives, want.Negatives, want.Abstains)
		}
	}

	// Labels: the persisted hand-off is byte-identical, shard for shard.
	gotLabels := rawShards(t, p.FS(), p.LabelsPath())
	if len(gotLabels) != len(cleanLabels) {
		t.Fatalf("label shards = %d, want %d", len(gotLabels), len(cleanLabels))
	}
	for i := range cleanLabels {
		if !bytes.Equal(gotLabels[i], cleanLabels[i]) {
			t.Fatalf("label shard %d differs from the clean run", i)
		}
	}
}

// TestPipelineResumeReexecutesOnlyUncommitted: a run killed mid-execution
// leaves per-task checkpoints; the resumed run skips them (asserted via the
// report's task-attempt counters), completes the identical output, and a
// third run resumes the finished stage wholesale from the vote artifact.
func TestPipelineResumeReexecutesOnlyUncommitted(t *testing.T) {
	docs := makeDocs(240)

	clean := newPipeline(t)
	cleanRes, err := clean.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}

	fault := dfs.NewFaultFS(dfs.NewMem(), 7)
	p := newPipeline(t,
		drybell.WithFS(fault),
		drybell.WithResume(true),
		drybell.WithRetries(0),     // no retries: the first fault is fatal
		drybell.WithParallelism(1), // deterministic task order: 0,1,2,3
	)
	// Crash the run at map-00002's commit: with retries disabled the whole
	// run dies there, after tasks 0 and 1 checkpointed and before task 3
	// ran.
	fault.FailNext(dfs.OpRename, "map-00002", 1)
	if _, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners()); err == nil {
		t.Fatal("crashing run reported success")
	}

	res, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	if res.LFReport.TasksResumed != 2 {
		t.Errorf("TasksResumed = %d, want 2 (map-00000 and map-00001 checkpointed)", res.LFReport.TasksResumed)
	}
	if res.LFReport.TaskAttempts != 2 {
		t.Errorf("TaskAttempts = %d, want 2 (only the uncommitted tasks re-execute)", res.LFReport.TaskAttempts)
	}
	matricesEqual(t, cleanRes.Matrix, res.Matrix)
	for i, want := range cleanRes.Posteriors {
		if res.Posteriors[i] != want {
			t.Fatalf("posterior %d = %v, want %v", i, res.Posteriors[i], want)
		}
	}

	// Third run: the execute stage resumes wholesale from the completed
	// vote artifact — zero task attempts, same answer.
	var resumedStages int
	p2 := newPipeline(t,
		drybell.WithFS(fault),
		drybell.WithResume(true),
		drybell.WithParallelism(1),
		drybell.WithStageHook(func(ev drybell.StageEvent) {
			if ev.Resumed {
				resumedStages++
			}
		}),
	)
	res3, err := p2.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	if !res3.LFReport.ResumedFromVotes || res3.LFReport.TaskAttempts != 0 {
		t.Errorf("third run: ResumedFromVotes=%v TaskAttempts=%d, want true/0",
			res3.LFReport.ResumedFromVotes, res3.LFReport.TaskAttempts)
	}
	if resumedStages < 2 {
		t.Errorf("resumed stage events = %d, want staging and execution both resumed", resumedStages)
	}
	matricesEqual(t, cleanRes.Matrix, res3.Matrix)
}
