package drybell

import (
	"repro/internal/core"
	"repro/internal/corpus"
)

// The discriminative side of the pipeline: servable end models trained on
// the probabilistic labels (paper §5.3). Re-exported here so SDK users never
// import internal/core.

// ContentClassifier is the servable classifier for content tasks: hashing
// feature extractor, logistic regression, tuned decision threshold.
type ContentClassifier = core.ContentClassifier

// ContentTrainConfig configures discriminative training for content tasks.
type ContentTrainConfig = core.ContentTrainConfig

// EventClassifier is the servable DNN for the real-time events task; it
// reads only the real-time, event-level feature vector (§3.3, §6.4).
type EventClassifier = core.EventClassifier

// EventTrainConfig configures the events DNN.
type EventTrainConfig = core.EventTrainConfig

// TrainContentClassifier trains the servable logistic regression on
// probabilistic labels and tunes the decision threshold for F1 on the
// labeled dev set.
func TrainContentClassifier(
	train []*corpus.Document, softLabels []float64,
	dev []*corpus.Document,
	cfg ContentTrainConfig,
) (*ContentClassifier, error) {
	return core.TrainContentClassifier(train, softLabels, dev, cfg)
}

// TrainSupervisedBaseline trains the identical content classifier directly
// on hand-labeled documents — the Tables 2-4 baseline.
func TrainSupervisedBaseline(labeled []*corpus.Document, cfg ContentTrainConfig) (*ContentClassifier, error) {
	return core.TrainSupervisedBaseline(labeled, cfg)
}

// TrainEventClassifier trains the DNN over servable event features on
// probabilistic labels produced from the non-servable weak supervision —
// the cross-feature transfer of §4.
func TrainEventClassifier(train []*corpus.Event, softLabels []float64, cfg EventTrainConfig) (*EventClassifier, error) {
	return core.TrainEventClassifier(train, softLabels, cfg)
}
