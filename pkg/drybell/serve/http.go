package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies; records larger than this are not
// documents, they are abuse.
const maxBodyBytes = 1 << 20

// DeadlineHeader carries a client's per-request deadline as a Go duration
// ("250ms", "1s"). The server honors the tighter of this and
// Config.DefaultDeadline; a request that exhausts its deadline while queued
// is skipped rather than scored for nobody.
const DeadlineHeader = "X-Request-Deadline"

// Handler returns the HTTP/JSON API:
//
//	GET  /healthz         liveness plus the live model version
//	POST /v1/predict      body: one record (e.g. a corpus.Document JSON)
//	POST /v1/label        body: one record; runs the labeling functions online
//	POST /v1/label/batch  body: JSON array of records; vectorized labeling
//	GET  /v1/metrics      counters, latency quantiles, batch histogram, cache
//	POST /v1/promote      body: {"version": N}; hot-swaps a staged version live
//	POST /v1/reload       re-reads the registry (promotions from other processes)
func (s *Server[T]) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/label", s.handleLabel)
	mux.HandleFunc("POST /v1/label/batch", s.handleLabelBatch)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	return mux
}

func (s *Server[T]) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"model":   s.handle.Current().Artifact().Name,
		"version": s.Version(),
	})
}

func (s *Server[T]) decodeRecord(w http.ResponseWriter, r *http.Request) (T, bool) {
	var zero T
	if s.cfg.Decode == nil {
		writeError(w, http.StatusNotImplemented, errors.New("serve: no record decoder configured"))
		return zero, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return zero, false
	}
	rec, err := s.cfg.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return zero, false
	}
	return rec, true
}

// requestContext derives a handler's context: the client's DeadlineHeader
// and the server's DefaultDeadline each cap it, tightest wins. Reports
// false (with a 400 already written) on an unparseable header.
func (s *Server[T]) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		cd, err := time.ParseDuration(h)
		if err != nil || cd <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: invalid %s %q (want a positive Go duration)", DeadlineHeader, h))
			return nil, nil, false
		}
		if d <= 0 || cd < d {
			d = cd
		}
	}
	if d <= 0 {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}

// writeRequestError renders a request-path failure, translating an
// admission shed into 429 with a Retry-After hint.
func writeRequestError(w http.ResponseWriter, err error) {
	var ae *AdmissionError
	if errors.As(err, &ae) {
		secs := int(ae.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, statusFor(err), err)
}

func (s *Server[T]) handlePredict(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.decodeRecord(w, r)
	if !ok {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, err := s.Predict(ctx, rec)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server[T]) handleLabel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.decodeRecord(w, r)
	if !ok {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, err := s.Label(ctx, rec)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// maxLabelBatch bounds one /v1/label/batch request; bigger corpora belong
// on the batch pipeline.
const maxLabelBatch = 1024

func (s *Server[T]) handleLabelBatch(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Decode == nil {
		writeError(w, http.StatusNotImplemented, errors.New("serve: no record decoder configured"))
		return
	}
	var raw []json.RawMessage
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&raw); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	if len(raw) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty batch"))
		return
	}
	if len(raw) > maxLabelBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: batch of %d exceeds limit %d", len(raw), maxLabelBatch))
		return
	}
	recs := make([]T, len(raw))
	for i, body := range raw {
		rec, err := s.cfg.Decode(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("record %d: %w", i, err))
			return
		}
		recs[i] = rec
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, err := s.LabelBatch(ctx, recs)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server[T]) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server[T]) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Version int `json:"version"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode promote request: %w", err))
		return
	}
	if err := s.Promote(req.Version); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": s.cfg.Model, "version": s.Version()})
}

func (s *Server[T]) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": s.cfg.Model, "version": s.Version()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoLabeler):
		return http.StatusNotImplemented
	case errors.Is(err, context.Canceled):
		// The client went away; 499 (nginx's "client closed request")
		// keeps these out of the 5xx rate.
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
