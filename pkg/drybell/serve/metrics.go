package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// batchSizeBounds are the micro-batch size histogram bucket bounds; a batch
// of n records lands in the first bucket whose bound is ≥ n. batchLabels
// names each bucket (including the implicit overflow bucket) for the
// /v1/metrics JSON payload, so the shape scrapers see predates the shared
// registry.
var (
	batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64}
	batchLabels     = []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}
)

// pathStats tracks one request path (/v1/predict or /v1/label) on the shared
// metrics registry.
type pathStats struct {
	requests *obs.Counter
	errors   *obs.Counter
	canceled *obs.Counter
	latency  *obs.Histogram
}

func newPathStats(reg *obs.Registry, path string) *pathStats {
	l := obs.Label{Key: "path", Value: path}
	return &pathStats{
		requests: reg.Counter("serve_requests_total", "Requests received, by path.", l),
		errors:   reg.Counter("serve_errors_total", "Requests that failed, by path.", l),
		canceled: reg.Counter("serve_canceled_total", "Requests whose client abandoned the wait, by path.", l),
		latency: reg.Histogram("serve_latency_seconds",
			"Successful request latency in seconds, by path.", obs.DefLatencyBuckets, l),
	}
}

func (p *pathStats) observe(d time.Duration, err error) {
	p.requests.Inc()
	switch {
	case err == nil:
		p.latency.ObserveDuration(d)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client abandoned the wait; that is not a serving failure.
		p.canceled.Inc()
	default:
		p.errors.Inc()
	}
}

// metrics is the server's observability state, built on the shared registry
// so the same series back both the /v1/metrics JSON snapshot and the
// Prometheus exposition.
type metrics struct {
	start      time.Time
	predict    *pathStats
	label      *pathStats
	batchSizes *obs.Histogram
	version    *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		start:   time.Now(),
		predict: newPathStats(reg, "predict"),
		label:   newPathStats(reg, "label"),
		batchSizes: reg.Histogram("serve_batch_size",
			"Records per dispatched micro-batch.", batchSizeBounds),
		version: reg.Gauge("serve_model_version", "Model version currently answering requests."),
	}
}

func (m *metrics) observeBatch(n int) { m.batchSizes.Observe(float64(n)) }

// PathSnapshot reports one request path's counters and latency quantiles.
// Canceled counts requests whose client abandoned the wait — kept apart
// from Errors so flaky clients don't read as serving failures.
type PathSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Canceled int64   `json:"canceled,omitempty"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func (p *pathStats) snapshot() PathSnapshot {
	return PathSnapshot{
		Requests: p.requests.Value(),
		Errors:   p.errors.Value(),
		Canceled: p.canceled.Value(),
		P50Ms:    p.latency.Quantile(0.50) * 1000,
		P99Ms:    p.latency.Quantile(0.99) * 1000,
	}
}

// BatchBucket is one bar of the batch-size histogram.
type BatchBucket struct {
	Size  string `json:"size"`
	Count int64  `json:"count"`
}

// BatchSnapshot reports micro-batching behavior.
type BatchSnapshot struct {
	Dispatched int64         `json:"dispatched"`
	Records    int64         `json:"records"`
	MeanSize   float64       `json:"mean_size"`
	Histogram  []BatchBucket `json:"histogram"`
}

// CacheSnapshot reports the online LF cache.
type CacheSnapshot struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Snapshot is the /v1/metrics payload.
type Snapshot struct {
	Model         string         `json:"model"`
	Version       int            `json:"version"`
	Swaps         int64          `json:"swaps"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Predict       PathSnapshot   `json:"predict"`
	Label         PathSnapshot   `json:"label"`
	Batches       BatchSnapshot  `json:"batches"`
	NLPCache      *CacheSnapshot `json:"nlp_cache,omitempty"`
}

func (m *metrics) batchSnapshot() BatchSnapshot {
	s := BatchSnapshot{
		Dispatched: m.batchSizes.Count(),
		Records:    int64(m.batchSizes.Sum()),
	}
	if s.Dispatched > 0 {
		s.MeanSize = float64(s.Records) / float64(s.Dispatched)
	}
	for i, c := range m.batchSizes.BucketCounts() {
		if c > 0 {
			s.Histogram = append(s.Histogram, BatchBucket{Size: batchLabels[i], Count: c})
		}
	}
	return s
}
