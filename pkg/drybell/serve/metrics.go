package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// batchSizeBounds are the micro-batch size histogram bucket bounds; a batch
// of n records lands in the first bucket whose bound is ≥ n. batchLabels
// names each bucket (including the implicit overflow bucket) for the
// /v1/metrics JSON payload, so the shape scrapers see predates the shared
// registry.
var (
	batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64}
	batchLabels     = []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}
)

// pathStats tracks one request path (/v1/predict or /v1/label) on the shared
// metrics registry.
type pathStats struct {
	requests *obs.Counter
	errors   *obs.Counter
	canceled *obs.Counter
	latency  *obs.Histogram
}

func newPathStats(reg *obs.Registry, path string) *pathStats {
	l := obs.Label{Key: "path", Value: path}
	return &pathStats{
		requests: reg.Counter("serve_requests_total", "Requests received, by path.", l),
		errors:   reg.Counter("serve_errors_total", "Requests that failed, by path.", l),
		canceled: reg.Counter("serve_canceled_total", "Requests whose client abandoned the wait, by path.", l),
		latency: reg.Histogram("serve_latency_seconds",
			"Successful request latency in seconds, by path.", obs.DefLatencyBuckets, l),
	}
}

func (p *pathStats) observe(d time.Duration, err error) {
	p.requests.Inc()
	switch {
	case err == nil:
		p.latency.ObserveDuration(d)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client abandoned the wait; that is not a serving failure.
		p.canceled.Inc()
	default:
		p.errors.Inc()
	}
}

// metrics is the server's observability state, built on the shared registry
// so the same series back both the /v1/metrics JSON snapshot and the
// Prometheus exposition.
type metrics struct {
	start      time.Time
	predict    *pathStats
	label      *pathStats
	batchSizes *obs.Histogram
	version    *obs.Gauge

	// Overload-resilience series: admission decisions, queue delay, the
	// shed state, degraded-mode labelings, and the annotator breaker.
	reg          *obs.Registry
	admitted     *obs.Counter
	queueWait    *obs.Histogram
	shedding     *obs.Gauge
	degraded     *obs.Counter
	breakerState *obs.Gauge

	// Freshness series for the continuous-training loop: when the serving
	// version last changed, so scrapers can alert on labels falling behind
	// the corpus (model age = now − promoted-at).
	promotedAtUnix *obs.Gauge
	promotedAt     atomic.Int64
}

// markPromotion records that the serving version just changed (initial load,
// Promote, Rollback, or Reload picking up another process's promotion).
func (m *metrics) markPromotion(now time.Time) {
	m.promotedAt.Store(now.Unix())
	m.promotedAtUnix.Set(float64(now.Unix()))
}

// modelAgeSeconds is the time since the serving version last changed.
func (m *metrics) modelAgeSeconds(now time.Time) float64 {
	return now.Sub(time.Unix(m.promotedAt.Load(), 0)).Seconds()
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		start:   time.Now(),
		predict: newPathStats(reg, "predict"),
		label:   newPathStats(reg, "label"),
		batchSizes: reg.Histogram("serve_batch_size",
			"Records per dispatched micro-batch.", batchSizeBounds),
		version: reg.Gauge("serve_model_version", "Model version currently answering requests."),
		reg:     reg,
		admitted: reg.Counter("serve_admitted_total",
			"Predict requests admitted past the overload controller."),
		queueWait: reg.Histogram("serve_queue_wait_seconds",
			"Delay between a predict request's admission and its dequeue for scoring.",
			obs.DefLatencyBuckets),
		shedding: reg.Gauge("serve_shedding",
			"1 while the admission controller is shedding new arrivals, else 0."),
		degraded: reg.Counter("serve_degraded_total",
			"Label requests answered in degraded (majority-vote-only) mode."),
		breakerState: reg.Gauge("serve_annotator_breaker_state",
			"Annotator breaker position (0 closed, 1 open, 2 half-open)."),
		promotedAtUnix: reg.Gauge("serve_model_promoted_at_unix",
			"Unix time the serving version last changed."),
	}
}

// shedFor returns the shed counter for one rejection reason.
func (m *metrics) shedFor(reason string) *obs.Counter {
	return m.reg.Counter("serve_shed_total",
		"Predict requests shed by the admission controller, by reason.",
		obs.Label{Key: "reason", Value: reason})
}

func (m *metrics) observeBatch(n int) { m.batchSizes.Observe(float64(n)) }

// PathSnapshot reports one request path's counters and latency quantiles.
// Canceled counts requests whose client abandoned the wait — kept apart
// from Errors so flaky clients don't read as serving failures.
type PathSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Canceled int64   `json:"canceled,omitempty"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func (p *pathStats) snapshot() PathSnapshot {
	return PathSnapshot{
		Requests: p.requests.Value(),
		Errors:   p.errors.Value(),
		Canceled: p.canceled.Value(),
		P50Ms:    p.latency.Quantile(0.50) * 1000,
		P99Ms:    p.latency.Quantile(0.99) * 1000,
	}
}

// BatchBucket is one bar of the batch-size histogram.
type BatchBucket struct {
	Size  string `json:"size"`
	Count int64  `json:"count"`
}

// BatchSnapshot reports micro-batching behavior.
type BatchSnapshot struct {
	Dispatched int64         `json:"dispatched"`
	Records    int64         `json:"records"`
	MeanSize   float64       `json:"mean_size"`
	Histogram  []BatchBucket `json:"histogram"`
}

// CacheSnapshot reports the online LF cache.
type CacheSnapshot struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// AdmissionSnapshot reports the overload controller: how much traffic was
// admitted vs shed, the queue-delay quantiles CoDel decides on, and whether
// the controller is currently shedding.
type AdmissionSnapshot struct {
	Admitted       int64   `json:"admitted"`
	ShedBudget     int64   `json:"shed_budget"`
	ShedQueueFull  int64   `json:"shed_queue_full"`
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	Shedding       bool    `json:"shedding"`
}

// Snapshot is the /v1/metrics payload.
type Snapshot struct {
	Model         string         `json:"model"`
	Version       int            `json:"version"`
	Swaps         int64          `json:"swaps"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Predict       PathSnapshot   `json:"predict"`
	Label         PathSnapshot   `json:"label"`
	Batches       BatchSnapshot  `json:"batches"`
	NLPCache      *CacheSnapshot `json:"nlp_cache,omitempty"`
	// Admission is present when the overload controller is enabled.
	Admission *AdmissionSnapshot `json:"admission,omitempty"`
	// Degraded counts label requests answered in majority-vote-only mode;
	// AnnotatorBreaker is the health breaker's position when one exists.
	Degraded         int64  `json:"degraded,omitempty"`
	AnnotatorBreaker string `json:"annotator_breaker,omitempty"`
	// ModelAgeSeconds is the time since the serving version last changed —
	// the serving-side freshness signal the continuous-training loop drives
	// toward zero. Omitted by zero-value Snapshots for scraper compatibility.
	ModelAgeSeconds float64 `json:"model_age_seconds,omitempty"`
}

func (m *metrics) batchSnapshot() BatchSnapshot {
	s := BatchSnapshot{
		Dispatched: m.batchSizes.Count(),
		Records:    int64(m.batchSizes.Sum()),
	}
	if s.Dispatched > 0 {
		s.MeanSize = float64(s.Records) / float64(s.Dispatched)
	}
	for i, c := range m.batchSizes.BucketCounts() {
		if c > 0 {
			s.Histogram = append(s.Histogram, BatchBucket{Size: batchLabels[i], Count: c})
		}
	}
	return s
}
