package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow keeps the most recent request latencies in a fixed ring so
// quantiles reflect current behavior, not the daemon's whole lifetime.
const latencyWindow = 2048

// ring is a fixed-size ring buffer of durations. Safe for concurrent use.
type ring struct {
	mu  sync.Mutex
	buf []time.Duration // guarded by mu
	n   int             // guarded by mu; total observations, saturating at len(buf)
	idx int             // guarded by mu
}

func newRing(size int) *ring {
	return &ring{buf: make([]time.Duration, size)}
}

func (r *ring) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.idx] = d
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantiles returns the requested quantiles (each in [0,1]) over the window,
// or zeros when nothing has been observed.
func (r *ring) quantiles(qs ...float64) []time.Duration {
	r.mu.Lock()
	sorted := make([]time.Duration, r.n)
	copy(sorted, r.buf[:r.n])
	r.mu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(sorted) == 0 {
		return out
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	for i, q := range qs {
		k := int(q * float64(len(sorted)-1))
		out[i] = sorted[k]
	}
	return out
}

// pathStats tracks one request path (/v1/predict or /v1/label).
type pathStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	canceled atomic.Int64
	latency  *ring
}

func newPathStats() *pathStats { return &pathStats{latency: newRing(latencyWindow)} }

func (p *pathStats) observe(d time.Duration, err error) {
	p.requests.Add(1)
	switch {
	case err == nil:
		p.latency.add(d)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client abandoned the wait; that is not a serving failure.
		p.canceled.Add(1)
	default:
		p.errors.Add(1)
	}
}

// batchBuckets are the micro-batch size histogram boundaries: a batch of n
// records lands in the first bucket whose bound is ≥ n.
var batchBuckets = []struct {
	bound int
	label string
}{
	{1, "1"}, {2, "2"}, {4, "3-4"}, {8, "5-8"}, {16, "9-16"},
	{32, "17-32"}, {64, "33-64"}, {1 << 30, "65+"},
}

// metrics is the server's observability state.
type metrics struct {
	start   time.Time
	predict *pathStats
	label   *pathStats

	batches   atomic.Int64 // batches dispatched
	batched   atomic.Int64 // records scored through batches
	histogram [8]atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), predict: newPathStats(), label: newPathStats()}
}

func (m *metrics) observeBatch(n int) {
	m.batches.Add(1)
	m.batched.Add(int64(n))
	for i, b := range batchBuckets {
		if n <= b.bound {
			m.histogram[i].Add(1)
			return
		}
	}
}

// PathSnapshot reports one request path's counters and latency quantiles.
// Canceled counts requests whose client abandoned the wait — kept apart
// from Errors so flaky clients don't read as serving failures.
type PathSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Canceled int64   `json:"canceled,omitempty"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func (p *pathStats) snapshot() PathSnapshot {
	qs := p.latency.quantiles(0.50, 0.99)
	return PathSnapshot{
		Requests: p.requests.Load(),
		Errors:   p.errors.Load(),
		Canceled: p.canceled.Load(),
		P50Ms:    float64(qs[0]) / float64(time.Millisecond),
		P99Ms:    float64(qs[1]) / float64(time.Millisecond),
	}
}

// BatchBucket is one bar of the batch-size histogram.
type BatchBucket struct {
	Size  string `json:"size"`
	Count int64  `json:"count"`
}

// BatchSnapshot reports micro-batching behavior.
type BatchSnapshot struct {
	Dispatched int64         `json:"dispatched"`
	Records    int64         `json:"records"`
	MeanSize   float64       `json:"mean_size"`
	Histogram  []BatchBucket `json:"histogram"`
}

// CacheSnapshot reports the online LF cache.
type CacheSnapshot struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Snapshot is the /v1/metrics payload.
type Snapshot struct {
	Model         string         `json:"model"`
	Version       int            `json:"version"`
	Swaps         int64          `json:"swaps"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Predict       PathSnapshot   `json:"predict"`
	Label         PathSnapshot   `json:"label"`
	Batches       BatchSnapshot  `json:"batches"`
	NLPCache      *CacheSnapshot `json:"nlp_cache,omitempty"`
}

func (m *metrics) batchSnapshot() BatchSnapshot {
	s := BatchSnapshot{Dispatched: m.batches.Load(), Records: m.batched.Load()}
	if s.Dispatched > 0 {
		s.MeanSize = float64(s.Records) / float64(s.Dispatched)
	}
	for i, b := range batchBuckets {
		if c := m.histogram[i].Load(); c > 0 {
			s.Histogram = append(s.Histogram, BatchBucket{Size: b.label, Count: c})
		}
	}
	return s
}
