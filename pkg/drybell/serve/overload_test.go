package serve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/features"
	"repro/internal/serving"
	"repro/pkg/drybell/serve"
)

// slowVecServer is newVecServer with a featurizer that burns perRecord of
// wall time per record, so tests can push the predict path past saturation
// without huge request counts.
func slowVecServer(t *testing.T, cfg serve.Config[vec], perRecord time.Duration) *serve.Server[vec] {
	t.Helper()
	reg, err := serving.OpenFSRegistry(dfs.NewMem(), "serving")
	if err != nil {
		t.Fatal(err)
	}
	stageVersions(t, reg, "4", "-4")
	if err := reg.Promote("m", 1); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Model = "m"
	cfg.Decode = decodeVec
	cfg.Featurize = func(a *serving.Artifact) (func(vec) *features.SparseVector, error) {
		return func(x vec) *features.SparseVector {
			time.Sleep(perRecord)
			return x
		}, nil
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestAdmissionShedsAtFullQueue: with the bounded queue saturated, excess
// arrivals are rejected at the door with ErrOverloaded instead of piling
// onto the channel, and everything that was admitted is answered.
func TestAdmissionShedsAtFullQueue(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 1, BatchWait: time.Millisecond, Workers: 1,
		LatencyBudget: time.Second, // generous: only the queue bound sheds here
		MaxQueue:      2,
	}, 5*time.Millisecond)

	const n = 32
	var served, shed, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), posX)
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}()
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d admitted requests failed", failed.Load())
	}
	if served.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("served = %d, shed = %d; a 16x-overcommitted queue of 2 must do both", served.Load(), shed.Load())
	}
	snap := s.Metrics()
	if snap.Admission == nil {
		t.Fatal("no admission snapshot despite an armed controller")
	}
	if snap.Admission.Admitted != served.Load() {
		t.Errorf("admitted counter = %d, served = %d", snap.Admission.Admitted, served.Load())
	}
	if snap.Admission.ShedQueueFull == 0 {
		t.Error("queue-full shed counter never moved")
	}
}

// TestAdmissionBudgetShedAndRecovery: a standing queue — sustained arrivals
// past capacity with a roomy queue bound — must flip the CoDel controller
// into latency-budget shedding, and draining the backlog must clear it.
func TestAdmissionBudgetShedAndRecovery(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 4, BatchWait: time.Millisecond, Workers: 1,
		LatencyBudget: 5 * time.Millisecond,
		MaxQueue:      1024, // too big to fill: only the budget can shed
	}, 2*time.Millisecond)

	stop := make(chan struct{})
	var failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Predict(context.Background(), posX); err != nil {
					if !errors.Is(err, serve.ErrOverloaded) {
						failed.Add(1)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Admission.ShedBudget == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatal("no latency-budget shed despite sustained overload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d admitted requests failed under overload", failed.Load())
	}

	// Load gone, backlog drained: the controller must clear its verdict and
	// admit fresh traffic rather than shedding on a stale window.
	recovered := false
	for i := 0; i < 200; i++ {
		if _, err := s.Predict(context.Background(), posX); err == nil {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("admission never recovered after load stopped")
	}
	if s.Metrics().Admission.Shedding {
		t.Error("controller still reports shedding after the backlog drained")
	}
}

// TestPromotionUnderOverloadAdmittedNeverFail is the tentpole guarantee:
// hot-swapping the model under 2x-overload traffic may shed requests at
// the door, but every request that was admitted is answered, correctly,
// by exactly one model version.
func TestPromotionUnderOverloadAdmittedNeverFail(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 4, BatchWait: time.Millisecond, Workers: 2,
		LatencyBudget: 5 * time.Millisecond,
		MaxQueue:      8, // half the client count: overload guaranteed
	}, time.Millisecond)

	stop := make(chan struct{})
	var served, shed, failed, badMix atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Predict(context.Background(), posX)
				switch {
				case err == nil:
					served.Add(1)
					// v1 (weight +4) scores posX positive, v2 (weight -4)
					// negative; any other combination means a torn batch.
					if (res.Version == 1) != res.Positive {
						badMix.Add(1)
					}
				case errors.Is(err, serve.ErrOverloaded):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}

	for v := 0; v < 50; v++ {
		if err := s.Promote(2 - v%2); err != nil {
			t.Errorf("promote #%d: %v", v, err)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Errorf("%d admitted requests failed across promotions under overload", failed.Load())
	}
	if badMix.Load() != 0 {
		t.Errorf("%d responses mixed versions/scores", badMix.Load())
	}
	if served.Load() == 0 {
		t.Error("no request was served at all")
	}
	if shed.Load() == 0 {
		t.Error("no request was shed; the test never actually overloaded the server")
	}
}

// TestAdmissionDisabled: a negative latency budget turns the controller
// off entirely — no snapshot, no sheds, plain unbounded queueing.
func TestAdmissionDisabled(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{LatencyBudget: -1, BatchWait: time.Millisecond})
	if _, err := s.Predict(context.Background(), posX); err != nil {
		t.Fatal(err)
	}
	if s.Metrics().Admission != nil {
		t.Error("admission snapshot present despite a disabled controller")
	}
}

// TestHTTPOverloadReturns429: a shed surfaces on the wire as 429 with a
// usable Retry-After hint, not as a 5xx.
func TestHTTPOverloadReturns429(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 1, BatchWait: time.Millisecond, Workers: 1,
		LatencyBudget: time.Second, MaxQueue: 1,
	}, 10*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const body = `{"indices":[1],"values":[1]}`
	const n = 16
	var oks, sheds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				oks.Add(1)
			case http.StatusTooManyRequests:
				sheds.Add(1)
				ra := resp.Header.Get("Retry-After")
				if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
					t.Errorf("429 Retry-After = %q, want an integer >= 1", ra)
				}
			default:
				t.Errorf("status = %d, want 200 or 429", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if oks.Load() == 0 || sheds.Load() == 0 {
		t.Fatalf("oks = %d, sheds = %d; want both under 16 clients on a queue of 1", oks.Load(), sheds.Load())
	}
}

// TestHTTPDeadlineHeader: the client's X-Request-Deadline caps the request
// end to end — a deadline shorter than the scoring time yields 504, a
// malformed one 400 before any work, a roomy one 200.
func TestHTTPDeadlineHeader(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 1, BatchWait: time.Millisecond, Workers: 1,
		LatencyBudget: -1,
	}, 30*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func(deadline string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict",
			strings.NewReader(`{"indices":[1],"values":[1]}`))
		if err != nil {
			t.Fatal(err)
		}
		if deadline != "" {
			req.Header.Set(serve.DeadlineHeader, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("1ms"); resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("1ms deadline against 30ms scoring: status = %d, want 504", resp.StatusCode)
	}
	if resp := post("soon"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed deadline: status = %d, want 400", resp.StatusCode)
	}
	if resp := post("-5s"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative deadline: status = %d, want 400", resp.StatusCode)
	}
	if resp := post("10s"); resp.StatusCode != http.StatusOK {
		t.Errorf("roomy deadline: status = %d, want 200", resp.StatusCode)
	}
}

// TestHTTPDefaultDeadline: requests without their own deadline inherit the
// server's, and the tighter of the two wins when both are present.
func TestHTTPDefaultDeadline(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 1, BatchWait: time.Millisecond, Workers: 1,
		LatencyBudget:   -1,
		DefaultDeadline: time.Millisecond,
	}, 30*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"indices":[1],"values":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("server default deadline: status = %d, want 504", resp.StatusCode)
	}

	// A client header cannot loosen the server's cap: 10s vs 1ms is still 1ms.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict",
		strings.NewReader(`{"indices":[1],"values":[1]}`))
	req.Header.Set(serve.DeadlineHeader, "10s")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("header looser than server cap: status = %d, want 504", resp2.StatusCode)
	}
}

// TestPredictDeadlinePropagatesToQueue: a programmatic Predict whose
// context dies while the request is queued is answered with the context
// error instead of being scored for nobody.
func TestPredictDeadlinePropagatesToQueue(t *testing.T) {
	s := slowVecServer(t, serve.Config[vec]{
		MaxBatch: 1, BatchWait: time.Millisecond, Workers: 1,
		LatencyBudget: -1,
	}, 20*time.Millisecond)

	// Saturate the single worker so follow-up requests sit in the queue.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Predict(context.Background(), posX)
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := s.Predict(ctx, posX)
	wg.Wait()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request past its deadline: err = %v, want DeadlineExceeded", err)
	}
}
