package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/features"
	"repro/internal/serving"
	"repro/pkg/drybell/serve"
)

// vec is the test record type: an already-featurized sparse vector, so
// scores are exact and independent of hashing.
type vec = *features.SparseVector

// identityFeaturizer serves pre-featurized records as-is.
func identityFeaturizer(a *serving.Artifact) (func(vec) *features.SparseVector, error) {
	return func(x vec) *features.SparseVector { return x }, nil
}

func decodeVec(data []byte) (vec, error) {
	var v struct {
		Indices []uint32  `json:"indices"`
		Values  []float64 `json:"values"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return &features.SparseVector{Indices: v.Indices, Values: v.Values}, nil
}

// stageVersions stages artifacts whose single weight at index 1 is each of
// the given values, in order, as versions 1..n of model "m".
func stageVersions(t *testing.T, reg serving.Catalog, weights ...string) {
	t.Helper()
	for _, w := range weights {
		a := &serving.Artifact{
			Name: "m", Kind: "logreg", Threshold: 0.5, FeatureDim: 8,
			Signals: []string{"text"},
			Payload: []byte(`{"indices":[1],"values":[` + w + `]}`),
		}
		if _, err := reg.Stage(a); err != nil {
			t.Fatal(err)
		}
	}
}

func newVecServer(t *testing.T, cfg serve.Config[vec]) (*serve.Server[vec], serving.Catalog) {
	t.Helper()
	if cfg.Registry == nil {
		reg, err := serving.OpenFSRegistry(dfs.NewMem(), "serving")
		if err != nil {
			t.Fatal(err)
		}
		stageVersions(t, reg, "4", "-4")
		if err := reg.Promote("m", 1); err != nil {
			t.Fatal(err)
		}
		cfg.Registry = reg
	}
	cfg.Model = "m"
	cfg.Decode = decodeVec
	cfg.Featurize = identityFeaturizer
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, cfg.Registry
}

// posX scores sigmoid(4) ≈ 0.982 on v1 (weight +4) and sigmoid(-4) ≈ 0.018
// on v2 (weight −4).
var posX = &features.SparseVector{Indices: []uint32{1}, Values: []float64{1}}

func TestPredictScoresLiveVersion(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{BatchWait: time.Millisecond})
	res, err := s.Predict(context.Background(), posX)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || !res.Positive || res.Score < 0.9 || res.BatchSize < 1 {
		t.Fatalf("v1 result = %+v", res)
	}
	if res.Model != "m" {
		t.Errorf("model = %q", res.Model)
	}
	if err := s.Promote(2); err != nil {
		t.Fatal(err)
	}
	res, err = s.Predict(context.Background(), posX)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Positive || res.Score > 0.1 {
		t.Fatalf("v2 result = %+v", res)
	}
}

func TestMicroBatchingUnderLoad(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{
		MaxBatch: 16, BatchWait: 30 * time.Millisecond, Workers: 2,
	})
	const n = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.Predict(context.Background(), posX); err != nil {
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Batches.Records != n {
		t.Errorf("batched records = %d, want %d", m.Batches.Records, n)
	}
	if m.Batches.Dispatched >= n {
		t.Errorf("dispatched %d batches for %d requests — no batching happened", m.Batches.Dispatched, n)
	}
	if m.Batches.MeanSize <= 1 {
		t.Errorf("mean batch size = %v, want > 1", m.Batches.MeanSize)
	}
	if len(m.Batches.Histogram) == 0 {
		t.Error("empty batch histogram")
	}
	if m.Predict.Requests != n || m.Predict.Errors != 0 {
		t.Errorf("predict stats = %+v", m.Predict)
	}
}

// TestHotSwapZeroFailedRequests is the promotion-under-load guarantee:
// concurrent traffic across many promotions sees zero failed requests, and
// every response is internally consistent with the version that scored it.
func TestHotSwapZeroFailedRequests(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{
		MaxBatch: 8, BatchWait: 200 * time.Microsecond, Workers: 4,
	})
	const workers = 8
	var (
		wg       sync.WaitGroup
		failed   atomic.Int64
		served   atomic.Int64
		badMix   atomic.Int64
		stopLoad = make(chan struct{})
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				res, err := s.Predict(context.Background(), posX)
				if err != nil {
					failed.Add(1)
					continue
				}
				served.Add(1)
				// Version 1 carries weight +4 (positive), version 2 weight
				// −4 (negative): a response mixing version and score would
				// mean a request straddled a swap.
				switch res.Version {
				case 1:
					if !res.Positive || res.Score < 0.9 {
						badMix.Add(1)
					}
				case 2:
					if res.Positive || res.Score > 0.1 {
						badMix.Add(1)
					}
				default:
					badMix.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		want := 2 - i%2 // alternate 2,1,2,1,...
		if err := s.Promote(want); err != nil {
			t.Fatalf("promotion %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stopLoad)
	wg.Wait()
	if failed.Load() != 0 {
		t.Errorf("%d requests failed across promotions", failed.Load())
	}
	if badMix.Load() != 0 {
		t.Errorf("%d responses mixed versions mid-swap", badMix.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served during the promotion storm")
	}
	if m := s.Metrics(); m.Swaps < 50 {
		t.Errorf("swaps = %d, want ≥ 50", m.Swaps)
	}
}

func TestCloseDrains(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{BatchWait: time.Millisecond})
	if _, err := s.Predict(context.Background(), posX); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Predict(context.Background(), posX); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("predict after close = %v, want ErrDraining", err)
	}
	s.Close() // idempotent
}

func TestRestartRecoversPromotedVersion(t *testing.T) {
	fs, err := dfs.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := serving.OpenFSRegistry(fs, "serving")
	stageVersions(t, reg, "4", "-4")
	if err := reg.Promote("m", 2); err != nil {
		t.Fatal(err)
	}
	s1, _ := newVecServer(t, serve.Config[vec]{Registry: reg})
	if s1.Version() != 2 {
		t.Fatalf("first daemon serves v%d, want 2", s1.Version())
	}
	s1.Close()

	// "Restart": a fresh registry and server over the same filesystem.
	reg2, _ := serving.OpenFSRegistry(fs, "serving")
	s2, _ := newVecServer(t, serve.Config[vec]{Registry: reg2})
	if s2.Version() != 2 {
		t.Fatalf("restarted daemon serves v%d, want 2", s2.Version())
	}
	res, err := s2.Predict(context.Background(), posX)
	if err != nil || res.Positive {
		t.Fatalf("restarted predict = %+v, %v", res, err)
	}
}

func TestNewRequiresLiveVersion(t *testing.T) {
	reg, _ := serving.OpenFSRegistry(dfs.NewMem(), "serving")
	stageVersions(t, reg, "4") // staged, never promoted
	_, err := serve.New(serve.Config[vec]{
		Registry: reg, Model: "m", Featurize: identityFeaturizer,
	})
	if err == nil {
		t.Fatal("server started without a live version")
	}
}

func TestReloadPicksUpExternalPromotion(t *testing.T) {
	fs := dfs.NewMem()
	reg, _ := serving.OpenFSRegistry(fs, "serving")
	stageVersions(t, reg, "4", "-4")
	if err := reg.Promote("m", 1); err != nil {
		t.Fatal(err)
	}
	s, _ := newVecServer(t, serve.Config[vec]{Registry: reg})

	// Another process (a second registry over the same FS) promotes v2.
	other, _ := serving.OpenFSRegistry(fs, "serving")
	if err := other.Promote("m", 2); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("version changed without reload: %d", s.Version())
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Errorf("after reload version = %d, want 2", s.Version())
	}
}

// TestPromoteRejectsNonServable proves a bad candidate cannot take down the
// request path: promotion fails, the old version keeps serving, and the
// registry's live marker is restored to match.
func TestPromoteRejectsNonServable(t *testing.T) {
	s, reg := newVecServer(t, serve.Config[vec]{})
	bad := &serving.Artifact{
		Name: "m", Kind: "logreg", Threshold: 0.5, FeatureDim: 8,
		Signals: []string{"crawler"},
		Payload: []byte(`{"indices":[1],"values":[1]}`),
	}
	staged, err := reg.Stage(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(staged.Version); err == nil {
		t.Fatal("non-servable artifact promoted")
	}
	if s.Version() != 1 {
		t.Errorf("request path moved to v%d", s.Version())
	}
	live, err := reg.Live("m")
	if err != nil || live.Version != 1 {
		t.Errorf("registry live = %v, %v; want v1 restored", live, err)
	}
	if res, err := s.Predict(context.Background(), posX); err != nil || !res.Positive {
		t.Errorf("serving degraded after failed promote: %+v, %v", res, err)
	}
}

func TestRollback(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{})
	if err := s.Promote(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Errorf("after rollback version = %d", s.Version())
	}
}

func TestLabelWithoutRunners(t *testing.T) {
	s, _ := newVecServer(t, serve.Config[vec]{})
	if _, err := s.Label(context.Background(), posX); !errors.Is(err, serve.ErrNoLabeler) {
		t.Errorf("label = %v, want ErrNoLabeler", err)
	}
}
