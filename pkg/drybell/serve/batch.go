package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrDraining is returned for requests that arrive after Close began.
var ErrDraining = errors.New("serve: server is draining")

// PredictResult is one /v1/predict answer.
type PredictResult struct {
	// Model and Version identify the artifact that scored the request.
	Model   string `json:"model"`
	Version int    `json:"version"`
	// Score is P(positive); Positive applies the artifact's tuned threshold.
	Score    float64 `json:"score"`
	Positive bool    `json:"positive"`
	// BatchSize is how many requests shared this request's matrix op.
	BatchSize int `json:"batch_size"`
}

type predictReply struct {
	res PredictResult
	err error
}

type scoreRequest[T any] struct {
	// ctx is the caller's context: its deadline propagates into the batch,
	// so a request that expires while queued is skipped, not scored.
	ctx  context.Context
	rec  T
	enq  time.Time
	done chan predictReply
}

// batcher turns a stream of single-record requests into micro-batches: a
// collector goroutine gathers up to maxBatch records or waits at most `wait`
// after the first arrival, then hands the batch to a worker pool that scores
// it as one matrix op. Under load, batches fill instantly and throughput
// scales with the pool; at low traffic, a lone request pays at most `wait`
// of extra latency.
//
// With an admission controller attached, every request claims a queue token
// before it enters the channel (overload sheds at the door with an
// AdmissionError instead of queuing without bound) and reports its queue
// delay at dequeue, which is the signal the controller's CoDel window runs
// on. Tokens are released only when the request is answered, so the bound
// covers queued and in-flight work alike.
type batcher[T any] struct {
	in       chan scoreRequest[T]
	work     chan []scoreRequest[T]
	maxBatch int
	wait     time.Duration
	adm      *admission // nil: admission control disabled
	// score fills out (len(recs) entries of the worker's reusable buffer)
	// and returns it; results are copied into each caller's reply before
	// the worker reuses the buffer for its next batch. ctxs[i] is recs[i]'s
	// request context — score may skip records whose context has ended.
	score func(ctxs []context.Context, recs []T, out []PredictResult) ([]PredictResult, error)

	mu     sync.RWMutex // guards closed vs. in-flight submits
	closed bool
	wg     sync.WaitGroup
}

func newBatcher[T any](maxBatch int, wait time.Duration, workers int, adm *admission, score func(ctxs []context.Context, recs []T, out []PredictResult) ([]PredictResult, error)) *batcher[T] {
	depth := 4 * maxBatch
	if adm != nil && cap(adm.sem) > depth {
		// The semaphore must never out-admit the channel, or an admitted
		// request could block on the enqueue it was promised.
		depth = cap(adm.sem)
	}
	b := &batcher[T]{
		in:       make(chan scoreRequest[T], depth),
		work:     make(chan []scoreRequest[T], workers),
		maxBatch: maxBatch,
		wait:     wait,
		adm:      adm,
		score:    score,
	}
	b.wg.Add(1 + workers)
	go b.collect()
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// submit enqueues one record and blocks until its batch is scored or ctx is
// done. Under overload the admission controller sheds here, before the
// record touches the queue. A context cancellation abandons only this
// caller's wait — an already-enqueued record still travels with its batch,
// though the worker will skip scoring it once it sees the dead context.
func (b *batcher[T]) submit(ctx context.Context, rec T) (PredictResult, error) {
	done := make(chan predictReply, 1)
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return PredictResult{}, ErrDraining
	}
	if b.adm != nil {
		if err := b.adm.admit(); err != nil {
			b.mu.RUnlock()
			return PredictResult{}, err
		}
	}
	select {
	case b.in <- scoreRequest[T]{ctx: ctx, rec: rec, enq: time.Now(), done: done}: //drybellvet:wallclock — queue-delay measurement, not data-plane ordering
		b.mu.RUnlock()
	case <-ctx.Done():
		if b.adm != nil {
			b.adm.release()
		}
		b.mu.RUnlock()
		return PredictResult{}, ctx.Err()
	}
	select {
	case r := <-done:
		return r.res, r.err
	case <-ctx.Done():
		return PredictResult{}, ctx.Err()
	}
}

func (b *batcher[T]) collect() {
	defer b.wg.Done()
	defer close(b.work)
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		batch := []scoreRequest[T]{first}
		timer := time.NewTimer(b.wait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case r, ok := <-b.in:
				if !ok {
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.work <- batch
	}
}

func (b *batcher[T]) worker() {
	defer b.wg.Done()
	// Worker-owned buffers, reused across batches: replies copy result
	// values out before the next batch overwrites them, so steady-state
	// scoring allocates nothing per batch in this layer.
	live := make([]scoreRequest[T], 0, b.maxBatch)
	ctxs := make([]context.Context, 0, b.maxBatch)
	recs := make([]T, 0, b.maxBatch)
	out := make([]PredictResult, 0, b.maxBatch)
	for batch := range b.work {
		live, ctxs, recs = live[:0], ctxs[:0], recs[:0]
		for _, r := range batch {
			if b.adm != nil {
				b.adm.observe(time.Since(r.enq))
			}
			if r.ctx != nil && r.ctx.Err() != nil {
				// Expired while queued: answer the (gone) caller and skip
				// the featurize+score work entirely.
				r.done <- predictReply{err: r.ctx.Err()}
				if b.adm != nil {
					b.adm.release()
				}
				continue
			}
			live = append(live, r)
			ctxs = append(ctxs, r.ctx)
			recs = append(recs, r.rec)
		}
		if len(live) == 0 {
			continue
		}
		results, err := b.score(ctxs, recs, out[:len(live)])
		for i, r := range live {
			switch {
			case err != nil:
				r.done <- predictReply{err: err}
			case r.ctx != nil && r.ctx.Err() != nil:
				// Died mid-batch; the score slot holds no real answer.
				r.done <- predictReply{err: r.ctx.Err()}
			default:
				res := results[i]
				res.BatchSize = len(live)
				r.done <- predictReply{res: res}
			}
			if b.adm != nil {
				b.adm.release()
			}
		}
	}
}

// close stops accepting new requests and blocks until every accepted request
// has been scored and answered — the graceful-drain half of SIGTERM
// handling.
func (b *batcher[T]) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.in)
	b.mu.Unlock()
	b.wg.Wait()
}
