package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrDraining is returned for requests that arrive after Close began.
var ErrDraining = errors.New("serve: server is draining")

// PredictResult is one /v1/predict answer.
type PredictResult struct {
	// Model and Version identify the artifact that scored the request.
	Model   string `json:"model"`
	Version int    `json:"version"`
	// Score is P(positive); Positive applies the artifact's tuned threshold.
	Score    float64 `json:"score"`
	Positive bool    `json:"positive"`
	// BatchSize is how many requests shared this request's matrix op.
	BatchSize int `json:"batch_size"`
}

type predictReply struct {
	res PredictResult
	err error
}

type scoreRequest[T any] struct {
	rec  T
	done chan predictReply
}

// batcher turns a stream of single-record requests into micro-batches: a
// collector goroutine gathers up to maxBatch records or waits at most `wait`
// after the first arrival, then hands the batch to a worker pool that scores
// it as one matrix op. Under load, batches fill instantly and throughput
// scales with the pool; at low traffic, a lone request pays at most `wait`
// of extra latency.
type batcher[T any] struct {
	in       chan scoreRequest[T]
	work     chan []scoreRequest[T]
	maxBatch int
	wait     time.Duration
	// score fills out (len(recs) entries of the worker's reusable buffer)
	// and returns it; results are copied into each caller's reply before
	// the worker reuses the buffer for its next batch.
	score func(recs []T, out []PredictResult) ([]PredictResult, error)

	mu     sync.RWMutex // guards closed vs. in-flight submits
	closed bool
	wg     sync.WaitGroup
}

func newBatcher[T any](maxBatch int, wait time.Duration, workers int, score func(recs []T, out []PredictResult) ([]PredictResult, error)) *batcher[T] {
	b := &batcher[T]{
		in:       make(chan scoreRequest[T], 4*maxBatch),
		work:     make(chan []scoreRequest[T], workers),
		maxBatch: maxBatch,
		wait:     wait,
		score:    score,
	}
	b.wg.Add(1 + workers)
	go b.collect()
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// submit enqueues one record and blocks until its batch is scored or ctx is
// done. A context cancellation abandons only this caller's wait (including a
// wait for queue space under overload) — an already-enqueued record is still
// scored with the rest of its batch.
func (b *batcher[T]) submit(ctx context.Context, rec T) (PredictResult, error) {
	done := make(chan predictReply, 1)
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return PredictResult{}, ErrDraining
	}
	select {
	case b.in <- scoreRequest[T]{rec: rec, done: done}:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.mu.RUnlock()
		return PredictResult{}, ctx.Err()
	}
	select {
	case r := <-done:
		return r.res, r.err
	case <-ctx.Done():
		return PredictResult{}, ctx.Err()
	}
}

func (b *batcher[T]) collect() {
	defer b.wg.Done()
	defer close(b.work)
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		batch := []scoreRequest[T]{first}
		timer := time.NewTimer(b.wait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case r, ok := <-b.in:
				if !ok {
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.work <- batch
	}
}

func (b *batcher[T]) worker() {
	defer b.wg.Done()
	// Worker-owned buffers, reused across batches: replies copy result
	// values out before the next batch overwrites them, so steady-state
	// scoring allocates nothing per batch in this layer.
	recs := make([]T, 0, b.maxBatch)
	out := make([]PredictResult, 0, b.maxBatch)
	for batch := range b.work {
		recs = recs[:0]
		for _, r := range batch {
			recs = append(recs, r.rec)
		}
		results, err := b.score(recs, out[:len(batch)])
		for i, r := range batch {
			if err != nil {
				r.done <- predictReply{err: err}
				continue
			}
			res := results[i]
			res.BatchSize = len(batch)
			r.done <- predictReply{res: res}
		}
	}
}

// close stops accepting new requests and blocks until every accepted request
// has been scored and answered — the graceful-drain half of SIGTERM
// handling.
func (b *batcher[T]) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.in)
	b.mu.Unlock()
	b.wg.Wait()
}
