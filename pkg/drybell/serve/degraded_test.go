package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/nlp"
	"repro/internal/serving"
	"repro/pkg/drybell/serve"
)

// flakyAnnotator delegates to a real NLP server but can be switched into a
// hard-failure mode, standing in for an annotator dependency going down.
type flakyAnnotator struct {
	inner nlp.Annotator
	fail  atomic.Bool
	calls atomic.Int64
}

func (f *flakyAnnotator) Annotate(text string) (*nlp.Result, error) {
	f.calls.Add(1)
	if f.fail.Load() {
		return nil, errors.New("annotator down")
	}
	return f.inner.Annotate(text)
}

func newFlakyAnnotator(t *testing.T) *flakyAnnotator {
	t.Helper()
	srv := nlp.NewServer(0, 1)
	if err := srv.Launch(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return &flakyAnnotator{inner: srv}
}

func newFlakyDocServer(t *testing.T, ann nlp.Annotator, threshold int, cooldown time.Duration) *serve.Server[*corpus.Document] {
	t.Helper()
	runners := apps.TopicLFs(nil, 0, 1)
	reg, _ := serving.OpenFSRegistry(dfs.NewMem(), "serving")
	if _, err := reg.Stage(docArtifact()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("topic-classifier", 1); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config[*corpus.Document]{
		Registry:   reg,
		Model:      "topic-classifier",
		Decode:     corpus.UnmarshalDocument,
		Featurize:  serve.DocumentFeaturizer,
		LFs:        runners,
		LabelModel: uniformModel(len(runners)),
		CacheSize:  64,
		Annotator:  ann,

		BreakerThreshold: threshold,
		BreakerCooldown:  cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// docN yields distinct documents so each request misses the annotation
// cache and genuinely exercises the annotator.
func docN(i int) *corpus.Document {
	d := celebrityDoc()
	d.ID = fmt.Sprintf("doc-%d", i)
	d.Body = fmt.Sprintf("%s take %d", d.Body, i)
	return d
}

func nonAbstains(votes []serve.VoteRecord) int {
	n := 0
	for _, v := range votes {
		if v.Vote != 0 {
			n++
		}
	}
	return n
}

// TestLabelDegradesWhenAnnotatorFails: an unhealthy annotator must not
// fail /v1/label. The first failure trips the breaker (threshold 1 here),
// the answer comes back Degraded with a majority-vote posterior, and while
// the breaker is open the annotator is not consulted at all.
func TestLabelDegradesWhenAnnotatorFails(t *testing.T) {
	ann := newFlakyAnnotator(t)
	s := newFlakyDocServer(t, ann, 1, time.Hour)
	ctx := context.Background()

	healthy, err := s.Label(ctx, docN(0))
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded {
		t.Fatal("healthy request marked degraded")
	}
	if got := s.Metrics().AnnotatorBreaker; got != "closed" {
		t.Fatalf("breaker = %q before any failure", got)
	}

	ann.fail.Store(true)
	deg, err := s.Label(ctx, docN(1))
	if err != nil {
		t.Fatalf("label with failing annotator: %v (want a degraded answer, not an error)", err)
	}
	if !deg.Degraded {
		t.Fatal("answer under annotator failure not marked degraded")
	}
	if deg.Posterior == nil {
		t.Fatal("degraded answer lost its posterior fallback")
	}
	if got := s.Metrics().AnnotatorBreaker; got != "open" {
		t.Errorf("breaker = %q after a tripping failure, want open", got)
	}

	// Breaker open: NLP columns abstain without touching the annotator.
	before := ann.calls.Load()
	deg2, err := s.Label(ctx, docN(0))
	if err != nil {
		t.Fatal(err)
	}
	if !deg2.Degraded {
		t.Fatal("answer with an open breaker not marked degraded")
	}
	if ann.calls.Load() != before {
		t.Errorf("annotator consulted %d times while the breaker was open", ann.calls.Load()-before)
	}
	// Same document as the healthy run: force-abstained NLP columns must
	// show up as strictly fewer non-abstain votes.
	if nonAbstains(deg2.Votes) >= nonAbstains(healthy.Votes) {
		t.Errorf("degraded non-abstains = %d, healthy = %d; NLP columns did not abstain",
			nonAbstains(deg2.Votes), nonAbstains(healthy.Votes))
	}

	snap := s.Metrics()
	if snap.Degraded < 2 {
		t.Errorf("degraded counter = %d, want >= 2", snap.Degraded)
	}
	if snap.Label.Errors != 0 {
		t.Errorf("label errors = %d; degradation must not count as failure", snap.Label.Errors)
	}
}

// TestLabelBatchDegradesAsAUnit: the vectorized path applies the same
// per-column breaker discipline — an open breaker degrades every record in
// the batch instead of failing the request.
func TestLabelBatchDegradesAsAUnit(t *testing.T) {
	ann := newFlakyAnnotator(t)
	s := newFlakyDocServer(t, ann, 1, time.Hour)
	ctx := context.Background()

	ann.fail.Store(true)
	if _, err := s.Label(ctx, docN(0)); err != nil { // trip the breaker
		t.Fatal(err)
	}

	docs := []*corpus.Document{docN(1), docN(2), docN(3)}
	res, err := s.LabelBatch(ctx, docs)
	if err != nil {
		t.Fatalf("batch with open breaker: %v", err)
	}
	for i, r := range res {
		if !r.Degraded {
			t.Errorf("record %d not marked degraded", i)
		}
		if r.Posterior == nil {
			t.Errorf("record %d lost its posterior fallback", i)
		}
	}
}

// TestLabelBreakerProbeRecovers: after the cooldown the breaker lets one
// live request probe the annotator; a healthy answer closes it and
// subsequent responses drop the Degraded marker.
func TestLabelBreakerProbeRecovers(t *testing.T) {
	ann := newFlakyAnnotator(t)
	s := newFlakyDocServer(t, ann, 1, 20*time.Millisecond)
	ctx := context.Background()

	ann.fail.Store(true)
	if _, err := s.Label(ctx, docN(0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().AnnotatorBreaker; got != "open" {
		t.Fatalf("breaker = %q after failure", got)
	}

	ann.fail.Store(false)
	time.Sleep(30 * time.Millisecond)
	res, err := s.Label(ctx, docN(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("probe request after recovery still degraded")
	}
	if got := s.Metrics().AnnotatorBreaker; got != "closed" {
		t.Errorf("breaker = %q after a successful probe, want closed", got)
	}
}
