package serve_test

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/serving"
	"repro/pkg/drybell/serve"
)

// docArtifact is a small but fully valid content artifact: any weights do,
// since labeling tests exercise the LF path, not the scores.
func docArtifact() *serving.Artifact {
	return &serving.Artifact{
		Name: "topic-classifier", Kind: "logreg", Threshold: 0.5,
		FeatureDim: 1 << 10, Bigrams: true,
		Signals: []string{"text", "url", "language"},
		Payload: []byte(`{"indices":[3],"values":[1.5]}`),
	}
}

func newDocServer(t *testing.T, runners []apps.DocLF, lm *labelmodel.Model) *serve.Server[*corpus.Document] {
	t.Helper()
	reg, _ := serving.OpenFSRegistry(dfs.NewMem(), "serving")
	if _, err := reg.Stage(docArtifact()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("topic-classifier", 1); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config[*corpus.Document]{
		Registry:   reg,
		Model:      "topic-classifier",
		Decode:     corpus.UnmarshalDocument,
		Featurize:  serve.DocumentFeaturizer,
		LFs:        runners,
		LabelModel: lm,
		CacheSize:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// uniformModel treats every LF as moderately accurate, so agreeing votes
// push the posterior decisively to the majority side.
func uniformModel(n int) *labelmodel.Model {
	m := &labelmodel.Model{Alpha: make([]float64, n), Beta: make([]float64, n)}
	for i := range m.Alpha {
		m.Alpha[i] = 1.5
	}
	return m
}

func celebrityDoc() *corpus.Document {
	return &corpus.Document{
		ID:       "doc-1",
		Title:    "ava stone dazzles on the redcarpet",
		Body:     "paparazzi swarm as the premiere spotlight finds ava stone",
		URL:      "https://starbeat.example/stories/1",
		Language: "en",
		Crawler:  corpus.CrawlerStats{EngagementScore: 0.95},
	}
}

func TestLabelOnlineVotesAndPosterior(t *testing.T) {
	runners := apps.TopicLFs(nil, 0, 1) // miss rate 0: deterministic NER
	s := newDocServer(t, runners, uniformModel(len(runners)))

	res, err := s.Label(context.Background(), celebrityDoc())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Votes) != len(runners) {
		t.Fatalf("%d votes for %d LFs", len(res.Votes), len(runners))
	}
	byName := map[string]int{}
	for _, v := range res.Votes {
		byName[v.LF] = v.Vote
	}
	for _, want := range []struct {
		lf   string
		vote int
	}{
		{"keyword_celebrity", 1},   // "paparazzi", "redcarpet" present
		{"url_entertainment", 1},   // starbeat.example
		{"ner_known_celebrity", 1}, // "ava stone" in graph as celebrity
		{"ner_no_person", 0},       // a person was found → abstain
		{"crawler_engagement", 1},  // engagement 0.95 > 0.88
		{"kg_non_celebrity_person", 0},
	} {
		if got, ok := byName[want.lf]; !ok || got != want.vote {
			t.Errorf("%s vote = %d (present %v), want %d", want.lf, got, ok, want.vote)
		}
	}
	if res.Posterior == nil {
		t.Fatal("no posterior despite configured label model")
	}
	if *res.Posterior < 0.9 {
		t.Errorf("posterior = %v for a strongly positive doc", *res.Posterior)
	}
}

func TestLabelCachesNLPCalls(t *testing.T) {
	runners := apps.TopicLFs(nil, 0, 1)
	s := newDocServer(t, runners, uniformModel(len(runners)))
	doc := celebrityDoc()
	for i := 0; i < 3; i++ {
		if _, err := s.Label(context.Background(), doc); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.NLPCache == nil {
		t.Fatal("no NLP cache stats despite NLP runners")
	}
	// 5 NLP-backed LFs share one annotation per unique text: 1 miss, the
	// rest hits.
	if m.NLPCache.Misses != 1 {
		t.Errorf("NLP model calls (misses) = %d, want 1 for repeated identical content", m.NLPCache.Misses)
	}
	if m.NLPCache.Hits < 10 {
		t.Errorf("cache hits = %d, want ≥ 10 across 3 requests × 5 NLP LFs", m.NLPCache.Hits)
	}
	if m.NLPCache.HitRate < 0.9 {
		t.Errorf("hit rate = %v", m.NLPCache.HitRate)
	}
	if m.Label.Requests != 3 || m.Label.Errors != 0 {
		t.Errorf("label path stats = %+v", m.Label)
	}
}

func TestLabelVotesOnlyWithoutModel(t *testing.T) {
	runners := apps.TopicLFs(nil, 0, 1)
	s := newDocServer(t, runners, nil)
	res, err := s.Label(context.Background(), celebrityDoc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior != nil {
		t.Error("posterior invented without a label model")
	}
	if len(res.Votes) != len(runners) {
		t.Errorf("votes = %d", len(res.Votes))
	}
}

func TestLabelerRejectsModelShapeMismatch(t *testing.T) {
	runners := apps.TopicLFs(nil, 0, 1)
	reg, _ := serving.OpenFSRegistry(dfs.NewMem(), "serving")
	if _, err := reg.Stage(docArtifact()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("topic-classifier", 1); err != nil {
		t.Fatal(err)
	}
	_, err := serve.New(serve.Config[*corpus.Document]{
		Registry:   reg,
		Model:      "topic-classifier",
		Featurize:  serve.DocumentFeaturizer,
		LFs:        runners,
		LabelModel: uniformModel(len(runners) + 3),
	})
	if err == nil {
		t.Fatal("label model with wrong LF count accepted")
	}
}

// TestLabelUsesKGraphCache wires the cached knowledge-graph client into the
// LFs and checks repeated traffic stops hitting the graph.
func TestLabelUsesKGraphCache(t *testing.T) {
	kg, err := kgraph.NewCache(kgraph.Builtin(), 128)
	if err != nil {
		t.Fatal(err)
	}
	runners := apps.TopicLFs(kg, 0, 1)
	s := newDocServer(t, runners, nil)
	for i := 0; i < 4; i++ {
		if _, err := s.Label(context.Background(), celebrityDoc()); err != nil {
			t.Fatal(err)
		}
	}
	if kg.Hits() == 0 {
		t.Error("knowledge-graph cache saw no hits under repeated traffic")
	}
}

// TestLabelBatchMatchesScalar: the vectorized online path must produce
// exactly the per-record results, posterior included.
func TestLabelBatchMatchesScalar(t *testing.T) {
	runners := apps.TopicLFs(nil, 0, 1)
	s := newDocServer(t, runners, uniformModel(len(runners)))
	docs := []*corpus.Document{
		celebrityDoc(),
		{ID: "d2", Title: "rate decision", Body: "dividend earnings outlook", URL: "https://newsroom.example/9", Language: "en"},
		{ID: "d3", Title: "city update", Body: "roadworks schedule", URL: "https://metro.example/4", Language: "en"},
	}
	batch, err := s.LabelBatch(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(docs) {
		t.Fatalf("batch results = %d, want %d", len(batch), len(docs))
	}
	for i, d := range docs {
		single, err := s.Label(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if len(single.Votes) != len(batch[i].Votes) {
			t.Fatalf("doc %d: vote counts differ", i)
		}
		for j := range single.Votes {
			if single.Votes[j] != batch[i].Votes[j] {
				t.Errorf("doc %d vote %d: scalar %+v != batch %+v", i, j, single.Votes[j], batch[i].Votes[j])
			}
		}
		if (single.Posterior == nil) != (batch[i].Posterior == nil) {
			t.Fatalf("doc %d: posterior presence differs", i)
		}
		if single.Posterior != nil && *single.Posterior != *batch[i].Posterior {
			t.Errorf("doc %d: posterior %v != %v", i, *single.Posterior, *batch[i].Posterior)
		}
	}
	if _, err := s.LabelBatch(context.Background(), nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}
