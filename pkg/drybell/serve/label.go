package serve

import (
	"fmt"

	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/nlp"
)

// VoteRecord is one labeling function's online vote on a record.
type VoteRecord struct {
	LF       string `json:"lf"`
	Category string `json:"category"`
	// Vote is +1 (positive), -1 (negative), or 0 (abstain).
	Vote int `json:"vote"`
}

// LabelResult is one /v1/label answer: the per-LF votes, and the label
// model's denoised P(Y=1|votes) when a trained model is configured.
type LabelResult struct {
	Posterior *float64     `json:"posterior,omitempty"`
	Votes     []VoteRecord `json:"votes"`
}

// labeler evaluates the registered labeling functions against one record,
// outside the MapReduce machinery they run in offline. Func runners call
// their vote function directly; NLPFunc runners share a single node-local
// model server behind an LRU cache keyed on the annotated text, so repeated
// traffic does not re-run the expensive NLP models.
type labeler[T any] struct {
	metas []lf.Meta
	evals []func(T) (labelmodel.Label, error)
	model *labelmodel.Model
	cache *nlp.Cache // nil when no NLP runner is registered
}

func newLabeler[T any](runners []lf.Runner[T], model *labelmodel.Model, ann nlp.Annotator, cacheSize int) (*labeler[T], error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("serve: labeler needs at least one runner")
	}
	if model != nil && model.NumFuncs() != len(runners) {
		return nil, fmt.Errorf("serve: label model trained on %d LFs, %d runners registered",
			model.NumFuncs(), len(runners))
	}

	// All NLP runners share one annotator — by default the first runner's
	// model server (they are one per compute node offline too, §5.1) —
	// wrapped in the LRU cache.
	var cache *nlp.Cache
	if ann == nil {
		for _, r := range runners {
			if f, ok := r.(lf.NLPFunc[T]); ok {
				srv := f.NewServer()
				if srv == nil {
					return nil, fmt.Errorf("serve: lf %s: NewServer returned nil", f.Meta.Name)
				}
				if err := srv.Launch(); err != nil {
					return nil, fmt.Errorf("serve: lf %s: %w", f.Meta.Name, err)
				}
				ann = srv
				break
			}
		}
	}
	if ann != nil {
		if c, ok := ann.(*nlp.Cache); ok {
			cache = c
		} else {
			c, err := nlp.NewCache(ann, cacheSize)
			if err != nil {
				return nil, err
			}
			cache = c
			ann = c
		}
	}

	l := &labeler[T]{model: model, cache: cache}
	for _, r := range runners {
		meta := r.LFMeta()
		l.metas = append(l.metas, meta)
		switch f := r.(type) {
		case lf.Func[T]:
			vote := f.Vote
			l.evals = append(l.evals, func(x T) (labelmodel.Label, error) {
				v := vote(x)
				if !v.Valid() {
					return 0, fmt.Errorf("serve: lf %s: invalid vote %d", meta.Name, v)
				}
				return v, nil
			})
		case lf.NLPFunc[T]:
			getText, getValue, shared := f.GetText, f.GetValue, ann
			l.evals = append(l.evals, func(x T) (labelmodel.Label, error) {
				res, err := shared.Annotate(getText(x))
				if err != nil {
					return 0, fmt.Errorf("serve: lf %s: %w", meta.Name, err)
				}
				v := getValue(x, res)
				if !v.Valid() {
					return 0, fmt.Errorf("serve: lf %s: invalid vote %d", meta.Name, v)
				}
				return v, nil
			})
		default:
			return nil, fmt.Errorf("serve: lf %s: runner type %T has no online evaluator", meta.Name, r)
		}
	}
	return l, nil
}

func (l *labeler[T]) label(x T) (LabelResult, error) {
	votes := make([]labelmodel.Label, len(l.evals))
	records := make([]VoteRecord, len(l.evals))
	for i, eval := range l.evals {
		v, err := eval(x)
		if err != nil {
			return LabelResult{}, err
		}
		votes[i] = v
		records[i] = VoteRecord{LF: l.metas[i].Name, Category: string(l.metas[i].Category), Vote: int(v)}
	}
	out := LabelResult{Votes: records}
	if l.model != nil {
		p := l.model.PosteriorRow(votes)
		out.Posterior = &p
	}
	return out, nil
}

func (l *labeler[T]) cacheSnapshot() *CacheSnapshot {
	if l == nil || l.cache == nil {
		return nil
	}
	return &CacheSnapshot{Hits: l.cache.Hits(), Misses: l.cache.Misses(), HitRate: l.cache.HitRate()}
}
