package serve

import (
	"context"
	"fmt"

	"repro/internal/breaker"
	"repro/internal/labelmodel"
	"repro/internal/nlp"
	"repro/pkg/drybell/lf"
)

// VoteRecord is one labeling function's online vote on a record.
type VoteRecord struct {
	LF       string `json:"lf"`
	Category string `json:"category"`
	// Vote is +1 (positive), -1 (negative), or 0 (abstain).
	Vote int `json:"vote"`
}

// LabelResult is one /v1/label answer: the per-LF votes, and the label
// model's denoised P(Y=1|votes) when a trained model is configured.
type LabelResult struct {
	Posterior *float64     `json:"posterior,omitempty"`
	Votes     []VoteRecord `json:"votes"`
	// Degraded marks an answer produced while the NLP annotator dependency
	// was unhealthy: NLP-dependent functions abstained and the posterior is
	// a raw majority vote over the heuristics that could still run.
	Degraded bool `json:"degraded,omitempty"`
}

// labeler evaluates the registered labeling functions against records,
// outside the MapReduce machinery they run in offline. It is a thin layer
// over the authoring API's shared Evaluator: the very same lf.LF values the
// batch executor runs as jobs answer here per request, with every NLP
// function in the set consulting one node-local model server behind an LRU
// cache keyed on the annotated text.
//
// When the set has NLP functions, a health breaker (br) guards the
// annotator dependency: consecutive NLP failures open it, and while it is
// open the labeler answers in degraded mode — NLP-dependent functions
// abstain, the posterior falls back to a majority vote over the surviving
// heuristics, and the result is marked Degraded — instead of failing the
// request on a dependency the caller cannot do anything about.
type labeler[T any] struct {
	eval   *lf.Evaluator[T]
	lfs    []lf.LF[T]
	metas  []lf.Meta
	model  *labelmodel.Model
	nlpDep []bool // which columns consult the shared annotator
	hasNLP bool

	br        *breaker.Breaker // nil: no NLP dependency, no degraded mode
	onDegrade func()           // metrics hook, counted once per degraded request
}

func newLabeler[T any](lfs []lf.LF[T], model *labelmodel.Model, ann nlp.Annotator, cacheSize int) (*labeler[T], error) {
	if len(lfs) == 0 {
		return nil, fmt.Errorf("serve: labeler needs at least one labeling function")
	}
	if model != nil && model.NumFuncs() != len(lfs) {
		return nil, fmt.Errorf("serve: label model trained on %d LFs, %d functions registered",
			model.NumFuncs(), len(lfs))
	}
	eval, err := lf.NewEvaluator(lfs, ann, cacheSize)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := eval.Setup(context.Background()); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	l := &labeler[T]{eval: eval, lfs: eval.LFs(), metas: eval.Metas(), model: model}
	l.nlpDep = make([]bool, len(l.lfs))
	for j, f := range l.lfs {
		if _, ok := f.(lf.Annotatable); ok {
			l.nlpDep[j] = true
			l.hasNLP = true
		}
	}
	return l, nil
}

// label evaluates one record — one label-matrix row plus its posterior.
//
// Without a breaker this is the Evaluator's plain VoteRow. With one, the
// row is walked function by function: an NLP-dependent function that fails
// (for any reason other than the caller's own context ending) feeds the
// breaker and degrades the rest of this request, and when the breaker is
// already open NLP functions abstain without being called at all. The
// breaker's half-open probe is a live request — the first /v1/label after
// the cooldown tries the annotator for real and closes the breaker on
// success.
func (l *labeler[T]) label(ctx context.Context, x T) (LabelResult, error) {
	if l.br == nil {
		votes, err := l.eval.VoteRow(ctx, x)
		if err != nil {
			return LabelResult{}, fmt.Errorf("serve: %w", err)
		}
		return l.result(votes, false), nil
	}
	degraded := !l.br.Allow()
	votes := make([]labelmodel.Label, len(l.lfs))
	for j, f := range l.lfs {
		if err := ctx.Err(); err != nil {
			return LabelResult{}, fmt.Errorf("serve: lf %s: %w", l.metas[j].Name, err)
		}
		if l.nlpDep[j] && degraded {
			continue // annotator unhealthy: abstain instead of erroring
		}
		v, err := f.Vote(ctx, x)
		if err != nil {
			if l.nlpDep[j] && ctx.Err() == nil {
				// A dependency failure, not caller cancellation: record it
				// and finish the request degraded.
				l.br.Failure()
				degraded = true
				continue
			}
			return LabelResult{}, fmt.Errorf("serve: %w", err)
		}
		if !v.Valid() {
			return LabelResult{}, fmt.Errorf("serve: lf %s: invalid vote %d", l.metas[j].Name, int8(v))
		}
		if l.nlpDep[j] {
			l.br.Success()
		}
		votes[j] = v
	}
	if degraded && l.onDegrade != nil {
		l.onDegrade()
	}
	return l.result(votes, degraded), nil
}

// labelBatch evaluates many records through the vectorized VoteBatch path,
// one column (labeling function) at a time, with the same per-column
// breaker discipline as label: an unhealthy annotator turns NLP columns
// into abstain columns rather than failing the whole batch.
func (l *labeler[T]) labelBatch(ctx context.Context, xs []T) ([]LabelResult, error) {
	var mx *labelmodel.Matrix
	var degraded bool
	if l.br == nil {
		var err error
		if mx, err = l.eval.VoteMatrix(ctx, xs); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	} else {
		degraded = !l.br.Allow()
		mx = labelmodel.NewMatrix(len(xs), len(l.lfs))
		for j, f := range l.lfs {
			if l.nlpDep[j] && degraded {
				continue // column abstains; matrix rows default to 0
			}
			votes, err := lf.VoteAll(ctx, f, xs)
			if err != nil {
				if l.nlpDep[j] && ctx.Err() == nil {
					l.br.Failure()
					degraded = true
					continue
				}
				return nil, fmt.Errorf("serve: %w", err)
			}
			if l.nlpDep[j] {
				l.br.Success()
			}
			for i, v := range votes {
				mx.Set(i, j, v)
			}
		}
		if degraded && l.onDegrade != nil {
			l.onDegrade()
		}
	}
	out := make([]LabelResult, len(xs))
	row := make([]labelmodel.Label, len(l.metas))
	for i := range xs {
		for j := range l.metas {
			row[j] = mx.At(i, j)
		}
		out[i] = l.result(row, degraded)
	}
	return out, nil
}

func (l *labeler[T]) result(votes []labelmodel.Label, degraded bool) LabelResult {
	records := make([]VoteRecord, len(votes))
	for j, v := range votes {
		records[j] = VoteRecord{LF: l.metas[j].Name, Category: string(l.metas[j].Category), Vote: int(v)} //drybellvet:rawvote — JSON response field, never a persisted vote byte
	}
	out := LabelResult{Votes: records, Degraded: degraded}
	switch {
	case degraded:
		// The label model was trained on the full function set; feeding it
		// rows where whole columns are force-abstained would read the gaps
		// as genuine abstains and skew the posterior. A transparent
		// majority vote over what actually ran is the honest fallback.
		p := majorityPosterior(votes)
		out.Posterior = &p
	case l.model != nil:
		p := l.model.PosteriorRow(votes)
		out.Posterior = &p
	}
	return out
}

// majorityPosterior is the degraded-mode fallback: the fraction of
// non-abstaining votes that are positive, 0.5 when everything abstained.
func majorityPosterior(votes []labelmodel.Label) float64 {
	var pos, neg int
	for _, v := range votes {
		switch {
		case v > 0:
			pos++
		case v < 0:
			neg++
		}
	}
	if pos+neg == 0 {
		return 0.5
	}
	return float64(pos) / float64(pos+neg)
}

func (l *labeler[T]) cacheSnapshot() *CacheSnapshot {
	if l == nil {
		return nil
	}
	cache := l.eval.NLPCache()
	if cache == nil {
		return nil
	}
	return &CacheSnapshot{Hits: cache.Hits(), Misses: cache.Misses(), HitRate: cache.HitRate()}
}
