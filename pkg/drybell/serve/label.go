package serve

import (
	"context"
	"fmt"

	"repro/internal/labelmodel"
	"repro/internal/nlp"
	"repro/pkg/drybell/lf"
)

// VoteRecord is one labeling function's online vote on a record.
type VoteRecord struct {
	LF       string `json:"lf"`
	Category string `json:"category"`
	// Vote is +1 (positive), -1 (negative), or 0 (abstain).
	Vote int `json:"vote"`
}

// LabelResult is one /v1/label answer: the per-LF votes, and the label
// model's denoised P(Y=1|votes) when a trained model is configured.
type LabelResult struct {
	Posterior *float64     `json:"posterior,omitempty"`
	Votes     []VoteRecord `json:"votes"`
}

// labeler evaluates the registered labeling functions against records,
// outside the MapReduce machinery they run in offline. It is a thin layer
// over the authoring API's shared Evaluator: the very same lf.LF values the
// batch executor runs as jobs answer here per request, with every NLP
// function in the set consulting one node-local model server behind an LRU
// cache keyed on the annotated text.
type labeler[T any] struct {
	eval  *lf.Evaluator[T]
	metas []lf.Meta
	model *labelmodel.Model
}

func newLabeler[T any](lfs []lf.LF[T], model *labelmodel.Model, ann nlp.Annotator, cacheSize int) (*labeler[T], error) {
	if len(lfs) == 0 {
		return nil, fmt.Errorf("serve: labeler needs at least one labeling function")
	}
	if model != nil && model.NumFuncs() != len(lfs) {
		return nil, fmt.Errorf("serve: label model trained on %d LFs, %d functions registered",
			model.NumFuncs(), len(lfs))
	}
	eval, err := lf.NewEvaluator(lfs, ann, cacheSize)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := eval.Setup(context.Background()); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &labeler[T]{eval: eval, metas: eval.Metas(), model: model}, nil
}

// label evaluates one record — one label-matrix row plus its posterior.
func (l *labeler[T]) label(ctx context.Context, x T) (LabelResult, error) {
	votes, err := l.eval.VoteRow(ctx, x)
	if err != nil {
		return LabelResult{}, fmt.Errorf("serve: %w", err)
	}
	return l.result(votes), nil
}

// labelBatch evaluates many records through the vectorized VoteBatch path,
// one column (labeling function) at a time.
func (l *labeler[T]) labelBatch(ctx context.Context, xs []T) ([]LabelResult, error) {
	mx, err := l.eval.VoteMatrix(ctx, xs)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	out := make([]LabelResult, len(xs))
	row := make([]labelmodel.Label, len(l.metas))
	for i := range xs {
		for j := range l.metas {
			row[j] = mx.At(i, j)
		}
		out[i] = l.result(row)
	}
	return out, nil
}

func (l *labeler[T]) result(votes []labelmodel.Label) LabelResult {
	records := make([]VoteRecord, len(votes))
	for j, v := range votes {
		records[j] = VoteRecord{LF: l.metas[j].Name, Category: string(l.metas[j].Category), Vote: int(v)} //drybellvet:rawvote — JSON response field, never a persisted vote byte
	}
	out := LabelResult{Votes: records}
	if l.model != nil {
		p := l.model.PosteriorRow(votes)
		out.Posterior = &p
	}
	return out
}

func (l *labeler[T]) cacheSnapshot() *CacheSnapshot {
	if l == nil {
		return nil
	}
	cache := l.eval.NLPCache()
	if cache == nil {
		return nil
	}
	return &CacheSnapshot{Hits: cache.Hits(), Misses: cache.Misses(), HitRate: cache.HitRate()}
}
