package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded matches any AdmissionError with errors.Is — the umbrella
// sentinel for "the server shed this request at the door".
var ErrOverloaded = errors.New("serve: overloaded")

// AdmissionError is a request shed before it consumed any scoring capacity.
// The HTTP layer renders it as 429 with a Retry-After header; the shed
// happens at submit time, before the request is queued, so rejecting is
// cheap exactly when the server can least afford extra work.
type AdmissionError struct {
	// Reason is "latency budget exceeded" (sustained queue delay above the
	// budget) or "queue full" (the bounded queue has no token left).
	Reason string
	// RetryAfter is the hint sent to the client; one shed interval is long
	// enough for the queue to drain at current capacity.
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

func (e *AdmissionError) Is(target error) bool { return target == ErrOverloaded }

// admission is a CoDel-style admission controller in front of the predict
// queue. Two mechanisms compose:
//
//   - A token semaphore bounds how many requests may be queued-or-scoring at
//     once; with no token free the request is shed immediately ("queue
//     full") instead of waiting on an unbounded channel.
//   - Queue delay is observed at dequeue. Following CoDel, the controller
//     tracks the *minimum* delay seen over a sliding interval: a standing
//     queue — every request waiting longer than the latency budget for a
//     whole interval — flips the controller into shedding, and new arrivals
//     get 429 until the backlog drains. The minimum (not mean or max) is
//     what distinguishes a harmless burst, which always contains some
//     low-delay request, from true overload, where even the luckiest
//     request waits too long.
//
// Shedding is self-limiting: while it is on, no new work is admitted, so
// the semaphore drains; when the last outstanding request releases its
// token the controller clears the shed state and the window, and admission
// resumes fresh.
type admission struct {
	budget   time.Duration
	interval time.Duration
	sem      chan struct{} // tokens: requests queued or scoring
	now      func() time.Time

	mu          sync.Mutex
	windowMin   time.Duration
	haveMin     bool
	windowStart time.Time
	shedding    bool

	m *metrics // nil in low-level tests
}

// newAdmission builds a controller with the given latency budget and queue
// bound. The observation interval is the budget itself — the smallest
// window over which "the queue never got healthy" is meaningful.
func newAdmission(budget time.Duration, maxQueue int, m *metrics) *admission {
	return &admission{
		budget:   budget,
		interval: budget,
		sem:      make(chan struct{}, maxQueue),
		now:      time.Now, //drybellvet:wallclock — queue-delay measurement, not data-plane ordering
		m:        m,
	}
}

// admit claims a queue token or sheds the request. Called at submit, before
// the request touches the queue.
func (a *admission) admit() error {
	a.mu.Lock()
	shedding := a.shedding
	a.mu.Unlock()
	if shedding {
		return a.shed("latency budget exceeded")
	}
	select {
	case a.sem <- struct{}{}:
		if a.m != nil {
			a.m.admitted.Inc()
		}
		return nil
	default:
		return a.shed("queue full")
	}
}

func (a *admission) shed(reason string) error {
	if a.m != nil {
		a.m.shedFor(reason).Inc()
	}
	return &AdmissionError{Reason: reason, RetryAfter: a.interval}
}

// observe records one request's queue delay at dequeue and advances the
// CoDel window.
func (a *admission) observe(wait time.Duration) {
	if a.m != nil {
		a.m.queueWait.ObserveDuration(wait)
	}
	now := a.now()
	a.mu.Lock()
	if !a.haveMin || wait < a.windowMin {
		a.windowMin, a.haveMin = wait, true
	}
	if a.windowStart.IsZero() {
		a.windowStart = now
		a.mu.Unlock()
		return
	}
	if now.Sub(a.windowStart) < a.interval {
		a.mu.Unlock()
		return
	}
	shed := a.windowMin > a.budget
	changed := shed != a.shedding
	a.shedding = shed
	a.windowStart = now
	a.haveMin = false
	a.mu.Unlock()
	if changed {
		a.setShedGauge(shed)
	}
}

// release returns a request's token once it has been answered. When the
// last token comes back the backlog is gone — clear the shed state and the
// stale window instead of letting an old verdict shed fresh traffic.
func (a *admission) release() {
	<-a.sem
	if len(a.sem) != 0 {
		return
	}
	a.mu.Lock()
	changed := a.shedding
	a.shedding = false
	a.haveMin = false
	a.windowStart = time.Time{}
	a.mu.Unlock()
	if changed {
		a.setShedGauge(false)
	}
}

func (a *admission) setShedGauge(on bool) {
	if a.m == nil {
		return
	}
	if on {
		a.m.shedding.Set(1)
	} else {
		a.m.shedding.Set(0)
	}
}

// isShedding reports the controller's current verdict (metrics/tests).
func (a *admission) isShedding() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shedding
}
