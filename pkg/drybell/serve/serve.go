// Package serve is the online serving subsystem of the drybell SDK: it
// answers requests with the currently-promoted artifact from the serving
// registry, completing the paper's §5.3 story (models are staged, validated,
// promoted, and then *served in production*).
//
// A Server exposes two request paths over HTTP/JSON (see Handler):
//
//   - /v1/predict featurizes a record and scores it with the promoted
//     artifact. Requests are micro-batched — collected for up to
//     Config.BatchWait or Config.MaxBatch records, then scored as one
//     matrix op by a worker pool — and model promotion hot-swaps through an
//     atomic pointer, so in-flight requests finish on the version they
//     started with and no request is dropped across a promotion.
//   - /v1/label runs the registered labeling functions online against a
//     single record and returns the label model's denoised posterior plus
//     the per-LF votes. Expensive NLP model-server calls sit behind an LRU
//     cache keyed on the annotated text.
//
// The registry is any serving.Catalog; with an FS-backed registry the
// daemon's state survives restarts — a new Server recovers the promoted
// version from filesystem state alone.
//
// Past saturation the contract is shed or answer, never error. Admission
// control watches the queue delay CoDel-style: when the minimum delay over
// the last Config.LatencyBudget window exceeds the budget — or the bounded
// scoring queue (Config.MaxQueue) is full — new arrivals are rejected with
// ErrOverloaded (HTTP 429 plus Retry-After), while every request already
// admitted completes. Callers propagate deadlines with the
// X-Request-Deadline header (see DeadlineHeader); the deadline covers
// queueing and scoring, so a doomed request answers 504 early instead of
// occupying a batch slot. /v1/label degrades instead of failing when its
// NLP annotator is unhealthy: a circuit breaker (Config.BreakerThreshold,
// Config.BreakerCooldown) force-abstains the NLP-backed labeling functions
// and the response falls back to a majority-vote posterior, marked
// Degraded. Shed counts by reason, degraded answers, and breaker state are
// all visible in Metrics.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/labelmodel"
	"repro/internal/nlp"
	"repro/internal/obs"
	"repro/internal/serving"
	"repro/pkg/drybell/lf"
)

// ErrNoLabeler is returned by Label when no labeling functions were
// configured.
var ErrNoLabeler = errors.New("serve: no labeling functions configured")

// Featurizer builds the request-time feature extractor for one artifact.
// It is re-derived on every promotion so the extractor always agrees with
// the live artifact's dimension and bigram setting.
type Featurizer[T any] func(a *serving.Artifact) (func(T) *features.SparseVector, error)

// Config assembles a Server.
type Config[T any] struct {
	// Registry is the model store; Model names the line to serve. The model
	// must have a live (promoted) version. Required.
	Registry serving.Catalog
	Model    string

	// Decode parses an HTTP request body into a record. Required for
	// Handler; the programmatic Predict/Label paths work without it.
	Decode func([]byte) (T, error)

	// Featurize builds the servable feature extractor from the live
	// artifact. Required. DocumentFeaturizer is the standard choice for
	// content tasks.
	Featurize Featurizer[T]

	// LFs are the labeling functions behind /v1/label, in label-model
	// column order — the same lf.LF values the batch pipeline executes.
	// Optional; without them Label returns ErrNoLabeler.
	LFs []lf.LF[T]
	// LabelModel is the trained generative model whose PosteriorRow
	// denoises online votes. Optional; without it /v1/label returns votes
	// only.
	LabelModel *labelmodel.Model
	// Annotator overrides the NLP service the labeler consults. Default:
	// the set's first NLP function launches its model server. It is wrapped
	// in an LRU cache and injected into every NLP function either way.
	Annotator nlp.Annotator

	// Metrics is the registry receiving the server's series (request
	// counters, latency histograms, batch sizes, model version). Passing the
	// process-wide registry makes them scrapeable alongside everything else
	// (cmd/drybelld serves it at /metrics); nil gets a private registry, and
	// the JSON snapshot at /v1/metrics works either way.
	Metrics *obs.Registry

	// MaxBatch and BatchWait bound a micro-batch: score when MaxBatch
	// records are waiting, or BatchWait after the first, whichever is
	// sooner. Defaults 32 and 2ms.
	MaxBatch  int
	BatchWait time.Duration
	// Workers sizes the scoring pool. Default GOMAXPROCS.
	Workers int
	// CacheSize bounds the NLP annotation LRU. Default 1024.
	CacheSize int

	// LatencyBudget arms the CoDel-style admission controller on the
	// predict path: when every request in a whole observation window waits
	// longer than this in the queue, new arrivals are shed with 429 +
	// Retry-After until the backlog drains. Default 100ms; negative
	// disables admission control entirely.
	LatencyBudget time.Duration
	// MaxQueue bounds predict requests queued-or-scoring at once; arrivals
	// beyond it are shed immediately. Default 8×MaxBatch. Ignored when
	// admission control is disabled.
	MaxQueue int
	// DefaultDeadline caps every HTTP request that arrives without its own
	// X-Request-Deadline header. 0 imposes no server-side deadline.
	DefaultDeadline time.Duration
	// BreakerThreshold consecutive NLP annotator failures trip the
	// labeler's health breaker; while it is open /v1/label answers in
	// degraded mode (NLP-dependent functions abstain, majority-vote
	// posterior, Degraded: true) instead of erroring. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the annotator breaker stays open before
	// probing with one live request. Default 5s.
	BreakerCooldown time.Duration
}

// Server is the online serving engine. Construct with New; the zero value
// is not usable. All methods are safe for concurrent use.
type Server[T any] struct {
	cfg     Config[T]
	handle  *serving.Handle
	batcher *batcher[T]
	labeler *labeler[T]
	metrics *metrics
	adm     *admission // nil when admission control is disabled

	// feat caches the built featurizer for the live artifact version, so
	// the hot path pays Config.Featurize only once per promotion, not once
	// per batch.
	feat atomic.Pointer[featUnit[T]]

	// scratch pools scoreBatch's feature and score buffers.
	scratch sync.Pool

	reloadMu sync.Mutex // serializes Reload's read-compare-swap
}

type featUnit[T any] struct {
	version int
	feat    func(T) *features.SparseVector
}

// New builds a Server over the registry's live artifact. It fails when the
// model line has no promoted version — stage and promote one first (e.g.
// ContentClassifier.StageForServing, or cmd/drybelld's train mode).
func New[T any](cfg Config[T]) (*Server[T], error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: Config.Registry is required")
	}
	if cfg.Model == "" {
		return nil, fmt.Errorf("serve: Config.Model is required")
	}
	if cfg.Featurize == nil {
		return nil, fmt.Errorf("serve: Config.Featurize is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.LatencyBudget == 0 {
		cfg.LatencyBudget = 100 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8 * cfg.MaxBatch
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}

	live, err := cfg.Registry.Live(cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("serve: %w (stage and promote a version first)", err)
	}
	srv, err := buildServer(cfg.Featurize, live)
	if err != nil {
		return nil, err
	}
	handle, err := serving.NewHandle(srv)
	if err != nil {
		return nil, err
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server[T]{cfg: cfg, handle: handle, metrics: newMetrics(reg)}
	s.metrics.version.Set(float64(handle.Version()))
	s.metrics.markPromotion(time.Now())
	if len(cfg.LFs) > 0 {
		s.labeler, err = newLabeler(cfg.LFs, cfg.LabelModel, cfg.Annotator, cfg.CacheSize)
		if err != nil {
			return nil, err
		}
		if s.labeler.hasNLP {
			// The labeler depends on an external annotator; give it a
			// health breaker so an unhealthy dependency degrades /v1/label
			// instead of failing it.
			gauge := s.metrics.breakerState
			s.labeler.br = breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown,
				breaker.WithOnChange(func(st breaker.State) { gauge.Set(float64(st)) }))
			s.labeler.onDegrade = s.metrics.degraded.Inc
		}
	}
	if cfg.LatencyBudget > 0 {
		s.adm = newAdmission(cfg.LatencyBudget, cfg.MaxQueue, s.metrics)
	}
	s.batcher = newBatcher(cfg.MaxBatch, cfg.BatchWait, cfg.Workers, s.adm, s.scoreBatch)
	return s, nil
}

// buildServer validates an artifact end to end — servable signals, loadable
// payload, buildable featurizer — before it can reach the request path.
func buildServer[T any](featurize Featurizer[T], a *serving.Artifact) (*serving.Server, error) {
	if err := serving.ValidateServable(a); err != nil {
		return nil, err
	}
	srv, err := serving.NewServer(a)
	if err != nil {
		return nil, err
	}
	if _, err := featurize(a); err != nil {
		return nil, fmt.Errorf("serve: featurizer for %s v%d: %w", a.Name, a.Version, err)
	}
	return srv, nil
}

// Predict scores one record against the live model, sharing a matrix op
// with whatever batch it lands in. It blocks until the batch is scored or
// ctx is done.
func (s *Server[T]) Predict(ctx context.Context, rec T) (PredictResult, error) {
	ctx, span := obs.StartSpan(ctx, "serve.predict")
	start := time.Now()
	res, err := s.batcher.submit(ctx, rec)
	var ae *AdmissionError
	if errors.As(err, &ae) {
		// Shed at the door: the request never reached the queue, so keep it
		// out of the latency/error series — the shed counter already has it.
		span.SetAttr(obs.String("shed", ae.Reason))
		span.EndErr(err)
		return res, err
	}
	s.metrics.predict.observe(time.Since(start), err)
	span.EndErr(err)
	return res, err
}

// featurizerFor returns the cached featurizer for the artifact's version,
// rebuilding it only when a promotion changed the version. Racing workers
// may both rebuild after a swap; Featurize must be pure, so either result
// is correct and the last store wins.
func (s *Server[T]) featurizerFor(art *serving.Artifact) (func(T) *features.SparseVector, error) {
	if u := s.feat.Load(); u != nil && u.version == art.Version {
		return u.feat, nil
	}
	f, err := s.cfg.Featurize(art)
	if err != nil {
		return nil, err
	}
	s.feat.Store(&featUnit[T]{version: art.Version, feat: f})
	return f, nil
}

// scoreScratch holds the per-call feature and score buffers of scoreBatch,
// pooled so steady-state scoring allocates only the feature vectors
// themselves.
type scoreScratch struct {
	xs     []*features.SparseVector
	scores []float64
	// empty stands in for records skipped because their context died; its
	// score is never reported.
	empty *features.SparseVector
}

// scoreBatch is the worker-pool entry: snapshot the live model once, then
// featurize and score the whole batch against that snapshot, so every
// request in a batch is answered by a single consistent model version.
// Results are written into the worker's reusable out buffer.
func (s *Server[T]) scoreBatch(ctxs []context.Context, recs []T, out []PredictResult) ([]PredictResult, error) {
	srv := s.handle.Current()
	art := srv.Artifact()
	feat, err := s.featurizerFor(art)
	if err != nil {
		return nil, err
	}
	sc, _ := s.scratch.Get().(*scoreScratch)
	if sc == nil {
		sc = &scoreScratch{empty: &features.SparseVector{}}
	}
	if cap(sc.xs) < len(recs) {
		sc.xs = make([]*features.SparseVector, len(recs))
		sc.scores = make([]float64, len(recs))
	}
	xs, scores := sc.xs[:len(recs)], sc.scores[:len(recs)]
	for i, r := range recs {
		if ctxs[i] != nil && ctxs[i].Err() != nil {
			// Deadline hit mid-batch: skip this record's feature work; the
			// batcher answers it with its context error, not this score.
			xs[i] = sc.empty
			continue
		}
		xs[i] = feat(r)
	}
	srv.ScoreBatchInto(xs, scores)
	for i, score := range scores {
		out[i] = PredictResult{
			Model:    art.Name,
			Version:  art.Version,
			Score:    score,
			Positive: score >= art.Threshold,
		}
	}
	clear(xs) // drop feature-vector references before pooling
	s.scratch.Put(sc)
	s.metrics.observeBatch(len(recs))
	return out, nil
}

// Label runs every registered labeling function against the record and
// denoises the votes with the label model when one is configured.
func (s *Server[T]) Label(ctx context.Context, rec T) (LabelResult, error) {
	if s.labeler == nil {
		return LabelResult{}, ErrNoLabeler
	}
	if err := ctx.Err(); err != nil {
		return LabelResult{}, err
	}
	ctx, span := obs.StartSpan(ctx, "serve.label")
	start := time.Now()
	res, err := s.labeler.label(ctx, rec)
	if res.Degraded {
		span.SetAttr(obs.Bool("degraded", true))
	}
	s.metrics.label.observe(time.Since(start), err)
	span.EndErr(err)
	return res, err
}

// LabelBatch labels many records in one call through the labeling
// functions' vectorized VoteBatch path — one column at a time instead of
// one record at a time, amortizing per-call overhead the way the batch
// executor's map tasks do.
func (s *Server[T]) LabelBatch(ctx context.Context, recs []T) ([]LabelResult, error) {
	if s.labeler == nil {
		return nil, ErrNoLabeler
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "serve.label-batch", obs.Int("records", len(recs)))
	start := time.Now()
	res, err := s.labeler.labelBatch(ctx, recs)
	span.EndErr(err)
	if err != nil {
		// One failed request, not len(recs) of them — the batch fails as
		// a unit, so the error path is observed exactly once.
		s.metrics.label.observe(time.Since(start), err)
		return nil, err
	}
	// Each record counts as one labeling, at the batch's amortized latency.
	per := time.Duration(int64(time.Since(start)) / int64(len(recs)))
	for range recs {
		s.metrics.label.observe(per, nil)
	}
	return res, nil
}

// Promote makes a staged version live in the registry and hot-swaps it into
// the request path. In-flight requests finish on the old version. If the
// candidate fails validation, the registry's live marker is restored so the
// registry and the request path keep agreeing on the serving version.
func (s *Server[T]) Promote(version int) error {
	prev := s.handle.Version()
	if err := s.cfg.Registry.Promote(s.cfg.Model, version); err != nil {
		return err
	}
	if err := s.Reload(); err != nil {
		if rerr := s.cfg.Registry.Promote(s.cfg.Model, prev); rerr != nil {
			return fmt.Errorf("%w (and restoring v%d live failed: %v)", err, prev, rerr)
		}
		return err
	}
	return nil
}

// Rollback reverts the registry to the previous version and hot-swaps it in.
func (s *Server[T]) Rollback() error {
	if err := s.cfg.Registry.Rollback(s.cfg.Model); err != nil {
		return err
	}
	return s.Reload()
}

// Reload re-reads the registry's live version and swaps it in if it differs
// from the one being served — the path by which promotions made by another
// process on a shared filesystem reach this daemon. The swap is atomic; a
// failed validation leaves the current version serving.
func (s *Server[T]) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	live, err := s.cfg.Registry.Live(s.cfg.Model)
	if err != nil {
		return err
	}
	if live.Version == s.handle.Version() {
		return nil
	}
	srv, err := buildServer(s.cfg.Featurize, live)
	if err != nil {
		return err
	}
	s.handle.Swap(srv)
	s.metrics.version.Set(float64(live.Version))
	s.metrics.markPromotion(time.Now())
	return nil
}

// Version returns the model version currently answering requests.
func (s *Server[T]) Version() int { return s.handle.Version() }

// Metrics returns a point-in-time snapshot of the server's counters.
func (s *Server[T]) Metrics() Snapshot {
	art := s.handle.Current().Artifact()
	snap := Snapshot{
		Model:           art.Name,
		Version:         art.Version,
		Swaps:           s.handle.Swaps(),
		UptimeSeconds:   time.Since(s.metrics.start).Seconds(),
		Predict:         s.metrics.predict.snapshot(),
		Label:           s.metrics.label.snapshot(),
		Batches:         s.metrics.batchSnapshot(),
		NLPCache:        s.labeler.cacheSnapshot(),
		Degraded:        s.metrics.degraded.Value(),
		ModelAgeSeconds: s.metrics.modelAgeSeconds(time.Now()),
	}
	if s.adm != nil {
		snap.Admission = &AdmissionSnapshot{
			Admitted:       s.metrics.admitted.Value(),
			ShedBudget:     s.metrics.shedFor("latency budget exceeded").Value(),
			ShedQueueFull:  s.metrics.shedFor("queue full").Value(),
			QueueWaitP50Ms: s.metrics.queueWait.Quantile(0.50) * 1000,
			QueueWaitP99Ms: s.metrics.queueWait.Quantile(0.99) * 1000,
			Shedding:       s.adm.isShedding(),
		}
	}
	if s.labeler != nil && s.labeler.br != nil {
		snap.AnnotatorBreaker = s.labeler.br.State().String()
	}
	return snap
}

// Close drains the request path: new Predicts fail with ErrDraining, and
// Close blocks until every accepted request has been answered.
func (s *Server[T]) Close() { s.batcher.close() }

// DocumentFeaturizer is the standard Featurizer for content tasks: it
// rebuilds the hashing extractor from the artifact's recorded dimension and
// bigram setting, so request-time features match training exactly.
func DocumentFeaturizer(a *serving.Artifact) (func(*corpus.Document) *features.SparseVector, error) {
	h, err := features.NewHasher(a.FeatureDim)
	if err != nil {
		return nil, fmt.Errorf("serve: artifact %s v%d: %w", a.Name, a.Version, err)
	}
	bigrams := a.Bigrams
	return func(d *corpus.Document) *features.SparseVector {
		return h.DocumentVector(d, bigrams)
	}, nil
}
