package serve

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsJSONFieldNames pins the /v1/metrics JSON shape. The snapshot
// moved onto the shared obs registry; existing scrapers must not notice, so
// any rename or removal of a field here is a breaking change this test
// catches.
func TestMetricsJSONFieldNames(t *testing.T) {
	snap := Snapshot{
		Model:         "m",
		Version:       3,
		Swaps:         1,
		UptimeSeconds: 2.5,
		Predict:       PathSnapshot{Requests: 10, Errors: 1, Canceled: 1, P50Ms: 1, P99Ms: 2},
		Label:         PathSnapshot{Requests: 5, Errors: 1, Canceled: 1, P50Ms: 1, P99Ms: 2},
		Batches: BatchSnapshot{
			Dispatched: 4, Records: 9, MeanSize: 2.25,
			Histogram: []BatchBucket{{Size: "1", Count: 1}, {Size: "3-4", Count: 3}},
		},
		NLPCache: &CacheSnapshot{Hits: 7, Misses: 3, HitRate: 0.7},
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{"batches", "label", "model", "nlp_cache", "predict", "swaps", "uptime_seconds", "version"}
	if got := sortedKeys(m); !reflect.DeepEqual(got, wantTop) {
		t.Errorf("top-level fields = %v, want %v", got, wantTop)
	}
	wantPath := []string{"canceled", "errors", "p50_ms", "p99_ms", "requests"}
	for _, path := range []string{"predict", "label"} {
		if got := sortedKeys(m[path].(map[string]any)); !reflect.DeepEqual(got, wantPath) {
			t.Errorf("%s fields = %v, want %v", path, got, wantPath)
		}
	}
	batches := m["batches"].(map[string]any)
	wantBatch := []string{"dispatched", "histogram", "mean_size", "records"}
	if got := sortedKeys(batches); !reflect.DeepEqual(got, wantBatch) {
		t.Errorf("batches fields = %v, want %v", got, wantBatch)
	}
	bucket := batches["histogram"].([]any)[0].(map[string]any)
	if got := sortedKeys(bucket); !reflect.DeepEqual(got, []string{"count", "size"}) {
		t.Errorf("batch bucket fields = %v, want [count size]", got)
	}
	cache := m["nlp_cache"].(map[string]any)
	if got := sortedKeys(cache); !reflect.DeepEqual(got, []string{"hit_rate", "hits", "misses"}) {
		t.Errorf("nlp_cache fields = %v, want [hit_rate hits misses]", got)
	}
}

// TestMetricsCanceledOmittedWhenZero pins the omitempty behavior scrapers
// may depend on: a zero canceled count leaves the field out entirely.
func TestMetricsCanceledOmittedWhenZero(t *testing.T) {
	raw, err := json.Marshal(PathSnapshot{Requests: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["canceled"]; ok {
		t.Error("canceled should be omitted when zero")
	}
}

func TestPathStatsObserveSemantics(t *testing.T) {
	reg := obs.NewRegistry()
	p := newPathStats(reg, "predict")
	p.observe(10*time.Millisecond, nil)
	p.observe(time.Millisecond, errors.New("boom"))
	p.observe(time.Millisecond, context.Canceled)
	p.observe(time.Millisecond, context.DeadlineExceeded)

	snap := p.snapshot()
	if snap.Requests != 4 {
		t.Errorf("requests = %d, want 4", snap.Requests)
	}
	if snap.Errors != 1 {
		t.Errorf("errors = %d, want 1", snap.Errors)
	}
	if snap.Canceled != 2 {
		t.Errorf("canceled = %d, want 2", snap.Canceled)
	}
	// Latency is recorded only for successes.
	if n := p.latency.Count(); n != 1 {
		t.Errorf("latency observations = %d, want 1", n)
	}
	if snap.P50Ms <= 0 {
		t.Errorf("p50_ms = %v, want > 0", snap.P50Ms)
	}
}

func TestBatchSnapshotBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	m := newMetrics(reg)
	for _, n := range []int{1, 2, 3, 4, 8, 70} {
		m.observeBatch(n)
	}
	snap := m.batchSnapshot()
	if snap.Dispatched != 6 || snap.Records != 88 {
		t.Fatalf("dispatched=%d records=%d, want 6/88", snap.Dispatched, snap.Records)
	}
	got := map[string]int64{}
	for _, b := range snap.Histogram {
		got[b.Size] = b.Count
	}
	want := map[string]int64{"1": 1, "2": 1, "3-4": 2, "5-8": 1, "65+": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("histogram = %v, want %v", got, want)
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	//drybellvet:ordered — collection only; sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
