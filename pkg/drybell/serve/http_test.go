package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/pkg/drybell/serve"
)

func httpFixture(t *testing.T) (*serve.Server[vec], *httptest.Server) {
	t.Helper()
	s, _ := newVecServer(t, serve.Config[vec]{BatchWait: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("non-JSON response %q: %v", data, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := httpFixture(t)
	code, body := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" || body["version"] != float64(1) {
		t.Errorf("healthz = %d %v", code, body)
	}
}

func TestHTTPPredict(t *testing.T) {
	_, ts := httpFixture(t)
	code, body := postJSON(t, ts.URL+"/v1/predict", `{"indices":[1],"values":[1]}`)
	if code != http.StatusOK {
		t.Fatalf("predict = %d %v", code, body)
	}
	if body["positive"] != true || body["version"] != float64(1) {
		t.Errorf("predict body = %v", body)
	}
	if body["score"].(float64) < 0.9 {
		t.Errorf("score = %v", body["score"])
	}
	if code, body := postJSON(t, ts.URL+"/v1/predict", `{nope`); code != http.StatusBadRequest {
		t.Errorf("malformed body = %d %v", code, body)
	}
}

func TestHTTPPromoteFlow(t *testing.T) {
	_, ts := httpFixture(t)
	code, body := postJSON(t, ts.URL+"/v1/promote", `{"version":2}`)
	if code != http.StatusOK || body["version"] != float64(2) {
		t.Fatalf("promote = %d %v", code, body)
	}
	if _, body := postJSON(t, ts.URL+"/v1/predict", `{"indices":[1],"values":[1]}`); body["positive"] != false {
		t.Errorf("post-promotion predict = %v", body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/promote", `{"version":99}`); code != http.StatusConflict {
		t.Errorf("promote unknown version = %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/reload", `{}`); code != http.StatusOK {
		t.Errorf("reload = %d", code)
	}
}

func TestHTTPLabelNotConfigured(t *testing.T) {
	_, ts := httpFixture(t)
	code, body := postJSON(t, ts.URL+"/v1/label", `{"indices":[],"values":[]}`)
	if code != http.StatusNotImplemented {
		t.Errorf("label without runners = %d %v", code, body)
	}
}

func TestHTTPMetrics(t *testing.T) {
	_, ts := httpFixture(t)
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/v1/predict", `{"indices":[1],"values":[1]}`)
	}
	code, body := getJSON(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	pred, ok := body["predict"].(map[string]any)
	if !ok || pred["requests"] != float64(5) {
		t.Errorf("predict stats = %v", body["predict"])
	}
	if body["model"] != "m" || body["version"] != float64(1) {
		t.Errorf("metrics identity = %v %v", body["model"], body["version"])
	}
	if _, ok := body["batches"].(map[string]any); !ok {
		t.Errorf("batches stats missing: %v", body)
	}
}

func TestHTTPDrainReturns503(t *testing.T) {
	s, ts := httpFixture(t)
	s.Close()
	code, body := postJSON(t, ts.URL+"/v1/predict", `{"indices":[1],"values":[1]}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining predict = %d %v", code, body)
	}
}
