package drybell_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/pkg/drybell"
)

// traceEvent mirrors the Chrome trace-event fields the assertions need.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	Args  map[string]any `json:"args"`
}

// TestRunExportsTraceArtifact is the observability acceptance test: a full
// pipeline run with an observer attached — under injected faults forcing a
// retry — writes a valid Chrome trace-event timeline to
// "<workdir>/_obs/trace.json" on the DFS, with the pipeline, every stage,
// every MapReduce job, and every task attempt (the killed one included) as
// properly nested spans.
func TestRunExportsTraceArtifact(t *testing.T) {
	fault := dfs.NewFaultFS(dfs.NewMem(), 11)
	// Exactly one input-shard read fails inside a map task: one task attempt
	// dies and its retry must appear in the trace alongside the failure.
	fault.FailNext(dfs.OpRead, "input/examples-00000", 1)

	o := drybell.NewObserver()
	p := newPipeline(t, drybell.WithFS(fault), drybell.WithObserver(o))
	if _, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(120)), testRunners()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fault.Injected() != 1 {
		t.Fatalf("injected faults = %d, want 1", fault.Injected())
	}

	raw, err := p.FS().ReadFile(path.Join(p.WorkDir(), "_obs", "trace.json"))
	if err != nil {
		t.Fatalf("trace artifact missing: %v", err)
	}
	var trace struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace artifact is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}

	// Index the complete ("X") events by span ID for nesting checks.
	spans := map[float64]traceEvent{}
	byName := map[string][]traceEvent{}
	var failedAttempts int
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.TS < 0 || ev.Dur < 1 {
			t.Errorf("span %q has ts=%d dur=%d; want ts >= 0, dur >= 1", ev.Name, ev.TS, ev.Dur)
		}
		spans[ev.Args["span_id"].(float64)] = ev
		byName[ev.Name] = append(byName[ev.Name], ev)
		if ev.Args["error"] != nil && ev.Args["outcome"] == "failed" {
			failedAttempts++
		}
	}

	for _, want := range []string{"pipeline.run", "stage.input", "lf.execute", "stage.analyze", "stage.denoise", "stage.persist"} {
		if len(byName[want]) != 1 {
			t.Errorf("trace has %d %q spans, want 1", len(byName[want]), want)
		}
	}
	var jobs, attempts int
	for name, evs := range byName {
		switch {
		case strings.HasPrefix(name, "mapreduce:"):
			jobs += len(evs)
		case strings.Contains(name, "#"):
			attempts += len(evs)
		}
	}
	if jobs == 0 {
		t.Error("no MapReduce job spans in trace")
	}
	if attempts <= jobs {
		t.Errorf("%d attempt spans for %d jobs; every task attempt should be a span", attempts, jobs)
	}
	if failedAttempts != 1 {
		t.Errorf("%d attempt spans carry error status, want 1 (the killed attempt)", failedAttempts)
	}

	// Every span's parent exists and contains it in time; roots hang off
	// pipeline.run alone.
	root := byName["pipeline.run"][0]
	for _, ev := range spans {
		parent := ev.Args["parent_id"].(float64)
		if parent == 0 {
			if ev.Name != "pipeline.run" {
				t.Errorf("span %q is an orphan root", ev.Name)
			}
			continue
		}
		p, ok := spans[parent]
		if !ok {
			t.Errorf("span %q references unknown parent %v", ev.Name, parent)
			continue
		}
		if ev.TS < p.TS || ev.TS > p.TS+p.Dur {
			t.Errorf("span %q (ts=%d) starts outside parent %q [%d,%d]", ev.Name, ev.TS, p.Name, p.TS, p.TS+p.Dur)
		}
	}
	if root.Args["workdir"] != p.WorkDir() {
		t.Errorf("pipeline.run workdir = %v, want %q", root.Args["workdir"], p.WorkDir())
	}

	// The shared registry saw every layer: stage timings, runtime attempt
	// counters, and per-op DFS metrics from the instrumented filesystem.
	var buf bytes.Buffer
	if err := drybell.WriteMetrics(&buf, o); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	exposition := buf.String()
	for _, want := range []string{
		"pipeline_stage_seconds",
		"pipeline_task_attempts_total",
		"dfs_ops_total",
		"dfs_op_seconds",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("Prometheus exposition missing %s", want)
		}
	}
}

// TestWriteTraceWithoutRun: WriteTrace on a fresh or absent observer is a
// well-formed no-op — the CLI -trace path must not fail on an empty tracer.
func TestWriteTraceWithoutRun(t *testing.T) {
	var buf bytes.Buffer
	if err := drybell.WriteTrace(&buf, drybell.NewObserver()); err != nil {
		t.Fatal(err)
	}
	var trace map[string]any
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if err := drybell.WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := drybell.WriteMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
}
