package drybell

import (
	"iter"

	"repro/internal/core"
)

// Source is a streaming sequence of examples for Stage and Run. It is a
// standard iter.Seq2 yielding (example, error) pairs, so any generator —
// a file reader, a database cursor, a network stream — can feed the
// pipeline without the corpus materializing as one example slice. (The
// encoded shard payloads are still buffered until the staging commit,
// since filesystem writes are whole-file; peak memory is the encoded
// bytes, not the decoded examples.) Yielding a non-nil error aborts
// staging with that error.
type Source[T any] = iter.Seq2[T, error]

// SliceSource adapts an in-memory slice to a Source.
func SliceSource[T any](xs []T) Source[T] {
	return core.Examples(xs)
}

// RecordSource adapts raw byte records to a Source by decoding each one,
// e.g. lines of a JSONL corpus dump.
func RecordSource[T any](records [][]byte, decode func([]byte) (T, error)) Source[T] {
	return func(yield func(T, error) bool) {
		for _, rec := range records {
			x, err := decode(rec)
			if !yield(x, err) || err != nil {
				return
			}
		}
	}
}
