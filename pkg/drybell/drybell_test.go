package drybell_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/pkg/drybell"
	"repro/pkg/drybell/lf"
)

// doc is a minimal example type exercising the SDK exactly as an external
// caller would: no internal packages, a JSON codec, keyword-based LFs.
type doc struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
}

func encodeDoc(d doc) ([]byte, error) { return json.Marshal(d) }

func decodeDoc(b []byte) (doc, error) {
	var d doc
	err := json.Unmarshal(b, &d)
	return d, err
}

func makeDocs(n int) []doc {
	docs := make([]doc, n)
	for i := range docs {
		text := "plain report on infrastructure"
		if i%3 == 0 {
			text = "celebrity gossip from the redcarpet"
		}
		docs[i] = doc{ID: i, Text: text}
	}
	return docs
}

func keywordLF(name, keyword string, onHit drybell.Label) drybell.LF[doc] {
	return lf.New(
		drybell.Meta{Name: name, Category: drybell.ContentHeuristic, Servable: true},
		func(d doc) drybell.Label {
			if strings.Contains(d.Text, keyword) {
				return onHit
			}
			return drybell.Abstain
		},
	)
}

func testRunners() []drybell.LF[doc] {
	return []drybell.LF[doc]{
		keywordLF("kw_gossip", "gossip", drybell.Positive),
		keywordLF("kw_redcarpet", "redcarpet", drybell.Positive),
		keywordLF("kw_infra", "infrastructure", drybell.Negative),
	}
}

func newPipeline(t *testing.T, extra ...drybell.Option) *drybell.Pipeline[doc] {
	t.Helper()
	opts := append([]drybell.Option{
		drybell.WithCodec(encodeDoc, decodeDoc),
		drybell.WithShards(4),
		drybell.WithParallelism(2),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 60, Seed: 5}),
	}, extra...)
	p, err := drybell.New[doc](opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestRunEndToEndWithHooks(t *testing.T) {
	var events []drybell.StageEvent
	p := newPipeline(t, drybell.WithStageHook(func(ev drybell.StageEvent) {
		events = append(events, ev)
	}))

	docs := makeDocs(300)
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(res.Posteriors); got != len(docs) {
		t.Fatalf("posteriors = %d, want %d", got, len(docs))
	}
	for i, pr := range res.Posteriors {
		if pr < 0 || pr > 1 {
			t.Fatalf("posterior %d = %v out of [0,1]", i, pr)
		}
	}
	if res.LabelsPath != p.LabelsPath() {
		t.Fatalf("LabelsPath = %q, want %q", res.LabelsPath, p.LabelsPath())
	}

	// The persisted labels round-trip through the filesystem hand-off.
	labels, err := p.Labels()
	if err != nil {
		t.Fatalf("Labels: %v", err)
	}
	if len(labels) != len(docs) {
		t.Fatalf("read %d labels, want %d", len(labels), len(docs))
	}
	for i := range labels {
		if labels[i] != res.Posteriors[i] {
			t.Fatalf("label %d = %v, want %v", i, labels[i], res.Posteriors[i])
		}
	}

	// One structured event per stage, in pipeline order, all successful.
	wantStages := []drybell.StageName{
		drybell.StageStage, drybell.StageExecuteLFs, drybell.StageAnalyze,
		drybell.StageDenoise, drybell.StagePersist,
	}
	if len(events) != len(wantStages) {
		t.Fatalf("got %d stage events, want %d", len(events), len(wantStages))
	}
	for i, ev := range events {
		if ev.Stage != wantStages[i] {
			t.Fatalf("event %d stage = %q, want %q", i, ev.Stage, wantStages[i])
		}
		if ev.Err != nil {
			t.Fatalf("event %q carries error: %v", ev.Stage, ev.Err)
		}
		if ev.Examples != len(docs) {
			t.Fatalf("event %q examples = %d, want %d", ev.Stage, ev.Examples, len(docs))
		}
	}
	execEv := events[1]
	if execEv.Report == nil || len(execEv.Report.PerLF) != 3 {
		t.Fatalf("execute-lfs event report = %+v, want 3 per-LF entries", execEv.Report)
	}
	if events[2].Analysis == nil || len(events[2].Analysis.PerLF) != 3 {
		t.Fatalf("analyze event analysis = %+v, want 3 per-LF rows", events[2].Analysis)
	}
	if events[4].LabelsPath != p.LabelsPath() {
		t.Fatalf("persist event path = %q, want %q", events[4].LabelsPath, p.LabelsPath())
	}
}

func TestStreamingSource(t *testing.T) {
	p := newPipeline(t)
	const n = 200
	// A generator source: examples are produced on the fly, never held in
	// one slice.
	src := func(yield func(doc, error) bool) {
		for i := 0; i < n; i++ {
			if !yield(makeDocs(i + 1)[i], nil) {
				return
			}
		}
	}
	staged, err := p.Stage(context.Background(), src)
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	if staged != n {
		t.Fatalf("staged %d, want %d", staged, n)
	}
	matrix, report, err := p.ExecuteLFs(context.Background(), testRunners())
	if err != nil {
		t.Fatalf("ExecuteLFs: %v", err)
	}
	if matrix.NumExamples() != n || report.Examples != n {
		t.Fatalf("matrix %d / report %d examples, want %d", matrix.NumExamples(), report.Examples, n)
	}
}

func TestStageRecordsSkipsCodec(t *testing.T) {
	p := newPipeline(t)
	docs := makeDocs(90)
	records := make([][]byte, len(docs))
	for i, d := range docs {
		b, err := encodeDoc(d)
		if err != nil {
			t.Fatal(err)
		}
		records[i] = b
	}
	n, err := p.StageRecords(context.Background(), drybell.SliceSource(records))
	if err != nil {
		t.Fatalf("StageRecords: %v", err)
	}
	if n != len(docs) {
		t.Fatalf("staged %d, want %d", n, len(docs))
	}
	// The raw-record staging is byte-identical to codec staging: LFs decode
	// and vote as usual.
	matrix, report, err := p.ExecuteLFs(context.Background(), testRunners())
	if err != nil {
		t.Fatalf("ExecuteLFs: %v", err)
	}
	if matrix.NumExamples() != len(docs) || report.Examples != len(docs) {
		t.Fatalf("matrix %d / report %d examples, want %d", matrix.NumExamples(), report.Examples, len(docs))
	}
}

func TestSourceErrorAbortsStaging(t *testing.T) {
	p := newPipeline(t)
	boom := errors.New("upstream exploded")
	src := func(yield func(doc, error) bool) {
		if !yield(doc{ID: 0, Text: "ok"}, nil) {
			return
		}
		yield(doc{}, boom)
	}
	if _, err := p.Stage(context.Background(), src); !errors.Is(err, boom) {
		t.Fatalf("Stage error = %v, want wrapped %v", err, boom)
	}
}

// TestCancellationMidStage proves Pipeline.Run honors context cancellation
// mid-stage: the context is canceled from inside a labeling function while
// its MapReduce job is running, and the pipeline aborts without persisting
// labels.
func TestCancellationMidStage(t *testing.T) {
	p := newPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var once atomic.Bool
	saboteur := lf.New(
		drybell.Meta{Name: "saboteur", Category: drybell.ContentHeuristic},
		func(d doc) drybell.Label {
			if once.CompareAndSwap(false, true) {
				cancel() // cancel while this LF's job is mid-flight
			}
			return drybell.Abstain
		},
	)
	_, err := p.Run(ctx, drybell.SliceSource(makeDocs(300)), []drybell.LF[doc]{saboteur})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// The aborted pipeline must not have committed probabilistic labels.
	if _, err := p.Labels(); err == nil {
		t.Fatal("Labels succeeded after canceled run, want error")
	}
}

func TestCancellationBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as the execute stage completes; Denoise must then
	// refuse to start.
	p := newPipeline(t, drybell.WithStageHook(func(ev drybell.StageEvent) {
		if ev.Stage == drybell.StageExecuteLFs {
			cancel()
		}
	}))
	_, err := p.Run(ctx, drybell.SliceSource(makeDocs(120)), testRunners())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestCustomTrainerEndToEnd registers a trainer through the public registry
// and selects it by name for a full pipeline run.
func TestCustomTrainerEndToEnd(t *testing.T) {
	var calls atomic.Int32
	const name = "test-uniform-trainer"
	err := drybell.RegisterTrainer(name, func(mx *drybell.Matrix, opts drybell.LabelModelOptions) (*drybell.Model, error) {
		calls.Add(1)
		n := mx.NumFuncs()
		m := &drybell.Model{Alpha: make([]float64, n), Beta: make([]float64, n)}
		for j := 0; j < n; j++ {
			m.Alpha[j] = 1 // every LF modeled as moderately accurate
		}
		return m, nil
	})
	if err != nil {
		t.Fatalf("RegisterTrainer: %v", err)
	}
	if !drybell.HasTrainer(name) {
		t.Fatalf("HasTrainer(%q) = false after registration", name)
	}

	p := newPipeline(t, drybell.WithTrainer(name))
	res, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(150)), testRunners())
	if err != nil {
		t.Fatalf("Run with custom trainer: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("custom trainer ran %d times, want 1", calls.Load())
	}
	if res.Model.Alpha[0] != 1 {
		t.Fatalf("result model alpha = %v, want the custom trainer's output", res.Model.Alpha)
	}
}

func TestTrainerRegistryValidation(t *testing.T) {
	if err := drybell.RegisterTrainer("", nil); err == nil {
		t.Fatal("RegisterTrainer(\"\") succeeded, want error")
	}
	if err := drybell.RegisterTrainer(drybell.TrainerGibbs, func(mx *drybell.Matrix, opts drybell.LabelModelOptions) (*drybell.Model, error) {
		return nil, nil
	}); err == nil {
		t.Fatal("re-registering a built-in trainer succeeded, want error")
	}
	if _, err := drybell.New[doc](
		drybell.WithCodec(encodeDoc, decodeDoc),
		drybell.WithTrainer("no-such-trainer"),
	); err == nil || !strings.Contains(err.Error(), "no-such-trainer") {
		t.Fatalf("New with unknown trainer = %v, want naming error", err)
	}
	for _, builtin := range []string{drybell.TrainerSamplingFree, drybell.TrainerAnalytic, drybell.TrainerGibbs} {
		if !drybell.HasTrainer(builtin) {
			t.Fatalf("built-in trainer %q not registered", builtin)
		}
	}
}

// TestResumeFromDFSState runs each stage in a separate Pipeline sharing one
// filesystem, mimicking the paper's loosely-coupled deployment where
// independent binaries coordinate only through the DFS.
func TestResumeFromDFSState(t *testing.T) {
	fs := drybell.NewMemFS()
	shared := []drybell.Option{
		drybell.WithCodec(encodeDoc, decodeDoc),
		drybell.WithFS(fs),
		drybell.WithWorkDir("resume"),
		drybell.WithShards(3),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 60, Seed: 5}),
	}
	docs := makeDocs(200)
	runners := testRunners()

	// Process 1 stages the corpus.
	p1, err := drybell.New[doc](shared...)
	if err != nil {
		t.Fatalf("New p1: %v", err)
	}
	if _, err := p1.Stage(context.Background(), drybell.SliceSource(docs)); err != nil {
		t.Fatalf("Stage: %v", err)
	}

	// Process 2 executes the labeling functions over the staged corpus.
	p2, err := drybell.New[doc](shared...)
	if err != nil {
		t.Fatalf("New p2: %v", err)
	}
	matrix, _, err := p2.ExecuteLFs(context.Background(), runners)
	if err != nil {
		t.Fatalf("ExecuteLFs: %v", err)
	}

	// Process 3 reloads the votes from the DFS (no re-execution), denoises,
	// and persists.
	p3, err := drybell.New[doc](shared...)
	if err != nil {
		t.Fatalf("New p3: %v", err)
	}
	reloaded, err := p3.LoadMatrix(drybell.Names(runners))
	if err != nil {
		t.Fatalf("LoadMatrix: %v", err)
	}
	if reloaded.NumExamples() != matrix.NumExamples() || reloaded.NumFuncs() != matrix.NumFuncs() {
		t.Fatalf("reloaded matrix %dx%d, want %dx%d",
			reloaded.NumExamples(), reloaded.NumFuncs(), matrix.NumExamples(), matrix.NumFuncs())
	}
	for i := 0; i < matrix.NumExamples(); i++ {
		for j := 0; j < matrix.NumFuncs(); j++ {
			if reloaded.At(i, j) != matrix.At(i, j) {
				t.Fatalf("reloaded[%d,%d] = %d, want %d", i, j, reloaded.At(i, j), matrix.At(i, j))
			}
		}
	}
	_, posteriors, err := p3.Denoise(context.Background(), reloaded)
	if err != nil {
		t.Fatalf("Denoise: %v", err)
	}
	if _, err := p3.Persist(context.Background(), posteriors); err != nil {
		t.Fatalf("Persist: %v", err)
	}

	// The piecewise run matches a one-shot Run over the same inputs.
	oneShot, err := drybell.New[doc](
		drybell.WithCodec(encodeDoc, decodeDoc),
		drybell.WithShards(3),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 60, Seed: 5}),
	)
	if err != nil {
		t.Fatalf("New one-shot: %v", err)
	}
	res, err := oneShot.Run(context.Background(), drybell.SliceSource(docs), runners)
	if err != nil {
		t.Fatalf("one-shot Run: %v", err)
	}
	for i := range posteriors {
		if posteriors[i] != res.Posteriors[i] {
			t.Fatalf("posterior %d: piecewise %v != one-shot %v", i, posteriors[i], res.Posteriors[i])
		}
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []drybell.Option
	}{
		{"missing codec", nil},
		{"nil codec funcs", []drybell.Option{drybell.WithCodec[doc](nil, nil)}},
		{"zero shards", []drybell.Option{drybell.WithCodec(encodeDoc, decodeDoc), drybell.WithShards(0)}},
		{"negative parallelism", []drybell.Option{drybell.WithCodec(encodeDoc, decodeDoc), drybell.WithParallelism(-1)}},
		{"empty workdir", []drybell.Option{drybell.WithCodec(encodeDoc, decodeDoc), drybell.WithWorkDir("")}},
		{"nil fs", []drybell.Option{drybell.WithCodec(encodeDoc, decodeDoc), drybell.WithFS(nil)}},
		{"empty trainer", []drybell.Option{drybell.WithCodec(encodeDoc, decodeDoc), drybell.WithTrainer("")}},
	}
	for _, tc := range cases {
		if _, err := drybell.New[doc](tc.opts...); err == nil {
			t.Errorf("New with %s succeeded, want error", tc.name)
		}
	}

	// A codec built for one example type cannot configure a pipeline of
	// another.
	if _, err := drybell.New[int](drybell.WithCodec(encodeDoc, decodeDoc)); err == nil {
		t.Error("New[int] with doc codec succeeded, want type-mismatch error")
	}
}

func TestRunValidation(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(10)), nil); err == nil {
		t.Fatal("Run with no runners succeeded, want error")
	}
	if _, err := p.Run(context.Background(), drybell.SliceSource([]doc{}), testRunners()); err == nil {
		t.Fatal("Run with empty source succeeded, want error")
	}
}

func ExampleNew() {
	p, err := drybell.New[doc](
		drybell.WithCodec(encodeDoc, decodeDoc),
		drybell.WithShards(2),
		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 40, Seed: 1}),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(60)), testRunners())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(res.Posteriors))
	// Output: 60
}

// TestDevLabelsAnalysis: a pipeline built WithDevLabels reports empirical
// accuracy in the StageAnalyze event and in Result.Analysis.
func TestDevLabelsAnalysis(t *testing.T) {
	docs := makeDocs(120)
	dev := make([]drybell.Label, len(docs))
	for i := range docs {
		if i%3 == 0 {
			dev[i] = drybell.Positive
		} else {
			dev[i] = drybell.Negative
		}
	}
	var analyzeEv *drybell.StageEvent
	p := newPipeline(t,
		drybell.WithDevLabels(dev),
		drybell.WithStageHook(func(ev drybell.StageEvent) {
			if ev.Stage == drybell.StageAnalyze {
				analyzeEv = &ev
			}
		}),
	)
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis == nil || analyzeEv == nil || analyzeEv.Analysis == nil {
		t.Fatal("no analysis surfaced")
	}
	if res.Analysis.DevLabeled != len(docs) {
		t.Errorf("devLabeled = %d, want %d", res.Analysis.DevLabeled, len(docs))
	}
	// kw_gossip fires exactly on the docs dev-labeled positive: perfect
	// empirical accuracy and 1/3 coverage.
	row := res.Analysis.PerLF[0]
	if row.Name != "kw_gossip" || row.EmpiricalAccuracy != 1 {
		t.Errorf("kw_gossip analysis = %+v", row)
	}
	if row.Coverage < 0.33 || row.Coverage > 0.34 {
		t.Errorf("kw_gossip coverage = %v", row.Coverage)
	}

	// A dev set that does not match the corpus fails the run at analysis.
	bad := newPipeline(t, drybell.WithDevLabels(dev[:10]))
	if _, err := bad.Run(context.Background(), drybell.SliceSource(docs), testRunners()); err == nil {
		t.Error("mismatched dev labels accepted")
	}
}

// TestDuplicateLFNamesFailBeforeStaging: duplicate names are rejected up
// front, before any corpus shard is committed.
func TestDuplicateLFNamesFailBeforeStaging(t *testing.T) {
	p := newPipeline(t)
	dup := []drybell.LF[doc]{
		keywordLF("same_name", "gossip", drybell.Positive),
		keywordLF("same_name", "redcarpet", drybell.Positive),
	}
	_, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(50)), dup)
	if err == nil {
		t.Fatal("duplicate LF names accepted")
	}
	if !strings.Contains(err.Error(), "same_name") {
		t.Errorf("error does not name the duplicate: %v", err)
	}
	// Nothing was staged for the doomed run.
	if _, err := drybell.ListShards(p.FS(), p.InputPath()); err == nil {
		t.Error("corpus was staged despite invalid LF set")
	}
}

// TestDeprecatedAliasesStillRun keeps the one-release compatibility
// promise: the old Func/Runner shapes convert and execute.
func TestDeprecatedAliasesStillRun(t *testing.T) {
	legacy := drybell.Func[doc]{
		Meta: drybell.Meta{Name: "legacy_kw", Category: drybell.ContentHeuristic, Servable: true},
		Vote: func(d doc) drybell.Label {
			if strings.Contains(d.Text, "gossip") {
				return drybell.Positive
			}
			return drybell.Abstain
		},
	}
	p := newPipeline(t)
	res, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(60)),
		drybell.FromRunners([]drybell.Runner[doc]{legacy}))
	if err != nil {
		t.Fatal(err)
	}
	if res.LFReport.PerLF[0].Name != "legacy_kw" || res.LFReport.PerLF[0].Positives == 0 {
		t.Errorf("legacy LF report = %+v", res.LFReport.PerLF[0])
	}
}
