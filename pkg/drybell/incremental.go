package drybell

import (
	"context"
	"fmt"
	"path"

	"repro/internal/core"
	"repro/internal/labelmodel"
	internallf "repro/internal/lf"
)

// CorpusGeneration is one staged corpus delta, as recorded in the corpus
// manifest next to the staged input. See StageDelta and IncrementalRun.
type CorpusGeneration = core.CorpusGeneration

// IncrementalResult is the output of Pipeline.IncrementalRun: the compacted
// matrix view, the warm-start-trained model and refreshed labels, plus the
// run's incremental accounting (published generations, delta sizes, task
// attempts, staleness).
type IncrementalResult = core.IncrementalResult

// TrainState is the resumable label-model training state an incremental run
// saves for the next run's warm start. The Pipeline carries it between
// IncrementalRun calls automatically; it is exposed so callers that persist
// state across processes can round-trip it themselves.
type TrainState = labelmodel.TrainState

// IncrementalOption configures a single Pipeline.IncrementalRun call.
// Options are applied in order; deltas stage in the order given.
type IncrementalOption struct {
	f func(*incrementalSettings)
}

// incrementalSettings is the untyped option sink for one IncrementalRun.
// Deltas are held as any so the generic WithCorpusDelta composes with
// non-generic options in one list; IncrementalRun re-checks the example type.
type incrementalSettings struct {
	deltas []any
	cold   bool
	err    error
}

type corpusDelta[T any] struct {
	src      Source[T]
	startRow int // -1 appends after the rows staged so far
	deleted  []int
}

// WithCorpusDelta stages a corpus delta — src's documents appended after the
// rows staged so far, plus any tombstoned absolute row indices — as the next
// corpus generation before the run executes. src may be nil for a
// deletions-only delta. The type parameter must match the Pipeline's.
func WithCorpusDelta[T any](src Source[T], deleted ...int) IncrementalOption {
	return IncrementalOption{f: func(s *incrementalSettings) {
		s.deltas = append(s.deltas, corpusDelta[T]{src: src, startRow: -1, deleted: deleted})
	}}
}

// WithCorpusRewrite stages changed documents: src's documents supersede rows
// [startRow, startRow+n) of the staging order. A rewrite invalidates the
// warm start's compaction prefix, so the run falls back to the α-only warm
// start (still far warmer than a cold restart).
func WithCorpusRewrite[T any](src Source[T], startRow int) IncrementalOption {
	return IncrementalOption{f: func(s *incrementalSettings) {
		if src == nil {
			s.fail(fmt.Errorf("drybell: WithCorpusRewrite(nil source)"))
			return
		}
		if startRow < 0 {
			s.fail(fmt.Errorf("drybell: WithCorpusRewrite start row %d, want >= 0", startRow))
			return
		}
		s.deltas = append(s.deltas, corpusDelta[T]{src: src, startRow: startRow})
	}}
}

// WithColdStart discards the Pipeline's carried warm-start state for this
// run: training restarts from scratch, as a cold full retrain would. Use it
// to re-anchor after many warm-started generations, or in equivalence tests.
func WithColdStart() IncrementalOption {
	return IncrementalOption{f: func(s *incrementalSettings) { s.cold = true }}
}

func (s *incrementalSettings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// StageDelta stages a corpus delta — new documents appended after the rows
// staged so far, plus any tombstoned absolute row indices — as the next
// corpus generation, without running anything. A later IncrementalRun (from
// this Pipeline or another process sharing the filesystem) picks it up. src
// may be nil for a deletions-only delta.
func (p *Pipeline[T]) StageDelta(ctx context.Context, src Source[T], deleted ...int) (CorpusGeneration, error) {
	return core.StageDelta(ctx, p.cfg, src, deleted)
}

// CorpusGenerations reads the staged corpus deltas in generation order. A
// corpus with no deltas staged yet has none.
func (p *Pipeline[T]) CorpusGenerations() ([]CorpusGeneration, error) {
	return core.CorpusGenerations(p.cfg)
}

// CorpusRows returns the corpus's absolute row count in staging order — the
// base corpus plus every appended delta, before tombstone compaction. The
// next appended delta starts at this row.
func (p *Pipeline[T]) CorpusRows() (int, error) {
	return core.CorpusTotalRows(p.cfg)
}

// ExecutedGeneration returns the latest vote generation the store has
// published — how far labeling-function execution has progressed through the
// corpus ledger. Zero means only the flat base artifact (or nothing) exists;
// a watcher compares it against CorpusGenerations to see pending work.
func (p *Pipeline[T]) ExecutedGeneration() (int, error) {
	return internallf.LatestGeneration(p.cfg.FS, path.Join(p.cfg.VotesPrefix(), "votes"))
}

// Compact folds the corpus delta ledger and the vote generation chain into
// flat base artifacts — the housekeeping step that bounds chain length for
// readers. It requires every staged delta to have been executed (run
// IncrementalRun first). Afterwards the filesystem is indistinguishable from
// a fresh base run over the compacted corpus: restaged input and the folded
// vote artifact are byte-identical to that run's, and the next StageDelta
// starts a new chain at generation 1. The Pipeline's warm-start state stays
// valid — compaction changes the layout, never the view.
func (p *Pipeline[T]) Compact() error {
	return core.Compact(p.cfg)
}

// IncrementalRun advances the pipeline by exactly the staged-but-unexecuted
// corpus deltas (including any staged by this call's WithCorpusDelta /
// WithCorpusRewrite options): labeling functions execute only over delta
// shards, each delta publishing one vote generation; the label model
// warm-starts from the previous run's state; and the refreshed probabilistic
// labels are persisted over the full corpus. It requires a completed base
// Run over the same filesystem and work directory.
//
// The Pipeline carries the warm-start state between IncrementalRun calls —
// the one piece of Pipeline state that lives in memory rather than on the
// filesystem. A fresh Pipeline (or WithColdStart) simply trains without the
// warm start; results stay equivalent, only slower. Training always uses the
// sampling-free fast trainer regardless of WithTrainer — warm starting is
// its capability — and warm and cold runs produce the identical model.
func (p *Pipeline[T]) IncrementalRun(ctx context.Context, lfs []LF[T], opts ...IncrementalOption) (*IncrementalResult, error) {
	s := &incrementalSettings{}
	for _, o := range opts {
		if o.f != nil {
			o.f(s)
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	for _, d := range s.deltas {
		cd, ok := d.(corpusDelta[T])
		if !ok {
			var zero T
			return nil, fmt.Errorf("drybell: corpus delta option was built for a different example type than the pipeline's %T", zero)
		}
		var err error
		if cd.startRow < 0 {
			_, err = core.StageDelta(ctx, p.cfg, cd.src, cd.deleted)
		} else {
			_, err = core.StageDeltaAt(ctx, p.cfg, cd.src, cd.startRow, cd.deleted)
		}
		if err != nil {
			return nil, err
		}
	}
	prev := p.warm
	if s.cold {
		prev = nil
	}
	res, err := core.IncrementalRun(ctx, p.cfg, lfs, prev)
	if err != nil {
		return nil, err
	}
	p.warm = res.State
	return res, nil
}
