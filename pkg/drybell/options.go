package drybell

import (
	"fmt"
	"time"

	"repro/internal/labelmodel"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Codec converts examples to and from the byte records stored on the
// distributed filesystem.
type Codec[T any] struct {
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
}

// Option configures a Pipeline under construction. Options are applied in
// order by New; a later option overrides an earlier one for the same
// setting.
type Option struct {
	f func(*settings)
}

// settings is the untyped option sink. The codec is held as any so that
// non-generic options compose with the generic WithCodec in one option list;
// New re-checks the example type.
type settings struct {
	fs             FS
	workDir        string
	shards         int
	parallelism    int
	maxAttempts    int
	stragglerAfter time.Duration
	resume         bool
	trainer        string
	labelModel     labelmodel.Options
	devLabels      []labelmodel.Label
	hook           StageHook
	observer       *obs.Observer
	workers        []mapreduce.Worker
	codec          any
	err            error
}

func (s *settings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithCodec sets the required example codec. The type parameter is inferred
// from the two functions and must match the Pipeline's example type.
func WithCodec[T any](encode func(T) ([]byte, error), decode func([]byte) (T, error)) Option {
	return Option{f: func(s *settings) {
		if encode == nil || decode == nil {
			s.fail(fmt.Errorf("drybell: WithCodec requires both encode and decode"))
			return
		}
		s.codec = Codec[T]{Encode: encode, Decode: decode}
	}}
}

// WithFS sets the distributed filesystem the pipeline stages data on.
// Default: a fresh in-memory filesystem. Use NewDiskFS to persist state
// across processes, or share one FS across Pipelines to resume stages.
func WithFS(fs FS) Option {
	return Option{f: func(s *settings) {
		if fs == nil {
			s.fail(fmt.Errorf("drybell: WithFS(nil)"))
			return
		}
		s.fs = fs
	}}
}

// WithWorkDir sets the directory prefix for all pipeline paths on the
// filesystem. Default "drybell".
func WithWorkDir(dir string) Option {
	return Option{f: func(s *settings) {
		if dir == "" {
			s.fail(fmt.Errorf("drybell: WithWorkDir(\"\")"))
			return
		}
		s.workDir = dir
	}}
}

// WithShards sets the input shard count. Default 8.
func WithShards(n int) Option {
	return Option{f: func(s *settings) {
		if n <= 0 {
			s.fail(fmt.Errorf("drybell: WithShards(%d), want > 0", n))
			return
		}
		s.shards = n
	}}
}

// WithParallelism sets the simulated cluster width per MapReduce job.
// Default runtime.GOMAXPROCS(0) — one simulated compute node per usable
// CPU, so labeling throughput scales with the machine unless explicitly
// capped.
func WithParallelism(n int) Option {
	return Option{f: func(s *settings) {
		if n <= 0 {
			s.fail(fmt.Errorf("drybell: WithParallelism(%d), want > 0", n))
			return
		}
		s.parallelism = n
	}}
}

// WithRetries sets the per-task retry budget for labeling-function
// execution: after a failed first attempt — worker crash, filesystem
// fault, failed commit — a MapReduce task (one shard of one vote job) is
// re-executed up to n more times before the run fails, i.e. n+1 attempts
// in total. WithRetries(0) disables retries. Each retry re-executes the
// task from its committed input; attempt isolation guarantees a failed
// attempt never publishes partial output. Default 2 retries (3 attempts).
func WithRetries(n int) Option {
	return Option{f: func(s *settings) {
		if n < 0 {
			s.fail(fmt.Errorf("drybell: WithRetries(%d), want >= 0", n))
			return
		}
		s.maxAttempts = n + 1
	}}
}

// WithStragglerAfter enables deadline-based speculative execution in the
// distributed runtime: a task attempt still running after d gets one
// speculative sibling on a free worker, the first commit wins, and the
// loser is canceled without side effects. Zero (the default) disables
// speculation.
func WithStragglerAfter(d time.Duration) Option {
	return Option{f: func(s *settings) {
		if d < 0 {
			s.fail(fmt.Errorf("drybell: WithStragglerAfter(%v), want >= 0", d))
			return
		}
		s.stragglerAfter = d
	}}
}

// WithResume makes Run recover a crashed pipeline from filesystem state
// instead of restarting from zero. Stage by stage: a corpus already staged
// under the work directory is trusted as-is (the source is not consumed), a
// completed vote artifact covering the function set is loaded instead of
// re-executed, and a partially executed vote job re-runs only the tasks
// whose checkpoints (manifests under the runtime's _manifest/ area) are
// missing. Requires a durable FS shared with the crashed run — WithFS and
// the same WithWorkDir. Checkpoints are keyed to the labeling-function set,
// so changing the set re-executes everything.
func WithResume(resume bool) Option {
	return Option{f: func(s *settings) { s.resume = resume }}
}

// WithTrainer selects the label-model trainer by registry name: one of the
// built-ins (TrainerSamplingFree, TrainerAnalytic, TrainerGibbs) or a name
// previously passed to RegisterTrainer. Default TrainerSamplingFree. New
// fails if the name is not registered.
func WithTrainer(name string) Option {
	return Option{f: func(s *settings) {
		if name == "" {
			s.fail(fmt.Errorf("drybell: WithTrainer(\"\")"))
			return
		}
		s.trainer = name
	}}
}

// WithLabelModel sets the label-model training options for Denoise.
func WithLabelModel(opts LabelModelOptions) Option {
	return Option{f: func(s *settings) { s.labelModel = opts }}
}

// WithDevLabels attaches dev-set ground truth, aligned with the input
// examples, to the pipeline's labeling-function analysis: the StageAnalyze
// report then includes each function's empirical accuracy — the signal the
// Snorkel development loop iterates on. Use Abstain for unlabeled examples.
// The label count must match the staged corpus exactly; Run fails at the
// analysis stage otherwise.
func WithDevLabels(labels []Label) Option {
	return Option{f: func(s *settings) {
		s.devLabels = append([]Label(nil), labels...)
	}}
}

// WithStageHook installs an observer receiving one StageEvent per completed
// (or failed) stage. The hook runs synchronously on the pipeline goroutine;
// keep it fast, or hand events off to a channel.
func WithStageHook(hook StageHook) Option {
	return Option{f: func(s *settings) { s.hook = hook }}
}
