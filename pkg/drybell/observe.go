package drybell

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Observer bundles a pipeline's observability state: a metrics registry and
// a span tracer. Build one with NewObserver, attach it with WithObserver,
// and after a run read the registry (WriteMetrics) or the trace
// (WriteTrace). One Observer may be shared across Pipelines and with a
// serve.Server (via serve.Config.Metrics) so every component reports into
// the same registry.
type Observer = obs.Observer

// MetricsRegistry holds named counters, gauges, and histograms and renders
// them in Prometheus text exposition format.
type MetricsRegistry = obs.Registry

// Tracer records the spans of an instrumented run.
type Tracer = obs.Tracer

// NewObserver returns an Observer with a fresh metrics registry and tracer.
func NewObserver() *Observer { return obs.NewObserver() }

// WithObserver attaches an Observer to the pipeline. Every stage then
// records metrics into the observer's registry (stage latencies, MapReduce
// attempt counters, per-operation filesystem metrics via an instrumented FS
// wrapper) and opens spans on its tracer — the pipeline run, each stage,
// each MapReduce job, and every task attempt, speculative siblings
// included. Run additionally exports the finished trace as a Chrome
// trace-event JSON artifact at "<workdir>/_obs/trace.json" on the
// pipeline's filesystem, loadable in Perfetto. Without this option the
// pipeline records nothing and the instrumentation cost is a few nil
// checks.
func WithObserver(o *Observer) Option {
	return Option{f: func(s *settings) {
		if o == nil {
			s.fail(fmt.Errorf("drybell: WithObserver(nil)"))
			return
		}
		s.observer = o
	}}
}

// WriteMetrics renders an observer's registry in Prometheus text exposition
// format (version 0.0.4).
func WriteMetrics(w io.Writer, o *Observer) error {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.WritePrometheus(w)
}

// WriteTrace renders an observer's recorded spans as Chrome trace-event
// JSON — the same artifact Run writes to "<workdir>/_obs/trace.json" —
// suitable for loading into Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
func WriteTrace(w io.Writer, o *Observer) error {
	if o == nil || o.Trace == nil {
		return nil
	}
	return o.Trace.WriteChromeTrace(w)
}
