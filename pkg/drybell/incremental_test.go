package drybell_test

import (
	"context"
	"testing"

	"repro/pkg/drybell"
)

// TestIncrementalRunSDK exercises the public incremental surface end to end:
// base run, WithCorpusDelta append, warm-started IncrementalRun, and
// equivalence with a cold full rerun on a fresh pipeline.
func TestIncrementalRunSDK(t *testing.T) {
	full := makeDocs(550)
	base, delta := full[:500], full[500:]
	lfs := testRunners()

	p := newPipeline(t)
	if _, err := p.Run(context.Background(), drybell.SliceSource(base), lfs); err != nil {
		t.Fatalf("base Run: %v", err)
	}

	inc, err := p.IncrementalRun(context.Background(), lfs,
		drybell.WithCorpusDelta(drybell.SliceSource(delta)))
	if err != nil {
		t.Fatalf("IncrementalRun: %v", err)
	}
	if len(inc.Generations) != 1 || inc.Generations[0] != 1 {
		t.Fatalf("generations %v, want [1]", inc.Generations)
	}
	if inc.DeltaExamples != len(delta) {
		t.Errorf("delta examples = %d, want %d", inc.DeltaExamples, len(delta))
	}
	if len(inc.Posteriors) != len(full) {
		t.Fatalf("posteriors over %d rows, want %d", len(inc.Posteriors), len(full))
	}

	// Cold full rerun on a fresh pipeline must agree exactly: training is a
	// pure function of the vote matrix. IncrementalRun always trains with
	// the fast trainer, so the reference pipeline selects it too.
	cold, err := newPipeline(t, drybell.WithTrainer(drybell.TrainerSamplingFreeFast)).
		Run(context.Background(), drybell.SliceSource(full), testRunners())
	if err != nil {
		t.Fatalf("cold Run: %v", err)
	}
	for i := range inc.Posteriors {
		if inc.Posteriors[i] != cold.Posteriors[i] {
			t.Fatalf("posterior %d diverged: incremental %g, cold %g", i, inc.Posteriors[i], cold.Posteriors[i])
		}
	}
	for j := range inc.Model.Alpha {
		if inc.Model.Alpha[j] != cold.Model.Alpha[j] {
			t.Errorf("alpha[%d] diverged: incremental %g, cold %g", j, inc.Model.Alpha[j], cold.Model.Alpha[j])
		}
	}

	// Labels on the filesystem were refreshed over the full corpus.
	labels, err := p.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(full) {
		t.Fatalf("persisted %d labels, want %d", len(labels), len(full))
	}

	// A second run with nothing pending publishes no generation but keeps the
	// warm start, now with the compaction prefix intact.
	again, err := p.IncrementalRun(context.Background(), lfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Generations) != 0 || again.DeltaTaskAttempts != 0 {
		t.Fatalf("caught-up run did work: %v, %d attempts", again.Generations, again.DeltaTaskAttempts)
	}
	if !again.WarmStarted {
		t.Error("second run lost the carried warm-start state")
	}

	// Generations are inspectable.
	gens, err := p.CorpusGenerations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0].Gen != 1 || gens[0].Records != len(delta) {
		t.Fatalf("corpus generations = %+v", gens)
	}
}

// TestIncrementalRunOptionValidation covers option misuse: rewrites with bad
// arguments, deltas of the wrong example type, and cold-start behavior.
func TestIncrementalRunOptionValidation(t *testing.T) {
	lfs := testRunners()
	p := newPipeline(t)
	if _, err := p.Run(context.Background(), drybell.SliceSource(makeDocs(200)), lfs); err != nil {
		t.Fatal(err)
	}

	if _, err := p.IncrementalRun(context.Background(), lfs,
		drybell.WithCorpusRewrite[doc](nil, 0)); err == nil {
		t.Fatal("nil rewrite source accepted")
	}
	if _, err := p.IncrementalRun(context.Background(), lfs,
		drybell.WithCorpusRewrite(drybell.SliceSource(makeDocs(1)), -1)); err == nil {
		t.Fatal("negative rewrite start row accepted")
	}
	// A delta built for a different example type is rejected, not misdecoded.
	if _, err := p.IncrementalRun(context.Background(), lfs,
		drybell.WithCorpusDelta(drybell.SliceSource([]int{1, 2}))); err == nil {
		t.Fatal("wrong-type delta accepted")
	}

	// Cold start still runs (and trains from scratch).
	res, err := p.IncrementalRun(context.Background(), lfs, drybell.WithColdStart())
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted {
		t.Error("WithColdStart run reported a warm start")
	}
}

// TestIncrementalRunRewrite covers changed documents through the SDK: a
// rewrite of covered rows flips their labels in place.
func TestIncrementalRunRewrite(t *testing.T) {
	lfs := testRunners()
	p := newPipeline(t)
	docs := makeDocs(240)
	if _, err := p.Run(context.Background(), drybell.SliceSource(docs), lfs); err != nil {
		t.Fatal(err)
	}

	// Row 1 is a "plain report" (negative); rewrite it as gossip.
	rewritten := []doc{{ID: 1, Text: "celebrity gossip from the redcarpet"}}
	res, err := p.IncrementalRun(context.Background(), lfs,
		drybell.WithCorpusRewrite(drybell.SliceSource(rewritten), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posteriors) != len(docs) {
		t.Fatalf("posteriors over %d rows, want %d", len(res.Posteriors), len(docs))
	}
	if res.Posteriors[1] < 0.5 {
		t.Fatalf("rewritten row 1 posterior %g, want positive", res.Posteriors[1])
	}
	if res.Posteriors[0] < 0.5 || res.Posteriors[2] >= 0.5 {
		t.Fatal("rows outside the rewrite changed labels")
	}
}
