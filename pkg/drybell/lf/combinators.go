package lf

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strings"

	"repro/internal/nlp"
)

// Threshold builds a one- or two-sided threshold function over a score —
// the lightest model-based instantiation, for "a large set of existing
// heuristic classifiers" (§3.3). Use NeverPositive / NeverNegative to
// disable a side.
func Threshold[T any](meta Meta, score func(T) float64, positiveAbove, negativeBelow float64) *ModelFunc[T] {
	return &ModelFunc[T]{Meta: meta, Score: score, PositiveAbove: positiveAbove, NegativeBelow: negativeBelow}
}

// derived is a labeling function computed from member functions' votes. It
// forwards every engine capability — lifecycle, annotator injection,
// corpus fitting, per-node instancing, batch voting — to its members, so a
// combined function runs anywhere its members do.
type derived[T any] struct {
	meta    Meta
	members []LF[T]
	// combine folds the members' votes (in member order) into one.
	combine func(votes []Label) Label
}

// LFMeta implements LF.
func (d *derived[T]) LFMeta() Meta { return d.meta }

// Vote implements LF.
func (d *derived[T]) Vote(ctx context.Context, x T) (Label, error) {
	votes := make([]Label, len(d.members))
	for i, m := range d.members {
		v, err := m.Vote(ctx, x)
		if err != nil {
			return 0, fmt.Errorf("lf %s: member %s: %w", d.meta.Name, m.LFMeta().Name, err)
		}
		votes[i] = v
	}
	v := d.combine(votes)
	return v, checkVote(d.meta, v)
}

// VoteBatch implements BatchVoter: each member votes the batch (vectorized
// when it can), then the columns are combined row-wise.
func (d *derived[T]) VoteBatch(ctx context.Context, xs []T) ([]Label, error) {
	cols := make([][]Label, len(d.members))
	for i, m := range d.members {
		votes, err := VoteAll(ctx, m, xs)
		if err != nil {
			return nil, fmt.Errorf("lf %s: member %s: %w", d.meta.Name, m.LFMeta().Name, err)
		}
		cols[i] = votes
	}
	out := make([]Label, len(xs))
	row := make([]Label, len(d.members))
	for r := range xs {
		for c := range cols {
			row[c] = cols[c][r]
		}
		out[r] = d.combine(row)
		if err := checkVote(d.meta, out[r]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Setup implements Lifecycle by setting up every member that has one.
func (d *derived[T]) Setup(ctx context.Context) error { return SetupAll(ctx, d.members) }

// Teardown implements Lifecycle.
func (d *derived[T]) Teardown(ctx context.Context) error { return TeardownAll(ctx, d.members) }

// SetAnnotator implements Annotatable by forwarding to every member.
func (d *derived[T]) SetAnnotator(a nlp.Annotator) {
	for _, m := range d.members {
		if ann, ok := m.(Annotatable); ok {
			ann.SetAnnotator(a)
		}
	}
}

// NewAnnotator implements AnnotatorSource via the first member that can; a
// member answering ErrNoAnnotator passes the question to the next one.
func (d *derived[T]) NewAnnotator() (nlp.Annotator, error) {
	for _, m := range d.members {
		src, ok := m.(AnnotatorSource)
		if !ok {
			continue
		}
		ann, err := src.NewAnnotator()
		if errors.Is(err, ErrNoAnnotator) {
			continue
		}
		return ann, err
	}
	return nil, fmt.Errorf("lf %s: %w", d.meta.Name, ErrNoAnnotator)
}

// FitCorpus implements CorpusFitter by fitting every member that needs it.
// The corpus sequence is iterated once per fitting member.
func (d *derived[T]) FitCorpus(ctx context.Context, corpus iter.Seq2[T, error]) error {
	for _, m := range d.members {
		if cf, ok := m.(CorpusFitter[T]); ok && !cf.Fitted() {
			if err := cf.FitCorpus(ctx, corpus); err != nil {
				return fmt.Errorf("lf %s: %w", d.meta.Name, err)
			}
		}
	}
	return nil
}

// Fitted implements CorpusFitter: true when every fitting member is fitted.
func (d *derived[T]) Fitted() bool {
	for _, m := range d.members {
		if cf, ok := m.(CorpusFitter[T]); ok && !cf.Fitted() {
			return false
		}
	}
	return true
}

// ForNode implements NodeLocal when any member does: the node instance
// combines per-node instances of the node-local members.
func (d *derived[T]) ForNode() LF[T] {
	members := make([]LF[T], len(d.members))
	for i, m := range d.members {
		if nl, ok := m.(NodeLocal[T]); ok {
			members[i] = nl.ForNode()
		} else {
			members[i] = m
		}
	}
	return &derived[T]{meta: d.meta, members: members, combine: d.combine}
}

// allServable reports whether every member reads only servable signals.
func allServable[T any](members []LF[T]) bool {
	for _, m := range members {
		if !m.LFMeta().Servable {
			return false
		}
	}
	return true
}

// Invert flips a function's polarity: Positive becomes Negative and vice
// versa; abstains stay abstains. The derived function is named
// "not_<inner>" and inherits the inner category and servability.
func Invert[T any](inner LF[T]) LF[T] {
	im := inner.LFMeta()
	return &derived[T]{
		meta:    Meta{Name: "not_" + im.Name, Category: im.Category, Servable: im.Servable},
		members: []LF[T]{inner},
		combine: func(votes []Label) Label {
			switch votes[0] {
			case Positive:
				return Negative
			case Negative:
				return Positive
			default:
				return Abstain
			}
		},
	}
}

// FirstOf chains members as fallbacks: the vote is the first non-abstain
// vote in member order — "try the precise source first, fall back to the
// broad one". With no explicit name, the function is named
// "first_of(<members>)"; servability is the conjunction of the members'.
func FirstOf[T any](meta Meta, members ...LF[T]) (LF[T], error) {
	return newEnsemble(meta, "first_of", members, func(votes []Label) Label {
		for _, v := range votes {
			if v != Abstain {
				return v
			}
		}
		return Abstain
	})
}

// All is the unanimity ensemble: it votes v only when at least one member
// votes and every non-abstaining member votes v; any disagreement (or full
// abstention) abstains. It trades coverage for precision.
func All[T any](meta Meta, members ...LF[T]) (LF[T], error) {
	return newEnsemble(meta, "all", members, func(votes []Label) Label {
		out := Abstain
		for _, v := range votes {
			if v == Abstain {
				continue
			}
			if out == Abstain {
				out = v
			} else if out != v {
				return Abstain
			}
		}
		return out
	})
}

// newEnsemble validates members and fills meta defaults for a combinator.
func newEnsemble[T any](meta Meta, kind string, members []LF[T], combine func([]Label) Label) (LF[T], error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("lf: %s ensemble %q has no members", kind, meta.Name)
	}
	if meta.Name == "" {
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = m.LFMeta().Name
		}
		meta.Name = kind + "(" + strings.Join(names, ",") + ")"
	}
	if meta.Category == "" {
		meta.Category = members[0].LFMeta().Category
	}
	if !allServable(members) {
		meta.Servable = false
	}
	return &derived[T]{meta: meta, members: members, combine: combine}, nil
}
