package lf

import (
	"fmt"
	"sort"
	"sync"
)

// Set is a named, validated collection of labeling functions — one
// application's weak-supervision sources, in label-matrix column order. A
// Set's functions are guaranteed to have unique non-empty names.
type Set[T any] struct {
	name   string
	lfs    []LF[T]
	byName map[string]LF[T]
}

// NewSet builds a named set, validating that every function has a unique
// non-empty name (duplicate names would overwrite each other's vote shards
// on the distributed filesystem).
func NewSet[T any](name string, lfs ...LF[T]) (*Set[T], error) {
	if name == "" {
		return nil, fmt.Errorf("lf: set needs a name")
	}
	if err := ValidateNames(lfs); err != nil {
		return nil, fmt.Errorf("lf: set %q: %w", name, err)
	}
	byName := make(map[string]LF[T], len(lfs))
	for _, f := range lfs {
		byName[f.LFMeta().Name] = f
	}
	return &Set[T]{name: name, lfs: append([]LF[T](nil), lfs...), byName: byName}, nil
}

// Name returns the set's (application) name.
func (s *Set[T]) Name() string { return s.name }

// Len returns the number of functions.
func (s *Set[T]) Len() int { return len(s.lfs) }

// LFs returns the functions in column order. The slice is a copy; the
// functions are not.
func (s *Set[T]) LFs() []LF[T] { return append([]LF[T](nil), s.lfs...) }

// Get returns the named function.
func (s *Set[T]) Get(name string) (LF[T], bool) {
	f, ok := s.byName[name]
	return f, ok
}

// Names returns function names in column order.
func (s *Set[T]) Names() []string { return Names(s.lfs) }

// Metas returns function metadata in column order.
func (s *Set[T]) Metas() []Meta { return Metas(s.lfs) }

// Census counts functions per category — the Figure 2 histogram.
func (s *Set[T]) Census() map[Category]int { return Census(s.lfs) }

// ServableIndices returns the column indices of servable functions.
func (s *Set[T]) ServableIndices() []int { return ServableIndices(s.lfs) }

// ---------------------------------------------------------------------------
// Registry: per-application LF discovery.

var (
	registryMu sync.RWMutex
	registry   = map[string]any{}
)

// Register adds a set to the process-wide registry under its name, so tools
// can discover an application's labeling functions without linking against
// its package directly. Registering a name twice is an error; Unregister
// first to replace.
func Register[T any](s *Set[T]) error {
	if s == nil {
		return fmt.Errorf("lf: Register(nil)")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.name]; dup {
		return fmt.Errorf("lf: set %q already registered", s.name)
	}
	registry[s.name] = s
	return nil
}

// Lookup returns the registered set with the given name. The example type
// must match the one the set was registered with.
func Lookup[T any](name string) (*Set[T], error) {
	registryMu.RLock()
	v, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lf: no registered set %q (registered: %v)", name, RegisteredSets())
	}
	s, ok := v.(*Set[T])
	if !ok {
		return nil, fmt.Errorf("lf: set %q is registered for a different example type (%T)", name, v)
	}
	return s, nil
}

// Unregister removes a registered set, reporting whether it existed.
func Unregister(name string) bool {
	registryMu.Lock()
	defer registryMu.Unlock()
	_, ok := registry[name]
	delete(registry, name)
	return ok
}

// RegisteredSets returns the registered set names, sorted.
func RegisteredSets() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	//drybellvet:ordered — collection only; sorted immediately below
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
