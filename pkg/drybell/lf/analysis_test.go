package lf_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/labelmodel"
	"repro/pkg/drybell/lf"
)

// goldenMatrix is the hand-computed 5×4 fixture:
//
//	row   LF0  LF1  LF2  LF3   dev
//	 0     +    +    .    -     -
//	 1     .    -    -    .     -
//	 2     +    .    .    .     +
//	 3     -    +    .    .     . (unlabeled)
//	 4     .    .    .    .     -
func goldenMatrix(t *testing.T) (*labelmodel.Matrix, []lf.Meta, []lf.Label) {
	t.Helper()
	votes := [][]lf.Label{
		{lf.Positive, lf.Positive, lf.Abstain, lf.Negative},
		{lf.Abstain, lf.Negative, lf.Negative, lf.Abstain},
		{lf.Positive, lf.Abstain, lf.Abstain, lf.Abstain},
		{lf.Negative, lf.Positive, lf.Abstain, lf.Abstain},
		{lf.Abstain, lf.Abstain, lf.Abstain, lf.Abstain},
	}
	mx := labelmodel.NewMatrix(5, 4)
	for i, row := range votes {
		for j, v := range row {
			mx.Set(i, j, v)
		}
	}
	metas := []lf.Meta{
		{Name: "lf0", Category: lf.ContentHeuristic, Servable: true},
		{Name: "lf1", Category: lf.ModelBased},
		{Name: "lf2", Category: lf.GraphBased},
		{Name: "lf3", Category: lf.SourceHeuristic},
	}
	dev := []lf.Label{lf.Negative, lf.Negative, lf.Positive, lf.Abstain, lf.Negative}
	return mx, metas, dev
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAnalyzeGolden(t *testing.T) {
	mx, metas, dev := goldenMatrix(t)
	a, err := lf.Analyze(mx, metas, dev)
	if err != nil {
		t.Fatal(err)
	}
	if a.Examples != 5 || a.DevLabeled != 4 {
		t.Fatalf("examples=%d devLabeled=%d, want 5 and 4", a.Examples, a.DevLabeled)
	}
	want := []lf.LFAnalysis{
		{Name: "lf0", Coverage: 0.6, Overlaps: 0.4, Conflicts: 0.4, Positives: 2, Negatives: 1, Correct: 1, Incorrect: 1, EmpiricalAccuracy: 0.5},
		{Name: "lf1", Coverage: 0.6, Overlaps: 0.6, Conflicts: 0.4, Positives: 2, Negatives: 1, Correct: 1, Incorrect: 1, EmpiricalAccuracy: 0.5},
		{Name: "lf2", Coverage: 0.2, Overlaps: 0.2, Conflicts: 0, Positives: 0, Negatives: 1, Correct: 1, Incorrect: 0, EmpiricalAccuracy: 1},
		{Name: "lf3", Coverage: 0.2, Overlaps: 0.2, Conflicts: 0.2, Positives: 0, Negatives: 1, Correct: 1, Incorrect: 0, EmpiricalAccuracy: 1},
	}
	for j, w := range want {
		got := a.PerLF[j]
		if got.Name != w.Name ||
			!approx(got.Coverage, w.Coverage) || !approx(got.Overlaps, w.Overlaps) ||
			!approx(got.Conflicts, w.Conflicts) ||
			got.Positives != w.Positives || got.Negatives != w.Negatives ||
			got.Correct != w.Correct || got.Incorrect != w.Incorrect ||
			!approx(got.EmpiricalAccuracy, w.EmpiricalAccuracy) {
			t.Errorf("PerLF[%d] = %+v, want %+v", j, got, w)
		}
	}
	if got := a.PerLF[0].Category; got != lf.ContentHeuristic {
		t.Errorf("category not carried through: %v", got)
	}
	if !a.PerLF[0].Servable || a.PerLF[1].Servable {
		t.Error("servable flags not carried through")
	}
}

func TestAnalyzeWithoutDevLabels(t *testing.T) {
	mx, metas, _ := goldenMatrix(t)
	a, err := lf.Analyze(mx, metas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.DevLabeled != 0 {
		t.Errorf("devLabeled = %d without dev labels", a.DevLabeled)
	}
	for _, row := range a.PerLF {
		if row.Correct != 0 || row.Incorrect != 0 || row.EmpiricalAccuracy != 0 {
			t.Errorf("%s has accuracy fields without dev labels: %+v", row.Name, row)
		}
	}
	// Coverage statistics are unaffected by the dev set.
	if !approx(a.PerLF[0].Coverage, 0.6) {
		t.Errorf("coverage = %v", a.PerLF[0].Coverage)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	mx, metas, dev := goldenMatrix(t)
	if _, err := lf.Analyze(nil, metas, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := lf.Analyze(mx, metas[:2], nil); err == nil {
		t.Error("meta/column mismatch accepted")
	}
	if _, err := lf.Analyze(mx, metas, dev[:3]); err == nil {
		t.Error("short dev set accepted")
	}
}

func TestAnalysisString(t *testing.T) {
	mx, metas, dev := goldenMatrix(t)
	a, err := lf.Analyze(mx, metas, dev)
	if err != nil {
		t.Fatal(err)
	}
	s := a.String()
	for _, want := range []string{"lf0", "coverage", "conflicts", "5 examples, 4 dev-labeled"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
