package lf_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/internal/nlp"
	"repro/pkg/drybell/lf"
)

func testDocs() []*corpus.Document {
	docs := []*corpus.Document{
		{ID: "0", Title: "Ava Stone premiere", Body: "redcarpet gossip paparazzi", URL: "https://starbeat.example/1", Language: "en"},
		{ID: "1", Title: "quarterly earnings", Body: "dividend yield inflation", URL: "https://newsroom.example/2", Language: "en"},
		{ID: "2", Title: "league season", Body: "coach stadium playoff", URL: "https://metro.example/3", Language: "en"},
		{ID: "3", Title: "Howard Fleck policy", Body: "public official update", URL: "https://newsroom.example/4", Language: "en"},
		{ID: "4", Title: "blank item", Body: "note brief source", URL: "https://docs.example/5", Language: "en"},
		{ID: "5", Title: "Mira Vale on tour", Body: "gossip spotlight", URL: "https://starbeat.example/6", Language: "en"},
	}
	for i, d := range docs {
		d.Crawler.EngagementScore = float64(i) / 5
	}
	return docs
}

// docLF is each template instantiated over documents, for the shared
// batch-vs-scalar equivalence harness.
func templateLFs() map[string]lf.LF[*corpus.Document] {
	agg := &lf.AggregateFunc[*corpus.Document]{
		Meta:    lf.Meta{Name: "agg", Category: lf.SourceHeuristic},
		Extract: func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
		VoteWith: func(_ *corpus.Document, v float64, s lf.Summary) lf.Label {
			if v > s.Mean {
				return lf.Positive
			}
			return lf.Negative
		},
	}
	agg.Freeze(lf.Summary{Count: 6, Mean: 0.5})
	return map[string]lf.LF[*corpus.Document]{
		"Func": lf.New(
			lf.Meta{Name: "func", Category: lf.ContentHeuristic, Servable: true},
			func(d *corpus.Document) lf.Label {
				if strings.Contains(d.Body, "gossip") {
					return lf.Positive
				}
				return lf.Abstain
			},
		),
		"NLPFunc": &lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "nlpfunc", Category: lf.ModelBased},
			NewServer: func() *nlp.Server { return nlp.NewServer(0, 1) },
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				if len(res.People()) == 0 {
					return lf.Negative
				}
				return lf.Abstain
			},
		},
		"GraphFunc": &lf.GraphFunc[*corpus.Document]{
			Meta: lf.Meta{Name: "graphfunc", Category: lf.GraphBased},
			Query: func(g kgraph.Client, d *corpus.Document) lf.Label {
				if g.Occupation("Ava Stone") == "celebrity" && strings.Contains(d.Title, "Ava Stone") {
					return lf.Positive
				}
				return lf.Abstain
			},
		},
		"ModelFunc": &lf.ModelFunc[*corpus.Document]{
			Meta:          lf.Meta{Name: "modelfunc", Category: lf.ModelBased},
			Score:         func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
			PositiveAbove: 0.7,
			NegativeBelow: 0.3,
		},
		"AggregateFunc": agg,
	}
}

// TestVoteBatchMatchesScalar is the equivalence contract: for every
// template, VoteBatch over the corpus must equal Vote per record.
func TestVoteBatchMatchesScalar(t *testing.T) {
	docs := testDocs()
	for name, f := range templateLFs() {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			bv, ok := f.(lf.BatchVoter[*corpus.Document])
			if !ok {
				t.Fatalf("%s does not implement BatchVoter", name)
			}
			batch, err := bv.VoteBatch(ctx, docs)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(docs) {
				t.Fatalf("batch returned %d votes for %d docs", len(batch), len(docs))
			}
			for i, d := range docs {
				scalar, err := f.Vote(ctx, d)
				if err != nil {
					t.Fatal(err)
				}
				if scalar != batch[i] {
					t.Errorf("doc %d: scalar %v != batch %v", i, scalar, batch[i])
				}
			}
			if lc, ok := f.(lf.Lifecycle); ok {
				if err := lc.Teardown(ctx); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestModelFuncThresholdSlots(t *testing.T) {
	ctx := context.Background()
	score := 0.0
	f := &lf.ModelFunc[int]{
		Meta:          lf.Meta{Name: "m"},
		Score:         func(int) float64 { return score },
		PositiveAbove: 1,
		NegativeBelow: -1,
	}
	for _, tc := range []struct {
		s    float64
		want lf.Label
	}{{2, lf.Positive}, {1, lf.Abstain}, {0, lf.Abstain}, {-1, lf.Abstain}, {-2, lf.Negative}} {
		score = tc.s
		v, err := f.Vote(ctx, 0)
		if err != nil || v != tc.want {
			t.Errorf("score %v: vote %v err %v, want %v", tc.s, v, err, tc.want)
		}
	}
	// One-sided functions via the Never sentinels.
	posOnly := lf.Threshold(lf.Meta{Name: "p"}, func(int) float64 { return -100 }, 0, lf.NeverNegative)
	if v, _ := posOnly.Vote(ctx, 0); v != lf.Abstain {
		t.Errorf("positive-only function voted %v on a low score", v)
	}
	// Overlapping slots are a configuration error.
	broken := &lf.ModelFunc[int]{Meta: lf.Meta{Name: "b"}, Score: func(int) float64 { return 0 }, PositiveAbove: -1, NegativeBelow: 1}
	if _, err := broken.Vote(ctx, 0); err == nil {
		t.Error("overlapping threshold slots accepted")
	}
}

func TestAggregateFuncRequiresFit(t *testing.T) {
	ctx := context.Background()
	f := &lf.AggregateFunc[float64]{
		Meta:    lf.Meta{Name: "agg"},
		Extract: func(x float64) float64 { return x },
		VoteWith: func(_ float64, v float64, s lf.Summary) lf.Label {
			if v > s.Mean+s.StdDev {
				return lf.Positive
			}
			return lf.Abstain
		},
	}
	if _, err := f.Vote(ctx, 1); err == nil || !strings.Contains(err.Error(), "agg") {
		t.Errorf("unfitted aggregate voted without error naming the function: %v", err)
	}
	corpus := func(yield func(float64, error) bool) {
		for _, v := range []float64{1, 2, 3, 4} {
			if !yield(v, nil) {
				return
			}
		}
	}
	if err := f.FitCorpus(ctx, corpus); err != nil {
		t.Fatal(err)
	}
	s, ok := f.Summary()
	if !ok || s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	// Population stddev of {1,2,3,4} is sqrt(1.25) ≈ 1.118.
	if s.StdDev < 1.11 || s.StdDev > 1.12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if v, err := f.Vote(ctx, 4); err != nil || v != lf.Positive {
		t.Errorf("vote(4) = %v, %v", v, err)
	}
}

func TestNLPFuncSharedAnnotatorInjection(t *testing.T) {
	ctx := context.Background()
	launches := 0
	f := &lf.NLPFunc[string]{
		Meta: lf.Meta{Name: "nlp"},
		NewServer: func() *nlp.Server {
			launches++
			return nlp.NewServer(0, 1)
		},
		GetText: func(s string) string { return s },
		GetValue: func(_ string, res *nlp.Result) lf.Label {
			if len(res.People()) == 0 {
				return lf.Negative
			}
			return lf.Abstain
		},
	}
	srv := nlp.NewServer(0, 1)
	if err := srv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	shared, err := nlp.NewCache(srv, 16)
	if err != nil {
		t.Fatal(err)
	}
	f.SetAnnotator(shared)
	if err := f.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Vote(ctx, "no people here"); err != nil {
		t.Fatal(err)
	}
	if launches != 0 {
		t.Errorf("injected annotator still launched %d own servers", launches)
	}
	if f.OwnsModelServer() {
		t.Error("function claims to own a server after injection")
	}
	// Without injection, Setup launches and Teardown stops an owned server.
	own := &lf.NLPFunc[string]{
		Meta:      lf.Meta{Name: "own"},
		NewServer: func() *nlp.Server { return nlp.NewServer(0, 1) },
		GetText:   func(s string) string { return s },
		GetValue:  func(string, *nlp.Result) lf.Label { return lf.Abstain },
	}
	if err := own.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if !own.OwnsModelServer() {
		t.Error("function does not own its launched server")
	}
	if err := own.Teardown(ctx); err != nil {
		t.Fatal(err)
	}
	if own.OwnsModelServer() {
		t.Error("server still owned after teardown")
	}
}

func TestGraphFuncInjectsCache(t *testing.T) {
	ctx := context.Background()
	f := &lf.GraphFunc[string]{
		Meta:   lf.Meta{Name: "g"},
		Client: kgraph.Builtin(),
		Query: func(g kgraph.Client, name string) lf.Label {
			if g.Occupation(name) == "celebrity" {
				return lf.Positive
			}
			return lf.Abstain
		},
	}
	if err := f.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Vote(ctx, "Ava Stone"); err != nil {
			t.Fatal(err)
		}
	}
	cache := f.Cache()
	if cache == nil {
		t.Fatal("no cache injected")
	}
	if cache.Hits() == 0 {
		t.Error("repeated graph queries saw no cache hits")
	}
	// A pre-cached client is not double-wrapped.
	pre, err := kgraph.NewCache(kgraph.Builtin(), 8)
	if err != nil {
		t.Fatal(err)
	}
	f2 := &lf.GraphFunc[string]{Meta: lf.Meta{Name: "g2"}, Client: pre, Query: f.Query}
	if err := f2.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if f2.Cache() != pre {
		t.Error("pre-cached client was wrapped again")
	}
}

func TestValidateNames(t *testing.T) {
	mk := func(name string) lf.LF[int] {
		return lf.New(lf.Meta{Name: name}, func(int) lf.Label { return lf.Abstain })
	}
	if err := lf.ValidateNames[int](nil); err == nil {
		t.Error("empty set accepted")
	}
	if err := lf.ValidateNames([]lf.LF[int]{mk("")}); err == nil {
		t.Error("empty name accepted")
	}
	err := lf.ValidateNames([]lf.LF[int]{mk("a"), mk("b"), mk("a")})
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	if !strings.Contains(err.Error(), `"a"`) || !strings.Contains(err.Error(), "labels/a") {
		t.Errorf("duplicate error not descriptive: %v", err)
	}
	if err := lf.ValidateNames([]lf.LF[int]{mk("a"), mk("b")}); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}
