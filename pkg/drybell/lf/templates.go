package lf

import (
	"context"
	"fmt"
	"iter"
	"math"
	"sync"

	"repro/internal/kgraph"
	"repro/internal/nlp"
)

// ---------------------------------------------------------------------------
// Func — the default pipeline (paper §5.1: LabelingFunction).

// Func is the default labeling-function template: a pure heuristic from an
// example to a vote, with no services and no state. It is the right template
// for keyword, URL, and pattern rules.
type Func[T any] struct {
	Meta Meta
	// Fn inspects one example and returns a vote or abstains.
	Fn func(T) Label
}

// New is shorthand for building a default-pipeline function.
func New[T any](meta Meta, fn func(T) Label) *Func[T] {
	return &Func[T]{Meta: meta, Fn: fn}
}

// LFMeta implements LF.
func (f *Func[T]) LFMeta() Meta { return f.Meta }

// Vote implements LF.
func (f *Func[T]) Vote(_ context.Context, x T) (Label, error) {
	if f.Fn == nil {
		return 0, fmt.Errorf("lf %s: Func has no Fn", f.Meta.Name)
	}
	v := f.Fn(x)
	return v, checkVote(f.Meta, v)
}

// VoteBatch implements BatchVoter.
func (f *Func[T]) VoteBatch(ctx context.Context, xs []T) ([]Label, error) {
	if f.Fn == nil {
		return nil, fmt.Errorf("lf %s: Func has no Fn", f.Meta.Name)
	}
	votes := make([]Label, len(xs))
	for i, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", f.Meta.Name, err)
		}
		votes[i] = f.Fn(x)
		if err := checkVote(f.Meta, votes[i]); err != nil {
			return nil, err
		}
	}
	return votes, nil
}

// ---------------------------------------------------------------------------
// NLPFunc — the model-server pipeline (paper §5.1: NLPLabelingFunction).

// NLPFunc is the model-server template: GetText selects the text to
// annotate, GetValue computes the vote from the example and the NLP result —
// the two slots of the paper's NLPLabelingFunction example.
//
// Offline, the template is NodeLocal: the batch executor derives one
// instance per map task, each launching its own model server in Setup and
// stopping it in Teardown, because the NLP models are too expensive to run
// anywhere but the labeling pipeline's compute nodes. Online, the serving
// path injects one shared (cached) annotator into every NLP function of the
// set via SetAnnotator.
type NLPFunc[T any] struct {
	Meta Meta
	// NewServer constructs the model server launched on each compute node.
	// Ignored when an annotator has been injected with SetAnnotator.
	NewServer func() *nlp.Server
	// GetText selects the text to send to the NLP models.
	GetText func(T) string
	// GetValue computes the vote from the example and the NLP annotations.
	GetValue func(T, *nlp.Result) Label

	mu       sync.Mutex
	ann      nlp.Annotator // guarded by mu
	owned    *nlp.Server   // guarded by mu; server this instance launched (stopped in Teardown)
	injected bool          // guarded by mu
}

// LFMeta implements LF.
func (f *NLPFunc[T]) LFMeta() Meta { return f.Meta }

// SetAnnotator implements Annotatable: subsequent votes consult a instead of
// launching the template's own model server. An already-launched owned
// server is stopped.
func (f *NLPFunc[T]) SetAnnotator(a nlp.Annotator) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.owned != nil {
		f.owned.Stop()
		f.owned = nil
	}
	f.ann = a
	f.injected = a != nil
}

// NewAnnotator implements AnnotatorSource: it launches a fresh instance of
// the configured model server and hands it to the caller, which owns its
// lifetime. The serving path uses this to build the one annotator an LF set
// shares.
func (f *NLPFunc[T]) NewAnnotator() (nlp.Annotator, error) {
	if f.NewServer == nil {
		return nil, fmt.Errorf("lf %s: NLPFunc has no NewServer: %w", f.Meta.Name, ErrNoAnnotator)
	}
	srv := f.NewServer()
	if srv == nil {
		return nil, fmt.Errorf("lf %s: NewServer returned nil", f.Meta.Name)
	}
	if err := srv.Launch(); err != nil {
		return nil, fmt.Errorf("lf %s: launch model server: %w", f.Meta.Name, err)
	}
	return srv, nil
}

// annotator returns the function's annotator, launching the owned model
// server on first use when none was injected.
func (f *NLPFunc[T]) annotator() (nlp.Annotator, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ann != nil {
		return f.ann, nil
	}
	if f.NewServer == nil {
		return nil, fmt.Errorf("lf %s: NLPFunc has no NewServer and no injected annotator", f.Meta.Name)
	}
	srv := f.NewServer()
	if srv == nil {
		return nil, fmt.Errorf("lf %s: NewServer returned nil", f.Meta.Name)
	}
	if err := srv.Launch(); err != nil {
		return nil, fmt.Errorf("lf %s: launch model server: %w", f.Meta.Name, err)
	}
	f.owned = srv
	f.ann = srv
	return f.ann, nil
}

// Setup implements Lifecycle: it launches the model server (unless an
// annotator was injected).
func (f *NLPFunc[T]) Setup(context.Context) error {
	_, err := f.annotator()
	return err
}

// Teardown implements Lifecycle: it stops the model server this instance
// launched. Injected annotators are left to their owner.
func (f *NLPFunc[T]) Teardown(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.owned != nil {
		f.owned.Stop()
		f.owned = nil
		f.ann = nil
	}
	return nil
}

// OwnsModelServer reports whether this instance launched (and owns) its
// model server — the executor counts these as per-node server launches.
func (f *NLPFunc[T]) OwnsModelServer() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.owned != nil
}

// ForNode implements NodeLocal: each compute node gets an instance with its
// own model server, unless a shared annotator was injected, in which case
// node instances share it.
func (f *NLPFunc[T]) ForNode() LF[T] {
	f.mu.Lock()
	defer f.mu.Unlock()
	clone := &NLPFunc[T]{Meta: f.Meta, NewServer: f.NewServer, GetText: f.GetText, GetValue: f.GetValue}
	if f.injected {
		clone.ann = f.ann     //drybellvet:locked — freshly constructed clone, not yet shared
		clone.injected = true //drybellvet:locked — freshly constructed clone, not yet shared
	}
	return clone
}

func (f *NLPFunc[T]) voteWith(ann nlp.Annotator, x T) (Label, error) {
	res, err := ann.Annotate(f.GetText(x))
	if err != nil {
		return 0, fmt.Errorf("lf %s: annotate: %w", f.Meta.Name, err)
	}
	v := f.GetValue(x, res)
	return v, checkVote(f.Meta, v)
}

// Vote implements LF.
func (f *NLPFunc[T]) Vote(_ context.Context, x T) (Label, error) {
	if f.GetText == nil || f.GetValue == nil {
		return 0, fmt.Errorf("lf %s: NLPFunc needs GetText and GetValue", f.Meta.Name)
	}
	ann, err := f.annotator()
	if err != nil {
		return 0, err
	}
	return f.voteWith(ann, x)
}

// VoteBatch implements BatchVoter: the annotator is resolved once for the
// whole batch.
func (f *NLPFunc[T]) VoteBatch(ctx context.Context, xs []T) ([]Label, error) {
	if f.GetText == nil || f.GetValue == nil {
		return nil, fmt.Errorf("lf %s: NLPFunc needs GetText and GetValue", f.Meta.Name)
	}
	ann, err := f.annotator()
	if err != nil {
		return nil, err
	}
	votes := make([]Label, len(xs))
	for i, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", f.Meta.Name, err)
		}
		if votes[i], err = f.voteWith(ann, x); err != nil {
			return nil, err
		}
	}
	return votes, nil
}

// ---------------------------------------------------------------------------
// GraphFunc — the knowledge-graph pipeline.

// DefaultGraphCacheSize bounds the LRU a GraphFunc puts in front of its
// knowledge-graph client when none is configured.
const DefaultGraphCacheSize = 4096

// GraphFunc is the knowledge-graph template: Query computes the vote by
// querying a kgraph.Client. The template injects an LRU cache between the
// function and the client — the graph stands in for a remote Knowledge
// Graph service, and memoizing round-trips is what makes graph-based
// functions affordable on both engines.
type GraphFunc[T any] struct {
	Meta Meta
	// Client is the knowledge graph to query; nil uses kgraph.Builtin().
	Client kgraph.Client
	// CacheSize bounds the injected LRU (entries per query kind). Zero
	// selects DefaultGraphCacheSize; negative disables caching.
	CacheSize int
	// Query computes the vote from the example via graph queries against g,
	// which is the cached client.
	Query func(g kgraph.Client, x T) Label

	once    sync.Once
	client  kgraph.Client
	cache   *kgraph.Cache
	initErr error
}

// init resolves and caches the client exactly once.
func (f *GraphFunc[T]) initClient() error {
	f.once.Do(func() {
		base := f.Client
		if base == nil {
			base = kgraph.Builtin()
		}
		if f.CacheSize < 0 {
			f.client = base
			return
		}
		size := f.CacheSize
		if size == 0 {
			size = DefaultGraphCacheSize
		}
		if existing, ok := base.(*kgraph.Cache); ok {
			// Already cached (e.g. the daemon shares one cache set-wide);
			// don't stack a second LRU on top.
			f.client, f.cache = existing, existing
			return
		}
		cache, err := kgraph.NewCache(base, size)
		if err != nil {
			f.initErr = fmt.Errorf("lf %s: %w", f.Meta.Name, err)
			return
		}
		f.client, f.cache = cache, cache
	})
	return f.initErr
}

// LFMeta implements LF.
func (f *GraphFunc[T]) LFMeta() Meta { return f.Meta }

// Setup implements Lifecycle: it builds the cached client.
func (f *GraphFunc[T]) Setup(context.Context) error { return f.initClient() }

// Teardown implements Lifecycle. The cache is kept: graph answers are
// stable, and its hit statistics outlive the run.
func (f *GraphFunc[T]) Teardown(context.Context) error { return nil }

// Cache returns the injected LRU, or nil when caching is disabled (or the
// function has not yet been set up or voted).
func (f *GraphFunc[T]) Cache() *kgraph.Cache { return f.cache }

// Vote implements LF.
func (f *GraphFunc[T]) Vote(_ context.Context, x T) (Label, error) {
	if f.Query == nil {
		return 0, fmt.Errorf("lf %s: GraphFunc has no Query", f.Meta.Name)
	}
	if err := f.initClient(); err != nil {
		return 0, err
	}
	v := f.Query(f.client, x)
	return v, checkVote(f.Meta, v)
}

// VoteBatch implements BatchVoter.
func (f *GraphFunc[T]) VoteBatch(ctx context.Context, xs []T) ([]Label, error) {
	if f.Query == nil {
		return nil, fmt.Errorf("lf %s: GraphFunc has no Query", f.Meta.Name)
	}
	if err := f.initClient(); err != nil {
		return nil, err
	}
	votes := make([]Label, len(xs))
	for i, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", f.Meta.Name, err)
		}
		votes[i] = f.Query(f.client, x)
		if err := checkVote(f.Meta, votes[i]); err != nil {
			return nil, err
		}
	}
	return votes, nil
}

// ---------------------------------------------------------------------------
// ModelFunc — the model-based pipeline.

// NeverPositive and NeverNegative disable one side of a ModelFunc's
// threshold slots, for one-sided (positive-only or negative-only) functions.
var (
	NeverPositive = math.Inf(1)
	NeverNegative = math.Inf(-1)
)

// ModelFunc is the model-based template: it turns an internal classifier's
// score into votes through two threshold slots. The score is Positive when
// strictly above PositiveAbove, Negative when strictly below NegativeBelow,
// and Abstain in the dead zone between them — "several smaller models that
// had previously been developed over various feature sets" (§3.3) become
// one template instantiation each.
//
// The zero thresholds vote on sign (score > 0 positive, score < 0
// negative). Use NeverPositive / NeverNegative for one-sided functions.
type ModelFunc[T any] struct {
	Meta Meta
	// Score is the internal model's prediction for the example.
	Score func(T) float64
	// PositiveAbove: vote Positive when Score(x) > PositiveAbove.
	PositiveAbove float64
	// NegativeBelow: vote Negative when Score(x) < NegativeBelow.
	NegativeBelow float64
}

// LFMeta implements LF.
func (f *ModelFunc[T]) LFMeta() Meta { return f.Meta }

func (f *ModelFunc[T]) check() error {
	if f.Score == nil {
		return fmt.Errorf("lf %s: ModelFunc has no Score", f.Meta.Name)
	}
	if f.PositiveAbove < f.NegativeBelow {
		return fmt.Errorf("lf %s: threshold slots overlap (PositiveAbove %v < NegativeBelow %v)",
			f.Meta.Name, f.PositiveAbove, f.NegativeBelow)
	}
	return nil
}

func (f *ModelFunc[T]) vote(x T) Label {
	s := f.Score(x)
	switch {
	case s > f.PositiveAbove:
		return Positive
	case s < f.NegativeBelow:
		return Negative
	default:
		return Abstain
	}
}

// Vote implements LF.
func (f *ModelFunc[T]) Vote(_ context.Context, x T) (Label, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.vote(x), nil
}

// VoteBatch implements BatchVoter.
func (f *ModelFunc[T]) VoteBatch(ctx context.Context, xs []T) ([]Label, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	votes := make([]Label, len(xs))
	for i, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", f.Meta.Name, err)
		}
		votes[i] = f.vote(x)
	}
	return votes, nil
}

// ---------------------------------------------------------------------------
// AggregateFunc — the aggregation-based pipeline.

// Summary holds the corpus-level statistics an AggregateFunc's first pass
// computes over its extracted values.
type Summary struct {
	Count    int
	Mean     float64
	StdDev   float64 // population standard deviation
	Min, Max float64
}

// AggregateFunc is the aggregation-based template — the paper's pattern of
// aggregating organizational resources into corpus-level statistics before
// voting. It is a two-pass function: pass one streams the corpus through
// Extract and summarizes the values; pass two votes per example given its
// value and the Summary.
//
// The batch executor runs the first pass automatically (it implements
// CorpusFitter). The online serving path cannot see a corpus, so serving an
// AggregateFunc requires freezing an offline-computed Summary with Freeze;
// voting before either returns a descriptive error.
type AggregateFunc[T any] struct {
	Meta Meta
	// Extract pulls the per-example value aggregated in pass one.
	Extract func(T) float64
	// VoteWith votes in pass two given the example, its extracted value,
	// and the corpus summary.
	VoteWith func(x T, v float64, s Summary) Label

	mu      sync.RWMutex
	summary *Summary // guarded by mu
}

// LFMeta implements LF.
func (f *AggregateFunc[T]) LFMeta() Meta { return f.Meta }

// FitCorpus implements CorpusFitter: it streams the corpus once and stores
// the Summary the second pass votes against.
func (f *AggregateFunc[T]) FitCorpus(ctx context.Context, corpus iter.Seq2[T, error]) error {
	if f.Extract == nil {
		return fmt.Errorf("lf %s: AggregateFunc has no Extract", f.Meta.Name)
	}
	var s Summary
	var m2 float64 // Welford running variance accumulator
	i := 0
	for x, err := range corpus {
		if err != nil {
			return fmt.Errorf("lf %s: fit corpus: %w", f.Meta.Name, err)
		}
		if i%batchCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("lf %s: fit corpus: %w", f.Meta.Name, err)
			}
		}
		v := f.Extract(x)
		if s.Count == 0 {
			s.Min, s.Max = v, v
		} else {
			s.Min = math.Min(s.Min, v)
			s.Max = math.Max(s.Max, v)
		}
		s.Count++
		delta := v - s.Mean
		s.Mean += delta / float64(s.Count)
		m2 += delta * (v - s.Mean)
		i++
	}
	if s.Count == 0 {
		return fmt.Errorf("lf %s: fit corpus: empty corpus", f.Meta.Name)
	}
	s.StdDev = math.Sqrt(m2 / float64(s.Count))
	f.mu.Lock()
	f.summary = &s
	f.mu.Unlock()
	return nil
}

// Fitted implements CorpusFitter.
func (f *AggregateFunc[T]) Fitted() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.summary != nil
}

// Freeze pins the summary the function votes against — how an offline-
// computed aggregate reaches the online serving path.
func (f *AggregateFunc[T]) Freeze(s Summary) {
	f.mu.Lock()
	f.summary = &s
	f.mu.Unlock()
}

// Summary returns the fitted (or frozen) summary.
func (f *AggregateFunc[T]) Summary() (Summary, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.summary == nil {
		return Summary{}, false
	}
	return *f.summary, true
}

func (f *AggregateFunc[T]) voteOne(x T) (Label, error) {
	f.mu.RLock()
	s := f.summary
	f.mu.RUnlock()
	if s == nil {
		return 0, fmt.Errorf("lf %s: aggregate statistics not fitted (run the batch pipeline, or Freeze an offline Summary)", f.Meta.Name)
	}
	if f.Extract == nil || f.VoteWith == nil {
		return 0, fmt.Errorf("lf %s: AggregateFunc needs Extract and VoteWith", f.Meta.Name)
	}
	v := f.VoteWith(x, f.Extract(x), *s)
	return v, checkVote(f.Meta, v)
}

// Vote implements LF.
func (f *AggregateFunc[T]) Vote(_ context.Context, x T) (Label, error) {
	return f.voteOne(x)
}

// VoteBatch implements BatchVoter.
func (f *AggregateFunc[T]) VoteBatch(ctx context.Context, xs []T) ([]Label, error) {
	votes := make([]Label, len(xs))
	var err error
	for i, x := range xs {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("lf %s: %w", f.Meta.Name, cerr)
		}
		if votes[i], err = f.voteOne(x); err != nil {
			return nil, err
		}
	}
	return votes, nil
}
