package lf_test

import (
	"context"
	"strings"
	"testing"

	"repro/pkg/drybell/lf"
)

// fixedLF votes a fixed label for every example.
func fixedLF(name string, v lf.Label, servable bool) lf.LF[int] {
	return lf.New(lf.Meta{Name: name, Category: lf.ContentHeuristic, Servable: servable}, func(int) lf.Label { return v })
}

func vote(t *testing.T, f lf.LF[int]) lf.Label {
	t.Helper()
	v, err := f.Vote(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestInvert(t *testing.T) {
	inv := lf.Invert(fixedLF("pos", lf.Positive, true))
	if got := vote(t, inv); got != lf.Negative {
		t.Errorf("invert(+) = %v", got)
	}
	if got := vote(t, lf.Invert(fixedLF("neg", lf.Negative, true))); got != lf.Positive {
		t.Errorf("invert(-) = %v", got)
	}
	if got := vote(t, lf.Invert(fixedLF("abs", lf.Abstain, true))); got != lf.Abstain {
		t.Errorf("invert(0) = %v", got)
	}
	m := inv.LFMeta()
	if m.Name != "not_pos" || !m.Servable || m.Category != lf.ContentHeuristic {
		t.Errorf("derived meta = %+v", m)
	}
}

func TestFirstOf(t *testing.T) {
	f, err := lf.FirstOf(lf.Meta{Name: "fallback"},
		fixedLF("a", lf.Abstain, true),
		fixedLF("b", lf.Negative, true),
		fixedLF("c", lf.Positive, true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := vote(t, f); got != lf.Negative {
		t.Errorf("first non-abstain should win: %v", got)
	}
	allAbstain, err := lf.FirstOf(lf.Meta{Name: "aa"}, fixedLF("a", lf.Abstain, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := vote(t, allAbstain); got != lf.Abstain {
		t.Errorf("all-abstain FirstOf = %v", got)
	}
	if _, err := lf.FirstOf[int](lf.Meta{Name: "empty"}); err == nil {
		t.Error("empty ensemble accepted")
	}
}

func TestAll(t *testing.T) {
	agree, err := lf.All(lf.Meta{Name: "u"},
		fixedLF("a", lf.Positive, true),
		fixedLF("b", lf.Abstain, true),
		fixedLF("c", lf.Positive, true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := vote(t, agree); got != lf.Positive {
		t.Errorf("unanimous non-abstainers should vote: %v", got)
	}
	conflict, err := lf.All(lf.Meta{Name: "v"},
		fixedLF("a", lf.Positive, true),
		fixedLF("b", lf.Negative, true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := vote(t, conflict); got != lf.Abstain {
		t.Errorf("disagreement should abstain: %v", got)
	}
	silent, err := lf.All(lf.Meta{Name: "w"}, fixedLF("a", lf.Abstain, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := vote(t, silent); got != lf.Abstain {
		t.Errorf("full abstention should abstain: %v", got)
	}
}

func TestEnsembleMetaDerivation(t *testing.T) {
	f, err := lf.FirstOf(lf.Meta{},
		fixedLF("precise", lf.Positive, true),
		fixedLF("broad", lf.Positive, false),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := f.LFMeta()
	if !strings.Contains(m.Name, "precise") || !strings.Contains(m.Name, "broad") {
		t.Errorf("derived name = %q", m.Name)
	}
	if m.Servable {
		t.Error("ensemble with a non-servable member claims servable")
	}
	if m.Category != lf.ContentHeuristic {
		t.Errorf("derived category = %q", m.Category)
	}
}

// TestCombinatorBatchEquivalence: combined functions vectorize too, and the
// batch path must agree with scalar votes.
func TestCombinatorBatchEquivalence(t *testing.T) {
	even := lf.New(lf.Meta{Name: "even"}, func(x int) lf.Label {
		if x%2 == 0 {
			return lf.Positive
		}
		return lf.Abstain
	})
	big := lf.Threshold(lf.Meta{Name: "big"}, func(x int) float64 { return float64(x) }, 5, 1)
	f, err := lf.All(lf.Meta{Name: "even_and_big"}, even, big)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int{0, 1, 2, 5, 6, 7, 8, 11}
	batch, err := lf.VoteAll(context.Background(), f, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		s, err := f.Vote(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if s != batch[i] {
			t.Errorf("x=%d: scalar %v != batch %v", x, s, batch[i])
		}
	}
}
