package lf

import (
	"fmt"
	"strings"

	"repro/internal/labelmodel"
)

// LFAnalysis is one labeling function's row in the development-loop report.
type LFAnalysis struct {
	Name     string   `json:"name"`
	Category Category `json:"category"`
	Servable bool     `json:"servable"`

	// Coverage is the fraction of examples the function voted on.
	Coverage float64 `json:"coverage"`
	// Overlaps is the fraction of examples where the function voted and at
	// least one other function also voted.
	Overlaps float64 `json:"overlaps"`
	// Conflicts is the fraction of examples where the function voted and at
	// least one other function voted the other way.
	Conflicts float64 `json:"conflicts"`

	// Positives and Negatives count the function's votes by value.
	Positives int `json:"positives"`
	Negatives int `json:"negatives"`

	// Correct/Incorrect count votes against the dev labels (only where both
	// the function and the dev set have an opinion); EmpiricalAccuracy is
	// Correct/(Correct+Incorrect). All zero when no dev labels were given
	// or the function never voted on a labeled example.
	Correct           int     `json:"correct"`
	Incorrect         int     `json:"incorrect"`
	EmpiricalAccuracy float64 `json:"empirical_accuracy"`
}

// Analysis is the Snorkel development-loop report over an executed label
// matrix: per-function coverage, overlaps, conflicts, and — when dev labels
// are available — empirical accuracy. It is what an engineer iterates
// against when authoring labeling functions (§5.1's development loop).
type Analysis struct {
	// Examples is the number of matrix rows analyzed.
	Examples int `json:"examples"`
	// DevLabeled counts the dev labels that carried an opinion (non-abstain).
	DevLabeled int `json:"dev_labeled"`
	// PerLF holds one row per labeling function, in matrix column order.
	PerLF []LFAnalysis `json:"per_lf"`
}

// Analyze computes the report for a label matrix whose column j was voted
// by the function described by metas[j]. dev optionally carries ground
// truth aligned with the matrix rows — Abstain entries mean "unlabeled";
// pass nil for no dev set. A non-nil dev must have one entry per row.
func Analyze(mx *labelmodel.Matrix, metas []Meta, dev []Label) (*Analysis, error) {
	if mx == nil {
		return nil, fmt.Errorf("lf: Analyze(nil matrix)")
	}
	m, n := mx.NumExamples(), mx.NumFuncs()
	if len(metas) != n {
		return nil, fmt.Errorf("lf: Analyze: %d metas for a %d-column matrix", len(metas), n)
	}
	if dev != nil && len(dev) != m {
		return nil, fmt.Errorf("lf: Analyze: %d dev labels for %d examples", len(dev), m)
	}

	report := &Analysis{Examples: m, PerLF: make([]LFAnalysis, n)}
	for j, meta := range metas {
		report.PerLF[j] = LFAnalysis{Name: meta.Name, Category: meta.Category, Servable: meta.Servable}
	}
	for _, d := range dev {
		if d != Abstain {
			report.DevLabeled++
		}
	}

	covered := make([]int, n)  // rows with a vote
	overlap := make([]int, n)  // rows with a vote and another voter
	conflict := make([]int, n) // rows with a vote and a disagreeing voter
	for i := 0; i < m; i++ {
		// Per-row vote totals make overlap/conflict O(1) per cell: another
		// voter exists iff the row has >1 voters, and a disagreeing voter
		// iff the row holds a vote of the other sign.
		pos, neg := 0, 0
		for j := 0; j < n; j++ {
			switch mx.At(i, j) {
			case Positive:
				pos++
			case Negative:
				neg++
			}
		}
		voters := pos + neg
		if voters == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			v := mx.At(i, j)
			if v == Abstain {
				continue
			}
			row := &report.PerLF[j]
			if v == Positive {
				row.Positives++
			} else {
				row.Negatives++
			}
			covered[j]++
			if voters > 1 {
				overlap[j]++
			}
			if (v == Positive && neg > 0) || (v == Negative && pos > 0) {
				conflict[j]++
			}
			if dev != nil && dev[i] != Abstain {
				if v == dev[i] {
					row.Correct++
				} else {
					row.Incorrect++
				}
			}
		}
	}
	for j := range report.PerLF {
		row := &report.PerLF[j]
		row.Coverage = float64(covered[j]) / float64(m)
		row.Overlaps = float64(overlap[j]) / float64(m)
		row.Conflicts = float64(conflict[j]) / float64(m)
		if t := row.Correct + row.Incorrect; t > 0 {
			row.EmpiricalAccuracy = float64(row.Correct) / float64(t)
		}
	}
	return report, nil
}

// String renders the report as the fixed-width table the development loop
// prints between iterations.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-18s %8s %8s %9s %8s\n", "name", "category", "coverage", "overlaps", "conflicts", "emp.acc")
	for _, row := range a.PerLF {
		acc := "    -"
		if row.Correct+row.Incorrect > 0 {
			acc = fmt.Sprintf("%8.3f", row.EmpiricalAccuracy)
		}
		fmt.Fprintf(&b, "%-34s %-18s %8.3f %8.3f %9.3f %s\n",
			row.Name, row.Category, row.Coverage, row.Overlaps, row.Conflicts, acc)
	}
	fmt.Fprintf(&b, "%d examples, %d dev-labeled\n", a.Examples, a.DevLabeled)
	return b.String()
}
