// Package lf is the public labeling-function authoring API of the drybell
// SDK — the Go rendering of Snorkel DryBell's template library (paper §5.1,
// Figure 2). Engineers author weak-supervision sources against a small set
// of class templates and a few combinators; the system owns execution. The
// same LF values run on both engines:
//
//   - the batch executor (internal MapReduce jobs sharing data over the
//     distributed filesystem, one job per function, §5.4), via
//     drybell.Pipeline, and
//   - the online serving path (pkg/drybell/serve's /v1/label), via a shared
//     Evaluator.
//
// The paper's five template classes map to:
//
//   - Func: the default pipeline (LabelingFunction) — a pure heuristic.
//   - NLPFunc: the model-server pipeline (NLPLabelingFunction) — launches an
//     NLP model server per compute node offline, or consults one shared
//     cached annotator online.
//   - GraphFunc: the knowledge-graph pipeline — queries a kgraph.Client
//     through an injected LRU cache.
//   - ModelFunc: the model-based pipeline — thresholds an internal
//     classifier's score into votes.
//   - AggregateFunc: the aggregation-based pipeline — a two-pass function
//     whose first pass computes corpus-level statistics.
//
// Combinators (Threshold, Invert, FirstOf, All) derive new functions from
// existing ones, a Set names an application's functions for discovery, and
// Analyze produces the Snorkel development-loop report (coverage, overlaps,
// conflicts, empirical accuracy against a dev set).
package lf

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"

	"repro/internal/labelmodel"
	"repro/internal/nlp"
)

// Label is one labeling-function vote: Positive, Negative, or Abstain.
type Label = labelmodel.Label

// The three vote values. Abstain means "no opinion" and carries no signal.
const (
	Positive = labelmodel.Positive
	Negative = labelmodel.Negative
	Abstain  = labelmodel.Abstain
)

// Category buckets weak-supervision sources the way the paper's Figure 2
// does.
type Category string

// Figure 2 categories.
const (
	SourceHeuristic  Category = "source-heuristic"  // URL/source patterns, aggregate stats
	ContentHeuristic Category = "content-heuristic" // keywords and content patterns
	ModelBased       Category = "model-based"       // internal model predictions
	GraphBased       Category = "graph-based"       // knowledge/entity graphs
)

// Meta describes one labeling function.
type Meta struct {
	// Name is unique within an application; it names the function's DFS
	// output ("labels/<name>") and its column in analysis reports.
	Name string
	// Category is the Figure 2 bucket.
	Category Category
	// Servable records whether the function reads only production-servable
	// signals. Non-servable functions are the ones cross-feature serving
	// exists for (§4, Table 3).
	Servable bool
}

// LF is one labeling function over example type T: metadata plus a vote. It
// is the single abstraction both execution engines consume — the batch
// executor runs each LF as its own MapReduce job, the online serving path
// evaluates the same values per request.
//
// Implementations may additionally implement BatchVoter (vectorized
// scoring), Lifecycle (expensive resources), NodeLocal (per-compute-node
// state), CorpusFitter (two-pass corpus statistics), and Annotatable
// (injected shared NLP service); engines discover these capabilities by
// interface assertion.
type LF[T any] interface {
	// LFMeta returns the function's metadata.
	LFMeta() Meta
	// Vote inspects one example and votes or abstains. Implementations must
	// return only valid labels; an error marks the example unlabelable by
	// this function and fails the surrounding evaluation.
	Vote(ctx context.Context, x T) (Label, error)
}

// BatchVoter is the optional vectorized extension of LF: VoteBatch scores
// many examples in one call, letting engines amortize per-call overhead
// (and implementations share per-batch work). It must be equivalent to
// calling Vote on each example in order.
type BatchVoter[T any] interface {
	VoteBatch(ctx context.Context, xs []T) ([]Label, error)
}

// Lifecycle is implemented by labeling functions holding expensive
// resources (model servers, graph connections). Engines call Setup before
// the first Vote and Teardown after the last. Both must be safe to call
// more than once.
type Lifecycle interface {
	Setup(ctx context.Context) error
	Teardown(ctx context.Context) error
}

// NodeLocal is implemented by labeling functions that maintain per-compute-
// node state — the paper's NLPLabelingFunction launches a model server on
// every node of its MapReduce job. The batch executor calls ForNode once per
// task (simulated node) and runs Setup/Vote/Teardown on the returned
// instance; the online path uses the base value directly (one node).
type NodeLocal[T any] interface {
	ForNode() LF[T]
}

// Annotatable is implemented by labeling functions that consult an NLP
// annotator and accept an injected one — how the online serving path shares
// a single cached model server across every NLP function in a set.
type Annotatable interface {
	SetAnnotator(a nlp.Annotator)
}

// AnnotatorSource is implemented by labeling functions that can supply the
// NLP service for their set (NLPFunc launches its configured model server).
// The Evaluator asks each source in set order when no annotator was
// injected; a source with nothing to offer (e.g. a combinator with no NLP
// members) returns an error wrapping ErrNoAnnotator and the scan moves on.
type AnnotatorSource interface {
	NewAnnotator() (nlp.Annotator, error)
}

// ErrNoAnnotator is returned (wrapped) by an AnnotatorSource that cannot
// supply an annotator — a soft "ask elsewhere", distinct from a failed
// model-server launch.
var ErrNoAnnotator = errors.New("no annotator available")

// CorpusFitter is implemented by two-pass labeling functions whose votes
// depend on corpus-level statistics (AggregateFunc). The batch executor
// streams the staged corpus through FitCorpus before launching the vote
// job; the online path serves from a summary frozen offline. The iteration
// order of the corpus is unspecified.
type CorpusFitter[T any] interface {
	FitCorpus(ctx context.Context, corpus iter.Seq2[T, error]) error
	// Fitted reports whether the function already holds its statistics.
	Fitted() bool
}

// checkVote validates a vote on behalf of a template, naming the function.
func checkVote(meta Meta, v Label) error {
	if !v.Valid() {
		return fmt.Errorf("lf %s: invalid vote %d", meta.Name, int8(v))
	}
	return nil
}

// batchCtxStride bounds how many records a streaming corpus pass processes
// between context checks.
const batchCtxStride = 256

// VoteAll evaluates one labeling function over many examples, preferring
// the vectorized VoteBatch when the function implements BatchVoter and
// falling back to a scalar loop otherwise. It is the shared execution
// primitive of the batch executor's map tasks and the online batch path.
func VoteAll[T any](ctx context.Context, f LF[T], xs []T) ([]Label, error) {
	meta := f.LFMeta()
	if bv, ok := f.(BatchVoter[T]); ok {
		votes, err := bv.VoteBatch(ctx, xs)
		if err != nil {
			return nil, err
		}
		if len(votes) != len(xs) {
			return nil, fmt.Errorf("lf %s: VoteBatch returned %d votes for %d examples", meta.Name, len(votes), len(xs))
		}
		for _, v := range votes {
			if err := checkVote(meta, v); err != nil {
				return nil, err
			}
		}
		return votes, nil
	}
	votes := make([]Label, len(xs))
	for i, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", meta.Name, err)
		}
		v, err := f.Vote(ctx, x)
		if err != nil {
			return nil, err
		}
		if err := checkVote(meta, v); err != nil {
			return nil, err
		}
		votes[i] = v
	}
	return votes, nil
}

// ValidateNames checks that the set is non-empty and every function has a
// unique, non-empty name. Duplicate names would silently overwrite each
// other's vote shards at "labels/<name>" on the distributed filesystem.
func ValidateNames[T any](lfs []LF[T]) error {
	if len(lfs) == 0 {
		return fmt.Errorf("lf: no labeling functions")
	}
	seen := make(map[string]int, len(lfs))
	for j, f := range lfs {
		name := f.LFMeta().Name
		if name == "" {
			return fmt.Errorf("lf: labeling function at index %d has an empty name", j)
		}
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("lf: duplicate labeling function name %q (columns %d and %d); votes would overwrite each other at labels/%s",
				name, prev, j, name)
		}
		seen[name] = j
	}
	return nil
}

// SetupAll runs Setup on every function implementing Lifecycle, in order.
// On failure it tears down the functions already set up and returns the
// setup error.
func SetupAll[T any](ctx context.Context, lfs []LF[T]) error {
	for i, f := range lfs {
		lc, ok := f.(Lifecycle)
		if !ok {
			continue
		}
		if err := lc.Setup(ctx); err != nil {
			for k := i - 1; k >= 0; k-- {
				if prev, ok := lfs[k].(Lifecycle); ok {
					_ = prev.Teardown(ctx)
				}
			}
			return fmt.Errorf("lf %s: setup: %w", f.LFMeta().Name, err)
		}
	}
	return nil
}

// TeardownAll runs Teardown on every function implementing Lifecycle and
// returns the first error after attempting all of them.
func TeardownAll[T any](ctx context.Context, lfs []LF[T]) error {
	var first error
	for _, f := range lfs {
		if lc, ok := f.(Lifecycle); ok {
			if err := lc.Teardown(ctx); err != nil && first == nil {
				first = fmt.Errorf("lf %s: teardown: %w", f.LFMeta().Name, err)
			}
		}
	}
	return first
}

// Names returns function names in column order.
func Names[T any](lfs []LF[T]) []string {
	out := make([]string, len(lfs))
	for j, f := range lfs {
		out[j] = f.LFMeta().Name
	}
	return out
}

// Metas returns function metadata in column order.
func Metas[T any](lfs []LF[T]) []Meta {
	out := make([]Meta, len(lfs))
	for j, f := range lfs {
		out[j] = f.LFMeta()
	}
	return out
}

// Census counts functions per category — the Figure 2 histogram.
func Census[T any](lfs []LF[T]) map[Category]int {
	out := map[Category]int{}
	for _, f := range lfs {
		out[f.LFMeta().Category]++
	}
	return out
}

// ServableIndices returns the column indices of servable functions, the
// Table 3 ablation subset.
func ServableIndices[T any](lfs []LF[T]) []int {
	var out []int
	for j, f := range lfs {
		if f.LFMeta().Servable {
			out = append(out, j)
		}
	}
	return out
}

// sortedCategories returns census keys in stable order, for reports.
func sortedCategories(census map[Category]int) []Category {
	out := make([]Category, 0, len(census))
	//drybellvet:ordered — collection only; sorted immediately below
	for c := range census {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
