package lf

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/labelmodel"
	"repro/internal/nlp"
)

// DefaultAnnotationCacheSize bounds the Evaluator's shared NLP annotation
// LRU when no size is configured.
const DefaultAnnotationCacheSize = 1024

// Evaluator evaluates a fixed labeling-function set outside the MapReduce
// machinery — the execution core of the online serving path, operating on
// the very same LF values the batch executor runs as jobs.
//
// Construction resolves the set's shared NLP service: expensive model
// servers are one-per-node offline, so online every NLP function in the set
// consults a single annotator behind an LRU cache keyed on the annotated
// text. NewEvaluator injects it into every Annotatable function; Setup then
// readies remaining lifecycles (graph caches, etc.).
type Evaluator[T any] struct {
	lfs   []LF[T]
	metas []Meta
	cache *nlp.Cache // nil when the set has no NLP functions
}

// NewEvaluator builds an evaluator over the set, validating name
// uniqueness. ann overrides the NLP service (nil asks the set's first
// AnnotatorSource); cacheSize bounds the annotation LRU (<=0 selects
// DefaultAnnotationCacheSize).
func NewEvaluator[T any](lfs []LF[T], ann nlp.Annotator, cacheSize int) (*Evaluator[T], error) {
	if err := ValidateNames(lfs); err != nil {
		return nil, err
	}
	if cacheSize <= 0 {
		cacheSize = DefaultAnnotationCacheSize
	}

	// Resolve the shared annotator: explicit override, else the first
	// function that can supply one. Sets with no NLP functions need none —
	// a source answering ErrNoAnnotator (e.g. a combinator over pure
	// heuristics) just passes; only a failed launch aborts.
	if ann == nil {
		for _, f := range lfs {
			src, ok := f.(AnnotatorSource)
			if !ok {
				continue
			}
			a, err := src.NewAnnotator()
			if errors.Is(err, ErrNoAnnotator) {
				continue
			}
			if err != nil {
				return nil, err
			}
			ann = a
			break
		}
	}
	e := &Evaluator[T]{lfs: append([]LF[T](nil), lfs...), metas: Metas(lfs)}
	if ann != nil {
		cache, ok := ann.(*nlp.Cache)
		if !ok {
			var err error
			if cache, err = nlp.NewCache(ann, cacheSize); err != nil {
				return nil, err
			}
		}
		e.cache = cache
		for _, f := range e.lfs {
			if a, ok := f.(Annotatable); ok {
				a.SetAnnotator(cache)
			}
		}
	}
	return e, nil
}

// Setup readies every function's lifecycle (no-op for those without one).
func (e *Evaluator[T]) Setup(ctx context.Context) error { return SetupAll(ctx, e.lfs) }

// Teardown releases function lifecycles.
func (e *Evaluator[T]) Teardown(ctx context.Context) error { return TeardownAll(ctx, e.lfs) }

// Len returns the number of functions.
func (e *Evaluator[T]) Len() int { return len(e.lfs) }

// Metas returns function metadata in column order.
func (e *Evaluator[T]) Metas() []Meta { return e.metas }

// Names returns function names in column order.
func (e *Evaluator[T]) Names() []string { return Names(e.lfs) }

// LFs returns the evaluated functions in column order.
func (e *Evaluator[T]) LFs() []LF[T] { return append([]LF[T](nil), e.lfs...) }

// NLPCache returns the shared annotation cache, or nil when the set has no
// NLP functions.
func (e *Evaluator[T]) NLPCache() *nlp.Cache { return e.cache }

// VoteRow evaluates every function against one example — one row of the
// label matrix, the online /v1/label path.
func (e *Evaluator[T]) VoteRow(ctx context.Context, x T) ([]Label, error) {
	votes := make([]Label, len(e.lfs))
	for j, f := range e.lfs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", e.metas[j].Name, err)
		}
		v, err := f.Vote(ctx, x)
		if err != nil {
			return nil, err
		}
		if err := checkVote(e.metas[j], v); err != nil {
			return nil, err
		}
		votes[j] = v
	}
	return votes, nil
}

// VoteMatrix evaluates every function against a batch of examples,
// column-by-column through the vectorized VoteBatch path where functions
// implement it. Row i holds example i's votes in function order.
func (e *Evaluator[T]) VoteMatrix(ctx context.Context, xs []T) (*labelmodel.Matrix, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("lf: VoteMatrix over no examples")
	}
	mx := labelmodel.NewMatrix(len(xs), len(e.lfs))
	for j, f := range e.lfs {
		votes, err := VoteAll(ctx, f, xs)
		if err != nil {
			return nil, err
		}
		for i, v := range votes {
			mx.Set(i, j, v)
		}
	}
	return mx, nil
}
