package lf_test

import (
	"context"
	"testing"

	"repro/internal/nlp"
	"repro/pkg/drybell/lf"
)

func TestSetValidationAndLookup(t *testing.T) {
	a := fixedLF("a", lf.Positive, true)
	b := fixedLF("b", lf.Negative, false)
	if _, err := lf.NewSet("", a); err == nil {
		t.Error("unnamed set accepted")
	}
	if _, err := lf.NewSet("dup", a, a); err == nil {
		t.Error("duplicate names accepted")
	}
	s, err := lf.NewSet("demo", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Name() != "demo" {
		t.Fatalf("set = %s/%d", s.Name(), s.Len())
	}
	if got, ok := s.Get("b"); !ok || got.LFMeta().Name != "b" {
		t.Error("Get(b) failed")
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing) succeeded")
	}
	if names := s.Names(); names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if idx := s.ServableIndices(); len(idx) != 1 || idx[0] != 0 {
		t.Errorf("servable = %v", idx)
	}
	if c := s.Census(); c[lf.ContentHeuristic] != 2 {
		t.Errorf("census = %v", c)
	}
}

func TestRegistry(t *testing.T) {
	s, err := lf.NewSet("registry-demo", fixedLF("a", lf.Positive, true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lf.Unregister("registry-demo") })
	if err := lf.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := lf.Register(s); err == nil {
		t.Error("double registration accepted")
	}
	got, err := lf.Lookup[int]("registry-demo")
	if err != nil || got.Name() != "registry-demo" {
		t.Fatalf("Lookup: %v", err)
	}
	// Wrong example type is a descriptive error, not a silent miss.
	if _, err := lf.Lookup[string]("registry-demo"); err == nil {
		t.Error("type-mismatched lookup succeeded")
	}
	if _, err := lf.Lookup[int]("absent"); err == nil {
		t.Error("lookup of unregistered set succeeded")
	}
	found := false
	for _, name := range lf.RegisteredSets() {
		if name == "registry-demo" {
			found = true
		}
	}
	if !found {
		t.Error("registered set not listed")
	}
	if !lf.Unregister("registry-demo") {
		t.Error("unregister missed the set")
	}
	if lf.Unregister("registry-demo") {
		t.Error("second unregister reported success")
	}
}

// TestEvaluatorSharesOneAnnotator: a set with two NLP functions must end up
// consulting one shared cached annotator, with cache hits on repeats.
func TestEvaluatorSharesOneAnnotator(t *testing.T) {
	launches := 0
	mkNLP := func(name string) lf.LF[string] {
		return &lf.NLPFunc[string]{
			Meta: lf.Meta{Name: name, Category: lf.ModelBased},
			NewServer: func() *nlp.Server {
				launches++
				return nlp.NewServer(0, 1)
			},
			GetText: func(s string) string { return s },
			GetValue: func(_ string, res *nlp.Result) lf.Label {
				if len(res.People()) == 0 {
					return lf.Negative
				}
				return lf.Abstain
			},
		}
	}
	eval, err := lf.NewEvaluator([]lf.LF[string]{mkNLP("n1"), mkNLP("n2")}, nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := eval.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	defer eval.Teardown(ctx)
	if launches != 1 {
		t.Fatalf("launched %d servers, want 1 shared", launches)
	}
	cache := eval.NLPCache()
	if cache == nil {
		t.Fatal("no shared annotation cache")
	}
	// Same text through both functions and again: the annotation is cached.
	for i := 0; i < 3; i++ {
		if _, err := eval.VoteRow(ctx, "nothing notable here"); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Hits() == 0 {
		t.Error("no annotation cache hits across repeated evaluation")
	}
}

// TestEvaluatorRowMatchesMatrix: per-record rows and the vectorized matrix
// must agree — the online and batch views of the same set.
func TestEvaluatorRowMatchesMatrix(t *testing.T) {
	even := lf.New(lf.Meta{Name: "even"}, func(x int) lf.Label {
		if x%2 == 0 {
			return lf.Positive
		}
		return lf.Abstain
	})
	neg := lf.Threshold(lf.Meta{Name: "neg"}, func(x int) float64 { return float64(x) }, lf.NeverPositive, 3)
	eval, err := lf.NewEvaluator([]lf.LF[int]{even, neg}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	xs := []int{0, 1, 2, 3, 4, 5}
	mx, err := eval.VoteMatrix(ctx, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		row, err := eval.VoteRow(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range row {
			if mx.At(i, j) != v {
				t.Errorf("(%d,%d): matrix %v != row %v", i, j, mx.At(i, j), v)
			}
		}
	}
	if eval.Len() != 2 || eval.Names()[1] != "neg" {
		t.Errorf("metadata wrong: %v", eval.Names())
	}
}

func TestEvaluatorValidatesNames(t *testing.T) {
	dup := fixedLF("same", lf.Positive, true)
	if _, err := lf.NewEvaluator([]lf.LF[int]{dup, dup}, nil, 0); err == nil {
		t.Error("duplicate names accepted by evaluator")
	}
}

// TestEvaluatorWithCombinatorOnlySet: a set whose only members are
// combinators over pure heuristics needs no annotator — construction must
// succeed, and a combinator placed before an NLP function must not stop
// the annotator scan.
func TestEvaluatorWithCombinatorOnlySet(t *testing.T) {
	pure := fixedLF("kw", lf.Positive, true)
	eval, err := lf.NewEvaluator([]lf.LF[int]{lf.Invert(pure)}, nil, 0)
	if err != nil {
		t.Fatalf("combinator-only set rejected: %v", err)
	}
	if eval.NLPCache() != nil {
		t.Error("annotation cache created for a set with no NLP functions")
	}
	row, err := eval.VoteRow(context.Background(), 0)
	if err != nil || row[0] != lf.Negative {
		t.Fatalf("vote = %v, %v", row, err)
	}

	// Combinator first, NLPFunc second: the scan must reach the NLPFunc.
	launched := false
	nlpLF := &lf.NLPFunc[int]{
		Meta: lf.Meta{Name: "nlp"},
		NewServer: func() *nlp.Server {
			launched = true
			return nlp.NewServer(0, 1)
		},
		GetText:  func(int) string { return "plain text" },
		GetValue: func(int, *nlp.Result) lf.Label { return lf.Abstain },
	}
	eval2, err := lf.NewEvaluator([]lf.LF[int]{lf.Invert(pure), nlpLF}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !launched || eval2.NLPCache() == nil {
		t.Error("annotator scan stopped at the combinator")
	}
}
