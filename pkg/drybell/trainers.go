package drybell

import "repro/internal/core"

// TrainerFunc trains a generative label model on an assembled label matrix.
// Implementations must be safe for concurrent use by independent pipelines.
type TrainerFunc = core.TrainerFunc

// Built-in trainer names, always registered.
const (
	// TrainerSamplingFree is the paper's contribution (§5.2): marginal
	// likelihood on a static compute graph, no sampling. The default, and
	// the reference implementation.
	TrainerSamplingFree = string(core.TrainerSamplingFree)
	// TrainerSamplingFreeFast is the vectorized production trainer: the
	// same objective optimized by deterministic full-batch projected Newton
	// over the compacted (deduplicated) vote matrix — equivalent labels,
	// several times faster (see the README's Performance section).
	TrainerSamplingFreeFast = string(core.TrainerSamplingFreeFast)
	// TrainerAnalytic is the same objective with hand-derived gradients.
	TrainerAnalytic = string(core.TrainerAnalytic)
	// TrainerGibbs is the open-source Snorkel baseline.
	TrainerGibbs = string(core.TrainerGibbs)
)

// RegisterTrainer makes a label-model trainer selectable via WithTrainer.
// Names are global to the process; registering a duplicate, empty name, or
// nil function is an error. Register custom trainers before calling New.
func RegisterTrainer(name string, fn TrainerFunc) error {
	return core.RegisterTrainer(core.Trainer(name), fn)
}

// HasTrainer reports whether a trainer name is registered.
func HasTrainer(name string) bool {
	_, ok := core.LookupTrainer(core.Trainer(name))
	return ok
}

// Trainers lists all registered trainer names, sorted.
func Trainers() []string {
	names := core.TrainerNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return out
}
