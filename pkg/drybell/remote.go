package drybell

import (
	"context"
	"fmt"
	"net/http"
	"time"

	internallf "repro/internal/lf"
	"repro/internal/mapreduce/remote"
	"repro/pkg/drybell/lf"
)

// Multi-node execution. A pipeline normally simulates its cluster with an
// in-process worker pool; the types below replace that pool with real
// worker processes talking to the coordinator over HTTP, reproducing the
// paper's production topology — shared-nothing workers, all data through
// the distributed filesystem, failures handled by lease expiry and retry.
//
// Coordinator side: build a RemotePool over the pipeline's filesystem,
// serve pool.Handler() on an address workers can reach, pass
// WithRemoteWorkers(pool) to New, and (optionally) AwaitWorkers before
// Run. Worker side: register the same labeling-function set into a
// RemoteRegistry with RegisterRemoteLFs and call RunRemoteWorker — or just
// run `drybelld -mode worker`.

// RemotePool is the coordinator-side worker pool: it registers worker
// processes, leases tasks to them under heartbeat-renewed leases, and
// serves the pipeline's filesystem over a DFS gateway. See
// internal/mapreduce/remote for protocol details.
type RemotePool = remote.Pool

// RemoteRegistry maps job-code keys to the implementations a worker
// process carries.
type RemoteRegistry = remote.Registry

// NewRemoteRegistry returns an empty worker-side job registry.
func NewRemoteRegistry() *RemoteRegistry { return remote.NewRegistry() }

// RemotePoolOptions configures NewRemotePool.
type RemotePoolOptions struct {
	// FS must be the same filesystem the pipeline runs on (WithFS):
	// workers read staged input and commit votes through it via the
	// pool's DFS gateway. Required.
	FS FS
	// Slots is the pool's dispatch concurrency — how many tasks may be in
	// flight across all workers. Defaults to 8.
	Slots int
	// LeaseTTL is how long a worker may go silent before its task is
	// declared lost and retried elsewhere. Defaults to 5s.
	LeaseTTL time.Duration
	// Observer, when non-nil, records pool metrics (registrations,
	// leases, expirations, zombie rejections) and gateway I/O into its
	// metrics registry.
	Observer *Observer
}

// NewRemotePool builds a coordinator-side pool. Serve its Handler — e.g.
// http.ListenAndServe(addr, pool.Handler()) — wherever workers can reach
// it, and Close it when the pipeline is done.
func NewRemotePool(opts RemotePoolOptions) (*RemotePool, error) {
	po := remote.PoolOptions{
		FS:       opts.FS,
		Slots:    opts.Slots,
		LeaseTTL: opts.LeaseTTL,
	}
	if opts.Observer != nil {
		po.Metrics = opts.Observer.Metrics
	}
	return remote.NewPool(po)
}

// WithRemoteWorkers routes the pipeline's labeling-function jobs to a
// remote pool's workers instead of the in-process pool. The pool must be
// built over the pipeline's filesystem, and every worker must carry the
// pipeline's labeling-function set (RegisterRemoteLFs with the same
// functions in the same order). Options that shape the in-process pool
// (WithParallelism) are ignored for routed jobs; retries, speculation
// (WithStragglerAfter), and resume apply unchanged.
func WithRemoteWorkers(pool *RemotePool) Option {
	return Option{f: func(s *settings) {
		if pool == nil {
			s.fail(fmt.Errorf("drybell: WithRemoteWorkers(nil)"))
			return
		}
		s.workers = pool.Workers()
	}}
}

// RegisterRemoteLFs registers the vote jobs for the labeling-function set
// into a worker's job registry, under the same code keys the coordinator
// stamps into dispatched tasks. The set must match the coordinator's —
// same functions, same order (the order fixes the vote matrix's column
// layout, so the code key embeds it) — and decode must be the same codec
// the pipeline was built with. A coordinator whose set the worker does not
// carry fails jobs with a deployment-skew error rather than mislabeling.
func RegisterRemoteLFs[T any](reg *RemoteRegistry, lfs []lf.LF[T], decode func([]byte) (T, error)) error {
	if reg == nil {
		return fmt.Errorf("drybell: RegisterRemoteLFs(nil registry)")
	}
	if decode == nil {
		return fmt.Errorf("drybell: RegisterRemoteLFs requires a decode function")
	}
	return internallf.RegisterVoteJobs(reg, lfs, decode, false)
}

// RemoteWorkerOptions configures RunRemoteWorker.
type RemoteWorkerOptions struct {
	// Coordinator is the base URL of the coordinator's pool handler, e.g.
	// "http://10.0.0.1:9090". Required.
	Coordinator string
	// Name labels the worker in coordinator diagnostics; identity is
	// minted by the coordinator at registration.
	Name string
	// Jobs is the worker's job registry (RegisterRemoteLFs). Required.
	Jobs *RemoteRegistry
	// Client overrides the HTTP client for coordinator traffic.
	Client *http.Client
	// DrainTimeout bounds the graceful drain: a task still executing this
	// long after cancellation is abandoned (its lease expires and the
	// coordinator re-runs it elsewhere), so SIGTERM cannot hang on a stuck
	// task. 0 drains without bound.
	DrainTimeout time.Duration
	// HedgeReads, when > 0, races a duplicate DFS gateway read when the
	// first is still unanswered after this long; first answer wins.
	HedgeReads time.Duration
	// Observer, when non-nil, records the worker's resilience decisions
	// (retries, hedges, breaker state) into its metrics registry.
	Observer *Observer
}

// RunRemoteWorker registers with the coordinator and executes leased tasks
// until ctx is canceled, then drains gracefully: it finishes the task it
// holds, deregisters, and returns nil. This is the loop behind
// `drybelld -mode worker`.
func RunRemoteWorker(ctx context.Context, opts RemoteWorkerOptions) error {
	wo := remote.WorkerOptions{
		Coordinator:  opts.Coordinator,
		Name:         opts.Name,
		Jobs:         opts.Jobs,
		Client:       opts.Client,
		DrainTimeout: opts.DrainTimeout,
		HedgeReads:   opts.HedgeReads,
	}
	if opts.Observer != nil {
		wo.Metrics = opts.Observer.Metrics
	}
	return remote.RunWorker(ctx, wo)
}
