package drybell_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/remote"
	"repro/pkg/drybell"
)

// remoteCluster runs a coordinator-side pool and n worker loops speaking
// real HTTP, carrying the test LF set.
type remoteCluster struct {
	pool *drybell.RemotePool
	srv  *httptest.Server
}

func startRemoteCluster(t *testing.T, fs drybell.FS, ttl time.Duration, hooks []remote.WorkerHooks) *remoteCluster {
	t.Helper()
	reg := drybell.NewRemoteRegistry()
	if err := drybell.RegisterRemoteLFs(reg, testRunners(), decodeDoc); err != nil {
		t.Fatal(err)
	}
	pool, err := drybell.NewRemotePool(drybell.RemotePoolOptions{FS: fs, Slots: 4, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i, h := range hooks {
		wg.Add(1)
		go func(i int, h remote.WorkerHooks) {
			defer wg.Done()
			// The internal entry point rather than drybell.RunRemoteWorker,
			// because fault hooks are not part of the public surface.
			err := remote.RunWorker(ctx, remote.WorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("pipeline-worker-%d", i),
				Jobs:        reg,
				PollWait:    200 * time.Millisecond,
				Hooks:       h,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, h)
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		pool.Close()
		srv.Close()
	})
	if err := pool.AwaitWorkers(ctx, len(hooks)); err != nil {
		t.Fatal(err)
	}
	return &remoteCluster{pool: pool, srv: srv}
}

func assertShardsEqual(t *testing.T, got, want [][]byte, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d shards, want %d", what, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: shard %d differs (%d vs %d bytes)", what, i, len(got[i]), len(want[i]))
		}
	}
}

// TestPipelineRemoteWorkersEquivalence is the multi-node acceptance bar's
// clean half: the full pipeline with labeling-function execution routed to
// two worker processes over HTTP persists byte-identical labels and votes
// to the in-process backend.
func TestPipelineRemoteWorkersEquivalence(t *testing.T) {
	docs := makeDocs(240)

	clean := newPipeline(t)
	cleanRes, err := clean.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	cleanLabels := rawShards(t, clean.FS(), clean.LabelsPath())
	cleanVotes := rawShards(t, clean.FS(), clean.VotesBase())

	fs := dfs.NewMem()
	c := startRemoteCluster(t, fs, 0, []remote.WorkerHooks{{}, {}})
	p := newPipeline(t,
		drybell.WithFS(fs),
		drybell.WithRemoteWorkers(c.pool),
	)
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}

	matricesEqual(t, cleanRes.Matrix, res.Matrix)
	assertShardsEqual(t, rawShards(t, p.FS(), p.LabelsPath()), cleanLabels, "labels")
	assertShardsEqual(t, rawShards(t, p.FS(), p.VotesBase()), cleanVotes, "votes")
	for j, want := range cleanRes.LFReport.PerLF {
		got := res.LFReport.PerLF[j]
		if got.Positives != want.Positives || got.Negatives != want.Negatives || got.Abstains != want.Abstains {
			t.Errorf("LF %s vote counts diverge remotely: %+v vs %+v", want.Name, got, want)
		}
	}
}

// TestPipelineRemoteWorkersFaultEquivalence is the other half: the same
// equivalence with the remote fleet actively failing — a worker killed
// dead on its first lease, another dropping heartbeats until its lease
// expires, a third straggling into speculative re-execution, plus DFS
// faults on the attempt files behind the gateway. Lease expiry must fold
// every remote failure mode into the coordinator's ordinary retry path,
// and the persisted labels must not move by a byte.
func TestPipelineRemoteWorkersFaultEquivalence(t *testing.T) {
	docs := makeDocs(240)

	clean := newPipeline(t)
	cleanRes, err := clean.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	cleanLabels := rawShards(t, clean.FS(), clean.LabelsPath())

	fault := dfs.NewFaultFS(dfs.NewMem(), 91)
	// The fused vote job collects output in memory, so the worker I/O the
	// gateway carries is dominated by input-shard reads — fault those (the
	// read happens worker-side, inside the attempt, so each hit costs one
	// retried attempt). The scripted faults guarantee the first three
	// task-input reads fail regardless of seed; the probabilistic layer
	// keeps later attempts under pressure too.
	fault.FailNext(dfs.OpRead, "input/examples", 3)
	fault.FailProbPath(dfs.OpRead, "input/examples", 0.15)
	fault.FailProbPath(dfs.OpWrite, "_attempts/", 0.05)
	fault.FailProbPath(dfs.OpRename, "_attempts/", 0.05)

	var kills, partitions atomic.Int32
	kills.Store(1)
	partitions.Store(1)
	hooks := []remote.WorkerHooks{
		{Kill: func(mapreduce.TaskSpec) bool { return kills.Add(-1) >= 0 }},
		{
			DropHeartbeats: func(mapreduce.TaskSpec) bool { return partitions.Add(-1) >= 0 },
			Stall:          func(mapreduce.TaskSpec) { time.Sleep(150 * time.Millisecond) },
		},
		{}, {},
	}
	c := startRemoteCluster(t, fault, 400*time.Millisecond, hooks)

	p := newPipeline(t,
		drybell.WithFS(fault),
		drybell.WithRemoteWorkers(c.pool),
		drybell.WithRetries(24),
		drybell.WithStragglerAfter(100*time.Millisecond),
	)
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatalf("remote pipeline under faults failed: %v (injected %d)", err, fault.Injected())
	}
	if fault.Injected() == 0 {
		t.Fatal("no DFS faults fired; test is vacuous")
	}

	matricesEqual(t, cleanRes.Matrix, res.Matrix)
	assertShardsEqual(t, rawShards(t, p.FS(), p.LabelsPath()), cleanLabels, "labels under faults")
	for j, want := range cleanRes.LFReport.PerLF {
		got := res.LFReport.PerLF[j]
		if got.Positives != want.Positives || got.Negatives != want.Negatives || got.Abstains != want.Abstains {
			t.Errorf("LF %s vote counts diverge under remote faults: %+v vs %+v", want.Name, got, want)
		}
	}
}

// TestPipelineRemoteResume proves checkpoint/resume crosses the process
// boundary at the SDK level: a resumed pipeline over the same filesystem
// and function set re-executes nothing even when its jobs are routed to
// remote workers.
func TestPipelineRemoteResume(t *testing.T) {
	docs := makeDocs(120)
	fs := dfs.NewMem()
	c := startRemoteCluster(t, fs, 0, []remote.WorkerHooks{{}, {}})

	first := newPipeline(t,
		drybell.WithFS(fs),
		drybell.WithRemoteWorkers(c.pool),
		drybell.WithResume(true),
	)
	firstRes, err := first.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	if firstRes.LFReport.TasksResumed != 0 {
		t.Fatalf("fresh remote run resumed %d tasks", firstRes.LFReport.TasksResumed)
	}

	second := newPipeline(t,
		drybell.WithFS(fs),
		drybell.WithRemoteWorkers(c.pool),
		drybell.WithResume(true),
	)
	secondRes, err := second.Run(context.Background(), drybell.SliceSource(docs), testRunners())
	if err != nil {
		t.Fatal(err)
	}
	if secondRes.LFReport.TaskAttempts != 0 {
		t.Errorf("resumed remote run launched %d attempts, want 0", secondRes.LFReport.TaskAttempts)
	}
	matricesEqual(t, firstRes.Matrix, secondRes.Matrix)
}
