package drybell

import "repro/internal/core"

// StageName identifies one of the four pipeline stages.
type StageName = core.StageName

// The stages of the paper's Figure 4 flow, plus the development-loop
// analysis emitted after labeling-function execution.
const (
	StageStage      = core.StageStage
	StageExecuteLFs = core.StageExecuteLFs
	StageAnalyze    = core.StageAnalyze
	StageDenoise    = core.StageDenoise
	StagePersist    = core.StagePersist
)

// StageEvent is the structured observability record emitted to the
// WithStageHook observer when a stage finishes, successfully or not. It
// carries the same data Result.Timings and Result.LFReport aggregate, but
// per stage and in real time.
type StageEvent = core.StageEvent

// StageHook observes stage completions. See WithStageHook.
type StageHook = core.StageHook
