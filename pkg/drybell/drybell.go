// Package drybell is the public SDK for the Snorkel DryBell weak-supervision
// pipeline (Bach et al., SIGMOD 2019). It is the one supported entry point;
// the internal packages behind it are implementation detail.
//
// A Pipeline runs the paper's four-stage flow over a streaming source of
// unlabeled examples:
//
//  1. Stage the corpus onto the distributed filesystem,
//  2. ExecuteLFs: run each labeling function as its own MapReduce job,
//  3. Denoise the votes into probabilistic labels with a generative model,
//  4. Persist the labels for the production training systems.
//
// Construct one with functional options and run it end to end:
//
//	p, err := drybell.New[*corpus.Document](
//		drybell.WithCodec(
//			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
//			corpus.UnmarshalDocument,
//		),
//		drybell.WithTrainer(drybell.TrainerSamplingFree),
//		drybell.WithLabelModel(drybell.LabelModelOptions{Steps: 800}),
//	)
//	res, err := p.Run(ctx, drybell.SliceSource(docs), lfs)
//
// The labeling functions themselves are authored against the template
// library in repro/pkg/drybell/lf — the same lf.LF values also serve the
// online /v1/label path (pkg/drybell/serve).
//
// Every stage accepts a context.Context. Staging and labeling-function
// execution honor cancellation mid-stage, down to individual MapReduce
// records; the denoise and persist stages check the context at stage entry
// (the trainers themselves run to completion once started). A canceled run
// returns an error satisfying errors.Is(err, ctx.Err()) and commits no
// further output. Each stage is also callable on its
// own: because stages exchange data only through the filesystem — "labeling
// functions are independent executables that use a distributed filesystem to
// share data" (§5.4) — a Pipeline built over the same FS and work directory
// can resume mid-flow from whatever state an earlier run (or another
// process) left behind, e.g. ExecuteLFs over a previously staged corpus, or
// LoadMatrix plus Denoise over previously computed votes.
//
// Label-model trainers are pluggable: RegisterTrainer adds a named trainer
// to the registry and WithTrainer selects it, alongside the built-in
// sampling-free, analytic, and Gibbs trainers. WithStageHook installs an
// observer that receives one structured StageEvent per completed stage for
// logging and metrics.
//
// For deeper observability, WithObserver attaches a shared metrics registry
// and span tracer (see NewObserver): every stage records latency and error
// metrics, the MapReduce runtime counts task attempts and speculative
// siblings, the filesystem wrapper counts per-operation calls, errors, and
// bytes, and a full span tree — pipeline, stages, jobs, individual task
// attempts — is recorded and exported after Run as a Perfetto-loadable
// Chrome trace at "<workdir>/_obs/trace.json". WriteMetrics renders the
// registry in Prometheus text format; WriteTrace renders the span tree for
// ad-hoc runs (the lfrun and drybell CLIs expose this as -trace). The same
// Observer can back a serve.Server so offline and online metrics share one
// registry.
//
// Labeling-function execution runs on a coordinator/worker MapReduce
// runtime with a real failure model. WithRetries sets the per-task retry
// budget (a failed task attempt — worker crash, filesystem fault, failed
// commit — re-executes without side effects; attempt isolation guarantees
// a killed attempt never publishes partial output). WithStragglerAfter
// enables deadline-based speculative execution: a task running past the
// deadline gets one speculative sibling and the first commit wins.
// WithResume turns on checkpoint/resume: the runtime records per-task
// manifests on the filesystem as tasks complete, and a re-run of a crashed
// pipeline skips the staged corpus, loads completed vote artifacts, and
// re-executes only the tasks whose checkpoints are missing — the paper's
// "re-run only what's missing" recovery (§5.4). Resume requires sharing a
// durable filesystem (WithFS + NewDiskFS) and the same work directory with
// the crashed run.
//
// Corpora evolve without full reruns. StageDelta records appended, changed,
// or deleted documents as corpus generations, and IncrementalRun advances
// the pipeline by exactly the pending deltas: labeling functions execute
// only over the delta's shards, each delta publishing one generation into
// the append-only versioned vote store under VotesBase; the label model
// warm-starts from the previous run's state (carried by the Pipeline, or
// dropped with WithColdStart); and the refreshed labels are persisted over
// the full corpus. WithCorpusDelta and WithCorpusRewrite stage deltas inline
// with a run. Warm-start results match a cold full retrain within 1e-3 on
// the model with identical hard labels — incremental is a latency
// optimization, never a quality trade.
package drybell

import (
	"context"
	"fmt"
	"path"
	"time"

	"repro/internal/core"
	"repro/internal/labelmodel"
	"repro/internal/obs"
	"repro/pkg/drybell/lf"
)

// Pipeline is a configured weak-supervision pipeline over example type T.
// Construct it with New; the zero value is not usable. A Pipeline is
// stateless between calls — all pipeline state lives on its filesystem — so
// its methods are safe for sequential reuse and for resuming partial runs.
// The single exception is the label model's warm-start state, which
// IncrementalRun carries in memory between calls; losing it (a fresh
// Pipeline) costs training time, never correctness.
type Pipeline[T any] struct {
	cfg  core.Config[T]
	hook StageHook
	warm *labelmodel.TrainState
}

// New builds a Pipeline from functional options. WithCodec is required and
// must carry the same example type T; all other options have defaults
// (fresh in-memory filesystem, work directory "drybell", 8 shards,
// parallelism 4, the sampling-free trainer). A trainer selected with
// WithTrainer must already be registered.
func New[T any](opts ...Option) (*Pipeline[T], error) {
	s := &settings{}
	for _, o := range opts {
		if o.f != nil {
			o.f(s)
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.codec == nil {
		return nil, fmt.Errorf("drybell: New requires WithCodec")
	}
	codec, ok := s.codec.(Codec[T])
	if !ok {
		var zero T
		return nil, fmt.Errorf("drybell: WithCodec was built for a different example type than the pipeline's %T", zero)
	}
	if s.trainer != "" && !HasTrainer(s.trainer) {
		return nil, fmt.Errorf("drybell: unknown trainer %q (registered: %v)", s.trainer, Trainers())
	}
	cfg, err := core.Config[T]{
		FS:             s.fs,
		WorkDir:        s.workDir,
		Encode:         codec.Encode,
		Decode:         codec.Decode,
		Shards:         s.shards,
		Parallelism:    s.parallelism,
		MaxAttempts:    s.maxAttempts,
		StragglerAfter: s.stragglerAfter,
		Resume:         s.resume,
		Trainer:        core.Trainer(s.trainer),
		LabelModel:     s.labelModel,
		DevLabels:      s.devLabels,
		Obs:            s.observer,
		Workers:        s.workers,
	}.WithDefaults()
	if err != nil {
		return nil, err
	}
	if s.observer != nil && s.observer.Metrics != nil {
		// Route every DFS operation — reads, writes, renames — through the
		// per-op counters and latency histograms of the shared registry.
		cfg.FS = obs.InstrumentFS(cfg.FS, s.observer.Metrics)
	}
	return &Pipeline[T]{cfg: cfg, hook: s.hook}, nil
}

// FS returns the pipeline's filesystem. Share it (with the same work
// directory) across Pipelines to resume stages started elsewhere.
func (p *Pipeline[T]) FS() FS { return p.cfg.FS }

// WorkDir returns the pipeline's work directory prefix on the filesystem.
func (p *Pipeline[T]) WorkDir() string { return p.cfg.WorkDir }

// InputPath returns the DFS base path of the staged corpus.
func (p *Pipeline[T]) InputPath() string { return p.cfg.InputBase() }

// LabelsPath returns the DFS base path where Persist writes the
// probabilistic labels.
func (p *Pipeline[T]) LabelsPath() string { return p.cfg.LabelsOutputBase() }

// VotesBase returns the DFS base path of the columnar vote artifact
// ExecuteLFs maintains: every executed function's votes in one sharded,
// byte-per-vote matrix, with a ".meta" sidecar naming the columns.
func (p *Pipeline[T]) VotesBase() string { return path.Join(p.cfg.VotesPrefix(), "votes") }

// VotesPath returns the legacy per-function vote base path
// ("<prefix>/<name>"). Current pipelines persist all votes in the single
// columnar artifact at VotesBase; this path only locates shard sets written
// by older runs, which LoadMatrix still reads.
func (p *Pipeline[T]) VotesPath(name string) string { return path.Join(p.cfg.VotesPrefix(), name) }

// Run executes all four stages: stage the source, execute the labeling
// functions (analyzing the resulting matrix for the development loop),
// denoise their votes, and persist the probabilistic labels. The function
// set is validated up front — duplicate or empty names fail before anything
// is staged. Cancellation of ctx aborts with an error satisfying
// errors.Is(err, ctx.Err()); see the package comment for how deep into each
// stage cancellation reaches.
func (p *Pipeline[T]) Run(ctx context.Context, src Source[T], lfs []LF[T]) (*Result, error) {
	return core.RunObserved(ctx, p.cfg, src, lfs, p.hook)
}

// Stage consumes the source once, encoding each example onto the filesystem
// as the pipeline's sharded input (stage 1). The corpus never needs to fit
// in one slice. It returns the number of examples staged.
func (p *Pipeline[T]) Stage(ctx context.Context, src Source[T]) (int, error) {
	start := time.Now() //drybellvet:wallclock — stage timing for the emitted event only
	n, err := core.StageExamples(p.cfg.ObsContext(ctx), p.cfg, src)
	p.emit(StageEvent{Stage: StageStage, Start: start, Duration: time.Since(start), Examples: n, Err: err})
	return n, err
}

// StageRecords is Stage for already-encoded records: the bytes go to the
// filesystem as-is, skipping the codec. Use it when the corpus is already
// in the pipeline's record format — e.g. a validated JSONL dump — to avoid
// a decode/re-encode round-trip per record.
func (p *Pipeline[T]) StageRecords(ctx context.Context, records Source[[]byte]) (int, error) {
	start := time.Now() //drybellvet:wallclock — stage timing for the emitted event only
	n, err := core.StageRecords(p.cfg.ObsContext(ctx), p.cfg, records)
	p.emit(StageEvent{Stage: StageStage, Start: start, Duration: time.Since(start), Examples: n, Err: err})
	return n, err
}

// ExecuteLFs runs every labeling function as its own MapReduce job over the
// staged corpus (stage 2) and assembles the label matrix, column j holding
// runner j's votes in input order. The corpus may have been staged by an
// earlier run or another process sharing the filesystem.
func (p *Pipeline[T]) ExecuteLFs(ctx context.Context, lfs []LF[T]) (*Matrix, *Report, error) {
	start := time.Now() //drybellvet:wallclock — stage timing for the emitted event only
	matrix, report, err := core.ExecuteLFs(ctx, p.cfg, lfs)
	ev := StageEvent{Stage: StageExecuteLFs, Start: start, Duration: time.Since(start), Report: report, Err: err}
	if matrix != nil {
		ev.Examples = matrix.NumExamples()
	}
	p.emit(ev)
	return matrix, report, err
}

// Analyze computes the development-loop report over an executed label
// matrix: per-function coverage, overlaps, conflicts, and — when the
// pipeline was built WithDevLabels — empirical accuracy. metas must be the
// executed functions' metadata in matrix column order (lf.Metas of the set
// passed to ExecuteLFs). The report is also emitted as a StageAnalyze event.
func (p *Pipeline[T]) Analyze(matrix *Matrix, metas []Meta) (*Analysis, error) {
	start := time.Now() //drybellvet:wallclock — stage timing for the emitted event only
	analysis, err := lf.Analyze(matrix, metas, p.cfg.DevLabels)
	ev := StageEvent{Stage: StageAnalyze, Start: start, Duration: time.Since(start), Analysis: analysis, Err: err}
	if matrix != nil {
		ev.Examples = matrix.NumExamples()
	}
	p.emit(ev)
	return analysis, err
}

// LoadMatrix reassembles the label matrix from vote state that an earlier
// ExecuteLFs left on the filesystem, without re-running anything. Column j
// holds the votes of names[j]. The columnar artifact at VotesBase is read
// when present (selecting and reordering columns by name); filesystems
// holding only the legacy per-function shard sets load through the
// compatibility reader.
func (p *Pipeline[T]) LoadMatrix(names []string) (*Matrix, error) {
	return core.LoadMatrix(p.cfg, names)
}

// Denoise trains the configured generative label model on the matrix
// (stage 3), returning the model and the probabilistic training labels
// P(Y_i=1|Λ_i) aligned with the staged input.
func (p *Pipeline[T]) Denoise(ctx context.Context, matrix *Matrix) (*Model, []float64, error) {
	start := time.Now() //drybellvet:wallclock — stage timing for the emitted event only
	model, posteriors, err := core.Denoise(p.cfg.ObsContext(ctx), p.cfg.Trainer, matrix, p.cfg.LabelModel)
	ev := StageEvent{Stage: StageDenoise, Start: start, Duration: time.Since(start), Examples: len(posteriors), Err: err}
	p.emit(ev)
	return model, posteriors, err
}

// Persist writes the probabilistic labels back to the filesystem (stage 4)
// and returns the DFS base path they were written under.
func (p *Pipeline[T]) Persist(ctx context.Context, labels []float64) (string, error) {
	start := time.Now() //drybellvet:wallclock — stage timing for the emitted event only
	path := p.cfg.LabelsOutputBase()
	err := core.PersistLabels(p.cfg.ObsContext(ctx), p.cfg.FS, path, labels, p.cfg.Shards)
	p.emit(StageEvent{Stage: StagePersist, Start: start, Duration: time.Since(start), Examples: len(labels), LabelsPath: path, Err: err})
	if err != nil {
		return "", err
	}
	return path, nil
}

// Labels reads back the labels a previous Persist wrote, restoring input
// order — the consumer side of the filesystem hand-off.
func (p *Pipeline[T]) Labels() ([]float64, error) {
	return core.ReadLabels(p.cfg.FS, p.cfg.LabelsOutputBase())
}

func (p *Pipeline[T]) emit(ev StageEvent) {
	if p.hook != nil {
		p.hook(ev)
	}
}
