package drybell

import (
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	internallf "repro/internal/lf"
	"repro/pkg/drybell/lf"
)

// The SDK re-exports the pipeline's data types under one import path. The
// labeling-function authoring API lives in the subpackage
// repro/pkg/drybell/lf; the central aliases below re-export its core types
// so simple pipelines need a single import.

// LF is one labeling function: metadata plus a vote. Author them with the
// templates and combinators of repro/pkg/drybell/lf (Func, NLPFunc,
// GraphFunc, ModelFunc, AggregateFunc, Threshold, Invert, FirstOf, All).
type LF[T any] = lf.LF[T]

// Meta describes one labeling function (name, category, servability).
type Meta = lf.Meta

// Category buckets weak-supervision sources the way Figure 2 does.
type Category = lf.Category

// Figure 2 categories.
const (
	SourceHeuristic  = lf.SourceHeuristic
	ContentHeuristic = lf.ContentHeuristic
	ModelBased       = lf.ModelBased
	GraphBased       = lf.GraphBased
)

// Label is one labeling-function vote.
type Label = labelmodel.Label

// The three vote values.
const (
	Positive = labelmodel.Positive
	Negative = labelmodel.Negative
	Abstain  = labelmodel.Abstain
)

// Analysis is the development-loop report over an executed label matrix;
// LFAnalysis is its per-function row. See lf.Analyze and WithDevLabels.
type (
	Analysis   = lf.Analysis
	LFAnalysis = lf.LFAnalysis
)

// Matrix is the assembled m×n label matrix Λ.
type Matrix = labelmodel.Matrix

// Model is the trained generative label model; its Accuracies and
// RankByAccuracy expose the §3.3 diagnostics.
type Model = labelmodel.Model

// LabelModelOptions configure generative-model training (steps, batch size,
// learning rate, priors). See WithLabelModel.
type LabelModelOptions = labelmodel.Options

// Result is the output of Pipeline.Run.
type Result = core.Result

// Timings records per-stage wall time inside a Result.
type Timings = core.Timings

// Report summarizes an ExecuteLFs stage; LFReport is its per-function entry.
type (
	Report   = internallf.Report
	LFReport = internallf.LFReport
)

// FS is the distributed filesystem surface the pipeline stages data on.
type FS = dfs.FS

// NewMemFS returns a fresh in-memory filesystem, the default backing store.
func NewMemFS() FS { return dfs.NewMem() }

// NewDiskFS returns a disk-backed filesystem rooted at dir, for pipelines
// whose state must survive the process (and be shared between processes).
func NewDiskFS(dir string) (FS, error) { return dfs.NewDisk(dir) }

// ListShards returns the complete, ordered shard set committed under base
// (e.g. a VotesPath or LabelsPath), erroring on missing or inconsistent
// shards so a partially written output is never consumed.
func ListShards(fs FS, base string) ([]string, error) { return dfs.ListShards(fs, base) }

// Names returns labeling-function names in column order — the name list
// LoadMatrix expects.
func Names[T any](lfs []LF[T]) []string { return lf.Names(lfs) }

// ServableIndices returns the column indices of servable functions, the
// Table 3 ablation subset.
func ServableIndices[T any](lfs []LF[T]) []int { return lf.ServableIndices(lfs) }

// Census counts labeling functions per category — the Figure 2 histogram.
func Census[T any](lfs []LF[T]) map[Category]int { return lf.Census(lfs) }

// LogicalORPosteriors is the pre-DryBell status-quo baseline: label 1 iff
// any function voted positive (§3.3, §6.4).
func LogicalORPosteriors(mx *Matrix) []float64 { return labelmodel.LogicalORPosteriors(mx) }

// HardLabels thresholds probabilistic labels at 1/2 into votes.
func HardLabels(posteriors []float64) []Label { return labelmodel.HardLabels(posteriors) }

// ---------------------------------------------------------------------------
// Legacy aliases, kept for one release.

// Runner is the pre-lf-package labeling-function interface.
//
// Deprecated: author functions against repro/pkg/drybell/lf and pass
// []drybell.LF[T]; convert stragglers with FromRunners.
type Runner[T any] = internallf.Runner[T]

// Func is the legacy default-pipeline template (field Vote).
//
// Deprecated: use repro/pkg/drybell/lf.Func (field Fn), which also serves
// the online labeling path.
type Func[T any] = internallf.Func[T]

// NLPFunc is the legacy model-server template.
//
// Deprecated: use repro/pkg/drybell/lf.NLPFunc.
type NLPFunc[T any] = internallf.NLPFunc[T]

// FromRunners converts legacy runners into the labeling functions the
// pipeline executes.
//
// Deprecated: migrate call sites to repro/pkg/drybell/lf values directly.
func FromRunners[T any](runners []Runner[T]) []LF[T] { return internallf.FromRunners(runners) }
