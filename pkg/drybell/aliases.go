package drybell

import (
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/lf"
)

// The SDK re-exports the pipeline's data types under one import path, so
// callers build labeling functions, inspect results, and configure training
// without reaching into internal packages.

// Runner is one executable labeling function: metadata plus the mapper that
// computes its votes. Func and NLPFunc are the two implementations, the
// paper's two C++ class templates (§5.1).
type Runner[T any] = lf.Runner[T]

// Func is the default labeling-function pipeline: a pure vote function run
// in a MapReduce map task with no extra services.
type Func[T any] = lf.Func[T]

// NLPFunc is the model-server pipeline: Setup launches an NLP model server
// on each compute node, GetText/GetValue compute the vote from annotations.
type NLPFunc[T any] = lf.NLPFunc[T]

// Meta describes one labeling function (name, category, servability).
type Meta = lf.Meta

// Category buckets weak-supervision sources the way Figure 2 does.
type Category = lf.Category

// Figure 2 categories.
const (
	SourceHeuristic  = lf.SourceHeuristic
	ContentHeuristic = lf.ContentHeuristic
	ModelBased       = lf.ModelBased
	GraphBased       = lf.GraphBased
)

// Label is one labeling-function vote.
type Label = labelmodel.Label

// The three vote values.
const (
	Positive = labelmodel.Positive
	Negative = labelmodel.Negative
	Abstain  = labelmodel.Abstain
)

// Matrix is the assembled m×n label matrix Λ.
type Matrix = labelmodel.Matrix

// Model is the trained generative label model; its Accuracies and
// RankByAccuracy expose the §3.3 diagnostics.
type Model = labelmodel.Model

// LabelModelOptions configure generative-model training (steps, batch size,
// learning rate, priors). See WithLabelModel.
type LabelModelOptions = labelmodel.Options

// Result is the output of Pipeline.Run.
type Result = core.Result

// Timings records per-stage wall time inside a Result.
type Timings = core.Timings

// Report summarizes an ExecuteLFs stage; LFReport is its per-function entry.
type (
	Report   = lf.Report
	LFReport = lf.LFReport
)

// FS is the distributed filesystem surface the pipeline stages data on.
type FS = dfs.FS

// NewMemFS returns a fresh in-memory filesystem, the default backing store.
func NewMemFS() FS { return dfs.NewMem() }

// NewDiskFS returns a disk-backed filesystem rooted at dir, for pipelines
// whose state must survive the process (and be shared between processes).
func NewDiskFS(dir string) (FS, error) { return dfs.NewDisk(dir) }

// ListShards returns the complete, ordered shard set committed under base
// (e.g. a VotesPath or LabelsPath), erroring on missing or inconsistent
// shards so a partially written output is never consumed.
func ListShards(fs FS, base string) ([]string, error) { return dfs.ListShards(fs, base) }

// Names returns runner names in column order — the name list LoadMatrix
// expects.
func Names[T any](runners []Runner[T]) []string { return lf.Names(runners) }

// ServableIndices returns the column indices of servable runners, the
// Table 3 ablation subset.
func ServableIndices[T any](runners []Runner[T]) []int { return lf.ServableIndices(runners) }

// Census counts runners per category — the Figure 2 histogram.
func Census[T any](runners []Runner[T]) map[Category]int { return lf.Census(runners) }

// LogicalORPosteriors is the pre-DryBell status-quo baseline: label 1 iff
// any function voted positive (§3.3, §6.4).
func LogicalORPosteriors(mx *Matrix) []float64 { return labelmodel.LogicalORPosteriors(mx) }

// HardLabels thresholds probabilistic labels at 1/2 into votes.
func HardLabels(posteriors []float64) []Label { return labelmodel.HardLabels(posteriors) }
