// Command benchdiff is the bench-regression gate: it compares a fresh
// benchjson recording against the committed BENCH_pr*.json trajectory and
// fails when a perf-critical benchmark regressed beyond the threshold. It is
// the checker behind `make bench-gate`, which CI runs on every PR — the
// benchmark trajectory is an enforced contract, not an archived artifact.
//
// For every benchmark in the current recording that matches the critical
// set, the baseline is the MOST RECENT observation of that benchmark across
// all given trajectory files (recorded_at decides; a benchmark absent from
// every baseline is reported as new and does not gate). Trajectory files that
// are not benchjson recordings — the repository also commits load-generator
// reports under the same BENCH_ prefix — are skipped with a note.
//
// Usage:
//
//	benchdiff -current /tmp/gate.json [-current-label gate] \
//	    [-threshold 0.25] [-critical REGEX] BENCH_pr*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"time"
)

// Benchmark and Run mirror tools/benchjson's recording schema.
type Benchmark struct {
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type Run struct {
	RecordedAt string               `json:"recorded_at"`
	Go         string               `json:"go,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// defaultCritical is the perf-critical set the gate protects: label-model
// training, fused LF execution, serve prediction, and the incremental path.
const defaultCritical = `^(BenchmarkP1_SamplingFreeVsGibbs|BenchmarkP2_PipelineThroughput|BenchmarkServePredict$|BenchmarkExecuteLFs|BenchmarkIncremental)`

type options struct {
	current      string
	currentLabel string
	threshold    float64
	critical     string
	baselines    []string
	out          io.Writer
}

func main() {
	o := options{out: os.Stdout}
	flag.StringVar(&o.current, "current", "", "benchjson file holding the fresh run to check (required)")
	flag.StringVar(&o.currentLabel, "current-label", "", "label inside -current to check (default: its only label)")
	flag.Float64Var(&o.threshold, "threshold", 0.25, "maximum tolerated ns/op regression, as a fraction")
	flag.StringVar(&o.critical, "critical", defaultCritical, "regexp selecting the perf-critical benchmarks")
	flag.Parse()
	o.baselines = flag.Args()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

// observation is one baseline measurement of a benchmark, tagged with where
// and when it was recorded.
type observation struct {
	bench Benchmark
	at    time.Time
	src   string // "file:label", for failure messages
}

func run(o options) error {
	if o.current == "" {
		return fmt.Errorf("-current is required")
	}
	if len(o.baselines) == 0 {
		return fmt.Errorf("no baseline trajectory files given")
	}
	critical, err := regexp.Compile(o.critical)
	if err != nil {
		return fmt.Errorf("-critical: %v", err)
	}

	cur, err := loadRecording(o.current)
	if err != nil {
		return fmt.Errorf("%s: %v", o.current, err)
	}
	label := o.currentLabel
	if label == "" {
		if len(cur) != 1 {
			return fmt.Errorf("%s holds %d labels; pick one with -current-label", o.current, len(cur))
		}
		for l := range cur {
			label = l
		}
	}
	curRun, ok := cur[label]
	if !ok {
		return fmt.Errorf("%s has no label %q", o.current, label)
	}

	// The baseline for each benchmark is its most recent observation across
	// the whole trajectory: the gate compares against where performance IS,
	// not against the oldest (usually slowest) recording.
	best := map[string]observation{}
	for _, path := range o.baselines {
		runs, err := loadRecording(path)
		if err != nil {
			// Not every committed BENCH_ file is a benchjson recording.
			fmt.Fprintf(o.out, "note: skipping %s: %v\n", path, err)
			continue
		}
		for l, r := range runs {
			at, _ := time.Parse(time.RFC3339, r.RecordedAt)
			for name, bm := range r.Benchmarks {
				if bm.NsPerOp <= 0 {
					continue
				}
				if prev, seen := best[name]; !seen || at.After(prev.at) {
					best[name] = observation{bench: bm, at: at, src: path + ":" + l}
				}
			}
		}
	}
	if len(best) == 0 {
		return fmt.Errorf("no usable baseline benchmarks in %v", o.baselines)
	}

	names := make([]string, 0, len(curRun.Benchmarks))
	for name := range curRun.Benchmarks {
		if critical.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmark in %s:%s matches the critical set %q", o.current, label, o.critical)
	}

	var regressions int
	for _, name := range names {
		bm := curRun.Benchmarks[name]
		base, seen := best[name]
		if !seen {
			fmt.Fprintf(o.out, "new:  %s %.0f ns/op (no baseline yet — not gated)\n", name, bm.NsPerOp)
			continue
		}
		delta := (bm.NsPerOp - base.bench.NsPerOp) / base.bench.NsPerOp
		if delta > o.threshold {
			regressions++
			fmt.Fprintf(o.out, "FAIL: %s regressed %+.1f%%: baseline %.0f ns/op (%s), current %.0f ns/op (limit +%.0f%%)\n",
				name, delta*100, base.bench.NsPerOp, base.src, bm.NsPerOp, o.threshold*100)
			continue
		}
		fmt.Fprintf(o.out, "ok:   %s %+.1f%% vs %s (%.0f -> %.0f ns/op)\n",
			name, delta*100, base.src, base.bench.NsPerOp, bm.NsPerOp)
	}
	if regressions > 0 {
		return fmt.Errorf("%d perf-critical benchmark(s) regressed more than %.0f%%", regressions, o.threshold*100)
	}
	return nil
}

// loadRecording parses a benchjson results file: a map of run labels to
// recordings. Labels whose value is not a recording are dropped; a file with
// no recordings at all (e.g. a load-generator report) is an error so the
// caller can skip it loudly.
func loadRecording(path string) (map[string]Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("not a benchjson recording: %v", err)
	}
	out := map[string]Run{}
	for label, msg := range raw {
		var r Run
		if err := json.Unmarshal(msg, &r); err != nil || len(r.Benchmarks) == 0 {
			continue
		}
		out[label] = r
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("not a benchjson recording (no labeled benchmark runs)")
	}
	return out, nil
}
