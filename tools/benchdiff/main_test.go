package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecording(t *testing.T, dir, name string, runs map[string]Run) string {
	t.Helper()
	data, err := json.Marshal(runs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(at string, benches map[string]float64) Run {
	r := Run{RecordedAt: at, Benchmarks: map[string]Benchmark{}}
	for name, ns := range benches {
		r.Benchmarks[name] = Benchmark{Iterations: 10, NsPerOp: ns}
	}
	return r
}

// TestGateFailsOnInjectedRegression is the acceptance check: a doctored
// current run 2x slower than the committed baseline must fail, naming the
// benchmark, both numbers, and the delta.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeRecording(t, dir, "BENCH_pr8.json", map[string]Run{
		"pr8": rec("2026-08-01T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 100_000_000,
		}),
	})
	cur := writeRecording(t, dir, "gate.json", map[string]Run{
		"gate": rec("2026-08-07T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 200_000_000,
		}),
	})

	var out bytes.Buffer
	err := run(options{current: cur, threshold: 0.25, critical: defaultCritical,
		baselines: []string{base}, out: &out})
	if err == nil {
		t.Fatalf("gate passed a 2x regression; output:\n%s", out.String())
	}
	for _, want := range []string{"BenchmarkExecuteLFs/Batch", "+100.0%", "100000000", "200000000"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("failure output missing %q:\n%s", want, out.String())
		}
	}
}

// TestGatePassesWithinThreshold: a 10% slowdown under a 25% threshold is not
// a regression, and an improvement certainly is not.
func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeRecording(t, dir, "BENCH_pr8.json", map[string]Run{
		"pr8": rec("2026-08-01T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch":                    100_000_000,
			"BenchmarkP1_SamplingFreeVsGibbs/SamplingFree": 20_000_000,
		}),
	})
	cur := writeRecording(t, dir, "gate.json", map[string]Run{
		"gate": rec("2026-08-07T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch":                    110_000_000,
			"BenchmarkP1_SamplingFreeVsGibbs/SamplingFree": 15_000_000,
		}),
	})
	var out bytes.Buffer
	if err := run(options{current: cur, threshold: 0.25, critical: defaultCritical,
		baselines: []string{base}, out: &out}); err != nil {
		t.Fatalf("gate failed within threshold: %v\n%s", err, out.String())
	}
}

// TestGateUsesMostRecentBaseline: the trajectory's newest observation is the
// baseline, so a benchmark that legitimately slowed in an accepted PR is
// gated against its accepted level, not its all-time best.
func TestGateUsesMostRecentBaseline(t *testing.T) {
	dir := t.TempDir()
	older := writeRecording(t, dir, "BENCH_pr4.json", map[string]Run{
		"pr4": rec("2026-06-01T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 50_000_000, // all-time best
		}),
	})
	newer := writeRecording(t, dir, "BENCH_pr8.json", map[string]Run{
		"pr8": rec("2026-08-01T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 100_000_000, // accepted level
		}),
	})
	cur := writeRecording(t, dir, "gate.json", map[string]Run{
		"gate": rec("2026-08-07T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 110_000_000, // +120% vs pr4, +10% vs pr8
		}),
	})
	var out bytes.Buffer
	if err := run(options{current: cur, threshold: 0.25, critical: defaultCritical,
		baselines: []string{older, newer}, out: &out}); err != nil {
		t.Fatalf("gate compared against a stale baseline: %v\n%s", err, out.String())
	}
}

// TestGateToleratesForeignTrajectoryFiles: the repository commits non-benchjson
// reports under the same BENCH_ prefix (load-generator output); the gate must
// skip them with a note, not choke.
func TestGateToleratesForeignTrajectoryFiles(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "BENCH_pr9.json")
	if err := os.WriteFile(foreign, []byte(`{"bench":"drybell-loadgen","capacity_rps":11238.4,"points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := writeRecording(t, dir, "BENCH_pr8.json", map[string]Run{
		"pr8": rec("2026-08-01T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 100_000_000,
		}),
	})
	cur := writeRecording(t, dir, "gate.json", map[string]Run{
		"gate": rec("2026-08-07T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 100_000_000,
		}),
	})
	var out bytes.Buffer
	if err := run(options{current: cur, threshold: 0.25, critical: defaultCritical,
		baselines: []string{foreign, base}, out: &out}); err != nil {
		t.Fatalf("foreign file broke the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skipping") {
		t.Errorf("no skip note for the foreign file:\n%s", out.String())
	}
}

// TestGateNewBenchmarkNotGated: a benchmark with no baseline anywhere in the
// trajectory is reported but cannot fail the gate.
func TestGateNewBenchmarkNotGated(t *testing.T) {
	dir := t.TempDir()
	base := writeRecording(t, dir, "BENCH_pr8.json", map[string]Run{
		"pr8": rec("2026-08-01T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch": 100_000_000,
		}),
	})
	cur := writeRecording(t, dir, "gate.json", map[string]Run{
		"gate": rec("2026-08-07T00:00:00Z", map[string]float64{
			"BenchmarkExecuteLFs/Batch":            100_000_000,
			"BenchmarkIncremental/Delta10pctTrain": 5_000_000,
		}),
	})
	var out bytes.Buffer
	if err := run(options{current: cur, threshold: 0.25, critical: defaultCritical,
		baselines: []string{base}, out: &out}); err != nil {
		t.Fatalf("new benchmark failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new:") {
		t.Errorf("new benchmark not reported:\n%s", out.String())
	}
}

// TestGateRejectsUselessInputs: missing flags, ambiguous labels, and a
// critical set matching nothing are loud errors, not silent passes.
func TestGateRejectsUselessInputs(t *testing.T) {
	dir := t.TempDir()
	base := writeRecording(t, dir, "BENCH_pr8.json", map[string]Run{
		"pr8": rec("2026-08-01T00:00:00Z", map[string]float64{"BenchmarkExecuteLFs/Batch": 1}),
	})
	two := writeRecording(t, dir, "two.json", map[string]Run{
		"a": rec("2026-08-01T00:00:00Z", map[string]float64{"BenchmarkExecuteLFs/Batch": 1}),
		"b": rec("2026-08-02T00:00:00Z", map[string]float64{"BenchmarkExecuteLFs/Batch": 1}),
	})
	var out bytes.Buffer
	if err := run(options{baselines: []string{base}, out: &out}); err == nil {
		t.Error("missing -current accepted")
	}
	if err := run(options{current: base, out: &out}); err == nil {
		t.Error("missing baselines accepted")
	}
	if err := run(options{current: two, threshold: 0.25, critical: defaultCritical,
		baselines: []string{base}, out: &out}); err == nil {
		t.Error("ambiguous multi-label current accepted without -current-label")
	}
	if err := run(options{current: two, currentLabel: "a", threshold: 0.25,
		critical: "^BenchmarkNothingMatches$", baselines: []string{base}, out: &out}); err == nil {
		t.Error("critical set matching nothing accepted")
	}
}
