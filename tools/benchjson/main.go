// Command benchjson converts `go test -bench` output on stdin into a JSON
// record and merges it into a results file, keyed by a run label. It is the
// recorder behind `make bench`: repeated runs accumulate labeled entries
// (e.g. "baseline", "pr4") in one file, giving the repository a durable
// performance trajectory instead of numbers lost in terminal scrollback.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH.json -label pr4
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every additional unit-tagged value the benchmark
	// reported: B/op, allocs/op, and custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled recording.
type Run struct {
	RecordedAt string               `json:"recorded_at"`
	Go         string               `json:"go,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "results file to merge into")
	label := flag.String("label", "run", "label for this recording")
	flag.Parse()
	if err := run(*out, *label); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(outPath, label string) error {
	rec := Run{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the tool can sit behind a pipe
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"):
		case strings.HasPrefix(line, "Benchmark"):
			name, bm, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			// Repeated observations of one benchmark (go test -count=N)
			// collapse to the fastest — the standard noise-floor estimator
			// for CPU-bound benchmarks on shared machines.
			if prev, dup := rec.Benchmarks[name]; !dup || bm.NsPerOp < prev.NsPerOp {
				rec.Benchmarks[name] = bm
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	all := map[string]json.RawMessage{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", outPath, err)
		}
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	all[label] = raw
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s\n", len(rec.Benchmarks), label, outPath)
	return nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   	  2	 159 ns/op	 12557 steps/s	 84 B/op	 3 allocs/op
func parseBenchLine(line string) (string, Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Benchmark{}, false
	}
	// Strip go test's -GOMAXPROCS suffix ("Name-8") so recordings from
	// machines with different core counts key identically and stay
	// comparable across runs.
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", Benchmark{}, false
	}
	bm := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			bm.NsPerOp = val
		} else {
			bm.Metrics[unit] = val
		}
	}
	if len(bm.Metrics) == 0 {
		bm.Metrics = nil
	}
	return name, bm, true
}
