package main

import (
	"strings"
	"testing"
)

func TestPassingStreamIsQuiet(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"output","Package":"p","Test":"TestA","Output":"=== RUN TestA\n"}`,
		`{"Action":"output","Package":"p","Test":"TestA","Output":"noisy log line\n"}`,
		`{"Action":"pass","Package":"p","Test":"TestA","Elapsed":0.01}`,
		`{"Action":"pass","Package":"p","Elapsed":0.5}`,
	}, "\n")
	var out strings.Builder
	failed, err := run(strings.NewReader(in), &out)
	if err != nil || failed {
		t.Fatalf("failed=%v err=%v", failed, err)
	}
	if strings.Contains(out.String(), "noisy") {
		t.Errorf("passing test's output leaked into the log:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok   p") {
		t.Errorf("no package summary line:\n%s", out.String())
	}
}

func TestFailureReplaysBufferedOutputAndFails(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"output","Package":"p","Test":"TestB","Output":"the crucial diagnostic\n"}`,
		`{"Action":"fail","Package":"p","Test":"TestB","Elapsed":0.2}`,
		`{"Action":"fail","Package":"p","Elapsed":0.3}`,
	}, "\n")
	var out strings.Builder
	failed, err := run(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("failing stream reported success")
	}
	if !strings.Contains(out.String(), "FAIL p.TestB") {
		t.Errorf("no failure line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "the crucial diagnostic") {
		t.Errorf("buffered output not replayed on failure:\n%s", out.String())
	}
}

func TestBuildFailureFails(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"build-output","Package":"p","Output":"p/x.go:3:1: syntax error\n"}`,
		`{"Action":"build-fail","Package":"p"}`,
	}, "\n")
	var out strings.Builder
	failed, err := run(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("build failure reported success")
	}
	if !strings.Contains(out.String(), "syntax error") {
		t.Errorf("build diagnostics not shown:\n%s", out.String())
	}
}

func TestNonJSONLinesPassThrough(t *testing.T) {
	var out strings.Builder
	failed, err := run(strings.NewReader("plain toolchain noise\n"), &out)
	if err != nil || failed {
		t.Fatalf("failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "plain toolchain noise") {
		t.Errorf("non-JSON line dropped:\n%s", out.String())
	}
}
