// Command testtap renders a `go test -json` event stream as quiet,
// human-readable CI output. It sits at the end of the artifact tee:
//
//	go test -race -json ./... 2>&1 | tee test.ndjson | testtap
//
// The raw NDJSON lands in the artifact file for post-hoc debugging of flaky
// schedule-dependent failures; testtap keeps the live log readable — one
// line per package, with a test's full buffered output replayed only when it
// fails. -json implies -v, so printing everything would flood the log with
// every passing test's chatter.
//
// testtap exits non-zero when any test or package fails (including build
// failures), so a failing run fails the CI step even under a shell without
// pipefail.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// event is the go test -json record (cmd/test2json).
type event struct {
	Action  string  `json:"Action"`
	Package string  `json:"Package"`
	Test    string  `json:"Test"`
	Elapsed float64 `json:"Elapsed"`
	Output  string  `json:"Output"`
}

func main() {
	failed, err := run(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "testtap: %v\n", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer) (failed bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Output buffers per package/test, replayed only on failure.
	buf := map[string][]string{}
	key := func(e event) string { return e.Package + "\x00" + e.Test }

	for sc.Scan() {
		line := sc.Bytes()
		var e event
		if len(line) == 0 || line[0] != '{' || json.Unmarshal(line, &e) != nil {
			// Not an event — tooling noise or a pre-JSON build error from an
			// older toolchain. Pass it through verbatim.
			fmt.Fprintln(w, string(line))
			continue
		}
		switch e.Action {
		case "output", "build-output":
			buf[key(e)] = append(buf[key(e)], e.Output)
		case "pass":
			delete(buf, key(e))
			if e.Test == "" {
				fmt.Fprintf(w, "ok   %s %.2fs\n", e.Package, e.Elapsed)
			}
		case "skip":
			delete(buf, key(e))
			if e.Test == "" {
				fmt.Fprintf(w, "skip %s\n", e.Package)
			}
		case "fail", "build-fail":
			failed = true
			name := e.Package
			if e.Test != "" {
				name = e.Package + "." + e.Test
			}
			fmt.Fprintf(w, "FAIL %s\n", name)
			for _, out := range buf[key(e)] {
				fmt.Fprint(w, "  "+strings.TrimRight(out, "\n")+"\n")
			}
			delete(buf, key(e))
		}
	}
	if err := sc.Err(); err != nil {
		return failed, err
	}
	return failed, nil
}
