// Package locktest is the lockcheck analyzer's golden fixture: fields
// annotated '// guarded by <mu>' must only be touched with that mutex held.
package locktest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type broken struct {
	// guarded by missing
	n int // want `field is guarded by "missing", but the struct has no such field`
}

// Good holds the lock across the access; the deferred unlock keeps it held
// to function exit.
func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want `read of c.n without holding c.mu`
}

func (c *counter) BadWrite() {
	c.n = 1 // want `write of c.n without holding c.mu`
}

// InlineUnlock: the mutex stops being held at the inline Unlock.
func (c *counter) InlineUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `write of c.n without holding c.mu`
}

// addLocked runs with the caller's lock held; the "Locked" suffix opts out.
func (c *counter) addLocked() {
	c.n++
}

// Annotated accesses are structurally safe and say why.
func (c *counter) Annotated() int {
	return c.n //drybellvet:locked — single-threaded construction in this fixture
}

// Spawn: a goroutine body starts with nothing held, even when the spawner
// holds the lock.
func (c *counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write of c.n without holding c.mu`
	}()
	c.n++
}

// Branchy: a mutex held on only one branch is not held after the merge.
func (c *counter) Branchy(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `write of c.n without holding c.mu`
	if b {
		c.mu.Unlock()
	}
}

// EarlyReturn: an unlocking branch that returns does not strip the lock
// from the fallthrough path.
func (c *counter) EarlyReturn(b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

type gauge struct {
	rw sync.RWMutex
	v  int // guarded by rw
}

// Read is fine under the shared lock.
func (g *gauge) Read() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

// WriteUnderRLock: writes need the exclusive lock.
func (g *gauge) WriteUnderRLock() {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.v = 1 // want `write to g.v holds only g.rw.RLock; writes need the exclusive lock`
}

// WriteUnderLock is fine.
func (g *gauge) WriteUnderLock() {
	g.rw.Lock()
	defer g.rw.Unlock()
	g.v = 2
}
