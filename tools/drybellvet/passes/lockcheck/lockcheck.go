// Package lockcheck enforces the coordinator/worker locking discipline.
// Struct fields carry their invariant as a machine-readable comment:
//
//	type taskState struct {
//		mu   sync.Mutex
//		done bool // guarded by mu
//	}
//
// Within the declaring package, every selector access to a guarded field
// must happen while the named mutex of the same receiver is held in the
// same function: between X.mu.Lock() (or RLock for reads) and the matching
// unlock, with deferred unlocks keeping the mutex held to function exit.
// Functions that are documented to run with the lock already held opt out
// by a "Locked" name suffix or a //drybellvet:locked annotation; accesses
// that are safe for structural reasons the checker cannot see
// (single-threaded construction, post-join reads) are annotated
// //drybellvet:locked at the access with a justification.
//
// The analysis is flow-ordered but intra-procedural and syntactic: branches
// merge conservatively (a mutex survives an if/else only if held on both
// paths, loop bodies do not leak lock state), writes under RLock are
// reported, and a goroutine body starts with nothing held.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/drybellvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated '// guarded by <mu>' may only be accessed with that mutex held",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

const (
	heldNone = iota
	heldShared
	heldExclusive
)

type checker struct {
	pass *analysis.Pass
	// guards maps each annotated field object to the mutex field name that
	// protects it.
	guards map[*types.Var]string
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, guards: make(map[*types.Var]string)}
	for _, f := range pass.Files {
		c.collectAnnotations(f)
	}
	if len(c.guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") || pass.Suppressed(fn.Pos(), "locked") {
				continue // documented to run with the caller's lock held
			}
			held := make(map[string]int)
			c.block(fn.Body.List, held)
		}
	}
	return nil
}

// collectAnnotations records every '// guarded by <mu>' field in f and
// validates that the named mutex is a sibling field.
func (c *checker) collectAnnotations(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		fieldNames := make(map[string]bool)
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				fieldNames[name.Name] = true
			}
		}
		for _, field := range st.Fields.List {
			mu := guardAnnotation(field)
			if mu == "" {
				continue
			}
			if !fieldNames[mu] {
				c.pass.Reportf(field.Pos(), "field is guarded by %q, but the struct has no such field", mu)
				continue
			}
			for _, name := range field.Names {
				if v, ok := c.pass.Info.Defs[name].(*types.Var); ok {
					c.guards[v] = mu
				}
			}
		}
		return true
	})
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// block simulates one statement list, mutating held in source order.
func (c *checker) block(stmts []ast.Stmt, held map[string]int) {
	for _, s := range stmts {
		c.stmt(s, held)
	}
}

func copyHeld(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// merge keeps a mutex only as strongly as both branches hold it.
func merge(a, b map[string]int) map[string]int {
	out := make(map[string]int)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				va = vb
			}
			if va > heldNone {
				out[k] = va
			}
		}
	}
	return out
}

// terminates reports whether a statement list cannot fall through its end.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, held map[string]int) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if c.lockOp(s.X, held, false) {
			return
		}
		c.exprs(held, false, s.X)
	case *ast.DeferStmt:
		if c.lockOp(s.Call, held, true) {
			return
		}
		c.exprs(held, false, s.Call)
	case *ast.AssignStmt:
		c.exprs(held, false, s.Rhs...)
		c.exprs(held, true, s.Lhs...)
	case *ast.IncDecStmt:
		c.exprs(held, true, s.X)
	case *ast.SendStmt:
		c.exprs(held, false, s.Chan, s.Value)
	case *ast.ReturnStmt:
		c.exprs(held, false, s.Results...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(held, false, vs.Values...)
				}
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine runs without this function's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.exprs(held, false, s.Call.Args...)
			c.block(lit.Body.List, make(map[string]int))
		} else {
			c.exprs(held, false, s.Call)
		}
	case *ast.BlockStmt:
		c.block(s.List, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.IfStmt:
		c.stmt(s.Init, held)
		c.exprs(held, false, s.Cond)
		thenHeld := copyHeld(held)
		c.block(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		if s.Else != nil {
			c.stmt(s.Else, elseHeld)
		}
		var post map[string]int
		switch {
		case terminates(s.Body.List):
			post = elseHeld // the then-branch never rejoins
		case s.Else != nil && elseTerminates(s.Else):
			post = thenHeld
		default:
			post = merge(thenHeld, elseHeld)
		}
		replace(held, post)
	case *ast.ForStmt:
		c.stmt(s.Init, held)
		c.exprs(held, false, s.Cond)
		bodyHeld := copyHeld(held)
		c.block(s.Body.List, bodyHeld)
		c.stmt(s.Post, bodyHeld)
	case *ast.RangeStmt:
		c.exprs(held, false, s.X)
		bodyHeld := copyHeld(held)
		c.block(s.Body.List, bodyHeld)
	case *ast.SwitchStmt:
		c.stmt(s.Init, held)
		c.exprs(held, false, s.Tag)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				caseHeld := copyHeld(held)
				c.exprs(caseHeld, false, cc.List...)
				c.block(cc.Body, caseHeld)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, held)
		c.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				caseHeld := copyHeld(held)
				c.block(cc.Body, caseHeld)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				caseHeld := copyHeld(held)
				c.stmt(cc.Comm, caseHeld)
				c.block(cc.Body, caseHeld)
			}
		}
	default:
		// Remaining statements (empty, etc.) carry no expressions we check.
	}
}

func elseTerminates(s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return terminates(b.List)
	}
	return false
}

func replace(dst, src map[string]int) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// lockOp updates held if e is a Lock/RLock/Unlock/RUnlock call on a sync
// mutex, reporting deferred-vs-inline semantics, and reports whether it
// consumed the expression.
func (c *checker) lockOp(e ast.Expr, held map[string]int, deferred bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	key := types.ExprString(sel.X)
	switch obj.Name() {
	case "Lock", "TryLock":
		held[key] = heldExclusive
	case "RLock":
		held[key] = heldShared
	case "Unlock", "RUnlock":
		if !deferred {
			delete(held, key)
		}
		// A deferred unlock keeps the mutex held until function exit.
	default:
		return false
	}
	return true
}

// exprs checks every guarded-field access inside the given expressions.
// When write is true, top-level selector expressions are treated as writes
// (assignment targets); reads nested inside them are still reads.
func (c *checker) exprs(held map[string]int, write bool, es ...ast.Expr) {
	for _, e := range es {
		if e == nil {
			continue
		}
		c.expr(e, held, write)
	}
}

func (c *checker) expr(e ast.Expr, held map[string]int, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		c.checkAccess(e, held, write)
		c.expr(e.X, held, false)
	case *ast.UnaryExpr:
		// Taking a guarded field's address lets it escape the lock; treat
		// like a write so it demands the exclusive lock.
		c.expr(e.X, held, write || e.Op.String() == "&")
	case *ast.StarExpr:
		c.expr(e.X, held, write)
	case *ast.IndexExpr:
		c.expr(e.X, held, write)
		c.expr(e.Index, held, false)
	case *ast.SliceExpr:
		c.expr(e.X, held, write)
		c.exprs(held, false, e.Low, e.High, e.Max)
	case *ast.CallExpr:
		// A method call on a guarded field reads it; mutating methods on
		// guarded values are beyond a syntactic checker.
		c.expr(e.Fun, held, false)
		c.exprs(held, false, e.Args...)
	case *ast.ParenExpr:
		c.expr(e.X, held, write)
	case *ast.BinaryExpr:
		c.exprs(held, false, e.X, e.Y)
	case *ast.KeyValueExpr:
		c.exprs(held, false, e.Value)
	case *ast.CompositeLit:
		c.exprs(held, false, e.Elts...)
	case *ast.TypeAssertExpr:
		c.expr(e.X, held, false)
	case *ast.FuncLit:
		// A literal's body sees the current lock state only if it runs
		// inline on this goroutine; a conservative copy covers deferred and
		// immediately-invoked literals, while `go` bodies are reached via
		// GoStmt with the same approximation (annotate when it misleads).
		c.block(e.Body.List, copyHeld(held))
	default:
		// Idents and literals: nothing to check.
	}
}

// checkAccess reports a guarded-field access without its mutex.
func (c *checker) checkAccess(sel *ast.SelectorExpr, held map[string]int, write bool) {
	var field *types.Var
	if s, ok := c.pass.Info.Selections[sel]; ok {
		field, _ = s.Obj().(*types.Var)
	}
	if field == nil {
		if v, ok := c.pass.Info.Uses[sel.Sel].(*types.Var); ok {
			field = v
		}
	}
	if field == nil {
		return
	}
	mu, ok := c.guards[field]
	if !ok {
		return
	}
	key := types.ExprString(sel.X) + "." + mu
	state := held[key]
	if state == heldExclusive || (state == heldShared && !write) {
		return
	}
	if c.pass.Suppressed(sel.Pos(), "locked") {
		return
	}
	verb := "read"
	if write {
		verb = "write"
	}
	if state == heldShared && write {
		c.pass.Reportf(sel.Pos(), "write to %s.%s holds only %s.RLock; writes need the exclusive lock", types.ExprString(sel.X), sel.Sel.Name, key)
		return
	}
	c.pass.Reportf(sel.Pos(), "%s of %s.%s without holding %s (field is '// guarded by %s'; annotate //drybellvet:locked with a justification if the access is structurally safe)", verb, types.ExprString(sel.X), sel.Sel.Name, key, mu)
}
