package lockcheck

import (
	"testing"

	"repro/tools/drybellvet/analysis/analysistest"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "locktest")
}
