// Package determ is the determinism analyzer's golden fixture: each
// construct below either draws a diagnostic (validated by the trailing
// `// want` pattern) or proves an exemption holds.
package determ

import (
	"math/rand"
	"time"
)

// MapRanges covers the range-over-map rule and its //drybellvet:ordered
// allowlist.
func MapRanges(m map[string]int, s []int) int {
	total := 0
	for _, v := range m { // want `range over map has nondeterministic iteration order`
		total += v
	}
	//drybellvet:ordered — commutative sum, order-insensitive
	for _, v := range m {
		total += v
	}
	for _, v := range s { // slices iterate in order: fine
		total += v
	}
	return total
}

// WallClock covers time.Now and its //drybellvet:wallclock allowlist.
func WallClock() int64 {
	bad := time.Now() // want `time.Now on a deterministic output path`
	ok := time.Now()  //drybellvet:wallclock — observability timing only
	return bad.Unix() + ok.Unix()
}

// GlobalRand covers the process-seeded math/rand globals, the seeded
// constructor exemption, and the //drybellvet:wallclock allowlist.
func GlobalRand() uint64 {
	bad := rand.Uint64() // want `global math/rand.Uint64 is seeded per process`
	r := rand.New(rand.NewSource(7))
	good := r.Uint64()       // methods on an explicitly seeded generator: fine
	jitter := rand.Int63n(3) //drybellvet:wallclock — retry jitter, not artifact bytes
	return bad + good + uint64(jitter)
}
