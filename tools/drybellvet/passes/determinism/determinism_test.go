package determinism

import (
	"testing"

	"repro/tools/drybellvet/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	defer func(s []string) { Scope = s }(Scope)
	Scope = nil // the fixture package is outside the repo's scope list
	analysistest.Run(t, "testdata", Analyzer, "determ")
}
