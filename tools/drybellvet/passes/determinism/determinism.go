// Package determinism flags nondeterminism sources in the packages whose
// output must be byte-identical run over run: the artifact encoders, shard
// writers, report builders, and the distributed runtime (the PR 5
// exactly-once / byte-identical-labels contract).
//
// Three constructs are reported:
//
//   - `range` over a map: iteration order is randomized per run, so any
//     order-sensitive consumption of the loop body diverges. Proven-sorted
//     or order-insensitive loops are allowlisted with //drybellvet:ordered.
//   - time.Now: wall-clock values must never reach artifacts. Timing that
//     feeds only observability (durations in reports, straggler deadlines)
//     is allowlisted with //drybellvet:wallclock.
//   - math/rand package-level functions (rand.Uint64, rand.Intn, ...): the
//     global generator is seeded randomly at process start. Explicitly
//     seeded generators (rand.New(rand.NewSource(seed))) are fine and not
//     flagged; a justified global use is allowlisted with
//     //drybellvet:wallclock.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/tools/drybellvet/analysis"
)

// Scope limits the check to the packages that write artifacts, shards, and
// reports. Tests override it.
var Scope = []string{
	"repro/internal/labelmodel",
	"repro/internal/lf",
	"repro/internal/dfs",
	"repro/internal/mapreduce",
	"repro/internal/recordio",
	"repro/internal/serving",
	"repro/internal/experiments",
	"repro/internal/core",
	"repro/pkg/drybell",
	"repro/pkg/drybell/lf",
}

// randConstructors are the math/rand functions that build explicitly seeded
// generators; everything else at package level draws from the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flags map iteration, time.Now, and global math/rand in deterministic output paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.InScope(Scope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if pass.Suppressed(n.Pos(), "ordered") {
					return true
				}
				pass.Reportf(n.Pos(), "range over map has nondeterministic iteration order on a deterministic output path (sort the keys or annotate //drybellvet:ordered)")
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				sig, ok := obj.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				switch obj.Pkg().Path() {
				case "time":
					if obj.Name() == "Now" && !pass.Suppressed(n.Pos(), "wallclock") {
						pass.Reportf(n.Pos(), "time.Now on a deterministic output path (derive from inputs or annotate //drybellvet:wallclock)")
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[obj.Name()] && !pass.Suppressed(n.Pos(), "wallclock") {
						pass.Reportf(n.Pos(), "global math/rand.%s is seeded per process; use a seeded rand.New(rand.NewSource(seed)) or annotate //drybellvet:wallclock", obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
