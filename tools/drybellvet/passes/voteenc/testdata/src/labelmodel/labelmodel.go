// Package labelmodel is the voteenc fixture's stand-in for the real
// repro/internal/labelmodel: a Label vote type plus the checked encoder,
// whose own internals carry the //drybellvet:rawvote allowlist marker.
package labelmodel

import "fmt"

// Label is one labeling-function vote.
type Label int8

// VoteByte is the checked encoder: the only sanctioned Label-to-byte
// conversion.
func VoteByte(v Label) (byte, error) {
	if v < -1 || v > 1 {
		return 0, fmt.Errorf("invalid vote %d", v)
	}
	return byte(v), nil //drybellvet:rawvote — the checked encoder's own cast
}
