// Package voteenctest is the voteenc analyzer's golden fixture: every raw
// integer conversion of a labelmodel.Label is flagged unless it goes
// through the checked encoder or carries the rawvote allowlist marker.
package voteenctest

import "labelmodel"

func Encode(v labelmodel.Label) ([]byte, error) {
	bad := byte(v)  // want `raw byte\(label\) cast bypasses the checked vote encoder`
	bad2 := int8(v) // want `raw int8\(label\) cast bypasses the checked vote encoder`
	bad3 := int(v)  // want `raw int\(label\) cast bypasses the checked vote encoder`
	good, err := labelmodel.VoteByte(v)
	if err != nil {
		return nil, err
	}
	digest := uint64(v)          //drybellvet:rawvote — hash input, never persisted as a vote
	other := labelmodel.Label(2) // conversions *to* Label are not encoding
	wider := float64(v)          // non-integer targets cannot be vote bytes
	_ = other
	_ = wider
	_ = digest
	return []byte{bad, byte(bad2), byte(bad3), good}, nil
}
