// Package voteenc guards the vote byte encoding. A labelmodel.Label is a
// three-valued int8 (−1, 0, +1); everything persisted — columnar vote
// shards, per-function recordio shards, checkpointed map output — stores it
// as exactly one byte, and readers reject anything else. A raw byte(label)
// or uint8(label) cast silently truncates an out-of-range value into a
// different legal-looking vote, so every conversion from Label to an
// integer type must go through the checked encoder
// (labelmodel.VoteByte / labelmodel.EncodeVotes). The encoder's own
// internals are allowlisted with //drybellvet:rawvote.
package voteenc

import (
	"go/ast"
	"go/types"

	"repro/tools/drybellvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "voteenc",
	Doc:  "conversions from labelmodel.Label to integer bytes must go through the checked vote encoder",
	Run:  run,
}

// isLabelType reports whether t (after unwrapping aliases) is the named
// type Label of a package named labelmodel — matching both the real
// repro/internal/labelmodel.Label and the analysistest fixture.
func isLabelType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Label" && obj.Pkg() != nil && obj.Pkg().Name() == "labelmodel"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion is a CallExpr whose Fun denotes a type.
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || dst.Info()&types.IsInteger == 0 {
				return true
			}
			argType, ok := pass.Info.Types[call.Args[0]]
			if !ok || argType.Type == nil || !isLabelType(argType.Type) {
				return true
			}
			if pass.Suppressed(call.Pos(), "rawvote") {
				return true
			}
			pass.Reportf(call.Pos(), "raw %s(label) cast bypasses the checked vote encoder; use labelmodel.VoteByte/EncodeVotes (or annotate the encoder internals //drybellvet:rawvote)", dst.Name())
			return true
		})
	}
	return nil
}
