package voteenc

import (
	"testing"

	"repro/tools/drybellvet/analysis/analysistest"
)

func TestVoteEnc(t *testing.T) {
	// The fixture labelmodel package is analyzed too: its annotated encoder
	// internals must stay clean.
	analysistest.Run(t, "testdata", Analyzer, "labelmodel", "voteenctest")
}
