package ctxflow

import (
	"testing"

	"repro/tools/drybellvet/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	defer func(s []string) { LoopScope = s }(LoopScope)
	LoopScope = nil // the fixture package is outside the repo's scope list
	analysistest.Run(t, "testdata", Analyzer, "ctxflowtest")
}
