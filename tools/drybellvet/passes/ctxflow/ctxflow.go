// Package ctxflow enforces the PR 1 cancellation contract:
//
//   - A function that receives a context.Context must thread it through: a
//     call to context.Background() or context.TODO() inside such a function
//     severs cancellation and is reported. Intentional detachment (a
//     background task that must outlive the request) is allowlisted with
//     //drybellvet:detached.
//   - In the engine packages (internal/lf, internal/mapreduce,
//     internal/core) the per-record loops must stay cancelable: an
//     outermost loop that calls functions but never touches a context —
//     neither polling ctx.Err()/ctx.Done() nor passing ctx to a callee — is
//     reported. Bounded per-row/per-field loops with no cancellation point
//     are allowlisted with //drybellvet:tightloop.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/tools/drybellvet/analysis"
)

// LoopScope limits the per-record-loop rule to the engine packages named by
// the cancellation contract. The Background/TODO rule applies everywhere.
var LoopScope = []string{
	"repro/internal/lf",
	"repro/internal/mapreduce",
	"repro/internal/core",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context must flow: no Background/TODO inside ctx functions; per-record engine loops must poll ctx",
	Run:  run,
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasContext reports whether the function type receives a context — either
// a context.Context parameter or a parameter whose (pointed-to) struct
// carries a context.Context field, like mapreduce.TaskContext.Ctx.
func hasContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) {
			return true
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for j := 0; j < st.NumFields(); j++ {
				if isContextType(st.Field(j).Type()) {
					return true
				}
			}
		}
	}
	return false
}

// carriesContext reports whether t is a (pointer-to) struct with a
// context.Context field — a cancellation carrier like *mapreduce.TaskContext.
func carriesContext(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for j := 0; j < st.NumFields(); j++ {
		if isContextType(st.Field(j).Type()) {
			return true
		}
	}
	return false
}

// usesContext reports whether the code inside n can observe cancellation:
// it mentions an expression of context.Context type (ctx.Err(), ctx.Done(),
// passing ctx to a callee, a TaskContext.Ctx selector) or passes a
// cancellation-carrying struct to a call.
func usesContext(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if tv, ok := pass.Info.Types[arg]; ok && tv.Type != nil && carriesContext(tv.Type) {
					found = true
					return false
				}
			}
		}
		if e, ok := m.(ast.Expr); ok {
			if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsSomething reports whether the loop body invokes any real function — a
// loop that only shuffles locals, converts types, or calls builtins
// (len, cap, append, ...) cannot block and needs no poll.
func callsSomething(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.Info.Types[call.Fun]; ok {
			if tv.IsType() || tv.IsBuiltin() {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

func isBackgroundOrTODO(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name(), true
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	loopsInScope := pass.InScope(LoopScope)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var sig *types.Signature
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					return true
				}
				body, sig = fn.Body, obj.Type().(*types.Signature)
			case *ast.FuncLit:
				tv, ok := pass.Info.Types[fn]
				if !ok {
					return true
				}
				s, ok := tv.Type.(*types.Signature)
				if !ok {
					return true
				}
				body, sig = fn.Body, s
			default:
				return true
			}
			if !hasContext(sig) {
				return true
			}
			checkCtxFunc(pass, body, loopsInScope)
			return true
		})
	}
	return nil
}

// checkCtxFunc applies both rules inside one context-receiving function
// body. Nested function literals are handled by their own visit (their
// signatures decide whether a context is available to them).
func checkCtxFunc(pass *analysis.Pass, body *ast.BlockStmt, loopsInScope bool) {
	analysis.WalkWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if name, ok := isBackgroundOrTODO(pass, nodeExpr(n)); ok {
			if !pass.Suppressed(n.Pos(), "detached") {
				pass.Reportf(n.Pos(), "context.%s() inside a function that already receives a context severs cancellation (pass the ctx or annotate //drybellvet:detached)", name)
			}
		}
		if !loopsInScope {
			return true
		}
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.RangeStmt:
			loopBody = l.Body
		case *ast.ForStmt:
			loopBody = l.Body
		default:
			return true
		}
		for _, outer := range stack {
			switch outer.(type) {
			case *ast.RangeStmt, *ast.ForStmt:
				return true // only outermost loops are charged with polling
			}
		}
		if !callsSomething(pass, loopBody) || usesContext(pass, loopBody) {
			return true
		}
		if pass.Suppressed(n.Pos(), "tightloop") {
			return true
		}
		pass.Reportf(n.Pos(), "per-record loop never polls ctx.Err() or passes ctx on; cancellation cannot reach it (poll ctx or annotate //drybellvet:tightloop)")
		return true
	})
}

// nodeExpr returns n as an expression, or nil.
func nodeExpr(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}
