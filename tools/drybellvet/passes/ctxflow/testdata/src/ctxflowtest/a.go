// Package ctxflowtest is the ctxflow analyzer's golden fixture covering the
// Background/TODO rule and the per-record loop polling rule.
package ctxflowtest

import "context"

func work() {}

func workCtx(ctx context.Context) { _ = ctx }

// Detach: a ctx-receiving function may not silently re-root its context.
func Detach(ctx context.Context) {
	_ = context.Background() // want `context.Background\(\) inside a function that already receives a context`
	_ = context.TODO()       // want `context.TODO\(\) inside a function that already receives a context`
	//drybellvet:detached — must outlive the request by design
	_ = context.Background()
	_ = ctx
}

// Root has no ctx parameter, so minting a root context is its job.
func Root() context.Context {
	return context.Background()
}

// Loops covers the per-record loop rule: an outermost loop that calls
// functions must observe cancellation one way or another.
func Loops(ctx context.Context, recs []int, strs []string) error {
	for range recs { // want `per-record loop never polls ctx.Err\(\)`
		work()
	}
	for range recs { // polling ctx.Err makes the loop cancelable
		if err := ctx.Err(); err != nil {
			return err
		}
		work()
	}
	for range recs { // passing ctx to a callee is enough
		workCtx(ctx)
	}
	total := 0
	for _, s := range strs { // builtin-only loops cannot block: not charged
		total += len(s)
	}
	for _, r := range recs { // call-free loops are not charged
		total += r
	}
	//drybellvet:tightloop — bounded in-memory formatting loop
	for range recs {
		work()
	}
	return nil
}

// NoCtx receives no context, so its loops have nothing to poll.
func NoCtx(recs []int) {
	for range recs {
		work()
	}
}
