// Package dfspathtest is the dfspath analyzer's golden fixture: DFS keys
// must come from path.Join, never filepath or slash concatenation.
package dfspathtest

import (
	"path"
	"path/filepath"
)

func Keys(base, name string) []string {
	a := filepath.Join(base, name) // want `filepath.Join uses the host separator`
	b := filepath.FromSlash(name)  // want `filepath.FromSlash uses the host separator`
	c := filepath.ToSlash(name)    // want `filepath.ToSlash uses the host separator`
	d := base + "/" + name         // want `DFS key built by string concatenation with "/"`
	e := "/" + name                // want `DFS key built by string concatenation with "/"`
	f := path.Join(base, name)     // the sanctioned key builder
	g := base + name               // no slash literal involved: fine
	h := filepath.Join(base, name) //drybellvet:ospath — the local-disk backend's key-to-OS-path boundary
	i := base + "/" + name         //drybellvet:notapath — counter name, not a DFS key
	return []string{a, b, c, d, e, f, g, h, i}
}
