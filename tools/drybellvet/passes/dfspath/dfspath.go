// Package dfspath enforces how DFS keys are built. The runtime's
// _attempts/, _manifest/, and _shuffle/ layout — and every prefix-based
// List and cleanup over it — assumes forward-slash keys that are cleaned
// the way path.Join cleans them. Two constructs break that silently on
// other platforms or on untrimmed input:
//
//   - filepath.Join: uses the host separator. Only the local-disk DFS
//     backend may map keys to OS paths; such sites are allowlisted with
//     //drybellvet:ospath.
//   - "a" + "/" + "b" concatenation: skips cleaning, so doubled or
//     trailing slashes produce keys no reader ever lists. Slash-bearing
//     strings that are not DFS keys (counter names, list prefixes where a
//     trailing slash is load-bearing) are allowlisted with
//     //drybellvet:notapath.
package dfspath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/tools/drybellvet/analysis"
)

// Scope limits the check to the packages that mint or consume DFS keys.
var Scope = []string{
	"repro/internal/dfs",
	"repro/internal/mapreduce",
	"repro/internal/lf",
	"repro/internal/core",
	"repro/internal/serving",
	"repro/pkg/drybell",
}

var Analyzer = &analysis.Analyzer{
	Name: "dfspath",
	Doc:  "DFS keys must be built with path.Join or the mapreduce path helpers, never filepath.Join or slash concatenation",
	Run:  run,
}

// slashLiteral reports whether e is a string literal that is, begins with,
// or ends with a slash — the signature of hand-rolled path concatenation.
func slashLiteral(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil || s == "" {
		return false
	}
	return s == "/" || strings.HasPrefix(s, "/") || strings.HasSuffix(s, "/")
}

func run(pass *analysis.Pass) error {
	if !pass.InScope(Scope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "path/filepath" {
					return true
				}
				if obj.Name() != "Join" && obj.Name() != "FromSlash" && obj.Name() != "ToSlash" {
					return true
				}
				if pass.Suppressed(n.Pos(), "ospath") {
					return true
				}
				pass.Reportf(n.Pos(), "filepath.%s uses the host separator; DFS keys are forward-slash — use path.Join (or annotate the OS-path site //drybellvet:ospath)", obj.Name())
			case *ast.BinaryExpr:
				if n.Op != token.ADD {
					return true
				}
				tv, ok := pass.Info.Types[n]
				if !ok || tv.Type == nil {
					return true
				}
				basic, ok := tv.Type.Underlying().(*types.Basic)
				if !ok || basic.Info()&types.IsString == 0 {
					return true
				}
				if !slashLiteral(n.X) && !slashLiteral(n.Y) {
					return true
				}
				if pass.Suppressed(n.Pos(), "notapath") {
					return true
				}
				pass.Reportf(n.Pos(), `DFS key built by string concatenation with "/"; use path.Join so keys are cleaned (or annotate //drybellvet:notapath)`)
			}
			return true
		})
	}
	return nil
}
