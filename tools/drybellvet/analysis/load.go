package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go %v: decode: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types imports from compiler export data
// located with `go list -export`. Paths not seen up front (transitive
// dependencies demanded lazily by the gc importer) are resolved with an
// extra go list call and cached.
type exportImporter struct {
	dir     string
	exports map[string]string
	gc      types.Importer
}

// NewExportImporter returns an importer that satisfies imports from
// compiler export data located with `go list -export`, run in dir. It backs
// both the repo-wide driver and the analysistest stdlib resolution.
func NewExportImporter(fset *token.FileSet, dir string) types.Importer {
	return newExportImporter(fset, dir)
}

func newExportImporter(fset *token.FileSet, dir string) *exportImporter {
	e := &exportImporter{dir: dir, exports: make(map[string]string)}
	e.gc = importer.ForCompiler(fset, "gc", e.lookup)
	return e
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := e.exports[path]
	if !ok {
		pkgs, err := goList(e.dir, "list", "-export", "-json=ImportPath,Export", path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			e.exports[p.ImportPath] = p.Export
		}
		file = e.exports[path]
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.gc.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves the package patterns with the go tool and returns each
// matched package parsed and type-checked from source, with imports (module
// siblings included) satisfied from compiler export data — so a package
// that does not compile fails loudly here rather than being half-analyzed.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	targets, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	// One batched -export -deps walk warms the export map for the whole
	// dependency cone; the importer's lazy path stays as a fallback.
	imp := newExportImporter(fset, dir)
	depArgs := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	if deps, err := goList(dir, depArgs...); err == nil {
		for _, d := range deps {
			if d.Export != "" {
				imp.exports[d.ImportPath] = d.Export
			}
		}
	}

	var loaded []*LoadedPackage
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %v", t.ImportPath, err)
		}
		loaded = append(loaded, &LoadedPackage{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].Path < loaded[j].Path })
	return loaded, nil
}

// RunAnalyzers applies each analyzer to each package and returns every
// finding sorted by position. The returned strings are ready to print:
// "file:line:col: analyzer: message".
func RunAnalyzers(fset *token.FileSet, pkgs []*LoadedPackage, analyzers []*Analyzer) ([]string, error) {
	type finding struct {
		pos token.Position
		msg string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Path:     pkg.Path,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, finding{
					pos: fset.Position(d.Pos),
					msg: fmt.Sprintf("%s: %s", a.Name, d.Message),
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.msg < b.msg
	})
	out := make([]string, 0, len(findings))
	seen := make(map[string]bool)
	for _, f := range findings {
		line := fmt.Sprintf("%s:%d:%d: %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.msg)
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	return out, nil
}
