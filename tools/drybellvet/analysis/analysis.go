// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that drybellvet's checkers are
// written against. The repository builds with a zero-dependency go.mod, so
// the real framework is off the table; this package keeps the same shape
// (Analyzer, Pass, Diagnostic, an analysistest-style golden runner) so the
// checkers could be ported to the upstream API mechanically if the project
// ever grows a dependency budget.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one drybellvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph help text.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path ("repro/internal/lf", or the
	// testdata directory name under analysistest).
	Path string
	// Report records one finding. The driver deduplicates and sorts.
	Report func(Diagnostic)

	suppressed map[*ast.File]map[int][]string
}

// Reportf formats and records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// MarkerPrefix starts every drybellvet suppression comment. A marker such as
// //drybellvet:ordered suppresses matching findings on its own line and on
// the line directly below it, so both trailing and standalone placements
// work:
//
//	for k := range m { // drybellvet:ordered — keys sorted below
//
//	//drybellvet:ordered — keys sorted below
//	for k := range m {
const MarkerPrefix = "drybellvet:"

// Suppressed reports whether a drybellvet suppression marker with the given
// name ("ordered", "tightloop", ...) covers the line of pos.
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	if p.suppressed == nil {
		p.suppressed = make(map[*ast.File]map[int][]string)
	}
	position := p.Fset.Position(pos)
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != position.Filename {
			continue
		}
		lines, ok := p.suppressed[f]
		if !ok {
			lines = markerLines(p.Fset, f)
			p.suppressed[f] = lines
		}
		for _, m := range lines[position.Line] {
			if m == marker {
				return true
			}
		}
		return false
	}
	return false
}

// markerLines maps each line covered by a suppression marker to the marker
// names that cover it (the marker's own line and the next line).
func markerLines(fset *token.FileSet, f *ast.File) map[int][]string {
	lines := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			for {
				i := strings.Index(text, MarkerPrefix)
				if i < 0 {
					break
				}
				name := text[i+len(MarkerPrefix):]
				text = name
				if j := strings.IndexFunc(name, func(r rune) bool {
					return !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
				}); j >= 0 {
					name = name[:j]
				}
				if name == "" {
					continue
				}
				line := fset.Position(c.Pos()).Line
				lines[line] = append(lines[line], name)
				lines[line+1] = append(lines[line+1], name)
			}
		}
	}
	return lines
}

// InScope reports whether the pass's package matches one of the scope
// entries: an exact import path, or a subtree written "prefix/...". An
// empty scope means every package is in scope — the analysistest default,
// where packages are named after testdata dirs.
func (p *Pass) InScope(scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if sub, ok := strings.CutSuffix(s, "/..."); ok {
			if p.Path == sub || strings.HasPrefix(p.Path, sub+"/") {
				return true
			}
		} else if p.Path == s {
			return true
		}
	}
	return false
}

// WalkWithStack traverses root like ast.Inspect but also hands fn the stack
// of enclosing nodes (outermost first, not including n itself). Returning
// false prunes the subtree.
func WalkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
