// Package analysistest runs a drybellvet analyzer over golden packages under
// a testdata/src directory and compares its findings against `// want "re"`
// comments, mirroring the golang.org/x/tools/go/analysis/analysistest
// convention:
//
//	for k := range m { // want `range over map`
//
// Each want comment holds one or more back-quoted or double-quoted regular
// expressions, all of which must be matched by diagnostics reported on that
// line. Diagnostics on lines without a matching want, and wants without a
// matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/tools/drybellvet/analysis"
)

// testImporter resolves imports for testdata packages: paths with a
// directory under testdata/src are type-checked from source (recursively),
// everything else comes from compiler export data via the go tool.
type testImporter struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*loadedTestPkg
	std     types.Importer
}

type loadedTestPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
}

func (imp *testImporter) Import(path string) (*types.Package, error) {
	p, err := imp.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (imp *testImporter) load(path string) (*loadedTestPkg, error) {
	if p, ok := imp.cache[path]; ok {
		return p, p.err
	}
	dir := filepath.Join(imp.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		pkg, err := imp.std.Import(path)
		if err != nil {
			return nil, err
		}
		p := &loadedTestPkg{path: path, pkg: pkg}
		imp.cache[path] = p
		return p, nil
	}
	p := &loadedTestPkg{path: path}
	imp.cache[path] = p // pre-register: testdata packages must not cycle
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p, err
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return p, p.err
	}
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	p.pkg, p.err = conf.Check(path, imp.fset, p.files, p.info)
	return p, p.err
}

// wantRe extracts the quoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies the analyzer to the named packages under dir/src and checks
// every diagnostic against the packages' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &testImporter{
		srcRoot: filepath.Join(dir, "src"),
		fset:    fset,
		cache:   make(map[string]*loadedTestPkg),
		std:     analysis.NewExportImporter(fset, "."),
	}

	type diag struct {
		file    string
		line    int
		msg     string
		matched bool
	}
	var diags []diag
	var wants []*expectation

	for _, path := range pkgPaths {
		p, err := imp.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    p.files,
			Pkg:      p.pkg,
			Info:     p.info,
			Path:     path,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			diags = append(diags, diag{file: pos.Filename, line: pos.Line, msg: d.Message})
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	for i := range diags {
		d := &diags[i]
		for _, w := range wants {
			if !w.matched && w.file == d.file && w.line == d.line && w.pattern.MatchString(d.msg) {
				w.matched = true
				d.matched = true
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].file != diags[j].file {
			return diags[i].file < diags[j].file
		}
		return diags[i].line < diags[j].line
	})
	for _, d := range diags {
		if !d.matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.pattern)
		}
	}
}
