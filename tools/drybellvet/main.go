package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/tools/drybellvet/analysis"
	"repro/tools/drybellvet/passes/ctxflow"
	"repro/tools/drybellvet/passes/determinism"
	"repro/tools/drybellvet/passes/dfspath"
	"repro/tools/drybellvet/passes/lockcheck"
	"repro/tools/drybellvet/passes/voteenc"
)

var all = []*analysis.Analyzer{
	ctxflow.Analyzer,
	determinism.Analyzer,
	dfspath.Analyzer,
	lockcheck.Analyzer,
	voteenc.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "drybellvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drybellvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drybellvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "drybellvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
