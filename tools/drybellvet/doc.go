// Command drybellvet is the repository's invariant checker: a multichecker
// of five repo-specific analyzers that promote the correctness rules the
// distributed runtime and artifact encoders rely on — deterministic output,
// context cancellation flow, forward-slash DFS keys, mutex discipline, and
// checked vote encoding — from review lore into a compile-time gate.
//
// Usage:
//
//	go run ./tools/drybellvet [-checks name,name] [package patterns]
//
// With no patterns it checks ./... . Exit status 1 means findings. CI runs
// it repo-wide (the drybellvet job) and `make vet` is the local entry
// point; `make verify` includes it.
//
// # Analyzers
//
//   - determinism: pipeline output must be byte-identical run over run.
//     Flags range-over-map (iteration order is randomized), time.Now, and
//     the process-seeded math/rand globals in deterministic packages.
//     Explicitly seeded generators (rand.New(rand.NewSource(k))) are fine.
//   - ctxflow: cancellation must reach every long-running loop. Flags
//     context.Background()/TODO() inside functions that already receive a
//     ctx (detaching from the caller's cancellation), and loops that call
//     out without consulting ctx (no ctx.Err() poll and no ctx-accepting
//     call in the body).
//   - dfspath: DFS keys are forward-slash strings on every platform. Flags
//     path/filepath calls and `+ "/" +` concatenation on DFS key strings;
//     keys are built with path.Join. The OS boundary lives in
//     internal/dfs/disk.go and is annotated.
//   - lockcheck: fields annotated `// guarded by <mu>` (doc or line
//     comment) must only be accessed with that mutex held. Tracks
//     Lock/Unlock/RLock/RUnlock flow including defer, branch merges, and
//     goroutine bodies (which start with nothing held). Writes under only
//     an RLock are a distinct diagnostic. Methods with a "Locked" name
//     suffix run with the caller's lock and are exempt.
//   - voteenc: persisted vote bytes go through the checked encoder. Flags
//     raw integer conversions of labelmodel.Label (byte(v), int8(v), ...)
//     that bypass labelmodel.VoteByte's range check.
//
// # Suppression markers
//
// Every finding either gets fixed or carries a marker with a justification
// after it. A marker suppresses its own line and the next line, so it can
// sit on its own line above multi-line statements:
//
//	//drybellvet:ordered    — map range is order-insensitive (commutative
//	                          fold, or collected then sorted)
//	//drybellvet:wallclock  — time.Now/rand for observability or jitter,
//	                          never artifact bytes
//	//drybellvet:detached   — context.Background on purpose (e.g. shutdown
//	                          drain must outlive the canceled serve ctx)
//	//drybellvet:tightloop  — loop is short/cleanup and must run to
//	                          completion even under cancellation
//	//drybellvet:ospath     — the deliberate DFS-key ↔ OS-path boundary
//	//drybellvet:notapath   — slash-joined string is a counter name or
//	                          List prefix, not a DFS key
//	//drybellvet:locked     — access is structurally safe without the lock
//	                          (single-threaded construction, post-join
//	                          read, freshly built unshared value)
//	//drybellvet:rawvote    — integer conversion of a Label that is not a
//	                          persisted vote byte (hash input, JSON field)
//
// The analyzers live under passes/, each with an analysistest-style golden
// suite in testdata/src/. The stdlib-only analysis framework (the subset
// of golang.org/x/tools/go/analysis this repo needs, typed via the go
// tool's export data) is in the analysis package.
package main
