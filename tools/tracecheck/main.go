// Command tracecheck validates a Chrome trace-event JSON file as produced
// by the observability layer (-trace flags, the "_obs/trace.json" pipeline
// artifact): the file must parse, every complete event needs sane
// timestamps, and every span must start within its parent. CI's obs-smoke
// target runs it over a real pipeline trace, so a regression in the
// exporter fails the build rather than silently producing timelines
// Perfetto cannot load.
//
// Usage:
//
//	tracecheck trace.json
//
// Exits non-zero on the first malformed file; on success prints one line
// with the span count and maximum nesting depth.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	Args  map[string]any `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var trace struct {
		DisplayTimeUnit string  `json:"displayTimeUnit"`
		TraceEvents     []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if trace.TraceEvents == nil {
		return fmt.Errorf("no traceEvents array")
	}

	type span struct {
		name     string
		ts, end  int64
		parentID float64
	}
	spans := map[float64]span{}
	for _, ev := range trace.TraceEvents {
		switch ev.Phase {
		case "M":
			continue
		case "X":
		default:
			return fmt.Errorf("event %q has unsupported phase %q", ev.Name, ev.Phase)
		}
		if ev.TS < 0 || ev.Dur < 1 {
			return fmt.Errorf("span %q has ts=%d dur=%d; want ts >= 0 and dur >= 1", ev.Name, ev.TS, ev.Dur)
		}
		id, ok := ev.Args["span_id"].(float64)
		if !ok {
			return fmt.Errorf("span %q lacks a numeric span_id arg", ev.Name)
		}
		if _, dup := spans[id]; dup {
			return fmt.Errorf("span id %v appears twice", id)
		}
		parent, ok := ev.Args["parent_id"].(float64)
		if !ok {
			return fmt.Errorf("span %q lacks a numeric parent_id arg", ev.Name)
		}
		spans[id] = span{name: ev.Name, ts: ev.TS, end: ev.TS + ev.Dur, parentID: parent}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace has no spans")
	}

	// Every non-root span must reference a recorded parent and start inside
	// it; walking to the root also bounds the nesting depth and rejects
	// parent cycles.
	maxDepth := 0
	for id, s := range spans {
		depth := 1
		for cur := s; cur.parentID != 0; depth++ {
			p, ok := spans[cur.parentID]
			if !ok {
				return fmt.Errorf("span %q references unknown parent %v", cur.name, cur.parentID)
			}
			if cur.ts < p.ts || cur.ts > p.end {
				return fmt.Errorf("span %q (ts=%d) starts outside parent %q [%d,%d]",
					cur.name, cur.ts, p.name, p.ts, p.end)
			}
			if depth > len(spans) {
				return fmt.Errorf("parent cycle through span id %v", id)
			}
			cur = p
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	fmt.Printf("trace OK: %d spans, max depth %d\n", len(spans), maxDepth)
	return nil
}
