package repro

// One benchmark per table and figure of the paper's evaluation (§6), plus
// the ablation benches DESIGN.md §5 calls out. Quality numbers (F1, lifts)
// are attached to the benchmark output via b.ReportMetric so a single
// `go test -bench=. -benchmem` run regenerates every result.

import (
	"context"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/experiments"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/mapreduce/remote"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/pkg/drybell"
	"repro/pkg/drybell/serve"
)

// benchCfg keeps per-iteration cost manageable; the shapes match the
// full-scale runs of cmd/experiments.
func benchCfg() experiments.Config {
	return experiments.Config{
		TopicDocs: 8000, ProductDocs: 8000, Events: 5000,
		TopicPositiveRate: 0.05, ProductPositiveRate: 0.05,
		DevFraction: 1.0 / 6, TestFraction: 1.0 / 5,
		LabelModelSteps: 300, LRIterations: 10000, Seed: 7,
	}
}

func BenchmarkTable1_DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_EndToEnd(b *testing.B) {
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.DryBell[0].Relative.Lift, "topic-lift")
	b.ReportMetric(last.DryBell[1].Relative.Lift, "product-lift")
}

func BenchmarkTable3_ServableAblation(b *testing.B) {
	var last *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LiftFromNonServable[0], "topic-lift")
	b.ReportMetric(last.LiftFromNonServable[1], "product-lift")
}

func BenchmarkTable4_WeightAblation(b *testing.B) {
	var last *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LiftFromGenerative[0], "topic-lift")
	b.ReportMetric(last.LiftFromGenerative[1], "product-lift")
}

func BenchmarkFigure2_LFCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_TradeoffSweep(b *testing.B) {
	var last *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Tasks[0].DryBellRelativeF1, "topic-drybell-relF1")
	b.ReportMetric(float64(last.Tasks[0].Crossover), "topic-crossover-labels")
}

func BenchmarkFigure6_ScoreHistograms(b *testing.B) {
	var last *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LogicalOR.MassAtExtremes(), "or-extremes")
	b.ReportMetric(last.DryBell.MassAtExtremes(), "drybell-extremes")
}

func BenchmarkEvents_DryBellVsLogicalOR(b *testing.B) {
	var last *experiments.EventsResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Events(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MoreEventsIdentified, "more-events")
	b.ReportMetric(last.QualityImprovement, "quality-gain")
}

// P1: the paper's §5.2 systems claim, as sub-benchmarks so the per-trainer
// throughput appears directly in the benchmark table.
func benchP1Matrix(b *testing.B) *labelmodel.Matrix {
	b.Helper()
	mx, _, err := labelmodel.Synthesize(labelmodel.SynthSpec{
		NumExamples:   20000,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.9, 0.85, 0.8, 0.75, 0.7, 0.9, 0.85, 0.8, 0.75, 0.7},
		Propensities:  []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.2, 0.2, 0.2, 0.2, 0.2},
		Seed:          7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return mx
}

func BenchmarkP1_SamplingFreeVsGibbs(b *testing.B) {
	mx := benchP1Matrix(b)
	opts := labelmodel.Options{Steps: 200, BatchSize: 64, LR: 0.05, Seed: 7}
	// nll/ex reports each trainer's final objective so the speed comparison
	// carries its quality context (lower is better; the fast trainer runs
	// to convergence and must not be worse). Computed off the clock.
	quality := func(b *testing.B, m *labelmodel.Model) {
		b.Helper()
		b.StopTimer()
		b.ReportMetric(-m.LogMarginalLikelihood(mx)/float64(mx.NumExamples()), "nll/ex")
	}
	b.Run("SamplingFree", func(b *testing.B) {
		// Collect the previous sub-benchmark's garbage off the clock.
		runtime.GC()
		b.ResetTimer()
		var last *labelmodel.Model
		for i := 0; i < b.N; i++ {
			m, err := labelmodel.TrainSamplingFree(mx, opts)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.ReportMetric(float64(opts.Steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
		quality(b, last)
	})
	b.Run("SamplingFreeFast", func(b *testing.B) {
		// Collect the previous sub-benchmark's garbage off the clock.
		runtime.GC()
		b.ResetTimer()
		var last *labelmodel.Model
		for i := 0; i < b.N; i++ {
			m, err := labelmodel.TrainSamplingFreeFast(mx, opts)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		quality(b, last)
	})
	b.Run("Gibbs25Sweeps", func(b *testing.B) {
		// Collect the previous sub-benchmark's garbage off the clock.
		runtime.GC()
		b.ResetTimer()
		o := opts
		o.GibbsSamples = 25
		var last *labelmodel.Model
		for i := 0; i < b.N; i++ {
			m, err := labelmodel.TrainGibbs(mx, o)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.ReportMetric(float64(opts.Steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
		quality(b, last)
	})
}

func BenchmarkP2_PipelineThroughput(b *testing.B) {
	docs, err := corpus.GenerateTopic(corpus.DefaultTopicSpec(8000, 7))
	if err != nil {
		b.Fatal(err)
	}
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		b.Fatal(err)
	}
	runners := apps.TopicLFs(nil, 0.02, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.NewMem()
		if err := lf.Stage[*corpus.Document](fs, "in/docs", recs, 16); err != nil {
			b.Fatal(err)
		}
		// Parallelism is left at the default: one simulated compute node
		// per CPU, the production configuration.
		exec := &lf.Executor[*corpus.Document]{
			FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
			Decode: corpus.UnmarshalDocument,
		}
		if _, _, err := exec.Execute(runners); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(docs))*float64(b.N)/b.Elapsed().Seconds(), "examples/s")
}

// Ablation: the paper's static-graph formulation vs hand-derived gradients
// on the identical objective (DESIGN.md §5.2).
func BenchmarkAblation_GraphVsAnalytic(b *testing.B) {
	mx := benchP1Matrix(b)
	opts := labelmodel.Options{Steps: 200, BatchSize: 64, LR: 0.05, Seed: 7}
	b.Run("Graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := labelmodel.TrainSamplingFree(mx, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := labelmodel.TrainAnalytic(mx, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: noise-aware expected loss on probabilistic labels vs hard
// thresholded labels (DESIGN.md §5.3).
func BenchmarkAblation_NoiseAwareLoss(b *testing.B) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 8000, PositiveRate: 0.05, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	p, err := drybell.New[*corpus.Document](
		drybell.WithCodec(
			func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
			corpus.UnmarshalDocument,
		),
		drybell.WithLabelModel(labelmodel.Options{Steps: 300, Seed: 7}),
	)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(docs), apps.TopicLFs(nil, 0.02, 7))
	if err != nil {
		b.Fatal(err)
	}
	hard := make([]float64, len(res.Posteriors))
	for i, l := range labelmodel.HardLabels(res.Posteriors) {
		if l == labelmodel.Positive {
			hard[i] = 1
		}
	}
	gold := corpus.GoldLabels(docs[6000:])
	evalWith := func(b *testing.B, labels []float64) float64 {
		var f1 float64
		for i := 0; i < b.N; i++ {
			clf, err := core.TrainContentClassifier(docs[:6000], labels[:6000], nil, core.ContentTrainConfig{
				Bigrams: true, Iterations: 60000, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			_, met, err := model.BestF1Threshold(clf.Scores(docs[6000:]), gold)
			if err != nil {
				b.Fatal(err)
			}
			f1 = met.F1
		}
		return f1
	}
	b.Run("NoiseAware", func(b *testing.B) {
		b.ReportMetric(evalWith(b, res.Posteriors), "best-F1")
	})
	b.Run("HardLabels", func(b *testing.B) {
		b.ReportMetric(evalWith(b, hard), "best-F1")
	})
}

// Ablation: MapReduce shard count vs labeling throughput (DESIGN.md §5.4).
func BenchmarkAblation_Shards(b *testing.B) {
	docs, err := corpus.GenerateTopic(corpus.DefaultTopicSpec(6000, 7))
	if err != nil {
		b.Fatal(err)
	}
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		b.Fatal(err)
	}
	runners := apps.TopicLFs(nil, 0.02, 7)[:4]
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs := dfs.NewMem()
				if err := lf.Stage[*corpus.Document](fs, "in/docs", recs, shards); err != nil {
					b.Fatal(err)
				}
				exec := &lf.Executor[*corpus.Document]{
					FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
					Decode: corpus.UnmarshalDocument, Parallelism: 4,
				}
				if _, _, err := exec.Execute(runners); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "=" + string(buf[i:])
}

// --- Online serving benchmarks (pkg/drybell/serve): throughput and tail
// latency of the two request paths under parallel load, the numbers the
// §5.3 production story lives or dies on.

func newServeBenchServer(b *testing.B, runners []apps.DocLF, lm *labelmodel.Model) *serve.Server[*corpus.Document] {
	b.Helper()
	reg, err := serving.OpenFSRegistry(dfs.NewMem(), "serving")
	if err != nil {
		b.Fatal(err)
	}
	art := &serving.Artifact{
		Name: "bench-classifier", Kind: "logreg", Threshold: 0.5,
		FeatureDim: 1 << 14, Bigrams: true,
		Signals: []string{"text", "url", "language"},
		Payload: []byte(`{"indices":[1,100,1000,5000],"values":[0.5,-0.25,1.0,-0.75]}`),
	}
	if _, err := reg.Stage(art); err != nil {
		b.Fatal(err)
	}
	if err := reg.Promote("bench-classifier", 1); err != nil {
		b.Fatal(err)
	}
	s, err := serve.New(serve.Config[*corpus.Document]{
		Registry:   reg,
		Model:      "bench-classifier",
		Featurize:  serve.DocumentFeaturizer,
		LFs:        runners,
		LabelModel: lm,
		MaxBatch:   64,
		BatchWait:  500 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func benchDocs(b *testing.B, n int) []*corpus.Document {
	b.Helper()
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: n, PositiveRate: 0.05, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	return docs
}

func BenchmarkServePredict(b *testing.B) {
	docs := benchDocs(b, 512)
	s := newServeBenchServer(b, nil, nil)
	ctx := context.Background()
	var rr atomic.Int64
	// Many client goroutines per core: micro-batching only shows up under
	// concurrent load, and CI machines may expose few cores.
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(rr.Add(1))
			if _, err := s.Predict(ctx, docs[i%len(docs)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	m := s.Metrics()
	b.ReportMetric(m.Batches.MeanSize, "recs/batch")
	b.ReportMetric(m.Predict.P99Ms, "p99-ms")
}

func BenchmarkServeLabel(b *testing.B) {
	// A modest rotating working set keeps the NLP cache honest: hits
	// dominate, but misses and evictions still occur.
	docs := benchDocs(b, 256)
	runners := apps.TopicLFs(nil, 0, 17)
	lm := &labelmodel.Model{Alpha: make([]float64, len(runners)), Beta: make([]float64, len(runners))}
	for i := range lm.Alpha {
		lm.Alpha[i] = 1.5
	}
	s := newServeBenchServer(b, runners, lm)
	ctx := context.Background()
	var rr atomic.Int64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(rr.Add(1))
			if _, err := s.Label(ctx, docs[i%len(docs)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	m := s.Metrics()
	if m.NLPCache != nil {
		b.ReportMetric(100*m.NLPCache.HitRate, "cache-hit-%")
	}
	b.ReportMetric(m.Label.P99Ms, "p99-ms")
}

// --- Scalar vs vectorized LF execution: the two evaluation paths every
// template supports (Vote per record vs VoteBatch per shard/batch). These
// are the numbers behind the batch path's existence.

// BenchmarkExecuteLFs runs the full topic LF set over a staged corpus
// through the batch executor, once record-at-a-time and once through the
// vectorized MapBatch path.
func BenchmarkExecuteLFs(b *testing.B) {
	docs := benchDocs(b, 2000)
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"Batch", false}, {"Scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			fs := dfs.NewMem()
			if err := lf.Stage[*corpus.Document](fs, "in/docs", recs, 8); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := &lf.Executor[*corpus.Document]{
					FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
					Decode: corpus.UnmarshalDocument, Parallelism: 4,
					NoBatch: mode.noBatch,
				}
				if _, _, err := e.Execute(apps.TopicLFs(nil, 0, 21)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(docs))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkExecuteLFsRemote prices the multi-node transport: the same
// fused vote job as BenchmarkExecuteLFs/Batch, but routed to two worker
// loops over loopback HTTP — every input shard and committed vote crossing
// the DFS gateway, every attempt under a heartbeat-renewed lease. The gap
// to the in-process number is the protocol overhead a real deployment pays
// for shared-nothing workers.
func BenchmarkExecuteLFsRemote(b *testing.B) {
	docs := benchDocs(b, 2000)
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		b.Fatal(err)
	}
	fs := dfs.NewMem()
	if err := lf.Stage[*corpus.Document](fs, "in/docs", recs, 8); err != nil {
		b.Fatal(err)
	}
	runners := apps.TopicLFs(nil, 0, 21)
	jobs := remote.NewRegistry()
	if err := lf.RegisterVoteJobs(jobs, runners, corpus.UnmarshalDocument, false); err != nil {
		b.Fatal(err)
	}
	pool, err := remote.NewPool(remote.PoolOptions{FS: fs, Slots: 4})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := remote.RunWorker(ctx, remote.WorkerOptions{
				Coordinator: srv.URL,
				Name:        benchName("bench-worker", i),
				Jobs:        jobs,
			}); err != nil {
				b.Error(err)
			}
		}(i)
	}
	b.Cleanup(func() {
		cancel()
		wg.Wait()
		pool.Close()
		srv.Close()
	})
	if err := pool.AwaitWorkers(ctx, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &lf.Executor[*corpus.Document]{
			FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
			Decode:  corpus.UnmarshalDocument,
			Workers: pool.Workers(),
		}
		if _, _, err := e.Execute(runners); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(docs))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkOnlineLabel compares the online labeler's per-record path
// (Label) against the vectorized LabelBatch path over the same traffic.
func BenchmarkOnlineLabel(b *testing.B) {
	docs := benchDocs(b, 256)
	runners := apps.TopicLFs(nil, 0, 17)
	lm := &labelmodel.Model{Alpha: make([]float64, len(runners)), Beta: make([]float64, len(runners))}
	for i := range lm.Alpha {
		lm.Alpha[i] = 1.5
	}
	const batch = 64
	b.Run("Scalar", func(b *testing.B) {
		s := newServeBenchServer(b, apps.TopicLFs(nil, 0, 17), lm)
		ctx := context.Background()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			for k := 0; k < batch; k++ {
				if _, err := s.Label(ctx, docs[n%len(docs)]); err != nil {
					b.Fatal(err)
				}
				n++
			}
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "docs/s")
	})
	b.Run("Batch", func(b *testing.B) {
		s := newServeBenchServer(b, apps.TopicLFs(nil, 0, 17), lm)
		ctx := context.Background()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			chunk := make([]*corpus.Document, batch)
			for k := range chunk {
				chunk[k] = docs[n%len(docs)]
				n++
			}
			if _, err := s.LabelBatch(ctx, chunk); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "docs/s")
	})
}

// --- Incremental pipeline benchmarks: the PR's headline claim. A 10% corpus
// append through StageDelta + IncrementalRun (delta LF execution, vote
// generation publish, ExtendCompact warm training) must beat a cold full
// rerun over the grown corpus by a wide margin — the target is >= 5x. The
// Delta10pct sub-benchmark reports the measured "speedup" metric against a
// wall-clock full rerun taken in the same process, so BENCH_pr10.json
// records the claim next to the raw timings.

func incrementalBenchConfig(fs dfs.FS) core.Config[*corpus.Document] {
	cfg := core.Config[*corpus.Document]{
		FS:      fs,
		WorkDir: "drybell",
		Shards:  8,
		Encode:  func(d *corpus.Document) ([]byte, error) { return d.Marshal() },
		Decode:  corpus.UnmarshalDocument,
		Trainer: core.TrainerSamplingFreeFast,
		LabelModel: labelmodel.Options{
			Steps: 300, BatchSize: 256, LR: 0.02, Seed: 3,
		},
	}
	out, err := cfg.WithDefaults()
	if err != nil {
		panic(err)
	}
	return out
}

func BenchmarkIncremental(b *testing.B) {
	const baseDocs, deltaDocs = 3000, 300
	full, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: baseDocs + deltaDocs, PositiveRate: 0.05, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	base, delta := full[:baseDocs], full[baseDocs:]
	runners := apps.TopicLFs(nil, 0.02, 1)
	ctx := context.Background()

	// Wall-clock reference for the speedup metric: one cold full pipeline
	// run (stage + execute + train) over the grown corpus.
	refStart := time.Now()
	if _, err := core.Run(incrementalBenchConfig(dfs.NewMem()), full, runners); err != nil {
		b.Fatal(err)
	}
	fullRerunSecs := time.Since(refStart).Seconds()

	b.Run("FullRerun", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(incrementalBenchConfig(dfs.NewMem()), full, runners); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(full))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	})

	b.Run("Delta10pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Per-iteration base state is setup, not the measured work: an
			// IncrementalRun consumes its pending delta, so each iteration
			// needs a fresh base run and warm-start state.
			b.StopTimer()
			cfg := incrementalBenchConfig(dfs.NewMem())
			baseRes, err := core.Run(cfg, base, runners)
			if err != nil {
				b.Fatal(err)
			}
			_, prev, err := labelmodel.TrainSamplingFreeFastWarm(baseRes.Matrix, cfg.LabelModel, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			if _, err := core.StageDelta(ctx, cfg, core.Examples(delta), nil); err != nil {
				b.Fatal(err)
			}
			res, err := core.IncrementalRun(ctx, cfg, runners, prev)
			if err != nil {
				b.Fatal(err)
			}
			if res.DeltaExamples != deltaDocs {
				b.Fatalf("delta run executed %d docs, want %d", res.DeltaExamples, deltaDocs)
			}
		}
		perOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(deltaDocs)/perOp, "docs/s")
		b.ReportMetric(fullRerunSecs/perOp, "speedup")
	})
}
