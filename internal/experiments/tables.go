package experiments

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/model"
	lfapi "repro/pkg/drybell/lf"
)

// Table1Result reproduces Table 1: corpus statistics per content task.
type Table1Result struct {
	Rows []corpus.TaskStats
}

// Table1 generates the corpora and reports their statistics.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	res := &Table1Result{}
	for _, mk := range []func() (*contentTask, error){cfg.topicTask, cfg.productTask} {
		t, err := mk()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, corpus.StatsFor(t.name, t.docs, t.split, len(t.runners)))
	}
	return res, nil
}

// Report renders the table.
func (r *Table1Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: benchmark data sets\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %8s %6s\n", "Task", "n(train)", "nDev", "nTest", "%Pos", "#LFs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %8d %8d %7.2f%% %6d\n",
			row.Task, row.NumTrain, row.NumDev, row.NumTest, 100*row.PositiveRate, row.NumLFs)
	}
	return b.String()
}

// TaskRelative is one task's row in Tables 2-4: metrics normalized to the
// dev-set supervised baseline.
type TaskRelative struct {
	Task     string
	Absolute model.Metrics
	Relative model.Relative
}

// Table2Result reproduces Table 2: generative-model-only vs full DryBell.
type Table2Result struct {
	GenOnly []TaskRelative // weighted LF combination, non-servable
	DryBell []TaskRelative // discriminative classifier on servable features
}

// Table2 runs both content tasks end to end.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	res := &Table2Result{}
	for _, mk := range []func() (*contentTask, error){cfg.topicTask, cfg.productTask} {
		t, err := mk()
		if err != nil {
			return nil, err
		}
		base, err := cfg.baseline(t)
		if err != nil {
			return nil, err
		}
		baseMet, err := t.evalOnTest(base)
		if err != nil {
			return nil, err
		}
		run, err := cfg.runContent(t, nil, false)
		if err != nil {
			return nil, err
		}
		genMet, err := run.genModelTestMetrics()
		if err != nil {
			return nil, err
		}
		clfMet, err := t.evalOnTest(run.classifier)
		if err != nil {
			return nil, err
		}
		res.GenOnly = append(res.GenOnly, TaskRelative{t.name, genMet, genMet.RelativeTo(baseMet)})
		res.DryBell = append(res.DryBell, TaskRelative{t.name, clfMet, clfMet.RelativeTo(baseMet)})
	}
	return res, nil
}

// Report renders the table in the paper's layout.
func (r *Table2Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: relative to dev-set supervised baseline (P/R/F1 ratios, lift = F1 ratio - 1)\n")
	fmt.Fprintf(&b, "%-10s | %28s | %28s\n", "", "Generative Model Only", "Snorkel DryBell")
	fmt.Fprintf(&b, "%-10s | %6s %6s %6s %6s | %6s %6s %6s %6s\n",
		"Task", "P", "R", "F1", "Lift", "P", "R", "F1", "Lift")
	for i := range r.GenOnly {
		g, d := r.GenOnly[i].Relative, r.DryBell[i].Relative
		fmt.Fprintf(&b, "%-10s | %5.1f%% %5.1f%% %5.1f%% %+5.1f%% | %5.1f%% %5.1f%% %5.1f%% %+5.1f%%\n",
			r.GenOnly[i].Task,
			100*g.Precision, 100*g.Recall, 100*g.F1, 100*g.Lift,
			100*d.Precision, 100*d.Recall, 100*d.F1, 100*d.Lift)
	}
	return b.String()
}

// Table3Result reproduces Table 3: servable-only LFs vs all LFs.
type Table3Result struct {
	Servable []TaskRelative
	All      []TaskRelative
	// LiftFromNonServable is the F1 ratio (all vs servable-only) − 1 per
	// task; the paper reports +36.4% (topic) and +68.2% (product), 52% avg.
	LiftFromNonServable []float64
}

// Table3 runs the servable-LFs ablation for both content tasks.
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.withDefaults()
	res := &Table3Result{}
	for _, mk := range []func() (*contentTask, error){cfg.topicTask, cfg.productTask} {
		t, err := mk()
		if err != nil {
			return nil, err
		}
		base, err := cfg.baseline(t)
		if err != nil {
			return nil, err
		}
		baseMet, err := t.evalOnTest(base)
		if err != nil {
			return nil, err
		}
		servableRun, err := cfg.runContent(t, lfapi.ServableIndices(t.runners), false)
		if err != nil {
			return nil, err
		}
		servMet, err := t.evalOnTest(servableRun.classifier)
		if err != nil {
			return nil, err
		}
		allRun, err := cfg.runContent(t, nil, false)
		if err != nil {
			return nil, err
		}
		allMet, err := t.evalOnTest(allRun.classifier)
		if err != nil {
			return nil, err
		}
		res.Servable = append(res.Servable, TaskRelative{t.name, servMet, servMet.RelativeTo(baseMet)})
		res.All = append(res.All, TaskRelative{t.name, allMet, allMet.RelativeTo(baseMet)})
		lift := 0.0
		if servMet.F1 > 0 {
			lift = allMet.F1/servMet.F1 - 1
		}
		res.LiftFromNonServable = append(res.LiftFromNonServable, lift)
	}
	return res, nil
}

// Report renders the table.
func (r *Table3Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: servable-only LFs vs + non-servable LFs (relative to dev baseline)\n")
	fmt.Fprintf(&b, "%-10s %-18s %6s %6s %6s %8s\n", "Task", "Arm", "P", "R", "F1", "Lift")
	for i := range r.Servable {
		s, a := r.Servable[i], r.All[i]
		fmt.Fprintf(&b, "%-10s %-18s %5.1f%% %5.1f%% %5.1f%%\n",
			s.Task, "Servable LFs", 100*s.Relative.Precision, 100*s.Relative.Recall, 100*s.Relative.F1)
		fmt.Fprintf(&b, "%-10s %-18s %5.1f%% %5.1f%% %5.1f%% %+6.1f%%\n",
			a.Task, "+ Non-Servable", 100*a.Relative.Precision, 100*a.Relative.Recall, 100*a.Relative.F1,
			100*r.LiftFromNonServable[i])
	}
	avg := 0.0
	for _, l := range r.LiftFromNonServable {
		avg += l
	}
	avg /= float64(len(r.LiftFromNonServable))
	fmt.Fprintf(&b, "average lift from non-servable resources: %+.1f%% (paper: +52%%)\n", 100*avg)
	return b.String()
}

// Table4Result reproduces Table 4: equal LF weights vs the generative model.
type Table4Result struct {
	EqualWeights []TaskRelative
	Generative   []TaskRelative
	// LiftFromGenerative is the F1 ratio (generative vs equal weights) − 1;
	// the paper reports +7.7% (topic) and +1.9% (product), 4.8% avg.
	LiftFromGenerative []float64
}

// Table4 runs the label-combination ablation for both content tasks.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	res := &Table4Result{}
	for _, mk := range []func() (*contentTask, error){cfg.topicTask, cfg.productTask} {
		t, err := mk()
		if err != nil {
			return nil, err
		}
		base, err := cfg.baseline(t)
		if err != nil {
			return nil, err
		}
		baseMet, err := t.evalOnTest(base)
		if err != nil {
			return nil, err
		}
		eqRun, err := cfg.runContent(t, nil, true)
		if err != nil {
			return nil, err
		}
		eqMet, err := t.evalOnTest(eqRun.classifier)
		if err != nil {
			return nil, err
		}
		genRun, err := cfg.runContent(t, nil, false)
		if err != nil {
			return nil, err
		}
		genMet, err := t.evalOnTest(genRun.classifier)
		if err != nil {
			return nil, err
		}
		res.EqualWeights = append(res.EqualWeights, TaskRelative{t.name, eqMet, eqMet.RelativeTo(baseMet)})
		res.Generative = append(res.Generative, TaskRelative{t.name, genMet, genMet.RelativeTo(baseMet)})
		lift := 0.0
		if eqMet.F1 > 0 {
			lift = genMet.F1/eqMet.F1 - 1
		}
		res.LiftFromGenerative = append(res.LiftFromGenerative, lift)
	}
	return res, nil
}

// Report renders the table.
func (r *Table4Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: equal LF weights vs generative model (relative to dev baseline)\n")
	fmt.Fprintf(&b, "%-10s %-18s %6s %6s %6s %8s\n", "Task", "Arm", "P", "R", "F1", "Lift")
	for i := range r.EqualWeights {
		e, g := r.EqualWeights[i], r.Generative[i]
		fmt.Fprintf(&b, "%-10s %-18s %5.1f%% %5.1f%% %5.1f%%\n",
			e.Task, "Equal Weights", 100*e.Relative.Precision, 100*e.Relative.Recall, 100*e.Relative.F1)
		fmt.Fprintf(&b, "%-10s %-18s %5.1f%% %5.1f%% %5.1f%% %+6.1f%%\n",
			g.Task, "+ Generative Model", 100*g.Relative.Precision, 100*g.Relative.Recall, 100*g.Relative.F1,
			100*r.LiftFromGenerative[i])
	}
	avg := 0.0
	for _, l := range r.LiftFromGenerative {
		avg += l
	}
	avg /= float64(len(r.LiftFromGenerative))
	fmt.Fprintf(&b, "average lift from generative model: %+.1f%% (paper: +4.8%%)\n", 100*avg)
	return b.String()
}
