package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/lf"
)

// P1Result reproduces the §5.2 performance claim: the sampling-free
// optimizer takes >100 gradient steps/second at batch size 64 with ten
// labeling functions, while a Gibbs sampler processes <50 examples/second —
// at least a 2× speedup.
type P1Result struct {
	SamplingFreeStepsPerSec float64
	// SamplingFreeExamplesPerSec = steps/sec × batch size, the
	// apples-to-apples unit against the Gibbs examples/sec.
	SamplingFreeExamplesPerSec float64
	GibbsExamplesPerSec        float64
	Speedup                    float64
}

// P1 times both optimizers on a ten-LF matrix with batch size 64.
func P1(cfg Config) (*P1Result, error) {
	cfg = cfg.withDefaults()
	mx, _, err := labelmodel.Synthesize(labelmodel.SynthSpec{
		NumExamples:   20000,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.9, 0.85, 0.8, 0.75, 0.7, 0.9, 0.85, 0.8, 0.75, 0.7},
		Propensities:  []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.2, 0.2, 0.2, 0.2, 0.2},
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	const steps, batch = 400, 64

	start := time.Now() //drybellvet:wallclock — the benchmark measurement itself
	if _, err := labelmodel.TrainSamplingFree(mx, labelmodel.Options{
		Steps: steps, BatchSize: batch, LR: 0.05, Seed: cfg.Seed,
	}); err != nil {
		return nil, err
	}
	sfDur := time.Since(start)

	start = time.Now() //drybellvet:wallclock — the benchmark measurement itself
	// 25 Gibbs sweeps per minibatch is a moderate chain for a usable
	// gradient estimate; the original sampler's per-example cost was far
	// higher still (the paper measured <50 examples/second).
	if _, err := labelmodel.TrainGibbs(mx, labelmodel.Options{
		Steps: steps, BatchSize: batch, LR: 0.05, Seed: cfg.Seed, GibbsSamples: 25,
	}); err != nil {
		return nil, err
	}
	gibbsDur := time.Since(start)

	res := &P1Result{
		SamplingFreeStepsPerSec: float64(steps) / sfDur.Seconds(),
	}
	res.SamplingFreeExamplesPerSec = res.SamplingFreeStepsPerSec * batch
	// Gibbs touches batch examples per step, each resampled GibbsSamples
	// times; examples/sec counts distinct examples advanced per second.
	res.GibbsExamplesPerSec = float64(steps*batch) / gibbsDur.Seconds()
	// Speedup per unit of optimization progress (gradient steps).
	res.Speedup = gibbsDur.Seconds() / sfDur.Seconds()
	return res, nil
}

// Report renders the measurement.
func (r *P1Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P1 (§5.2): sampling-free vs Gibbs, 10 LFs, batch 64\n")
	fmt.Fprintf(&b, "sampling-free: %.0f steps/s (%.0f examples/s)  [paper: >100 steps/s]\n",
		r.SamplingFreeStepsPerSec, r.SamplingFreeExamplesPerSec)
	fmt.Fprintf(&b, "gibbs sampler: %.0f examples/s                 [paper: <50 examples/s]\n",
		r.GibbsExamplesPerSec)
	fmt.Fprintf(&b, "speedup per gradient step: %.1fx              [paper: ≥2x]\n", r.Speedup)
	fmt.Fprintf(&b, "(both Go implementations are orders of magnitude faster than the paper's;\n")
	fmt.Fprintf(&b, " the reproduced shape is the sampling-free advantage per optimizer step)\n")
	return b.String()
}

// P2Result reproduces the scale claim (§1, §5): weak supervision executed
// over millions of data points in tens of minutes. We measure labeling
// throughput at increasing worker counts and extrapolate to 6.5M examples.
type P2Result struct {
	Examples int
	// CPUs is runtime.NumCPU() at measurement time.
	CPUs int
	// PerParallelism maps simulated cluster width → examples/second across
	// the full ten-LF pipeline.
	PerParallelism map[int]float64
	// ProjectedMinutesFor6M is 6.5M examples at the best observed rate.
	ProjectedMinutesFor6M float64
}

// P2 stages a topic corpus and times labeling-function execution. On a
// single-core host the parallelism sweep degenerates to overhead checks;
// the Report notes the CPU count.
func P2(cfg Config) (*P2Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.TopicDocs
	docs, err := corpus.GenerateTopic(corpus.DefaultTopicSpec(n, cfg.Seed))
	if err != nil {
		return nil, err
	}
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		return nil, err
	}
	runners := apps.TopicLFs(nil, 0.02, cfg.Seed)
	res := &P2Result{Examples: n, CPUs: runtime.NumCPU(), PerParallelism: map[int]float64{}}
	best := 0.0
	for _, par := range []int{1, 2, 4, 8} {
		fs := dfs.NewMem()
		if err := lf.Stage[*corpus.Document](fs, "in/docs", recs, 16); err != nil {
			return nil, err
		}
		exec := &lf.Executor[*corpus.Document]{
			FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
			Decode: corpus.UnmarshalDocument, Parallelism: par,
		}
		start := time.Now() //drybellvet:wallclock — the benchmark measurement itself
		if _, _, err := exec.Execute(runners); err != nil {
			return nil, err
		}
		rate := float64(n) / time.Since(start).Seconds()
		res.PerParallelism[par] = rate
		if rate > best {
			best = rate
		}
	}
	if best > 0 {
		res.ProjectedMinutesFor6M = 6.5e6 / best / 60
	}
	return res, nil
}

// Report renders the measurement.
func (r *P2Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P2 (§1): labeling throughput, %d examples, 10 LFs, %d CPU(s)\n", r.Examples, r.CPUs)
	for _, par := range []int{1, 2, 4, 8} {
		if rate, ok := r.PerParallelism[par]; ok {
			fmt.Fprintf(&b, "parallelism %d: %8.0f examples/s\n", par, rate)
		}
	}
	fmt.Fprintf(&b, "projected wall time for 6.5M examples: %.1f min [paper: sub-30 min on a cluster]\n",
		r.ProjectedMinutesFor6M)
	return b.String()
}
