package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/internal/lf"
	"repro/internal/model"
	lfapi "repro/pkg/drybell/lf"
)

// Figure2Result reproduces Figure 2: the distribution of weak-supervision
// categories, counted by number of labeling functions, per application.
type Figure2Result struct {
	// Census maps application → category → LF count.
	Census map[string]map[lf.Category]int
}

// Figure2 counts the LF census for the three applications.
func Figure2(cfg Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	g := kgraph.Builtin()
	return &Figure2Result{Census: map[string]map[lf.Category]int{
		"topic":   lfapi.Census(apps.TopicLFs(g, 0.02, cfg.Seed)),
		"product": lfapi.Census(apps.ProductLFs(g, cfg.Seed)),
		"events":  lfapi.Census(apps.EventLFs(apps.NumEventLFs, cfg.Seed)),
	}}, nil
}

// Report renders the histogram.
func (r *Figure2Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: weak supervision categories by number of LFs\n")
	cats := []lf.Category{lf.SourceHeuristic, lf.ContentHeuristic, lf.ModelBased, lf.GraphBased}
	fmt.Fprintf(&b, "%-10s", "App")
	for _, c := range cats {
		fmt.Fprintf(&b, " %18s", c)
	}
	fmt.Fprintln(&b)
	for _, app := range []string{"topic", "product", "events"} {
		fmt.Fprintf(&b, "%-10s", app)
		for _, c := range cats {
			fmt.Fprintf(&b, " %18d", r.Census[app][c])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Figure5Point is one point of the hand-label trade-off curve.
type Figure5Point struct {
	HandLabels int
	RelativeF1 float64 // supervised F1 / baseline F1
}

// Figure5Task is one panel of Figure 5.
type Figure5Task struct {
	Task string
	// Curve is the fully supervised classifier at increasing label budgets.
	Curve []Figure5Point
	// DryBellRelativeF1 is the weakly supervised classifier's horizontal line.
	DryBellRelativeF1 float64
	// Crossover is the smallest budget whose supervised F1 matches DryBell
	// (paper: ≈80K for topic, ≈12K for product), or -1 if never reached.
	Crossover int
}

// Figure5Result reproduces Figure 5: relative F1 vs number of hand-labeled
// training examples, against the weak-supervision horizontal line.
type Figure5Result struct {
	Tasks []Figure5Task
}

// Figure5 sweeps hand-label budgets for both content tasks.
func Figure5(cfg Config) (*Figure5Result, error) {
	cfg = cfg.withDefaults()
	res := &Figure5Result{}
	for _, mk := range []func() (*contentTask, error){cfg.topicTask, cfg.productTask} {
		t, err := mk()
		if err != nil {
			return nil, err
		}
		base, err := cfg.baseline(t)
		if err != nil {
			return nil, err
		}
		baseMet, err := t.evalOnTest(base)
		if err != nil {
			return nil, err
		}
		run, err := cfg.runContent(t, nil, false)
		if err != nil {
			return nil, err
		}
		dbMet, err := t.evalOnTest(run.classifier)
		if err != nil {
			return nil, err
		}
		task := Figure5Task{Task: t.name, Crossover: -1}
		if baseMet.F1 > 0 {
			task.DryBellRelativeF1 = dbMet.F1 / baseMet.F1
		}

		// Budget grid: fractions of the training pool (the paper sweeps up
		// to 175K for topic, 50K for product; we sweep our scaled pool).
		pool := t.split.Train
		grid := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
		for _, frac := range grid {
			k := int(float64(len(pool)) * frac)
			if k < 50 {
				continue
			}
			labeled := corpus.Select(t.docs, pool[:k])
			sup, err := core.TrainSupervisedBaseline(labeled, core.ContentTrainConfig{
				Bigrams: t.bigrams, Iterations: t.itersFor(k), Seed: cfg.Seed + 5,
			})
			if err != nil {
				return nil, err
			}
			// Same protocol as the baseline: tune on dev.
			dev := corpus.Select(t.docs, t.split.Dev)
			if th, _, err := model.BestF1Threshold(sup.Scores(dev), corpus.GoldLabels(dev)); err == nil {
				sup.Threshold = th
			}
			met, err := t.evalOnTest(sup)
			if err != nil {
				return nil, err
			}
			rel := 0.0
			if baseMet.F1 > 0 {
				rel = met.F1 / baseMet.F1
			}
			task.Curve = append(task.Curve, Figure5Point{HandLabels: k, RelativeF1: rel})
			if task.Crossover < 0 && rel >= task.DryBellRelativeF1 {
				task.Crossover = k
			}
		}
		res.Tasks = append(res.Tasks, task)
	}
	return res, nil
}

// Report renders both panels as text.
func (r *Figure5Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: relative F1 vs hand-labeled training examples\n")
	for _, task := range r.Tasks {
		fmt.Fprintf(&b, "[%s] DryBell (weak supervision) relative F1 = %.1f%%\n",
			task.Task, 100*task.DryBellRelativeF1)
		for _, p := range task.Curve {
			marker := ""
			if task.Crossover == p.HandLabels {
				marker = "  <-- crossover"
			}
			fmt.Fprintf(&b, "  %7d labels: %6.1f%%%s\n", p.HandLabels, 100*p.RelativeF1, marker)
		}
		if task.Crossover < 0 {
			fmt.Fprintf(&b, "  (supervised curve never reaches the weak-supervision line in this sweep)\n")
		}
	}
	return b.String()
}

// Figure6Result reproduces Figure 6: the score histogram of the events DNN
// trained with Logical-OR labels vs DryBell labels.
type Figure6Result struct {
	LogicalOR *model.Histogram
	DryBell   *model.Histogram
}

// Figure6 trains the two event classifiers and bins their scores.
func Figure6(cfg Config) (*Figure6Result, error) {
	cfg = cfg.withDefaults()
	ev, err := runEvents(cfg)
	if err != nil {
		return nil, err
	}
	return &Figure6Result{
		LogicalOR: model.NewHistogram(ev.orScores, 10),
		DryBell:   model.NewHistogram(ev.dbScores, 10),
	}, nil
}

// Report renders both histograms with the mass-at-extremes statistic.
func (r *Figure6Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: score histograms of the events DNN\n")
	render := func(name string, h *model.Histogram) {
		fmt.Fprintf(&b, "%-12s", name)
		for _, c := range h.Counts {
			fmt.Fprintf(&b, " %6d", c)
		}
		fmt.Fprintf(&b, "   extremes=%.1f%% entropy=%.2f\n", 100*h.MassAtExtremes(), h.Entropy())
	}
	render("Logical-OR", r.LogicalOR)
	render("DryBell", r.DryBell)
	fmt.Fprintf(&b, "(paper: Logical-OR piles scores at the extremes; DryBell is smoother)\n")
	return b.String()
}
