// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic benchmark corpora. Each experiment has a
// function returning a typed result plus a Report() string; cmd/experiments
// and the repository-root benchmarks drive them. Absolute numbers differ
// from the paper (different substrate and data); the shapes — orderings,
// signs of lifts, crossovers — are the reproduction targets recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/model"
)

// Config scales the experiments. Defaults are laptop-sized; the paper-scale
// values (684K topic, 6.5M product) are reachable via cmd/experiments flags.
type Config struct {
	// TopicDocs and ProductDocs size the content corpora. Defaults 60000.
	TopicDocs, ProductDocs int
	// TopicPositiveRate and ProductPositiveRate override the Table 1 class
	// skews (0.86% and 1.48%). Quick test runs raise them so the test
	// splits hold enough positives to resolve metric differences.
	TopicPositiveRate, ProductPositiveRate float64
	// Events sizes the real-time events stream. Default 12000.
	Events int
	// DevFraction and TestFraction partition the corpora (paper: dev and
	// test are each a few percent of the pool). Defaults 1/12 and 1/6.
	DevFraction, TestFraction float64
	// LabelModelSteps for the generative model. Default 800.
	LabelModelSteps int
	// LRIterations for the discriminative FTRL training. Default 20000.
	LRIterations int
	// Seed drives everything.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.TopicDocs <= 0 {
		c.TopicDocs = 60000
	}
	if c.ProductDocs <= 0 {
		c.ProductDocs = 60000
	}
	if c.TopicPositiveRate <= 0 {
		c.TopicPositiveRate = 0.0086
	}
	if c.ProductPositiveRate <= 0 {
		c.ProductPositiveRate = 0.0148
	}
	if c.Events <= 0 {
		c.Events = 12000
	}
	if c.DevFraction <= 0 {
		c.DevFraction = 1.0 / 12
	}
	if c.TestFraction <= 0 {
		c.TestFraction = 1.0 / 5
	}
	if c.LabelModelSteps <= 0 {
		c.LabelModelSteps = 800
	}
	if c.LRIterations <= 0 {
		c.LRIterations = 20000
	}
	if c.Seed == 0 {
		c.Seed = 2019 // the paper's year, for determinism
	}
	return c
}

// contentTask bundles everything needed to run one content case study.
type contentTask struct {
	name    string
	docs    []*corpus.Document
	split   corpus.Split
	runners []apps.DocLF
	bigrams bool
	iters   int
}

// itersFor scales FTRL iterations with the training-set size so the model
// reaches calibrated scores at the paper's fixed 0.5 decision threshold
// (about twenty passes, floored at the configured minimum — per-coordinate
// FTRL weights grow like the square root of visit counts, so confident
// scores on the rare positive class need repeated passes).
func (t *contentTask) itersFor(n int) int {
	if 20*n > t.iters {
		return 20 * n
	}
	return t.iters
}

func (c Config) topicTask() (*contentTask, error) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{
		NumDocs: c.TopicDocs, PositiveRate: c.TopicPositiveRate, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	sp, err := corpus.MakeSplit(len(docs), int(float64(len(docs))*c.DevFraction),
		int(float64(len(docs))*c.TestFraction), c.Seed+1)
	if err != nil {
		return nil, err
	}
	return &contentTask{
		name: "topic", docs: docs, split: sp,
		runners: apps.TopicLFs(kgraph.Builtin(), 0.02, c.Seed),
		// The topic task has an order of magnitude more features (§6.1);
		// bigrams provide that here, and it trains for 10K iterations vs
		// 100K for product in the paper — we keep the 1:10 ratio.
		bigrams: true, iters: c.LRIterations,
	}, nil
}

func (c Config) productTask() (*contentTask, error) {
	docs, err := corpus.GenerateProduct(corpus.ProductSpec{
		NumDocs: c.ProductDocs, PositiveRate: c.ProductPositiveRate, Seed: c.Seed + 7,
	})
	if err != nil {
		return nil, err
	}
	sp, err := corpus.MakeSplit(len(docs), int(float64(len(docs))*c.DevFraction),
		int(float64(len(docs))*c.TestFraction), c.Seed+8)
	if err != nil {
		return nil, err
	}
	return &contentTask{
		name: "product", docs: docs, split: sp,
		runners: apps.ProductLFs(kgraph.Builtin(), c.Seed),
		bigrams: false, iters: c.LRIterations,
	}, nil
}

// votes runs the labeling functions over the full corpus once (the paper
// labels all unlabeled data; votes on dev/test rows are used only for the
// generative-model-only evaluation column).
func (t *contentTask) votes(parallelism int) (*labelmodel.Matrix, *lf.Report, error) {
	fs := dfs.NewMem()
	recs, err := corpus.MarshalDocuments(t.docs)
	if err != nil {
		return nil, nil, err
	}
	if err := lf.Stage[*corpus.Document](fs, "in/docs", recs, 8); err != nil {
		return nil, nil, err
	}
	exec := &lf.Executor[*corpus.Document]{
		FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
		Decode: corpus.UnmarshalDocument, Parallelism: parallelism,
	}
	return exec.Execute(t.runners)
}

// contentRun is one full weak-supervision run for a content task.
type contentRun struct {
	task       *contentTask
	matrix     *labelmodel.Matrix // full corpus votes
	genModel   *labelmodel.Model
	classifier *core.ContentClassifier
}

// runContent executes LFs, trains the label model on the training rows, and
// trains the discriminative classifier on the training posteriors. The
// optional columns parameter restricts the LF set (Table 3 ablation);
// equalWeights replaces the generative model (Table 4 ablation).
func (c Config) runContent(t *contentTask, columns []int, equalWeights bool) (*contentRun, error) {
	matrix, _, err := t.votes(4)
	if err != nil {
		return nil, err
	}
	if columns != nil {
		matrix = matrix.SubsetColumns(columns)
	}
	trainMatrix := matrix.SubsetRows(t.split.Train)

	var posteriors []float64
	var genModel *labelmodel.Model
	if equalWeights {
		posteriors = labelmodel.EqualWeightsPosteriors(trainMatrix)
	} else {
		genModel, err = labelmodel.TrainSamplingFree(trainMatrix, labelmodel.Options{
			Steps: c.LabelModelSteps, BatchSize: 64, LR: 0.05, Seed: c.Seed + 2,
		})
		if err != nil {
			return nil, err
		}
		posteriors = genModel.Posteriors(trainMatrix)
	}

	train := corpus.Select(t.docs, t.split.Train)
	dev := corpus.Select(t.docs, t.split.Dev)
	// Discriminative classifiers tune their decision threshold for F1 on
	// the dev set, the paper's "optimizing for F1 score" protocol; the
	// generative-model column stays at the raw 0.5 posterior threshold.
	clf, err := core.TrainContentClassifier(train, posteriors, dev, core.ContentTrainConfig{
		Bigrams: t.bigrams, Iterations: t.itersFor(len(train)), Seed: c.Seed + 3,
	})
	if err != nil {
		return nil, err
	}
	return &contentRun{task: t, matrix: matrix, genModel: genModel, classifier: clf}, nil
}

// baseline trains the dev-set supervised classifier every table normalizes to.
func (c Config) baseline(t *contentTask) (*core.ContentClassifier, error) {
	dev := corpus.Select(t.docs, t.split.Dev)
	clf, err := core.TrainSupervisedBaseline(dev, core.ContentTrainConfig{
		Bigrams: t.bigrams, Iterations: t.itersFor(len(dev)), Seed: c.Seed + 4,
	})
	if err != nil {
		return nil, err
	}
	// The baseline tunes its threshold on the same dev set it trained on —
	// the best a team with only the dev labels could do.
	if th, _, err := model.BestF1Threshold(clf.Scores(dev), corpus.GoldLabels(dev)); err == nil {
		clf.Threshold = th
	}
	return clf, nil
}

// evalOnTest evaluates a classifier on the task's test split.
func (t *contentTask) evalOnTest(clf *core.ContentClassifier) (model.Metrics, error) {
	return clf.Evaluate(corpus.Select(t.docs, t.split.Test))
}

// genModelTestMetrics evaluates the generative model directly on the test
// rows' votes (the non-servable "Generative Model Only" column of Table 2)
// at the paper's fixed 0.5 threshold.
func (r *contentRun) genModelTestMetrics() (model.Metrics, error) {
	if r.genModel == nil {
		return model.Metrics{}, fmt.Errorf("experiments: no generative model in this run")
	}
	testScores := r.genModel.Posteriors(r.matrix.SubsetRows(r.task.split.Test))
	testGold := corpus.GoldLabels(corpus.Select(r.task.docs, r.task.split.Test))
	return model.Evaluate(testScores, testGold, 0.5)
}
