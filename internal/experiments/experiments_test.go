package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps experiment smoke tests fast while preserving the shapes.
func quickCfg() Config {
	return Config{
		TopicDocs: 10000, ProductDocs: 10000, Events: 6000,
		TopicPositiveRate: 0.05, ProductPositiveRate: 0.05,
		DevFraction: 1.0 / 6, TestFraction: 1.0 / 5,
		LabelModelSteps: 400, LRIterations: 12000, Seed: 7,
	}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	topic, product := res.Rows[0], res.Rows[1]
	if topic.NumLFs != 10 || product.NumLFs != 8 {
		t.Errorf("LF counts %d/%d, want 10/8", topic.NumLFs, product.NumLFs)
	}
	// Table 1 shape: positive rates land near the configured skew.
	if topic.PositiveRate > 0.1 || product.PositiveRate > 0.1 {
		t.Errorf("positive rates %v/%v too high", topic.PositiveRate, product.PositiveRate)
	}
	if !strings.Contains(res.Report(), "Table 1") {
		t.Error("report missing title")
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.DryBell {
		task := res.DryBell[i].Task
		// Shape: DryBell lift over the dev baseline is positive on both
		// tasks (paper: +17.5% topic, +5.2% product).
		if res.DryBell[i].Relative.Lift <= 0 {
			t.Errorf("%s: DryBell lift %.3f, want > 0", task, res.DryBell[i].Relative.Lift)
		}
		// Shape: the discriminative classifier beats the generative model
		// (it generalizes beyond the LFs).
		if res.DryBell[i].Absolute.F1 <= res.GenOnly[i].Absolute.F1 {
			t.Errorf("%s: DryBell F1 %.3f should beat gen-only %.3f",
				task, res.DryBell[i].Absolute.F1, res.GenOnly[i].Absolute.F1)
		}
	}
	if !strings.Contains(res.Report(), "Snorkel DryBell") {
		t.Error("report malformed")
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := Table3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, lift := range res.LiftFromNonServable {
		// Shape: adding non-servable resources helps substantially
		// (paper: +36.4% and +68.2%).
		if lift <= 0.05 {
			t.Errorf("task %d: non-servable lift %.3f, want > 0.05", i, lift)
		}
	}
	if !strings.Contains(res.Report(), "Non-Servable") {
		t.Error("report malformed")
	}
}

func TestTable4Shapes(t *testing.T) {
	res, err := Table4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Shape: the generative model helps on average (paper: +4.8% average,
	// with small per-task lifts), and never hurts catastrophically.
	avg := 0.0
	for _, lift := range res.LiftFromGenerative {
		avg += lift
	}
	avg /= float64(len(res.LiftFromGenerative))
	if avg <= 0 {
		t.Errorf("average generative lift %.3f, want > 0", avg)
	}
	if !strings.Contains(res.Report(), "Equal Weights") {
		t.Error("report malformed")
	}
}

func TestFigure2Shapes(t *testing.T) {
	res, err := Figure2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	total := func(app string) int {
		n := 0
		for _, c := range res.Census[app] {
			n += c
		}
		return n
	}
	if total("topic") != 10 || total("product") != 8 || total("events") != 140 {
		t.Errorf("census totals %d/%d/%d, want 10/8/140",
			total("topic"), total("product"), total("events"))
	}
	if !strings.Contains(res.Report(), "Figure 2") {
		t.Error("report malformed")
	}
}

func TestFigure5Shapes(t *testing.T) {
	res, err := Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	for _, task := range res.Tasks {
		if task.DryBellRelativeF1 <= 1 {
			t.Errorf("%s: DryBell line %.3f should sit above the dev baseline", task.Task, task.DryBellRelativeF1)
		}
		if len(task.Curve) < 4 {
			t.Errorf("%s: curve has %d points", task.Task, len(task.Curve))
		}
		// Shape: the supervised curve broadly rises with labels (compare
		// first and last point).
		first, last := task.Curve[0], task.Curve[len(task.Curve)-1]
		if last.RelativeF1 <= first.RelativeF1 {
			t.Errorf("%s: supervised curve not rising (%.3f -> %.3f)",
				task.Task, first.RelativeF1, last.RelativeF1)
		}
	}
	if !strings.Contains(res.Report(), "Figure 5") {
		t.Error("report malformed")
	}
}

func TestFigure6AndEventsShapes(t *testing.T) {
	fig, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Shape: Logical-OR piles mass at the extremes; DryBell is smoother.
	if fig.LogicalOR.MassAtExtremes() <= fig.DryBell.MassAtExtremes() {
		t.Errorf("OR extremes %.3f should exceed DryBell %.3f",
			fig.LogicalOR.MassAtExtremes(), fig.DryBell.MassAtExtremes())
	}
	if !strings.Contains(fig.Report(), "Figure 6") {
		t.Error("report malformed")
	}

	ev, err := Events(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Shape: DryBell identifies more events at better quality (paper:
	// +58% events, +4.5% quality).
	if ev.MoreEventsIdentified <= 0 {
		t.Errorf("more events identified = %+.3f, want > 0", ev.MoreEventsIdentified)
	}
	if ev.DryBell.F1 <= ev.LogicalOR.F1 {
		t.Errorf("DryBell F1 %.3f should beat OR %.3f", ev.DryBell.F1, ev.LogicalOR.F1)
	}
	if !strings.Contains(ev.Report(), "Logical-OR") {
		t.Error("report malformed")
	}
}

func TestP1Shape(t *testing.T) {
	res, err := P1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Shape: sampling-free advances optimization faster per step than the
	// sampler (paper: 2x). Margins are modest because our Go Gibbs is far
	// faster than the original Python sampler.
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.2f, want > 1", res.Speedup)
	}
	if res.SamplingFreeStepsPerSec < 100 {
		t.Errorf("sampling-free %.0f steps/s, paper claims >100", res.SamplingFreeStepsPerSec)
	}
	if !strings.Contains(res.Report(), "speedup") {
		t.Error("report malformed")
	}
}

func TestP2Shape(t *testing.T) {
	cfg := quickCfg()
	cfg.TopicDocs = 4000
	res, err := P2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// On multi-core hosts parallelism should help; on single-core it must
	// at least not collapse (goroutine overhead stays small).
	if res.PerParallelism[4] < res.PerParallelism[1]*0.7 {
		t.Errorf("parallelism regression: %v", res.PerParallelism)
	}
	if res.ProjectedMinutesFor6M <= 0 {
		t.Error("projection missing")
	}
	if !strings.Contains(res.Report(), "6.5M") {
		t.Error("report malformed")
	}
}
