package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/labelmodel"
	"repro/internal/model"
	"repro/pkg/drybell"
)

// eventsRun holds the shared state for the events experiments (E1, Figure 6).
type eventsRun struct {
	events   []*corpus.Event
	devEnd   int // events[:devEnd] are held out of the reported metrics
	dbScores []float64
	orScores []float64
	dbClf    *core.EventClassifier
	orClf    *core.EventClassifier
}

// runEvents executes the 140 LFs over the non-servable features and trains
// the DNN over servable features twice (DryBell labels vs Logical-OR
// labels); both deploy at the production-default 0.5 threshold.
func runEvents(cfg Config) (*eventsRun, error) {
	cfg = cfg.withDefaults()
	events, err := corpus.GenerateEvents(corpus.DefaultEventsSpec(cfg.Events, cfg.Seed+11))
	if err != nil {
		return nil, err
	}
	p, err := drybell.New[*corpus.Event](
		drybell.WithCodec(
			func(e *corpus.Event) ([]byte, error) { return e.Marshal() },
			corpus.UnmarshalEvent,
		),
		drybell.WithTrainer(drybell.TrainerSamplingFree),
		drybell.WithLabelModel(labelmodel.Options{
			Steps: cfg.LabelModelSteps, BatchSize: 64, LR: 0.05, Seed: cfg.Seed + 12,
		}),
	)
	if err != nil {
		return nil, err
	}
	res, err := p.Run(context.Background(), drybell.SliceSource(events), apps.EventLFs(apps.NumEventLFs, cfg.Seed))
	if err != nil {
		return nil, err
	}
	orLabels := labelmodel.LogicalORPosteriors(res.Matrix)

	mkClf := func(labels []float64) (*core.EventClassifier, error) {
		return core.TrainEventClassifier(events, labels, core.EventTrainConfig{
			Hidden: []int{32, 16}, Epochs: 4, Seed: cfg.Seed + 13,
		})
	}
	dbClf, err := mkClf(res.Posteriors)
	if err != nil {
		return nil, err
	}
	orClf, err := mkClf(orLabels)
	if err != nil {
		return nil, err
	}

	// Both classifiers are deployed at the production-default threshold of
	// 0.5, as in the paper's Table 2-4 protocol; the dev slice remains for
	// diagnostics.
	run := &eventsRun{events: events, devEnd: len(events) / 5, dbClf: dbClf, orClf: orClf}
	if run.dbScores, err = dbClf.Scores(events[run.devEnd:]); err != nil {
		return nil, err
	}
	if run.orScores, err = orClf.Scores(events[run.devEnd:]); err != nil {
		return nil, err
	}
	return run, nil
}

// EventsResult reproduces §6.4's headline comparison: events of interest
// identified and quality, DryBell vs Logical-OR supervision.
type EventsResult struct {
	// DryBell and LogicalOR are test metrics at the 0.5 threshold.
	DryBell, LogicalOR model.Metrics
	// MoreEventsIdentified is DryBell's true positives over Logical-OR's,
	// minus 1 (the paper reports +58%).
	MoreEventsIdentified float64
	// QualityImprovement is the precision ratio minus 1 (the paper reports
	// +4.5% on an internal quality metric).
	QualityImprovement float64
}

// Events runs the real-time events comparison.
func Events(cfg Config) (*EventsResult, error) {
	cfg = cfg.withDefaults()
	run, err := runEvents(cfg)
	if err != nil {
		return nil, err
	}
	gold := corpus.EventGoldLabels(run.events[run.devEnd:])
	db, err := model.Evaluate(run.dbScores, gold, run.dbClf.Threshold)
	if err != nil {
		return nil, err
	}
	or, err := model.Evaluate(run.orScores, gold, run.orClf.Threshold)
	if err != nil {
		return nil, err
	}
	res := &EventsResult{DryBell: db, LogicalOR: or}
	if or.TP > 0 {
		res.MoreEventsIdentified = float64(db.TP)/float64(or.TP) - 1
	}
	if or.Precision > 0 {
		res.QualityImprovement = db.Precision/or.Precision - 1
	}
	return res, nil
}

// Report renders the comparison.
func (r *EventsResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Real-time events (§6.4): DryBell vs Logical-OR weak supervision\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %6s %8s\n", "Arm", "P", "R", "F1", "TP")
	fmt.Fprintf(&b, "%-12s %6.3f %6.3f %6.3f %8d\n", "Logical-OR",
		r.LogicalOR.Precision, r.LogicalOR.Recall, r.LogicalOR.F1, r.LogicalOR.TP)
	fmt.Fprintf(&b, "%-12s %6.3f %6.3f %6.3f %8d\n", "DryBell",
		r.DryBell.Precision, r.DryBell.Recall, r.DryBell.F1, r.DryBell.TP)
	fmt.Fprintf(&b, "events of interest identified: %+.1f%% (paper: +58%%)\n", 100*r.MoreEventsIdentified)
	fmt.Fprintf(&b, "quality (precision) improvement: %+.1f%% (paper: +4.5%%)\n", 100*r.QualityImprovement)
	return b.String()
}
