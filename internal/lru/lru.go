// Package lru provides the small concurrent LRU cache the online serving
// path puts in front of expensive service calls (NLP annotation, knowledge
// graph lookups), so repeated traffic does not re-tokenize or re-classify
// identical content. It favors simplicity over sharded scalability: one
// mutex, a doubly linked recency list, and hit/miss counters for the
// /v1/metrics cache-hit-rate gauge.
package lru

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Cache is a fixed-capacity least-recently-used cache. Safe for concurrent
// use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List          // guarded by mu; front = most recently used
	items map[K]*list.Element // guarded by mu

	hits, misses atomic.Int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most capacity entries.
func New[K comparable, V any](capacity int) (*Cache[K, V], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lru: capacity %d, want > 0", capacity)
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}, nil
}

// Get returns the cached value and whether it was present, refreshing the
// entry's recency and counting the lookup as a hit or miss.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Add inserts or refreshes an entry, evicting the least recently used entry
// when the cache is full.
func (c *Cache[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits returns the number of Get calls that found their key.
func (c *Cache[K, V]) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Get calls that did not.
func (c *Cache[K, V]) Misses() int64 { return c.misses.Load() }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache[K, V]) HitRate() float64 {
	h, m := float64(c.hits.Load()), float64(c.misses.Load())
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}
