package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestRejectsBadCapacity(t *testing.T) {
	if _, err := New[string, int](0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New[string, int](-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c, err := New[string, int](2)
	if err != nil {
		t.Fatal(err)
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b is now oldest
		t.Fatal("a missing")
	}
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction, want a refreshed instead")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c, _ := New[string, int](2)
	c.Add("a", 1)
	c.Add("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("a = %d, want 9", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestCounters(t *testing.T) {
	c, _ := New[string, int](4)
	c.Add("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("zzz")
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", c.Hits(), c.Misses())
	}
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
}

func TestHitRateBeforeLookups(t *testing.T) {
	c, _ := New[string, int](4)
	if c.HitRate() != 0 {
		t.Errorf("hit rate = %v before any lookup", c.HitRate())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				if _, ok := c.Get(k); !ok {
					c.Add(k, k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
	_ = fmt.Sprintf("%d/%d", c.Hits(), c.Misses())
}
