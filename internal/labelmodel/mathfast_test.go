package labelmodel

import (
	"math"
	"testing"
)

// TestSoftplusSigmoidNegMatchesStdlib sweeps the kernel's whole input range
// against the stdlib formulas. The kernel trades the last few digits for
// pipeline-friendly evaluation (degree-8 exp, shared reciprocal); its
// ~3e−9 worst-case relative error is still orders of magnitude inside the
// trainer's convergence tolerance and the equivalence-test margins.
func TestSoftplusSigmoidNegMatchesStdlib(t *testing.T) {
	for x := 0.0; x <= 60; x += 0.000917 {
		sp, sig := softplusSigmoidNeg(x)
		e := math.Exp(-x)
		wantSp := math.Log1p(e)
		wantSig := 1 / (1 + e)
		if math.Abs(sp-wantSp) > 1e-8*(1+wantSp) {
			t.Fatalf("softplus(e^-%v) = %v, want %v", x, sp, wantSp)
		}
		if math.Abs(sig-wantSig) > 1e-8 {
			t.Fatalf("sigmoid(%v) = %v, want %v", x, sig, wantSig)
		}
	}
	// Cutoff region: beyond 40 the kernel returns the exact limits.
	if sp, sig := softplusSigmoidNeg(41); sp != 0 || sig != 1 {
		t.Fatalf("softplusSigmoidNeg(41) = (%v, %v), want (0, 1)", sp, sig)
	}
}

func TestExpPolyMatchesStdlib(t *testing.T) {
	for x := -45.0; x <= 0; x += 0.000613 {
		got := expPoly(x)
		want := math.Exp(x)
		if math.Abs(got-want) > 5e-9*want {
			t.Fatalf("expPoly(%v) = %v, want %v (rel err %.2e)",
				x, got, want, math.Abs(got-want)/want)
		}
	}
}
