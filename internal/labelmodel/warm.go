package labelmodel

import (
	"fmt"
)

// TrainState carries what a sampling-free-fast training run needs to warm-
// start the next one over a grown corpus: the converged accuracies and the
// compacted matrix they were fit on. States are produced and consumed by
// TrainSamplingFreeFastWarm; callers treat them as opaque except for Alpha.
type TrainState struct {
	// Alpha is the converged accuracy vector of the producing run, kept for
	// inspection and drift metrics. It does NOT seed the next run's
	// optimizer: the profiled likelihood is non-convex, and a seed carried
	// from a smaller corpus's optimum can descend into a different KKT basin
	// than the moment seed, making the model depend on growth history. Every
	// run re-seeds from the moment estimate of its own (incrementally
	// extended) compaction, so warm and cold training are the same pure
	// function of the vote matrix.
	Alpha []float64
	// Compact is the compacted matrix of the producing run — the warm-start
	// payload. A warm start over an append-only corpus re-compacts only the
	// appended rows against it (ExtendCompact); nil states pay a full
	// compaction.
	Compact *CompactMatrix
	// Iterations is the number of Newton iterations the producing run spent
	// — the baseline for "iterations saved" metrics.
	Iterations int
}

// ExtendCompact compacts only the appended rows of mx — rows
// [prev.NumExamples(), mx.NumExamples()) — against the distinct-row table of
// prev, returning a new CompactMatrix over the whole of mx. prev is not
// mutated and remains valid.
//
// The caller guarantees that rows [0, prev.NumExamples()) of mx are
// byte-identical to the matrix prev was compacted from; ExtendCompact cannot
// verify this without re-scanning the prefix, which would cost exactly the
// full compaction it exists to avoid. Corpora with deleted or rewritten rows
// must re-Compact from scratch (see TrainSamplingFreeFastWarm's nil-Compact
// path).
//
// Cost: O(U·n) to rebuild the key table from prev's distinct rows plus
// O(k·n) over the k appended rows, instead of O(m·n) over everything.
func ExtendCompact(prev *CompactMatrix, mx *Matrix) (*CompactMatrix, error) {
	if prev == nil {
		return nil, fmt.Errorf("labelmodel: ExtendCompact with nil previous compaction")
	}
	if mx == nil {
		return nil, fmt.Errorf("labelmodel: ExtendCompact with nil matrix")
	}
	if mx.n != prev.n {
		return nil, fmt.Errorf("labelmodel: ExtendCompact: matrix has %d labeling functions, previous compaction has %d", mx.n, prev.n)
	}
	if mx.m < prev.m {
		return nil, fmt.Errorf("labelmodel: ExtendCompact: matrix has %d rows, fewer than the %d already compacted (deletions require a full re-Compact)", mx.m, prev.m)
	}

	// Deep-copy the previous compaction: Mult, Voted, and MajorityAgree are
	// incremented in place, and the packed column slices are appended to, so
	// sharing backing arrays would corrupt prev for its other holders (the
	// last training run's state).
	c := &CompactMatrix{
		m:             mx.m,
		n:             mx.n,
		Mult:          append([]int32(nil), prev.Mult...),
		Start:         append([]int32(nil), prev.Start...),
		PosEnd:        append([]int32(nil), prev.PosEnd...),
		Cols:          append([]uint16(nil), prev.Cols...),
		RowOf:         make([]int32, mx.m),
		Voted:         append([]int64(nil), prev.Voted...),
		MajorityAgree: append([]int64(nil), prev.MajorityAgree...),
	}
	copy(c.RowOf, prev.RowOf)
	// Start carries U+1 entries; drop the sentinel while appending rows and
	// restore it at the end. ends[r] tracks each row's packed-segment end —
	// Start[r+1] in the finished layout — which mid-build is not otherwise
	// addressable for the youngest row once later rows append columns.
	c.Start = c.Start[:len(c.Mult)]
	ends := make([]int32, len(c.Mult), cap(c.Mult))
	copy(ends, prev.Start[1:])

	appendCols := func(row []Label) {
		c.Start = append(c.Start, int32(len(c.Cols)))
		for j, v := range row {
			if v == Positive {
				c.Cols = append(c.Cols, uint16(j))
			}
		}
		c.PosEnd = append(c.PosEnd, int32(len(c.Cols)))
		for j, v := range row {
			if v == Negative {
				c.Cols = append(c.Cols, uint16(j))
			}
		}
		ends = append(ends, int32(len(c.Cols)))
	}
	// aggregate folds one appended example with distinct row r into the
	// per-LF sufficient statistics — the same arithmetic compactChecked runs
	// over (row, multiplicity) pairs at the end, applied incrementally.
	aggregate := func(r int32) {
		pos := c.Cols[c.Start[r]:c.PosEnd[r]]
		neg := c.Cols[c.PosEnd[r]:ends[r]]
		maj := len(pos) - len(neg)
		for _, j := range pos {
			c.Voted[j]++
			if maj > 0 {
				c.MajorityAgree[j]++
			}
		}
		for _, j := range neg {
			c.Voted[j]++
			if maj < 0 {
				c.MajorityAgree[j]++
			}
		}
	}

	if mx.n <= 32 {
		tab := newRowTable(len(prev.Mult) + (mx.m - prev.m))
		defer tab.release()
		// Re-seed the table from the previous distinct rows so appended
		// duplicates of known patterns resolve to their existing indices.
		for r := range prev.Mult {
			var key uint64
			for _, j := range prev.Cols[prev.Start[r]:prev.PosEnd[r]] {
				key |= 1 << (2 * uint(j))
			}
			for _, j := range prev.Cols[prev.PosEnd[r]:prev.Start[r+1]] {
				key |= 3 << (2 * uint(j))
			}
			tab.insert(key, int32(r))
		}
		for i := prev.m; i < mx.m; i++ {
			var key, bad uint64
			row := mx.data[i*mx.n : (i+1)*mx.n]
			for j, v := range row {
				code := voteCode[uint8(v)] //drybellvet:rawvote — indexing the encoder's table
				bad |= code
				key |= (code & 3) << (2 * uint(j))
			}
			if bad&voteBad != 0 {
				for j, v := range row {
					if v < Negative || v > Positive {
						return nil, fmt.Errorf("labelmodel: invalid label %d at row %d column %d", v, i, j)
					}
				}
			}
			r, fresh := tab.insert(key, int32(len(c.Mult)))
			if fresh {
				c.Mult = append(c.Mult, 0)
				appendCols(row)
			}
			c.Mult[r]++
			c.RowOf[i] = r
			aggregate(r)
		}
	} else {
		buf := make([]byte, mx.n)
		seen := make(map[string]int32, len(prev.Mult)+(mx.m-prev.m)/4+16)
		for r := range prev.Mult {
			if err := EncodeVotes(buf, prev.RowVotes(r)); err != nil {
				return nil, fmt.Errorf("labelmodel: previous compaction row %d: %w", r, err)
			}
			seen[string(buf)] = int32(r)
		}
		for i := prev.m; i < mx.m; i++ {
			row := mx.data[i*mx.n : (i+1)*mx.n]
			if err := EncodeVotes(buf, row); err != nil {
				return nil, fmt.Errorf("labelmodel: row %d: %w", i, err)
			}
			r, ok := seen[string(buf)]
			if !ok {
				r = int32(len(c.Mult))
				seen[string(buf)] = r
				c.Mult = append(c.Mult, 0)
				appendCols(row)
			}
			c.Mult[r]++
			c.RowOf[i] = r
			aggregate(r)
		}
	}
	c.Start = append(c.Start, int32(len(c.Cols)))
	return c, nil
}

// TrainSamplingFreeFastWarm is TrainSamplingFreeFast with a warm start:
// when the corpus only grew, it re-compacts just the appended rows against
// the previous run's compaction (ExtendCompact) instead of re-scanning the
// whole matrix — the O(delta) piece of incremental training.
//
// prev == nil is a cold start, identical to TrainSamplingFreeFast.
// prev.Compact == nil (or a compaction whose shape no longer matches) pays a
// full compaction — the right call after deletions or any rewrite of
// already-compacted rows, where the append-only prefix guarantee of
// ExtendCompact does not hold.
//
// Warm starting never touches the optimizer's seed: Newton always starts
// from the moment estimate of the compacted matrix, so the trained model is
// a pure function of the votes and a warm run reproduces a cold retrain
// exactly — not merely within tolerance. (Seeding from prev.Alpha was tried
// and rejected: the profiled likelihood is non-convex, and on real corpora
// the carried seed can converge into a different KKT basin than the moment
// seed, shifting posteriors by ~0.4 while every vote is identical.) The
// returned TrainState feeds the next warm start.
func TrainSamplingFreeFastWarm(mx *Matrix, opts Options, prev *TrainState) (*Model, *TrainState, error) {
	opts = opts.withDefaults()
	if mx == nil {
		return nil, nil, fmt.Errorf("labelmodel: nil matrix")
	}
	var cm *CompactMatrix
	var err error
	extendable := prev != nil && prev.Compact != nil &&
		prev.Compact.n == mx.n && prev.Compact.m <= mx.m
	if extendable {
		cm, err = ExtendCompact(prev.Compact, mx)
	} else {
		cm, err = mx.compactChecked()
	}
	if err != nil {
		return nil, nil, err
	}
	ft := newFastTrainer(cm, opts)
	alpha, beta, err := ft.run()
	if err != nil {
		return nil, nil, err
	}
	model := &Model{Alpha: alpha, Beta: beta, LogPriorOdds: opts.logPriorOdds()}
	state := &TrainState{
		Alpha:      append([]float64(nil), alpha...),
		Compact:    cm,
		Iterations: ft.iters,
	}
	return model, state, nil
}
