package labelmodel

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// TrainSamplingFreeFast fits the same marginal-likelihood objective as
// TrainSamplingFree (§5.2) without a compute graph, per-step tensor
// allocation, or minibatch sampling. It is the production hot path; the
// graph-based trainer remains the reference implementation.
//
// Three structural facts about the objective make a much faster algorithm
// possible than replaying minibatch SGD:
//
//  1. Vote rows repeat. The matrix is compacted once (Matrix.Compact) and
//     every full-batch pass runs over the U distinct rows weighted by
//     multiplicity instead of all m examples — the deduplicate-and-aggregate
//     trick of relational engines, with U ≪ m in practice.
//
//  2. The propensity parameters β have a closed-form profile. The posterior
//     P(Y|Λ) depends only on α, so β's stationarity condition decouples
//     per-LF into  m·u_j(α_j,β_j) = voted_j  (propensity matches coverage),
//     solved exactly by β_j = logit(voted_j/m) − log(2·cosh α_j) when L2 is
//     zero and by a monotone 1-D Newton otherwise. β never needs gradient
//     steps.
//
//  3. The profiled objective F(α) is smooth in just n variables, so damped
//     projected Newton iterations with the exact analytic gradient and
//     Hessian (accumulated over compacted rows, in parallel across
//     runtime.GOMAXPROCS workers) converge to the optimizer in a handful of
//     full-batch steps — typically 10–20 rather than thousands.
//
// Options semantics: Steps caps the Newton iterations (the default is far
// more than needed; convergence is detected from the projected gradient),
// BatchSize is ignored (updates are always full-batch and deterministic),
// LR is ignored (Newton sets its own scale), and Seed is ignored (there is
// no sampling). L2, PriorPositive and the [0, maxAlpha] accuracy projection
// behave exactly as in the reference trainer. LearnPrior is not supported,
// matching TrainSamplingFree.
//
// The result agrees with a converged full-batch run of the reference
// trainer to within fractions of the equivalence-test tolerance (see
// fast_test.go); because updates are deterministic, repeated runs are
// bit-identical for a fixed GOMAXPROCS.
func TrainSamplingFreeFast(mx *Matrix, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	if mx == nil {
		return nil, fmt.Errorf("labelmodel: nil matrix")
	}
	// Validation is folded into the compaction pass: the packing loop already
	// touches every entry, so a separate Validate scan would double the
	// preprocessing cost for nothing.
	cm, err := mx.compactChecked()
	if err != nil {
		return nil, err
	}
	ft := newFastTrainer(cm, opts)
	alpha, beta, err := ft.run()
	if err != nil {
		return nil, err
	}
	return &Model{Alpha: alpha, Beta: beta, LogPriorOdds: opts.logPriorOdds()}, nil
}

// minCoverage floors the per-LF empirical coverage used by the β profile,
// keeping β finite for all-abstain (or all-vote) functions — the same floor
// initBeta applies for the gradient trainers.
const minCoverage = 1e-4

// fastParallelMinRows is the compacted-row count below which the reduction
// runs on the caller's goroutine; tiny problems don't amortize worker spawns.
const fastParallelMinRows = 2048

// fastTrainer holds the compacted problem and every buffer the Newton loop
// needs, so iterations allocate nothing.
type fastTrainer struct {
	cm    *CompactMatrix
	opts  Options
	prior float64

	workers int

	// iters counts the Newton iterations run actually spent, for warm-start
	// "iterations saved" accounting.
	iters int

	// Per-LF state at the current α (recomputed by lfTerms).
	beta []float64 // profiled β*(α)
	a2   []float64 // 2·α, the per-vote log-odds contribution
	tj   []float64 // t_j = ∂Z_j/∂α_j at (α_j, β*_j)
	dtm  []float64 // d t_j / d α_j along the profiled manifold
	cvr  []float64 // floored coverage voted_j/m

	// Per-worker partial reductions, merged in worker order so results are
	// deterministic for a fixed worker count.
	partF []float64
	partG [][]float64
	partH [][]float64 // lower triangle, n(n+1)/2 per worker

	// hw caches each distinct row's curvature weight 4·mult·σ(1−σ) from the
	// last evalFG, so the deferred Hessian pass is arithmetic-only.
	hw []float64

	grad []float64
	hess []float64 // lower triangle of the profiled Hessian
	// Trial-point state: evalFG/evalHess write here, and an accepted trial
	// is swapped in without copying.
	gradT []float64
	hessT []float64
	// Newton scratch.
	free  []int
	dir   []float64
	trial []float64
	chol  []float64
	rhs   []float64
}

func newFastTrainer(cm *CompactMatrix, opts Options) *fastTrainer {
	n := cm.NumFuncs()
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if cm.NumUnique() < fastParallelMinRows {
		w = 1
	}
	ft := &fastTrainer{
		cm:      cm,
		opts:    opts,
		prior:   opts.logPriorOdds(),
		workers: w,
		beta:    make([]float64, n),
		a2:      make([]float64, n),
		tj:      make([]float64, n),
		dtm:     make([]float64, n),
		cvr:     make([]float64, n),
		partF:   make([]float64, w),
		partG:   make([][]float64, w),
		partH:   make([][]float64, w),
		hw:      make([]float64, cm.NumUnique()),
		grad:    make([]float64, n),
		hess:    make([]float64, n*(n+1)/2),
		gradT:   make([]float64, n),
		hessT:   make([]float64, n*(n+1)/2),
		free:    make([]int, 0, n),
		dir:     make([]float64, n),
		trial:   make([]float64, n),
		chol:    make([]float64, n*n),
		rhs:     make([]float64, n),
	}
	m := float64(cm.NumExamples())
	for j, v := range cm.Voted {
		c := float64(v) / m
		ft.cvr[j] = min(max(c, minCoverage), 1-minCoverage)
	}
	for wi := 0; wi < w; wi++ {
		ft.partG[wi] = make([]float64, n)
		ft.partH[wi] = make([]float64, n*(n+1)/2)
	}
	return ft
}

// run executes the projected damped Newton loop and returns the final
// parameters.
func (ft *fastTrainer) run() ([]float64, []float64, error) {
	n := ft.cm.NumFuncs()
	m := float64(ft.cm.NumExamples())
	// Always seed from the method-of-moments estimate — a pure function of
	// the compacted matrix. The profiled likelihood is non-convex, and a
	// history-dependent seed (say, a previous corpus's optimum) can descend
	// into a different KKT basin than this seed would, making the trained
	// model depend on how the corpus grew rather than on what it contains.
	// Determinism here is what lets a warm incremental run reproduce a cold
	// retrain exactly.
	alpha := ft.momentInit()

	const (
		armijo  = 1e-4
		maxHalf = 30
	)
	// Summed-gradient tolerance: 1e-8 per example leaves the solution
	// within ~1e-7 of the exact optimum — two orders of magnitude inside
	// the equivalence-test tolerances — while typically saving the last,
	// purely cosmetic Newton iteration.
	gtol := 1e-8 * m

	f := ft.evalFG(alpha)
	ft.grad, ft.gradT = ft.gradT, ft.grad
	hessValid := false
	for iter := 0; iter < ft.opts.Steps; iter++ {
		// KKT-style freeze: a coordinate pinned at a bound whose gradient
		// pushes further outward leaves the Newton system this iteration.
		ft.free = ft.free[:0]
		gmax := 0.0
		for j := 0; j < n; j++ {
			g := ft.grad[j]
			if (alpha[j] <= 0 && g > 0) || (alpha[j] >= maxAlpha && g < 0) {
				continue
			}
			ft.free = append(ft.free, j)
			gmax = max(gmax, math.Abs(g))
		}
		if len(ft.free) == 0 || gmax <= gtol {
			break // the just-converged point never pays for a Hessian
		}
		if !hessValid {
			// Deferred: built from the accepted evalFG's cached row
			// curvatures, and only once per accepted point.
			ft.evalHess()
			ft.hess, ft.hessT = ft.hessT, ft.hess
			hessValid = true
		}

		improved := false
		lambda := 0.0
		for try := 0; try < 8 && !improved; try++ {
			if !ft.newtonDirection(lambda) {
				lambda = nextDamping(lambda, ft.hess, n)
				continue
			}
			// Backtracking line search on the projected step. Each probe
			// evaluates objective and gradient in one row pass (caching the
			// row curvatures); the accepted point's Hessian is assembled
			// lazily at the top of the next iteration.
			step := 1.0
			for h := 0; h < maxHalf; h++ {
				gdot := 0.0
				for j := 0; j < n; j++ {
					ft.trial[j] = min(max(alpha[j]+step*ft.dir[j], 0), maxAlpha)
					gdot += ft.grad[j] * (ft.trial[j] - alpha[j])
				}
				if gdot > 0 {
					break // projection turned this into an ascent step
				}
				ftrial := ft.evalFG(ft.trial)
				if ftrial <= f+armijo*gdot {
					alpha, ft.trial = ft.trial, alpha
					ft.grad, ft.gradT = ft.gradT, ft.grad
					f = ftrial
					improved = true
					hessValid = false
					ft.iters++ // accepted Newton steps, for warm-start accounting
					break
				}
				step /= 2
			}
			if !improved {
				lambda = nextDamping(lambda, ft.hess, n)
			}
		}
		if !improved {
			break // no descent direction left: as converged as FP allows
		}
	}

	clampAlpha(alpha)
	ft.lfTerms(alpha)
	beta := make([]float64, n)
	copy(beta, ft.beta)
	return alpha, beta, nil
}

// momentInit seeds α from each function's agreement rate with the majority
// vote — a method-of-moments estimate in the spirit of the original data-
// programming accuracy estimators, read straight off the aggregates the
// compaction pass already computed. Newton converges from the flat
// initialAlpha start too; starting near the answer just saves a few damped
// iterations. The estimate is clamped well inside the projection box so no
// coordinate starts frozen.
func (ft *fastTrainer) momentInit() []float64 {
	cm := ft.cm
	n := cm.NumFuncs()
	alpha := make([]float64, n)
	for j := range alpha {
		// Laplace-smoothed accuracy → α = ½·logit(acc), clamped to the
		// interior; σ(2α) is the modeled accuracy given a vote.
		acc := (float64(cm.MajorityAgree[j]) + 1) / (float64(cm.Voted[j]) + 2)
		alpha[j] = min(max(0.5*math.Log(acc/(1-acc)), 0.05), maxAlpha-0.05)
	}
	return alpha
}

// lfTerms refreshes the per-LF state at α: the profiled β*, and the first
// and (manifold) second derivatives of the per-LF partition function. It
// returns the α-independent-per-row part of the objective:
//
//	Σ_j m·Z_j − voted_j·β_j  (+ L2·(‖α‖² + ‖β‖²))
func (ft *fastTrainer) lfTerms(alpha []float64) float64 {
	m := float64(ft.cm.NumExamples())
	// The reference trainer minimizes mean NLL + L2·(‖α‖²+‖β‖²); this
	// trainer works with the summed NLL, so the equivalent ridge weight is
	// m·L2.
	l2 := ft.opts.L2 * m
	constF := 0.0
	for j, a := range alpha {
		c := ft.cvr[j]
		voted := c * m
		// Closed-form profile for L2 = 0; Newton from it otherwise. The
		// equation m·u(a,β) + 2·λ·β = voted is strictly increasing in β.
		b := math.Log(c/(1-c)) - log2cosh(a)
		if l2 > 0 {
			for it := 0; it < 40; it++ {
				u, _ := propensity(a, b)
				h := m*u - voted + 2*l2*b
				if math.Abs(h) <= 1e-12*m {
					break
				}
				d := m*u*(1-u) + 2*l2
				b -= h / d
			}
		}
		ft.beta[j] = b
		ft.a2[j] = 2 * a

		u, t := propensity(a, b)
		ft.tj[j] = t
		// dt/dα along the manifold: the direct term u − t² plus the chain
		// through dβ*/dα = −m·t(1−u) / (m·u(1−u) + 2·λ). For λ = 0 and
		// u = c this collapses to c·sech²(α).
		den := m*u*(1-u) + 2*l2
		dt := u - t*t
		if den > 0 {
			dt -= m * t * (1 - u) * t * (1 - u) / den
		}
		ft.dtm[j] = dt

		z := math.Log1p(math.Exp(a+b) + math.Exp(b-a))
		constF += m*z - voted*b
		if l2 > 0 {
			constF += l2 * (a*a + b*b)
		}
	}
	return constF
}

// propensity returns u = P(λ_j ≠ 0) and t = ∂Z_j/∂α_j at (α, β).
func propensity(a, b float64) (u, t float64) {
	ea := math.Exp(a + b)
	eb := math.Exp(b - a)
	den := 1 + ea + eb
	return (ea + eb) / den, (ea - eb) / den
}

// log2cosh computes log(e^x + e^−x) without overflow.
func log2cosh(x float64) float64 {
	ax := math.Abs(x)
	return ax + math.Log1p(math.Exp(-2*ax))
}

// evalFG evaluates the profiled negative log likelihood and its gradient at
// α in one pass over the compacted rows, caching each row's curvature
// weight for a later evalHess. The gradient lands in gradT (the trial
// buffer); run swaps it in on acceptance. Returns the objective value.
//
// Per distinct row the pass computes the posterior log odds
// ℓ = prior + Σ_j 2α_j·v_rj, then derives every needed quantity from a
// single e^{−|ℓ|}: the data log likelihood softplus(ℓ) − ℓ/2, the posterior
// σ(ℓ) for the gradient weight mult·(2σ−1), and the cached curvature weight
// 4·mult·σ(1−σ).
func (ft *fastTrainer) evalFG(alpha []float64) float64 {
	n := ft.cm.NumFuncs()
	m := float64(ft.cm.NumExamples())
	cm := ft.cm
	f := ft.lfTerms(alpha)

	ft.reduceRows(func(w int, lo, hi int) {
		g := ft.partG[w]
		for i := range g {
			g[i] = 0
		}
		sum := 0.0
		cols, a2 := cm.Cols, ft.a2
		for r := lo; r < hi; r++ {
			pos := cols[cm.Start[r]:cm.PosEnd[r]]
			neg := cols[cm.PosEnd[r]:cm.Start[r+1]]
			l := ft.prior
			for _, j := range pos {
				l += a2[j]
			}
			for _, j := range neg {
				l -= a2[j]
			}
			mult := float64(cm.Mult[r])
			// One e^{−|ℓ|} yields both branches: softplus(ℓ) − ℓ/2 =
			// |ℓ|/2 + log1p(e^{−|ℓ|}) and σ(ℓ) = 1/(1+e^{−ℓ}).
			al := math.Abs(l)
			sp, sig := softplusSigmoidNeg(al)
			sum -= mult * (al/2 + sp)
			if l < 0 {
				sig = 1 - sig
			}
			gw := mult * (2*sig - 1) // multiplicity-weighted 2p−1
			ft.hw[r] = 4 * mult * sig * (1 - sig)
			// Gradient data term: −Σ mult·v_rj·(2p−1).
			for _, j := range pos {
				g[j] -= gw
			}
			for _, j := range neg {
				g[j] += gw
			}
		}
		ft.partF[w] = sum
	})

	l2 := ft.opts.L2 * m // summed-NLL equivalent of the reference's ridge
	for j := 0; j < n; j++ {
		ft.gradT[j] = m*ft.tj[j] + 2*l2*alpha[j]
	}
	for w := 0; w < ft.workers; w++ {
		f += ft.partF[w]
		for j, g := range ft.partG[w] {
			ft.gradT[j] += g
		}
	}
	return f
}

// hessDropTol is the per-row curvature weight below which evalHess skips a
// row's outer-product contribution (see the comment at the skip site).
const hessDropTol = 1e-3

// evalHess assembles the Hessian of the last accepted evalFG point into
// hessT from the cached per-row curvature weights — arithmetic only, no
// transcendentals. run defers this until a Newton direction is actually
// needed, so the final converged point and rejected line-search probes
// never pay for it.
func (ft *fastTrainer) evalHess() {
	n := ft.cm.NumFuncs()
	m := float64(ft.cm.NumExamples())
	cm := ft.cm

	ft.reduceRows(func(w int, lo, hi int) {
		h := ft.partH[w]
		for i := range h {
			h[i] = 0
		}
		cols := cm.Cols
		for r := lo; r < hi; r++ {
			hw := ft.hw[r]
			// Rows the model is already confident about carry negligible
			// curvature (σ(1−σ) decays as e^{−|ℓ|}); dropping them from the
			// Hessian leaves the gradient — and therefore the fixed point —
			// exact, and only perturbs the Newton direction by O(tol)
			// inside a damped, line-searched loop. On concentrated
			// posteriors this skips most of the pair-scatter work.
			if hw <= hessDropTol {
				continue
			}
			pos := cols[cm.Start[r]:cm.PosEnd[r]]
			neg := cols[cm.PosEnd[r]:cm.Start[r+1]]
			// Hessian data term: −4·mult·p(1−p)·v_r v_rᵀ (lower triangle).
			// Same-sign pairs come pre-ordered (each segment is ascending),
			// so only the cross pairs need an orientation check.
			for ka, ja := range pos {
				base := int(ja) * (int(ja) + 1) / 2
				for _, jb := range pos[:ka+1] {
					h[base+int(jb)] -= hw
				}
			}
			for ka, ja := range neg {
				a := int(ja)
				base := a * (a + 1) / 2
				for _, jb := range neg[:ka+1] {
					h[base+int(jb)] -= hw
				}
				for _, jb := range pos {
					if b := int(jb); b <= a {
						h[base+b] += hw
					} else {
						h[b*(b+1)/2+a] += hw
					}
				}
			}
		}
	})

	for i := range ft.hessT {
		ft.hessT[i] = 0
	}
	for w := 0; w < ft.workers; w++ {
		for i, h := range ft.partH[w] {
			ft.hessT[i] += h
		}
	}
	l2 := ft.opts.L2 * m
	for j := 0; j < n; j++ {
		ft.hessT[triIndex(j, j)] += m*ft.dtm[j] + 2*l2
	}
}

// triIndex maps (row a ≥ col b) to the packed lower-triangle offset,
// swapping when needed.
func triIndex(a, b int) int {
	if a < b {
		a, b = b, a
	}
	return a*(a+1)/2 + b
}

// reduceRows runs fn over contiguous chunks of the distinct rows, one chunk
// per worker. Chunk boundaries depend only on the row count and worker
// count, and partials are merged in worker order, so the reduction is
// deterministic.
func (ft *fastTrainer) reduceRows(fn func(w, lo, hi int)) {
	u := ft.cm.NumUnique()
	if ft.workers == 1 {
		fn(0, 0, u)
		return
	}
	var wg sync.WaitGroup
	chunk := (u + ft.workers - 1) / ft.workers
	for w := 0; w < ft.workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, u)
		if lo >= hi {
			ft.partF[w] = 0
			g := ft.partG[w]
			for i := range g {
				g[i] = 0
			}
			h := ft.partH[w]
			for i := range h {
				h[i] = 0
			}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// newtonDirection solves (H_ff + λI)·d = −g_f over the free coordinates via
// Cholesky, writing the full-dimension direction into ft.dir (zero on frozen
// coordinates). It reports false when the damped system is not positive
// definite.
func (ft *fastTrainer) newtonDirection(lambda float64) bool {
	k := len(ft.free)
	a := ft.chol[:k*k]
	for ri, j := range ft.free {
		for ci, l := range ft.free[:ri+1] {
			v := ft.hess[triIndex(j, l)]
			if ri == ci {
				v += lambda
			}
			a[ri*k+ci] = v
		}
		ft.rhs[ri] = -ft.grad[j]
	}
	// In-place Cholesky on the lower triangle.
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			s := a[i*k+j]
			for l := 0; l < j; l++ {
				s -= a[i*k+l] * a[j*k+l]
			}
			if i == j {
				if s <= 0 {
					return false
				}
				a[i*k+i] = math.Sqrt(s)
			} else {
				a[i*k+j] = s / a[j*k+j]
			}
		}
	}
	// Forward then back substitution.
	for i := 0; i < k; i++ {
		s := ft.rhs[i]
		for l := 0; l < i; l++ {
			s -= a[i*k+l] * ft.rhs[l]
		}
		ft.rhs[i] = s / a[i*k+i]
	}
	for i := k - 1; i >= 0; i-- {
		s := ft.rhs[i]
		for l := i + 1; l < k; l++ {
			s -= a[l*k+i] * ft.rhs[l]
		}
		ft.rhs[i] = s / a[i*k+i]
	}
	for j := range ft.dir {
		ft.dir[j] = 0
	}
	for ri, j := range ft.free {
		ft.dir[j] = ft.rhs[ri]
	}
	return true
}

// nextDamping escalates the Levenberg damping from the Hessian's own scale.
func nextDamping(lambda float64, hess []float64, n int) float64 {
	if lambda > 0 {
		return lambda * 10
	}
	tr := 0.0
	for j := 0; j < n; j++ {
		tr += math.Abs(hess[triIndex(j, j)])
	}
	scale := tr / float64(n)
	if scale <= 0 {
		scale = 1
	}
	return 1e-4 * scale
}
