package labelmodel

import "math"

// This file holds the transcendental kernels of the fast trainer's row pass.
// Every distinct row costs one exponential and one logarithm, which at
// stdlib speed is most of a training pass; these are the classic Cephes
// rational approximations (Moshier, netlib cephes), accurate to ~2 ulp over
// the ranges used here, inlined argument reduction and all, so the row pass
// is arithmetic-only. Unit tests compare them against math.Exp/math.Log1p
// across the full input range.

// softplusSigmoidNeg returns log1p(e^−x) and σ(x) = 1/(1+e^−x) for x ≥ 0.
// Both come from a single e^−x evaluation, and the whole computation spends
// exactly one FP division: with u = 1+e reduced to z ∈ [√2/2, √2] and the
// Cephes log rational w³·P(w)/Q(w), the reciprocal d = 1/(u·Q) yields both
// σ = 1/u = Q·d and P/Q = P·u·d — the divider, not the polynomial ALU, is
// what bounds the row-pass throughput. For x > 40, e^−x < 5e−18 is below
// double rounding of both results.
func softplusSigmoidNeg(x float64) (sp, sig float64) {
	if x > 40 {
		return 0, 1
	}
	e := expPoly(-x) // in (0, 1]
	u := 1 + e
	z := u
	var kc float64
	if z > sqrt2 {
		z *= 0.5
		kc = 1
	}
	w := z - 1
	ww := w * w
	p := logP5 + w*(logP4+w*(logP3+w*(logP2+w*(logP1+w*logP0))))
	q := logQ4 + w*(logQ3+w*(logQ2+w*(logQ1+w*(logQ0+w))))
	d := 1 / (u * q)
	sig = q * d
	y := ww * w * p * u * d
	y -= 0.5 * ww
	y += kc * ln2Lo
	y += w
	y += kc * ln2Hi
	return y, sig
}

// Cephes exp coefficients: e^r = 1 + 2·r·P(r²)/(Q(r²) − r·P(r²)) on
// |r| ≤ ln2/2.
const (
	expP0 = 1.26177193074810590878e-4
	expP1 = 3.02994407707441961300e-2
	expP2 = 9.99999999999999999910e-1
	expQ0 = 3.00198505138664455042e-6
	expQ1 = 2.52448340349684104192e-3
	expQ2 = 2.27265548208155028766e-1
	expQ3 = 2.00000000000000000005e0

	log2E = 1.4426950408889634073599 // 1/ln2
	ln2Hi = 6.93145751953125e-1
	ln2Lo = 1.42860682030941723212e-6
	sqrt2 = 1.41421356237309504880
)

// expPoly computes e^x for x ∈ [−45, 0] without a division: after the
// usual base-2 argument reduction the residual r ∈ [−ln2/2, ln2/2] goes
// through the degree-8 Taylor polynomial (truncation ~r⁹/9! < 3e−9
// relative there, far inside the kernel's accuracy target), evaluated
// Estrin-style — two short chains over x² instead of one long Horner
// dependency chain, since this serial latency sits on every compacted
// row's critical path.
func expPoly(x float64) float64 {
	k := math.Floor(log2E*x + 0.5)
	x -= k * ln2Hi
	x -= k * ln2Lo
	xx := x * x
	even := 1 + xx*(1.0/2+xx*(1.0/24+xx*(1.0/720+xx*(1.0/40320))))
	odd := 1 + xx*(1.0/6+xx*(1.0/120+xx*(1.0/5040)))
	e := even + x*odd
	// Scale by 2^k through the exponent bits: e ∈ [~0.7, ~1.5] and
	// k ∈ [−65, 0], so the result stays normal and the bit add is exact.
	return math.Float64frombits(math.Float64bits(e) + uint64(int64(k))<<52)
}

// Cephes log coefficients: log(z) = w − w²/2 + w³·P(w)/Q(w) + k·ln2 after
// reducing z to [√2/2, √2], w = z − 1.
const (
	logP0 = 1.01875663804580931796e-4
	logP1 = 4.97494994976747001425e-1
	logP2 = 4.70579119878881725854e0
	logP3 = 1.44989225341610930846e1
	logP4 = 1.79368678507819816313e1
	logP5 = 7.70838733755885391666e0

	logQ0 = 1.12873587189167450590e1
	logQ1 = 4.52279145837532221105e1
	logQ2 = 8.29875266912776603211e1
	logQ3 = 7.11544750618563894466e1
	logQ4 = 2.31251620126765340583e1
)
