package labelmodel

import "fmt"

// This file is the checked vote encoder: the only place a Label may legally
// become a persisted byte. Vote shards, recordio vote records, and
// checkpointed map output all store one byte per vote and readers reject
// anything outside {-1, 0, +1}, so an unchecked byte(label) cast elsewhere
// can truncate a corrupt value into a different legal-looking vote and ship
// it silently. The drybellvet voteenc analyzer flags every raw conversion
// from Label to an integer type; the casts below carry its
// //drybellvet:rawvote allowlist marker because they sit behind the checks.

// VoteByte returns the canonical persisted byte for v, rejecting anything
// but the three legal votes.
func VoteByte(v Label) (byte, error) {
	b := byte(v) //drybellvet:rawvote — the checked encoder's own cast
	if voteCode[b]&voteBad != 0 {
		return 0, fmt.Errorf("labelmodel: invalid vote %d (want -1, 0, or +1)", v)
	}
	return b, nil
}

// EncodeVotes fills dst with the canonical vote bytes of row, validating
// every element. It is the vectorized form of VoteByte: one branch-free
// table pass over the row, with the error path rescanning only when a bad
// vote was seen.
func EncodeVotes(dst []byte, row []Label) error {
	if len(dst) != len(row) {
		return fmt.Errorf("labelmodel: EncodeVotes into %d bytes for %d votes", len(dst), len(row))
	}
	var bad uint64
	for j, v := range row {
		b := byte(v) //drybellvet:rawvote — validated via the table's sentinel bit below
		bad |= voteCode[b]
		dst[j] = b
	}
	if bad&voteBad != 0 {
		for j, v := range row {
			if !v.Valid() {
				return fmt.Errorf("labelmodel: invalid vote %d at column %d (want -1, 0, or +1)", v, j)
			}
		}
	}
	return nil
}

// Fingerprint returns a deterministic FNV-1a digest of the matrix's
// dimensions and every vote. Artifact writers fold it into their write
// generation, so re-running a pipeline over the same corpus re-creates
// byte-identical artifacts while torn interleaved writes of different
// content still get distinct generations.
func (mx *Matrix) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (v >> shift) & 0xff
			h *= prime64
		}
	}
	mix(uint64(mx.m))
	mix(uint64(mx.n))
	for _, v := range mx.data {
		h ^= uint64(byte(v)) //drybellvet:rawvote — digest input, never persisted as a vote
		h *= prime64
	}
	return h
}
