package labelmodel

import (
	"fmt"
	"math"
	"sort"
)

// Model holds the learned parameters of the conditionally independent
// generative model (paper §5.2):
//
//	P_w(Λ, Y) = Π_i P(Y_i) Π_j P(λ_j(X_i) | Y_i)
//
// Alpha[j] is the unnormalized log probability that LF j is correct given it
// did not abstain; Beta[j] the unnormalized log probability that it did not
// abstain. Both live in log space for numeric stability, exactly as in the
// paper's TensorFlow formulation.
type Model struct {
	// Alpha and Beta are the per-LF parameters (length n).
	Alpha, Beta []float64
	// LogPriorOdds is log(P(Y=1)/P(Y=-1)); 0 for the paper's uniform prior.
	LogPriorOdds float64
}

// NumFuncs returns the number of labeling functions n.
func (m *Model) NumFuncs() int { return len(m.Alpha) }

// Accuracies returns each LF's modeled accuracy given a non-abstain vote:
// exp(α+β)/(exp(α+β)+exp(−α+β)) = σ(2α).
func (m *Model) Accuracies() []float64 {
	out := make([]float64, len(m.Alpha))
	for j, a := range m.Alpha {
		out[j] = sigmoid(2 * a)
	}
	return out
}

// Propensities returns each LF's modeled probability of voting (not
// abstaining): 1 − 1/Z_j.
func (m *Model) Propensities() []float64 {
	out := make([]float64, len(m.Alpha))
	for j := range m.Alpha {
		z := zj(m.Alpha[j], m.Beta[j])
		out[j] = 1 - math.Exp(-z)
	}
	return out
}

// zj computes log Z_j = log(exp(α+β) + exp(−α+β) + 1) stably.
func zj(alpha, beta float64) float64 {
	return logAddExp(logAddExp(alpha+beta, beta-alpha), 0)
}

func logAddExp(a, b float64) float64 {
	m := math.Max(a, b)
	if math.IsInf(m, -1) {
		return math.Inf(-1)
	}
	return m + math.Log(math.Exp(a-m)+math.Exp(b-m))
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// PosteriorRow returns P(Y = 1 | votes) under the model. Only the vote signs
// and α matter: the log-odds contribution of LF j is 2·α_j·λ_j, plus the
// class-prior log odds.
func (m *Model) PosteriorRow(votes []Label) float64 {
	if len(votes) != len(m.Alpha) {
		panic(fmt.Sprintf("labelmodel: %d votes for %d LFs", len(votes), len(m.Alpha)))
	}
	logOdds := m.LogPriorOdds
	for j, v := range votes {
		logOdds += 2 * m.Alpha[j] * float64(v)
	}
	return sigmoid(logOdds)
}

// Posteriors returns probabilistic training labels for every example:
// Ỹ_i = P(Y_i = 1 | Λ_i).
func (m *Model) Posteriors(mx *Matrix) []float64 {
	out := make([]float64, mx.NumExamples())
	for i := range out {
		out[i] = m.PosteriorRow(mx.Row(i))
	}
	return out
}

// LogMarginalLikelihood returns log P(Λ) under the model (up to the constant
// class-prior term for the uniform prior), the quantity all trainers
// maximize. Exposed for convergence tests.
func (m *Model) LogMarginalLikelihood(mx *Matrix) float64 {
	n := mx.NumFuncs()
	if n != len(m.Alpha) {
		panic(fmt.Sprintf("labelmodel: matrix has %d LFs, model has %d", n, len(m.Alpha)))
	}
	z := make([]float64, n)
	for j := range z {
		z[j] = zj(m.Alpha[j], m.Beta[j])
	}
	total := 0.0
	for i := 0; i < mx.NumExamples(); i++ {
		lp, ln := 0.0, 0.0 // log P(Λ_i, Y=+1), log P(Λ_i, Y=−1)
		for j, v := range mx.Row(i) {
			a, b := m.Alpha[j], m.Beta[j]
			switch v {
			case Positive:
				lp += a + b - z[j]
				ln += -a + b - z[j]
			case Negative:
				lp += -a + b - z[j]
				ln += a + b - z[j]
			default:
				lp -= z[j]
				ln -= z[j]
			}
		}
		total += logAddExp(lp, ln)
	}
	return total
}

// RankedLF pairs an LF index with its modeled accuracy, for the low-quality
// source triage workflow the paper describes (§3.3).
type RankedLF struct {
	Index    int
	Accuracy float64
}

// RankByAccuracy returns LFs sorted by modeled accuracy, worst first —
// the order a developer would audit them in.
func (m *Model) RankByAccuracy() []RankedLF {
	out := make([]RankedLF, len(m.Alpha))
	for j, acc := range m.Accuracies() {
		out[j] = RankedLF{Index: j, Accuracy: acc}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Accuracy != out[b].Accuracy {
			return out[a].Accuracy < out[b].Accuracy
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{
		Alpha:        make([]float64, len(m.Alpha)),
		Beta:         make([]float64, len(m.Beta)),
		LogPriorOdds: m.LogPriorOdds,
	}
	copy(c.Alpha, m.Alpha)
	copy(c.Beta, m.Beta)
	return c
}
