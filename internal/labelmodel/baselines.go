package labelmodel

// This file implements the label-combination baselines the paper evaluates
// against: unweighted ("equal weights", Table 4), Logical-OR (§6.4 and
// Figure 6), and plain majority vote.

// EqualWeightsPosteriors combines votes with equal weight per LF: the
// probabilistic label is the mean of non-abstain votes mapped to [0,1],
// or 0.5 when every LF abstains. This is the Table 4 "Equal Weights"
// ablation arm.
func EqualWeightsPosteriors(mx *Matrix) []float64 {
	out := make([]float64, mx.NumExamples())
	for i := range out {
		sum, cnt := 0.0, 0
		for _, v := range mx.Row(i) {
			if v != Abstain {
				sum += float64(v)
				cnt++
			}
		}
		if cnt == 0 {
			out[i] = 0.5
			continue
		}
		out[i] = (sum/float64(cnt) + 1) / 2
	}
	return out
}

// LogicalORPosteriors labels an example 1 if any LF votes positive and 0
// otherwise — the high-recall, precision-destroying baseline used for the
// real-time events comparison (§6.4). The output is saturated at the
// extremes by construction, which is exactly the pathology Figure 6 shows.
func LogicalORPosteriors(mx *Matrix) []float64 {
	out := make([]float64, mx.NumExamples())
	for i := range out {
		for _, v := range mx.Row(i) {
			if v == Positive {
				out[i] = 1
				break
			}
		}
	}
	return out
}

// MajorityVotePosteriors returns 1, 0 or 0.5 by strict majority of
// non-abstain votes.
func MajorityVotePosteriors(mx *Matrix) []float64 {
	out := make([]float64, mx.NumExamples())
	for i := range out {
		pos, neg := 0, 0
		for _, v := range mx.Row(i) {
			switch v {
			case Positive:
				pos++
			case Negative:
				neg++
			}
		}
		switch {
		case pos > neg:
			out[i] = 1
		case neg > pos:
			out[i] = 0
		default:
			out[i] = 0.5
		}
	}
	return out
}

// HardLabels thresholds probabilistic labels at 0.5 into {−1, +1}.
// Used by the "hard labels" ablation of the noise-aware loss.
func HardLabels(posteriors []float64) []Label {
	out := make([]Label, len(posteriors))
	for i, p := range posteriors {
		if p >= 0.5 {
			out[i] = Positive
		} else {
			out[i] = Negative
		}
	}
	return out
}
