package labelmodel

import (
	"fmt"
	"math/rand"
)

// SynthSpec describes a synthetic weak-supervision problem with known ground
// truth, used to test that trainers recover LF accuracies and to drive the
// experiment harness.
type SynthSpec struct {
	// NumExamples m and class prior P(Y=1).
	NumExamples   int
	PriorPositive float64
	// Accuracies[j] is LF j's true P(correct | voted); Propensities[j] its
	// true P(voted). Lengths must match.
	Accuracies   []float64
	Propensities []float64
	// CorrelatedPairs optionally lists LF index pairs (a,b) where b copies
	// a's vote with probability CorrelationStrength instead of voting
	// independently, violating the conditional-independence assumption the
	// way real organizational resources do.
	CorrelatedPairs     [][2]int
	CorrelationStrength float64
	Seed                int64
}

// Synthesize draws gold labels and a label matrix from the spec's generative
// process.
func Synthesize(spec SynthSpec) (*Matrix, []Label, error) {
	if spec.NumExamples <= 0 {
		return nil, nil, fmt.Errorf("labelmodel: synth with %d examples", spec.NumExamples)
	}
	n := len(spec.Accuracies)
	if n == 0 || len(spec.Propensities) != n {
		return nil, nil, fmt.Errorf("labelmodel: synth needs matching accuracies (%d) and propensities (%d)",
			n, len(spec.Propensities))
	}
	for j, a := range spec.Accuracies {
		if a < 0 || a > 1 || spec.Propensities[j] < 0 || spec.Propensities[j] > 1 {
			return nil, nil, fmt.Errorf("labelmodel: synth LF %d parameters out of [0,1]", j)
		}
	}
	p := spec.PriorPositive
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	mx := NewMatrix(spec.NumExamples, n)
	gold := make([]Label, spec.NumExamples)
	copier := make(map[int]int) // b -> a for correlated pairs
	for _, pr := range spec.CorrelatedPairs {
		copier[pr[1]] = pr[0]
	}
	for i := 0; i < spec.NumExamples; i++ {
		y := Negative
		if rng.Float64() < p {
			y = Positive
		}
		gold[i] = y
		for j := 0; j < n; j++ {
			if src, ok := copier[j]; ok && rng.Float64() < spec.CorrelationStrength {
				mx.Set(i, j, mx.At(i, src))
				continue
			}
			if rng.Float64() >= spec.Propensities[j] {
				continue // abstain
			}
			if rng.Float64() < spec.Accuracies[j] {
				mx.Set(i, j, y)
			} else {
				mx.Set(i, j, -y)
			}
		}
	}
	return mx, gold, nil
}

// PosteriorAccuracy measures how often thresholded posteriors match gold —
// a quick quality score for a trained label model.
func PosteriorAccuracy(posteriors []float64, gold []Label) float64 {
	if len(posteriors) != len(gold) {
		panic(fmt.Sprintf("labelmodel: %d posteriors, %d gold labels", len(posteriors), len(gold)))
	}
	correct := 0
	for i, p := range posteriors {
		pred := Negative
		if p >= 0.5 {
			pred = Positive
		}
		if pred == gold[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(gold))
}
