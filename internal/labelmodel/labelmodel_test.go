package labelmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// standardSpec is a moderately hard recovery problem shared by trainer tests.
func standardSpec(seed int64) SynthSpec {
	return SynthSpec{
		NumExamples:   3000,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.92, 0.85, 0.75, 0.65, 0.55},
		Propensities:  []float64{0.7, 0.5, 0.6, 0.4, 0.5},
		Seed:          seed,
	}
}

func trainers() map[string]func(*Matrix, Options) (*Model, error) {
	return map[string]func(*Matrix, Options) (*Model, error){
		"samplingfree": TrainSamplingFree,
		"analytic":     TrainAnalytic,
		"gibbs":        TrainGibbs,
	}
}

func TestMatrixBasics(t *testing.T) {
	mx := NewMatrix(3, 2)
	mx.Set(0, 0, Positive)
	mx.Set(1, 1, Negative)
	if mx.At(0, 0) != Positive || mx.At(1, 1) != Negative || mx.At(2, 0) != Abstain {
		t.Error("Set/At wrong")
	}
	if mx.NumExamples() != 3 || mx.NumFuncs() != 2 {
		t.Error("dims wrong")
	}
	mx.SetRow(2, []Label{Negative, Positive})
	if mx.At(2, 0) != Negative || mx.At(2, 1) != Positive {
		t.Error("SetRow wrong")
	}
	if err := mx.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMatrixInvalidLabelPanics(t *testing.T) {
	mx := NewMatrix(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid label accepted")
		}
	}()
	mx.Set(0, 0, Label(5))
}

func TestSubsetColumnsAndRows(t *testing.T) {
	mx := NewMatrix(2, 3)
	mx.SetRow(0, []Label{Positive, Negative, Positive})
	mx.SetRow(1, []Label{Negative, Abstain, Negative})
	sub := mx.SubsetColumns([]int{2, 0})
	if sub.NumFuncs() != 2 || sub.At(0, 0) != Positive || sub.At(1, 1) != Negative {
		t.Errorf("SubsetColumns wrong: %+v", sub)
	}
	rows := mx.SubsetRows([]int{1})
	if rows.NumExamples() != 1 || rows.At(0, 0) != Negative {
		t.Error("SubsetRows wrong")
	}
}

func TestStats(t *testing.T) {
	mx := NewMatrix(4, 2)
	gold := []Label{Positive, Positive, Negative, Negative}
	// LF0 votes on all, always correct. LF1 votes on half, always positive.
	mx.SetRow(0, []Label{Positive, Positive})
	mx.SetRow(1, []Label{Positive, Abstain})
	mx.SetRow(2, []Label{Negative, Positive})
	mx.SetRow(3, []Label{Negative, Abstain})
	st := mx.Stats(gold)
	if st[0].Coverage != 1 || st[1].Coverage != 0.5 {
		t.Errorf("coverage = %v, %v", st[0].Coverage, st[1].Coverage)
	}
	if st[0].EmpiricalAccuracy != 1 || st[1].EmpiricalAccuracy != 0.5 {
		t.Errorf("accuracy = %v, %v", st[0].EmpiricalAccuracy, st[1].EmpiricalAccuracy)
	}
	if st[0].Overlap != 0.5 || st[1].Overlap != 0.5 {
		t.Errorf("overlap = %v, %v", st[0].Overlap, st[1].Overlap)
	}
	// Conflict only on row 2 (Negative vs Positive).
	if st[0].Conflict != 0.25 || st[1].Conflict != 0.25 {
		t.Errorf("conflict = %v, %v", st[0].Conflict, st[1].Conflict)
	}
	if st[1].Positives != 2 || st[1].Negatives != 0 {
		t.Errorf("polarity = %d/%d", st[1].Positives, st[1].Negatives)
	}
	// Without gold, accuracy is NaN.
	st2 := mx.Stats(nil)
	if !math.IsNaN(st2[0].EmpiricalAccuracy) {
		t.Error("accuracy without gold should be NaN")
	}
}

func TestCoverageAny(t *testing.T) {
	mx := NewMatrix(4, 2)
	mx.Set(0, 0, Positive)
	mx.Set(2, 1, Negative)
	if got := mx.CoverageAny(); got != 0.5 {
		t.Errorf("CoverageAny = %v, want 0.5", got)
	}
}

func TestPosteriorRowLogic(t *testing.T) {
	m := &Model{Alpha: []float64{2, 1}, Beta: []float64{0, 0}}
	// Strong positive from accurate LF dominates weaker negative.
	p := m.PosteriorRow([]Label{Positive, Negative})
	if p <= 0.5 {
		t.Errorf("posterior = %v, want > 0.5", p)
	}
	// All abstain → prior (0.5 with no prior odds).
	if got := m.PosteriorRow([]Label{Abstain, Abstain}); got != 0.5 {
		t.Errorf("abstain posterior = %v, want 0.5", got)
	}
	// Prior shifts the abstain posterior.
	m.LogPriorOdds = -2
	if got := m.PosteriorRow([]Label{Abstain, Abstain}); got >= 0.5 {
		t.Errorf("prior-shifted posterior = %v, want < 0.5", got)
	}
}

func TestAccuraciesFormula(t *testing.T) {
	m := &Model{Alpha: []float64{0, 1}, Beta: []float64{0, 0}}
	acc := m.Accuracies()
	if !almost(acc[0], 0.5, 1e-12) {
		t.Errorf("α=0 accuracy = %v, want 0.5", acc[0])
	}
	if !almost(acc[1], sigmoid(2), 1e-12) {
		t.Errorf("α=1 accuracy = %v, want σ(2)", acc[1])
	}
}

func TestPropensitiesInUnitInterval(t *testing.T) {
	m := &Model{Alpha: []float64{1, -2, 0}, Beta: []float64{3, -3, 0}}
	for j, p := range m.Propensities() {
		if p < 0 || p > 1 {
			t.Errorf("propensity[%d] = %v out of [0,1]", j, p)
		}
	}
}

// The heart of the reproduction: every trainer must (a) beat majority vote
// on posterior accuracy, (b) rank LFs by true accuracy, on data drawn from
// the model family.
func TestTrainersRecoverAccuracies(t *testing.T) {
	mx, gold, err := Synthesize(standardSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	mvAcc := PosteriorAccuracy(MajorityVotePosteriors(mx), gold)
	for name, train := range trainers() {
		t.Run(name, func(t *testing.T) {
			model, err := train(mx, Options{Steps: 1500, BatchSize: 64, LR: 0.05, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			acc := PosteriorAccuracy(model.Posteriors(mx), gold)
			if acc < mvAcc-0.005 {
				t.Errorf("posterior accuracy %.4f below majority vote %.4f", acc, mvAcc)
			}
			// Modeled accuracy ordering must match the planted ordering
			// (0.92 > 0.85 > 0.75 > 0.65 > 0.55).
			est := model.Accuracies()
			for j := 0; j+1 < len(est); j++ {
				if est[j] < est[j+1]-0.05 {
					t.Errorf("accuracy ordering violated at %d: %.3f < %.3f (est=%v)",
						j, est[j], est[j+1], est)
				}
			}
			// Absolute recovery within tolerance for the well-covered LFs.
			if math.Abs(est[0]-0.92) > 0.08 {
				t.Errorf("LF0 estimated accuracy %.3f, want ≈0.92", est[0])
			}
		})
	}
}

// Sampling-free and analytic optimize the same objective with the same
// optimizer; their estimates must agree closely.
func TestSamplingFreeMatchesAnalytic(t *testing.T) {
	mx, _, err := Synthesize(standardSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Steps: 800, BatchSize: 128, LR: 0.05, Seed: 3}
	a, err := TrainSamplingFree(mx, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainAnalytic(mx, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Alpha {
		if math.Abs(a.Alpha[j]-b.Alpha[j]) > 0.15 {
			t.Errorf("alpha[%d]: graph %.3f vs analytic %.3f", j, a.Alpha[j], b.Alpha[j])
		}
		if math.Abs(a.Beta[j]-b.Beta[j]) > 0.15 {
			t.Errorf("beta[%d]: graph %.3f vs analytic %.3f", j, a.Beta[j], b.Beta[j])
		}
	}
}

// Training must increase the marginal likelihood over the initialization.
func TestTrainingImprovesMarginalLikelihood(t *testing.T) {
	mx, _, err := Synthesize(standardSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	n := mx.NumFuncs()
	init := &Model{Alpha: make([]float64, n), Beta: make([]float64, n)}
	for j := range init.Alpha {
		init.Alpha[j] = 0.7
	}
	before := init.LogMarginalLikelihood(mx)
	model, err := TrainAnalytic(mx, Options{Steps: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	after := model.LogMarginalLikelihood(mx)
	if after <= before {
		t.Errorf("log-likelihood did not improve: %.1f -> %.1f", before, after)
	}
}

// Property: posteriors are probabilities and are monotone in added positive
// votes from an accurate LF.
func TestPosteriorValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		spec := standardSpec(seed%1000 + 1)
		spec.NumExamples = 500
		mx, _, err := Synthesize(spec)
		if err != nil {
			return false
		}
		model, err := TrainAnalytic(mx, Options{Steps: 300, Seed: 4})
		if err != nil {
			return false
		}
		for _, p := range model.Posteriors(mx) {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		// Monotonicity: flipping LF0's vote from - to + must not lower the
		// posterior (LF0 has the highest α in this family).
		votes := make([]Label, mx.NumFuncs())
		votes[0] = Negative
		lo := model.PosteriorRow(votes)
		votes[0] = Positive
		hi := model.PosteriorRow(votes)
		return hi >= lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestRankByAccuracyWorstFirst(t *testing.T) {
	m := &Model{Alpha: []float64{2, 0.1, 1}, Beta: make([]float64, 3)}
	ranked := m.RankByAccuracy()
	if ranked[0].Index != 1 || ranked[2].Index != 0 {
		t.Errorf("ranking = %+v", ranked)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := &Model{Alpha: []float64{1}, Beta: []float64{2}, LogPriorOdds: 3}
	c := m.Clone()
	c.Alpha[0] = 9
	if m.Alpha[0] != 1 {
		t.Error("Clone aliases Alpha")
	}
}

func TestBaselines(t *testing.T) {
	mx := NewMatrix(4, 3)
	mx.SetRow(0, []Label{Positive, Positive, Negative})
	mx.SetRow(1, []Label{Negative, Abstain, Abstain})
	mx.SetRow(2, []Label{Abstain, Abstain, Abstain})
	mx.SetRow(3, []Label{Positive, Negative, Abstain})

	eq := EqualWeightsPosteriors(mx)
	wantEq := []float64{(1.0/3 + 1) / 2, 0, 0.5, 0.5}
	for i := range wantEq {
		if !almost(eq[i], wantEq[i], 1e-12) {
			t.Errorf("equal weights[%d] = %v, want %v", i, eq[i], wantEq[i])
		}
	}

	or := LogicalORPosteriors(mx)
	wantOr := []float64{1, 0, 0, 1}
	for i := range wantOr {
		if or[i] != wantOr[i] {
			t.Errorf("logical OR[%d] = %v, want %v", i, or[i], wantOr[i])
		}
	}

	mv := MajorityVotePosteriors(mx)
	wantMv := []float64{1, 0, 0.5, 0.5}
	for i := range wantMv {
		if mv[i] != wantMv[i] {
			t.Errorf("majority[%d] = %v, want %v", i, mv[i], wantMv[i])
		}
	}

	hard := HardLabels([]float64{0.9, 0.1, 0.5})
	if hard[0] != Positive || hard[1] != Negative || hard[2] != Positive {
		t.Errorf("HardLabels = %v", hard)
	}
}

// The generative model must beat equal weights when LF accuracies are very
// uneven — the Table 4 phenomenon.
func TestGenerativeBeatsEqualWeightsOnUnevenLFs(t *testing.T) {
	spec := SynthSpec{
		NumExamples:   4000,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.95, 0.55, 0.52, 0.52, 0.51},
		Propensities:  []float64{0.6, 0.6, 0.6, 0.6, 0.6},
		Seed:          13,
	}
	mx, gold, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainAnalytic(mx, Options{Steps: 2000, BatchSize: 512, LR: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	genAcc := PosteriorAccuracy(model.Posteriors(mx), gold)
	eqAcc := PosteriorAccuracy(EqualWeightsPosteriors(mx), gold)
	if genAcc <= eqAcc {
		t.Errorf("generative %.4f should beat equal weights %.4f on uneven LFs", genAcc, eqAcc)
	}
}

// Correlated LFs violate the independence assumption; the model should still
// produce usable (better-than-chance) posteriors.
func TestRobustToCorrelatedLFs(t *testing.T) {
	spec := standardSpec(21)
	spec.CorrelatedPairs = [][2]int{{0, 1}, {2, 3}}
	spec.CorrelationStrength = 0.8
	mx, gold, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainAnalytic(mx, Options{Steps: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if acc := PosteriorAccuracy(model.Posteriors(mx), gold); acc < 0.7 {
		t.Errorf("accuracy under correlation = %.3f, want ≥ 0.7", acc)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, _, err := Synthesize(SynthSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, _, err := Synthesize(SynthSpec{NumExamples: 10, Accuracies: []float64{0.5}, Propensities: []float64{2}}); err == nil {
		t.Error("propensity > 1 accepted")
	}
	if _, _, err := Synthesize(SynthSpec{NumExamples: 10, Accuracies: []float64{0.5}, Propensities: []float64{0.4, 0.4}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestL2ShrinksParameters(t *testing.T) {
	mx, _, err := Synthesize(standardSpec(33))
	if err != nil {
		t.Fatal(err)
	}
	free, err := TrainAnalytic(mx, Options{Steps: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := TrainAnalytic(mx, Options{Steps: 800, Seed: 2, L2: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	normFree, normReg := 0.0, 0.0
	for j := range free.Alpha {
		normFree += free.Alpha[j] * free.Alpha[j]
		normReg += reg.Alpha[j] * reg.Alpha[j]
	}
	if normReg >= normFree {
		t.Errorf("L2 did not shrink α: %.3f vs %.3f", normReg, normFree)
	}
}

func TestCategoricalRecovery(t *testing.T) {
	acc := []float64{0.9, 0.75, 0.6}
	prop := []float64{0.7, 0.6, 0.5}
	cm, gold, err := SynthesizeCategorical(3000, 4, acc, prop, 17)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainCategorical(cm, Options{Steps: 1200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	est := model.Accuracies()
	if !(est[0] > est[1] && est[1] > est[2]) {
		t.Errorf("categorical accuracy ordering violated: %v", est)
	}
	// Posterior argmax accuracy must beat the best single LF's accuracy.
	posts := model.Posteriors(cm)
	correct := 0
	for i, p := range posts {
		best, bestC := -1.0, 0
		for c, v := range p {
			if v > best {
				best, bestC = v, c+1
			}
		}
		if bestC == gold[i] {
			correct++
		}
	}
	rate := float64(correct) / float64(len(gold))
	if rate < 0.62 {
		t.Errorf("categorical posterior accuracy %.3f, want ≥ 0.62", rate)
	}
	// Posteriors are distributions.
	for i, p := range posts {
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("posterior[%d] out of range: %v", i, p)
			}
			sum += v
		}
		if !almost(sum, 1, 1e-9) {
			t.Fatalf("posterior[%d] sums to %v", i, sum)
		}
	}
}

func TestCategoricalMatrixValidation(t *testing.T) {
	cm := NewCatMatrix(2, 2, 3)
	cm.Set(0, 0, 3)
	if cm.At(0, 0) != 3 {
		t.Error("Set/At wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vote accepted")
		}
	}()
	cm.Set(0, 0, 4)
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
