package labelmodel

import (
	"testing"
)

// synthGrown draws one synthetic matrix of m+k examples and returns it with
// its m-row prefix: the base corpus and the same corpus after an append-only
// delta, as the incremental pipeline sees them.
func synthGrown(t *testing.T, m, k int, seed int64) (base, full *Matrix) {
	t.Helper()
	spec := SynthSpec{
		NumExamples:   m + k,
		PriorPositive: 0.4,
		Accuracies:    []float64{0.9, 0.8, 0.7, 0.85, 0.75, 0.65},
		Propensities:  []float64{0.5, 0.4, 0.3, 0.25, 0.35, 0.2},
		Seed:          seed,
	}
	full, _, err := Synthesize(spec)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	base = NewMatrix(m, full.NumFuncs())
	for i := 0; i < m; i++ {
		base.SetRow(i, full.Row(i))
	}
	return base, full
}

// TestExtendCompactMatchesCold pins the structural contract: extending a
// compaction over appended rows yields exactly the sufficient statistics a
// cold Compact of the full matrix computes — same multiplicand totals,
// Voted, MajorityAgree, and a RowOf that reconstructs the same matrix.
func TestExtendCompactMatchesCold(t *testing.T) {
	base, full := synthGrown(t, 900, 90, 7)
	prev := base.Compact()
	ext, err := ExtendCompact(prev, full)
	if err != nil {
		t.Fatalf("ExtendCompact: %v", err)
	}
	cold := full.Compact()

	if ext.NumExamples() != cold.NumExamples() || ext.NumFuncs() != cold.NumFuncs() {
		t.Fatalf("shape: ext %dx%d, cold %dx%d",
			ext.NumExamples(), ext.NumFuncs(), cold.NumExamples(), cold.NumFuncs())
	}
	if ext.NumUnique() != cold.NumUnique() {
		t.Errorf("distinct rows: ext %d, cold %d", ext.NumUnique(), cold.NumUnique())
	}
	var extMult, coldMult int64
	for _, m := range ext.Mult {
		extMult += int64(m)
	}
	for _, m := range cold.Mult {
		coldMult += int64(m)
	}
	if extMult != coldMult || extMult != int64(full.NumExamples()) {
		t.Errorf("multiplicities: ext %d, cold %d, want %d", extMult, coldMult, full.NumExamples())
	}
	for j := range ext.Voted {
		if ext.Voted[j] != cold.Voted[j] {
			t.Errorf("Voted[%d]: ext %d, cold %d", j, ext.Voted[j], cold.Voted[j])
		}
		if ext.MajorityAgree[j] != cold.MajorityAgree[j] {
			t.Errorf("MajorityAgree[%d]: ext %d, cold %d", j, ext.MajorityAgree[j], cold.MajorityAgree[j])
		}
	}
	// Round-trip: the extended compaction must reconstruct the full matrix.
	rec := ext.Reconstruct()
	for i := 0; i < full.NumExamples(); i++ {
		for j := 0; j < full.NumFuncs(); j++ {
			if rec.At(i, j) != full.At(i, j) {
				t.Fatalf("reconstruct mismatch at (%d,%d): got %d want %d", i, j, rec.At(i, j), full.At(i, j))
			}
		}
	}
}

// TestExtendCompactDoesNotMutatePrev guards the aliasing contract: the
// previous compaction must stay valid for its own holder after an extension
// appended rows and bumped statistics.
func TestExtendCompactDoesNotMutatePrev(t *testing.T) {
	base, full := synthGrown(t, 400, 60, 13)
	prev := base.Compact()
	wantMult := append([]int32(nil), prev.Mult...)
	wantVoted := append([]int64(nil), prev.Voted...)
	wantStart := append([]int32(nil), prev.Start...)
	if _, err := ExtendCompact(prev, full); err != nil {
		t.Fatalf("ExtendCompact: %v", err)
	}
	for r := range wantMult {
		if prev.Mult[r] != wantMult[r] {
			t.Fatalf("prev.Mult[%d] mutated: %d -> %d", r, wantMult[r], prev.Mult[r])
		}
	}
	for j := range wantVoted {
		if prev.Voted[j] != wantVoted[j] {
			t.Fatalf("prev.Voted[%d] mutated: %d -> %d", j, wantVoted[j], prev.Voted[j])
		}
	}
	for i := range wantStart {
		if prev.Start[i] != wantStart[i] {
			t.Fatalf("prev.Start[%d] mutated: %d -> %d", i, wantStart[i], prev.Start[i])
		}
	}
	if prev.NumExamples() != 400 {
		t.Fatalf("prev.NumExamples mutated: %d", prev.NumExamples())
	}
}

func TestExtendCompactRejectsShrunkOrMismatched(t *testing.T) {
	base, full := synthGrown(t, 300, 30, 5)
	prev := full.Compact()
	if _, err := ExtendCompact(prev, base); err == nil {
		t.Fatal("ExtendCompact accepted a matrix with fewer rows than already compacted")
	}
	narrow := NewMatrix(400, 3)
	if _, err := ExtendCompact(base.Compact(), narrow); err == nil {
		t.Fatal("ExtendCompact accepted a matrix with a different function count")
	}
}

// TestWarmStartEquivalence is the tentpole's equivalence contract: after a
// 10% append, a warm start from the base run's state must reproduce a cold
// full retrain exactly — identical α, β, and posteriors — so incremental
// training is a pure optimization, never a quality trade. Exactness holds
// because an append-only ExtendCompact builds the same compaction (distinct
// rows in first-occurrence order) a cold Compact of the full matrix builds,
// and the optimizer's trajectory is a pure function of that compaction.
func TestWarmStartEquivalence(t *testing.T) {
	base, full := synthGrown(t, 2000, 200, 21)
	opts := Options{Steps: 200}

	_, state, err := TrainSamplingFreeFastWarm(base, opts, nil)
	if err != nil {
		t.Fatalf("cold base train: %v", err)
	}
	warmModel, warmState, err := TrainSamplingFreeFastWarm(full, opts, state)
	if err != nil {
		t.Fatalf("warm train: %v", err)
	}
	coldModel, err := TrainSamplingFreeFast(full, opts)
	if err != nil {
		t.Fatalf("cold full train: %v", err)
	}

	if d := maxAbsDiff(warmModel.Alpha, coldModel.Alpha); d != 0 {
		t.Errorf("alpha diverged: max |warm-cold| = %g, want exact\nwarm: %v\ncold: %v",
			d, warmModel.Alpha, coldModel.Alpha)
	}
	if d := maxAbsDiff(warmModel.Beta, coldModel.Beta); d != 0 {
		t.Errorf("beta diverged: max |warm-cold| = %g, want exact", d)
	}
	warmP := warmModel.Posteriors(full)
	coldP := coldModel.Posteriors(full)
	for i := range warmP {
		if warmP[i] != coldP[i] {
			t.Fatalf("posterior %d diverged: warm %g, cold %g", i, warmP[i], coldP[i])
		}
	}
	if warmState.Compact.NumExamples() != full.NumExamples() {
		t.Errorf("warm state compaction covers %d examples, want %d",
			warmState.Compact.NumExamples(), full.NumExamples())
	}
}

// TestWarmStartIgnoresCarriedAlpha pins the determinism rationale: the
// previous state's α must not influence the trained model. The profiled
// likelihood is non-convex, so an optimizer seeded from a carried α can
// descend into a different KKT basin than the moment seed — the smoke-test
// failure that motivated this contract showed posteriors shifting by ~0.4
// over byte-identical votes. A state carrying an adversarial α (every
// coordinate slammed against a projection bound) must train to exactly the
// cold model.
func TestWarmStartIgnoresCarriedAlpha(t *testing.T) {
	base, full := synthGrown(t, 1200, 120, 17)
	opts := Options{Steps: 200}

	_, state, err := TrainSamplingFreeFastWarm(base, opts, nil)
	if err != nil {
		t.Fatalf("base train: %v", err)
	}
	for j := range state.Alpha {
		if j%2 == 0 {
			state.Alpha[j] = 0
		} else {
			state.Alpha[j] = maxAlpha
		}
	}
	warmModel, _, err := TrainSamplingFreeFastWarm(full, opts, state)
	if err != nil {
		t.Fatalf("warm train: %v", err)
	}
	coldModel, err := TrainSamplingFreeFast(full, opts)
	if err != nil {
		t.Fatalf("cold train: %v", err)
	}
	if d := maxAbsDiff(warmModel.Alpha, coldModel.Alpha); d != 0 {
		t.Errorf("carried α influenced training: max |warm-cold| = %g, want exact", d)
	}
}

// TestWarmStartSavesIterations pins what warm starting does and does not
// buy: the saving is the compaction (ExtendCompact touches only appended
// rows), while the Newton loop — deterministically seeded from the moment
// estimate either way — spends exactly the iterations a cold retrain
// spends. Identical iteration counts are the cheap witness that warm and
// cold runs walk the same trajectory.
func TestWarmStartSavesIterations(t *testing.T) {
	base, full := synthGrown(t, 4000, 400, 33)
	opts := Options{Steps: 200}

	_, state, err := TrainSamplingFreeFastWarm(base, opts, nil)
	if err != nil {
		t.Fatalf("cold base train: %v", err)
	}
	_, warmState, err := TrainSamplingFreeFastWarm(full, opts, state)
	if err != nil {
		t.Fatalf("warm train: %v", err)
	}
	_, coldState, err := TrainSamplingFreeFastWarm(full, opts, nil)
	if err != nil {
		t.Fatalf("cold full train: %v", err)
	}
	if warmState.Iterations != coldState.Iterations {
		t.Errorf("warm start spent %d iterations, cold retrain %d — the trajectories must be identical",
			warmState.Iterations, coldState.Iterations)
	}
	t.Logf("iterations: warm %d, cold %d", warmState.Iterations, coldState.Iterations)
}

// TestWarmStartWithoutCompactFallsBack covers the deletions path: a state
// carrying only α (Compact == nil, as after tombstoned rows invalidate the
// append-only prefix) still trains correctly via a full compaction.
func TestWarmStartWithoutCompactFallsBack(t *testing.T) {
	base, full := synthGrown(t, 1000, 100, 9)
	_, state, err := TrainSamplingFreeFastWarm(base, Options{Steps: 200}, nil)
	if err != nil {
		t.Fatalf("base train: %v", err)
	}
	state.Compact = nil
	warmModel, warmState, err := TrainSamplingFreeFastWarm(full, Options{Steps: 200}, state)
	if err != nil {
		t.Fatalf("alpha-only warm train: %v", err)
	}
	coldModel, err := TrainSamplingFreeFast(full, Options{Steps: 200})
	if err != nil {
		t.Fatalf("cold train: %v", err)
	}
	if d := maxAbsDiff(warmModel.Alpha, coldModel.Alpha); d != 0 {
		t.Errorf("alpha-only warm start diverged: max diff %g, want exact", d)
	}
	if warmState.Compact == nil {
		t.Error("alpha-only warm start should produce a fresh compaction for the next round")
	}
}
