// Package labelmodel implements Snorkel DryBell's generative label model
// (paper §2, §5.2): given the matrix Λ of noisy votes emitted by n labeling
// functions over m unlabeled examples, estimate each function's accuracy and
// propensity from agreements and disagreements alone — no ground truth — and
// produce probabilistic training labels P(Y_i = 1 | Λ_i).
//
// Three trainers share one model family:
//
//   - SamplingFree: the paper's contribution — the marginal likelihood
//     −log P(Λ) expressed as a static compute graph (internal/tensor) with
//     0-1 indicator matrices, optimized by minibatch gradient descent.
//   - Analytic: the same objective with hand-derived gradients (no graph),
//     used as the ablation for "what does the graph abstraction cost".
//   - Gibbs: the open-source Snorkel baseline the paper compares against,
//     a sampling-based stochastic-EM optimizer.
//
// Baselines for the paper's ablations (equal weights, Table 4; Logical-OR,
// §6.4/Figure 6; majority vote) live in baselines.go.
package labelmodel

import (
	"fmt"
	"math"
)

// Label is one labeling-function vote for binary tasks.
type Label int8

// Vote values. Abstain means "no opinion" and carries no signal about Y.
const (
	Negative Label = -1
	Abstain  Label = 0
	Positive Label = 1
)

// Valid reports whether l is one of the three legal votes.
func (l Label) Valid() bool { return l == Negative || l == Abstain || l == Positive }

func (l Label) String() string {
	switch l {
	case Negative:
		return "negative"
	case Abstain:
		return "abstain"
	case Positive:
		return "positive"
	default:
		// %d formats the integer value directly (no Stringer recursion), so
		// no raw int8(l) cast is needed.
		return fmt.Sprintf("Label(%d)", l)
	}
}

// Matrix is the m×n label matrix Λ with Λ[i,j] = λ_j(x_i).
// It is stored densely; abstains are the common case and are zero.
type Matrix struct {
	m, n int
	data []Label
}

// NewMatrix returns an m-example, n-function matrix of abstains.
func NewMatrix(m, n int) *Matrix {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("labelmodel: invalid matrix size %d×%d", m, n))
	}
	return &Matrix{m: m, n: n, data: make([]Label, m*n)}
}

// NumExamples returns m.
func (mx *Matrix) NumExamples() int { return mx.m }

// NumFuncs returns n.
func (mx *Matrix) NumFuncs() int { return mx.n }

// At returns Λ[i,j].
func (mx *Matrix) At(i, j int) Label { return mx.data[i*mx.n+j] }

// Set assigns Λ[i,j].
func (mx *Matrix) Set(i, j int, l Label) {
	if !l.Valid() {
		panic(fmt.Sprintf("labelmodel: invalid label %d", l))
	}
	mx.data[i*mx.n+j] = l
}

// Row returns example i's votes. The returned slice aliases the matrix.
func (mx *Matrix) Row(i int) []Label { return mx.data[i*mx.n : (i+1)*mx.n] }

// SetRow copies votes into row i.
func (mx *Matrix) SetRow(i int, votes []Label) {
	if len(votes) != mx.n {
		panic(fmt.Sprintf("labelmodel: SetRow got %d votes, want %d", len(votes), mx.n))
	}
	for _, v := range votes {
		if !v.Valid() {
			panic(fmt.Sprintf("labelmodel: invalid label %d", v))
		}
	}
	copy(mx.data[i*mx.n:(i+1)*mx.n], votes)
}

// SubsetColumns returns a new matrix containing only the given LF columns,
// in the given order. Used by the servable-LFs ablation (Table 3).
func (mx *Matrix) SubsetColumns(cols []int) *Matrix {
	out := NewMatrix(mx.m, len(cols))
	for i := 0; i < mx.m; i++ {
		for k, j := range cols {
			if j < 0 || j >= mx.n {
				panic(fmt.Sprintf("labelmodel: column %d out of range [0,%d)", j, mx.n))
			}
			out.data[i*out.n+k] = mx.data[i*mx.n+j]
		}
	}
	return out
}

// SubsetRows returns a new matrix with only the given example rows.
func (mx *Matrix) SubsetRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), mx.n)
	for k, i := range rows {
		copy(out.data[k*out.n:(k+1)*out.n], mx.data[i*mx.n:(i+1)*mx.n])
	}
	return out
}

// LFStats summarizes one labeling function's behaviour on a matrix.
// These are the diagnostics DryBell surfaces to developers (§3.3: estimated
// accuracies "were found to be independently useful for identifying
// previously unknown low-quality sources").
type LFStats struct {
	// Coverage is the fraction of examples with a non-abstain vote.
	Coverage float64
	// Overlap is the fraction of examples where this LF and at least one
	// other LF both vote.
	Overlap float64
	// Conflict is the fraction of examples where this LF's vote disagrees
	// with at least one other non-abstain vote.
	Conflict float64
	// Polarity counts of emitted votes.
	Positives, Negatives int
	// EmpiricalAccuracy is the accuracy against gold labels when provided to
	// Stats (NaN otherwise).
	EmpiricalAccuracy float64
}

// Stats computes per-LF summaries. gold may be nil; when provided it must
// have length m with entries in {-1,+1} and enables EmpiricalAccuracy.
func (mx *Matrix) Stats(gold []Label) []LFStats {
	out := make([]LFStats, mx.n)
	for j := range out {
		out[j].EmpiricalAccuracy = math.NaN()
	}
	correct := make([]int, mx.n)
	voted := make([]int, mx.n)
	for i := 0; i < mx.m; i++ {
		row := mx.Row(i)
		nonAbstain := 0
		for _, v := range row {
			if v != Abstain {
				nonAbstain++
			}
		}
		for j, v := range row {
			if v == Abstain {
				continue
			}
			voted[j]++
			if v == Positive {
				out[j].Positives++
			} else {
				out[j].Negatives++
			}
			if nonAbstain > 1 {
				out[j].Overlap++
				for k, w := range row {
					if k != j && w != Abstain && w != v {
						out[j].Conflict++
						break
					}
				}
			}
			if gold != nil && v == gold[i] {
				correct[j]++
			}
		}
	}
	mf := float64(mx.m)
	for j := range out {
		out[j].Coverage = float64(voted[j]) / mf
		out[j].Overlap /= mf
		out[j].Conflict /= mf
		if gold != nil && voted[j] > 0 {
			out[j].EmpiricalAccuracy = float64(correct[j]) / float64(voted[j])
		}
	}
	return out
}

// CoverageAny returns the fraction of examples with at least one non-abstain
// vote. Examples with no votes get an uninformative posterior.
func (mx *Matrix) CoverageAny() float64 {
	covered := 0
	for i := 0; i < mx.m; i++ {
		for _, v := range mx.Row(i) {
			if v != Abstain {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(mx.m)
}

// Validate checks every entry is a legal vote. Matrices decoded from DFS
// shards pass through here before training.
func (mx *Matrix) Validate() error {
	for i, v := range mx.data {
		if !v.Valid() {
			return fmt.Errorf("labelmodel: invalid label %d at flat index %d", v, i)
		}
	}
	return nil
}
