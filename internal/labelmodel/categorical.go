package labelmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// This file extends the label model beyond binary targets. The paper notes
// "Snorkel DryBell can handle arbitrary categorical targets as well, e.g.
// Y_i ∈ {1..k}" (§2); this is that extension. Votes are 0 for abstain or a
// class id in 1..K. Each LF has an accuracy parameter (errors spread
// uniformly over the other K−1 classes) and a propensity parameter, the
// categorical analogue of the binary α/β model.

// CatMatrix is an m×n matrix of categorical votes in {0, 1..K}.
type CatMatrix struct {
	m, n, k int
	data    []int8
}

// NewCatMatrix returns an all-abstain categorical matrix for K classes.
func NewCatMatrix(m, n, k int) *CatMatrix {
	if m <= 0 || n <= 0 || k < 2 || k > 127 {
		panic(fmt.Sprintf("labelmodel: invalid categorical matrix %d×%d with k=%d", m, n, k))
	}
	return &CatMatrix{m: m, n: n, k: k, data: make([]int8, m*n)}
}

// NumExamples returns m.
func (c *CatMatrix) NumExamples() int { return c.m }

// NumFuncs returns n.
func (c *CatMatrix) NumFuncs() int { return c.n }

// NumClasses returns K.
func (c *CatMatrix) NumClasses() int { return c.k }

// At returns the vote of LF j on example i (0 = abstain).
func (c *CatMatrix) At(i, j int) int { return int(c.data[i*c.n+j]) }

// Set assigns a vote; v must be 0 (abstain) or in 1..K.
func (c *CatMatrix) Set(i, j, v int) {
	if v < 0 || v > c.k {
		panic(fmt.Sprintf("labelmodel: categorical vote %d out of [0,%d]", v, c.k))
	}
	c.data[i*c.n+j] = int8(v)
}

// CatModel is the learned categorical generative model.
type CatModel struct {
	// Alpha[j] is LF j's log-odds-style accuracy parameter; accuracy given a
	// vote is exp(α)/(exp(α)+(K−1)).
	Alpha []float64
	// Beta[j] is the propensity parameter as in the binary model.
	Beta []float64
	// K is the number of classes.
	K int
}

// Accuracies returns each LF's modeled accuracy given a non-abstain vote.
func (m *CatModel) Accuracies() []float64 {
	out := make([]float64, len(m.Alpha))
	for j, a := range m.Alpha {
		ea := math.Exp(a)
		out[j] = ea / (ea + float64(m.K-1))
	}
	return out
}

// PosteriorRow returns the posterior distribution over the K classes for one
// row of votes (length-K slice summing to 1).
func (m *CatModel) PosteriorRow(votes []int) []float64 {
	if len(votes) != len(m.Alpha) {
		panic(fmt.Sprintf("labelmodel: %d votes for %d LFs", len(votes), len(m.Alpha)))
	}
	logp := make([]float64, m.K)
	for j, v := range votes {
		if v == 0 {
			continue
		}
		// Correct class gets log-weight α_j; each wrong class gets 0
		// (uniform error mass), so only the voted class's entry shifts.
		logp[v-1] += m.Alpha[j]
	}
	// Softmax.
	mx := logp[0]
	for _, v := range logp[1:] {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	out := make([]float64, m.K)
	for c, v := range logp {
		out[c] = math.Exp(v - mx)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// Posteriors returns posterior distributions for all examples.
func (m *CatModel) Posteriors(cm *CatMatrix) [][]float64 {
	out := make([][]float64, cm.m)
	votes := make([]int, cm.n)
	for i := 0; i < cm.m; i++ {
		for j := 0; j < cm.n; j++ {
			votes[j] = cm.At(i, j)
		}
		out[i] = m.PosteriorRow(votes)
	}
	return out
}

// TrainCategorical fits the categorical model by minimizing −log P(Λ)
// (marginalizing the latent class uniformly) with analytic gradients,
// mirroring TrainAnalytic.
func TrainCategorical(cm *CatMatrix, opts Options) (*CatModel, error) {
	opts = opts.withDefaults()
	if cm == nil {
		return nil, fmt.Errorf("labelmodel: nil categorical matrix")
	}
	n, k := cm.n, cm.k
	rng := rand.New(rand.NewSource(opts.Seed))

	alpha := make([]float64, n)
	beta := make([]float64, n)
	voted := make([]int, n)
	for i := 0; i < cm.m; i++ {
		for j := 0; j < n; j++ {
			if cm.At(i, j) != 0 {
				voted[j]++
			}
		}
	}
	kf := float64(k)
	for j := range alpha {
		alpha[j] = 1 // mildly informative start
		c := float64(voted[j]) / float64(cm.m)
		if c < 1e-4 {
			c = 1e-4
		}
		if c > 1-1e-4 {
			c = 1 - 1e-4
		}
		// Match initial propensity to coverage, as in the binary model.
		beta[j] = math.Log(c/(1-c)) - math.Log(math.Exp(alpha[j])+(kf-1))
	}

	gradA := make([]float64, n)
	gradB := make([]float64, n)
	logp := make([]float64, k)
	post := make([]float64, k)
	votes := make([]int, n)

	for step := 0; step < opts.Steps; step++ {
		idx := sampleBatch(rng, cm.m, opts.BatchSize)
		for j := range gradA {
			gradA[j], gradB[j] = 0, 0
		}
		// Partition per LF: Z_j = log(exp(α+β) + (K−1)exp(β) + 1).
		tj := make([]float64, n) // ∂Z/∂α
		uj := make([]float64, n) // ∂Z/∂β
		for j := 0; j < n; j++ {
			z := logAddExp(logAddExp(alpha[j]+beta[j], beta[j]+math.Log(kf-1)), 0)
			pc := math.Exp(alpha[j] + beta[j] - z)       // P(vote correct class)
			pw := math.Exp(beta[j] + math.Log(kf-1) - z) // P(vote some wrong class)
			tj[j] = pc
			uj[j] = pc + pw
		}
		for _, i := range idx {
			for j := 0; j < n; j++ {
				votes[j] = cm.At(i, j)
			}
			// Posterior over classes for this example.
			for c := range logp {
				logp[c] = 0
			}
			for j, v := range votes {
				if v != 0 {
					logp[v-1] += alpha[j]
				}
			}
			mx := logp[0]
			for _, v := range logp[1:] {
				if v > mx {
					mx = v
				}
			}
			sum := 0.0
			for c, v := range logp {
				post[c] = math.Exp(v - mx)
				sum += post[c]
			}
			for c := range post {
				post[c] /= sum
			}
			for j, v := range votes {
				if v == 0 {
					// −Z_j appears in every class branch, so the abstain
					// contribution to ∂L/∂α is +∂Z/∂α.
					gradA[j] += tj[j]
					gradB[j] += uj[j]
					continue
				}
				// E[1[vote correct]] under the posterior is post[v-1].
				gradA[j] += tj[j] - post[v-1]
				gradB[j] += uj[j] - 1
			}
		}
		inv := 1 / float64(len(idx))
		for j := 0; j < n; j++ {
			alpha[j] -= opts.LR * (gradA[j]*inv + 2*opts.L2*alpha[j])
			beta[j] -= opts.LR * (gradB[j]*inv + 2*opts.L2*beta[j])
		}
		clampAlpha(alpha)
	}
	return &CatModel{Alpha: alpha, Beta: beta, K: k}, nil
}

// SynthesizeCategorical draws a categorical matrix with known ground truth:
// each LF votes with its propensity, votes the true class with its accuracy,
// and otherwise a uniform wrong class.
func SynthesizeCategorical(m, k int, accuracies, propensities []float64, seed int64) (*CatMatrix, []int, error) {
	n := len(accuracies)
	if n == 0 || len(propensities) != n {
		return nil, nil, fmt.Errorf("labelmodel: categorical synth needs matching parameter slices")
	}
	rng := rand.New(rand.NewSource(seed))
	cm := NewCatMatrix(m, n, k)
	gold := make([]int, m)
	for i := 0; i < m; i++ {
		y := rng.Intn(k) + 1
		gold[i] = y
		for j := 0; j < n; j++ {
			if rng.Float64() >= propensities[j] {
				continue
			}
			if rng.Float64() < accuracies[j] {
				cm.Set(i, j, y)
			} else {
				wrong := rng.Intn(k-1) + 1
				if wrong >= y {
					wrong++
				}
				cm.Set(i, j, wrong)
			}
		}
	}
	return cm, gold, nil
}
