package labelmodel

import (
	"math"
	"math/rand"
)

// TrainAnalytic fits the same marginal-likelihood objective as
// TrainSamplingFree but with hand-derived gradients instead of a compute
// graph. It exists as the ablation partner for the graph implementation
// (DESIGN.md §5.2): identical estimates, no graph overhead.
//
// Gradients (per example i, LF j, posterior p_i = P(Y_i=1|Λ_i)):
//
//	∂L/∂α_j = t_j − λ_ij·(2p_i − 1)   with t_j = ∂Z_j/∂α_j
//	∂L/∂β_j = u_j − 1[λ_ij ≠ 0]       with u_j = ∂Z_j/∂β_j = P(λ_j ≠ 0)
func TrainAnalytic(mx *Matrix, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	if err := validateMatrix(mx); err != nil {
		return nil, err
	}
	n := mx.NumFuncs()
	m := mx.NumExamples()
	rng := rand.New(rand.NewSource(opts.Seed))

	alpha := make([]float64, n)
	for j := range alpha {
		alpha[j] = initialAlpha
	}
	beta := initBeta(mx, initialAlpha)
	prior := opts.logPriorOdds()
	maxPrior := math.Log(0.995 / 0.005)

	// Adam state, matching the graph trainer's optimizer.
	mA, vA := make([]float64, n), make([]float64, n)
	mB, vB := make([]float64, n), make([]float64, n)
	const b1, b2, eps = 0.9, 0.999, 1e-8

	gradA := make([]float64, n)
	gradB := make([]float64, n)
	t, u := make([]float64, n), make([]float64, n)

	for step := 1; step <= opts.Steps; step++ {
		idx := sampleBatch(rng, m, opts.BatchSize)
		for j := range gradA {
			gradA[j], gradB[j] = 0, 0
		}
		// Per-LF partition-function derivatives at the current parameters.
		for j := 0; j < n; j++ {
			z := zj(alpha[j], beta[j])
			pAgree := math.Exp(alpha[j] + beta[j] - z)
			pDis := math.Exp(-alpha[j] + beta[j] - z)
			t[j] = pAgree - pDis
			u[j] = pAgree + pDis
		}
		gradPrior := 0.0
		for _, i := range idx {
			row := mx.Row(i)
			logOdds := prior
			for j, v := range row {
				logOdds += 2 * alpha[j] * float64(v)
			}
			p := sigmoid(logOdds)
			s := 2*p - 1
			// The prior enters every example's joint as ±prior/2 per class
			// branch, so ∂L/∂prior = 1/2 − p per example.
			gradPrior += 0.5 - p
			for j, v := range row {
				gradA[j] += t[j] - float64(v)*s
				if v != Abstain {
					gradB[j] += u[j] - 1
				} else {
					gradB[j] += u[j]
				}
			}
		}
		inv := 1 / float64(len(idx))
		c1 := 1 - math.Pow(b1, float64(step))
		c2 := 1 - math.Pow(b2, float64(step))
		for j := 0; j < n; j++ {
			ga := gradA[j]*inv + 2*opts.L2*alpha[j]
			gb := gradB[j]*inv + 2*opts.L2*beta[j]
			mA[j] = b1*mA[j] + (1-b1)*ga
			vA[j] = b2*vA[j] + (1-b2)*ga*ga
			alpha[j] -= opts.LR * (mA[j] / c1) / (math.Sqrt(vA[j]/c2) + eps)
			mB[j] = b1*mB[j] + (1-b1)*gb
			vB[j] = b2*vB[j] + (1-b2)*gb*gb
			beta[j] -= opts.LR * (mB[j] / c1) / (math.Sqrt(vB[j]/c2) + eps)
		}
		clampAlpha(alpha)
		// The prior learns slowly and only after a warm-up quarter: letting
		// it move before the accuracies stabilize collapses the posteriors
		// to the majority class.
		if opts.LearnPrior && 4*step > opts.Steps {
			prior -= 0.25 * opts.LR * gradPrior * inv
			if prior > maxPrior {
				prior = maxPrior
			}
			if prior < -maxPrior {
				prior = -maxPrior
			}
		}
	}
	return &Model{Alpha: alpha, Beta: beta, LogPriorOdds: prior}, nil
}
