package labelmodel

import "testing"

func TestModelRoundTrip(t *testing.T) {
	m := &Model{Alpha: []float64{1.5, -0.25, 0}, Beta: []float64{0.5, 1, 2}, LogPriorOdds: -0.3}
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.LogPriorOdds != m.LogPriorOdds || len(got.Alpha) != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	votes := []Label{Positive, Negative, Abstain}
	if a, b := m.PosteriorRow(votes), got.PosteriorRow(votes); a != b {
		t.Errorf("posterior %v != %v after round trip", b, a)
	}
}

func TestModelMarshalRejectsBadShapes(t *testing.T) {
	if _, err := EncodeModel(nil); err == nil {
		t.Error("nil model encoded")
	}
	if _, err := EncodeModel(&Model{Alpha: []float64{1}, Beta: nil}); err == nil {
		t.Error("ragged model encoded")
	}
	if _, err := DecodeModel([]byte("{bad")); err == nil {
		t.Error("corrupt bytes decoded")
	}
	if _, err := DecodeModel([]byte(`{"Alpha":[1],"Beta":[]}`)); err == nil {
		t.Error("ragged model decoded")
	}
	if _, err := DecodeModel([]byte(`{"Alpha":[],"Beta":[]}`)); err == nil {
		t.Error("empty model decoded")
	}
}
