package labelmodel

import (
	"math"
	"math/rand"
)

// TrainGibbs fits the generative model with the sampling-based optimizer
// used by the open-source Snorkel implementation the paper compares against
// (§5.2): for each minibatch it draws GibbsSamples rounds of latent labels
// Y_i from their conditional posterior, computes the complete-data gradient
// for each sampled assignment, and averages. It is the CPU-intensive
// baseline for the P1 performance experiment.
func TrainGibbs(mx *Matrix, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	if err := validateMatrix(mx); err != nil {
		return nil, err
	}
	n := mx.NumFuncs()
	m := mx.NumExamples()
	rng := rand.New(rand.NewSource(opts.Seed))

	alpha := make([]float64, n)
	for j := range alpha {
		alpha[j] = initialAlpha
	}
	beta := initBeta(mx, initialAlpha)
	prior := opts.logPriorOdds()

	gradA := make([]float64, n)
	gradB := make([]float64, n)
	t, u := make([]float64, n), make([]float64, n)
	y := make([]int, opts.BatchSize+1) // sampled latent labels for the batch

	for step := 0; step < opts.Steps; step++ {
		idx := sampleBatch(rng, m, opts.BatchSize)
		if len(y) < len(idx) {
			y = make([]int, len(idx))
		}
		for j := range gradA {
			gradA[j], gradB[j] = 0, 0
		}
		for j := 0; j < n; j++ {
			z := zj(alpha[j], beta[j])
			pAgree := math.Exp(alpha[j] + beta[j] - z)
			pDis := math.Exp(-alpha[j] + beta[j] - z)
			t[j] = pAgree - pDis
			u[j] = pAgree + pDis
		}
		// Gibbs sweeps: resample every Y_i, accumulate complete-data grads.
		samples := 0
		for sweep := 0; sweep < opts.GibbsSamples; sweep++ {
			for k, i := range idx {
				row := mx.Row(i)
				logOdds := prior
				for j, v := range row {
					logOdds += 2 * alpha[j] * float64(v)
				}
				if rng.Float64() < sigmoid(logOdds) {
					y[k] = 1
				} else {
					y[k] = -1
				}
				for j, v := range row {
					// ∂(−log P(Λ_i, Y_i=y))/∂α_j = t_j − λ_ij·y_i
					gradA[j] += t[j] - float64(v)*float64(y[k])
					if v != Abstain {
						gradB[j] += u[j] - 1
					} else {
						gradB[j] += u[j]
					}
				}
				samples++
			}
		}
		inv := 1 / float64(samples)
		for j := 0; j < n; j++ {
			alpha[j] -= opts.LR * (gradA[j]*inv + 2*opts.L2*alpha[j])
			beta[j] -= opts.LR * (gradB[j]*inv + 2*opts.L2*beta[j])
		}
		clampAlpha(alpha)
	}
	return &Model{Alpha: alpha, Beta: beta, LogPriorOdds: prior}, nil
}
