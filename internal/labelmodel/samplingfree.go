package labelmodel

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// TrainSamplingFree fits the generative model by minimizing −log P(Λ) on a
// static compute graph, the paper's §5.2 formulation verbatim: the batch is
// presented as three 0-1 indicator matrices (vote==+1, vote==−1, abstain),
// each multiplied into the corresponding per-LF log-likelihood vector, and
// the two class assignments are combined with a stable log-add-exp before
// summation. No sampling anywhere; gradients come from autodiff.
func TrainSamplingFree(mx *Matrix, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	if err := validateMatrix(mx); err != nil {
		return nil, err
	}
	n := mx.NumFuncs()
	rng := rand.New(rand.NewSource(opts.Seed))

	g := tensor.NewGraph()
	alpha := g.Variable("alpha", tensor.Full(initialAlpha, n)) // init: mildly better than chance
	beta := g.Variable("beta", tensor.FromSlice(initBeta(mx, initialAlpha)))

	// Z_j = log(exp(α+β) + exp(−α+β) + 1), the per-LF log partition function.
	zeros := g.Const("zeros", tensor.New(n))
	aPlusB := g.Add(alpha, beta)
	bMinusA := g.Sub(beta, alpha)
	z := g.LogAddExp(g.LogAddExp(aPlusB, bMinusA), zeros)

	// Per-LF log likelihood vectors for each (vote, Y) combination.
	agree := g.Sub(aPlusB, z)     // λ_j = Y:   α+β−Z
	disagree := g.Sub(bMinusA, z) // λ_j = −Y: −α+β−Z
	abstainLL := g.Neg(z)         // λ_j = 0:  −Z

	// Batch indicator matrices, fed each step.
	pos := g.Placeholder("pos")
	neg := g.Placeholder("neg")
	abs := g.Placeholder("abs")

	// log P(Λ_i, Y=+1) and log P(Λ_i, Y=−1) via indicator matmuls.
	absTerm := g.MatVec(abs, abstainLL)
	logPpos := g.Add(g.Add(g.MatVec(pos, agree), g.MatVec(neg, disagree)), absTerm)
	logPneg := g.Add(g.Add(g.MatVec(pos, disagree), g.MatVec(neg, agree)), absTerm)

	// Class prior enters as constant shifts of the two branches.
	prior := opts.logPriorOdds()
	logJointPos := g.AddConst(logPpos, 0.5*prior)
	logJointNeg := g.AddConst(logPneg, -0.5*prior)

	nll := g.Neg(g.Mean(g.LogAddExp(logJointPos, logJointNeg)))
	loss := nll
	if opts.L2 > 0 {
		reg := g.Scale(g.Add(g.Sum(g.Square(alpha)), g.Sum(g.Square(beta))), opts.L2)
		loss = g.Add(nll, reg)
	}

	opt := &tensor.Adam{LR: opts.LR}
	m := mx.NumExamples()
	for step := 0; step < opts.Steps; step++ {
		idx := sampleBatch(rng, m, opts.BatchSize)
		p, ng, ab := indicatorBatch(mx, idx)
		if _, err := g.Minimize(loss, opt,
			tensor.Feed{Node: pos, Value: p},
			tensor.Feed{Node: neg, Value: ng},
			tensor.Feed{Node: abs, Value: ab},
		); err != nil {
			return nil, fmt.Errorf("labelmodel: sampling-free step %d: %w", step, err)
		}
		// Projected gradient: the graph computes the unconstrained step, the
		// projection keeps α in the better-than-chance region (see clampAlpha).
		clampAlpha(alpha.Value().Data())
	}

	return &Model{
		Alpha:        append([]float64(nil), alpha.Value().Data()...),
		Beta:         append([]float64(nil), beta.Value().Data()...),
		LogPriorOdds: prior,
	}, nil
}

// indicatorBatch builds the three 0-1 indicator matrices for the rows idx.
func indicatorBatch(mx *Matrix, idx []int) (pos, neg, abs *tensor.Tensor) {
	n := mx.NumFuncs()
	b := len(idx)
	pos = tensor.New(b, n)
	neg = tensor.New(b, n)
	abs = tensor.New(b, n)
	for k, i := range idx {
		row := mx.Row(i)
		for j, v := range row {
			switch v {
			case Positive:
				pos.Set(1, k, j)
			case Negative:
				neg.Set(1, k, j)
			default:
				abs.Set(1, k, j)
			}
		}
	}
	return pos, neg, abs
}

// SamplingFreeStepRate is a convenience for the §5.2 performance claim: it
// runs exactly steps optimizer steps of the graph model with the given batch
// size and returns nothing; callers time it externally (see bench harness).
func SamplingFreeStepRate(mx *Matrix, steps, batchSize int) error {
	_, err := TrainSamplingFree(mx, Options{Steps: steps, BatchSize: batchSize, Seed: 7})
	return err
}
