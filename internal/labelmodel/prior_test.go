package labelmodel

import (
	"math"
	"testing"
)

// TestLearnPriorRecoversClassBalance verifies the §5.2 extension: with
// LearnPrior, the trainer's fitted prior moves from its (uniform) start
// toward the data's true class balance when the LFs are strong enough to
// identify it.
func TestLearnPriorRecoversClassBalance(t *testing.T) {
	for _, truePrior := range []float64{0.25, 0.75} {
		spec := SynthSpec{
			NumExamples:   4000,
			PriorPositive: truePrior,
			Accuracies:    []float64{0.95, 0.9, 0.9, 0.85},
			Propensities:  []float64{0.8, 0.7, 0.7, 0.6},
			Seed:          9,
		}
		mx, gold, err := Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := TrainAnalytic(mx, Options{
			Steps: 2000, BatchSize: 256, LR: 0.02, Seed: 4, LearnPrior: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fitted := sigmoid(m.LogPriorOdds)
		if math.Abs(fitted-truePrior) > 0.12 {
			t.Errorf("true prior %.2f: fitted %.3f (log-odds %.3f)", truePrior, fitted, m.LogPriorOdds)
		}
		// Posterior quality must not degrade versus the fixed uniform prior.
		fixed, err := TrainAnalytic(mx, Options{Steps: 2000, BatchSize: 256, LR: 0.02, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		accLearned := PosteriorAccuracy(m.Posteriors(mx), gold)
		accFixed := PosteriorAccuracy(fixed.Posteriors(mx), gold)
		if accLearned < accFixed-0.02 {
			t.Errorf("true prior %.2f: learned-prior accuracy %.3f below fixed %.3f",
				truePrior, accLearned, accFixed)
		}
	}
}

// TestLearnPriorStaysClamped verifies the prior cannot run away to a
// degenerate log-odds even on pathological (all-abstain-heavy) data.
func TestLearnPriorStaysClamped(t *testing.T) {
	mx := NewMatrix(500, 2)
	for i := 0; i < 20; i++ {
		mx.Set(i, 0, Negative)
		mx.Set(i, 1, Negative)
	}
	m, err := TrainAnalytic(mx, Options{Steps: 3000, LR: 0.1, Seed: 1, LearnPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	p := sigmoid(m.LogPriorOdds)
	if p < 0.004 || p > 0.996 {
		t.Errorf("fitted prior %.4f escaped the clamp", p)
	}
}

// TestFixedPriorUnchangedWithoutFlag guards against the prior drifting when
// LearnPrior is off.
func TestFixedPriorUnchangedWithoutFlag(t *testing.T) {
	mx, _, err := Synthesize(standardSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainAnalytic(mx, Options{Steps: 300, Seed: 2, PriorPositive: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.3) - math.Log(0.7)
	if math.Abs(m.LogPriorOdds-want) > 1e-12 {
		t.Errorf("fixed prior drifted: %v, want %v", m.LogPriorOdds, want)
	}
}
