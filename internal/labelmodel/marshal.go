package labelmodel

import (
	"encoding/json"
	"fmt"
)

// EncodeModel serializes a trained generative model for persistence on the
// distributed filesystem, so the online labeling path can score per-LF votes
// with the same parameters a batch run learned — without retraining at
// daemon startup.
func EncodeModel(m *Model) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("labelmodel: EncodeModel(nil)")
	}
	if len(m.Alpha) != len(m.Beta) {
		return nil, fmt.Errorf("labelmodel: model has %d alphas, %d betas", len(m.Alpha), len(m.Beta))
	}
	return json.Marshal(m)
}

// DecodeModel restores a model written by EncodeModel, validating shape.
func DecodeModel(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("labelmodel: decode model: %w", err)
	}
	if len(m.Alpha) == 0 || len(m.Alpha) != len(m.Beta) {
		return nil, fmt.Errorf("labelmodel: decoded model has %d alphas, %d betas", len(m.Alpha), len(m.Beta))
	}
	return &m, nil
}
