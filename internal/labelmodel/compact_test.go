package labelmodel

import (
	"math/rand"
	"testing"
)

// randomMatrix draws an m×n matrix with roughly the given non-abstain rate.
func randomMatrix(t *testing.T, m, n int, voteRate float64, seed int64) *Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mx := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() >= voteRate {
				continue
			}
			if rng.Float64() < 0.5 {
				mx.Set(i, j, Positive)
			} else {
				mx.Set(i, j, Negative)
			}
		}
	}
	return mx
}

// naiveCompactCounts reproduces Compact's aggregates with a plain map.
func naiveCompactCounts(mx *Matrix) (unique int, voted []int64) {
	seen := map[string]bool{}
	voted = make([]int64, mx.NumFuncs())
	buf := make([]byte, mx.NumFuncs())
	for i := 0; i < mx.NumExamples(); i++ {
		for j, v := range mx.Row(i) {
			buf[j] = byte(v)
			if v != Abstain {
				voted[j]++
			}
		}
		seen[string(buf)] = true
	}
	return len(seen), voted
}

func TestCompactRoundTrip(t *testing.T) {
	// Sizes straddle the packed-uint64 (n ≤ 32) and string-key paths.
	for _, tc := range []struct {
		m, n int
		rate float64
	}{
		{1, 1, 1}, {7, 3, 0.5}, {500, 10, 0.3}, {300, 32, 0.2}, {200, 40, 0.25}, {64, 2, 0.9},
	} {
		mx := randomMatrix(t, tc.m, tc.n, tc.rate, int64(tc.m*100+tc.n))
		cm := mx.Compact()
		back := cm.Reconstruct()
		if back.NumExamples() != tc.m || back.NumFuncs() != tc.n {
			t.Fatalf("%d×%d: reconstructed %d×%d", tc.m, tc.n, back.NumExamples(), back.NumFuncs())
		}
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				if back.At(i, j) != mx.At(i, j) {
					t.Fatalf("%d×%d: vote [%d,%d] = %d after round trip, want %d",
						tc.m, tc.n, i, j, back.At(i, j), mx.At(i, j))
				}
			}
		}
	}
}

func TestCompactMultiplicitiesAndCounts(t *testing.T) {
	for _, n := range []int{4, 10, 31, 33, 40} {
		mx := randomMatrix(t, 800, n, 0.35, int64(n))
		cm := mx.Compact()

		wantUnique, wantVoted := naiveCompactCounts(mx)
		if cm.NumUnique() != wantUnique {
			t.Fatalf("n=%d: %d unique rows, naive says %d", n, cm.NumUnique(), wantUnique)
		}
		total := int32(0)
		for _, mult := range cm.Mult {
			if mult <= 0 {
				t.Fatalf("n=%d: non-positive multiplicity %d", n, mult)
			}
			total += mult
		}
		if int(total) != mx.NumExamples() {
			t.Fatalf("n=%d: multiplicities sum to %d, want %d", n, total, mx.NumExamples())
		}
		for j, v := range cm.Voted {
			if v != wantVoted[j] {
				t.Fatalf("n=%d: Voted[%d] = %d, want %d", n, j, v, wantVoted[j])
			}
		}

		// Each distinct row's packed counts agree with its dense form, each
		// example maps to a row matching its votes, and every multiplicity
		// equals the number of examples pointing at the row.
		refCount := make([]int32, cm.NumUnique())
		for i, r := range cm.RowOf {
			refCount[r]++
			votes := cm.RowVotes(int(r))
			pos, neg := 0, 0
			for j, v := range mx.Row(i) {
				if votes[j] != v {
					t.Fatalf("n=%d: example %d vote %d disagrees with its distinct row", n, i, j)
				}
				switch v {
				case Positive:
					pos++
				case Negative:
					neg++
				}
			}
			if cm.PosCount(int(r)) != pos || cm.NegCount(int(r)) != neg {
				t.Fatalf("n=%d: row %d packed counts (%d,%d), want (%d,%d)",
					n, r, cm.PosCount(int(r)), cm.NegCount(int(r)), pos, neg)
			}
		}
		for r, mult := range cm.Mult {
			if refCount[r] != mult {
				t.Fatalf("n=%d: row %d multiplicity %d, but %d examples map to it", n, r, mult, refCount[r])
			}
		}
	}
}

func TestCompactDuplicateHeavy(t *testing.T) {
	// Three literal patterns repeated: U must be 3 regardless of m.
	mx := NewMatrix(999, 5)
	patterns := [][]Label{
		{Positive, Abstain, Negative, Abstain, Abstain},
		{Abstain, Abstain, Abstain, Abstain, Abstain},
		{Negative, Negative, Positive, Positive, Positive},
	}
	for i := 0; i < mx.NumExamples(); i++ {
		mx.SetRow(i, patterns[i%3])
	}
	cm := mx.Compact()
	if cm.NumUnique() != 3 {
		t.Fatalf("3 patterns compacted to %d rows", cm.NumUnique())
	}
	for _, mult := range cm.Mult {
		if mult != 333 {
			t.Fatalf("multiplicity %d, want 333", mult)
		}
	}
}

func TestCompactRejectsInvalidVotes(t *testing.T) {
	mx := NewMatrix(4, 3)
	mx.data[5] = 7 // bypass Set's validation, as a corrupt decode would
	if _, err := mx.compactChecked(); err == nil {
		t.Fatal("compactChecked accepted an out-of-range vote")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Compact did not panic on an out-of-range vote")
		}
	}()
	mx.Compact()
}

func TestRowTableGrowth(t *testing.T) {
	// Force growth: all-unique keys through a deliberately tiny table.
	tab := newRowTable(0)
	for k := 0; k < 5000; k++ {
		if _, fresh := tab.insert(uint64(k)*2654435761, int32(k)); !fresh {
			t.Fatalf("key %d reported as duplicate", k)
		}
	}
	for k := 0; k < 5000; k++ {
		v, fresh := tab.insert(uint64(k)*2654435761, -2)
		if fresh || v != int32(k) {
			t.Fatalf("key %d lookup = (%d, %v), want (%d, false)", k, v, fresh, k)
		}
	}
}
