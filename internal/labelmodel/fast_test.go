package labelmodel

import (
	"math"
	"testing"
)

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d = math.Max(d, math.Abs(a[i]-b[i]))
	}
	return d
}

// TestFastTrainerMatchesReference is the equivalence contract of the
// vectorized trainer: with the same options, TrainSamplingFreeFast must
// agree with the graph-based reference to within 1e−3 on α and β and 1e−4
// on the posterior labels. The reference runs full-batch (BatchSize ≥ m)
// so its deterministic Adam iterations converge to the shared optimum; the
// fast trainer always runs full-batch by construction.
func TestFastTrainerMatchesReference(t *testing.T) {
	specs := []struct {
		name  string
		spec  SynthSpec
		l2    float64
		steps int
		lr    float64
	}{
		{
			name: "balanced",
			spec: SynthSpec{
				NumExamples:   900,
				PriorPositive: 0.5,
				Accuracies:    []float64{0.9, 0.8, 0.7, 0.85, 0.75},
				Propensities:  []float64{0.5, 0.4, 0.3, 0.25, 0.35},
				Seed:          3,
			},
			steps: 4000, lr: 0.05,
		},
		{
			name: "imbalanced-prior",
			spec: SynthSpec{
				NumExamples:   800,
				PriorPositive: 0.25,
				Accuracies:    []float64{0.85, 0.7, 0.9, 0.75},
				Propensities:  []float64{0.35, 0.5, 0.2, 0.4},
				Seed:          42,
			},
			steps: 12000, lr: 0.01,
		},
		{
			name: "ridge",
			spec: SynthSpec{
				NumExamples:   700,
				PriorPositive: 0.5,
				Accuracies:    []float64{0.9, 0.75, 0.8, 0.7},
				Propensities:  []float64{0.45, 0.3, 0.2, 0.35},
				Seed:          11,
			},
			l2:    0.01,
			steps: 12000, lr: 0.01,
		},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			mx, _, err := Synthesize(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			// Per-spec step count and LR are whatever lets the reference's
			// full-batch Adam settle to the shared optimum well inside the
			// mandated tolerances (its limit-cycle amplitude scales with
			// LR, but smaller LR also converges more slowly).
			opts := Options{
				Steps: tc.steps, BatchSize: mx.NumExamples(), LR: tc.lr, Seed: 7,
				PriorPositive: tc.spec.PriorPositive, L2: tc.l2,
			}
			ref, err := TrainSamplingFree(mx, opts)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := TrainSamplingFreeFast(mx, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(ref.Alpha, fast.Alpha); d > 1e-3 {
				t.Errorf("alpha diverges by %.2e (> 1e-3)\nref:  %v\nfast: %v", d, ref.Alpha, fast.Alpha)
			}
			if d := maxAbsDiff(ref.Beta, fast.Beta); d > 1e-3 {
				t.Errorf("beta diverges by %.2e (> 1e-3)\nref:  %v\nfast: %v", d, ref.Beta, fast.Beta)
			}
			if d := maxAbsDiff(ref.Posteriors(mx), fast.Posteriors(mx)); d > 1e-4 {
				t.Errorf("posterior labels diverge by %.2e (> 1e-4)", d)
			}
			// The fast trainer converges; it must never land above the
			// reference on the shared objective (modulo FP noise).
			refNLL := -ref.LogMarginalLikelihood(mx)
			fastNLL := -fast.LogMarginalLikelihood(mx)
			if fastNLL > refNLL+1e-6*math.Abs(refNLL) {
				t.Errorf("fast NLL %.8f worse than reference %.8f", fastNLL, refNLL)
			}
		})
	}
}

// TestFastTrainerBoundaryLF: a below-chance function must pin at α = 0 (the
// better-than-chance projection) exactly as the reference trainer projects
// it, and the rest of the model must still match.
func TestFastTrainerBoundaryLF(t *testing.T) {
	mx, _, err := Synthesize(SynthSpec{
		NumExamples:   900,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.55, 0.9, 0.35, 0.8},
		Propensities:  []float64{0.4, 0.35, 0.3, 0.25},
		Seed:          99,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Steps: 12000, BatchSize: mx.NumExamples(), LR: 0.01, Seed: 7}
	ref, err := TrainSamplingFree(mx, opts)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TrainSamplingFreeFast(mx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Alpha[2] > 1e-9 {
		t.Errorf("below-chance LF has α = %v, want pinned at 0", fast.Alpha[2])
	}
	if d := maxAbsDiff(ref.Alpha, fast.Alpha); d > 1e-3 {
		t.Errorf("alpha diverges by %.2e (> 1e-3)\nref:  %v\nfast: %v", d, ref.Alpha, fast.Alpha)
	}
}

// TestFastTrainerDeterministic: full-batch updates with no sampling must be
// bit-identical across runs.
func TestFastTrainerDeterministic(t *testing.T) {
	mx, _, err := Synthesize(SynthSpec{
		NumExamples:   3000,
		PriorPositive: 0.4,
		Accuracies:    []float64{0.9, 0.8, 0.7, 0.85, 0.75, 0.65},
		Propensities:  []float64{0.5, 0.4, 0.3, 0.25, 0.2, 0.35},
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := TrainSamplingFreeFast(mx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSamplingFreeFast(mx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Alpha {
		if a.Alpha[j] != b.Alpha[j] || a.Beta[j] != b.Beta[j] {
			t.Fatalf("run-to-run drift at LF %d: α %v vs %v, β %v vs %v",
				j, a.Alpha[j], b.Alpha[j], a.Beta[j], b.Beta[j])
		}
	}
	// Seed and BatchSize are documented as ignored: changing them must not
	// change the result.
	c, err := TrainSamplingFreeFast(mx, Options{Seed: 123, BatchSize: 17})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Alpha {
		if a.Alpha[j] != c.Alpha[j] {
			t.Fatalf("seed/batch options changed the deterministic result at LF %d", j)
		}
	}
}

// TestFastTrainerLabelEquivalenceAtDefaults proves the pipeline-level
// claim: switching the denoise stage from the reference trainer at its
// default minibatch settings to the fast trainer changes the training
// labels by no more than the reference's own seed-to-seed minibatch noise —
// the honest tolerance, since at default options the reference itself is a
// stochastic estimator of the optimum the fast trainer computes exactly.
func TestFastTrainerLabelEquivalenceAtDefaults(t *testing.T) {
	mx, gold, err := Synthesize(SynthSpec{
		NumExamples:   4000,
		PriorPositive: 0.5,
		Accuracies:    []float64{0.9, 0.85, 0.8, 0.75, 0.7, 0.9, 0.85, 0.8},
		Propensities:  []float64{0.4, 0.4, 0.4, 0.3, 0.3, 0.2, 0.2, 0.2},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	refA, err := TrainSamplingFree(mx, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	refB, err := TrainSamplingFree(mx, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TrainSamplingFreeFast(mx, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, pf := refA.Posteriors(mx), refB.Posteriors(mx), fast.Posteriors(mx)

	flips := func(x, y []float64) float64 {
		hx, hy := HardLabels(x), HardLabels(y)
		n := 0
		for i := range hx {
			if hx[i] != hy[i] {
				n++
			}
		}
		return float64(n) / float64(len(hx))
	}
	noiseDrift := maxAbsDiff(pa, pb)
	noiseFlips := flips(pa, pb)
	if d := maxAbsDiff(pa, pf); d > math.Max(1.5*noiseDrift, 0.02) {
		t.Errorf("fast-vs-reference posterior drift %.3f exceeds the reference's own seed noise %.3f", d, noiseDrift)
	}
	if f := flips(pa, pf); f > math.Max(1.5*noiseFlips, 0.002) {
		t.Errorf("fast-vs-reference hard-label flips %.3f%% exceed the reference's own seed noise %.3f%%",
			100*f, 100*noiseFlips)
	}
	// And against ground truth the fast trainer must denoise at least as
	// well as the reference.
	accRef := PosteriorAccuracy(pa, gold)
	accFast := PosteriorAccuracy(pf, gold)
	if accFast < accRef-0.005 {
		t.Errorf("fast trainer posterior accuracy %.4f below reference %.4f", accFast, accRef)
	}
}

// TestFastTrainerRecoversAccuracies mirrors the recovery property test the
// other trainers satisfy.
func TestFastTrainerRecoversAccuracies(t *testing.T) {
	truth := []float64{0.92, 0.85, 0.7, 0.8, 0.65}
	mx, _, err := Synthesize(SynthSpec{
		NumExamples:   12000,
		PriorPositive: 0.5,
		Accuracies:    truth,
		Propensities:  []float64{0.5, 0.4, 0.45, 0.3, 0.35},
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainSamplingFreeFast(mx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, acc := range m.Accuracies() {
		if math.Abs(acc-truth[j]) > 0.05 {
			t.Errorf("LF %d modeled accuracy %.3f, true %.3f", j, acc, truth[j])
		}
	}
}

func TestFastTrainerRejectsBadMatrix(t *testing.T) {
	if _, err := TrainSamplingFreeFast(nil, Options{}); err == nil {
		t.Error("nil matrix accepted")
	}
	mx := NewMatrix(3, 2)
	mx.data[1] = 9
	if _, err := TrainSamplingFreeFast(mx, Options{}); err == nil {
		t.Error("invalid vote accepted")
	}
}
