package labelmodel

import (
	"fmt"
	"sync"
)

// CompactMatrix is the deduplicated form of a label matrix Λ: the distinct
// vote rows with their multiplicities, stored as packed per-row positive and
// negative column lists. An m×n ternary matrix has at most 3^n distinct rows,
// and real vote matrices have far fewer distinct rows than examples (the few
// labeling functions overlap the same way on many examples), so aggregating
// per-example computations over distinct rows weighted by multiplicity — the
// trick relational engines use to evaluate aggregates over duplicate-heavy
// relations — turns O(m·n) work per pass into O(U·n) with U ≪ m.
//
// Layout: row r's non-abstain votes are the columns
//
//	Cols[Start[r]   : PosEnd[r]]   (vote = +1)
//	Cols[PosEnd[r]  : Start[r+1]]  (vote = −1)
//
// a CSR-style packing with the positive segment first, so per-row positive
// and negative counts fall out of the offsets without storing the votes
// themselves.
type CompactMatrix struct {
	m, n int

	// Mult[r] is the number of original examples with row pattern r.
	// Multiplicities sum to NumExamples.
	Mult []int32
	// Start/PosEnd delimit each row's packed column segments (see above).
	// Start has U+1 entries; Start[U] == len(Cols).
	Start  []int32
	PosEnd []int32
	// Cols holds the non-abstain column indices of all rows, packed.
	Cols []uint16
	// RowOf maps each original example index to its distinct-row index, so
	// per-example quantities (posteriors, labels) can be recovered from
	// per-row ones without touching the original matrix.
	RowOf []int32
	// Voted[j] counts the examples on which LF j did not abstain, aggregated
	// over the whole matrix — the sufficient statistic for the propensity
	// parameters.
	Voted []int64
	// MajorityAgree[j] counts the examples on which LF j's vote matches the
	// example's unweighted majority vote (ties agree with nobody) — the
	// sufficient statistic for method-of-moments accuracy estimates and the
	// majority-vote baseline, aggregated here because the packing pass
	// already touches every distinct row.
	MajorityAgree []int64
}

// NumUnique returns U, the number of distinct vote rows.
func (c *CompactMatrix) NumUnique() int { return len(c.Mult) }

// NumExamples returns m of the original matrix.
func (c *CompactMatrix) NumExamples() int { return c.m }

// NumFuncs returns n of the original matrix.
func (c *CompactMatrix) NumFuncs() int { return c.n }

// PosCount returns the number of positive votes in distinct row r.
func (c *CompactMatrix) PosCount(r int) int { return int(c.PosEnd[r] - c.Start[r]) }

// NegCount returns the number of negative votes in distinct row r.
func (c *CompactMatrix) NegCount(r int) int { return int(c.Start[r+1] - c.PosEnd[r]) }

// RowVotes reconstructs distinct row r as a dense vote slice.
func (c *CompactMatrix) RowVotes(r int) []Label {
	row := make([]Label, c.n)
	for _, j := range c.Cols[c.Start[r]:c.PosEnd[r]] {
		row[j] = Positive
	}
	for _, j := range c.Cols[c.PosEnd[r]:c.Start[r+1]] {
		row[j] = Negative
	}
	return row
}

// Reconstruct rebuilds the original m×n matrix from the compact form using
// the RowOf mapping. Compact followed by Reconstruct is the identity.
func (c *CompactMatrix) Reconstruct() *Matrix {
	mx := NewMatrix(c.m, c.n)
	for i, r := range c.RowOf {
		dst := mx.data[i*c.n : (i+1)*c.n]
		for _, j := range c.Cols[c.Start[r]:c.PosEnd[r]] {
			dst[j] = Positive
		}
		for _, j := range c.Cols[c.PosEnd[r]:c.Start[r+1]] {
			dst[j] = Negative
		}
	}
	return mx
}

// voteBad is the sentinel bit voteCode sets for bytes that are not legal
// votes.
const voteBad = 1 << 7

// voteCode maps a vote byte to its two-bit packed code (abstain → 0,
// positive → 1, negative → 3), with voteBad marking illegal bytes. The
// legal entries are an ordered slice, not a map literal: this table is the
// encoder's ground truth, and seeding it from a nondeterministically
// ordered range is exactly the class of bug drybellvet's determinism
// analyzer exists to stop (harmless here only because the keys are
// distinct — until someone edits the table).
var voteCode = func() (t [256]uint64) {
	for i := range t {
		t[i] = voteBad
	}
	for _, e := range []struct {
		label Label
		code  uint64
	}{{Abstain, 0}, {Positive, 1}, {Negative, 3}} {
		t[uint8(e.label)] = e.code //drybellvet:rawvote — seeding the encoder's own table
	}
	return
}()

// rowTable is a minimal open-addressed hash table from packed row keys to
// distinct-row indices. vals[slot] < 0 marks an empty slot, so every uint64
// (including 0, the all-abstain row) is a legal key.
type rowTable struct {
	keys []uint64
	vals []int32
	used int
	mask uint64
}

// rowHash mixes a packed row key so its high entropy reaches the low slot
// bits (Fibonacci hashing with a fold).
func rowHash(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return h>>29 ^ h
}

// rowTablePool recycles tables across Compact calls: the table is the
// largest allocation of a training run, and the GC pressure of remaking it
// per call is measurable on the trainer benchmark.
var rowTablePool sync.Pool

func newRowTable(hint int) *rowTable {
	// Sized so that typical compaction ratios (U around m/4 or better) never
	// rehash mid-stream; pathological all-unique inputs still grow correctly.
	size := 1024
	for size < hint/2 {
		size <<= 1
	}
	if t, _ := rowTablePool.Get().(*rowTable); t != nil && len(t.keys) >= size {
		for i := range t.vals {
			t.vals[i] = -1
		}
		t.used = 0
		return t
	}
	t := &rowTable{keys: make([]uint64, size), vals: make([]int32, size), mask: uint64(size - 1)}
	for i := range t.vals {
		t.vals[i] = -1
	}
	return t
}

// release returns the table to the pool for the next Compact call.
func (t *rowTable) release() { rowTablePool.Put(t) }

// insert returns the value for key, storing val for a fresh key; fresh
// reports whether the key was new.
func (t *rowTable) insert(key uint64, val int32) (int32, bool) {
	if t.used*10 >= len(t.keys)*7 {
		t.grow()
	}
	slot := rowHash(key) & t.mask
	for {
		if v := t.vals[slot]; v < 0 {
			t.keys[slot] = key
			t.vals[slot] = val
			t.used++
			return val, true
		} else if t.keys[slot] == key {
			return v, false
		}
		slot = (slot + 1) & t.mask
	}
}

func (t *rowTable) grow() {
	old := *t
	size := len(old.keys) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
	for i := range t.vals {
		t.vals[i] = -1
	}
	for i, v := range old.vals {
		if v < 0 {
			continue
		}
		key := old.keys[i]
		slot := rowHash(key) & t.mask
		for t.vals[slot] >= 0 {
			slot = (slot + 1) & t.mask
		}
		t.keys[slot] = key
		t.vals[slot] = v
	}
}

// Compact deduplicates the matrix's rows. Matrices with up to 32 labeling
// functions pack each row into one uint64 key (two bits per vote); wider
// matrices fall back to string keys. Cost is one O(m·n) pass; every training
// pass over the result is O(U·n) instead. Compact panics on a matrix with
// out-of-range votes (use Validate first for data of unknown provenance);
// compactChecked is the error-returning form the trainers use, which folds
// validation into the packing pass instead of re-scanning the matrix.
func (mx *Matrix) Compact() *CompactMatrix {
	c, err := mx.compactChecked()
	if err != nil {
		panic(err.Error())
	}
	return c
}

func (mx *Matrix) compactChecked() (*CompactMatrix, error) {
	if mx.n > 1<<16 {
		return nil, fmt.Errorf("labelmodel: Compact supports at most %d labeling functions, got %d", 1<<16, mx.n)
	}
	c := &CompactMatrix{
		m:             mx.m,
		n:             mx.n,
		RowOf:         make([]int32, mx.m),
		Voted:         make([]int64, mx.n),
		MajorityAgree: make([]int64, mx.n),
	}
	// Column lists are packed the moment a fresh row pattern is seen, so
	// the whole compaction is one pass over the matrix plus O(U·n̄) work on
	// first encounters only.
	appendCols := func(row []Label) {
		c.Start = append(c.Start, int32(len(c.Cols)))
		for j, v := range row {
			if v == Positive {
				c.Cols = append(c.Cols, uint16(j))
			}
		}
		c.PosEnd = append(c.PosEnd, int32(len(c.Cols)))
		for j, v := range row {
			if v == Negative {
				c.Cols = append(c.Cols, uint16(j))
			}
		}
	}
	if mx.n <= 32 {
		// Open-addressed table instead of a Go map: row deduplication is the
		// whole cost of Compact, and the custom probe loop is several times
		// faster than map inserts on this hot path.
		tab := newRowTable(mx.m)
		defer tab.release()
		for i := 0; i < mx.m; i++ {
			var key, bad uint64
			row := mx.data[i*mx.n : (i+1)*mx.n]
			// Two bits per vote: abstain → 0, positive → 1, negative → 3,
			// via a lookup that tags out-of-range bytes with a sentinel bit
			// — branch-free per element, one validity branch per row.
			// Independent shift-or terms, so the packing pipelines instead
			// of serializing on one accumulator.
			for j, v := range row {
				code := voteCode[uint8(v)] //drybellvet:rawvote — indexing the encoder's table
				bad |= code
				key |= (code & 3) << (2 * uint(j))
			}
			if bad&voteBad != 0 {
				for j, v := range row {
					if v < Negative || v > Positive {
						return nil, fmt.Errorf("labelmodel: invalid label %d at row %d column %d", v, i, j)
					}
				}
			}
			r, fresh := tab.insert(key, int32(len(c.Mult)))
			if fresh {
				c.Mult = append(c.Mult, 0)
				appendCols(row)
			}
			c.Mult[r]++
			c.RowOf[i] = r
		}
	} else {
		buf := make([]byte, mx.n)
		seen := make(map[string]int32, mx.m/4+16)
		for i := 0; i < mx.m; i++ {
			row := mx.data[i*mx.n : (i+1)*mx.n]
			if err := EncodeVotes(buf, row); err != nil {
				return nil, fmt.Errorf("labelmodel: row %d: %w", i, err)
			}
			r, ok := seen[string(buf)]
			if !ok {
				r = int32(len(c.Mult))
				seen[string(buf)] = r
				c.Mult = append(c.Mult, 0)
				appendCols(row)
			}
			c.Mult[r]++
			c.RowOf[i] = r
		}
	}
	u := len(c.Mult)
	c.Start = append(c.Start, int32(len(c.Cols)))

	// Per-LF vote and majority-agreement counts aggregate over distinct
	// rows and multiplicities.
	for r := 0; r < u; r++ {
		mult := int64(c.Mult[r])
		pos := c.Cols[c.Start[r]:c.PosEnd[r]]
		neg := c.Cols[c.PosEnd[r]:c.Start[r+1]]
		maj := len(pos) - len(neg)
		for _, j := range pos {
			c.Voted[j] += mult
			if maj > 0 {
				c.MajorityAgree[j] += mult
			}
		}
		for _, j := range neg {
			c.Voted[j] += mult
			if maj < 0 {
				c.MajorityAgree[j] += mult
			}
		}
	}
	return c, nil
}
