package labelmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// Options configure training. The defaults mirror the paper's setup
// (batch size 64, a few thousand gradient steps).
type Options struct {
	// Steps is the number of gradient steps. Default 2000.
	Steps int
	// BatchSize is the minibatch size. Default 64 (paper §5.2, §6.1).
	BatchSize int
	// LR is the learning rate. Default 0.05.
	LR float64
	// L2 is an optional ridge penalty on α and β pulling them toward 0,
	// which regularizes LFs with tiny coverage. Default 0.
	L2 float64
	// Seed drives minibatch sampling (and Gibbs sampling). Default 1.
	Seed int64
	// PriorPositive is the class prior P(Y=1). Default 0.5, the paper's
	// uniform prior — and that choice is load-bearing, not merely
	// simplifying: because the propensity parameter is shared across
	// classes, a strongly informative prior under heavy class imbalance
	// makes the "ignore the sparse positive-voting functions" mode optimal
	// and collapses their accuracies to chance. Prefer the uniform prior
	// for training and handle class balance with the decision threshold.
	PriorPositive float64
	// GibbsSamples is the number of Gibbs sweeps per minibatch used by the
	// Gibbs trainer to estimate its gradient. Default 10.
	GibbsSamples int
	// LearnPrior enables learning the class prior from the data instead of
	// fixing it — the extension the paper mentions ("we can also learn this
	// distribution", §5.2). PriorPositive then only initializes the prior.
	// Supported by TrainAnalytic; clamped to keep P(Y=1) in [0.005, 0.995].
	LearnPrior bool
}

func (o Options) withDefaults() Options {
	if o.Steps <= 0 {
		o.Steps = 2000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.LR <= 0 {
		o.LR = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PriorPositive <= 0 || o.PriorPositive >= 1 {
		o.PriorPositive = 0.5
	}
	if o.GibbsSamples <= 0 {
		o.GibbsSamples = 10
	}
	return o
}

func (o Options) logPriorOdds() float64 {
	p := o.PriorPositive
	return math.Log(p) - math.Log(1-p)
}

// validateMatrix rejects degenerate inputs before training.
func validateMatrix(mx *Matrix) error {
	if mx == nil {
		return fmt.Errorf("labelmodel: nil matrix")
	}
	if err := mx.Validate(); err != nil {
		return err
	}
	return nil
}

// initialAlpha is the common α starting point: mildly better than chance.
const initialAlpha = 0.7

// initBeta computes per-LF starting values for β such that the model's
// initial abstain propensity matches each function's empirical coverage.
// Without this, sparse labeling functions (a few percent coverage) start
// with the model believing they vote ~70% of the time; the resulting
// partition-function gradient swamps the data term and drives α into the
// flipped basin before β can adapt. Matching coverage at initialization —
// as the open-source Snorkel implementation also does — removes that
// transient: solving (e^{α+β}+e^{−α+β})/Z = c for β gives
// β = logit(c) − log(e^α + e^{−α}).
func initBeta(mx *Matrix, alpha float64) []float64 {
	n := mx.NumFuncs()
	m := mx.NumExamples()
	voted := make([]int, n)
	for i := 0; i < m; i++ {
		for j, v := range mx.Row(i) {
			if v != Abstain {
				voted[j]++
			}
		}
	}
	out := make([]float64, n)
	logCosh := math.Log(math.Exp(alpha) + math.Exp(-alpha))
	for j := range out {
		c := float64(voted[j]) / float64(m)
		if c < 1e-4 {
			c = 1e-4
		}
		if c > 1-1e-4 {
			c = 1 - 1e-4
		}
		out[j] = math.Log(c/(1-c)) - logCosh
	}
	return out
}

// maxAlpha is the upper bound of the accuracy-parameter projection shared by
// every trainer: it keeps log-odds finite for unanimous functions.
const maxAlpha = 3.0

// clampAlpha projects α onto [0, maxAlpha] after each gradient step.
//
// This enforces data programming's core assumption that labeling functions
// are better than random (Ratner et al. 2016 assume accuracies in a
// better-than-chance range). Without the constraint the marginal likelihood
// has degenerate optima under heavy class imbalance: because the propensity
// parameter β is shared across classes, a one-sided labeling function's
// information lives in *when* it votes, which the model cannot express, and
// the "declare every example negative, call the positive-voting functions
// inaccurate" mode can dominate. Projecting α ≥ 0 removes those modes, and
// the upper bound keeps log-odds finite for unanimous functions. A truly
// adversarial (below-chance) function pins at α = 0 and is simply ignored.
func clampAlpha(alpha []float64) {
	for j, a := range alpha {
		if a < 0 {
			alpha[j] = 0
		} else if a > maxAlpha {
			alpha[j] = maxAlpha
		}
	}
}

// sampleBatch draws batch row indices without replacement when possible.
func sampleBatch(rng *rand.Rand, m, batch int) []int {
	if batch >= m {
		idx := make([]int, m)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, batch)
	seen := make(map[int]bool, batch)
	for k := 0; k < batch; {
		i := rng.Intn(m)
		if !seen[i] {
			seen[i] = true
			idx[k] = i
			k++
		}
	}
	return idx
}
