package corpus

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Event is one real-time event (§3.3): the served model sees only the
// real-time, event-level feature vector; labeling functions see the offline
// aggregates and relationship-graph scores.
type Event struct {
	// ID is unique within a stream.
	ID string `json:"id"`
	// Servable is the real-time event-level feature vector (dimension
	// EventServableDim), available at serving time with low latency.
	Servable []float64 `json:"servable"`
	// AggStats are offline aggregate statistics (non-servable; they lag the
	// event by hours).
	AggStats []float64 `json:"agg_stats"`
	// GraphScores are entity/destination relationship-graph signals
	// (non-servable; high recall, lower precision).
	GraphScores []float64 `json:"graph_scores"`
	// Gold is the planted "event of interest" label.
	Gold bool `json:"gold"`
}

// Feature dimensions for the events task.
const (
	EventServableDim = 16
	EventAggDim      = 8
	EventGraphDim    = 4
)

// EventsSpec configures the real-time events corpus.
type EventsSpec struct {
	// NumEvents is the stream length.
	NumEvents int
	// PositiveRate is the fraction of events of interest.
	PositiveRate float64
	// ServableNoise scales the noise on the real-time features; offline
	// aggregates are cleaner by a factor of ~2, which is why the offline
	// pipeline works and why its knowledge is worth transferring (§4).
	ServableNoise float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultEventsSpec returns the standard configuration.
func DefaultEventsSpec(numEvents int, seed int64) EventsSpec {
	return EventsSpec{NumEvents: numEvents, PositiveRate: 0.15, ServableNoise: 1.6, Seed: seed}
}

// GenerateEvents draws the event stream. Both feature sets are
// class-conditional Gaussians sharing the same latent intensity, so
// knowledge encoded over the aggregates transfers to models over the
// real-time features — the cross-feature serving premise.
func GenerateEvents(spec EventsSpec) ([]*Event, error) {
	if spec.NumEvents <= 0 {
		return nil, fmt.Errorf("corpus: events spec needs NumEvents > 0, got %d", spec.NumEvents)
	}
	if spec.PositiveRate <= 0 || spec.PositiveRate >= 1 {
		return nil, fmt.Errorf("corpus: events positive rate %v out of (0,1)", spec.PositiveRate)
	}
	if spec.ServableNoise <= 0 {
		spec.ServableNoise = 1.6
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	events := make([]*Event, spec.NumEvents)
	for i := range events {
		gold := rng.Float64() < spec.PositiveRate
		// Latent intensity ties the two views of the same event together.
		intensity := rng.NormFloat64() * 0.5
		if gold {
			intensity += 2.2
		}
		// Latent burst activity, independent of the event of interest: the
		// relationship graphs light up on any surge, which is why they are
		// "higher recall but generally lower-precision signals" (§3.3).
		// Bursts also leak into some real-time features, so a model trained
		// on Logical-OR labels (which fire on bursts) learns to chase them.
		burst := rng.NormFloat64()
		e := &Event{
			ID:          fmt.Sprintf("event-%08d", i),
			Servable:    make([]float64, EventServableDim),
			AggStats:    make([]float64, EventAggDim),
			GraphScores: make([]float64, EventGraphDim),
			Gold:        gold,
		}
		for f := range e.Servable {
			switch {
			case f < EventServableDim/2:
				// Signal dims: noisy views of the intensity.
				e.Servable[f] = intensity + rng.NormFloat64()*spec.ServableNoise
			case f < EventServableDim*3/4:
				// Burst dims: real-time traffic surges, uninformative about
				// the event of interest.
				e.Servable[f] = burst*1.2 + rng.NormFloat64()*0.8
			default:
				// Pure noise dims.
				e.Servable[f] = rng.NormFloat64()
			}
		}
		for f := range e.AggStats {
			e.AggStats[f] = intensity + rng.NormFloat64()*0.6
		}
		for f := range e.GraphScores {
			e.GraphScores[f] = intensity*0.5 + burst*0.9 + rng.NormFloat64()*0.5
		}
		events[i] = e
	}
	return events, nil
}

// Marshal encodes the event as a recordio payload.
func (e *Event) Marshal() ([]byte, error) { return json.Marshal(e) }

// UnmarshalEvent decodes a recordio payload.
func UnmarshalEvent(data []byte) (*Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("corpus: decode event: %w", err)
	}
	return &e, nil
}

// MarshalEvents encodes a batch.
func MarshalEvents(events []*Event) ([][]byte, error) {
	out := make([][]byte, len(events))
	for i, e := range events {
		b, err := e.Marshal()
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// UnmarshalEvents decodes a batch.
func UnmarshalEvents(records [][]byte) ([]*Event, error) {
	out := make([]*Event, len(records))
	for i, r := range records {
		e, err := UnmarshalEvent(r)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

// EventGoldLabels extracts ±1 gold labels.
func EventGoldLabels(events []*Event) []int {
	out := make([]int, len(events))
	for i, e := range events {
		if e.Gold {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
