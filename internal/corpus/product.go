package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kgraph"
	"repro/internal/nlp"
)

// ProductSpec configures the product-classification corpus (§3.2: detect
// references to products in a category of interest, after the category was
// expanded to include accessories and parts — here, bicycles).
type ProductSpec struct {
	// NumDocs is the corpus size (paper scale: 6.5M unlabeled).
	NumDocs int
	// PositiveRate is the gold-positive fraction (Table 1: 1.48%).
	PositiveRate float64
	// Graph supplies keyword translations; nil uses kgraph.Builtin().
	Graph *kgraph.Graph
	// Seed drives all randomness.
	Seed int64
}

// DefaultProductSpec returns a scaled-down spec with the paper's class skew.
func DefaultProductSpec(numDocs int, seed int64) ProductSpec {
	return ProductSpec{NumDocs: numDocs, PositiveRate: 0.0148, Seed: seed}
}

// subtleBikeWords correlate with the positive class but appear in no LF.
var subtleBikeWords = []string{
	"peloton", "cadence", "puncture", "tubeless", "groupset",
	"paceline", "singletrack", "bidon", "windbreaker", "clipless",
}

// merchantDomains for product listings.
var merchantDomains = []string{"shopzone.example", "martplus.example", "dealhub.example"}

// languageWeights puts 40% of the corpus in English, the rest spread over
// the other nine locales — the coverage problem the Knowledge Graph
// translation LF exists to solve.
func sampleLanguage(rng *rand.Rand) string {
	if rng.Float64() < 0.4 {
		return "en"
	}
	return kgraph.Languages[1+rng.Intn(len(kgraph.Languages)-1)]
}

// GenerateProduct draws the product-classification corpus. Positives mention
// a bike or bike-accessory keyword localized to the document's language via
// the knowledge graph; negatives mention other products, including the
// out-of-category accessories that motivated the relabeling.
func GenerateProduct(spec ProductSpec) ([]*Document, error) {
	if spec.NumDocs <= 0 {
		return nil, fmt.Errorf("corpus: product spec needs NumDocs > 0, got %d", spec.NumDocs)
	}
	if spec.PositiveRate <= 0 || spec.PositiveRate >= 1 {
		return nil, fmt.Errorf("corpus: product positive rate %v out of (0,1)", spec.PositiveRate)
	}
	g := spec.Graph
	if g == nil {
		g = kgraph.Builtin()
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	docs := make([]*Document, spec.NumDocs)
	for i := range docs {
		lang := sampleLanguage(rng)
		if rng.Float64() < spec.PositiveRate {
			docs[i] = genBikeDoc(rng, g, lang, i)
		} else {
			docs[i] = genNonBikeDoc(rng, g, lang, i)
		}
	}
	return docs, nil
}

// localize translates a keyword into the document language through the
// graph; unknown translations fall back to English (as real listings often
// mix in English terms).
func localize(g *kgraph.Graph, kw, lang string) string {
	if form, ok := g.Translate(kw, lang); ok {
		return form
	}
	return kw
}

func genBikeDoc(rng *rand.Rand, g *kgraph.Graph, lang string, i int) *Document {
	// 40% core bike products, 60% accessories/parts (the expanded category).
	var kw string
	if rng.Float64() < 0.4 {
		kw = pick(rng, kgraph.BikeKeywords)
	} else {
		kw = pick(rng, kgraph.BikeAccessoryKeywords)
	}
	words := []string{localize(g, kw, lang)}
	words = append(words, sampleWords(rng, nlp.TopicVocab[nlp.TopicShopping], 3+rng.Intn(3))...)
	if rng.Float64() < 0.75 {
		words = append(words, pick(rng, subtleBikeWords))
	}
	// 10% of positives also mention an out-of-category accessory (bundles),
	// capping the precision of the negative keyword heuristic.
	if rng.Float64() < 0.1 {
		words = append(words, localize(g, pick(rng, kgraph.OtherAccessoryKeywords), lang))
	}
	words = append(words, fillerWords(rng, 2)...)
	shuffle(rng, words[1:])
	return &Document{
		ID:       fmt.Sprintf("product-%08d", i),
		Title:    strings.Join(words[:min(4, len(words))], " "),
		Body:     strings.Join(words, " "),
		URL:      fmt.Sprintf("https://%s/item/%d", pick(rng, merchantDomains), i),
		Language: lang,
		Gold:     true,
		Crawler: CrawlerStats{
			EngagementScore: clamp01(0.55 + rng.NormFloat64()*0.15),
			DomainAuthority: clamp01(0.6 + rng.NormFloat64()*0.15),
		},
	}
}

func genNonBikeDoc(rng *rand.Rand, g *kgraph.Graph, lang string, i int) *Document {
	var words []string
	r := rng.Float64()
	switch {
	case r < 0.3:
		// Out-of-category accessory listings — the hard negatives.
		words = append(words, localize(g, pick(rng, kgraph.OtherAccessoryKeywords), lang))
		words = append(words, sampleWords(rng, nlp.TopicVocab[nlp.TopicShopping], 4+rng.Intn(3))...)
	case r < 0.6:
		// Generic shopping content.
		words = sampleWords(rng, nlp.TopicVocab[nlp.TopicShopping], 5+rng.Intn(3))
	default:
		// Unrelated content drawn from the other coarse topics.
		topics := []string{nlp.TopicTechnology, nlp.TopicTravel, nlp.TopicFood, nlp.TopicFinance}
		words = sampleWords(rng, nlp.TopicVocab[topics[rng.Intn(len(topics))]], 5+rng.Intn(3))
	}
	// 0.4% contamination: a bike-accessory keyword in a negative listing
	// (e.g. a multi-sport helmet in general sporting goods). Product's
	// servable-only weakness (Table 3) comes from the language-coverage
	// gap, not keyword noise, so contamination stays small enough that
	// keyword-voted docs remain predominantly positive.
	if rng.Float64() < 0.004 {
		words = append(words, localize(g, pick(rng, kgraph.BikeAccessoryKeywords), lang))
	}
	// 0.05% subtle-vocabulary contamination (see the topic generator).
	if rng.Float64() < 0.0005 {
		words = append(words, pick(rng, subtleBikeWords))
	}
	words = append(words, fillerWords(rng, 2)...)
	shuffle(rng, words)
	return &Document{
		ID:       fmt.Sprintf("product-%08d", i),
		Title:    strings.Join(words[:min(4, len(words))], " "),
		Body:     strings.Join(words, " "),
		URL:      fmt.Sprintf("https://%s/item/%d", pick(rng, merchantDomains), i),
		Language: lang,
		Gold:     false,
		Crawler: CrawlerStats{
			EngagementScore: clamp01(0.45 + rng.NormFloat64()*0.15),
			DomainAuthority: clamp01(0.6 + rng.NormFloat64()*0.15),
		},
	}
}

// SubtleBikeWords exposes the uncovered positive vocabulary (tests verify no
// LF references it).
func SubtleBikeWords() []string { return append([]string(nil), subtleBikeWords...) }
