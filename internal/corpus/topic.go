package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/nlp"
)

// TopicSpec configures the topic-classification corpus (§3.1: detect a
// topic of interest — celebrity content — in a product's content stream,
// after a coarse keyword-filtering step).
type TopicSpec struct {
	// NumDocs is the corpus size (paper scale: 684K unlabeled).
	NumDocs int
	// PositiveRate is the gold-positive fraction (Table 1: 0.86% ≈ 0.0086
	// measured on the test split; we use it as the generation rate).
	PositiveRate float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultTopicSpec returns a scaled-down spec with the paper's class skew.
func DefaultTopicSpec(numDocs int, seed int64) TopicSpec {
	return TopicSpec{NumDocs: numDocs, PositiveRate: 0.0086, Seed: seed}
}

// Servable URL domains. Entertainment domains skew positive but are noisy —
// they host plenty of non-celebrity entertainment content.
var (
	entertainmentDomains = []string{"starbeat.example", "glossydaily.example", "fanwire.example"}
	neutralDomains       = []string{"newsroom.example", "metro.example", "update.example"}
	boringDomains        = []string{"docs.example", "manuals.example", "support.example"}
)

// celebrityKeywords is the restricted list the *servable keyword LF* uses.
var celebrityKeywords = []string{"paparazzi", "redcarpet", "gossip", "spotlight"}

// subtleCelebrityWords correlate with the positive class but appear in no
// labeling function — only the discriminative model can exploit them.
var subtleCelebrityWords = []string{
	"entourage", "stardom", "tabloid", "heartthrob", "limelight",
	"scandalous", "megafan", "itcouple", "breakup", "stylist",
}

// GenerateTopic draws the topic-classification corpus. Positives are
// celebrity content: a celebrity name (usually gazetteer-known, sometimes
// held-out so NER misses it), entertainment vocabulary, celebrity keywords,
// subtle vocabulary, mostly entertainment URLs, and high crawler engagement.
// Negatives are drawn from the other coarse topics, with controlled
// contamination: person names that are not celebrities, occasional celebrity
// keywords in gossip-adjacent sports/news content, and entertainment content
// without celebrities (hard negatives).
func GenerateTopic(spec TopicSpec) ([]*Document, error) {
	if spec.NumDocs <= 0 {
		return nil, fmt.Errorf("corpus: topic spec needs NumDocs > 0, got %d", spec.NumDocs)
	}
	if spec.PositiveRate <= 0 || spec.PositiveRate >= 1 {
		return nil, fmt.Errorf("corpus: topic positive rate %v out of (0,1)", spec.PositiveRate)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	docs := make([]*Document, spec.NumDocs)
	for i := range docs {
		if rng.Float64() < spec.PositiveRate {
			docs[i] = genCelebrityDoc(rng, i)
		} else {
			docs[i] = genNonCelebrityDoc(rng, i)
		}
	}
	return docs, nil
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func sampleWords(rng *rand.Rand, vocab []string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = pick(rng, vocab)
	}
	return out
}

func genCelebrityDoc(rng *rand.Rand, i int) *Document {
	// 5% hard positives: a celebrity covered in an off-topic context
	// (politics, sports). Keyword-less, subtle-less, wrong coarse topic —
	// irreducible error for keyword rules and a recall ceiling for the
	// generative model.
	if rng.Float64() < 0.05 {
		return genOffTopicCelebrityDoc(rng, i)
	}
	// 95% gazetteer-known celebrity; 5% held-out name (NER miss). The
	// paper's teams iterated on labeling functions against the dev set;
	// a person-presence heuristic that misfired on a quarter of positives
	// would have been caught there, so the planted gap is small.
	var name string
	if rng.Float64() < 0.95 {
		name = pick(rng, nlp.CelebrityNames)
	} else {
		name = pick(rng, nlp.UnknownPersonNames)
	}
	words := []string{name}
	words = append(words, sampleWords(rng, nlp.TopicVocab[nlp.TopicEntertainment], 4+rng.Intn(4))...)
	// Celebrity keywords appear in ~70% of positives (keyword LF recall cap).
	if rng.Float64() < 0.7 {
		words = append(words, pick(rng, celebrityKeywords))
	}
	// Subtle class-correlated vocabulary in ~75% of positives — the
	// discriminative model's headroom beyond the labeling functions.
	if rng.Float64() < 0.75 {
		words = append(words, pick(rng, subtleCelebrityWords))
	}
	words = append(words, fillerWords(rng, 3)...)
	shuffle(rng, words[1:]) // keep the name leading the title

	domain := pick(rng, entertainmentDomains)
	if rng.Float64() < 0.2 {
		domain = pick(rng, neutralDomains)
	}
	return &Document{
		ID:       fmt.Sprintf("topic-%08d", i),
		Title:    strings.Join(words[:min(4, len(words))], " "),
		Body:     strings.Join(words, " "),
		URL:      fmt.Sprintf("https://%s/story/%d", domain, i),
		Language: "en",
		Gold:     true,
		Crawler: CrawlerStats{
			EngagementScore: clamp01(0.75 + rng.NormFloat64()*0.12),
			DomainAuthority: clamp01(0.5 + rng.NormFloat64()*0.2),
		},
	}
}

func genNonCelebrityDoc(rng *rand.Rand, i int) *Document {
	// Draw a coarse topic; entertainment negatives (no celebrity) are the
	// hard cases that punish keyword-only supervision.
	topics := []string{
		nlp.TopicSports, nlp.TopicTechnology, nlp.TopicFinance, nlp.TopicHealth,
		nlp.TopicTravel, nlp.TopicFood, nlp.TopicShopping, nlp.TopicEntertainment,
	}
	topic := topics[rng.Intn(len(topics))]
	words := sampleWords(rng, nlp.TopicVocab[topic], 5+rng.Intn(4))

	// 35% of negatives mention a non-celebrity person (NER finds a person,
	// but person-presence alone is not celebrity-hood).
	if rng.Float64() < 0.35 {
		words = append(words, pick(rng, nlp.OtherPersonNames))
	}
	// Celebrity keywords leak into negatives: 2% everywhere, but 15% of
	// entertainment coverage (gossip-adjacent reviews, fan content). At a
	// ~1% positive rate this pushes the servable keyword rule's precision
	// below chance — the "first-cut pattern matcher" quality the paper's
	// servable-only arm exhibits (Table 3). The entertainment-heavy leak
	// also creates conflict rows where the keyword rule fights the accurate
	// model-based voters, which is where the generative model's learned
	// weights beat equal weighting (Table 4).
	kwRate := 0.02
	if topic == nlp.TopicEntertainment {
		kwRate = 0.15
	}
	if rng.Float64() < kwRate {
		words = append(words, pick(rng, celebrityKeywords))
	}
	// 0.05% contamination with subtle vocabulary: rare enough that at a
	// ~1% positive rate the subtle words remain predominantly positive
	// evidence for the discriminative model.
	if rng.Float64() < 0.0005 {
		words = append(words, pick(rng, subtleCelebrityWords))
	}
	words = append(words, fillerWords(rng, 3)...)
	shuffle(rng, words)

	domain := pick(rng, neutralDomains)
	switch {
	case topic == nlp.TopicEntertainment && rng.Float64() < 0.04:
		domain = pick(rng, entertainmentDomains)
	case rng.Float64() < 0.25:
		domain = pick(rng, boringDomains)
	}
	return &Document{
		ID:       fmt.Sprintf("topic-%08d", i),
		Title:    strings.Join(words[:min(4, len(words))], " "),
		Body:     strings.Join(words, " "),
		URL:      fmt.Sprintf("https://%s/story/%d", domain, i),
		Language: "en",
		Gold:     false,
		Crawler: CrawlerStats{
			EngagementScore: clamp01(0.35 + rng.NormFloat64()*0.15),
			DomainAuthority: clamp01(0.5 + rng.NormFloat64()*0.2),
		},
	}
}

func genOffTopicCelebrityDoc(rng *rand.Rand, i int) *Document {
	name := pick(rng, nlp.CelebrityNames)
	topics := []string{nlp.TopicSports, nlp.TopicFinance, nlp.TopicTravel}
	words := []string{name}
	words = append(words, sampleWords(rng, nlp.TopicVocab[topics[rng.Intn(len(topics))]], 5+rng.Intn(3))...)
	words = append(words, fillerWords(rng, 3)...)
	shuffle(rng, words[1:])
	return &Document{
		ID:       fmt.Sprintf("topic-%08d", i),
		Title:    strings.Join(words[:min(4, len(words))], " "),
		Body:     strings.Join(words, " "),
		URL:      fmt.Sprintf("https://%s/story/%d", pick(rng, neutralDomains), i),
		Language: "en",
		Gold:     true,
		Crawler: CrawlerStats{
			EngagementScore: clamp01(0.55 + rng.NormFloat64()*0.15),
			DomainAuthority: clamp01(0.5 + rng.NormFloat64()*0.2),
		},
	}
}

var filler = []string{
	"today", "report", "local", "update", "story", "week", "people", "time",
	"official", "public", "event", "daily", "note", "brief", "item", "source",
}

func fillerWords(rng *rand.Rand, n int) []string { return sampleWords(rng, filler, n) }

func shuffle(rng *rand.Rand, xs []string) {
	rng.Shuffle(len(xs), func(a, b int) { xs[a], xs[b] = xs[b], xs[a] })
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CelebrityKeywords exposes the servable keyword list for the topic task's
// keyword labeling function.
func CelebrityKeywords() []string { return append([]string(nil), celebrityKeywords...) }

// EntertainmentDomains exposes the entertainment URL domains for the URL
// labeling function.
func EntertainmentDomains() []string { return append([]string(nil), entertainmentDomains...) }

// BoringDomains exposes the low-signal domains for the negative URL heuristic.
func BoringDomains() []string { return append([]string(nil), boringDomains...) }
