// Package corpus generates the synthetic benchmark workloads standing in for
// the Google production data of the paper's three case studies (§3, §6):
// topic classification (celebrity content), product classification (bicycles
// including accessories and parts, across ten languages), and real-time
// event classification.
//
// Each generator plants ground truth and emits signals consumed by two
// different consumers with an asymmetry that drives every experiment shape:
//
//   - labeling functions read rich, non-servable signals (NER-detectable
//     person names, coarse topic vocabulary, knowledge-graph keywords,
//     crawler aggregates) that are accurate but unavailable in production;
//   - the servable feature set (hashed text n-grams, or real-time event
//     vectors) is noisier but cheap, and includes "subtle" vocabulary no
//     labeling function covers, giving the discriminative model headroom to
//     generalize beyond the generative model (Table 2).
package corpus

import (
	"encoding/json"
	"fmt"
)

// Document is one content example (topic and product tasks).
type Document struct {
	// ID is unique within a corpus.
	ID string `json:"id"`
	// Title and Body are the document text.
	Title string `json:"title"`
	Body  string `json:"body"`
	// URL is the linked URL (a servable signal; §3.1's URL-based heuristics).
	URL string `json:"url"`
	// Language is an ISO-ish code; the product corpus spans ten languages.
	Language string `json:"language"`
	// Gold is the planted label: true = in the class of interest. Hidden
	// from training; used only for evaluation and the hand-label baselines.
	Gold bool `json:"gold"`
	// Crawler holds non-servable aggregate statistics from the simulated web
	// crawler. Too slow/expensive to compute at serving time.
	Crawler CrawlerStats `json:"crawler"`
}

// CrawlerStats are offline aggregates about the document's source, the kind
// of signal §4 calls out as non-servable ("aggregate statistics, results of
// expensive crawlers").
type CrawlerStats struct {
	// EngagementScore is a normalized audience-engagement aggregate.
	EngagementScore float64 `json:"engagement"`
	// DomainAuthority is a source-quality aggregate in [0,1].
	DomainAuthority float64 `json:"authority"`
}

// Text returns title and body joined, the standard GetText for content LFs
// (mirrors the paper's StrCat(x.title, " ", x.body)).
func (d *Document) Text() string { return d.Title + " " + d.Body }

// Marshal encodes the document as a recordio payload.
func (d *Document) Marshal() ([]byte, error) { return json.Marshal(d) }

// UnmarshalDocument decodes a recordio payload.
func UnmarshalDocument(data []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("corpus: decode document: %w", err)
	}
	return &d, nil
}

// MarshalDocuments encodes a batch.
func MarshalDocuments(docs []*Document) ([][]byte, error) {
	out := make([][]byte, len(docs))
	for i, d := range docs {
		b, err := d.Marshal()
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// UnmarshalDocuments decodes a batch.
func UnmarshalDocuments(records [][]byte) ([]*Document, error) {
	out := make([]*Document, len(records))
	for i, r := range records {
		d, err := UnmarshalDocument(r)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// GoldLabels extracts ±1 gold labels (+1 = positive class).
func GoldLabels(docs []*Document) []int {
	out := make([]int, len(docs))
	for i, d := range docs {
		if d.Gold {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// PositiveRate returns the fraction of gold-positive documents.
func PositiveRate(docs []*Document) float64 {
	if len(docs) == 0 {
		return 0
	}
	pos := 0
	for _, d := range docs {
		if d.Gold {
			pos++
		}
	}
	return float64(pos) / float64(len(docs))
}
