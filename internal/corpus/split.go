package corpus

import (
	"fmt"
	"math/rand"
)

// Split holds the standard three-way partition used in §6.1: a large
// unlabeled training pool, a small hand-labeled development set (used for LF
// iteration, hyperparameters, and the supervised baseline), and a held-out
// test set.
type Split struct {
	Train, Dev, Test []int // indices into the source corpus
}

// MakeSplit partitions n examples into train/dev/test with the given dev and
// test sizes, shuffled deterministically by seed.
func MakeSplit(n, devSize, testSize int, seed int64) (Split, error) {
	if devSize < 0 || testSize < 0 || devSize+testSize >= n {
		return Split{}, fmt.Errorf("corpus: cannot split %d examples into dev=%d test=%d", n, devSize, testSize)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	return Split{
		Dev:   perm[:devSize],
		Test:  perm[devSize : devSize+testSize],
		Train: perm[devSize+testSize:],
	}, nil
}

// Select returns the documents at the given indices.
func Select(docs []*Document, idx []int) []*Document {
	out := make([]*Document, len(idx))
	for k, i := range idx {
		out[k] = docs[i]
	}
	return out
}

// SelectEvents returns the events at the given indices.
func SelectEvents(events []*Event, idx []int) []*Event {
	out := make([]*Event, len(idx))
	for k, i := range idx {
		out[k] = events[i]
	}
	return out
}

// TaskStats reports the Table 1 summary row for a corpus split.
type TaskStats struct {
	Task         string
	NumTrain     int
	NumDev       int
	NumTest      int
	PositiveRate float64 // on the test split, as in Table 1
	NumLFs       int
}

// StatsFor computes the Table 1 row for a document corpus and split.
func StatsFor(task string, docs []*Document, sp Split, numLFs int) TaskStats {
	return TaskStats{
		Task:         task,
		NumTrain:     len(sp.Train),
		NumDev:       len(sp.Dev),
		NumTest:      len(sp.Test),
		PositiveRate: PositiveRate(Select(docs, sp.Test)),
		NumLFs:       numLFs,
	}
}
