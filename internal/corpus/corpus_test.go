package corpus

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kgraph"
	"repro/internal/nlp"
)

func TestDocumentRoundTrip(t *testing.T) {
	d := &Document{
		ID: "x1", Title: "t", Body: "b", URL: "https://a.example/1",
		Language: "fr", Gold: true,
		Crawler: CrawlerStats{EngagementScore: 0.7, DomainAuthority: 0.3},
	}
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDocument(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Errorf("round trip: %+v vs %+v", got, d)
	}
}

func TestUnmarshalDocumentRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalDocument([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMarshalDocumentsBatch(t *testing.T) {
	docs, err := GenerateTopic(DefaultTopicSpec(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := MarshalDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDocuments(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if back[i].ID != docs[i].ID || back[i].Gold != docs[i].Gold {
			t.Fatalf("batch round trip diverged at %d", i)
		}
	}
}

func TestGenerateTopicShape(t *testing.T) {
	spec := TopicSpec{NumDocs: 20000, PositiveRate: 0.0086, Seed: 7}
	docs, err := GenerateTopic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 20000 {
		t.Fatalf("len = %d", len(docs))
	}
	rate := PositiveRate(docs)
	if rate < 0.005 || rate > 0.013 {
		t.Errorf("positive rate = %v, want ≈ 0.0086", rate)
	}
	ids := map[string]bool{}
	for _, d := range docs {
		if ids[d.ID] {
			t.Fatalf("duplicate id %s", d.ID)
		}
		ids[d.ID] = true
		if d.Title == "" || d.Body == "" || !strings.HasPrefix(d.URL, "https://") {
			t.Fatalf("malformed doc %+v", d)
		}
		if d.Crawler.EngagementScore < 0 || d.Crawler.EngagementScore > 1 {
			t.Fatalf("engagement out of range: %v", d.Crawler.EngagementScore)
		}
	}
}

func TestGenerateTopicDeterministic(t *testing.T) {
	a, _ := GenerateTopic(DefaultTopicSpec(500, 42))
	b, _ := GenerateTopic(DefaultTopicSpec(500, 42))
	for i := range a {
		if a[i].Body != b[i].Body || a[i].Gold != b[i].Gold {
			t.Fatal("same seed produced different corpora")
		}
	}
	c, _ := GenerateTopic(DefaultTopicSpec(500, 43))
	same := true
	for i := range a {
		if a[i].Body != c[i].Body {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

// Positives must be statistically distinguishable by the planted signals:
// celebrity names recognized by NER, entertainment topics, engagement.
func TestTopicPlantedSignals(t *testing.T) {
	docs, err := GenerateTopic(TopicSpec{NumDocs: 30000, PositiveRate: 0.02, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ner := nlp.NewNER(0, 1)
	tm := nlp.NewTopicModel()
	celebKnown := map[string]bool{}
	for _, n := range nlp.CelebrityNames {
		celebKnown[n] = true
	}
	var posWithCeleb, pos, negWithCeleb, neg float64
	var posEng, negEng float64
	var posEnt, negEnt float64
	for _, d := range docs {
		hasCeleb := false
		for _, e := range nlp.People(ner.Recognize(d.Text())) {
			if celebKnown[e.Text] {
				hasCeleb = true
			}
		}
		topTopic, _ := tm.Top(d.Text())
		if d.Gold {
			pos++
			posEng += d.Crawler.EngagementScore
			if hasCeleb {
				posWithCeleb++
			}
			if topTopic == nlp.TopicEntertainment {
				posEnt++
			}
		} else {
			neg++
			negEng += d.Crawler.EngagementScore
			if hasCeleb {
				negWithCeleb++
			}
			if topTopic == nlp.TopicEntertainment {
				negEnt++
			}
		}
	}
	if posWithCeleb/pos < 0.6 {
		t.Errorf("only %.2f of positives carry a known celebrity", posWithCeleb/pos)
	}
	if negWithCeleb/neg > 0.02 {
		t.Errorf("%.3f of negatives carry a known celebrity", negWithCeleb/neg)
	}
	if posEnt/pos < 0.8 {
		t.Errorf("only %.2f of positives classified entertainment", posEnt/pos)
	}
	if negEnt/neg > 0.35 {
		t.Errorf("%.2f of negatives classified entertainment", negEnt/neg)
	}
	if posEng/pos <= negEng/neg {
		t.Error("engagement signal not separating classes")
	}
}

func TestGenerateTopicValidation(t *testing.T) {
	if _, err := GenerateTopic(TopicSpec{NumDocs: 0, PositiveRate: 0.5}); err == nil {
		t.Error("zero docs accepted")
	}
	if _, err := GenerateTopic(TopicSpec{NumDocs: 10, PositiveRate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestGenerateProductShape(t *testing.T) {
	docs, err := GenerateProduct(ProductSpec{NumDocs: 20000, PositiveRate: 0.0148, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rate := PositiveRate(docs)
	if rate < 0.010 || rate > 0.020 {
		t.Errorf("positive rate = %v, want ≈ 0.0148", rate)
	}
	langs := map[string]int{}
	for _, d := range docs {
		langs[d.Language]++
	}
	if len(langs) != len(kgraph.Languages) {
		t.Errorf("languages seen = %d, want %d", len(langs), len(kgraph.Languages))
	}
	enFrac := float64(langs["en"]) / float64(len(docs))
	if enFrac < 0.35 || enFrac > 0.45 {
		t.Errorf("english fraction = %v, want ≈ 0.4", enFrac)
	}
}

// Localized positives must carry the graph's translated keyword so the
// translation LF (and only it) can catch non-English positives.
func TestProductLocalization(t *testing.T) {
	g := kgraph.Builtin()
	docs, err := GenerateProduct(ProductSpec{NumDocs: 30000, PositiveRate: 0.05, Graph: g, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	allKw := append(append([]string{}, kgraph.BikeKeywords...), kgraph.BikeAccessoryKeywords...)
	hits, posNonEn := 0.0, 0.0
	for _, d := range docs {
		if !d.Gold || d.Language == "en" {
			continue
		}
		posNonEn++
		found := false
		for _, kw := range allKw {
			form, ok := g.Translate(kw, d.Language)
			if ok && strings.Contains(d.Body, form) {
				found = true
				break
			}
		}
		if found {
			hits++
		}
	}
	if posNonEn == 0 {
		t.Fatal("no non-English positives generated")
	}
	if hits/posNonEn < 0.95 {
		t.Errorf("only %.2f of non-English positives carry a translated keyword", hits/posNonEn)
	}
}

func TestGenerateEventsShape(t *testing.T) {
	events, err := GenerateEvents(DefaultEventsSpec(10000, 3))
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.0
	for _, e := range events {
		if len(e.Servable) != EventServableDim || len(e.AggStats) != EventAggDim || len(e.GraphScores) != EventGraphDim {
			t.Fatalf("feature dims wrong: %d/%d/%d", len(e.Servable), len(e.AggStats), len(e.GraphScores))
		}
		if e.Gold {
			rate++
		}
	}
	rate /= float64(len(events))
	if rate < 0.13 || rate > 0.17 {
		t.Errorf("positive rate = %v, want ≈ 0.15", rate)
	}
}

// The offline aggregates must separate classes more cleanly than the
// real-time features — the premise of cross-feature serving.
func TestEventsAggregatesCleanerThanServable(t *testing.T) {
	events, err := GenerateEvents(DefaultEventsSpec(20000, 7))
	if err != nil {
		t.Fatal(err)
	}
	sep := func(get func(*Event) float64) float64 {
		var mp, mn, vp, vn, np, nn float64
		for _, e := range events {
			v := get(e)
			if e.Gold {
				mp += v
				np++
			} else {
				mn += v
				nn++
			}
		}
		mp /= np
		mn /= nn
		for _, e := range events {
			v := get(e)
			if e.Gold {
				vp += (v - mp) * (v - mp)
			} else {
				vn += (v - mn) * (v - mn)
			}
		}
		return (mp - mn) / math.Sqrt(vp/np+vn/nn)
	}
	aggSep := sep(func(e *Event) float64 { return e.AggStats[0] })
	servSep := sep(func(e *Event) float64 { return e.Servable[0] })
	if aggSep <= servSep {
		t.Errorf("aggregate separation %.2f should exceed servable %.2f", aggSep, servSep)
	}
	if servSep <= 0.3 {
		t.Errorf("servable features carry too little signal: %.2f", servSep)
	}
}

func TestEventRoundTrip(t *testing.T) {
	events, _ := GenerateEvents(DefaultEventsSpec(10, 1))
	recs, err := MarshalEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEvents(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if back[i].ID != events[i].ID || back[i].Gold != events[i].Gold {
			t.Fatal("event round trip diverged")
		}
		if back[i].Servable[0] != events[i].Servable[0] {
			t.Fatal("servable features diverged")
		}
	}
}

func TestMakeSplitPartition(t *testing.T) {
	sp, err := MakeSplit(100, 10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Dev) != 10 || len(sp.Test) != 20 || len(sp.Train) != 70 {
		t.Fatalf("split sizes %d/%d/%d", len(sp.Dev), len(sp.Test), len(sp.Train))
	}
	seen := map[int]bool{}
	for _, set := range [][]int{sp.Dev, sp.Test, sp.Train} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("index %d in two splits", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("split covers %d of 100", len(seen))
	}
}

func TestMakeSplitValidation(t *testing.T) {
	if _, err := MakeSplit(10, 5, 5, 1); err == nil {
		t.Error("split leaving no train accepted")
	}
	if _, err := MakeSplit(10, -1, 2, 1); err == nil {
		t.Error("negative dev accepted")
	}
}

// Property: splits are deterministic in seed and always disjoint.
func TestMakeSplitProperty(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%500) + 30
		dev, test := n/10, n/5
		a, err := MakeSplit(n, dev, test, seed)
		if err != nil {
			return false
		}
		b, _ := MakeSplit(n, dev, test, seed)
		for i := range a.Dev {
			if a.Dev[i] != b.Dev[i] {
				return false
			}
		}
		seen := map[int]bool{}
		for _, set := range [][]int{a.Dev, a.Test, a.Train} {
			for _, i := range set {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsFor(t *testing.T) {
	docs, _ := GenerateTopic(TopicSpec{NumDocs: 1000, PositiveRate: 0.1, Seed: 2})
	sp, _ := MakeSplit(len(docs), 100, 200, 3)
	st := StatsFor("topic", docs, sp, 10)
	if st.NumTrain != 700 || st.NumDev != 100 || st.NumTest != 200 || st.NumLFs != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.PositiveRate <= 0 || st.PositiveRate >= 0.3 {
		t.Errorf("test positive rate = %v", st.PositiveRate)
	}
}

func TestGoldLabels(t *testing.T) {
	docs := []*Document{{Gold: true}, {Gold: false}}
	g := GoldLabels(docs)
	if g[0] != 1 || g[1] != -1 {
		t.Errorf("GoldLabels = %v", g)
	}
	events := []*Event{{Gold: false}, {Gold: true}}
	ge := EventGoldLabels(events)
	if ge[0] != -1 || ge[1] != 1 {
		t.Errorf("EventGoldLabels = %v", ge)
	}
}
