package apps

import (
	"strings"

	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/nlp"
)

// ProductLFs returns the eight labeling functions of the product-
// classification case study (§3.2): keyword rules for the expanded category
// (products plus accessories and parts), negative keyword rules for
// out-of-category accessories, Knowledge Graph translation lookups covering
// ten languages, the coarse topic-model negative heuristic, and a merchant
// aggregate-statistics heuristic.
func ProductLFs(graph *kgraph.Graph, seed int64) []DocRunner {
	if graph == nil {
		graph = kgraph.Builtin()
	}
	newServer := func() *nlp.Server { return nlp.NewServer(0, seed) }

	// Pre-expand translated keyword tables once; LF closures share them,
	// the way the paper's LFs query the graph during development.
	inCategory := append(append([]string{}, kgraph.BikeKeywords...), kgraph.BikeAccessoryKeywords...)
	translatedIn := translationTable(graph, inCategory)
	translatedOut := translationTable(graph, kgraph.OtherAccessoryKeywords)

	containsAny := func(text string, words []string) bool {
		for _, w := range words {
			if strings.Contains(text, w) {
				return true
			}
		}
		return false
	}

	return []DocRunner{
		// --- Servable: English keyword rules. ---
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_bike_en", Category: lf.ContentHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				if containsAny(d.Text(), kgraph.BikeKeywords) {
					return labelmodel.Positive
				}
				return labelmodel.Abstain
			},
		},
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_accessory_en", Category: lf.ContentHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				// The expanded category: accessories and parts now count.
				if containsAny(d.Text(), kgraph.BikeAccessoryKeywords) {
					return labelmodel.Positive
				}
				return labelmodel.Abstain
			},
		},
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_other_accessory_en", Category: lf.ContentHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				text := d.Text()
				if containsAny(text, kgraph.OtherAccessoryKeywords) &&
					!containsAny(text, kgraph.BikeKeywords) &&
					!containsAny(text, kgraph.BikeAccessoryKeywords) {
					return labelmodel.Negative
				}
				return labelmodel.Abstain
			},
		},

		// --- Non-servable: Knowledge Graph translations (ten languages). ---
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "kg_translated_bike", Category: lf.GraphBased, Servable: false},
			Vote: func(d *corpus.Document) labelmodel.Label {
				if forms, ok := translatedIn[d.Language]; ok && containsAny(d.Text(), forms) {
					return labelmodel.Positive
				}
				return labelmodel.Abstain
			},
		},
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "kg_translated_other_accessory", Category: lf.GraphBased, Servable: false},
			Vote: func(d *corpus.Document) labelmodel.Label {
				text := d.Text()
				if forms, ok := translatedOut[d.Language]; ok && containsAny(text, forms) {
					if in, ok := translatedIn[d.Language]; !ok || !containsAny(text, in) {
						return labelmodel.Negative
					}
				}
				return labelmodel.Abstain
			},
		},

		// --- Non-servable: topic-model negative heuristic. ---
		lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "topicmodel_unrelated", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
				switch res.TopTopic() {
				case nlp.TopicTravel, nlp.TopicFood, nlp.TopicFinance, nlp.TopicTechnology:
					return labelmodel.Negative
				default:
					return labelmodel.Abstain
				}
			},
		},

		// --- Non-servable: merchant aggregate statistics. ---
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "crawler_listing_quality", Category: lf.SourceHeuristic, Servable: false},
			Vote: func(d *corpus.Document) labelmodel.Label {
				// Negative-only: under ~1.5% positives, low engagement is
				// reliable negative evidence but high engagement is not
				// precise enough to vote positive.
				if d.Crawler.EngagementScore < 0.12 {
					return labelmodel.Negative
				}
				return labelmodel.Abstain
			},
		},

		// --- Non-servable: internal merchant-category model (simulated as a
		// high-precision combination of graph keyword + shopping context). ---
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "merchant_category_model", Category: lf.ModelBased, Servable: false},
			Vote: func(d *corpus.Document) labelmodel.Label {
				text := d.Text()
				forms, ok := translatedIn[d.Language]
				if !ok {
					return labelmodel.Abstain
				}
				if containsAny(text, forms) && containsAny(text, nlp.TopicVocab[nlp.TopicShopping]) {
					return labelmodel.Positive
				}
				return labelmodel.Abstain
			},
		},
	}
}

// translationTable builds language → localized keyword forms.
func translationTable(g *kgraph.Graph, keywords []string) map[string][]string {
	out := make(map[string][]string)
	for _, kw := range keywords {
		for _, tr := range g.TranslationsOf(kw) {
			out[tr.Language] = append(out[tr.Language], tr.Form)
		}
	}
	return out
}
