package apps

import (
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/kgraph"
	"repro/internal/nlp"
	"repro/pkg/drybell/lf"
)

// ProductLFs returns the eight labeling functions of the product-
// classification case study (§3.2): keyword rules for the expanded category
// (products plus accessories and parts), negative keyword rules for
// out-of-category accessories, Knowledge Graph translation lookups covering
// ten languages (the graph-based template, queried through its LRU cache),
// the coarse topic-model negative heuristic, and a merchant
// aggregate-statistics heuristic.
func ProductLFs(graph kgraph.Client, seed int64) []DocLF {
	client := cachedClient(graph)
	newServer := func() *nlp.Server { return nlp.NewServer(0, seed) }

	inCategory := append(append([]string{}, kgraph.BikeKeywords...), kgraph.BikeAccessoryKeywords...)

	containsAny := func(text string, words []string) bool {
		for _, w := range words {
			if strings.Contains(text, w) {
				return true
			}
		}
		return false
	}
	// The translated keyword tables are expanded from the graph client once,
	// on first vote, exactly as the paper's LFs queried the graph during
	// development; per-vote work is then lock-free map reads shared by every
	// graph-backed function in the set. Expansion enumerates the ten serving
	// locales (kgraph.Languages), the product task's language universe.
	tables := &translationTables{keywords: inCategory}

	return []DocLF{
		// --- Servable: English keyword rules. ---
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_bike_en", Category: lf.ContentHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				if containsAny(d.Text(), kgraph.BikeKeywords) {
					return lf.Positive
				}
				return lf.Abstain
			},
		},
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_accessory_en", Category: lf.ContentHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				// The expanded category: accessories and parts now count.
				if containsAny(d.Text(), kgraph.BikeAccessoryKeywords) {
					return lf.Positive
				}
				return lf.Abstain
			},
		},
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_other_accessory_en", Category: lf.ContentHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				text := d.Text()
				if containsAny(text, kgraph.OtherAccessoryKeywords) &&
					!containsAny(text, kgraph.BikeKeywords) &&
					!containsAny(text, kgraph.BikeAccessoryKeywords) {
					return lf.Negative
				}
				return lf.Abstain
			},
		},

		// --- Non-servable: Knowledge Graph translations (ten languages),
		// the graph-based template over the shared cached client. ---
		&lf.GraphFunc[*corpus.Document]{
			Meta:   lf.Meta{Name: "kg_translated_bike", Category: lf.GraphBased, Servable: false},
			Client: client,
			Query: func(g kgraph.Client, d *corpus.Document) lf.Label {
				tables.expand(g)
				if forms, ok := tables.in[d.Language]; ok && containsAny(d.Text(), forms) {
					return lf.Positive
				}
				return lf.Abstain
			},
		},
		&lf.GraphFunc[*corpus.Document]{
			Meta:   lf.Meta{Name: "kg_translated_other_accessory", Category: lf.GraphBased, Servable: false},
			Client: client,
			Query: func(g kgraph.Client, d *corpus.Document) lf.Label {
				tables.expand(g)
				text := d.Text()
				if forms, ok := tables.out[d.Language]; ok && containsAny(text, forms) {
					if in, ok := tables.in[d.Language]; !ok || !containsAny(text, in) {
						return lf.Negative
					}
				}
				return lf.Abstain
			},
		},

		// --- Non-servable: topic-model negative heuristic. ---
		&lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "topicmodel_unrelated", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				switch res.TopTopic() {
				case nlp.TopicTravel, nlp.TopicFood, nlp.TopicFinance, nlp.TopicTechnology:
					return lf.Negative
				default:
					return lf.Abstain
				}
			},
		},

		// --- Non-servable: merchant aggregate statistics. Negative-only
		// threshold slot: under ~1.5% positives, low engagement is reliable
		// negative evidence but high engagement is not precise enough to
		// vote positive. ---
		lf.Threshold(
			lf.Meta{Name: "crawler_listing_quality", Category: lf.SourceHeuristic, Servable: false},
			func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
			lf.NeverPositive, 0.12,
		),

		// --- Non-servable: internal merchant-category model (simulated as a
		// high-precision combination of graph keyword + shopping context),
		// thresholded through the model-based template's positive slot. ---
		&lf.ModelFunc[*corpus.Document]{
			Meta: lf.Meta{Name: "merchant_category_model", Category: lf.ModelBased, Servable: false},
			Score: func(d *corpus.Document) float64 {
				tables.expand(client)
				text := d.Text()
				if forms, ok := tables.in[d.Language]; ok && containsAny(text, forms) &&
					containsAny(text, nlp.TopicVocab[nlp.TopicShopping]) {
					return 1
				}
				return 0
			},
			PositiveAbove: 0.5,
			NegativeBelow: lf.NeverNegative,
		},
	}
}

// translationTables holds the language → localized-surface-form tables the
// product set's graph-backed functions share, expanded from the knowledge
// graph exactly once.
type translationTables struct {
	keywords []string // in-category keyword set
	once     sync.Once
	in, out  map[string][]string
}

// expand builds both tables through the (cached) client on first use.
func (t *translationTables) expand(g kgraph.Client) {
	t.once.Do(func() {
		t.in = expandTranslations(g, t.keywords)
		t.out = expandTranslations(g, kgraph.OtherAccessoryKeywords)
	})
}

// expandTranslations asks the graph for every keyword's surface form in
// each serving locale.
func expandTranslations(g kgraph.Client, keywords []string) map[string][]string {
	out := make(map[string][]string)
	for _, kw := range keywords {
		for _, lang := range kgraph.Languages {
			if form, ok := g.Translate(kw, lang); ok {
				out[lang] = append(out[lang], form)
			}
		}
	}
	return out
}

// ProductSet is ProductLFs as a named, validated set for registry discovery.
func ProductSet(graph kgraph.Client, seed int64) (*lf.Set[*corpus.Document], error) {
	return lf.NewSet("product", ProductLFs(graph, seed)...)
}
