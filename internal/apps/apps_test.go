package apps

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	lfapi "repro/pkg/drybell/lf"
)

func executeDocLFs(t *testing.T, docs []*corpus.Document, runners []DocLF) *labelmodel.Matrix {
	t.Helper()
	fs := dfs.NewMem()
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Stage[*corpus.Document](fs, "in/d", recs, 4); err != nil {
		t.Fatal(err)
	}
	e := &lf.Executor[*corpus.Document]{
		FS: fs, InputBase: "in/d", OutputPrefix: "labels",
		Decode: corpus.UnmarshalDocument, Parallelism: 4,
	}
	mx, _, err := e.Execute(runners)
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

func executeEventLFs(t *testing.T, events []*corpus.Event, runners []EventLF) *labelmodel.Matrix {
	t.Helper()
	fs := dfs.NewMem()
	recs, err := corpus.MarshalEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Stage[*corpus.Event](fs, "in/e", recs, 4); err != nil {
		t.Fatal(err)
	}
	e := &lf.Executor[*corpus.Event]{
		FS: fs, InputBase: "in/e", OutputPrefix: "labels",
		Decode: corpus.UnmarshalEvent, Parallelism: 4,
	}
	mx, _, err := e.Execute(runners)
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

func TestTopicLFCountAndCensus(t *testing.T) {
	runners := TopicLFs(nil, 0.02, 1)
	if len(runners) != 10 {
		t.Fatalf("topic LFs = %d, want 10 (Table 1)", len(runners))
	}
	census := lfapi.Census(runners)
	for _, cat := range []lf.Category{lf.SourceHeuristic, lf.ContentHeuristic, lf.ModelBased, lf.GraphBased} {
		if census[cat] == 0 {
			t.Errorf("no %s LFs", cat)
		}
	}
	servable := lfapi.ServableIndices(runners)
	if len(servable) == 0 || len(servable) == len(runners) {
		t.Errorf("servable split degenerate: %v", servable)
	}
}

func TestProductLFCount(t *testing.T) {
	runners := ProductLFs(nil, 1)
	if len(runners) != 8 {
		t.Fatalf("product LFs = %d, want 8 (Table 1)", len(runners))
	}
	if len(lfapi.ServableIndices(runners)) != 3 {
		t.Errorf("servable product LFs = %d, want 3", len(lfapi.ServableIndices(runners)))
	}
}

func TestEventLFCountAndFamilies(t *testing.T) {
	runners := EventLFs(0, 1)
	if len(runners) != NumEventLFs {
		t.Fatalf("event LFs = %d, want %d", len(runners), NumEventLFs)
	}
	census := lfapi.Census(runners)
	if census[lf.ModelBased] < 20 || census[lf.GraphBased] < 30 || census[lf.ContentHeuristic] < 50 {
		t.Errorf("family sizes off: %v", census)
	}
	for _, r := range runners {
		if r.LFMeta().Servable {
			t.Fatalf("event LF %s claims to be servable; all are defined over non-servable features", r.LFMeta().Name)
		}
	}
	names := map[string]bool{}
	for _, r := range runners {
		if names[r.LFMeta().Name] {
			t.Fatalf("duplicate event LF name %s", r.LFMeta().Name)
		}
		names[r.LFMeta().Name] = true
	}
}

// Each topic LF must be better than random on the examples it votes on.
func TestTopicLFsBetterThanChance(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 8000, PositiveRate: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	runners := TopicLFs(nil, 0.02, 1)
	mx := executeDocLFs(t, docs, runners)
	gold := make([]labelmodel.Label, len(docs))
	for i, d := range docs {
		if d.Gold {
			gold[i] = labelmodel.Positive
		} else {
			gold[i] = labelmodel.Negative
		}
	}
	stats := mx.Stats(gold)
	for j, st := range stats {
		meta := runners[j].LFMeta()
		if st.Coverage == 0 {
			t.Errorf("%s never votes", meta.Name)
			continue
		}
		// The servable pattern rules are deliberately noisy first-cut
		// heuristics (keyword_celebrity sits near chance by design — the
		// generative model learns to discount it). The non-servable
		// organizational resources must be solidly better than chance;
		// every rule must retain some signal.
		floor := 0.35
		if !meta.Servable {
			floor = 0.6
		}
		if st.EmpiricalAccuracy < floor {
			t.Errorf("%s accuracy %.3f below floor %.2f (coverage %.3f)",
				meta.Name, st.EmpiricalAccuracy, floor, st.Coverage)
		}
	}
}

// The non-servable positive LFs must be more precise than the servable ones
// — the statistical driver of the Table 3 ablation.
func TestTopicNonServablePrecision(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.TopicSpec{NumDocs: 10000, PositiveRate: 0.03, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	runners := TopicLFs(nil, 0.02, 1)
	mx := executeDocLFs(t, docs, runners)
	precision := func(j int) float64 {
		tp, fp := 0, 0
		for i, d := range docs {
			if mx.At(i, j) == labelmodel.Positive {
				if d.Gold {
					tp++
				} else {
					fp++
				}
			}
		}
		if tp+fp == 0 {
			return -1
		}
		return float64(tp) / float64(tp+fp)
	}
	byName := map[string]int{}
	for j, r := range runners {
		byName[r.LFMeta().Name] = j
	}
	servableP := precision(byName["keyword_celebrity"])
	nonServableP := precision(byName["ner_known_celebrity"])
	if nonServableP <= servableP {
		t.Errorf("NER celebrity precision %.3f should exceed keyword precision %.3f", nonServableP, servableP)
	}
}

// The KG translation LF must cover non-English positives the English
// keyword LFs miss (§3.2's motivation for querying the Knowledge Graph).
func TestProductTranslationCoverage(t *testing.T) {
	g := kgraph.Builtin()
	docs, err := corpus.GenerateProduct(corpus.ProductSpec{NumDocs: 12000, PositiveRate: 0.05, Graph: g, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	runners := ProductLFs(g, 1)
	mx := executeDocLFs(t, docs, runners)
	byName := map[string]int{}
	for j, r := range runners {
		byName[r.LFMeta().Name] = j
	}
	kwBike, kwAcc := byName["keyword_bike_en"], byName["keyword_accessory_en"]
	kg := byName["kg_translated_bike"]
	var kwHits, kgHits, posNonEn int
	for i, d := range docs {
		if !d.Gold || d.Language == "en" {
			continue
		}
		posNonEn++
		if mx.At(i, kwBike) == labelmodel.Positive || mx.At(i, kwAcc) == labelmodel.Positive {
			kwHits++
		}
		if mx.At(i, kg) == labelmodel.Positive {
			kgHits++
		}
	}
	if posNonEn == 0 {
		t.Fatal("no non-English positives")
	}
	if kgHits <= kwHits*3 {
		t.Errorf("KG translation hits %d should dwarf English keyword hits %d on non-English positives (of %d)",
			kgHits, kwHits, posNonEn)
	}
}

// Graph-based event LFs must have higher recall and lower precision than
// model-based ones, as §3.3 describes.
func TestEventLFFamilyProfiles(t *testing.T) {
	events, err := corpus.GenerateEvents(corpus.DefaultEventsSpec(8000, 9))
	if err != nil {
		t.Fatal(err)
	}
	runners := EventLFs(140, 1)
	mx := executeEventLFs(t, events, runners)
	famRecall := map[lf.Category][]float64{}
	famPrec := map[lf.Category][]float64{}
	totalPos := 0
	for _, e := range events {
		if e.Gold {
			totalPos++
		}
	}
	for j, r := range runners {
		tp, fp := 0, 0
		for i, e := range events {
			if mx.At(i, j) == labelmodel.Positive {
				if e.Gold {
					tp++
				} else {
					fp++
				}
			}
		}
		cat := r.LFMeta().Category
		if tp+fp > 0 {
			famPrec[cat] = append(famPrec[cat], float64(tp)/float64(tp+fp))
			famRecall[cat] = append(famRecall[cat], float64(tp)/float64(totalPos))
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(famRecall[lf.GraphBased]) <= mean(famRecall[lf.ModelBased]) {
		t.Errorf("graph recall %.3f should exceed model recall %.3f",
			mean(famRecall[lf.GraphBased]), mean(famRecall[lf.ModelBased]))
	}
	if mean(famPrec[lf.GraphBased]) >= mean(famPrec[lf.ModelBased]) {
		t.Errorf("graph precision %.3f should be below model precision %.3f",
			mean(famPrec[lf.GraphBased]), mean(famPrec[lf.ModelBased]))
	}
}

// No labeling function may reference the subtle vocabulary — that headroom
// belongs to the discriminative model (Table 2's generalization effect).
func TestSubtleVocabularyUncovered(t *testing.T) {
	subtle := corpus.SubtleBikeWords()
	doc := &corpus.Document{
		ID: "s", Title: strings.Join(subtle, " "), Body: strings.Join(subtle, " "),
		URL: "https://x.example/1", Language: "en",
		Crawler: corpus.CrawlerStats{EngagementScore: 0.5, DomainAuthority: 0.5},
	}
	mx := executeDocLFs(t, []*corpus.Document{doc}, ProductLFs(nil, 1))
	for j := 0; j < mx.NumFuncs(); j++ {
		if mx.At(0, j) == labelmodel.Positive {
			t.Errorf("LF %d voted positive on subtle-vocab-only document", j)
		}
	}
}
