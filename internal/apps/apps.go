package apps

import (
	"fmt"

	"repro/pkg/drybell/lf"
)

// RegisterSets registers the three case studies' labeling-function sets
// ("topic", "product", "events") in the public registry with default
// wiring, so tools discover an application's functions by name instead of
// linking the constructors directly. It is idempotent per process only if
// called once; a duplicate registration is an error.
func RegisterSets(seed int64) error {
	topic, err := TopicSet(nil, 0.02, seed)
	if err != nil {
		return fmt.Errorf("apps: %w", err)
	}
	product, err := ProductSet(nil, seed)
	if err != nil {
		return fmt.Errorf("apps: %w", err)
	}
	events, err := EventSet(NumEventLFs, seed)
	if err != nil {
		return fmt.Errorf("apps: %w", err)
	}
	for _, reg := range []func() error{
		func() error { return lf.Register(topic) },
		func() error { return lf.Register(product) },
		func() error { return lf.Register(events) },
	} {
		if err := reg(); err != nil {
			return fmt.Errorf("apps: %w", err)
		}
	}
	return nil
}
