// Package apps defines the labeling functions of the paper's three case
// studies (§3): topic classification (10 LFs), product classification
// (8 LFs), and real-time events (140 LFs). Each set mixes the Figure 2
// source categories and the servable/non-servable split that drives the
// Table 3 ablation.
package apps

import (
	"strings"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/kgraph"
	"repro/internal/labelmodel"
	"repro/internal/lf"
	"repro/internal/nlp"
)

// DocRunner abbreviates the document labeling-function type.
type DocRunner = lf.Runner[*corpus.Document]

// TopicLFs returns the ten labeling functions of the topic-classification
// case study (§3.1): URL-based heuristics, keyword rules, NER-tagger-based
// functions (including the paper's "no person → not celebrity" example),
// topic-model-based negative heuristics, a knowledge-graph occupation
// lookup, and a crawler aggregate-statistics heuristic. The graph is any
// kgraph.Client — the graph itself offline, or a kgraph.Cache in front of
// it on the online serving path; nil uses the builtin graph directly.
func TopicLFs(graph kgraph.Client, nerMissRate float64, seed int64) []DocRunner {
	if graph == nil {
		graph = kgraph.Builtin()
	}
	newServer := func() *nlp.Server { return nlp.NewServer(nerMissRate, seed) }
	celebKeywords := corpus.CelebrityKeywords()
	entDomains := toSet(corpus.EntertainmentDomains())
	boringDomains := toSet(corpus.BoringDomains())

	return []DocRunner{
		// --- Servable: content and source heuristics (pattern-based). ---
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_celebrity", Category: lf.ContentHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				text := d.Text()
				for _, kw := range celebKeywords {
					if strings.Contains(text, kw) {
						return labelmodel.Positive
					}
				}
				return labelmodel.Abstain
			},
		},
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_offtopic_jargon", Category: lf.ContentHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				text := d.Text()
				hits := 0
				for _, kw := range []string{"dividend", "earnings", "api", "encryption", "vaccine", "itinerary"} {
					if strings.Contains(text, kw) {
						hits++
					}
				}
				if hits >= 2 {
					return labelmodel.Negative
				}
				return labelmodel.Abstain
			},
		},
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "url_entertainment", Category: lf.SourceHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				if entDomains[features.URLDomain(d.URL)] {
					return labelmodel.Positive
				}
				return labelmodel.Abstain
			},
		},
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "url_low_signal", Category: lf.SourceHeuristic, Servable: true},
			Vote: func(d *corpus.Document) labelmodel.Label {
				if boringDomains[features.URLDomain(d.URL)] {
					return labelmodel.Negative
				}
				return labelmodel.Abstain
			},
		},

		// --- Non-servable: NER-tagger-based (NLP model server). ---
		lf.NLPFunc[*corpus.Document]{
			// The paper's §5.1 example verbatim: no person ⇒ not celebrity.
			Meta:      lf.Meta{Name: "ner_no_person", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
				if len(res.People()) == 0 {
					return labelmodel.Negative
				}
				return labelmodel.Abstain
			},
		},
		lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "ner_known_celebrity", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
				for _, p := range res.People() {
					if kgraph.IsCelebrity(graph, p.Text) {
						return labelmodel.Positive
					}
				}
				return labelmodel.Abstain
			},
		},

		// --- Non-servable: topic-model-based (coarse semantic categories). ---
		lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "topicmodel_offtopic", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
				// Coarse category clearly outside entertainment ⇒ negative.
				switch res.TopTopic() {
				case nlp.TopicEntertainment, "":
					return labelmodel.Abstain
				default:
					return labelmodel.Negative
				}
			},
		},
		lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "topicmodel_no_entertainment_cues", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
				// No entertainment mass at all in the coarse categorization
				// ⇒ not celebrity content. High-coverage precise negative.
				for _, ts := range res.Topics {
					if ts.Topic == nlp.TopicEntertainment {
						return labelmodel.Abstain
					}
				}
				return labelmodel.Negative
			},
		},

		// --- Non-servable: knowledge-graph-based. ---
		lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "kg_non_celebrity_person", Category: lf.GraphBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
				people := res.People()
				if len(people) == 0 {
					return labelmodel.Abstain
				}
				// Every recognized person known NOT to be a celebrity ⇒ negative.
				for _, p := range people {
					if graph.Occupation(p.Text) != "civilian" {
						return labelmodel.Abstain
					}
				}
				return labelmodel.Negative
			},
		},

		// --- Non-servable: crawler aggregate statistics. ---
		lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "crawler_engagement", Category: lf.SourceHeuristic, Servable: false},
			Vote: func(d *corpus.Document) labelmodel.Label {
				// High threshold: at a ~1% positive rate only a strong
				// engagement signal is positive evidence.
				switch {
				case d.Crawler.EngagementScore > 0.88:
					return labelmodel.Positive
				case d.Crawler.EngagementScore < 0.18:
					return labelmodel.Negative
				default:
					return labelmodel.Abstain
				}
			},
		},
	}
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}
