// Package apps defines the labeling functions of the paper's three case
// studies (§3): topic classification (10 LFs), product classification
// (8 LFs), and real-time events (140 LFs). Each set mixes the Figure 2
// source categories and the servable/non-servable split that drives the
// Table 3 ablation.
//
// The sets are authored against the public template library
// (repro/pkg/drybell/lf) and run unchanged on both engines: the batch
// MapReduce executor and the online serving path.
package apps

import (
	"strings"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/kgraph"
	"repro/internal/nlp"
	"repro/pkg/drybell/lf"
)

// DocLF abbreviates the document labeling-function type.
type DocLF = lf.LF[*corpus.Document]

// cachedClient wraps a knowledge-graph client in the standard LRU unless it
// already is one — the shared memoization layer in front of the (simulated)
// remote Knowledge Graph service.
func cachedClient(graph kgraph.Client) kgraph.Client {
	if graph == nil {
		graph = kgraph.Builtin()
	}
	if _, ok := graph.(*kgraph.Cache); ok {
		return graph
	}
	if c, err := kgraph.NewCache(graph, lf.DefaultGraphCacheSize); err == nil {
		return c
	}
	return graph
}

// TopicLFs returns the ten labeling functions of the topic-classification
// case study (§3.1): URL-based heuristics, keyword rules, NER-tagger-based
// functions (including the paper's "no person → not celebrity" example),
// topic-model-based negative heuristics, a knowledge-graph occupation
// lookup, and a crawler aggregate-statistics heuristic. The graph is any
// kgraph.Client; it is queried through an LRU cache either way, and nil
// uses the builtin graph.
func TopicLFs(graph kgraph.Client, nerMissRate float64, seed int64) []DocLF {
	client := cachedClient(graph)
	newServer := func() *nlp.Server { return nlp.NewServer(nerMissRate, seed) }
	celebKeywords := corpus.CelebrityKeywords()
	entDomains := toSet(corpus.EntertainmentDomains())
	boringDomains := toSet(corpus.BoringDomains())

	return []DocLF{
		// --- Servable: content and source heuristics (pattern-based). ---
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_celebrity", Category: lf.ContentHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				text := d.Text()
				for _, kw := range celebKeywords {
					if strings.Contains(text, kw) {
						return lf.Positive
					}
				}
				return lf.Abstain
			},
		},
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "keyword_offtopic_jargon", Category: lf.ContentHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				text := d.Text()
				hits := 0
				for _, kw := range []string{"dividend", "earnings", "api", "encryption", "vaccine", "itinerary"} {
					if strings.Contains(text, kw) {
						hits++
					}
				}
				if hits >= 2 {
					return lf.Negative
				}
				return lf.Abstain
			},
		},
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "url_entertainment", Category: lf.SourceHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				if entDomains[features.URLDomain(d.URL)] {
					return lf.Positive
				}
				return lf.Abstain
			},
		},
		&lf.Func[*corpus.Document]{
			Meta: lf.Meta{Name: "url_low_signal", Category: lf.SourceHeuristic, Servable: true},
			Fn: func(d *corpus.Document) lf.Label {
				if boringDomains[features.URLDomain(d.URL)] {
					return lf.Negative
				}
				return lf.Abstain
			},
		},

		// --- Non-servable: NER-tagger-based (NLP model server). ---
		&lf.NLPFunc[*corpus.Document]{
			// The paper's §5.1 example verbatim: no person ⇒ not celebrity.
			Meta:      lf.Meta{Name: "ner_no_person", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				if len(res.People()) == 0 {
					return lf.Negative
				}
				return lf.Abstain
			},
		},
		&lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "ner_known_celebrity", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				for _, p := range res.People() {
					if kgraph.IsCelebrity(client, p.Text) {
						return lf.Positive
					}
				}
				return lf.Abstain
			},
		},

		// --- Non-servable: topic-model-based (coarse semantic categories). ---
		&lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "topicmodel_offtopic", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				// Coarse category clearly outside entertainment ⇒ negative.
				switch res.TopTopic() {
				case nlp.TopicEntertainment, "":
					return lf.Abstain
				default:
					return lf.Negative
				}
			},
		},
		&lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "topicmodel_no_entertainment_cues", Category: lf.ModelBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				// No entertainment mass at all in the coarse categorization
				// ⇒ not celebrity content. High-coverage precise negative.
				for _, ts := range res.Topics {
					if ts.Topic == nlp.TopicEntertainment {
						return lf.Abstain
					}
				}
				return lf.Negative
			},
		},

		// --- Non-servable: knowledge-graph-based (NER + occupation lookup). ---
		&lf.NLPFunc[*corpus.Document]{
			Meta:      lf.Meta{Name: "kg_non_celebrity_person", Category: lf.GraphBased, Servable: false},
			NewServer: newServer,
			GetText:   func(d *corpus.Document) string { return d.Text() },
			GetValue: func(_ *corpus.Document, res *nlp.Result) lf.Label {
				people := res.People()
				if len(people) == 0 {
					return lf.Abstain
				}
				// Every recognized person known NOT to be a celebrity ⇒ negative.
				for _, p := range people {
					if client.Occupation(p.Text) != "civilian" {
						return lf.Abstain
					}
				}
				return lf.Negative
			},
		},

		// --- Non-servable: crawler aggregate statistics, as the model-based
		// template's two threshold slots. High positive threshold: at a ~1%
		// positive rate only a strong engagement signal is positive evidence.
		lf.Threshold(
			lf.Meta{Name: "crawler_engagement", Category: lf.SourceHeuristic, Servable: false},
			func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
			0.88, 0.18,
		),
	}
}

// TopicSet is TopicLFs as a named, validated set for registry discovery.
func TopicSet(graph kgraph.Client, nerMissRate float64, seed int64) (*lf.Set[*corpus.Document], error) {
	return lf.NewSet("topic", TopicLFs(graph, nerMissRate, seed)...)
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}
