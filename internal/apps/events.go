package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/pkg/drybell/lf"
)

// EventLF abbreviates the event labeling-function type.
type EventLF = lf.LF[*corpus.Event]

// NumEventLFs is the paper's labeling-function count for the real-time
// events task (§3.3: n = 140).
const NumEventLFs = 140

// EventLFs programmatically generates the events task's labeling functions
// in the paper's three families, all defined over non-servable features and
// all instantiations of the model-based template's threshold slots:
//
//   - model-based (~30): linear scores over several aggregate statistics
//     with thresholds — "several smaller models that had previously been
//     developed over various feature sets";
//   - graph-based (~40): low thresholds on relationship-graph scores —
//     "higher recall but generally lower-precision signals";
//   - other heuristics (~70): single-feature threshold rules — "a large set
//     of existing heuristic classifiers".
//
// Thresholds and weights vary deterministically with seed, giving the LF
// population the diverse accuracy/coverage profile that makes the
// generative model's weighting matter (§3.3).
func EventLFs(n int, seed int64) []EventLF {
	if n <= 0 {
		n = NumEventLFs
	}
	rng := rand.New(rand.NewSource(seed))
	numModel := n * 3 / 14 // ≈30 of 140
	numGraph := n * 4 / 14 // ≈40 of 140
	numHeur := n - numModel - numGraph

	out := make([]EventLF, 0, n)
	for k := 0; k < numModel; k++ {
		out = append(out, modelBasedEventLF(k, rng))
	}
	for k := 0; k < numGraph; k++ {
		out = append(out, graphBasedEventLF(k, rng))
	}
	for k := 0; k < numHeur; k++ {
		out = append(out, heuristicEventLF(k, rng))
	}
	return out
}

// EventSet is EventLFs as a named, validated set for registry discovery.
func EventSet(n int, seed int64) (*lf.Set[*corpus.Event], error) {
	return lf.NewSet("events", EventLFs(n, seed)...)
}

// modelBasedEventLF scores a random 3-feature linear model over the
// aggregates and votes outside a dead zone — the ModelFunc template
// verbatim.
func modelBasedEventLF(k int, rng *rand.Rand) EventLF {
	f1 := rng.Intn(corpus.EventAggDim)
	f2 := rng.Intn(corpus.EventAggDim)
	f3 := rng.Intn(corpus.EventAggDim)
	w1 := 0.5 + rng.Float64()
	w2 := 0.3 + rng.Float64()*0.7
	w3 := rng.Float64() * 0.5
	hi := 2.0 + rng.Float64()*1.2
	lo := -0.4 - rng.Float64()*0.8
	norm := w1 + w2 + w3
	return &lf.ModelFunc[*corpus.Event]{
		Meta: lf.Meta{Name: fmt.Sprintf("model_%03d", k), Category: lf.ModelBased, Servable: false},
		Score: func(e *corpus.Event) float64 {
			return (w1*e.AggStats[f1] + w2*e.AggStats[f2] + w3*e.AggStats[f3]) / norm
		},
		PositiveAbove: hi,
		NegativeBelow: lo,
	}
}

// graphBasedEventLF fires positive on a low relationship-graph threshold:
// high recall, lower precision.
func graphBasedEventLF(k int, rng *rand.Rand) EventLF {
	f := rng.Intn(corpus.EventGraphDim)
	th := 0.8 + rng.Float64()*0.7 // low thresholds relative to the heuristics
	return lf.Threshold(
		lf.Meta{Name: fmt.Sprintf("graph_%03d", k), Category: lf.GraphBased, Servable: false},
		func(e *corpus.Event) float64 { return e.GraphScores[f] },
		th, lf.NeverNegative,
	)
}

// heuristicEventLF is a single-feature threshold rule; a third are
// negative-voting rules on low feature values.
func heuristicEventLF(k int, rng *rand.Rand) EventLF {
	f := rng.Intn(corpus.EventAggDim)
	if k%3 == 0 {
		th := -0.5 - rng.Float64()*0.9
		return lf.Threshold(
			lf.Meta{Name: fmt.Sprintf("heuristic_%03d", k), Category: lf.ContentHeuristic, Servable: false},
			func(e *corpus.Event) float64 { return e.AggStats[f] },
			lf.NeverPositive, th,
		)
	}
	th := 1.8 + rng.Float64()*1.2
	return lf.Threshold(
		lf.Meta{Name: fmt.Sprintf("heuristic_%03d", k), Category: lf.ContentHeuristic, Servable: false},
		func(e *corpus.Event) float64 { return e.AggStats[f] },
		th, lf.NeverNegative,
	)
}
