// Package tensor implements a small dense-tensor library and a static,
// define-then-run compute graph with reverse-mode automatic differentiation.
//
// It is the stand-in for TensorFlow in the Snorkel DryBell reproduction:
// the sampling-free generative label model (paper §5.2) is expressed as a
// static graph over indicator matrices and per-labeling-function parameters,
// and trained by gradient descent on the marginal likelihood.
//
// The package supports 0-, 1- and 2-dimensional tensors of float64, the op
// set required by the label model and the discriminative DNN (elementwise
// arithmetic, matmul, reductions, stable log-sum-exp and softplus), and a
// family of first-order optimizers (SGD, momentum, Adagrad, Adam).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major tensor of float64 values.
//
// A Tensor with an empty shape is a scalar holding exactly one element.
// Tensors are mutable; graph operations never alias their inputs.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// New() returns a scalar. Dimensions must be positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

// FromSlice returns a 1-D tensor holding a copy of v.
func FromSlice(v []float64) *Tensor {
	t := New(len(v))
	copy(t.data, v)
	return t
}

// FromRows returns a 2-D tensor from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		panic("tensor: FromRows requires at least one row")
	}
	cols := len(rows[0])
	t := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(t.data[i*cols:(i+1)*cols], r)
	}
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Rand returns a tensor with elements drawn uniformly from [-scale, scale).
func Rand(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = (rng.Float64()*2 - 1) * scale
	}
	return t
}

// Randn returns a tensor with elements drawn from N(0, stddev²).
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions (0 for scalars).
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage in row-major order.
// Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Rows returns the first dimension of a 2-D tensor.
func (t *Tensor) Rows() int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Rows on rank-%d tensor", len(t.shape)))
	}
	return t.shape[0]
}

// Cols returns the second dimension of a 2-D tensor.
func (t *Tensor) Cols() int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Cols on rank-%d tensor", len(t.shape)))
	}
	return t.shape[1]
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns v to the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Item returns the single element of a scalar or one-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameShape(t, src) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// AddScaled adds scale*src to t elementwise. Shapes must match.
func (t *Tensor) AddScaled(scale float64, src *Tensor) {
	if !SameShape(t, src) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.shape, src.shape))
	}
	for i, v := range src.data {
		t.data[i] += scale * v
	}
}

// ScaleBy multiplies every element by c.
func (t *Tensor) ScaleBy(c float64) {
	for i := range t.data {
		t.data[i] *= c
	}
}

// Reshape returns a view-copy of t with a new shape of the same total size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	c := New(shape...)
	copy(c.data, t.data)
	return c
}

// Row returns a copy of row i of a 2-D tensor as a 1-D tensor.
func (t *Tensor) Row(i int) *Tensor {
	cols := t.Cols()
	r := New(cols)
	copy(r.data, t.data[i*cols:(i+1)*cols])
	return r
}

// SetRow copies a 1-D tensor into row i of a 2-D tensor.
func (t *Tensor) SetRow(i int, row *Tensor) {
	cols := t.Cols()
	if row.Size() != cols {
		panic(fmt.Sprintf("tensor: SetRow size %d != cols %d", row.Size(), cols))
	}
	copy(t.data[i*cols:(i+1)*cols], row.data)
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Norm2 returns the Euclidean norm of all elements.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders small tensors fully and large tensors by shape only.
func (t *Tensor) String() string {
	if len(t.data) > 64 {
		return fmt.Sprintf("Tensor%v", t.shape)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v%v", t.shape, t.data)
	return b.String()
}

// MatMulInto computes dst = a·b for 2-D tensors, reusing dst's storage.
// dst must have shape (a.Rows(), b.Cols()) and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul inner dim mismatch %v x %v", a.shape, b.shape))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: matmul dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue // indicator matrices are sparse; skip zero work
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMul returns a·b for 2-D tensors.
func MatMul(a, b *Tensor) *Tensor {
	dst := New(a.Rows(), b.Cols())
	MatMulInto(dst, a, b)
	return dst
}
