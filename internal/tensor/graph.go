package tensor

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes the roles a graph node can play.
type NodeKind int

// Node kinds.
const (
	KindPlaceholder NodeKind = iota // fed at run time
	KindVariable                    // trainable parameter
	KindConstant                    // fixed value baked into the graph
	KindOp                          // computed from inputs
)

func (k NodeKind) String() string {
	switch k {
	case KindPlaceholder:
		return "placeholder"
	case KindVariable:
		return "variable"
	case KindConstant:
		return "constant"
	case KindOp:
		return "op"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one vertex of a static compute graph. Leaf nodes (placeholders,
// variables, constants) hold values directly; op nodes compute their value
// from their inputs during Graph.Run.
type Node struct {
	id     int
	kind   NodeKind
	name   string
	op     op
	inputs []*Node

	value *Tensor // forward value (owned by the node for ops and variables)
	grad  *Tensor // gradient of the loss w.r.t. this node, set by Backward
}

// ID returns the node's unique id within its graph.
func (n *Node) ID() int { return n.id }

// Kind returns the node's kind.
func (n *Node) Kind() NodeKind { return n.kind }

// Name returns the node's diagnostic name.
func (n *Node) Name() string { return n.name }

// Value returns the node's current forward value, or nil if it has not been
// computed or fed.
func (n *Node) Value() *Tensor { return n.value }

// Grad returns the gradient computed by the most recent Backward call, or nil.
func (n *Node) Grad() *Tensor { return n.grad }

// SetValue overwrites a variable's value. Panics for non-variable nodes.
func (n *Node) SetValue(t *Tensor) {
	if n.kind != KindVariable {
		panic(fmt.Sprintf("tensor: SetValue on %s node %q", n.kind, n.name))
	}
	n.value = t.Clone()
}

func (n *Node) String() string {
	return fmt.Sprintf("%s#%d(%s)", n.name, n.id, n.kind)
}

// Graph is a static compute graph. Nodes are appended in construction order,
// which is guaranteed to be a topological order because every op's inputs
// must exist before the op is created. Run evaluates forward in that order;
// Backward propagates gradients in reverse.
//
// Graph is not safe for concurrent use; create one graph per goroutine or
// guard externally. This mirrors a TensorFlow session bound to one device.
type Graph struct {
	nodes     []*Node
	variables []*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

func (g *Graph) add(kind NodeKind, name string, o op, inputs ...*Node) *Node {
	for _, in := range inputs {
		if in == nil {
			panic(fmt.Sprintf("tensor: nil input to op %q", name))
		}
		if in.id >= len(g.nodes) || g.nodes[in.id] != in {
			panic(fmt.Sprintf("tensor: input %s does not belong to this graph", in))
		}
	}
	n := &Node{id: len(g.nodes), kind: kind, name: name, op: o, inputs: inputs}
	g.nodes = append(g.nodes, n)
	return n
}

// Placeholder declares an input fed at run time via Feed.
func (g *Graph) Placeholder(name string) *Node {
	return g.add(KindPlaceholder, name, nil)
}

// Variable declares a trainable parameter initialized to a copy of init.
func (g *Graph) Variable(name string, init *Tensor) *Node {
	n := g.add(KindVariable, name, nil)
	n.value = init.Clone()
	g.variables = append(g.variables, n)
	return n
}

// Const declares a fixed tensor baked into the graph.
func (g *Graph) Const(name string, t *Tensor) *Node {
	n := g.add(KindConstant, name, nil)
	n.value = t.Clone()
	return n
}

// Variables returns the graph's trainable parameters in creation order.
func (g *Graph) Variables() []*Node { return g.variables }

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Feed is one placeholder binding for a Run call.
type Feed struct {
	Node  *Node
	Value *Tensor
}

// Run evaluates every op node in topological order with the given
// placeholder bindings. After Run returns, Value on any node yields its
// forward value. Placeholders not listed in feeds retain their previous
// value if any; an unfed, never-fed placeholder that is actually consumed
// causes an error.
func (g *Graph) Run(feeds ...Feed) error {
	for _, f := range feeds {
		if f.Node.kind != KindPlaceholder {
			return fmt.Errorf("tensor: fed non-placeholder node %s", f.Node)
		}
		if f.Node.id >= len(g.nodes) || g.nodes[f.Node.id] != f.Node {
			return fmt.Errorf("tensor: fed node %s does not belong to this graph", f.Node)
		}
		if f.Value == nil {
			return fmt.Errorf("tensor: nil value fed to %s", f.Node)
		}
		f.Node.value = f.Value
	}
	for _, n := range g.nodes {
		if n.kind != KindOp {
			continue
		}
		ins := make([]*Tensor, len(n.inputs))
		for i, in := range n.inputs {
			if in.value == nil {
				return fmt.Errorf("tensor: node %s consumed by %s has no value (unfed placeholder?)", in, n)
			}
			ins[i] = in.value
		}
		out, err := n.op.forward(ins)
		if err != nil {
			return fmt.Errorf("tensor: forward %s: %w", n, err)
		}
		n.value = out
	}
	return nil
}

// Backward computes gradients of the scalar loss node with respect to every
// node that (transitively) feeds it, in particular all variables. Run must
// have been called first. Gradients are available via Node.Grad.
func (g *Graph) Backward(loss *Node) error {
	if loss.id >= len(g.nodes) || g.nodes[loss.id] != loss {
		return fmt.Errorf("tensor: loss node %s does not belong to this graph", loss)
	}
	if loss.value == nil {
		return fmt.Errorf("tensor: Backward before Run: loss %s has no value", loss)
	}
	if loss.value.Size() != 1 {
		return fmt.Errorf("tensor: loss %s is not scalar (shape %v)", loss, loss.value.Shape())
	}
	// Determine which nodes are needed (ancestors of loss) so we do not
	// propagate into unrelated parts of the graph.
	needed := make([]bool, len(g.nodes))
	var mark func(*Node)
	mark = func(n *Node) {
		if needed[n.id] {
			return
		}
		needed[n.id] = true
		for _, in := range n.inputs {
			mark(in)
		}
	}
	mark(loss)

	for _, n := range g.nodes {
		n.grad = nil
	}
	loss.grad = Full(1, loss.value.Shape()...)

	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		if !needed[n.id] || n.kind != KindOp || n.grad == nil {
			continue
		}
		ins := make([]*Tensor, len(n.inputs))
		for j, in := range n.inputs {
			ins[j] = in.value
		}
		grads, err := n.op.backward(ins, n.value, n.grad)
		if err != nil {
			return fmt.Errorf("tensor: backward %s: %w", n, err)
		}
		if len(grads) != len(n.inputs) {
			return fmt.Errorf("tensor: backward %s returned %d grads for %d inputs", n, len(grads), len(n.inputs))
		}
		for j, gin := range grads {
			if gin == nil {
				continue
			}
			in := n.inputs[j]
			if !needed[in.id] {
				continue
			}
			if in.grad == nil {
				in.grad = gin.Clone()
			} else {
				in.grad.AddScaled(1, gin)
			}
		}
	}
	return nil
}

// Minimize runs one forward/backward pass with the given feeds and applies
// one optimizer step to all variables. It returns the loss value.
func (g *Graph) Minimize(loss *Node, opt Optimizer, feeds ...Feed) (float64, error) {
	if err := g.Run(feeds...); err != nil {
		return 0, err
	}
	if err := g.Backward(loss); err != nil {
		return 0, err
	}
	opt.Step(g.variables)
	return loss.value.Item(), nil
}

// NodesByName returns all nodes with the given name, in creation order.
// Useful in tests and diagnostics.
func (g *Graph) NodesByName(name string) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.name == name {
			out = append(out, n)
		}
	}
	return out
}

// Summary returns a human-readable listing of the graph, one node per line,
// sorted by id. Intended for debugging.
func (g *Graph) Summary() string {
	ids := make([]int, len(g.nodes))
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	s := ""
	for _, id := range ids {
		n := g.nodes[id]
		shape := "?"
		if n.value != nil {
			shape = fmt.Sprintf("%v", n.value.Shape())
		}
		s += fmt.Sprintf("#%d %-12s %-20s %s\n", n.id, n.kind, n.name, shape)
	}
	return s
}
