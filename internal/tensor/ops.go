package tensor

import (
	"fmt"
	"math"
)

// op is one differentiable operation. forward computes the output from the
// inputs; backward receives the inputs, the forward output and the gradient
// of the loss w.r.t. the output, and returns gradients w.r.t. each input
// (nil entries mean "no gradient flows to this input").
type op interface {
	forward(inputs []*Tensor) (*Tensor, error)
	backward(inputs []*Tensor, output, grad *Tensor) ([]*Tensor, error)
}

// ---------------------------------------------------------------------------
// Broadcasting helpers.
//
// Binary elementwise ops support three input patterns:
//   - identical shapes,
//   - b is a scalar (broadcast everywhere),
//   - a is (m,n) and b is (n,): b broadcast across rows.
// The gradient of a broadcast input is reduced (summed) back to its shape.
// ---------------------------------------------------------------------------

type broadcastMode int

const (
	bcSame broadcastMode = iota
	bcScalarB
	bcScalarA
	bcRowB // a is (m,n), b is (n,)
)

func broadcastModeOf(a, b *Tensor) (broadcastMode, error) {
	switch {
	case SameShape(a, b):
		return bcSame, nil
	case b.Size() == 1:
		return bcScalarB, nil
	case a.Size() == 1:
		return bcScalarA, nil
	case a.Rank() == 2 && b.Rank() == 1 && a.Cols() == b.Size():
		return bcRowB, nil
	default:
		return 0, fmt.Errorf("incompatible shapes %v and %v", a.Shape(), b.Shape())
	}
}

// applyBinary computes out[i] = f(a', b') under the broadcast mode.
func applyBinary(a, b *Tensor, f func(x, y float64) float64) (*Tensor, broadcastMode, error) {
	mode, err := broadcastModeOf(a, b)
	if err != nil {
		return nil, 0, err
	}
	switch mode {
	case bcSame:
		out := New(a.Shape()...)
		for i := range out.data {
			out.data[i] = f(a.data[i], b.data[i])
		}
		return out, mode, nil
	case bcScalarB:
		out := New(a.Shape()...)
		bv := b.data[0]
		for i := range out.data {
			out.data[i] = f(a.data[i], bv)
		}
		return out, mode, nil
	case bcScalarA:
		out := New(b.Shape()...)
		av := a.data[0]
		for i := range out.data {
			out.data[i] = f(av, b.data[i])
		}
		return out, mode, nil
	default: // bcRowB
		m, n := a.Rows(), a.Cols()
		out := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.data[i*n+j] = f(a.data[i*n+j], b.data[j])
			}
		}
		return out, mode, nil
	}
}

// reduceGrad sums g down to the shape of target, given the broadcast mode and
// which side target was on.
func reduceGrad(g *Tensor, target *Tensor, mode broadcastMode, isA bool) *Tensor {
	switch mode {
	case bcSame:
		return g.Clone()
	case bcScalarB:
		if isA {
			return g.Clone()
		}
		return Scalar(g.Sum()).Reshape(target.Shape()...)
	case bcScalarA:
		if !isA {
			return g.Clone()
		}
		return Scalar(g.Sum()).Reshape(target.Shape()...)
	default: // bcRowB
		if isA {
			return g.Clone()
		}
		m, n := g.Rows(), g.Cols()
		out := New(n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.data[j] += g.data[i*n+j]
			}
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Elementwise binary ops.
// ---------------------------------------------------------------------------

type addOp struct{}

func (addOp) forward(in []*Tensor) (*Tensor, error) {
	out, _, err := applyBinary(in[0], in[1], func(x, y float64) float64 { return x + y })
	return out, err
}

func (addOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	mode, err := broadcastModeOf(in[0], in[1])
	if err != nil {
		return nil, err
	}
	return []*Tensor{reduceGrad(g, in[0], mode, true), reduceGrad(g, in[1], mode, false)}, nil
}

type subOp struct{}

func (subOp) forward(in []*Tensor) (*Tensor, error) {
	out, _, err := applyBinary(in[0], in[1], func(x, y float64) float64 { return x - y })
	return out, err
}

func (subOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	mode, err := broadcastModeOf(in[0], in[1])
	if err != nil {
		return nil, err
	}
	neg := g.Clone()
	neg.ScaleBy(-1)
	return []*Tensor{reduceGrad(g, in[0], mode, true), reduceGrad(neg, in[1], mode, false)}, nil
}

type mulOp struct{}

func (mulOp) forward(in []*Tensor) (*Tensor, error) {
	out, _, err := applyBinary(in[0], in[1], func(x, y float64) float64 { return x * y })
	return out, err
}

func (mulOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	mode, err := broadcastModeOf(in[0], in[1])
	if err != nil {
		return nil, err
	}
	ga, _, err := applyBinary(g, in[1], func(x, y float64) float64 { return x * y })
	if err != nil {
		// g has the output (broadcast) shape; multiply against broadcast b.
		return nil, err
	}
	gb, _, err := applyBinary(g, in[0], func(x, y float64) float64 { return x * y })
	if err != nil {
		return nil, err
	}
	return []*Tensor{reduceGrad(ga, in[0], mode, true), reduceGrad(gb, in[1], mode, false)}, nil
}

type divOp struct{}

func (divOp) forward(in []*Tensor) (*Tensor, error) {
	out, _, err := applyBinary(in[0], in[1], func(x, y float64) float64 { return x / y })
	return out, err
}

func (divOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	mode, err := broadcastModeOf(in[0], in[1])
	if err != nil {
		return nil, err
	}
	ga, _, err := applyBinary(g, in[1], func(x, y float64) float64 { return x / y })
	if err != nil {
		return nil, err
	}
	// gb = -g * a / b²  computed against the broadcast output shape.
	t, _, err := applyBinary(g, in[0], func(x, y float64) float64 { return x * y })
	if err != nil {
		return nil, err
	}
	gb, _, err := applyBinary(t, in[1], func(x, y float64) float64 { return -x / (y * y) })
	if err != nil {
		return nil, err
	}
	return []*Tensor{reduceGrad(ga, in[0], mode, true), reduceGrad(gb, in[1], mode, false)}, nil
}

// logAddExpOp computes log(exp(a)+exp(b)) elementwise, stably.
type logAddExpOp struct{}

func logAddExp(x, y float64) float64 {
	m := math.Max(x, y)
	if math.IsInf(m, -1) {
		return math.Inf(-1)
	}
	return m + math.Log(math.Exp(x-m)+math.Exp(y-m))
}

func (logAddExpOp) forward(in []*Tensor) (*Tensor, error) {
	out, _, err := applyBinary(in[0], in[1], logAddExp)
	return out, err
}

func (logAddExpOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	mode, err := broadcastModeOf(in[0], in[1])
	if err != nil {
		return nil, err
	}
	// d/da = sigmoid(a-b), d/db = sigmoid(b-a).
	sa, _, err := applyBinary(in[0], in[1], func(x, y float64) float64 { return sigmoid(x - y) })
	if err != nil {
		return nil, err
	}
	ga, _, err := applyBinary(g, sa, func(x, y float64) float64 { return x * y })
	if err != nil {
		return nil, err
	}
	gb, _, err := applyBinary(g, sa, func(x, y float64) float64 { return x * (1 - y) })
	if err != nil {
		return nil, err
	}
	return []*Tensor{reduceGrad(ga, in[0], mode, true), reduceGrad(gb, in[1], mode, false)}, nil
}

// ---------------------------------------------------------------------------
// Elementwise unary ops.
// ---------------------------------------------------------------------------

type unaryOp struct {
	f  func(float64) float64
	df func(x, fx float64) float64 // derivative given input and forward output
}

func (u unaryOp) forward(in []*Tensor) (*Tensor, error) {
	out := New(in[0].Shape()...)
	for i, v := range in[0].data {
		out.data[i] = u.f(v)
	}
	return out, nil
}

func (u unaryOp) backward(in []*Tensor, out, g *Tensor) ([]*Tensor, error) {
	gi := New(in[0].Shape()...)
	for i := range gi.data {
		gi.data[i] = g.data[i] * u.df(in[0].data[i], out.data[i])
	}
	return []*Tensor{gi}, nil
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func softplus(x float64) float64 {
	// Stable log(1+exp(x)).
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// ---------------------------------------------------------------------------
// MatMul.
// ---------------------------------------------------------------------------

type matMulOp struct{}

func (matMulOp) forward(in []*Tensor) (*Tensor, error) {
	a, b := in[0], in[1]
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("matmul requires rank-2 inputs, got %v x %v", a.Shape(), b.Shape())
	}
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("matmul inner dims %v x %v", a.Shape(), b.Shape())
	}
	return MatMul(a, b), nil
}

func (matMulOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	a, b := in[0], in[1]
	// dA = g·Bᵀ ; dB = Aᵀ·g
	ga := MatMul(g, transpose(b))
	gb := MatMul(transpose(a), g)
	return []*Tensor{ga, gb}, nil
}

func transpose(t *Tensor) *Tensor {
	m, n := t.Rows(), t.Cols()
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// matVecOp computes (m,n)·(n,) -> (m,).
type matVecOp struct{}

func (matVecOp) forward(in []*Tensor) (*Tensor, error) {
	a, x := in[0], in[1]
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("matvec requires (m,n)·(n,), got %v x %v", a.Shape(), x.Shape())
	}
	m, n := a.Rows(), a.Cols()
	if x.Size() != n {
		return nil, fmt.Errorf("matvec dims %v x %v", a.Shape(), x.Shape())
	}
	out := New(m)
	for i := 0; i < m; i++ {
		s := 0.0
		row := a.data[i*n : (i+1)*n]
		for j, av := range row {
			if av != 0 {
				s += av * x.data[j]
			}
		}
		out.data[i] = s
	}
	return out, nil
}

func (matVecOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	a, x := in[0], in[1]
	m, n := a.Rows(), a.Cols()
	ga := New(m, n)
	gx := New(n)
	for i := 0; i < m; i++ {
		gi := g.data[i]
		if gi == 0 {
			continue
		}
		row := a.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			ga.data[i*n+j] = gi * x.data[j]
			if row[j] != 0 {
				gx.data[j] += gi * row[j]
			}
		}
	}
	return []*Tensor{ga, gx}, nil
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

type sumOp struct{}

func (sumOp) forward(in []*Tensor) (*Tensor, error) {
	return Scalar(in[0].Sum()), nil
}

func (sumOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	gi := Full(g.Item(), in[0].Shape()...)
	return []*Tensor{gi}, nil
}

type meanOp struct{}

func (meanOp) forward(in []*Tensor) (*Tensor, error) {
	return Scalar(in[0].Sum() / float64(in[0].Size())), nil
}

func (meanOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	gi := Full(g.Item()/float64(in[0].Size()), in[0].Shape()...)
	return []*Tensor{gi}, nil
}

// sumAxisOp reduces a 2-D tensor along one axis (0: down columns -> (n,);
// 1: across rows -> (m,)).
type sumAxisOp struct{ axis int }

func (o sumAxisOp) forward(in []*Tensor) (*Tensor, error) {
	t := in[0]
	if t.Rank() != 2 {
		return nil, fmt.Errorf("sumAxis requires rank-2 input, got %v", t.Shape())
	}
	m, n := t.Rows(), t.Cols()
	switch o.axis {
	case 0:
		out := New(n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.data[j] += t.data[i*n+j]
			}
		}
		return out, nil
	case 1:
		out := New(m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.data[i] += t.data[i*n+j]
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sumAxis axis %d out of range", o.axis)
	}
}

func (o sumAxisOp) backward(in []*Tensor, _, g *Tensor) ([]*Tensor, error) {
	t := in[0]
	m, n := t.Rows(), t.Cols()
	gi := New(m, n)
	switch o.axis {
	case 0:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				gi.data[i*n+j] = g.data[j]
			}
		}
	case 1:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				gi.data[i*n+j] = g.data[i]
			}
		}
	}
	return []*Tensor{gi}, nil
}

// ---------------------------------------------------------------------------
// Public op constructors on Graph.
// ---------------------------------------------------------------------------

// Add returns a+b with broadcasting (same shape, scalar, or row vector).
func (g *Graph) Add(a, b *Node) *Node { return g.add(KindOp, "add", addOp{}, a, b) }

// Sub returns a-b with broadcasting.
func (g *Graph) Sub(a, b *Node) *Node { return g.add(KindOp, "sub", subOp{}, a, b) }

// Mul returns the elementwise product a*b with broadcasting.
func (g *Graph) Mul(a, b *Node) *Node { return g.add(KindOp, "mul", mulOp{}, a, b) }

// Div returns the elementwise quotient a/b with broadcasting.
func (g *Graph) Div(a, b *Node) *Node { return g.add(KindOp, "div", divOp{}, a, b) }

// LogAddExp returns log(exp(a)+exp(b)) elementwise, computed stably.
func (g *Graph) LogAddExp(a, b *Node) *Node {
	return g.add(KindOp, "logaddexp", logAddExpOp{}, a, b)
}

// Neg returns -a.
func (g *Graph) Neg(a *Node) *Node {
	return g.add(KindOp, "neg", unaryOp{
		f:  func(x float64) float64 { return -x },
		df: func(_, _ float64) float64 { return -1 },
	}, a)
}

// Scale returns c*a for a compile-time constant c.
func (g *Graph) Scale(a *Node, c float64) *Node {
	return g.add(KindOp, "scale", unaryOp{
		f:  func(x float64) float64 { return c * x },
		df: func(_, _ float64) float64 { return c },
	}, a)
}

// AddConst returns a+c for a compile-time constant c.
func (g *Graph) AddConst(a *Node, c float64) *Node {
	return g.add(KindOp, "addconst", unaryOp{
		f:  func(x float64) float64 { return x + c },
		df: func(_, _ float64) float64 { return 1 },
	}, a)
}

// Exp returns e^a elementwise.
func (g *Graph) Exp(a *Node) *Node {
	return g.add(KindOp, "exp", unaryOp{
		f:  math.Exp,
		df: func(_, fx float64) float64 { return fx },
	}, a)
}

// Log returns the natural log elementwise.
func (g *Graph) Log(a *Node) *Node {
	return g.add(KindOp, "log", unaryOp{
		f:  math.Log,
		df: func(x, _ float64) float64 { return 1 / x },
	}, a)
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func (g *Graph) Sigmoid(a *Node) *Node {
	return g.add(KindOp, "sigmoid", unaryOp{
		f:  sigmoid,
		df: func(_, fx float64) float64 { return fx * (1 - fx) },
	}, a)
}

// Softplus returns log(1+e^a) elementwise, computed stably.
func (g *Graph) Softplus(a *Node) *Node {
	return g.add(KindOp, "softplus", unaryOp{
		f:  softplus,
		df: func(x, _ float64) float64 { return sigmoid(x) },
	}, a)
}

// Tanh returns the hyperbolic tangent elementwise.
func (g *Graph) Tanh(a *Node) *Node {
	return g.add(KindOp, "tanh", unaryOp{
		f:  math.Tanh,
		df: func(_, fx float64) float64 { return 1 - fx*fx },
	}, a)
}

// ReLU returns max(a, 0) elementwise.
func (g *Graph) ReLU(a *Node) *Node {
	return g.add(KindOp, "relu", unaryOp{
		f: func(x float64) float64 { return math.Max(x, 0) },
		df: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}, a)
}

// Square returns a² elementwise.
func (g *Graph) Square(a *Node) *Node {
	return g.add(KindOp, "square", unaryOp{
		f:  func(x float64) float64 { return x * x },
		df: func(x, _ float64) float64 { return 2 * x },
	}, a)
}

// MatMul returns the matrix product of two rank-2 nodes.
func (g *Graph) MatMul(a, b *Node) *Node { return g.add(KindOp, "matmul", matMulOp{}, a, b) }

// MatVec returns the matrix-vector product (m,n)·(n,) -> (m,).
func (g *Graph) MatVec(a, x *Node) *Node { return g.add(KindOp, "matvec", matVecOp{}, a, x) }

// Sum reduces all elements to a scalar.
func (g *Graph) Sum(a *Node) *Node { return g.add(KindOp, "sum", sumOp{}, a) }

// Mean reduces all elements to their scalar mean.
func (g *Graph) Mean(a *Node) *Node { return g.add(KindOp, "mean", meanOp{}, a) }

// SumAxis reduces a rank-2 node along the given axis (0 or 1).
func (g *Graph) SumAxis(a *Node, axis int) *Node {
	return g.add(KindOp, fmt.Sprintf("sumaxis%d", axis), sumAxisOp{axis: axis}, a)
}
