package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapesAndAccess(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{nil, 1},
		{[]int{4}, 4},
		{[]int{2, 3}, 6},
		{[]int{5, 1}, 5},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, tt.Size(), c.size)
		}
		if tt.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, tt.Rank(), len(c.shape))
		}
	}
}

func TestAtSetRowMajor(t *testing.T) {
	m := New(2, 3)
	v := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(v, i, j)
			v++
		}
	}
	want := []float64{0, 1, 2, 3, 4, 5}
	for i, w := range want {
		if m.Data()[i] != w {
			t.Fatalf("row-major layout wrong at %d: got %v", i, m.Data())
		}
	}
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v, want 5", m.At(1, 2))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestNonPositiveDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dim did not panic")
		}
	}()
	New(0)
}

func TestFromRowsAndRow(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %v, want [3 2]", m.Shape())
	}
	r := m.Row(1)
	if r.At(0) != 3 || r.At(1) != 4 {
		t.Errorf("Row(1) = %v", r)
	}
	m.SetRow(2, FromSlice([]float64{9, 10}))
	if m.At(2, 0) != 9 || m.At(2, 1) != 10 {
		t.Errorf("SetRow failed: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3})
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6})
	m := a.Reshape(2, 3)
	if m.At(1, 0) != 4 {
		t.Errorf("Reshape data order wrong: %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	a.Reshape(4)
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("MatMul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulSparseSkipMatchesDense(t *testing.T) {
	// The zero-skip fast path must give identical results to the naive triple loop.
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 8, 5)
	// Make a sparse (indicator-like).
	for i := range a.Data() {
		if rng.Float64() < 0.6 {
			a.Data()[i] = 0
		}
	}
	b := Randn(rng, 1, 5, 4)
	got := MatMul(a, b)
	want := New(8, 4)
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 5; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(s, i, j)
		}
	}
	for i := range got.Data() {
		if !almostEq(got.Data()[i], want.Data()[i], 1e-12) {
			t.Fatalf("sparse-skip matmul diverges at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestScalarHelpers(t *testing.T) {
	s := Scalar(3.5)
	if s.Item() != 3.5 || s.Rank() != 0 {
		t.Errorf("Scalar = %v", s)
	}
	f := Full(2, 2, 2)
	if f.Sum() != 8 {
		t.Errorf("Full sum = %v, want 8", f.Sum())
	}
}

func TestAddScaledAndNorms(t *testing.T) {
	a := FromSlice([]float64{3, 4})
	b := FromSlice([]float64{1, 1})
	a.AddScaled(2, b)
	if a.At(0) != 5 || a.At(1) != 6 {
		t.Errorf("AddScaled = %v", a)
	}
	c := FromSlice([]float64{3, 4})
	if c.Norm2() != 5 {
		t.Errorf("Norm2 = %v, want 5", c.Norm2())
	}
	if c.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v, want 4", c.MaxAbs())
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float64{1, math.NaN()})
	if !a.HasNaN() {
		t.Error("HasNaN missed NaN")
	}
	b := FromSlice([]float64{1, math.Inf(1)})
	if !b.HasNaN() {
		t.Error("HasNaN missed Inf")
	}
	c := FromSlice([]float64{1, 2})
	if c.HasNaN() {
		t.Error("HasNaN false positive")
	}
}

// Property: matmul is associative-compatible with transpose: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		lhs := transpose(MatMul(a, b))
		rhs := MatMul(transpose(b), transpose(a))
		for i := range lhs.Data() {
			if !almostEq(lhs.Data()[i], rhs.Data()[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Reshape preserves the element multiset (here: sum and order).
func TestReshapeRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromSlice(vals)
		b := a.Reshape(len(vals), 1).Reshape(len(vals))
		for i := range vals {
			v := b.At(i)
			if v != vals[i] && !(math.IsNaN(v) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := Rand(rand.New(rand.NewSource(1)), 0.5, 10)
	b := Rand(rand.New(rand.NewSource(1)), 0.5, 10)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("Rand not deterministic for equal seeds")
		}
		if a.Data()[i] < -0.5 || a.Data()[i] >= 0.5 {
			t.Fatalf("Rand out of range: %v", a.Data()[i])
		}
	}
}
