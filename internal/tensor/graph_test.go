package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGraphForwardSimple(t *testing.T) {
	g := NewGraph()
	x := g.Placeholder("x")
	w := g.Variable("w", FromSlice([]float64{2, 3}))
	y := g.Sum(g.Mul(x, w)) // sum(x*w)
	if err := g.Run(Feed{x, FromSlice([]float64{4, 5})}); err != nil {
		t.Fatal(err)
	}
	if got := y.Value().Item(); got != 2*4+3*5 {
		t.Errorf("forward = %v, want 23", got)
	}
}

func TestGraphUnfedPlaceholderError(t *testing.T) {
	g := NewGraph()
	x := g.Placeholder("x")
	_ = g.Sum(x)
	if err := g.Run(); err == nil {
		t.Fatal("Run with unfed placeholder should error")
	}
}

func TestGraphFeedNonPlaceholderError(t *testing.T) {
	g := NewGraph()
	v := g.Variable("v", Scalar(1))
	if err := g.Run(Feed{v, Scalar(2)}); err == nil {
		t.Fatal("feeding a variable should error")
	}
}

func TestGraphCrossGraphInputPanics(t *testing.T) {
	g1 := NewGraph()
	g2 := NewGraph()
	a := g1.Variable("a", Scalar(1))
	defer func() {
		if recover() == nil {
			t.Fatal("cross-graph input did not panic")
		}
	}()
	g2.Neg(a)
}

func TestBackwardChainRule(t *testing.T) {
	// loss = mean((x*w + b)^2); check dloss/dw and dloss/db analytically.
	g := NewGraph()
	x := g.Placeholder("x")
	w := g.Variable("w", Scalar(3))
	b := g.Variable("b", Scalar(1))
	pred := g.Add(g.Mul(x, w), b)
	loss := g.Mean(g.Square(pred))
	xs := FromSlice([]float64{1, 2})
	if err := g.Run(Feed{x, xs}); err != nil {
		t.Fatal(err)
	}
	if err := g.Backward(loss); err != nil {
		t.Fatal(err)
	}
	// preds: 4, 7. dloss/dpred_i = 2*pred_i/2 = pred_i. dw = sum(pred_i*x_i)=4+14=18.
	if got := w.Grad().Item(); !almostEq(got, 18, 1e-9) {
		t.Errorf("dw = %v, want 18", got)
	}
	if got := b.Grad().Item(); !almostEq(got, 11, 1e-9) {
		t.Errorf("db = %v, want 11", got)
	}
}

func TestBackwardNonScalarLossError(t *testing.T) {
	g := NewGraph()
	v := g.Variable("v", FromSlice([]float64{1, 2}))
	y := g.Neg(v)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g.Backward(y); err == nil {
		t.Fatal("Backward on non-scalar should error")
	}
}

func TestBackwardFanOutAccumulates(t *testing.T) {
	// loss = sum(v) + sum(v): gradient should be 2 for each coordinate.
	g := NewGraph()
	v := g.Variable("v", FromSlice([]float64{1, 2, 3}))
	loss := g.Add(g.Sum(v), g.Sum(v))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g.Backward(loss); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := v.Grad().At(i); got != 2 {
			t.Errorf("grad[%d] = %v, want 2", i, got)
		}
	}
}

// Every elementwise op's autodiff gradient must match numeric differentiation.
func TestGradCheckUnaryOps(t *testing.T) {
	ops := []struct {
		name  string
		build func(g *Graph, v *Node) *Node
		init  []float64
	}{
		{"neg", func(g *Graph, v *Node) *Node { return g.Neg(v) }, []float64{0.3, -1.2, 2}},
		{"exp", func(g *Graph, v *Node) *Node { return g.Exp(v) }, []float64{0.3, -1.2, 1.5}},
		{"log", func(g *Graph, v *Node) *Node { return g.Log(v) }, []float64{0.3, 1.2, 2}},
		{"sigmoid", func(g *Graph, v *Node) *Node { return g.Sigmoid(v) }, []float64{0.3, -1.2, 2}},
		{"softplus", func(g *Graph, v *Node) *Node { return g.Softplus(v) }, []float64{0.3, -1.2, 2}},
		{"tanh", func(g *Graph, v *Node) *Node { return g.Tanh(v) }, []float64{0.3, -1.2, 2}},
		{"relu", func(g *Graph, v *Node) *Node { return g.ReLU(v) }, []float64{0.3, -1.2, 2}},
		{"square", func(g *Graph, v *Node) *Node { return g.Square(v) }, []float64{0.3, -1.2, 2}},
		{"scale", func(g *Graph, v *Node) *Node { return g.Scale(v, -2.5) }, []float64{0.3, -1.2, 2}},
		{"addconst", func(g *Graph, v *Node) *Node { return g.AddConst(v, 4) }, []float64{0.3, -1.2, 2}},
	}
	for _, c := range ops {
		t.Run(c.name, func(t *testing.T) {
			g := NewGraph()
			v := g.Variable("v", FromSlice(c.init))
			loss := g.Sum(c.build(g, v))
			if err := CheckGradients(g, loss, 1e-6, 1e-5); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGradCheckBinaryOpsAllBroadcastModes(t *testing.T) {
	type buildFn func(g *Graph, a, b *Node) *Node
	ops := map[string]buildFn{
		"add":       func(g *Graph, a, b *Node) *Node { return g.Add(a, b) },
		"sub":       func(g *Graph, a, b *Node) *Node { return g.Sub(a, b) },
		"mul":       func(g *Graph, a, b *Node) *Node { return g.Mul(a, b) },
		"div":       func(g *Graph, a, b *Node) *Node { return g.Div(a, b) },
		"logaddexp": func(g *Graph, a, b *Node) *Node { return g.LogAddExp(a, b) },
	}
	shapes := []struct {
		name string
		a, b *Tensor
	}{
		{"same", FromRows([][]float64{{0.5, 1.5}, {2.5, 0.7}}), FromRows([][]float64{{1.1, 0.4}, {0.9, 2.2}})},
		{"scalarB", FromRows([][]float64{{0.5, 1.5}, {2.5, 0.7}}), Scalar(1.3)},
		{"scalarA", Scalar(0.8), FromSlice([]float64{1.5, 2.5, 0.5})},
		{"rowB", FromRows([][]float64{{0.5, 1.5}, {2.5, 0.7}}), FromSlice([]float64{1.2, 0.6})},
	}
	for name, build := range ops {
		for _, sh := range shapes {
			t.Run(name+"/"+sh.name, func(t *testing.T) {
				g := NewGraph()
				a := g.Variable("a", sh.a)
				b := g.Variable("b", sh.b)
				loss := g.Sum(build(g, a, b))
				if err := CheckGradients(g, loss, 1e-6, 1e-4); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func TestGradCheckMatMulAndReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGraph()
	a := g.Variable("a", Randn(rng, 0.5, 3, 4))
	b := g.Variable("b", Randn(rng, 0.5, 4, 2))
	loss := g.Sum(g.Square(g.MatMul(a, b)))
	if err := CheckGradients(g, loss, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}

	g2 := NewGraph()
	m := g2.Variable("m", Randn(rng, 0.5, 3, 4))
	l2 := g2.Sum(g2.Square(g2.SumAxis(m, 0)))
	if err := CheckGradients(g2, l2, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
	g3 := NewGraph()
	m3 := g3.Variable("m", Randn(rng, 0.5, 3, 4))
	l3 := g3.Sum(g3.Square(g3.SumAxis(m3, 1)))
	if err := CheckGradients(g3, l3, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
	g4 := NewGraph()
	v4 := g4.Variable("v", Randn(rng, 0.5, 5))
	l4 := g4.Mean(g4.Square(v4))
	if err := CheckGradients(g4, l4, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
}

func TestGradCheckMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGraph()
	a := g.Variable("a", Randn(rng, 0.7, 4, 3))
	x := g.Variable("x", Randn(rng, 0.7, 3))
	loss := g.Sum(g.Square(g.MatVec(a, x)))
	if err := CheckGradients(g, loss, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
}

// Property: for random small graphs mixing ops, autodiff == numeric gradient.
func TestGradCheckRandomCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		v := g.Variable("v", Randn(rng, 0.8, 4))
		w := g.Variable("w", Randn(rng, 0.8, 4))
		cur := g.Add(v, w)
		for i := 0; i < 3; i++ {
			switch rng.Intn(5) {
			case 0:
				cur = g.Sigmoid(cur)
			case 1:
				cur = g.Softplus(cur)
			case 2:
				cur = g.Tanh(cur)
			case 3:
				cur = g.Mul(cur, v)
			case 4:
				cur = g.LogAddExp(cur, w)
			}
		}
		loss := g.Mean(g.Square(cur))
		return CheckGradients(g, loss, 1e-6, 1e-3) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLogAddExpStability(t *testing.T) {
	g := NewGraph()
	a := g.Variable("a", FromSlice([]float64{1000, -1000}))
	b := g.Variable("b", FromSlice([]float64{999, -999}))
	y := g.LogAddExp(a, b)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if y.Value().HasNaN() {
		t.Fatalf("LogAddExp overflowed: %v", y.Value())
	}
	// log(e^1000 + e^999) = 1000 + log(1+e^-1) ≈ 1000.3133
	if got := y.Value().At(0); !almostEq(got, 1000+math.Log(1+math.Exp(-1)), 1e-9) {
		t.Errorf("LogAddExp(1000,999) = %v", got)
	}
}

func TestMinimizeConvergesQuadratic(t *testing.T) {
	// Minimize (w-5)^2 from w=0; SGD should converge to 5.
	g := NewGraph()
	w := g.Variable("w", Scalar(0))
	loss := g.Square(g.AddConst(w, -5))
	opt := &SGD{LR: 0.1}
	var last float64
	for i := 0; i < 200; i++ {
		l, err := g.Minimize(loss, opt)
		if err != nil {
			t.Fatal(err)
		}
		last = l
	}
	if !almostEq(w.Value().Item(), 5, 1e-3) {
		t.Errorf("w = %v after SGD, want 5 (final loss %v)", w.Value().Item(), last)
	}
}

func TestOptimizersConvergeOnLeastSquares(t *testing.T) {
	// Recover w* = (1.5, -2) from exact linear observations.
	rng := rand.New(rand.NewSource(3))
	xs := Randn(rng, 1, 50, 2)
	wTrue := FromSlice([]float64{1.5, -2})
	ys := New(50)
	for i := 0; i < 50; i++ {
		ys.Set(xs.At(i, 0)*wTrue.At(0)+xs.At(i, 1)*wTrue.At(1), i)
	}
	mk := func() (*Graph, *Node, *Node) {
		g := NewGraph()
		w := g.Variable("w", New(2))
		x := g.Const("x", xs)
		y := g.Const("y", ys)
		loss := g.Mean(g.Square(g.Sub(g.MatVec(x, w), y)))
		return g, loss, w
	}
	opts := map[string]func() Optimizer{
		"sgd":      func() Optimizer { return &SGD{LR: 0.3} },
		"momentum": func() Optimizer { return &Momentum{LR: 0.05, Mu: 0.9} },
		"adagrad":  func() Optimizer { return &Adagrad{LR: 0.5} },
		"adam":     func() Optimizer { return &Adam{LR: 0.1} },
		"gradclip": func() Optimizer { return &GradClip{MaxNorm: 10, Inner: &SGD{LR: 0.3}} },
	}
	for name, mkOpt := range opts {
		t.Run(name, func(t *testing.T) {
			g, loss, w := mk()
			opt := mkOpt()
			for i := 0; i < 500; i++ {
				if _, err := g.Minimize(loss, opt); err != nil {
					t.Fatal(err)
				}
			}
			if !almostEq(w.Value().At(0), 1.5, 0.05) || !almostEq(w.Value().At(1), -2, 0.05) {
				t.Errorf("%s: w = %v, want [1.5 -2]", name, w.Value())
			}
		})
	}
}

func TestSetValueOnlyVariables(t *testing.T) {
	g := NewGraph()
	c := g.Const("c", Scalar(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetValue on const did not panic")
		}
	}()
	c.SetValue(Scalar(2))
}

func TestSummaryListsNodes(t *testing.T) {
	g := NewGraph()
	v := g.Variable("weights", Scalar(1))
	_ = g.Neg(v)
	s := g.Summary()
	if !strings.Contains(s, "weights") || !strings.Contains(s, "neg") {
		t.Errorf("Summary missing nodes:\n%s", s)
	}
}

func TestBackwardSkipsUnrelatedSubgraph(t *testing.T) {
	g := NewGraph()
	v := g.Variable("v", Scalar(2))
	u := g.Variable("u", Scalar(3))
	_ = g.Square(u) // unrelated branch
	loss := g.Square(v)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if u.Grad() != nil {
		t.Error("gradient propagated into unrelated subgraph")
	}
	if v.Grad() == nil || !almostEq(v.Grad().Item(), 4, 1e-12) {
		t.Errorf("dv = %v, want 4", v.Grad())
	}
}
