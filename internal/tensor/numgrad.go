package tensor

import "fmt"

// NumericGrad estimates d(loss)/d(v) for variable v by central finite
// differences, re-running the graph forward for each perturbed coordinate.
// It is O(size(v)) forward passes and intended only for testing autodiff.
func NumericGrad(g *Graph, loss, v *Node, eps float64, feeds ...Feed) (*Tensor, error) {
	if v.kind != KindVariable {
		return nil, fmt.Errorf("tensor: NumericGrad target %s is not a variable", v)
	}
	if eps <= 0 {
		eps = 1e-6
	}
	grad := New(v.value.Shape()...)
	for i := range v.value.data {
		orig := v.value.data[i]

		v.value.data[i] = orig + eps
		if err := g.Run(feeds...); err != nil {
			return nil, err
		}
		up := loss.value.Item()

		v.value.data[i] = orig - eps
		if err := g.Run(feeds...); err != nil {
			return nil, err
		}
		down := loss.value.Item()

		v.value.data[i] = orig
		grad.data[i] = (up - down) / (2 * eps)
	}
	// Restore forward values to the unperturbed point.
	if err := g.Run(feeds...); err != nil {
		return nil, err
	}
	return grad, nil
}

// CheckGradients verifies that autodiff gradients match numeric gradients for
// every variable in the graph, within absolute tolerance tol. It returns a
// descriptive error on the first mismatch.
func CheckGradients(g *Graph, loss *Node, eps, tol float64, feeds ...Feed) error {
	if err := g.Run(feeds...); err != nil {
		return err
	}
	if err := g.Backward(loss); err != nil {
		return err
	}
	// Snapshot autodiff grads first: NumericGrad re-runs the graph.
	auto := make(map[int]*Tensor)
	for _, v := range g.Variables() {
		if v.grad != nil {
			auto[v.id] = v.grad.Clone()
		}
	}
	for _, v := range g.Variables() {
		ag, ok := auto[v.id]
		if !ok {
			continue
		}
		ng, err := NumericGrad(g, loss, v, eps, feeds...)
		if err != nil {
			return err
		}
		for i := range ag.data {
			diff := ag.data[i] - ng.data[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > tol {
				return fmt.Errorf("tensor: gradient mismatch on %s[%d]: autodiff=%g numeric=%g (|Δ|=%g > %g)",
					v, i, ag.data[i], ng.data[i], diff, tol)
			}
		}
	}
	return nil
}
