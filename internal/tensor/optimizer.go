package tensor

import "math"

// Optimizer applies one parameter update given freshly computed gradients.
// Implementations keep per-variable state keyed by node id, so one optimizer
// must be used with one graph.
type Optimizer interface {
	// Step updates each variable in place using its Grad. Variables whose
	// Grad is nil are skipped.
	Step(vars []*Node)
}

// SGD is plain stochastic gradient descent: v -= lr * g.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (o *SGD) Step(vars []*Node) {
	for _, v := range vars {
		if v.grad == nil {
			continue
		}
		v.value.AddScaled(-o.LR, v.grad)
	}
}

// Momentum is SGD with classical momentum: m = mu*m + g; v -= lr*m.
type Momentum struct {
	LR float64
	Mu float64 // momentum coefficient, typically 0.9

	velocity map[int]*Tensor
}

// Step implements Optimizer.
func (o *Momentum) Step(vars []*Node) {
	if o.velocity == nil {
		o.velocity = make(map[int]*Tensor)
	}
	for _, v := range vars {
		if v.grad == nil {
			continue
		}
		m, ok := o.velocity[v.id]
		if !ok {
			m = New(v.value.Shape()...)
			o.velocity[v.id] = m
		}
		m.ScaleBy(o.Mu)
		m.AddScaled(1, v.grad)
		v.value.AddScaled(-o.LR, m)
	}
}

// Adagrad adapts per-coordinate learning rates by accumulated squared
// gradients: h += g²; v -= lr * g / (sqrt(h)+eps).
type Adagrad struct {
	LR  float64
	Eps float64 // numerical floor; 1e-8 if zero

	accum map[int]*Tensor
}

// Step implements Optimizer.
func (o *Adagrad) Step(vars []*Node) {
	if o.accum == nil {
		o.accum = make(map[int]*Tensor)
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	for _, v := range vars {
		if v.grad == nil {
			continue
		}
		h, ok := o.accum[v.id]
		if !ok {
			h = New(v.value.Shape()...)
			o.accum[v.id] = h
		}
		for i, g := range v.grad.data {
			h.data[i] += g * g
			v.value.data[i] -= o.LR * g / (math.Sqrt(h.data[i]) + eps)
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015) with bias correction.
type Adam struct {
	LR    float64 // step size; 0.001 is a common default
	Beta1 float64 // first-moment decay; 0.9 if zero
	Beta2 float64 // second-moment decay; 0.999 if zero
	Eps   float64 // numerical floor; 1e-8 if zero

	t  int
	m1 map[int]*Tensor
	m2 map[int]*Tensor
}

// Step implements Optimizer.
func (o *Adam) Step(vars []*Node) {
	if o.m1 == nil {
		o.m1 = make(map[int]*Tensor)
		o.m2 = make(map[int]*Tensor)
	}
	b1, b2, eps := o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	for _, v := range vars {
		if v.grad == nil {
			continue
		}
		m, ok := o.m1[v.id]
		if !ok {
			m = New(v.value.Shape()...)
			o.m1[v.id] = m
			o.m2[v.id] = New(v.value.Shape()...)
		}
		s := o.m2[v.id]
		for i, g := range v.grad.data {
			m.data[i] = b1*m.data[i] + (1-b1)*g
			s.data[i] = b2*s.data[i] + (1-b2)*g*g
			mh := m.data[i] / c1
			sh := s.data[i] / c2
			v.value.data[i] -= o.LR * mh / (math.Sqrt(sh) + eps)
		}
	}
}

// GradClip wraps another optimizer and clips each variable's gradient to a
// maximum L2 norm before the wrapped step. Useful for the DNN trainer.
type GradClip struct {
	MaxNorm float64
	Inner   Optimizer
}

// Step implements Optimizer.
func (o *GradClip) Step(vars []*Node) {
	for _, v := range vars {
		if v.grad == nil {
			continue
		}
		n := v.grad.Norm2()
		if n > o.MaxNorm && n > 0 {
			v.grad.ScaleBy(o.MaxNorm / n)
		}
	}
	o.Inner.Step(vars)
}
