package lf

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/nlp"
)

func stageDocs(t *testing.T, fs dfs.FS, docs []*corpus.Document, shards int) {
	t.Helper()
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Stage[*corpus.Document](fs, "in/docs", recs, shards); err != nil {
		t.Fatal(err)
	}
}

func docExecutor(fs dfs.FS) *Executor[*corpus.Document] {
	return &Executor[*corpus.Document]{
		FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
		Decode:      corpus.UnmarshalDocument,
		Parallelism: 4,
	}
}

func testDocs() []*corpus.Document {
	return []*corpus.Document{
		{ID: "0", Title: "Ava Stone premiere", Body: "redcarpet gossip paparazzi", URL: "https://starbeat.example/1", Language: "en"},
		{ID: "1", Title: "quarterly earnings", Body: "dividend yield inflation", URL: "https://newsroom.example/2", Language: "en"},
		{ID: "2", Title: "league season", Body: "coach stadium playoff", URL: "https://metro.example/3", Language: "en"},
		{ID: "3", Title: "Howard Fleck policy", Body: "public official update", URL: "https://newsroom.example/4", Language: "en"},
		{ID: "4", Title: "blank item", Body: "note brief source", URL: "https://docs.example/5", Language: "en"},
	}
}

func keywordLF() Func[*corpus.Document] {
	return Func[*corpus.Document]{
		Meta: Meta{Name: "keyword_gossip", Category: ContentHeuristic, Servable: true},
		Vote: func(d *corpus.Document) labelmodel.Label {
			if strings.Contains(d.Body, "gossip") {
				return labelmodel.Positive
			}
			return labelmodel.Abstain
		},
	}
}

func nerLF() NLPFunc[*corpus.Document] {
	return NLPFunc[*corpus.Document]{
		Meta:      Meta{Name: "ner_no_person", Category: ModelBased, Servable: false},
		NewServer: func() *nlp.Server { return nlp.NewServer(0, 1) },
		GetText:   func(d *corpus.Document) string { return d.Text() },
		GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
			if len(res.People()) == 0 {
				return labelmodel.Negative
			}
			return labelmodel.Abstain
		},
	}
}

func TestExecuteAssemblesMatrixInInputOrder(t *testing.T) {
	fs := dfs.NewMem()
	docs := testDocs()
	stageDocs(t, fs, docs, 2)
	mx, rep, err := docExecutor(fs).Execute([]Runner[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if mx.NumExamples() != 5 || mx.NumFuncs() != 2 {
		t.Fatalf("matrix %dx%d", mx.NumExamples(), mx.NumFuncs())
	}
	// keyword LF: only doc 0 contains "gossip".
	want0 := []labelmodel.Label{labelmodel.Positive, labelmodel.Abstain, labelmodel.Abstain, labelmodel.Abstain, labelmodel.Abstain}
	for i, w := range want0 {
		if mx.At(i, 0) != w {
			t.Errorf("keyword vote[%d] = %v, want %v", i, mx.At(i, 0), w)
		}
	}
	// NER LF: docs 0 and 3 mention persons (abstain); others Negative —
	// the paper's celebrity example verbatim.
	want1 := []labelmodel.Label{labelmodel.Abstain, labelmodel.Negative, labelmodel.Negative, labelmodel.Abstain, labelmodel.Negative}
	for i, w := range want1 {
		if mx.At(i, 1) != w {
			t.Errorf("ner vote[%d] = %v, want %v", i, mx.At(i, 1), w)
		}
	}
	if rep.Examples != 5 {
		t.Errorf("report examples = %d", rep.Examples)
	}
	if rep.PerLF[0].Positives != 1 || rep.PerLF[0].Abstains != 4 {
		t.Errorf("keyword report = %+v", rep.PerLF[0])
	}
	if rep.PerLF[1].Negatives != 3 {
		t.Errorf("ner report = %+v", rep.PerLF[1])
	}
}

func TestExecuteOrderInvariantToShardCount(t *testing.T) {
	docs := testDocs()
	var base []labelmodel.Label
	for _, shards := range []int{1, 2, 3, 5} {
		fs := dfs.NewMem()
		stageDocs(t, fs, docs, shards)
		mx, _, err := docExecutor(fs).Execute([]Runner[*corpus.Document]{keywordLF()})
		if err != nil {
			t.Fatal(err)
		}
		votes := make([]labelmodel.Label, mx.NumExamples())
		for i := range votes {
			votes[i] = mx.At(i, 0)
		}
		if base == nil {
			base = votes
			continue
		}
		for i := range votes {
			if votes[i] != base[i] {
				t.Fatalf("shards=%d: vote order differs at %d", shards, i)
			}
		}
	}
}

func TestNLPServerLaunchedPerTask(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 3)
	_, rep, err := docExecutor(fs).Execute([]Runner[*corpus.Document]{nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerLF[0].ModelServersLaunched != 3 {
		t.Errorf("model servers launched = %d, want 3 (one per map task)",
			rep.PerLF[0].ModelServersLaunched)
	}
}

func TestExecuteValidation(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	e := docExecutor(fs)
	if _, _, err := e.Execute(nil); err == nil {
		t.Error("empty runner set accepted")
	}
	if _, _, err := e.Execute([]Runner[*corpus.Document]{keywordLF(), keywordLF()}); err == nil {
		t.Error("duplicate names accepted")
	}
	anon := keywordLF()
	anon.Meta.Name = ""
	if _, _, err := e.Execute([]Runner[*corpus.Document]{anon}); err == nil {
		t.Error("empty name accepted")
	}
	bad := docExecutor(fs)
	bad.Decode = nil
	if _, _, err := bad.Execute([]Runner[*corpus.Document]{keywordLF()}); err == nil {
		t.Error("nil decoder accepted")
	}
}

func TestExecuteSurvivesWorkerFailures(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	e := docExecutor(fs)
	e.MaxAttempts = 3
	e.FailureHook = func(taskID string, attempt int) error {
		if attempt == 1 {
			return errors.New("injected crash")
		}
		return nil
	}
	mx, _, err := e.Execute([]Runner[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0, 0) != labelmodel.Positive {
		t.Error("votes wrong after worker failures")
	}
}

func TestExecutePermanentFailure(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	e := docExecutor(fs)
	e.MaxAttempts = 2
	e.FailureHook = func(string, int) error { return errors.New("down") }
	if _, _, err := e.Execute([]Runner[*corpus.Document]{keywordLF()}); err == nil {
		t.Error("permanent failure not surfaced")
	}
}

func TestInvalidVoteRejected(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	bad := Func[*corpus.Document]{
		Meta: Meta{Name: "bad"},
		Vote: func(*corpus.Document) labelmodel.Label { return labelmodel.Label(7) },
	}
	e := docExecutor(fs)
	e.MaxAttempts = 1
	if _, _, err := e.Execute([]Runner[*corpus.Document]{bad}); err == nil {
		t.Error("invalid vote accepted")
	}
}

func TestDecodeErrorSurfaced(t *testing.T) {
	fs := dfs.NewMem()
	if err := Stage[*corpus.Document](fs, "in/docs", [][]byte{[]byte("not json")}, 1); err != nil {
		t.Fatal(err)
	}
	e := docExecutor(fs)
	e.MaxAttempts = 1
	if _, _, err := e.Execute([]Runner[*corpus.Document]{keywordLF()}); err == nil {
		t.Error("decode error swallowed")
	}
}

func TestCensusAndSubsets(t *testing.T) {
	runners := []Runner[*corpus.Document]{keywordLF(), nerLF()}
	census := Census(runners)
	if census[ContentHeuristic] != 1 || census[ModelBased] != 1 {
		t.Errorf("census = %v", census)
	}
	servable := ServableIndices(runners)
	if len(servable) != 1 || servable[0] != 0 {
		t.Errorf("servable = %v", servable)
	}
	names := Names(runners)
	if names[0] != "keyword_gossip" || names[1] != "ner_no_person" {
		t.Errorf("names = %v", names)
	}
}

func TestVoteEncodingRoundTrip(t *testing.T) {
	for _, v := range []labelmodel.Label{labelmodel.Negative, labelmodel.Abstain, labelmodel.Positive} {
		got, err := decodeVote(encodeVote(v))
		if err != nil || got != v {
			t.Errorf("round trip %v: %v, %v", v, got, err)
		}
	}
	if _, err := decodeVote([]byte{7}); err == nil {
		t.Error("invalid stored vote accepted")
	}
	if _, err := decodeVote([]byte{1, 2}); err == nil {
		t.Error("long record accepted")
	}
}
