package lf

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/nlp"
	lfapi "repro/pkg/drybell/lf"
)

func stageDocs(t *testing.T, fs dfs.FS, docs []*corpus.Document, shards int) {
	t.Helper()
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Stage[*corpus.Document](fs, "in/docs", recs, shards); err != nil {
		t.Fatal(err)
	}
}

func docExecutor(fs dfs.FS) *Executor[*corpus.Document] {
	return &Executor[*corpus.Document]{
		FS: fs, InputBase: "in/docs", OutputPrefix: "labels",
		Decode:      corpus.UnmarshalDocument,
		Parallelism: 4,
	}
}

func testDocs() []*corpus.Document {
	return []*corpus.Document{
		{ID: "0", Title: "Ava Stone premiere", Body: "redcarpet gossip paparazzi", URL: "https://starbeat.example/1", Language: "en"},
		{ID: "1", Title: "quarterly earnings", Body: "dividend yield inflation", URL: "https://newsroom.example/2", Language: "en"},
		{ID: "2", Title: "league season", Body: "coach stadium playoff", URL: "https://metro.example/3", Language: "en"},
		{ID: "3", Title: "Howard Fleck policy", Body: "public official update", URL: "https://newsroom.example/4", Language: "en"},
		{ID: "4", Title: "blank item", Body: "note brief source", URL: "https://docs.example/5", Language: "en"},
	}
}

func keywordLF() lfapi.LF[*corpus.Document] {
	return lfapi.New(
		Meta{Name: "keyword_gossip", Category: ContentHeuristic, Servable: true},
		func(d *corpus.Document) labelmodel.Label {
			if strings.Contains(d.Body, "gossip") {
				return labelmodel.Positive
			}
			return labelmodel.Abstain
		},
	)
}

func nerLF() lfapi.LF[*corpus.Document] {
	return &lfapi.NLPFunc[*corpus.Document]{
		Meta:      Meta{Name: "ner_no_person", Category: ModelBased, Servable: false},
		NewServer: func() *nlp.Server { return nlp.NewServer(0, 1) },
		GetText:   func(d *corpus.Document) string { return d.Text() },
		GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
			if len(res.People()) == 0 {
				return labelmodel.Negative
			}
			return labelmodel.Abstain
		},
	}
}

func TestExecuteAssemblesMatrixInInputOrder(t *testing.T) {
	fs := dfs.NewMem()
	docs := testDocs()
	stageDocs(t, fs, docs, 2)
	mx, rep, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if mx.NumExamples() != 5 || mx.NumFuncs() != 2 {
		t.Fatalf("matrix %dx%d", mx.NumExamples(), mx.NumFuncs())
	}
	// keyword LF: only doc 0 contains "gossip".
	want0 := []labelmodel.Label{labelmodel.Positive, labelmodel.Abstain, labelmodel.Abstain, labelmodel.Abstain, labelmodel.Abstain}
	for i, w := range want0 {
		if mx.At(i, 0) != w {
			t.Errorf("keyword vote[%d] = %v, want %v", i, mx.At(i, 0), w)
		}
	}
	// NER LF: docs 0 and 3 mention persons (abstain); others Negative —
	// the paper's celebrity example verbatim.
	want1 := []labelmodel.Label{labelmodel.Abstain, labelmodel.Negative, labelmodel.Negative, labelmodel.Abstain, labelmodel.Negative}
	for i, w := range want1 {
		if mx.At(i, 1) != w {
			t.Errorf("ner vote[%d] = %v, want %v", i, mx.At(i, 1), w)
		}
	}
	if rep.Examples != 5 {
		t.Errorf("report examples = %d", rep.Examples)
	}
	if rep.PerLF[0].Positives != 1 || rep.PerLF[0].Abstains != 4 {
		t.Errorf("keyword report = %+v", rep.PerLF[0])
	}
	if rep.PerLF[1].Negatives != 3 {
		t.Errorf("ner report = %+v", rep.PerLF[1])
	}
}

func TestExecuteOrderInvariantToShardCount(t *testing.T) {
	docs := testDocs()
	var base []labelmodel.Label
	for _, shards := range []int{1, 2, 3, 5} {
		fs := dfs.NewMem()
		stageDocs(t, fs, docs, shards)
		mx, _, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{keywordLF()})
		if err != nil {
			t.Fatal(err)
		}
		votes := make([]labelmodel.Label, mx.NumExamples())
		for i := range votes {
			votes[i] = mx.At(i, 0)
		}
		if base == nil {
			base = votes
			continue
		}
		for i := range votes {
			if votes[i] != base[i] {
				t.Fatalf("shards=%d: vote order differs at %d", shards, i)
			}
		}
	}
}

// TestScalarAndBatchPathsAgree runs the same staged corpus through the
// vectorized MapBatch path and the record-at-a-time path and requires
// identical matrices and vote counters.
func TestScalarAndBatchPathsAgree(t *testing.T) {
	docs := testDocs()
	run := func(noBatch bool) (*labelmodel.Matrix, *Report) {
		fs := dfs.NewMem()
		stageDocs(t, fs, docs, 3)
		e := docExecutor(fs)
		e.NoBatch = noBatch
		mx, rep, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
		if err != nil {
			t.Fatal(err)
		}
		return mx, rep
	}
	bmx, brep := run(false)
	smx, srep := run(true)
	for i := 0; i < bmx.NumExamples(); i++ {
		for j := 0; j < bmx.NumFuncs(); j++ {
			if bmx.At(i, j) != smx.At(i, j) {
				t.Fatalf("batch and scalar disagree at (%d,%d): %v vs %v", i, j, bmx.At(i, j), smx.At(i, j))
			}
		}
	}
	for j := range brep.PerLF {
		if brep.PerLF[j].Positives != srep.PerLF[j].Positives ||
			brep.PerLF[j].Negatives != srep.PerLF[j].Negatives ||
			brep.PerLF[j].Abstains != srep.PerLF[j].Abstains {
			t.Fatalf("vote counters diverge for %s: %+v vs %+v", brep.PerLF[j].Name, brep.PerLF[j], srep.PerLF[j])
		}
	}
}

func TestNLPServerLaunchedPerTask(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 3)
	_, rep, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerLF[0].ModelServersLaunched != 3 {
		t.Errorf("model servers launched = %d, want 3 (one per map task)",
			rep.PerLF[0].ModelServersLaunched)
	}
}

func TestExecuteValidation(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	e := docExecutor(fs)
	if _, _, err := e.Execute(nil); err == nil {
		t.Error("empty LF set accepted")
	}
	if _, _, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), keywordLF()}); err == nil {
		t.Error("duplicate names accepted")
	} else if !strings.Contains(err.Error(), "keyword_gossip") {
		t.Errorf("duplicate-name error does not name the function: %v", err)
	}
	anon := lfapi.New(Meta{}, func(*corpus.Document) labelmodel.Label { return labelmodel.Abstain })
	if _, _, err := e.Execute([]lfapi.LF[*corpus.Document]{anon}); err == nil {
		t.Error("empty name accepted")
	}
	bad := docExecutor(fs)
	bad.Decode = nil
	if _, _, err := bad.Execute([]lfapi.LF[*corpus.Document]{keywordLF()}); err == nil {
		t.Error("nil decoder accepted")
	}
}

func TestExecuteSurvivesWorkerFailures(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	e := docExecutor(fs)
	e.MaxAttempts = 3
	e.FailureHook = func(taskID string, attempt int) error {
		if attempt == 1 {
			return errors.New("injected crash")
		}
		return nil
	}
	mx, _, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0, 0) != labelmodel.Positive {
		t.Error("votes wrong after worker failures")
	}
}

func TestExecutePermanentFailure(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	e := docExecutor(fs)
	e.MaxAttempts = 2
	e.FailureHook = func(string, int) error { return errors.New("down") }
	if _, _, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF()}); err == nil {
		t.Error("permanent failure not surfaced")
	}
}

func TestInvalidVoteRejected(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	bad := lfapi.New(Meta{Name: "bad"}, func(*corpus.Document) labelmodel.Label { return labelmodel.Label(7) })
	e := docExecutor(fs)
	e.MaxAttempts = 1
	_, _, err := e.Execute([]lfapi.LF[*corpus.Document]{bad})
	if err == nil {
		t.Fatal("invalid vote accepted")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("invalid-vote error does not name the function: %v", err)
	}
}

func TestDecodeErrorSurfaced(t *testing.T) {
	fs := dfs.NewMem()
	if err := Stage[*corpus.Document](fs, "in/docs", [][]byte{[]byte("not json")}, 1); err != nil {
		t.Fatal(err)
	}
	e := docExecutor(fs)
	e.MaxAttempts = 1
	if _, _, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF()}); err == nil {
		t.Error("decode error swallowed")
	}
}

// TestAggregateTwoPassExecution stages a corpus and runs an aggregation-
// based function: the executor must fit the corpus statistics first (two
// passes) and the votes must reflect the corpus-level mean.
func TestAggregateTwoPassExecution(t *testing.T) {
	docs := testDocs()
	for i, d := range docs {
		d.Crawler.EngagementScore = float64(i) / 4 // 0, .25, .5, .75, 1 → mean .5
	}
	fs := dfs.NewMem()
	stageDocs(t, fs, docs, 2)
	agg := &lfapi.AggregateFunc[*corpus.Document]{
		Meta:    Meta{Name: "above_mean_engagement", Category: SourceHeuristic},
		Extract: func(d *corpus.Document) float64 { return d.Crawler.EngagementScore },
		VoteWith: func(_ *corpus.Document, v float64, s lfapi.Summary) labelmodel.Label {
			if v > s.Mean {
				return labelmodel.Positive
			}
			return labelmodel.Negative
		},
	}
	mx, rep, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{agg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerLF[0].CorpusPasses != 2 {
		t.Errorf("corpus passes = %d, want 2", rep.PerLF[0].CorpusPasses)
	}
	want := []labelmodel.Label{labelmodel.Negative, labelmodel.Negative, labelmodel.Negative, labelmodel.Positive, labelmodel.Positive}
	for i, w := range want {
		if mx.At(i, 0) != w {
			t.Errorf("aggregate vote[%d] = %v, want %v", i, mx.At(i, 0), w)
		}
	}
	if s, ok := agg.Summary(); !ok || s.Count != 5 || s.Mean != 0.5 {
		t.Errorf("summary = %+v ok=%v, want count 5 mean 0.5", s, ok)
	}
}

// TestLoadMatrixResumesFromDFS re-assembles votes from shards written by an
// earlier Execute, without re-running anything.
func TestLoadMatrixResumesFromDFS(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	e := docExecutor(fs)
	mx, _, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	re := docExecutor(fs)
	got, err := re.LoadMatrix([]string{"keyword_gossip", "ner_no_person"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mx.NumExamples(); i++ {
		for j := 0; j < mx.NumFuncs(); j++ {
			if got.At(i, j) != mx.At(i, j) {
				t.Fatalf("resumed matrix differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestLegacyRunnerConversion proves the deprecated Runner aliases still
// execute through the new engine.
func TestLegacyRunnerConversion(t *testing.T) {
	legacy := Func[*corpus.Document]{
		Meta: Meta{Name: "legacy_gossip", Category: ContentHeuristic, Servable: true},
		Vote: func(d *corpus.Document) labelmodel.Label {
			if strings.Contains(d.Body, "gossip") {
				return labelmodel.Positive
			}
			return labelmodel.Abstain
		},
	}
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	mx, _, err := docExecutor(fs).Execute(FromRunners([]Runner[*corpus.Document]{legacy}))
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0, 0) != labelmodel.Positive || mx.At(1, 0) != labelmodel.Abstain {
		t.Error("legacy runner votes wrong through conversion")
	}
	// Legacy NLPFunc converts too, and runs per-node servers.
	legacyNLP := NLPFunc[*corpus.Document]{
		Meta:      Meta{Name: "legacy_ner", Category: ModelBased},
		NewServer: func() *nlp.Server { return nlp.NewServer(0, 1) },
		GetText:   func(d *corpus.Document) string { return d.Text() },
		GetValue: func(_ *corpus.Document, res *nlp.Result) labelmodel.Label {
			if len(res.People()) == 0 {
				return labelmodel.Negative
			}
			return labelmodel.Abstain
		},
	}
	_, rep, err := docExecutor(fs).Execute(FromRunners([]Runner[*corpus.Document]{legacyNLP}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerLF[0].ModelServersLaunched != 2 {
		t.Errorf("legacy NLP servers launched = %d, want 2", rep.PerLF[0].ModelServersLaunched)
	}
}

func TestVoteEncodingRoundTrip(t *testing.T) {
	for _, v := range []labelmodel.Label{labelmodel.Negative, labelmodel.Abstain, labelmodel.Positive} {
		enc, err := encodeVote(v)
		if err != nil {
			t.Fatalf("encodeVote(%v): %v", v, err)
		}
		got, err := decodeVote("x", enc)
		if err != nil || got != v {
			t.Errorf("round trip %v: %v, %v", v, got, err)
		}
	}
	if _, err := decodeVote("lfname", []byte{7}); err == nil {
		t.Error("out-of-range stored vote accepted")
	} else if !strings.Contains(err.Error(), "lfname") {
		t.Errorf("decode error does not name the function: %v", err)
	}
	if _, err := decodeVote("lfname", []byte{1, 2}); err == nil {
		t.Error("long record accepted")
	}
}

// TestCancellationStopsExecution cancels mid-run from inside an LF.
func TestCancellationStopsExecution(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	saboteur := lfapi.New(Meta{Name: "saboteur"}, func(*corpus.Document) labelmodel.Label {
		cancel()
		return labelmodel.Abstain
	})
	e := docExecutor(fs)
	e.MaxAttempts = 1
	if _, _, err := e.ExecuteContext(ctx, []lfapi.LF[*corpus.Document]{saboteur}); !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}
