package lf

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
)

// writeGen publishes a generation of m rows starting at startRow, with
// deterministic votes derived from the seed, and returns the matrix written.
func writeGen(t *testing.T, fs dfs.FS, base string, gen, startRow, m int, names []string, deleted []int, seed int64) *labelmodel.Matrix {
	t.Helper()
	mx := randomVotes(t, m, len(names), seed)
	err := WriteGeneration(fs, base, GenerationMeta{
		Gen:      gen,
		Names:    names,
		StartRow: startRow,
		Shards:   3,
		Deleted:  deleted,
	}, mx)
	if err != nil {
		t.Fatalf("WriteGeneration(%d): %v", gen, err)
	}
	return mx
}

func TestGenerationAppendExtendsLegacyArtifact(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a", "b", "c"}
	base := randomVotes(t, 50, 3, 1)
	if err := WriteVotes(fs, "labels/votes", base, names, 4); err != nil {
		t.Fatal(err)
	}
	delta := writeGen(t, fs, "labels/votes", 1, 50, 10, names, nil, 2)

	got, gotNames, err := ReadVersioned(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != 60 {
		t.Fatalf("view has %d rows, want 60", got.NumExamples())
	}
	if len(gotNames) != 3 || gotNames[0] != "a" {
		t.Fatalf("view names %v", gotNames)
	}
	for i := 0; i < 50; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != base.At(i, j) {
				t.Fatalf("base row %d col %d: got %d want %d", i, j, got.At(i, j), base.At(i, j))
			}
		}
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			if got.At(50+i, j) != delta.At(i, j) {
				t.Fatalf("delta row %d col %d: got %d want %d", i, j, got.At(50+i, j), delta.At(i, j))
			}
		}
	}
}

// TestGenerationSupersedeOrder pins overlapping row-range semantics: when two
// generations cover the same rows, the later generation's votes win, in
// ascending generation order regardless of List ordering.
func TestGenerationSupersedeOrder(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a", "b"}
	base := randomVotes(t, 20, 2, 3)
	if err := WriteVotes(fs, "labels/votes", base, names, 2); err != nil {
		t.Fatal(err)
	}
	// Gen 1 rewrites rows 5..14; gen 2 rewrites rows 10..17 on top of it.
	g1 := writeGen(t, fs, "labels/votes", 1, 5, 10, names, nil, 4)
	g2 := writeGen(t, fs, "labels/votes", 2, 10, 8, names, nil, 5)

	got, _, err := ReadVersioned(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != 20 {
		t.Fatalf("view has %d rows, want 20", got.NumExamples())
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 2; j++ {
			want := base.At(i, j)
			if i >= 5 && i < 15 {
				want = g1.At(i-5, j)
			}
			if i >= 10 && i < 18 {
				want = g2.At(i-10, j)
			}
			if got.At(i, j) != want {
				t.Fatalf("row %d col %d: got %d want %d", i, j, got.At(i, j), want)
			}
		}
	}
}

// TestGenerationTombstones pins deletion semantics: tombstoned rows are
// dropped from the view with subsequent rows shifted down, and a later
// generation that rewrites a tombstoned row resurrects it.
func TestGenerationTombstones(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a", "b"}
	base := randomVotes(t, 10, 2, 6)
	if err := WriteVotes(fs, "labels/votes", base, names, 2); err != nil {
		t.Fatal(err)
	}
	// Gen 1 appends rows 10..12 and tombstones rows 3 and 7.
	g1 := writeGen(t, fs, "labels/votes", 1, 10, 3, names, []int{3, 7}, 7)

	got, _, err := ReadVersioned(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != 11 {
		t.Fatalf("view has %d rows after 2 tombstones, want 11", got.NumExamples())
	}
	// Surviving absolute rows in order: 0,1,2,4,5,6,8,9,10,11,12.
	survivors := []int{0, 1, 2, 4, 5, 6, 8, 9, 10, 11, 12}
	for vi, abs := range survivors {
		for j := 0; j < 2; j++ {
			var want labelmodel.Label
			if abs >= 10 {
				want = g1.At(abs-10, j)
			} else {
				want = base.At(abs, j)
			}
			if got.At(vi, j) != want {
				t.Fatalf("view row %d (abs %d) col %d: got %d want %d", vi, abs, j, got.At(vi, j), want)
			}
		}
	}

	// Gen 2 rewrites rows 7..8: the tombstone on row 7 is cleared.
	g2 := writeGen(t, fs, "labels/votes", 2, 7, 2, names, nil, 8)
	got, _, err = ReadVersioned(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != 12 {
		t.Fatalf("view has %d rows after resurrection, want 12", got.NumExamples())
	}
	// Row 3 is still gone; abs row 7 is back with gen-2 votes.
	if got.At(6, 0) != g2.At(0, 0) || got.At(6, 1) != g2.At(0, 1) {
		t.Fatalf("resurrected row 7 carries stale votes")
	}
}

// TestGenerationCorruptManifestRejected pins that a torn or tampered
// manifest fails the read with a descriptive error instead of being skipped.
func TestGenerationCorruptManifestRejected(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a", "b"}
	if err := WriteVotes(fs, "labels/votes", randomVotes(t, 10, 2, 9), names, 2); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fs, "labels/votes", 1, 10, 4, names, nil, 10)

	key := "labels/votes/_gen/00001"
	raw, err := fs.ReadFile(key)
	if err != nil {
		t.Fatal(err)
	}

	// Flipped payload byte: checksum mismatch.
	var meta GenerationMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	meta.StartRow = 2
	tampered, _ := json.Marshal(meta)
	if err := fs.WriteFile(key, tampered); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadVersioned(fs, "labels/votes", nil); err == nil {
		t.Fatal("tampered manifest accepted")
	} else if !strings.Contains(err.Error(), "corrupt") || !strings.Contains(err.Error(), key) {
		t.Fatalf("tampered manifest error not descriptive: %v", err)
	}

	// Truncated JSON: parse failure, same contract.
	if err := fs.WriteFile(key, raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadVersioned(fs, "labels/votes", nil); err == nil {
		t.Fatal("truncated manifest accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("truncated manifest error not descriptive: %v", err)
	}

	// Restoring the original manifest heals the chain.
	if err := fs.WriteFile(key, raw); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadVersioned(fs, "labels/votes", nil); err != nil {
		t.Fatalf("restored manifest still rejected: %v", err)
	}
}

// TestGenerationLegacyFallback pins that a filesystem carrying only the flat
// pre-versioning artifact reads through ReadVersioned unchanged.
func TestGenerationLegacyFallback(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"x", "y", "z"}
	mx := randomVotes(t, 30, 3, 11)
	if err := WriteVotes(fs, "labels/votes", mx, names, 4); err != nil {
		t.Fatal(err)
	}
	if HasGenerations(fs, "labels/votes") {
		t.Fatal("legacy artifact misdetected as versioned")
	}
	got, gotNames, err := ReadVersioned(fs, "labels/votes", []string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFuncs() != 2 || gotNames[0] != "z" {
		t.Fatalf("legacy column selection broken: %d cols, names %v", got.NumFuncs(), gotNames)
	}
	for i := 0; i < 30; i++ {
		if got.At(i, 0) != mx.At(i, 2) || got.At(i, 1) != mx.At(i, 0) {
			t.Fatalf("legacy fallback row %d mismatches", i)
		}
	}
}

// TestGenerationColumnUnion pins the column-union semantics: a generation
// introducing a new LF widens the view, with Abstain filled for rows the new
// column never voted on, and columns the generation lacks keeping older
// votes in its row range.
func TestGenerationColumnUnion(t *testing.T) {
	fs := dfs.NewMem()
	if err := WriteVotes(fs, "labels/votes", randomVotes(t, 8, 2, 12), []string{"a", "b"}, 2); err != nil {
		t.Fatal(err)
	}
	g1 := writeGen(t, fs, "labels/votes", 1, 8, 2, []string{"b", "c"}, nil, 13)

	got, gotNames, err := ReadVersioned(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 3 || gotNames[0] != "a" || gotNames[1] != "b" || gotNames[2] != "c" {
		t.Fatalf("union names %v", gotNames)
	}
	// Base rows never saw "c": Abstain.
	for i := 0; i < 8; i++ {
		if got.At(i, 2) != labelmodel.Abstain {
			t.Fatalf("base row %d col c = %d, want Abstain", i, got.At(i, 2))
		}
	}
	// Appended rows never saw "a": Abstain; "b" and "c" from the generation.
	for i := 0; i < 2; i++ {
		if got.At(8+i, 0) != labelmodel.Abstain {
			t.Fatalf("appended row %d col a = %d, want Abstain", i, got.At(8+i, 0))
		}
		if got.At(8+i, 1) != g1.At(i, 0) || got.At(8+i, 2) != g1.At(i, 1) {
			t.Fatalf("appended row %d generation columns mismatched", i)
		}
	}
}

// TestCompactGenerations pins the fold: compaction produces a flat artifact
// identical to writing the assembled view from scratch — including
// byte-identical shards, since the artifact's write generation is
// content-derived — and removes the folded chain.
func TestCompactGenerations(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a", "b", "c"}
	if err := WriteVotes(fs, "labels/votes", randomVotes(t, 40, 3, 14), names, 4); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fs, "labels/votes", 1, 40, 6, names, []int{2}, 15)
	writeGen(t, fs, "labels/votes", 2, 46, 4, names, nil, 16)

	want, wantNames, err := ReadVersioned(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompactGenerations(fs, "labels/votes", 4); err != nil {
		t.Fatal(err)
	}
	if HasGenerations(fs, "labels/votes") {
		t.Fatal("generations survived compaction")
	}
	if keys, err := fs.List("labels/votes/_gen/"); err == nil && len(keys) != 0 {
		t.Fatalf("generation files left behind: %v", keys)
	}
	got, gotNames, err := ReadVotes(fs, "labels/votes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != want.NumExamples() || len(gotNames) != len(wantNames) {
		t.Fatalf("compacted artifact %dx%d, want %dx%d",
			got.NumExamples(), got.NumFuncs(), want.NumExamples(), want.NumFuncs())
	}
	for i := 0; i < want.NumExamples(); i++ {
		for j := 0; j < want.NumFuncs(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("compacted vote [%d,%d] = %d, want %d", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}

	// Byte-identity with a from-scratch write of the same view.
	ref := dfs.NewMem()
	if err := WriteVotes(ref, "labels/votes", want, wantNames, 4); err != nil {
		t.Fatal(err)
	}
	refKeys, err := ref.List("labels/votes")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range refKeys {
		wantRaw, err := ref.ReadFile(key)
		if err != nil {
			t.Fatal(err)
		}
		gotRaw, err := fs.ReadFile(key)
		if err != nil {
			t.Fatalf("compacted store missing %s: %v", key, err)
		}
		if string(gotRaw) != string(wantRaw) {
			t.Fatalf("compacted shard %s is not byte-identical to a from-scratch write", key)
		}
	}
}

// TestGenerationGapRejected pins contiguity: a generation starting beyond
// the rows covered so far is a staging bug and must be reported, not padded.
func TestGenerationGapRejected(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a"}
	if err := WriteVotes(fs, "labels/votes", randomVotes(t, 5, 1, 17), names, 1); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fs, "labels/votes", 1, 9, 2, names, nil, 18)
	if _, _, err := ReadVersioned(fs, "labels/votes", nil); err == nil {
		t.Fatal("gapped generation accepted")
	} else if !strings.Contains(err.Error(), "starts at row") {
		t.Fatalf("gap error not descriptive: %v", err)
	}
}

func TestLatestGeneration(t *testing.T) {
	fs := dfs.NewMem()
	names := []string{"a"}
	if n, err := LatestGeneration(fs, "labels/votes"); err != nil || n != 0 {
		t.Fatalf("empty store: gen %d, err %v", n, err)
	}
	if err := WriteVotes(fs, "labels/votes", randomVotes(t, 5, 1, 19), names, 1); err != nil {
		t.Fatal(err)
	}
	if n, err := LatestGeneration(fs, "labels/votes"); err != nil || n != 0 {
		t.Fatalf("legacy-only store: gen %d, err %v", n, err)
	}
	writeGen(t, fs, "labels/votes", 1, 5, 2, names, nil, 20)
	writeGen(t, fs, "labels/votes", 2, 7, 2, names, nil, 21)
	if n, err := LatestGeneration(fs, "labels/votes"); err != nil || n != 2 {
		t.Fatalf("after two generations: gen %d, err %v", n, err)
	}
}
