// Columnar vote artifact: the label matrix Λ persisted as one sharded,
// byte-per-vote file set instead of one recordio shard set per labeling
// function.
//
// The executor used to write each function's votes as recordio records (12
// bytes of framing per 1-byte vote) under "<prefix>/<lf-name>", then read
// and decode every shard back to assemble the matrix. The columnar artifact
// stores the whole matrix once under "<prefix>/votes": shard s holds the
// vote rows of examples s, s+N, s+2N, … (the same round-robin layout as the
// staged input), each row exactly n bytes, one byte per vote, with a CRC32
// over the payload. A JSON meta file records the labeling-function names in
// column order, so a resumed pipeline can select and reorder columns by
// name. Readers copy votes straight into the matrix — no per-record
// allocation or framing — and writers rent shard buffers from a pool.
package lf

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"sync"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
)

// votesMagic heads every columnar vote shard ("DryBell Votes v1").
var votesMagic = [4]byte{'D', 'B', 'V', '1'}

// voteShardHeaderSize is magic + numLFs + numRows + crc32 + generation.
const voteShardHeaderSize = 24

// votesMeta is the JSON sidecar describing a columnar vote artifact.
type votesMeta struct {
	// Names lists the labeling functions in column order.
	Names []string `json:"names"`
	// Examples is the total row count across shards.
	Examples int `json:"examples"`
	// Shards is the shard count.
	Shards int `json:"shards"`
	// Generation tags one WriteVotes call; every shard must carry the
	// meta's generation, so an artifact torn by interleaved concurrent
	// writers (per-shard renames are individually atomic, the set is not)
	// is detected at read time instead of silently mixing columns.
	Generation uint64 `json:"generation"`
}

// votesMetaPath returns the meta sidecar path for a votes base.
func votesMetaPath(base string) string { return base + ".meta" }

// voteBufPool recycles shard payload buffers across WriteVotes calls, so
// persisting votes allocates amortized nothing beyond what the filesystem
// copies.
var voteBufPool = sync.Pool{New: func() any { return new([]byte) }}

// WriteVotes persists the matrix as a columnar vote artifact under base,
// with names[j] labeling column j. Shards are committed atomically and the
// meta sidecar is written last, so a partially written artifact is never
// loadable.
func WriteVotes(fs dfs.FS, base string, mx *labelmodel.Matrix, names []string, shards int) error {
	if mx == nil {
		return fmt.Errorf("lf: WriteVotes with nil matrix")
	}
	m, n := mx.NumExamples(), mx.NumFuncs()
	if len(names) != n {
		return fmt.Errorf("lf: WriteVotes got %d names for %d matrix columns", len(names), n)
	}
	if shards <= 0 {
		return fmt.Errorf("lf: WriteVotes with %d shards", shards)
	}
	gen := voteGeneration(mx, names, shards)
	bufp := voteBufPool.Get().(*[]byte)
	defer voteBufPool.Put(bufp)
	for s := 0; s < shards; s++ {
		rows := (m - s + shards - 1) / shards
		need := voteShardHeaderSize + rows*n
		buf := *bufp
		if cap(buf) < need {
			buf = make([]byte, need)
			*bufp = buf
		}
		buf = buf[:need]
		copy(buf[0:4], votesMagic[:])
		binary.LittleEndian.PutUint32(buf[4:8], uint32(n))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(rows))
		binary.LittleEndian.PutUint64(buf[16:24], gen)
		payload := buf[voteShardHeaderSize:]
		for k := 0; k < rows; k++ {
			row := mx.Row(s + k*shards)
			// The checked encoder validates while it packs, so an
			// out-of-range vote fails the write instead of surfacing as a
			// reader error on some later run.
			if err := labelmodel.EncodeVotes(payload[k*n:(k+1)*n], row); err != nil {
				return fmt.Errorf("lf: write votes shard %d row %d: %w", s, k, err)
			}
		}
		binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(payload))
		if err := dfs.PublishShard(fs, base, s, shards, buf); err != nil {
			return fmt.Errorf("lf: write votes shard %d: %w", s, err)
		}
	}
	meta, err := json.Marshal(votesMeta{Names: names, Examples: m, Shards: shards, Generation: gen})
	if err != nil {
		return fmt.Errorf("lf: encode votes meta: %w", err)
	}
	if err := fs.WriteFile(votesMetaPath(base), meta); err != nil {
		return fmt.Errorf("lf: write votes meta: %w", err)
	}
	// Drop shards left behind by an earlier write with a different shard
	// count: a mixed set would make ListShards refuse the whole artifact
	// forever. Removal races with concurrent writers are repaired by their
	// verify-and-retry loop (see publishVotes).
	if stale, err := fs.List(base + "-"); err == nil {
		for _, p := range stale {
			if b, _, count, ok := dfs.ParseShardPath(p); ok && b == base && count != shards {
				_ = fs.Remove(p)
			}
		}
	}
	return nil
}

// voteGeneration derives the artifact's write generation from its content:
// shape, column names, and an FNV-1a digest of every vote. A generation
// used to be drawn from the global math/rand, which made every run's
// artifact differ in 8 header bytes per shard and broke the byte-identical
// re-run guarantee the fault suite enforces everywhere else. Hashing the
// content keeps the property the generation exists for — interleaved
// concurrent writers of different matrices still stamp different
// generations, so a torn artifact is detected at read time — while
// identical content now produces identical bytes (two writers racing the
// same matrix produce interchangeable shards, so mixing them is harmless).
func voteGeneration(mx *labelmodel.Matrix, names []string, shards int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(shards))
	h.Write(b[:])
	for _, name := range names {
		binary.LittleEndian.PutUint64(b[:], uint64(len(name)))
		h.Write(b[:])
		h.Write([]byte(name))
	}
	binary.LittleEndian.PutUint64(b[:], mx.Fingerprint())
	h.Write(b[:])
	return h.Sum64()
}

// HasVotes reports whether a columnar vote artifact exists at base.
func HasVotes(fs dfs.FS, base string) bool {
	_, err := fs.Stat(votesMetaPath(base))
	return err == nil
}

// VoteNames returns the labeling-function names of the artifact at base, in
// column order.
func VoteNames(fs dfs.FS, base string) ([]string, error) {
	meta, err := readVotesMeta(fs, base)
	if err != nil {
		return nil, err
	}
	return meta.Names, nil
}

// VerifyVotes checks the artifact's integrity — meta, shard headers,
// write-generation coherence, checksums, row accounting — without
// materializing the matrix, and returns the stored column names. It is the
// cheap read half of the publish verification loop.
func VerifyVotes(fs dfs.FS, base string) ([]string, error) {
	meta, err := readVotesMeta(fs, base)
	if err != nil {
		return nil, err
	}
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, fmt.Errorf("lf: list vote shards: %w", err)
	}
	if len(shards) != meta.Shards {
		return nil, fmt.Errorf("lf: votes at %s: %d shards on filesystem, meta says %d", base, len(shards), meta.Shards)
	}
	total := 0
	for _, shard := range shards {
		data, err := fs.ReadFile(shard)
		if err != nil {
			return nil, fmt.Errorf("lf: read votes shard: %w", err)
		}
		rows, err := checkVoteShard(shard, data, len(meta.Names), meta.Generation)
		if err != nil {
			return nil, err
		}
		total += rows
	}
	if total != meta.Examples {
		return nil, fmt.Errorf("lf: votes at %s hold %d rows, meta says %d", base, total, meta.Examples)
	}
	return meta.Names, nil
}

func readVotesMeta(fs dfs.FS, base string) (*votesMeta, error) {
	raw, err := fs.ReadFile(votesMetaPath(base))
	if err != nil {
		return nil, fmt.Errorf("lf: read votes meta: %w", err)
	}
	var meta votesMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("lf: decode votes meta: %w", err)
	}
	if meta.Shards <= 0 || meta.Examples < 0 || len(meta.Names) == 0 {
		return nil, fmt.Errorf("lf: votes meta at %s is degenerate (%d shards, %d examples, %d names)",
			base, meta.Shards, meta.Examples, len(meta.Names))
	}
	return &meta, nil
}

// ReadVotes loads a columnar vote artifact. When names is nil the full
// matrix is returned in stored column order; otherwise column j of the
// result holds the votes of names[j], selecting and reordering columns of
// the artifact (an unknown name is an error). Votes are copied directly
// from shard payloads into the matrix.
func ReadVotes(fs dfs.FS, base string, names []string) (*labelmodel.Matrix, []string, error) {
	meta, err := readVotesMeta(fs, base)
	if err != nil {
		return nil, nil, err
	}
	stored := len(meta.Names)
	if names == nil {
		names = meta.Names
	}
	// srcOf[dst] is the stored column feeding result column dst; mapping by
	// destination keeps duplicate requested names well-defined (each output
	// column is written on every row).
	byName := make(map[string]int, stored)
	for i, name := range meta.Names {
		byName[name] = i
	}
	srcOf := make([]int, len(names))
	for dst, name := range names {
		src, ok := byName[name]
		if !ok {
			return nil, nil, fmt.Errorf("lf: votes at %s have no column for %q (stored: %v)", base, name, meta.Names)
		}
		srcOf[dst] = src
	}

	mx := labelmodel.NewMatrix(meta.Examples, len(names))
	rowBuf := make([]labelmodel.Label, len(names))
	shards, err := dfs.ListShards(fs, base)
	if err != nil {
		return nil, nil, fmt.Errorf("lf: list vote shards: %w", err)
	}
	if len(shards) != meta.Shards {
		return nil, nil, fmt.Errorf("lf: votes at %s: %d shards on filesystem, meta says %d", base, len(shards), meta.Shards)
	}
	total := 0
	for s, shard := range shards {
		data, err := fs.ReadFile(shard)
		if err != nil {
			return nil, nil, fmt.Errorf("lf: read votes shard: %w", err)
		}
		rows, err := checkVoteShard(shard, data, stored, meta.Generation)
		if err != nil {
			return nil, nil, err
		}
		payload := data[voteShardHeaderSize:]
		for k := 0; k < rows; k++ {
			i := s + k*meta.Shards
			if i >= meta.Examples {
				return nil, nil, fmt.Errorf("lf: votes shard %s: row %d maps past %d examples", shard, k, meta.Examples)
			}
			rec := payload[k*stored : (k+1)*stored]
			for dst, src := range srcOf {
				b := rec[src]
				v := labelmodel.Label(int8(b))
				if !v.Valid() {
					return nil, nil, fmt.Errorf("lf: votes shard %s: stored vote byte %d out of range for %q",
						shard, int8(b), meta.Names[src])
				}
				rowBuf[dst] = v
			}
			mx.SetRow(i, rowBuf)
		}
		total += rows
	}
	if total != meta.Examples {
		return nil, nil, fmt.Errorf("lf: votes at %s hold %d rows, meta says %d", base, total, meta.Examples)
	}
	return mx, names, nil
}

// checkVoteShard validates a shard's header, generation, and checksum,
// returning its row count.
func checkVoteShard(path string, data []byte, n int, gen uint64) (int, error) {
	if len(data) < voteShardHeaderSize {
		return 0, fmt.Errorf("lf: votes shard %s truncated (%d bytes)", path, len(data))
	}
	if [4]byte(data[0:4]) != votesMagic {
		return 0, fmt.Errorf("lf: votes shard %s has bad magic %q", path, data[0:4])
	}
	gotLFs := int(binary.LittleEndian.Uint32(data[4:8]))
	rows := int(binary.LittleEndian.Uint32(data[8:12]))
	if gotLFs != n {
		return 0, fmt.Errorf("lf: votes shard %s holds %d columns, meta says %d", path, gotLFs, n)
	}
	if got := binary.LittleEndian.Uint64(data[16:24]); got != gen {
		return 0, fmt.Errorf("lf: votes shard %s is from another write generation (torn concurrent writes)", path)
	}
	payload := data[voteShardHeaderSize:]
	if len(payload) != rows*n {
		return 0, fmt.Errorf("lf: votes shard %s payload is %d bytes, want %d rows × %d", path, len(payload), rows, n)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[12:16]) {
		return 0, fmt.Errorf("lf: votes shard %s checksum mismatch", path)
	}
	return rows, nil
}
