// Package lf implements Snorkel DryBell's labeling-function template
// library (paper §5.1). The paper's C++ class templates become Go generics:
//
//   - Func[T] is the default pipeline (the paper's LabelingFunction): a pure
//     function from an example to a vote, executed in a MapReduce map task
//     with no extra services.
//   - NLPFunc[T] is the model-server pipeline (NLPLabelingFunction): a
//     GetText slot selecting the text to annotate and a GetValue slot
//     computing the vote from the example and the NLP result. The template
//     launches an NLP model server on each compute node in the task's Setup
//     hook and stops it in Teardown, because the NLP models are too
//     expensive to run anywhere but the offline labeling pipeline.
//
// Each labeling function executes as its own job writing votes to the
// distributed filesystem — "labeling functions are independent executables
// that use a distributed filesystem to share data" (§5.4) — and the
// Executor assembles the per-function outputs into the label matrix Λ.
package lf

import (
	"fmt"

	"repro/internal/labelmodel"
	"repro/internal/mapreduce"
	"repro/internal/nlp"
)

// Category buckets weak-supervision sources the way Figure 2 does.
type Category string

// Figure 2 categories.
const (
	SourceHeuristic  Category = "source-heuristic"  // URL/source patterns, aggregate stats
	ContentHeuristic Category = "content-heuristic" // keywords and content patterns
	ModelBased       Category = "model-based"       // internal model predictions
	GraphBased       Category = "graph-based"       // knowledge/entity graphs
)

// Meta describes one labeling function.
type Meta struct {
	// Name is unique within an application; it names the function's DFS
	// output ("labels/<name>").
	Name string
	// Category is the Figure 2 bucket.
	Category Category
	// Servable records whether the function reads only production-servable
	// signals. Non-servable functions are the ones cross-feature serving
	// exists for (§4, Table 3).
	Servable bool
}

// Runner is one executable labeling function: metadata plus the mapper that
// computes its votes. Implementations are Func and NLPFunc.
type Runner[T any] interface {
	// LFMeta returns the function's metadata.
	LFMeta() Meta
	// Mapper returns the MapReduce mapper computing one vote per record.
	Mapper(decode func([]byte) (T, error)) mapreduce.Mapper
}

// Func is the default labeling-function pipeline: a pure vote function.
type Func[T any] struct {
	Meta Meta
	// Vote inspects one example and returns a vote or abstains.
	Vote func(T) labelmodel.Label
}

// LFMeta implements Runner.
func (f Func[T]) LFMeta() Meta { return f.Meta }

// Mapper implements Runner.
func (f Func[T]) Mapper(decode func([]byte) (T, error)) mapreduce.Mapper {
	return mapreduce.MapFunc(func(ctx *mapreduce.TaskContext, rec []byte, emit mapreduce.Emitter) error {
		x, err := decode(rec)
		if err != nil {
			return fmt.Errorf("lf %s: %w", f.Meta.Name, err)
		}
		v := f.Vote(x)
		if !v.Valid() {
			return fmt.Errorf("lf %s: invalid vote %d", f.Meta.Name, v)
		}
		countVote(ctx, f.Meta.Name, v)
		emit("", encodeVote(v))
		return nil
	})
}

// NLPFunc is the model-server pipeline. GetText and GetValue are the two
// template slots from the paper's example (§5.1).
type NLPFunc[T any] struct {
	Meta Meta
	// NewServer constructs the model server launched on each compute node.
	NewServer func() *nlp.Server
	// GetText selects the text to send to the NLP models.
	GetText func(T) string
	// GetValue computes the vote from the example and the NLP annotations.
	GetValue func(T, *nlp.Result) labelmodel.Label
}

// LFMeta implements Runner.
func (f NLPFunc[T]) LFMeta() Meta { return f.Meta }

// Mapper implements Runner.
func (f NLPFunc[T]) Mapper(decode func([]byte) (T, error)) mapreduce.Mapper {
	return &nlpMapper[T]{f: f, decode: decode}
}

type nlpMapper[T any] struct {
	f      NLPFunc[T]
	decode func([]byte) (T, error)
}

// Setup launches the model server on this compute node.
func (m *nlpMapper[T]) Setup(ctx *mapreduce.TaskContext) error {
	srv := m.f.NewServer()
	if srv == nil {
		return fmt.Errorf("lf %s: NewServer returned nil", m.f.Meta.Name)
	}
	if err := srv.Launch(); err != nil {
		return fmt.Errorf("lf %s: launch model server: %w", m.f.Meta.Name, err)
	}
	ctx.SetState(srv)
	ctx.Counters.Inc("model-servers-launched", 1)
	return nil
}

// Map annotates the example through the node-local server and votes.
func (m *nlpMapper[T]) Map(ctx *mapreduce.TaskContext, rec []byte, emit mapreduce.Emitter) error {
	x, err := m.decode(rec)
	if err != nil {
		return fmt.Errorf("lf %s: %w", m.f.Meta.Name, err)
	}
	srv := ctx.State().(*nlp.Server)
	res, err := srv.Annotate(m.f.GetText(x))
	if err != nil {
		return fmt.Errorf("lf %s: annotate: %w", m.f.Meta.Name, err)
	}
	v := m.f.GetValue(x, res)
	if !v.Valid() {
		return fmt.Errorf("lf %s: invalid vote %d", m.f.Meta.Name, v)
	}
	countVote(ctx, m.f.Meta.Name, v)
	emit("", encodeVote(v))
	return nil
}

// Teardown stops the node-local server.
func (m *nlpMapper[T]) Teardown(ctx *mapreduce.TaskContext) error {
	if srv, ok := ctx.State().(*nlp.Server); ok && srv != nil {
		srv.Stop()
	}
	return nil
}

func countVote(ctx *mapreduce.TaskContext, name string, v labelmodel.Label) {
	ctx.Counters.Inc("votes/"+name+"/"+v.String(), 1)
}

func encodeVote(v labelmodel.Label) []byte { return []byte{byte(int8(v))} }

func decodeVote(rec []byte) (labelmodel.Label, error) {
	if len(rec) != 1 {
		return 0, fmt.Errorf("lf: vote record has %d bytes, want 1", len(rec))
	}
	v := labelmodel.Label(int8(rec[0]))
	if !v.Valid() {
		return 0, fmt.Errorf("lf: invalid stored vote %d", int8(rec[0]))
	}
	return v, nil
}

// Census counts runners per category — the Figure 2 histogram.
func Census[T any](runners []Runner[T]) map[Category]int {
	out := map[Category]int{}
	for _, r := range runners {
		out[r.LFMeta().Category]++
	}
	return out
}

// ServableIndices returns the column indices of servable runners, the
// Table 3 ablation subset.
func ServableIndices[T any](runners []Runner[T]) []int {
	var out []int
	for j, r := range runners {
		if r.LFMeta().Servable {
			out = append(out, j)
		}
	}
	return out
}

// Names returns runner names in column order.
func Names[T any](runners []Runner[T]) []string {
	out := make([]string, len(runners))
	for j, r := range runners {
		out[j] = r.LFMeta().Name
	}
	return out
}
