// Package lf is the batch execution engine behind the public labeling-
// function API (repro/pkg/drybell/lf): it adapts lf.LF values to MapReduce
// jobs over the distributed filesystem. Each labeling function executes as
// its own job writing votes to "labels/<name>" — "labeling functions are
// independent executables that use a distributed filesystem to share data"
// (§5.4) — and the Executor assembles the per-function outputs into the
// label matrix Λ.
//
// The authoring surface (templates, combinators, sets, analysis) lives in
// the public package; this package owns only execution. The legacy Runner
// types below predate the public API and remain as thin conversion shims
// for one release.
package lf

import (
	"repro/internal/labelmodel"
	"repro/internal/nlp"
	lfapi "repro/pkg/drybell/lf"
)

// Meta describes one labeling function. It is the public API's Meta.
type Meta = lfapi.Meta

// Category buckets weak-supervision sources the way Figure 2 does.
type Category = lfapi.Category

// Figure 2 categories, re-exported from the public API.
const (
	SourceHeuristic  = lfapi.SourceHeuristic
	ContentHeuristic = lfapi.ContentHeuristic
	ModelBased       = lfapi.ModelBased
	GraphBased       = lfapi.GraphBased
)

// Runner is the pre-SDK labeling-function shape: metadata plus a conversion
// to the public API value both engines execute.
//
// Deprecated: author functions with repro/pkg/drybell/lf templates instead;
// Runner remains only so code written against the old aliases keeps
// compiling for one release.
type Runner[T any] interface {
	// LFMeta returns the function's metadata.
	LFMeta() Meta
	// LF converts the runner to its public-API equivalent.
	LF() lfapi.LF[T]
}

// Func is the legacy default-pipeline template.
//
// Deprecated: use repro/pkg/drybell/lf.Func (field Fn).
type Func[T any] struct {
	Meta Meta
	// Vote inspects one example and returns a vote or abstains.
	Vote func(T) labelmodel.Label
}

// LFMeta implements Runner.
func (f Func[T]) LFMeta() Meta { return f.Meta }

// LF implements Runner.
func (f Func[T]) LF() lfapi.LF[T] { return &lfapi.Func[T]{Meta: f.Meta, Fn: f.Vote} }

// NLPFunc is the legacy model-server template.
//
// Deprecated: use repro/pkg/drybell/lf.NLPFunc.
type NLPFunc[T any] struct {
	Meta Meta
	// NewServer constructs the model server launched on each compute node.
	NewServer func() *nlp.Server
	// GetText selects the text to send to the NLP models.
	GetText func(T) string
	// GetValue computes the vote from the example and the NLP annotations.
	GetValue func(T, *nlp.Result) labelmodel.Label
}

// LFMeta implements Runner.
func (f NLPFunc[T]) LFMeta() Meta { return f.Meta }

// LF implements Runner.
func (f NLPFunc[T]) LF() lfapi.LF[T] {
	return &lfapi.NLPFunc[T]{Meta: f.Meta, NewServer: f.NewServer, GetText: f.GetText, GetValue: f.GetValue}
}

// FromRunners converts legacy runners to public-API labeling functions.
//
// Deprecated: migrate call sites to repro/pkg/drybell/lf values directly.
func FromRunners[T any](runners []Runner[T]) []lfapi.LF[T] {
	out := make([]lfapi.LF[T], len(runners))
	for i, r := range runners {
		out[i] = r.LF()
	}
	return out
}
