package lf

import (
	"context"
	"fmt"
	"iter"
	"path"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	lfapi "repro/pkg/drybell/lf"
)

// Executor runs a set of labeling functions over a DFS-staged corpus and
// assembles the label matrix. One MapReduce job per function, exactly as
// DryBell runs one binary per function (§5.4); jobs run map-only so votes
// stay aligned with input records. The assembled matrix is persisted as a
// single columnar vote artifact (see WriteVotes) rather than one recordio
// shard set per function, and LoadMatrix restores it — or a legacy per-
// function layout — without re-running anything.
//
// The executor consumes public-API lf.LF values and discovers their
// capabilities by interface: NodeLocal functions get one instance per map
// task (the per-compute-node model server of §5.1), Lifecycle brackets each
// task, BatchVoter functions score a whole shard per call through the
// engine's batch path, and CorpusFitter functions get a first streaming
// pass over the staged corpus before their vote job launches.
type Executor[T any] struct {
	// FS holds the staged input and receives per-function vote shards.
	FS dfs.FS
	// InputBase is the staged corpus (see Stage).
	InputBase string
	// OutputPrefix locates vote output: the columnar artifact lives at
	// "<prefix>/votes", and legacy per-function recordio shard sets at
	// "<prefix>/<lf-name>" remain readable by LoadMatrix.
	OutputPrefix string
	// Decode parses one input record.
	Decode func([]byte) (T, error)
	// Parallelism is the simulated cluster width per job.
	Parallelism int
	// MaxAttempts per task (worker failures are retried).
	MaxAttempts int
	// StragglerAfter enables the runtime's deadline-based speculative
	// re-execution for vote jobs: a task attempt still running after this
	// duration gets one speculative sibling, first commit wins.
	StragglerAfter time.Duration
	// Resume enables checkpoint/resume for vote execution. At the job level
	// the coordinator records per-task manifests so a crashed Execute
	// re-runs only uncommitted tasks; at the stage level a completed
	// columnar vote artifact covering every requested function is loaded
	// directly without launching any job.
	Resume bool
	// ScratchBase overrides the runtime scratch area for vote jobs.
	// Default "<OutputPrefix>/_runtime".
	ScratchBase string
	// KnownExamples, when positive, is the staged corpus's record count as
	// already established by the caller (e.g. the pipeline's staging
	// stage). The resume fast path then validates the vote artifact against
	// it instead of re-scanning every input shard.
	KnownExamples int
	// FailureHook is forwarded to every job, for failure-injection tests.
	FailureHook func(taskID string, attempt int) error
	// Workers supplies an execution backend for every vote job — e.g. a
	// remote pool's slot proxies (internal/mapreduce/remote) — in place of
	// the default in-process pool. Jobs then also carry a code key naming
	// their worker-side implementation (see RegisterVoteJobs), which is how
	// an out-of-process worker knows which functions to run. Nil keeps
	// execution in-process.
	Workers []mapreduce.Worker
	// NoBatch forces record-at-a-time evaluation even for functions that
	// implement BatchVoter — the scalar baseline for benchmarks and debug.
	NoBatch bool
	// PerLFJobs restores the paper's literal deployment shape: one
	// MapReduce job per labeling function (§5.4), each decoding the staged
	// corpus itself. The default fused mode runs all functions in a single
	// map-only job — each record is decoded once instead of once per
	// function, and every task emits finished columnar vote rows — which is
	// several times cheaper in-process while producing the identical
	// matrix, report counters, and per-task lifecycle behaviour.
	PerLFJobs bool
}

// LFReport describes one labeling function's execution.
type LFReport struct {
	Name     string
	Category Category
	Servable bool
	// Votes emitted by value.
	Positives, Negatives, Abstains int64
	// Duration of the function's MapReduce job (including a fit pass).
	Duration time.Duration
	// ModelServersLaunched counts per-node model-server launches (zero for
	// default-pipeline functions).
	ModelServersLaunched int64
	// CorpusPasses is 2 for two-pass (aggregation-based) functions that
	// needed a fit pass, 1 otherwise.
	CorpusPasses int
}

// Report summarizes an Execute call.
type Report struct {
	PerLF []LFReport
	// Examples is the number of input records labeled.
	Examples int
	// Duration is the wall time across all jobs.
	Duration time.Duration
	// TaskAttempts counts MapReduce task attempts launched across all vote
	// jobs, including retries and speculative attempts.
	TaskAttempts int
	// TasksResumed counts tasks satisfied from a prior run's checkpoints
	// instead of re-executing (only non-zero with Executor.Resume).
	TasksResumed int
	// SpeculativeAttempts counts straggler-triggered speculative launches.
	SpeculativeAttempts int
	// ResumedFromVotes is true when the whole execution was skipped because
	// a completed vote artifact already covered every requested function.
	ResumedFromVotes bool
}

// Stage writes examples to the DFS as the executor's sharded input.
func Stage[T any](fs dfs.FS, base string, records [][]byte, shards int) error {
	return mapreduce.WriteInput(fs, base, records, shards)
}

// Execute runs every labeling function and returns the assembled m×n label
// matrix, with column j holding function j's votes in input-record order.
func (e *Executor[T]) Execute(lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	return e.ExecuteContext(context.Background(), lfs)
}

// ExecuteContext is Execute under a context: cancellation stops between jobs
// and mid-job (between records or batches), and the partial run commits no
// label matrix.
func (e *Executor[T]) ExecuteContext(ctx context.Context, lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	if e.Decode == nil {
		return nil, nil, fmt.Errorf("lf: executor has no decoder")
	}
	if err := lfapi.ValidateNames(lfs); err != nil {
		return nil, nil, err
	}
	ctx, span := obs.StartSpan(ctx, "lf.execute",
		obs.Int("functions", len(lfs)),
		obs.Bool("fused", !e.PerLFJobs))
	mx, report, err := e.execute(ctx, lfs)
	if report != nil {
		span.SetAttr(
			obs.Int("task_attempts", report.TaskAttempts),
			obs.Int("speculative_attempts", report.SpeculativeAttempts),
			obs.Int("tasks_resumed", report.TasksResumed),
			obs.Bool("resumed_from_votes", report.ResumedFromVotes),
		)
	}
	span.EndErr(err)
	return mx, report, err
}

// execute dispatches a validated function set to the resume fast path or one
// of the two execution modes.
func (e *Executor[T]) execute(ctx context.Context, lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	if e.Resume {
		if mx, report, ok := e.resumeFromVotes(lfs); ok {
			return mx, report, nil
		}
	}
	if e.PerLFJobs {
		return e.executePerLF(ctx, lfs)
	}
	return e.executeFused(ctx, lfs)
}

// Delta describes one staged corpus delta for incremental execution: the
// new or changed documents, where their rows land in the full corpus's
// staging order, and which existing rows they tombstone.
type Delta struct {
	// InputBase is the staged delta corpus (see Stage) — only the new and
	// changed documents, not the whole corpus. Empty means a deletions-only
	// delta: no job runs and the published generation carries only
	// tombstones.
	InputBase string
	// StartRow is the absolute row index (full-corpus staging order, before
	// any tombstone compaction) where the delta's rows begin. Appends use
	// the current total row count; rewrites of existing documents use a
	// StartRow inside the covered range, superseding those rows.
	StartRow int
	// Deleted lists absolute row indices this delta tombstones. Tombstoned
	// rows disappear from the compacted view (LoadMatrix) until a later
	// generation rewrites them.
	Deleted []int
}

// ExecuteDelta runs the labeling-function set over a staged corpus delta
// only — through the same fused map-only job, worker seam, and resume
// machinery as a full Execute — and publishes the resulting votes as a new
// generation over the columnar artifact instead of rewriting it. The
// returned matrix covers only the delta rows; LoadMatrix assembles the
// compacted full view. The generation number of the published delta is
// returned for staleness accounting.
//
// The report's task counters cover only the delta's tasks: a delta run
// launches no work over the unchanged corpus.
func (e *Executor[T]) ExecuteDelta(ctx context.Context, lfs []lfapi.LF[T], d Delta) (*labelmodel.Matrix, *Report, int, error) {
	if e.Decode == nil {
		return nil, nil, 0, fmt.Errorf("lf: executor has no decoder")
	}
	if err := lfapi.ValidateNames(lfs); err != nil {
		return nil, nil, 0, err
	}
	if d.StartRow < 0 {
		return nil, nil, 0, fmt.Errorf("lf: delta starts at negative row %d", d.StartRow)
	}
	gen, err := LatestGeneration(e.FS, e.votesBase())
	if err != nil {
		return nil, nil, 0, err
	}
	gen++
	ctx, span := obs.StartSpan(ctx, "lf.execute_delta",
		obs.Int("functions", len(lfs)),
		obs.Int("generation", gen),
		obs.Int("start_row", d.StartRow),
		obs.Int("deleted", len(d.Deleted)))
	mx, report, err := e.executeDelta(ctx, lfs, d, gen)
	if report != nil {
		span.SetAttr(
			obs.Int("delta_rows", report.Examples),
			obs.Int("task_attempts", report.TaskAttempts),
			obs.Int("tasks_resumed", report.TasksResumed))
	}
	span.EndErr(err)
	if err != nil {
		return nil, nil, 0, err
	}
	return mx, report, gen, nil
}

func (e *Executor[T]) executeDelta(ctx context.Context, lfs []lfapi.LF[T], d Delta, gen int) (*labelmodel.Matrix, *Report, error) {
	names := make([]string, len(lfs))
	//drybellvet:tightloop — bounded by the function set, in-memory name collection
	for j, f := range lfs {
		names[j] = f.LFMeta().Name
	}
	var matrix *labelmodel.Matrix
	report := &Report{PerLF: make([]LFReport, len(lfs))}
	nsh := 1
	if d.InputBase == "" {
		if len(d.Deleted) == 0 {
			return nil, nil, fmt.Errorf("lf: delta has no staged input and no deletions")
		}
		// Deletions-only: the generation carries tombstones and no data
		// segment; the per-function report stays all-zero.
		//drybellvet:tightloop — bounded by the function set, in-memory report assembly
		for j, f := range lfs {
			meta := f.LFMeta()
			report.PerLF[j] = LFReport{Name: meta.Name, Category: meta.Category, Servable: meta.Servable}
		}
	} else {
		var err error
		// Per-generation scratch: delta jobs must never collide with the base
		// run's checkpoints (same ResumeKey, different corpus).
		scratch := path.Join(e.scratch(), fmt.Sprintf("gen-%05d", gen))
		matrix, report, _, nsh, err = e.runFused(ctx, lfs, d.InputBase, scratch, gen)
		if err != nil {
			return nil, nil, err
		}
	}
	meta := GenerationMeta{Gen: gen, Names: names, StartRow: d.StartRow, Shards: nsh, Deleted: d.Deleted}
	if err := WriteGeneration(e.FS, e.votesBase(), meta, matrix); err != nil {
		return nil, nil, err
	}
	return matrix, report, nil
}

// resumeFromVotes is the stage-level resume fast path: when the columnar
// vote artifact already holds every requested function's votes for exactly
// the staged corpus, the matrix is loaded back and no job runs. Anything
// short of a complete match — artifact absent, functions missing, row count
// different — falls through to task-level execution (whose own manifests
// then skip committed work).
func (e *Executor[T]) resumeFromVotes(lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, bool) {
	base := e.votesBase()
	if !HasVotes(e.FS, base) {
		return nil, nil, false
	}
	stored, err := VoteNames(e.FS, base)
	if err != nil {
		return nil, nil, false
	}
	have := make(map[string]bool, len(stored))
	for _, name := range stored {
		have[name] = true
	}
	names := make([]string, len(lfs))
	for j, f := range lfs {
		names[j] = f.LFMeta().Name
		if !have[names[j]] {
			return nil, nil, false
		}
	}
	staged := e.KnownExamples
	if staged <= 0 {
		var err error
		if staged, err = mapreduce.ReadStagedCount(e.FS, e.InputBase); err != nil {
			if staged, err = mapreduce.CountRecords(e.FS, e.InputBase); err != nil {
				return nil, nil, false
			}
		}
	}
	start := time.Now() //drybellvet:wallclock — times the resume load for the report only
	mx, _, err := ReadVotes(e.FS, base, names)
	if err != nil || mx.NumExamples() != staged {
		return nil, nil, false
	}
	// The report is reconstructed from the matrix itself; per-node detail
	// (model-server launches, corpus passes) belongs to the run that
	// actually executed.
	report := &Report{
		PerLF:            make([]LFReport, len(lfs)),
		Examples:         staged,
		ResumedFromVotes: true,
	}
	for j, f := range lfs {
		meta := f.LFMeta()
		r := LFReport{Name: meta.Name, Category: meta.Category, Servable: meta.Servable}
		for i := 0; i < staged; i++ {
			switch mx.At(i, j) {
			case labelmodel.Positive:
				r.Positives++
			case labelmodel.Negative:
				r.Negatives++
			default:
				r.Abstains++
			}
		}
		report.PerLF[j] = r
	}
	report.Duration = time.Since(start)
	return mx, report, true
}

// scratch is the DFS runtime area for vote jobs.
func (e *Executor[T]) scratch() string {
	if e.ScratchBase != "" {
		return e.ScratchBase
	}
	return path.Join(e.OutputPrefix, "_runtime")
}

// resumeKeyFor fingerprints the executed function set (order matters: it
// fixes the columnar row layout), so checkpoints from a different set are
// never reused.
func resumeKeyFor(names []string) string {
	return "lfs:" + strings.Join(names, "\x1f")
}

// executeFused runs every labeling function inside one map-only job (see
// runFused) and merges the assembled votes into the columnar artifact.
func (e *Executor[T]) executeFused(ctx context.Context, lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	matrix, report, names, nsh, err := e.runFused(ctx, lfs, e.InputBase, e.scratch(), 0)
	if err != nil {
		return nil, nil, err
	}
	if err := publishVotes(e.FS, e.votesBase(), matrix, names, nsh); err != nil {
		return nil, nil, err
	}
	return matrix, report, nil
}

// runFused is the fused execution engine shared by full runs and delta runs:
// one map-only job over inputBase in which each task decodes its shard once,
// evaluates all functions over the decoded records (vectorized where they
// support it), and emits one n-byte columnar vote row per record. It
// assembles and returns the matrix without publishing it — full runs merge
// it into the flat artifact, delta runs publish it as a generation.
func (e *Executor[T]) runFused(ctx context.Context, lfs []lfapi.LF[T], inputBase, scratchBase string, generation int) (*labelmodel.Matrix, *Report, []string, int, error) {
	start := time.Now() //drybellvet:wallclock — report durations only, never persisted votes
	report := &Report{PerLF: make([]LFReport, len(lfs))}
	names := make([]string, len(lfs))
	passes := make([]int, len(lfs))
	for j, f := range lfs {
		names[j] = f.LFMeta().Name
		passes[j] = 1
		// Two-pass functions (AggregateFunc) fit their corpus-level
		// statistics from the staged input before the vote job launches. A
		// delta run fits over the delta corpus only — corpus-level statistics
		// from the base run are reused via Fitted().
		if fitter, ok := f.(lfapi.CorpusFitter[T]); ok && !fitter.Fitted() {
			_, fitSpan := obs.StartSpan(ctx, "lf.fit "+names[j])
			err := fitter.FitCorpus(ctx, corpusSeq(e.FS, inputBase, e.Decode))
			fitSpan.EndErr(err)
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("lf: fit %s: %w", names[j], err)
			}
			passes[j] = 2
		}
	}

	res, err := mapreduce.RunContext(ctx, mapreduce.Job{
		Name:           "lf-votes",
		FS:             e.FS,
		InputBase:      inputBase,
		Mapper:         &fusedTask[T]{ctx: ctx, lfs: lfs, decode: e.Decode, noBatch: e.NoBatch},
		CollectOutput:  true,
		Parallelism:    e.Parallelism,
		Workers:        e.Workers,
		Code:           FusedVoteCode(names),
		MaxAttempts:    e.MaxAttempts,
		StragglerAfter: e.StragglerAfter,
		Resume:         e.Resume,
		ScratchBase:    scratchBase,
		ResumeKey:      resumeKeyFor(names),
		FailureHook:    e.FailureHook,
		Generation:     generation,
	})
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("lf: execute: %w", err)
	}
	report.TaskAttempts = res.Attempts
	report.TasksResumed = res.SkippedTasks
	report.SpeculativeAttempts = res.SpeculativeAttempts
	total := 0
	for _, shard := range res.MapOutputs {
		total += len(shard)
	}
	if total == 0 {
		return nil, nil, nil, 0, fmt.Errorf("lf: staged corpus at %s is empty", inputBase)
	}
	matrix := labelmodel.NewMatrix(total, len(lfs))
	nsh := len(res.MapOutputs)
	for s, shard := range res.MapOutputs {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, 0, fmt.Errorf("lf: assemble: %w", err)
		}
		for r, rec := range shard {
			if len(rec) != len(lfs) {
				return nil, nil, nil, 0, fmt.Errorf("lf: vote row has %d bytes for %d functions", len(rec), len(lfs))
			}
			idx := s + r*nsh
			if idx >= total {
				return nil, nil, nil, 0, fmt.Errorf("lf: shard layout inconsistent (index %d of %d)", idx, total)
			}
			for j, bt := range rec {
				v := labelmodel.Label(int8(bt))
				if !v.Valid() {
					return nil, nil, nil, 0, fmt.Errorf("lf %s: vote byte %d out of range", names[j], int8(bt))
				}
				matrix.Set(idx, j, v)
			}
		}
	}
	report.Examples = total
	dur := time.Since(start)
	//drybellvet:tightloop — bounded by the function set, in-memory report assembly
	for j, f := range lfs {
		meta := f.LFMeta()
		// The functions share one fused pass; each reports its wall time.
		report.PerLF[j] = LFReport{
			Name: meta.Name, Category: meta.Category, Servable: meta.Servable,
			Duration:             dur,
			Positives:            res.Counters[voteCounterKey(meta.Name, "positive")],
			Negatives:            res.Counters[voteCounterKey(meta.Name, "negative")],
			Abstains:             res.Counters[voteCounterKey(meta.Name, "abstain")],
			ModelServersLaunched: res.Counters[serverCounterKey(meta.Name)],
			CorpusPasses:         passes[j],
		}
	}
	report.Duration = time.Since(start)
	return matrix, report, names, nsh, nil
}

// executePerLF is the one-job-per-function mode (Executor.PerLFJobs).
func (e *Executor[T]) executePerLF(ctx context.Context, lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	start := time.Now() //drybellvet:wallclock — report durations only, never persisted votes
	report := &Report{PerLF: make([]LFReport, len(lfs))}
	var matrix *labelmodel.Matrix
	names := make([]string, len(lfs))
	shardCount := 0

	for j, f := range lfs {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("lf: execute: %w", err)
		}
		meta := f.LFMeta()
		names[j] = meta.Name
		jobStart := time.Now() //drybellvet:wallclock — per-job duration for the report

		// Two-pass functions (AggregateFunc) fit their corpus-level
		// statistics from the staged input before the vote job launches.
		passes := 1
		if fitter, ok := f.(lfapi.CorpusFitter[T]); ok && !fitter.Fitted() {
			_, fitSpan := obs.StartSpan(ctx, "lf.fit "+meta.Name)
			err := fitter.FitCorpus(ctx, e.corpus())
			fitSpan.EndErr(err)
			if err != nil {
				return nil, nil, fmt.Errorf("lf: fit %s: %w", meta.Name, err)
			}
			passes = 2
		}

		// The job collects its votes in memory instead of committing a
		// per-function recordio shard set: each function's column is merged
		// into the one columnar artifact right after its job (see
		// publishVotes below), so a vote persists as one byte instead of a
		// framed record written and re-read per function.
		res, err := mapreduce.RunContext(ctx, mapreduce.Job{
			Name:           "lf-" + meta.Name,
			FS:             e.FS,
			InputBase:      e.InputBase,
			Mapper:         e.mapperFor(ctx, f),
			CollectOutput:  true,
			Parallelism:    e.Parallelism,
			Workers:        e.Workers,
			Code:           PerLFVoteCode(meta.Name),
			MaxAttempts:    e.MaxAttempts,
			StragglerAfter: e.StragglerAfter,
			Resume:         e.Resume,
			ScratchBase:    path.Join(e.scratch(), meta.Name),
			ResumeKey:      resumeKeyFor(names[j : j+1]),
			FailureHook:    e.FailureHook,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("lf: execute %s: %w", meta.Name, err)
		}
		report.TaskAttempts += res.Attempts
		report.TasksResumed += res.SkippedTasks
		report.SpeculativeAttempts += res.SpeculativeAttempts
		total := 0
		for _, shard := range res.MapOutputs {
			total += len(shard)
		}
		if total == 0 {
			return nil, nil, fmt.Errorf("lf: staged corpus at %s is empty", e.InputBase)
		}
		if matrix == nil {
			matrix = labelmodel.NewMatrix(total, len(lfs))
			report.Examples = total
			shardCount = len(res.MapOutputs)
		} else if total != report.Examples {
			return nil, nil, fmt.Errorf("lf: %s produced %d votes, earlier functions produced %d",
				meta.Name, total, report.Examples)
		}
		// Input shard s holds records s, s+N, s+2N, …: the map-only layout
		// that restores staging order.
		n := len(res.MapOutputs)
		for s, shard := range res.MapOutputs {
			for r, rec := range shard {
				v, err := decodeVote(meta.Name, rec)
				if err != nil {
					return nil, nil, fmt.Errorf("lf: execute %s: shard %d record %d: %w", meta.Name, s, r, err)
				}
				idx := s + r*n
				if idx >= total {
					return nil, nil, fmt.Errorf("lf: %s: shard layout inconsistent (index %d of %d)", meta.Name, idx, total)
				}
				matrix.Set(idx, j, v)
			}
		}
		// Per-function durability, matching the paper's independent-job
		// deployment: this function's column is merged into the artifact as
		// soon as its job finishes, so a later function's failure (or a
		// crash) loses only the unfinished work. Incrementally re-merging a
		// growing artifact is O(n²·m) across a run — the deliberate price
		// of per-function durability in this fidelity mode; the default
		// fused mode publishes once.
		col := labelmodel.NewMatrix(total, 1)
		for i := 0; i < total; i++ {
			col.Set(i, 0, matrix.At(i, j))
		}
		if err := publishVotes(e.FS, e.votesBase(), col, names[j:j+1], shardCount); err != nil {
			return nil, nil, err
		}
		report.PerLF[j] = LFReport{
			Name: meta.Name, Category: meta.Category, Servable: meta.Servable,
			Duration:             time.Since(jobStart),
			Positives:            res.Counters[voteCounterKey(meta.Name, "positive")],
			Negatives:            res.Counters[voteCounterKey(meta.Name, "negative")],
			Abstains:             res.Counters[voteCounterKey(meta.Name, "abstain")],
			ModelServersLaunched: res.Counters["model-servers-launched"],
			CorpusPasses:         passes,
		}
	}
	report.Duration = time.Since(start)
	return matrix, report, nil
}

// publishVotes merges freshly executed votes into the columnar artifact and
// commits it, so independent invocations accumulate columns — the paper's
// loose coupling, where each labeling function can run as its own process
// and later runs add votes alongside earlier ones (see cmd/lfrun). The
// filesystem has atomic renames but no compare-and-swap, so a concurrent
// writer between our read and our write could make its columns vanish;
// after each write the meta is re-read and the merge retried until every
// column that was visible survives together with ours.
func publishVotes(fs dfs.FS, base string, mx *labelmodel.Matrix, names []string, shards int) error {
	const attempts = 4
	for try := 0; try < attempts; try++ {
		merged, mergedNames := mergeVotes(fs, base, mx, names)
		if err := WriteVotes(fs, base, merged, mergedNames, shards); err != nil {
			return err
		}
		// Verify the full artifact, not just the meta: interleaved shard
		// renames from a concurrent writer leave a mixed-generation set,
		// which the integrity check detects — treat that like lost columns
		// and merge again. Whoever verifies last converges the artifact to
		// the union.
		after, err := VerifyVotes(fs, base)
		if err != nil {
			continue
		}
		have := make(map[string]bool, len(after))
		for _, name := range after {
			have[name] = true
		}
		lost := false
		for _, name := range mergedNames {
			if !have[name] {
				lost = true
				break
			}
		}
		if !lost {
			return nil
		}
	}
	return fmt.Errorf("lf: vote artifact at %s kept changing under concurrent writers; giving up after %d attempts", base, attempts)
}

// mergeVotes combines freshly executed votes with an existing columnar
// artifact: existing columns keep their position (same-named columns are
// replaced by the fresh votes), new columns append in execution order. An
// absent, unreadable, or different-corpus artifact (example count mismatch)
// is simply superseded by the fresh votes.
func mergeVotes(fs dfs.FS, base string, mx *labelmodel.Matrix, names []string) (*labelmodel.Matrix, []string) {
	if !HasVotes(fs, base) {
		return mx, names
	}
	// Common case first, from the meta alone: the fresh run covers every
	// stored column (e.g. re-running the standard whole-set pipeline), so
	// nothing of the old artifact survives and its shards need not even be
	// read.
	oldNames, err := VoteNames(fs, base)
	if err != nil {
		return mx, names
	}
	freshSet := make(map[string]bool, len(names))
	for _, name := range names {
		freshSet[name] = true
	}
	allCovered := true
	for _, name := range oldNames {
		if !freshSet[name] {
			allCovered = false
			break
		}
	}
	if allCovered {
		return mx, names
	}
	old, _, err := ReadVotes(fs, base, nil)
	if err != nil || old.NumExamples() != mx.NumExamples() {
		return mx, names
	}
	return mergeVotesAt(old, oldNames, mx, names, 0)
}

// mergeVotesAt is the row-range merge shared by whole-artifact publication
// (mergeVotes, startRow 0) and generation layering (ReadVersioned): fresh
// votes covering rows [startRow, startRow+k) of the view supersede the old
// matrix column-wise — columns the fresh matrix carries are overwritten
// inside the range, columns it lacks keep their old votes — while rows
// outside the range pass through unchanged and the view grows to cover
// appended rows. New columns join the union after the existing ones,
// Abstain-filled wherever they never voted. old may be nil (empty view).
func mergeVotesAt(old *labelmodel.Matrix, oldNames []string, mx *labelmodel.Matrix, names []string, startRow int) (*labelmodel.Matrix, []string) {
	oldRows := 0
	if old != nil {
		oldRows = old.NumExamples()
	}
	total := oldRows
	if end := startRow + mx.NumExamples(); end > total {
		total = end
	}
	oldIdx := make(map[string]int, len(oldNames))
	for j, name := range oldNames {
		oldIdx[name] = j
	}
	mergedNames := append([]string(nil), oldNames...)
	fresh := make(map[string]int, len(names))
	for j, name := range names {
		fresh[name] = j
		if _, ok := oldIdx[name]; !ok {
			mergedNames = append(mergedNames, name)
		}
	}
	merged := labelmodel.NewMatrix(total, len(mergedNames))
	end := startRow + mx.NumExamples()
	for k, name := range mergedNames {
		fj, inFresh := fresh[name]
		oj, inOld := oldIdx[name]
		for i := 0; i < total; i++ {
			switch {
			case inFresh && i >= startRow && i < end:
				merged.Set(i, k, mx.At(i-startRow, fj))
			case inOld && i < oldRows:
				merged.Set(i, k, old.At(i, oj))
			}
		}
	}
	return merged, mergedNames
}

// votesBase is the DFS base of the columnar vote artifact.
func (e *Executor[T]) votesBase() string { return path.Join(e.OutputPrefix, "votes") }

// mapperFor adapts one labeling function to the MapReduce engine, choosing
// the batch-capable adapter when the function vectorizes and batching is
// not disabled.
func (e *Executor[T]) mapperFor(ctx context.Context, f lfapi.LF[T]) mapreduce.Mapper {
	return voteMapper(ctx, f, e.Decode, e.NoBatch)
}

// voteMapper is mapperFor detached from the Executor, so worker-side job
// code (RegisterVoteJobs) builds the identical adapter.
func voteMapper[T any](ctx context.Context, f lfapi.LF[T], decode func([]byte) (T, error), noBatch bool) mapreduce.Mapper {
	task := lfTask[T]{ctx: ctx, f: f, decode: decode}
	if !noBatch {
		if _, ok := f.(lfapi.BatchVoter[T]); ok {
			return &lfBatchTask[T]{task}
		}
	}
	return &task
}

// attemptCtx prefers the engine's per-attempt context over the run context:
// votes evaluated under it stop promptly when the coordinator cancels a
// losing speculative attempt, freeing the worker. The attempt context is a
// child of the run context, so run-level cancellation still reaches every
// vote. Setup/Teardown stay on the run context — a canceled attempt must
// still stop whatever its Setup started.
func attemptCtx(tctx *mapreduce.TaskContext, run context.Context) context.Context {
	if tctx.Ctx != nil {
		return tctx.Ctx
	}
	return run
}

// lfTask adapts one labeling function to a MapReduce mapper, one vote per
// record. Per task (simulated compute node) it derives a NodeLocal instance
// and brackets it with the function's Lifecycle — the paper's "launch a
// model server on each node in Setup, stop it in Teardown".
type lfTask[T any] struct {
	ctx    context.Context
	f      lfapi.LF[T]
	decode func([]byte) (T, error)
}

// instance returns this task's per-node function instance.
func (m *lfTask[T]) instance(tctx *mapreduce.TaskContext) lfapi.LF[T] {
	return tctx.State().(lfapi.LF[T])
}

// Setup implements mapreduce.Mapper.
func (m *lfTask[T]) Setup(tctx *mapreduce.TaskContext) error {
	inst := m.f
	if nl, ok := m.f.(lfapi.NodeLocal[T]); ok {
		inst = nl.ForNode()
	}
	if lc, ok := inst.(lfapi.Lifecycle); ok {
		if err := lc.Setup(m.ctx); err != nil {
			return fmt.Errorf("lf %s: setup: %w", m.f.LFMeta().Name, err)
		}
	}
	if owner, ok := inst.(interface{ OwnsModelServer() bool }); ok && owner.OwnsModelServer() {
		tctx.Counters.Inc("model-servers-launched", 1)
	}
	tctx.SetState(inst)
	return nil
}

// Map implements mapreduce.Mapper.
func (m *lfTask[T]) Map(tctx *mapreduce.TaskContext, rec []byte, emit mapreduce.Emitter) error {
	name := m.f.LFMeta().Name
	x, err := m.decode(rec)
	if err != nil {
		return fmt.Errorf("lf %s: %w", name, err)
	}
	v, err := m.instance(tctx).Vote(attemptCtx(tctx, m.ctx), x)
	if err != nil {
		return err
	}
	if !v.Valid() {
		return fmt.Errorf("lf %s: invalid vote %d", name, v)
	}
	countVote(tctx, name, v)
	b, err := encodeVote(v)
	if err != nil {
		return fmt.Errorf("lf %s: %w", name, err)
	}
	emit("", b)
	return nil
}

// Teardown implements mapreduce.Mapper.
func (m *lfTask[T]) Teardown(tctx *mapreduce.TaskContext) error {
	inst, ok := tctx.State().(lfapi.LF[T])
	if !ok {
		return nil // Setup never ran
	}
	if lc, ok := inst.(lfapi.Lifecycle); ok {
		if err := lc.Teardown(m.ctx); err != nil {
			return fmt.Errorf("lf %s: teardown: %w", m.f.LFMeta().Name, err)
		}
	}
	return nil
}

// fusedTask evaluates the whole labeling-function set inside one map task:
// records are decoded once, every function votes over the decoded slice
// (through its vectorized VoteBatch when available), and the task emits one
// packed n-byte vote row per record — the columnar layout the vote artifact
// and the matrix assembly consume directly. Per-node semantics match the
// per-function jobs exactly: each task derives NodeLocal instances and
// brackets them with Lifecycle, so e.g. one NLP model server still launches
// per simulated compute node.
type fusedTask[T any] struct {
	ctx     context.Context
	lfs     []lfapi.LF[T]
	decode  func([]byte) (T, error)
	noBatch bool
}

// fusedState is the per-task state: one instance per function, plus how
// many completed Setup (for teardown after a mid-setup failure).
type fusedState[T any] struct {
	instances []lfapi.LF[T]
	started   int
}

// Setup implements mapreduce.Mapper. The engine does not call Teardown
// after a failed Setup, so a mid-set failure tears down the instances that
// already started before returning — otherwise their model servers would
// leak once per task attempt.
func (m *fusedTask[T]) Setup(tctx *mapreduce.TaskContext) error {
	st := &fusedState[T]{instances: make([]lfapi.LF[T], len(m.lfs))}
	tctx.SetState(st)
	for j, f := range m.lfs {
		inst := f
		if nl, ok := f.(lfapi.NodeLocal[T]); ok {
			inst = nl.ForNode()
		}
		if lc, ok := inst.(lfapi.Lifecycle); ok {
			if err := lc.Setup(m.ctx); err != nil {
				err = fmt.Errorf("lf %s: setup: %w", f.LFMeta().Name, err)
				if tdErr := m.Teardown(tctx); tdErr != nil {
					return fmt.Errorf("%w (and tearing down earlier functions failed: %v)", err, tdErr)
				}
				return err
			}
		}
		if owner, ok := inst.(interface{ OwnsModelServer() bool }); ok && owner.OwnsModelServer() {
			tctx.Counters.Inc(serverCounterKey(f.LFMeta().Name), 1)
		}
		st.instances[j] = inst
		st.started = j + 1
	}
	return nil
}

// Map implements mapreduce.Mapper for interface completeness; the engine
// always drives fused tasks through MapBatch.
func (m *fusedTask[T]) Map(tctx *mapreduce.TaskContext, rec []byte, emit mapreduce.Emitter) error {
	return m.MapBatch(tctx, [][]byte{rec}, emit)
}

// MapBatch implements mapreduce.BatchMapper.
func (m *fusedTask[T]) MapBatch(tctx *mapreduce.TaskContext, records [][]byte, emit mapreduce.Emitter) error {
	st := tctx.State().(*fusedState[T])
	ctx := attemptCtx(tctx, m.ctx)
	xs := make([]T, len(records))
	for i, rec := range records {
		if err := ctx.Err(); err != nil {
			return err
		}
		x, err := m.decode(rec)
		if err != nil {
			return fmt.Errorf("lf-votes: %w", err)
		}
		xs[i] = x
	}
	n := len(m.lfs)
	rows := make([]byte, len(records)*n)
	for j, inst := range st.instances {
		meta := m.lfs[j].LFMeta()
		var votes []labelmodel.Label
		var err error
		if m.noBatch {
			votes, err = scalarVotes(ctx, meta.Name, inst, xs)
		} else {
			votes, err = lfapi.VoteAll(ctx, inst, xs)
		}
		if err != nil {
			return err
		}
		var pos, neg, abs int64
		for i, v := range votes {
			b, err := labelmodel.VoteByte(v)
			if err != nil {
				return fmt.Errorf("lf %s: %w", meta.Name, err)
			}
			rows[i*n+j] = b
			switch v {
			case labelmodel.Positive:
				pos++
			case labelmodel.Negative:
				neg++
			default:
				abs++
			}
		}
		// One counter flush per function per task, not one per vote.
		tctx.Counters.Inc(voteCounterKey(meta.Name, "positive"), pos)
		tctx.Counters.Inc(voteCounterKey(meta.Name, "negative"), neg)
		tctx.Counters.Inc(voteCounterKey(meta.Name, "abstain"), abs)
	}
	//drybellvet:tightloop — in-memory emit of rows already computed above
	for i := range records {
		emit("", rows[i*n:(i+1)*n])
	}
	return nil
}

// Teardown implements mapreduce.Mapper.
func (m *fusedTask[T]) Teardown(tctx *mapreduce.TaskContext) error {
	st, ok := tctx.State().(*fusedState[T])
	if !ok {
		return nil // Setup never ran
	}
	var firstErr error
	for j, inst := range st.instances[:st.started] {
		if lc, ok := inst.(lfapi.Lifecycle); ok {
			if err := lc.Teardown(m.ctx); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("lf %s: teardown: %w", m.lfs[j].LFMeta().Name, err)
			}
		}
	}
	return firstErr
}

// scalarVotes forces record-at-a-time evaluation (the NoBatch baseline),
// with the same validation VoteAll applies.
func scalarVotes[T any](ctx context.Context, name string, f lfapi.LF[T], xs []T) ([]labelmodel.Label, error) {
	votes := make([]labelmodel.Label, len(xs))
	for i, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lf %s: %w", name, err)
		}
		v, err := f.Vote(ctx, x)
		if err != nil {
			return nil, err
		}
		if !v.Valid() {
			return nil, fmt.Errorf("lf %s: invalid vote %d", name, v)
		}
		votes[i] = v
	}
	return votes, nil
}

// lfBatchTask is the vectorized adapter: the engine hands each task's
// records over in one MapBatch call, and the function scores them through
// its VoteBatch in a single invocation.
type lfBatchTask[T any] struct {
	lfTask[T]
}

// MapBatch implements mapreduce.BatchMapper.
func (m *lfBatchTask[T]) MapBatch(tctx *mapreduce.TaskContext, records [][]byte, emit mapreduce.Emitter) error {
	name := m.f.LFMeta().Name
	ctx := attemptCtx(tctx, m.ctx)
	xs := make([]T, len(records))
	for i, rec := range records {
		if err := ctx.Err(); err != nil {
			return err
		}
		x, err := m.decode(rec)
		if err != nil {
			return fmt.Errorf("lf %s: %w", name, err)
		}
		xs[i] = x
	}
	votes, err := lfapi.VoteAll(ctx, m.instance(tctx), xs)
	if err != nil {
		return err
	}
	for _, v := range votes {
		countVote(tctx, name, v)
		b, err := encodeVote(v)
		if err != nil {
			return fmt.Errorf("lf %s: %w", name, err)
		}
		emit("", b)
	}
	return nil
}

// LoadMatrix assembles the label matrix from vote state already on the DFS
// — the output of an earlier Execute run — without re-executing anything.
// Column j holds the votes of names[j]. This is how a caller resumes a
// pipeline from persisted state: labeling functions share data via the
// filesystem, so their outputs outlive the process that ran them.
//
// The columnar vote artifact is tried first; a filesystem carrying only the
// legacy layout (one recordio shard set per function under
// "<prefix>/<lf-name>", what Execute wrote before the columnar format)
// still loads through the compatibility path below.
func (e *Executor[T]) LoadMatrix(names []string) (*labelmodel.Matrix, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("lf: no labeling function names to load")
	}
	// Generations first: once any delta has been published, the flat
	// artifact alone is stale, and the compacted view of the chain is the
	// corpus's current matrix.
	if HasGenerations(e.FS, e.votesBase()) {
		mx, _, err := ReadVersioned(e.FS, e.votesBase(), names)
		return mx, err
	}
	if HasVotes(e.FS, e.votesBase()) {
		stored, err := VoteNames(e.FS, e.votesBase())
		if err != nil {
			return nil, err
		}
		have := make(map[string]bool, len(stored))
		for _, name := range stored {
			have[name] = true
		}
		var missing []string
		for _, name := range names {
			if !have[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			mx, _, err := ReadVotes(e.FS, e.votesBase(), names)
			return mx, err
		}
		if len(missing) < len(names) {
			// Mixed state: some columns live in the artifact, the rest in
			// legacy per-function shard sets written by an older binary
			// against the same root. Serve both.
			return e.loadMixed(names, have)
		}
		// None of the requested functions are in the artifact (it belongs
		// to a different set); fall through to the legacy layout.
	}
	var matrix *labelmodel.Matrix
	for j, name := range names {
		votes, err := e.loadVotes(name, path.Join(e.OutputPrefix, name))
		if err != nil {
			return nil, err
		}
		if matrix == nil {
			matrix = labelmodel.NewMatrix(len(votes), len(names))
		} else if len(votes) != matrix.NumExamples() {
			return nil, fmt.Errorf("lf: %s has %d votes on the DFS, earlier functions have %d",
				name, len(votes), matrix.NumExamples())
		}
		for i, v := range votes {
			matrix.Set(i, j, v)
		}
	}
	return matrix, nil
}

// loadMixed assembles a matrix whose columns are split between the columnar
// artifact (names in have) and legacy per-function shard sets.
func (e *Executor[T]) loadMixed(names []string, have map[string]bool) (*labelmodel.Matrix, error) {
	var present []string
	for _, name := range names {
		if have[name] {
			present = append(present, name)
		}
	}
	cmx, _, err := ReadVotes(e.FS, e.votesBase(), present)
	if err != nil {
		return nil, err
	}
	matrix := labelmodel.NewMatrix(cmx.NumExamples(), len(names))
	k := 0
	for j, name := range names {
		if have[name] {
			for i := 0; i < matrix.NumExamples(); i++ {
				matrix.Set(i, j, cmx.At(i, k))
			}
			k++
			continue
		}
		votes, err := e.loadVotes(name, path.Join(e.OutputPrefix, name))
		if err != nil {
			return nil, err
		}
		if len(votes) != matrix.NumExamples() {
			return nil, fmt.Errorf("lf: %s has %d legacy votes on the DFS, the vote artifact has %d examples",
				name, len(votes), matrix.NumExamples())
		}
		for i, v := range votes {
			matrix.Set(i, j, v)
		}
	}
	return matrix, nil
}

// corpus streams the staged input back as decoded examples — the first pass
// of two-pass functions. Iteration order is per-shard, not the original
// staging order, which aggregation cannot observe.
func (e *Executor[T]) corpus() iter.Seq2[T, error] {
	return corpusSeq(e.FS, e.InputBase, e.Decode)
}

// loadVotes reads a function's sharded output back into input-record order.
// Map-only jobs write output shard i from input shard i, and WriteInput
// staged record k into shard k%n at position k/n, so the original index of
// the r-th record of shard s is s + r·n.
func (e *Executor[T]) loadVotes(name, base string) ([]labelmodel.Label, error) {
	shards, err := dfs.ListShards(e.FS, base)
	if err != nil {
		return nil, fmt.Errorf("lf: load votes for %s: %w", name, err)
	}
	n := len(shards)
	perShard := make([][]labelmodel.Label, n)
	total := 0
	for s, shard := range shards {
		data, err := e.FS.ReadFile(shard)
		if err != nil {
			return nil, fmt.Errorf("lf: load votes for %s: %w", name, err)
		}
		recs, err := readAllRecords(data)
		if err != nil {
			return nil, fmt.Errorf("lf: load votes for %s: shard %s: %w", name, shard, err)
		}
		votes := make([]labelmodel.Label, len(recs))
		for r, rec := range recs {
			v, err := decodeVote(name, rec)
			if err != nil {
				return nil, fmt.Errorf("shard %s record %d: %w", shard, r, err)
			}
			votes[r] = v
		}
		perShard[s] = votes
		total += len(votes)
	}
	out := make([]labelmodel.Label, total)
	for s, votes := range perShard {
		for r, v := range votes {
			idx := s + r*n
			if idx >= total {
				return nil, fmt.Errorf("lf: %s: shard layout inconsistent (index %d of %d)", name, idx, total)
			}
			out[idx] = v
		}
	}
	return out, nil
}

func countVote(ctx *mapreduce.TaskContext, name string, v labelmodel.Label) {
	ctx.Counters.Inc(voteCounterKey(name, v.String()), 1)
}

// Counter names use "/"-separated segments by convention but are names in a
// flat registry, not DFS keys, so they are deliberately built by plain
// concatenation (path.Join would eat empty segments).
func voteCounterKey(name, kind string) string {
	return "votes/" + name + "/" + kind //drybellvet:notapath — counter name, not a DFS key
}

func serverCounterKey(name string) string {
	return "model-servers-launched/" + name //drybellvet:notapath — counter name, not a DFS key
}

// encodeVote is the one-byte record encoding of a vote, routed through the
// checked encoder so a corrupt Label can never be persisted as a
// legal-looking byte.
func encodeVote(v labelmodel.Label) ([]byte, error) {
	b, err := labelmodel.VoteByte(v)
	if err != nil {
		return nil, err
	}
	return []byte{b}, nil
}

// decodeVote parses one stored vote byte, rejecting anything outside the
// three legal values and naming the labeling function in every error —
// corrupt shards must say whose output is bad.
func decodeVote(name string, rec []byte) (labelmodel.Label, error) {
	if len(rec) != 1 {
		return 0, fmt.Errorf("lf %s: vote record has %d bytes, want 1", name, len(rec))
	}
	v := labelmodel.Label(int8(rec[0]))
	if !v.Valid() {
		return 0, fmt.Errorf("lf %s: stored vote byte %d out of range (want -1, 0, or +1)", name, int8(rec[0]))
	}
	return v, nil
}
