package lf

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/mapreduce"
)

// Executor runs a set of labeling functions over a DFS-staged corpus and
// assembles the label matrix. One MapReduce job per function, exactly as
// DryBell runs one binary per function (§5.4); jobs run map-only so votes
// stay aligned with input records.
type Executor[T any] struct {
	// FS holds the staged input and receives per-function vote shards.
	FS dfs.FS
	// InputBase is the staged corpus (see Stage).
	InputBase string
	// OutputPrefix prefixes per-function outputs: "<prefix>/<lf-name>".
	OutputPrefix string
	// Decode parses one input record.
	Decode func([]byte) (T, error)
	// Parallelism is the simulated cluster width per job.
	Parallelism int
	// MaxAttempts per task (worker failures are retried).
	MaxAttempts int
	// FailureHook is forwarded to every job, for failure-injection tests.
	FailureHook func(taskID string, attempt int) error
}

// LFReport describes one labeling function's execution.
type LFReport struct {
	Name     string
	Category Category
	Servable bool
	// Votes emitted by value.
	Positives, Negatives, Abstains int64
	// Duration of the function's MapReduce job.
	Duration time.Duration
	// ModelServersLaunched counts per-node model-server launches (zero for
	// default-pipeline functions).
	ModelServersLaunched int64
}

// Report summarizes an Execute call.
type Report struct {
	PerLF []LFReport
	// Examples is the number of input records labeled.
	Examples int
	// Duration is the wall time across all jobs.
	Duration time.Duration
}

// Stage writes examples to the DFS as the executor's sharded input.
func Stage[T any](fs dfs.FS, base string, records [][]byte, shards int) error {
	return mapreduce.WriteInput(fs, base, records, shards)
}

// Execute runs every labeling function and returns the assembled m×n label
// matrix, with column j holding runner j's votes in input-record order.
func (e *Executor[T]) Execute(runners []Runner[T]) (*labelmodel.Matrix, *Report, error) {
	return e.ExecuteContext(context.Background(), runners)
}

// ExecuteContext is Execute under a context: cancellation stops between jobs
// and mid-job (between records), and the partial run commits no label matrix.
func (e *Executor[T]) ExecuteContext(ctx context.Context, runners []Runner[T]) (*labelmodel.Matrix, *Report, error) {
	if len(runners) == 0 {
		return nil, nil, fmt.Errorf("lf: no labeling functions to execute")
	}
	if e.Decode == nil {
		return nil, nil, fmt.Errorf("lf: executor has no decoder")
	}
	seen := map[string]bool{}
	for _, r := range runners {
		name := r.LFMeta().Name
		if name == "" {
			return nil, nil, fmt.Errorf("lf: labeling function with empty name")
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("lf: duplicate labeling function name %q", name)
		}
		seen[name] = true
	}

	start := time.Now()
	report := &Report{PerLF: make([]LFReport, len(runners))}
	var matrix *labelmodel.Matrix

	for j, r := range runners {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("lf: execute: %w", err)
		}
		meta := r.LFMeta()
		outBase := e.OutputPrefix + "/" + meta.Name
		jobStart := time.Now()
		res, err := mapreduce.RunContext(ctx, mapreduce.Job{
			Name:        "lf-" + meta.Name,
			FS:          e.FS,
			InputBase:   e.InputBase,
			OutputBase:  outBase,
			Mapper:      r.Mapper(e.Decode),
			Parallelism: e.Parallelism,
			MaxAttempts: e.MaxAttempts,
			FailureHook: e.FailureHook,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("lf: execute %s: %w", meta.Name, err)
		}
		votes, err := e.loadVotes(outBase)
		if err != nil {
			return nil, nil, fmt.Errorf("lf: load votes for %s: %w", meta.Name, err)
		}
		if matrix == nil {
			matrix = labelmodel.NewMatrix(len(votes), len(runners))
			report.Examples = len(votes)
		} else if len(votes) != report.Examples {
			return nil, nil, fmt.Errorf("lf: %s produced %d votes, earlier functions produced %d",
				meta.Name, len(votes), report.Examples)
		}
		for i, v := range votes {
			matrix.Set(i, j, v)
		}
		rep := LFReport{
			Name: meta.Name, Category: meta.Category, Servable: meta.Servable,
			Duration:             time.Since(jobStart),
			Positives:            res.Counters["votes/"+meta.Name+"/positive"],
			Negatives:            res.Counters["votes/"+meta.Name+"/negative"],
			Abstains:             res.Counters["votes/"+meta.Name+"/abstain"],
			ModelServersLaunched: res.Counters["model-servers-launched"],
		}
		report.PerLF[j] = rep
	}
	report.Duration = time.Since(start)
	return matrix, report, nil
}

// LoadMatrix assembles the label matrix from vote shards already on the DFS
// — the outputs of earlier Execute runs for the named functions — without
// re-executing anything. Column j holds the votes of names[j]. This is how a
// caller resumes a pipeline from persisted state: labeling functions are
// independent executables sharing data via the filesystem, so their outputs
// outlive the process that ran them.
func (e *Executor[T]) LoadMatrix(names []string) (*labelmodel.Matrix, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("lf: no labeling function names to load")
	}
	var matrix *labelmodel.Matrix
	for j, name := range names {
		votes, err := e.loadVotes(e.OutputPrefix + "/" + name)
		if err != nil {
			return nil, fmt.Errorf("lf: load votes for %s: %w", name, err)
		}
		if matrix == nil {
			matrix = labelmodel.NewMatrix(len(votes), len(names))
		} else if len(votes) != matrix.NumExamples() {
			return nil, fmt.Errorf("lf: %s has %d votes on the DFS, earlier functions have %d",
				name, len(votes), matrix.NumExamples())
		}
		for i, v := range votes {
			matrix.Set(i, j, v)
		}
	}
	return matrix, nil
}

// loadVotes reads a function's sharded output back into input-record order.
// Map-only jobs write output shard i from input shard i, and WriteInput
// staged record k into shard k%n at position k/n, so the original index of
// the r-th record of shard s is s + r·n.
func (e *Executor[T]) loadVotes(base string) ([]labelmodel.Label, error) {
	shards, err := dfs.ListShards(e.FS, base)
	if err != nil {
		return nil, err
	}
	n := len(shards)
	perShard := make([][]labelmodel.Label, n)
	total := 0
	for s, shard := range shards {
		data, err := e.FS.ReadFile(shard)
		if err != nil {
			return nil, err
		}
		recs, err := readAllRecords(data)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", shard, err)
		}
		votes := make([]labelmodel.Label, len(recs))
		for r, rec := range recs {
			v, err := decodeVote(rec)
			if err != nil {
				return nil, fmt.Errorf("shard %s record %d: %w", shard, r, err)
			}
			votes[r] = v
		}
		perShard[s] = votes
		total += len(votes)
	}
	out := make([]labelmodel.Label, total)
	for s, votes := range perShard {
		for r, v := range votes {
			idx := s + r*n
			if idx >= total {
				return nil, fmt.Errorf("lf: shard layout inconsistent (index %d of %d)", idx, total)
			}
			out[idx] = v
		}
	}
	return out, nil
}
