package lf

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/mapreduce"
	lfapi "repro/pkg/drybell/lf"
)

// Executor runs a set of labeling functions over a DFS-staged corpus and
// assembles the label matrix. One MapReduce job per function, exactly as
// DryBell runs one binary per function (§5.4); jobs run map-only so votes
// stay aligned with input records.
//
// The executor consumes public-API lf.LF values and discovers their
// capabilities by interface: NodeLocal functions get one instance per map
// task (the per-compute-node model server of §5.1), Lifecycle brackets each
// task, BatchVoter functions score a whole shard per call through the
// engine's batch path, and CorpusFitter functions get a first streaming
// pass over the staged corpus before their vote job launches.
type Executor[T any] struct {
	// FS holds the staged input and receives per-function vote shards.
	FS dfs.FS
	// InputBase is the staged corpus (see Stage).
	InputBase string
	// OutputPrefix prefixes per-function outputs: "<prefix>/<lf-name>".
	OutputPrefix string
	// Decode parses one input record.
	Decode func([]byte) (T, error)
	// Parallelism is the simulated cluster width per job.
	Parallelism int
	// MaxAttempts per task (worker failures are retried).
	MaxAttempts int
	// FailureHook is forwarded to every job, for failure-injection tests.
	FailureHook func(taskID string, attempt int) error
	// NoBatch forces record-at-a-time evaluation even for functions that
	// implement BatchVoter — the scalar baseline for benchmarks and debug.
	NoBatch bool
}

// LFReport describes one labeling function's execution.
type LFReport struct {
	Name     string
	Category Category
	Servable bool
	// Votes emitted by value.
	Positives, Negatives, Abstains int64
	// Duration of the function's MapReduce job (including a fit pass).
	Duration time.Duration
	// ModelServersLaunched counts per-node model-server launches (zero for
	// default-pipeline functions).
	ModelServersLaunched int64
	// CorpusPasses is 2 for two-pass (aggregation-based) functions that
	// needed a fit pass, 1 otherwise.
	CorpusPasses int
}

// Report summarizes an Execute call.
type Report struct {
	PerLF []LFReport
	// Examples is the number of input records labeled.
	Examples int
	// Duration is the wall time across all jobs.
	Duration time.Duration
}

// Stage writes examples to the DFS as the executor's sharded input.
func Stage[T any](fs dfs.FS, base string, records [][]byte, shards int) error {
	return mapreduce.WriteInput(fs, base, records, shards)
}

// Execute runs every labeling function and returns the assembled m×n label
// matrix, with column j holding function j's votes in input-record order.
func (e *Executor[T]) Execute(lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	return e.ExecuteContext(context.Background(), lfs)
}

// ExecuteContext is Execute under a context: cancellation stops between jobs
// and mid-job (between records or batches), and the partial run commits no
// label matrix.
func (e *Executor[T]) ExecuteContext(ctx context.Context, lfs []lfapi.LF[T]) (*labelmodel.Matrix, *Report, error) {
	if e.Decode == nil {
		return nil, nil, fmt.Errorf("lf: executor has no decoder")
	}
	if err := lfapi.ValidateNames(lfs); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	report := &Report{PerLF: make([]LFReport, len(lfs))}
	var matrix *labelmodel.Matrix

	for j, f := range lfs {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("lf: execute: %w", err)
		}
		meta := f.LFMeta()
		outBase := e.OutputPrefix + "/" + meta.Name
		jobStart := time.Now()

		// Two-pass functions (AggregateFunc) fit their corpus-level
		// statistics from the staged input before the vote job launches.
		passes := 1
		if fitter, ok := f.(lfapi.CorpusFitter[T]); ok && !fitter.Fitted() {
			if err := fitter.FitCorpus(ctx, e.corpus()); err != nil {
				return nil, nil, fmt.Errorf("lf: fit %s: %w", meta.Name, err)
			}
			passes = 2
		}

		res, err := mapreduce.RunContext(ctx, mapreduce.Job{
			Name:        "lf-" + meta.Name,
			FS:          e.FS,
			InputBase:   e.InputBase,
			OutputBase:  outBase,
			Mapper:      e.mapperFor(ctx, f),
			Parallelism: e.Parallelism,
			MaxAttempts: e.MaxAttempts,
			FailureHook: e.FailureHook,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("lf: execute %s: %w", meta.Name, err)
		}
		votes, err := e.loadVotes(meta.Name, outBase)
		if err != nil {
			return nil, nil, err
		}
		if matrix == nil {
			matrix = labelmodel.NewMatrix(len(votes), len(lfs))
			report.Examples = len(votes)
		} else if len(votes) != report.Examples {
			return nil, nil, fmt.Errorf("lf: %s produced %d votes, earlier functions produced %d",
				meta.Name, len(votes), report.Examples)
		}
		for i, v := range votes {
			matrix.Set(i, j, v)
		}
		report.PerLF[j] = LFReport{
			Name: meta.Name, Category: meta.Category, Servable: meta.Servable,
			Duration:             time.Since(jobStart),
			Positives:            res.Counters["votes/"+meta.Name+"/positive"],
			Negatives:            res.Counters["votes/"+meta.Name+"/negative"],
			Abstains:             res.Counters["votes/"+meta.Name+"/abstain"],
			ModelServersLaunched: res.Counters["model-servers-launched"],
			CorpusPasses:         passes,
		}
	}
	report.Duration = time.Since(start)
	return matrix, report, nil
}

// mapperFor adapts one labeling function to the MapReduce engine, choosing
// the batch-capable adapter when the function vectorizes and batching is
// not disabled.
func (e *Executor[T]) mapperFor(ctx context.Context, f lfapi.LF[T]) mapreduce.Mapper {
	task := lfTask[T]{ctx: ctx, f: f, decode: e.Decode}
	if !e.NoBatch {
		if _, ok := f.(lfapi.BatchVoter[T]); ok {
			return &lfBatchTask[T]{task}
		}
	}
	return &task
}

// lfTask adapts one labeling function to a MapReduce mapper, one vote per
// record. Per task (simulated compute node) it derives a NodeLocal instance
// and brackets it with the function's Lifecycle — the paper's "launch a
// model server on each node in Setup, stop it in Teardown".
type lfTask[T any] struct {
	ctx    context.Context
	f      lfapi.LF[T]
	decode func([]byte) (T, error)
}

// instance returns this task's per-node function instance.
func (m *lfTask[T]) instance(tctx *mapreduce.TaskContext) lfapi.LF[T] {
	return tctx.State().(lfapi.LF[T])
}

// Setup implements mapreduce.Mapper.
func (m *lfTask[T]) Setup(tctx *mapreduce.TaskContext) error {
	inst := m.f
	if nl, ok := m.f.(lfapi.NodeLocal[T]); ok {
		inst = nl.ForNode()
	}
	if lc, ok := inst.(lfapi.Lifecycle); ok {
		if err := lc.Setup(m.ctx); err != nil {
			return fmt.Errorf("lf %s: setup: %w", m.f.LFMeta().Name, err)
		}
	}
	if owner, ok := inst.(interface{ OwnsModelServer() bool }); ok && owner.OwnsModelServer() {
		tctx.Counters.Inc("model-servers-launched", 1)
	}
	tctx.SetState(inst)
	return nil
}

// Map implements mapreduce.Mapper.
func (m *lfTask[T]) Map(tctx *mapreduce.TaskContext, rec []byte, emit mapreduce.Emitter) error {
	name := m.f.LFMeta().Name
	x, err := m.decode(rec)
	if err != nil {
		return fmt.Errorf("lf %s: %w", name, err)
	}
	v, err := m.instance(tctx).Vote(m.ctx, x)
	if err != nil {
		return err
	}
	if !v.Valid() {
		return fmt.Errorf("lf %s: invalid vote %d", name, v)
	}
	countVote(tctx, name, v)
	emit("", encodeVote(v))
	return nil
}

// Teardown implements mapreduce.Mapper.
func (m *lfTask[T]) Teardown(tctx *mapreduce.TaskContext) error {
	inst, ok := tctx.State().(lfapi.LF[T])
	if !ok {
		return nil // Setup never ran
	}
	if lc, ok := inst.(lfapi.Lifecycle); ok {
		if err := lc.Teardown(m.ctx); err != nil {
			return fmt.Errorf("lf %s: teardown: %w", m.f.LFMeta().Name, err)
		}
	}
	return nil
}

// lfBatchTask is the vectorized adapter: the engine hands each task's
// records over in one MapBatch call, and the function scores them through
// its VoteBatch in a single invocation.
type lfBatchTask[T any] struct {
	lfTask[T]
}

// MapBatch implements mapreduce.BatchMapper.
func (m *lfBatchTask[T]) MapBatch(tctx *mapreduce.TaskContext, records [][]byte, emit mapreduce.Emitter) error {
	name := m.f.LFMeta().Name
	xs := make([]T, len(records))
	for i, rec := range records {
		x, err := m.decode(rec)
		if err != nil {
			return fmt.Errorf("lf %s: %w", name, err)
		}
		xs[i] = x
	}
	votes, err := lfapi.VoteAll(m.ctx, m.instance(tctx), xs)
	if err != nil {
		return err
	}
	for _, v := range votes {
		countVote(tctx, name, v)
		emit("", encodeVote(v))
	}
	return nil
}

// LoadMatrix assembles the label matrix from vote shards already on the DFS
// — the outputs of earlier Execute runs for the named functions — without
// re-executing anything. Column j holds the votes of names[j]. This is how a
// caller resumes a pipeline from persisted state: labeling functions are
// independent executables sharing data via the filesystem, so their outputs
// outlive the process that ran them.
func (e *Executor[T]) LoadMatrix(names []string) (*labelmodel.Matrix, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("lf: no labeling function names to load")
	}
	var matrix *labelmodel.Matrix
	for j, name := range names {
		votes, err := e.loadVotes(name, e.OutputPrefix+"/"+name)
		if err != nil {
			return nil, err
		}
		if matrix == nil {
			matrix = labelmodel.NewMatrix(len(votes), len(names))
		} else if len(votes) != matrix.NumExamples() {
			return nil, fmt.Errorf("lf: %s has %d votes on the DFS, earlier functions have %d",
				name, len(votes), matrix.NumExamples())
		}
		for i, v := range votes {
			matrix.Set(i, j, v)
		}
	}
	return matrix, nil
}

// corpus streams the staged input back as decoded examples — the first pass
// of two-pass functions. Iteration order is per-shard, not the original
// staging order, which aggregation cannot observe.
func (e *Executor[T]) corpus() iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		var zero T
		shards, err := dfs.ListShards(e.FS, e.InputBase)
		if err != nil {
			yield(zero, err)
			return
		}
		for _, shard := range shards {
			data, err := e.FS.ReadFile(shard)
			if err != nil {
				yield(zero, err)
				return
			}
			recs, err := readAllRecords(data)
			if err != nil {
				yield(zero, fmt.Errorf("shard %s: %w", shard, err))
				return
			}
			for _, rec := range recs {
				x, err := e.Decode(rec)
				if err != nil {
					yield(zero, err)
					return
				}
				if !yield(x, nil) {
					return
				}
			}
		}
	}
}

// loadVotes reads a function's sharded output back into input-record order.
// Map-only jobs write output shard i from input shard i, and WriteInput
// staged record k into shard k%n at position k/n, so the original index of
// the r-th record of shard s is s + r·n.
func (e *Executor[T]) loadVotes(name, base string) ([]labelmodel.Label, error) {
	shards, err := dfs.ListShards(e.FS, base)
	if err != nil {
		return nil, fmt.Errorf("lf: load votes for %s: %w", name, err)
	}
	n := len(shards)
	perShard := make([][]labelmodel.Label, n)
	total := 0
	for s, shard := range shards {
		data, err := e.FS.ReadFile(shard)
		if err != nil {
			return nil, fmt.Errorf("lf: load votes for %s: %w", name, err)
		}
		recs, err := readAllRecords(data)
		if err != nil {
			return nil, fmt.Errorf("lf: load votes for %s: shard %s: %w", name, shard, err)
		}
		votes := make([]labelmodel.Label, len(recs))
		for r, rec := range recs {
			v, err := decodeVote(name, rec)
			if err != nil {
				return nil, fmt.Errorf("shard %s record %d: %w", shard, r, err)
			}
			votes[r] = v
		}
		perShard[s] = votes
		total += len(votes)
	}
	out := make([]labelmodel.Label, total)
	for s, votes := range perShard {
		for r, v := range votes {
			idx := s + r*n
			if idx >= total {
				return nil, fmt.Errorf("lf: %s: shard layout inconsistent (index %d of %d)", name, idx, total)
			}
			out[idx] = v
		}
	}
	return out, nil
}

func countVote(ctx *mapreduce.TaskContext, name string, v labelmodel.Label) {
	ctx.Counters.Inc("votes/"+name+"/"+v.String(), 1)
}

func encodeVote(v labelmodel.Label) []byte { return []byte{byte(int8(v))} }

// decodeVote parses one stored vote byte, rejecting anything outside the
// three legal values and naming the labeling function in every error —
// corrupt shards must say whose output is bad.
func decodeVote(name string, rec []byte) (labelmodel.Label, error) {
	if len(rec) != 1 {
		return 0, fmt.Errorf("lf %s: vote record has %d bytes, want 1", name, len(rec))
	}
	v := labelmodel.Label(int8(rec[0]))
	if !v.Valid() {
		return 0, fmt.Errorf("lf %s: stored vote byte %d out of range (want -1, 0, or +1)", name, int8(rec[0]))
	}
	return v, nil
}
