// Versioned vote store: append-only generations layered over the columnar
// vote artifact.
//
// A batch run publishes the flat artifact at "<prefix>/votes" (votes.go).
// Incremental runs do not rewrite it: each corpus delta publishes a
// generation — a data segment in the same columnar shard format plus a
// CRC'd JSON manifest recording its row range, column names, and tombstoned
// rows — under "<prefix>/votes/_gen/<n>". Manifests are written to a temp
// key and atomically renamed, so a generation is either fully visible or
// absent; the data segment commits before its manifest, so a visible
// manifest always has readable data.
//
// Readers assemble the compacted view of the chain: the legacy flat
// artifact (when present) is the base layer, generations apply in ascending
// order with later row ranges superseding earlier ones column-wise, and
// tombstoned rows are dropped with the remaining rows shifted down. A
// filesystem carrying only the flat artifact reads exactly as before.
package lf

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dfs"
	"repro/internal/labelmodel"
)

// GenerationMeta is the manifest of one vote generation.
type GenerationMeta struct {
	// Gen is the generation number, 1-based and strictly increasing; the
	// legacy flat artifact is implicitly generation 0.
	Gen int `json:"gen"`
	// Names lists this generation's labeling functions in column order.
	Names []string `json:"names"`
	// StartRow is the absolute row index (in staging order, before any
	// tombstone compaction) where this generation's rows begin.
	StartRow int `json:"start_row"`
	// Rows is the number of vote rows in this generation's data segment.
	Rows int `json:"rows"`
	// Shards is the data segment's shard count.
	Shards int `json:"shards"`
	// Deleted lists absolute row indices this generation tombstones. A later
	// generation whose row range covers a tombstoned row resurrects it.
	Deleted []int `json:"deleted,omitempty"`
	// CRC is the IEEE CRC32 of this manifest's JSON with CRC itself zeroed —
	// a torn or hand-edited manifest is rejected at read time.
	CRC uint32 `json:"crc"`
}

// genDir is the DFS directory holding generation manifests and data
// segments for a votes base.
func genDir(base string) string { return path.Join(base, "_gen") }

// genManifestPath is the manifest key of generation gen.
func genManifestPath(base string, gen int) string {
	return path.Join(genDir(base), fmt.Sprintf("%05d", gen))
}

// genDataBase is the columnar data segment base of generation gen. It is a
// sibling key of the manifest ("<manifest>.data"), not a child, so
// disk-backed filesystems never need a key to be both file and directory.
func genDataBase(base string, gen int) string {
	return genManifestPath(base, gen) + ".data"
}

// manifestCRC computes the manifest checksum: the CRC32 of its JSON with the
// CRC field zeroed. Struct-field order makes the marshaling deterministic.
func manifestCRC(meta GenerationMeta) (uint32, error) {
	meta.CRC = 0
	raw, err := json.Marshal(meta)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(raw), nil
}

// WriteGeneration publishes one vote generation: the matrix as a columnar
// data segment, then the CRC'd manifest via write-temp-and-rename, so
// concurrent readers see either the previous chain or the full new
// generation, never a half-written one. meta.Rows and meta.CRC are filled
// here; the caller sets Gen, Names, StartRow, Shards, and Deleted.
func WriteGeneration(fs dfs.FS, base string, meta GenerationMeta, mx *labelmodel.Matrix) error {
	if meta.Gen <= 0 {
		return fmt.Errorf("lf: vote generation number %d, want >= 1 (the flat artifact is generation 0)", meta.Gen)
	}
	if meta.StartRow < 0 {
		return fmt.Errorf("lf: vote generation %d starts at negative row %d", meta.Gen, meta.StartRow)
	}
	if meta.Shards <= 0 {
		return fmt.Errorf("lf: vote generation %d with %d shards", meta.Gen, meta.Shards)
	}
	for _, d := range meta.Deleted {
		if d < 0 {
			return fmt.Errorf("lf: vote generation %d tombstones negative row %d", meta.Gen, d)
		}
	}
	if mx == nil && len(meta.Deleted) == 0 {
		return fmt.Errorf("lf: vote generation %d has neither votes nor tombstones", meta.Gen)
	}
	// A nil matrix is a deletions-only generation: tombstones in the
	// manifest, no data segment.
	meta.Rows = 0
	if mx != nil {
		meta.Rows = mx.NumExamples()
		if err := WriteVotes(fs, genDataBase(base, meta.Gen), mx, meta.Names, meta.Shards); err != nil {
			return fmt.Errorf("lf: write generation %d data: %w", meta.Gen, err)
		}
	}
	crc, err := manifestCRC(meta)
	if err != nil {
		return fmt.Errorf("lf: encode generation %d manifest: %w", meta.Gen, err)
	}
	meta.CRC = crc
	raw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("lf: encode generation %d manifest: %w", meta.Gen, err)
	}
	dst := genManifestPath(base, meta.Gen)
	tmp := dst + ".tmp"
	if err := fs.WriteFile(tmp, raw); err != nil {
		return fmt.Errorf("lf: write generation %d manifest: %w", meta.Gen, err)
	}
	if err := fs.Rename(tmp, dst); err != nil {
		return fmt.Errorf("lf: promote generation %d manifest: %w", meta.Gen, err)
	}
	return nil
}

// HasGenerations reports whether any vote generation has been published over
// the artifact at base.
func HasGenerations(fs dfs.FS, base string) bool {
	gens, err := ListGenerations(fs, base)
	return err == nil && len(gens) > 0
}

// LatestGeneration returns the highest published generation number, or 0
// when only the flat artifact (or nothing) exists.
func LatestGeneration(fs dfs.FS, base string) (int, error) {
	gens, err := ListGenerations(fs, base)
	if err != nil {
		return 0, err
	}
	if len(gens) == 0 {
		return 0, nil
	}
	return gens[len(gens)-1].Gen, nil
}

// ListGenerations returns the published generation manifests in ascending
// generation order, validating each manifest's checksum and its consistency
// with its key. A corrupt manifest fails the whole listing — an incremental
// reader must never silently skip part of the chain.
func ListGenerations(fs dfs.FS, base string) ([]GenerationMeta, error) {
	prefix := genDir(base) + "/" //drybellvet:notapath — List prefix; the trailing "/" is significant
	keys, err := fs.List(prefix)
	if err != nil {
		return nil, fmt.Errorf("lf: list vote generations at %s: %w", base, err)
	}
	var gens []GenerationMeta
	for _, key := range keys {
		name := strings.TrimPrefix(key, prefix)
		// Manifest keys are exactly the zero-padded generation number;
		// everything else under _gen/ (data segment shards and their metas,
		// in-flight .tmp manifests) is not a manifest.
		if strings.ContainsAny(name, "./-") {
			continue
		}
		wantGen, err := strconv.Atoi(name)
		if err != nil {
			continue
		}
		raw, err := fs.ReadFile(key)
		if err != nil {
			return nil, fmt.Errorf("lf: read vote generation manifest %s: %w", key, err)
		}
		var meta GenerationMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			return nil, fmt.Errorf("lf: vote generation manifest %s is corrupt: %w", key, err)
		}
		want, err := manifestCRC(meta)
		if err != nil {
			return nil, fmt.Errorf("lf: vote generation manifest %s: %w", key, err)
		}
		if meta.CRC != want {
			return nil, fmt.Errorf("lf: vote generation manifest %s is corrupt: checksum %08x does not match contents (want %08x)", key, meta.CRC, want)
		}
		if meta.Gen != wantGen {
			return nil, fmt.Errorf("lf: vote generation manifest %s claims generation %d", key, meta.Gen)
		}
		if meta.Rows < 0 || meta.StartRow < 0 || meta.Shards <= 0 || len(meta.Names) == 0 {
			return nil, fmt.Errorf("lf: vote generation manifest %s is degenerate (%d rows from %d, %d shards, %d names)",
				key, meta.Rows, meta.StartRow, meta.Shards, len(meta.Names))
		}
		gens = append(gens, meta)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Gen < gens[j].Gen })
	for i := 1; i < len(gens); i++ {
		if gens[i].Gen == gens[i-1].Gen {
			return nil, fmt.Errorf("lf: duplicate vote generation %d at %s", gens[i].Gen, base)
		}
	}
	return gens, nil
}

// ReadVersioned assembles the compacted view of the generation chain at
// base: the flat artifact (generation 0) layered under every published
// generation in ascending order. Later generations supersede earlier rows in
// their row range column-wise — columns they carry are overwritten, columns
// they don't keep the older votes — and tombstoned rows are dropped from the
// result with subsequent rows shifted down. Column selection follows
// ReadVotes: nil names returns the column union in first-seen order.
//
// With no generations published this is exactly ReadVotes on the flat
// artifact, so pre-versioning filesystems read unchanged.
func ReadVersioned(fs dfs.FS, base string, names []string) (*labelmodel.Matrix, []string, error) {
	gens, err := ListGenerations(fs, base)
	if err != nil {
		return nil, nil, err
	}
	if len(gens) == 0 {
		return ReadVotes(fs, base, names)
	}

	var view *labelmodel.Matrix
	var union []string
	total := 0
	if HasVotes(fs, base) {
		mx, lnames, err := ReadVotes(fs, base, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("lf: versioned votes at %s: base artifact: %w", base, err)
		}
		view, union = mx, lnames
		total = mx.NumExamples()
	}
	deleted := make(map[int]bool)
	for _, g := range gens {
		if g.StartRow > total {
			return nil, nil, fmt.Errorf("lf: vote generation %d at %s starts at row %d, beyond the %d rows covered by earlier generations",
				g.Gen, base, g.StartRow, total)
		}
		if g.Rows > 0 {
			mx, gnames, err := ReadVotes(fs, genDataBase(base, g.Gen), nil)
			if err != nil {
				return nil, nil, fmt.Errorf("lf: vote generation %d at %s: data segment: %w", g.Gen, base, err)
			}
			if mx.NumExamples() != g.Rows {
				return nil, nil, fmt.Errorf("lf: vote generation %d at %s holds %d rows, manifest says %d",
					g.Gen, base, mx.NumExamples(), g.Rows)
			}
			view, union = mergeVotesAt(view, union, mx, gnames, g.StartRow)
			total = view.NumExamples()
			// Rows this generation writes clear earlier tombstones (a
			// rewritten doc supersedes its own deletion); its own tombstones
			// apply after.
			for i := g.StartRow; i < g.StartRow+g.Rows; i++ {
				delete(deleted, i)
			}
		}
		for _, d := range g.Deleted {
			if d >= total {
				return nil, nil, fmt.Errorf("lf: vote generation %d at %s tombstones row %d, beyond the %d rows covered",
					g.Gen, base, d, total)
			}
			deleted[d] = true
		}
	}
	if view == nil {
		return nil, nil, fmt.Errorf("lf: versioned votes at %s carry no vote rows (tombstones only)", base)
	}

	if len(deleted) > 0 {
		live := make([]int, 0, total-len(deleted))
		for i := 0; i < total; i++ {
			if !deleted[i] {
				live = append(live, i)
			}
		}
		view = view.SubsetRows(live)
	}
	if names == nil {
		return view, union, nil
	}
	colOf := make(map[string]int, len(union))
	for j, n := range union {
		colOf[n] = j
	}
	sel := make([]int, len(names))
	for j, n := range names {
		c, ok := colOf[n]
		if !ok {
			return nil, nil, fmt.Errorf("lf: versioned votes at %s have no column for %q (stored: %v)", base, n, union)
		}
		sel[j] = c
	}
	return view.SubsetColumns(sel), names, nil
}

// CompactGenerations folds the generation chain back into one flat columnar
// artifact — the housekeeping step that bounds chain length for readers —
// and removes the folded generation files. The resulting artifact is
// byte-identical to what a from-scratch run over the same (compacted) corpus
// would publish with the same shard count, because the artifact's write
// generation is content-derived.
//
// Tombstoned rows are dropped in the fold, so after compaction row indices
// are the post-compaction staging order; callers that track absolute row
// positions (corpus manifests) must compact those in the same step.
func CompactGenerations(fs dfs.FS, base string, shards int) error {
	gens, err := ListGenerations(fs, base)
	if err != nil {
		return err
	}
	if len(gens) == 0 {
		return nil
	}
	mx, names, err := ReadVersioned(fs, base, nil)
	if err != nil {
		return err
	}
	if err := WriteVotes(fs, base, mx, names, shards); err != nil {
		return fmt.Errorf("lf: compact vote generations at %s: %w", base, err)
	}
	// The flat artifact now carries the whole view; drop the folded chain.
	// Remove manifests first so a crash mid-cleanup leaves orphaned data
	// segments (ignored by readers) rather than manifests with missing data.
	for _, g := range gens {
		if err := fs.Remove(genManifestPath(base, g.Gen)); err != nil {
			return fmt.Errorf("lf: compact vote generations at %s: remove manifest %d: %w", base, g.Gen, err)
		}
	}
	if keys, err := fs.List(genDir(base) + "/"); err == nil { //drybellvet:notapath — List prefix; the trailing "/" is significant
		for _, key := range keys {
			_ = fs.Remove(key)
		}
	}
	return nil
}
