package lf

import (
	"bytes"

	"repro/internal/recordio"
)

// readAllRecords decodes a recordio shard body.
func readAllRecords(data []byte) ([][]byte, error) {
	return recordio.ReadAll(bytes.NewReader(data))
}
