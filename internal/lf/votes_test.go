package lf

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	"repro/internal/mapreduce"
	"repro/internal/recordio"
	lfapi "repro/pkg/drybell/lf"
)

func randomVotes(t *testing.T, m, n int, seed int64) *labelmodel.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mx := labelmodel.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			mx.Set(i, j, labelmodel.Label(rng.Intn(3)-1))
		}
	}
	return mx
}

func TestVotesRoundTrip(t *testing.T) {
	for _, tc := range []struct{ m, n, shards int }{
		{1, 1, 1}, {17, 3, 4}, {100, 7, 8}, {64, 2, 64}, {5, 4, 8},
	} {
		fs := dfs.NewMem()
		mx := randomVotes(t, tc.m, tc.n, int64(tc.m))
		names := make([]string, tc.n)
		for j := range names {
			names[j] = string(rune('a' + j))
		}
		if err := WriteVotes(fs, "labels/votes", mx, names, tc.shards); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if !HasVotes(fs, "labels/votes") {
			t.Fatalf("%+v: artifact not detected after write", tc)
		}
		got, gotNames, err := ReadVotes(fs, "labels/votes", nil)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if len(gotNames) != tc.n {
			t.Fatalf("%+v: %d names back", tc, len(gotNames))
		}
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				if got.At(i, j) != mx.At(i, j) {
					t.Fatalf("%+v: vote [%d,%d] = %d, want %d", tc, i, j, got.At(i, j), mx.At(i, j))
				}
			}
		}
	}
}

func TestVotesColumnSelection(t *testing.T) {
	fs := dfs.NewMem()
	mx := randomVotes(t, 40, 4, 9)
	if err := WriteVotes(fs, "labels/votes", mx, []string{"w", "x", "y", "z"}, 4); err != nil {
		t.Fatal(err)
	}
	// Select a reordered subset: column 0 of the result must be "y" (stored
	// column 2), column 1 must be "w" (stored column 0).
	got, _, err := ReadVotes(fs, "labels/votes", []string{"y", "w"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFuncs() != 2 {
		t.Fatalf("selected matrix has %d columns", got.NumFuncs())
	}
	for i := 0; i < 40; i++ {
		if got.At(i, 0) != mx.At(i, 2) || got.At(i, 1) != mx.At(i, 0) {
			t.Fatalf("row %d: selection [%d %d], want [%d %d]",
				i, got.At(i, 0), got.At(i, 1), mx.At(i, 2), mx.At(i, 0))
		}
	}
	if _, _, err := ReadVotes(fs, "labels/votes", []string{"nope"}); err == nil ||
		!strings.Contains(err.Error(), "no column") {
		t.Fatalf("unknown column error = %v", err)
	}
}

func TestVotesCorruptionDetected(t *testing.T) {
	fs := dfs.NewMem()
	mx := randomVotes(t, 60, 5, 21)
	names := []string{"a", "b", "c", "d", "e"}
	if err := WriteVotes(fs, "labels/votes", mx, names, 4); err != nil {
		t.Fatal(err)
	}
	shard := dfs.ShardPath("labels/votes", 2, 4)
	// Flip a payload byte: the checksum must catch it.
	if err := fs.Corrupt(shard, voteShardHeaderSize+3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadVotes(fs, "labels/votes", nil); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt shard error = %v", err)
	}
	// A damaged header (magic) is caught before the checksum.
	if err := fs.Corrupt(shard, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadVotes(fs, "labels/votes", nil); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestExecutePersistsColumnarVotes(t *testing.T) {
	fs := dfs.NewMem()
	docs := testDocs()
	stageDocs(t, fs, docs, 2)
	exec := docExecutor(fs)
	mx, _, err := exec.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	// No per-LF recordio shard sets anymore — only the columnar artifact.
	if _, err := dfs.ListShards(fs, "labels/keyword_gossip"); err == nil {
		t.Error("per-LF recordio shards still written")
	}
	names, err := VoteNames(fs, "labels/votes")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "keyword_gossip" || names[1] != "ner_no_person" {
		t.Fatalf("artifact names = %v", names)
	}
	loaded, err := exec.LoadMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mx.NumExamples(); i++ {
		for j := 0; j < mx.NumFuncs(); j++ {
			if loaded.At(i, j) != mx.At(i, j) {
				t.Fatalf("loaded vote [%d,%d] = %d, want %d", i, j, loaded.At(i, j), mx.At(i, j))
			}
		}
	}
}

// TestExecuteMergesAcrossInvocations is the lfrun workflow: independent
// Execute calls against the same filesystem accumulate columns in the one
// artifact, and re-running a function replaces its column.
func TestExecuteMergesAcrossInvocations(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)

	if _, _, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{keywordLF()}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{nerLF()}); err != nil {
		t.Fatal(err)
	}
	names, err := VoteNames(fs, "labels/votes")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("after two single-LF runs, artifact has columns %v", names)
	}
	mx, err := docExecutor(fs).LoadMatrix([]string{"keyword_gossip", "ner_no_person"})
	if err != nil {
		t.Fatal(err)
	}
	if mx.NumExamples() != 5 || mx.NumFuncs() != 2 {
		t.Fatalf("merged matrix is %d×%d", mx.NumExamples(), mx.NumFuncs())
	}
	// Doc 0 contains "gossip": keyword column intact after the second run.
	if mx.At(0, 0) != labelmodel.Positive {
		t.Errorf("keyword vote for doc 0 = %d after merge, want positive", mx.At(0, 0))
	}
	// Re-running an existing function keeps one column, not two.
	if _, _, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{keywordLF()}); err != nil {
		t.Fatal(err)
	}
	names, _ = VoteNames(fs, "labels/votes")
	if len(names) != 2 {
		t.Fatalf("after re-running keyword LF, artifact has columns %v", names)
	}
}

// TestLoadMatrixLegacyLayout: a filesystem holding only the pre-columnar
// per-LF recordio shard sets must still load, bit for bit.
func TestLoadMatrixLegacyLayout(t *testing.T) {
	fs := dfs.NewMem()
	votesA := []labelmodel.Label{labelmodel.Positive, labelmodel.Abstain, labelmodel.Negative, labelmodel.Abstain, labelmodel.Positive}
	votesB := []labelmodel.Label{labelmodel.Abstain, labelmodel.Negative, labelmodel.Negative, labelmodel.Positive, labelmodel.Abstain}
	writeLegacy := func(name string, votes []labelmodel.Label) {
		recs := make([][]byte, len(votes))
		for i, v := range votes {
			rec, err := encodeVote(v)
			if err != nil {
				t.Fatalf("encodeVote(%v): %v", v, err)
			}
			recs[i] = rec
		}
		if err := mapreduce.WriteInput(fs, "labels/"+name, recs, 2); err != nil {
			t.Fatal(err)
		}
	}
	writeLegacy("alpha", votesA)
	writeLegacy("beta", votesB)

	mx, err := docExecutor(fs).LoadMatrix([]string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range votesA {
		if mx.At(i, 0) != votesA[i] || mx.At(i, 1) != votesB[i] {
			t.Fatalf("legacy row %d = [%d %d], want [%d %d]",
				i, mx.At(i, 0), mx.At(i, 1), votesA[i], votesB[i])
		}
	}
}

// TestLegacyVoteShardRejectsBadByte: the compatibility reader keeps the
// defensive decoding of the old format.
func TestLegacyVoteShardRejectsBadByte(t *testing.T) {
	fs := dfs.NewMem()
	var buf bytes.Buffer
	if err := recordio.WriteAll(&buf, [][]byte{{0x7}}); err != nil {
		t.Fatal(err)
	}
	if err := dfs.PublishShard(fs, "labels/bad", 0, 1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := docExecutor(fs).LoadMatrix([]string{"bad"}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("legacy bad vote error = %v", err)
	}
}

// TestFusedMatchesPerLFJobs: the fused single-job mode and the paper's
// one-job-per-function mode must produce identical matrices, counters, and
// model-server launch counts.
func TestFusedMatchesPerLFJobs(t *testing.T) {
	docs := testDocs()
	run := func(perLF bool) (*labelmodel.Matrix, *Report) {
		fs := dfs.NewMem()
		stageDocs(t, fs, docs, 3)
		e := docExecutor(fs)
		e.PerLFJobs = perLF
		mx, rep, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
		if err != nil {
			t.Fatal(err)
		}
		return mx, rep
	}
	fmx, frep := run(false)
	pmx, prep := run(true)
	if fmx.NumExamples() != pmx.NumExamples() || fmx.NumFuncs() != pmx.NumFuncs() {
		t.Fatalf("fused %d×%d vs per-LF %d×%d", fmx.NumExamples(), fmx.NumFuncs(), pmx.NumExamples(), pmx.NumFuncs())
	}
	for i := 0; i < fmx.NumExamples(); i++ {
		for j := 0; j < fmx.NumFuncs(); j++ {
			if fmx.At(i, j) != pmx.At(i, j) {
				t.Fatalf("modes disagree at (%d,%d): %v vs %v", i, j, fmx.At(i, j), pmx.At(i, j))
			}
		}
	}
	for j := range frep.PerLF {
		f, p := frep.PerLF[j], prep.PerLF[j]
		if f.Positives != p.Positives || f.Negatives != p.Negatives || f.Abstains != p.Abstains {
			t.Errorf("%s: counters diverge between modes: %+v vs %+v", f.Name, f, p)
		}
		if f.ModelServersLaunched != p.ModelServersLaunched {
			t.Errorf("%s: model servers launched %d (fused) vs %d (per-LF)",
				f.Name, f.ModelServersLaunched, p.ModelServersLaunched)
		}
	}
}

// TestReadVotesDuplicateNames: requesting the same column twice must yield
// two identical, correct columns (not stale buffer contents).
func TestReadVotesDuplicateNames(t *testing.T) {
	fs := dfs.NewMem()
	mx := randomVotes(t, 30, 3, 5)
	if err := WriteVotes(fs, "labels/votes", mx, []string{"a", "b", "c"}, 4); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadVotes(fs, "labels/votes", []string{"b", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if got.At(i, 0) != mx.At(i, 1) || got.At(i, 1) != mx.At(i, 1) || got.At(i, 2) != mx.At(i, 0) {
			t.Fatalf("row %d: duplicated selection [%d %d %d], want [%d %d %d]",
				i, got.At(i, 0), got.At(i, 1), got.At(i, 2), mx.At(i, 1), mx.At(i, 1), mx.At(i, 0))
		}
	}
}

// TestLoadMatrixMixedLayout: columns split between the columnar artifact
// and legacy per-function shard sets (an old root upgraded mid-stream)
// must load together.
func TestLoadMatrixMixedLayout(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	// Legacy shards for "old_lf", as the previous binary would have left.
	legacy := []labelmodel.Label{labelmodel.Negative, labelmodel.Positive, labelmodel.Abstain, labelmodel.Positive, labelmodel.Negative}
	recs := make([][]byte, len(legacy))
	for i, v := range legacy {
		rec, err := encodeVote(v)
		if err != nil {
			t.Fatalf("encodeVote(%v): %v", v, err)
		}
		recs[i] = rec
	}
	if err := mapreduce.WriteInput(fs, "labels/old_lf", recs, 2); err != nil {
		t.Fatal(err)
	}
	// A fresh Execute writes the columnar artifact for the new function.
	mx, _, err := docExecutor(fs).Execute([]lfapi.LF[*corpus.Document]{keywordLF()})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := docExecutor(fs).LoadMatrix([]string{"old_lf", "keyword_gossip"})
	if err != nil {
		t.Fatalf("mixed-layout load: %v", err)
	}
	for i := range legacy {
		if loaded.At(i, 0) != legacy[i] {
			t.Fatalf("legacy column row %d = %d, want %d", i, loaded.At(i, 0), legacy[i])
		}
		if loaded.At(i, 1) != mx.At(i, 0) {
			t.Fatalf("columnar column row %d = %d, want %d", i, loaded.At(i, 1), mx.At(i, 0))
		}
	}
	// A request for only legacy names must also work while the artifact
	// exists for an unrelated set.
	legacyOnly, err := docExecutor(fs).LoadMatrix([]string{"old_lf"})
	if err != nil {
		t.Fatalf("legacy-only load with artifact present: %v", err)
	}
	if legacyOnly.At(1, 0) != labelmodel.Positive {
		t.Fatalf("legacy-only column wrong: %d", legacyOnly.At(1, 0))
	}
}

// lifecycleLF wraps a plain LF with Setup/Teardown counters for leak tests.
type lifecycleLF struct {
	lfapi.LF[*corpus.Document]
	fail      bool
	setups    *int
	teardowns *int
}

func (l *lifecycleLF) Setup(context.Context) error {
	if l.fail {
		return errors.New("injected setup failure")
	}
	*l.setups++
	return nil
}

func (l *lifecycleLF) Teardown(context.Context) error {
	*l.teardowns++
	return nil
}

// TestFusedSetupFailureTearsDownEarlierLFs: when a later function's Setup
// fails, the functions already set up in the same fused task must be torn
// down (the engine does not call Teardown after a failed Setup).
func TestFusedSetupFailureTearsDownEarlierLFs(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	var setups, teardowns int
	ok := &lifecycleLF{LF: keywordLF(), setups: &setups, teardowns: &teardowns}
	bad := &lifecycleLF{
		LF:   lfapi.New(Meta{Name: "doomed"}, func(*corpus.Document) labelmodel.Label { return labelmodel.Abstain }),
		fail: true, setups: &setups, teardowns: &teardowns,
	}
	e := docExecutor(fs)
	e.MaxAttempts = 1
	if _, _, err := e.Execute([]lfapi.LF[*corpus.Document]{ok, bad}); err == nil {
		t.Fatal("setup failure not surfaced")
	}
	if setups == 0 {
		t.Fatal("test wiring broken: first LF never set up")
	}
	if teardowns != setups {
		t.Errorf("%d setups but %d teardowns: instances leaked", setups, teardowns)
	}
}

// TestPublishVotesConcurrentWriters: independent processes merging into the
// same artifact concurrently (the lfrun loose-coupling workflow) must not
// lose each other's columns — publishVotes re-reads and retries until every
// visible column survives.
func TestPublishVotesConcurrentWriters(t *testing.T) {
	fs := dfs.NewMem()
	const writers = 8
	const m = 40
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mx := randomVotes(t, m, 1, int64(w+1))
			errs[w] = publishVotes(fs, "labels/votes", mx, []string{fmt.Sprintf("lf-%d", w)}, 4)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	names, err := VoteNames(fs, "labels/votes")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != writers {
		t.Fatalf("artifact holds %d columns after %d concurrent writers: %v", len(names), writers, names)
	}
}

// TestPerLFJobsPersistIncrementally: in per-LF mode a later function's
// failure must not lose the votes of functions that already completed.
func TestPerLFJobsPersistIncrementally(t *testing.T) {
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	bad := lfapi.New(Meta{Name: "explodes"}, func(*corpus.Document) labelmodel.Label { return labelmodel.Label(9) })
	e := docExecutor(fs)
	e.PerLFJobs = true
	e.MaxAttempts = 1
	if _, _, err := e.Execute([]lfapi.LF[*corpus.Document]{keywordLF(), bad}); err == nil {
		t.Fatal("invalid vote not surfaced")
	}
	// The first function's column is already durable on the DFS.
	mx, err := docExecutor(fs).LoadMatrix([]string{"keyword_gossip"})
	if err != nil {
		t.Fatalf("first LF's votes not persisted before the failure: %v", err)
	}
	if mx.At(0, 0) != labelmodel.Positive {
		t.Errorf("persisted vote wrong: %d", mx.At(0, 0))
	}
}

// TestWriteVotesShardCountChange: re-publishing with a different shard
// count must clean up the old set — a mixed set would make ListShards
// reject the artifact forever.
func TestWriteVotesShardCountChange(t *testing.T) {
	fs := dfs.NewMem()
	mx := randomVotes(t, 48, 3, 77)
	names := []string{"a", "b", "c"}
	if err := WriteVotes(fs, "labels/votes", mx, names, 8); err != nil {
		t.Fatal(err)
	}
	if err := WriteVotes(fs, "labels/votes", mx, names, 4); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadVotes(fs, "labels/votes", nil)
	if err != nil {
		t.Fatalf("read after shard-count change: %v", err)
	}
	for i := 0; i < 48; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != mx.At(i, j) {
				t.Fatalf("vote [%d,%d] wrong after reshard", i, j)
			}
		}
	}
	paths, err := fs.List("labels/votes-")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("%d shard files after reshard, want 4: %v", len(paths), paths)
	}
}

// TestReadVotesDetectsTornGenerations: shards from two writes of different
// content (interleaved concurrent writers) must be rejected, not mixed. The
// generation is derived from the written content, so the tear is simulated
// with two genuinely different matrices — identical re-writes are
// indistinguishable by design (see TestWriteVotesDeterministic).
func TestReadVotesDetectsTornGenerations(t *testing.T) {
	fs := dfs.NewMem()
	mx := randomVotes(t, 24, 2, 13)
	if err := WriteVotes(fs, "labels/votes", mx, []string{"a", "b"}, 4); err != nil {
		t.Fatal(err)
	}
	// Steal one shard from this write, then write different votes (a new
	// content generation) and splice the stale shard back in — simulating
	// a torn set.
	shard := dfs.ShardPath("labels/votes", 1, 4)
	old, err := fs.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	mx2 := randomVotes(t, 24, 2, 14)
	if mx2.Fingerprint() == mx.Fingerprint() {
		t.Fatal("test matrices must differ")
	}
	if err := WriteVotes(fs, "labels/votes", mx2, []string{"a", "b"}, 4); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(shard, old); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadVotes(fs, "labels/votes", nil); err == nil ||
		!strings.Contains(err.Error(), "generation") {
		t.Fatalf("torn generations error = %v", err)
	}
}

// TestWriteVotesDeterministic: re-running a pipeline over the same corpus
// must re-create the vote artifact byte for byte — the write generation is
// a content fingerprint, not a random number, so identical inputs produce
// identical shard files run over run.
func TestWriteVotesDeterministic(t *testing.T) {
	mx := randomVotes(t, 37, 3, 7)
	names := []string{"a", "b", "c"}
	write := func() map[string][]byte {
		fs := dfs.NewMem()
		if err := WriteVotes(fs, "labels/votes", mx, names, 4); err != nil {
			t.Fatal(err)
		}
		paths, err := fs.List("labels/votes")
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(paths))
		for _, p := range paths {
			b, err := fs.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[p] = b
		}
		return out
	}
	first, second := write(), write()
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("shard sets differ in size: %d vs %d", len(first), len(second))
	}
	for p, b := range first {
		if !bytes.Equal(b, second[p]) {
			t.Errorf("shard %s differs between identical writes", p)
		}
	}
}
