package lf

import (
	"context"
	"fmt"
	"iter"
	"strings"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/remote"
	lfapi "repro/pkg/drybell/lf"
)

// This file is the labeling-function side of the remote-worker deployment
// contract. The coordinator stamps a code key into every vote job
// (Job.Code); a worker process registers the matching implementations via
// RegisterVoteJobs and resolves the key at lease time. The key embeds the
// ordered function-set names, so a worker built from a different set — or
// the same set in a different order, which would scramble the columnar row
// layout — fails loudly with a deployment-skew error instead of silently
// producing misaligned votes.

// FusedVoteCode is the job-code key for the fused vote job over the named
// function set (order-sensitive: it fixes the vote row layout).
func FusedVoteCode(names []string) string {
	return "lf-votes:" + strings.Join(names, "\x1f")
}

// PerLFVoteCode is the job-code key for one function's standalone vote job
// (Executor.PerLFJobs mode).
func PerLFVoteCode(name string) string {
	return "lf-vote:" + name
}

// RegisterVoteJobs registers every vote job a coordinator can dispatch for
// this labeling-function set: the fused all-functions job plus one per-LF
// job, under the same code keys the Executor stamps. lfs must be the same
// functions in the same order as the coordinator's set — the fused key
// enforces this by construction. decode and noBatch must likewise match
// the coordinator's Executor configuration.
//
// Functions needing a corpus-level fit pass (lfapi.CorpusFitter) fit
// lazily inside Build, streaming the staged corpus through the worker's
// filesystem — over the coordinator's DFS gateway in a real deployment —
// so a remote worker reproduces the two-pass shape of §5.1 without any
// coordinator-side state shipping.
func RegisterVoteJobs[T any](reg *remote.Registry, lfs []lfapi.LF[T], decode func([]byte) (T, error), noBatch bool) error {
	names := make([]string, len(lfs))
	for j, f := range lfs {
		names[j] = f.LFMeta().Name
	}
	fused := remote.JobCode{
		Build: func(ctx context.Context, fs dfs.FS, inputBase string) (mapreduce.Mapper, mapreduce.Reducer, error) {
			if err := fitAll(ctx, lfs, fs, inputBase, decode); err != nil {
				return nil, nil, err
			}
			return &fusedTask[T]{ctx: ctx, lfs: lfs, decode: decode, noBatch: noBatch}, nil, nil
		},
	}
	if err := reg.Register(FusedVoteCode(names), fused); err != nil {
		return err
	}
	for _, f := range lfs {
		f := f
		meta := f.LFMeta()
		code := remote.JobCode{
			Build: func(ctx context.Context, fs dfs.FS, inputBase string) (mapreduce.Mapper, mapreduce.Reducer, error) {
				if err := fitAll(ctx, []lfapi.LF[T]{f}, fs, inputBase, decode); err != nil {
					return nil, nil, err
				}
				return voteMapper(ctx, f, decode, noBatch), nil, nil
			},
		}
		if err := reg.Register(PerLFVoteCode(meta.Name), code); err != nil {
			return err
		}
	}
	return nil
}

// fitAll runs the corpus-fit pass for every unfitted CorpusFitter in lfs
// against the staged corpus at inputBase.
func fitAll[T any](ctx context.Context, lfs []lfapi.LF[T], fs dfs.FS, inputBase string, decode func([]byte) (T, error)) error {
	for _, f := range lfs {
		fitter, ok := f.(lfapi.CorpusFitter[T])
		if !ok || fitter.Fitted() {
			continue
		}
		if err := fitter.FitCorpus(ctx, corpusSeq(fs, inputBase, decode)); err != nil {
			return fmt.Errorf("lf: fit %s on worker: %w", f.LFMeta().Name, err)
		}
	}
	return nil
}

// corpusSeq streams the decoded staged corpus at inputBase, shard by
// shard, in record order. Shared by the coordinator's Executor.corpus and
// worker-side fit passes.
func corpusSeq[T any](fs dfs.FS, inputBase string, decode func([]byte) (T, error)) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		var zero T
		shards, err := dfs.ListShards(fs, inputBase)
		if err != nil {
			yield(zero, err)
			return
		}
		for _, shard := range shards {
			data, err := fs.ReadFile(shard)
			if err != nil {
				yield(zero, err)
				return
			}
			recs, err := readAllRecords(data)
			if err != nil {
				yield(zero, fmt.Errorf("shard %s: %w", shard, err))
				return
			}
			for _, rec := range recs {
				x, err := decode(rec)
				if err != nil {
					yield(zero, err)
					return
				}
				if !yield(x, nil) {
					return
				}
			}
		}
	}
}
