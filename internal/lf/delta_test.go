package lf

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dfs"
	"repro/internal/labelmodel"
	lfapi "repro/pkg/drybell/lf"
)

func deltaDocs() []*corpus.Document {
	return []*corpus.Document{
		{ID: "5", Title: "Mara Vale gossip special", Body: "gossip premiere redcarpet", URL: "https://starbeat.example/6", Language: "en"},
		{ID: "6", Title: "transit budget", Body: "fares route schedule", URL: "https://metro.example/7", Language: "en"},
	}
}

func stageDelta(t *testing.T, fs dfs.FS, docs []*corpus.Document, base string, shards int) {
	t.Helper()
	recs, err := corpus.MarshalDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Stage[*corpus.Document](fs, base, recs, shards); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteDeltaMatchesFullRerun is the executor half of the incremental
// equivalence contract: a base run plus a delta run over only the appended
// documents must load back the exact matrix a full run over the whole corpus
// produces — while the delta job's task attempts cover only the delta shards.
func TestExecuteDeltaMatchesFullRerun(t *testing.T) {
	lfs := []lfapi.LF[*corpus.Document]{keywordLF(), nerLF()}
	names := []string{"keyword_gossip", "ner_no_person"}
	base := testDocs()
	delta := deltaDocs()

	// Incremental: full run over the base corpus, delta run over the append.
	fs := dfs.NewMem()
	stageDocs(t, fs, base, 2)
	e := docExecutor(fs)
	if _, _, err := e.Execute(lfs); err != nil {
		t.Fatal(err)
	}
	stageDelta(t, fs, delta, "in/delta", 2)
	dmx, rep, gen, err := e.ExecuteDelta(context.Background(), lfs, Delta{
		InputBase: "in/delta",
		StartRow:  len(base),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first delta published generation %d, want 1", gen)
	}
	if dmx.NumExamples() != len(delta) {
		t.Fatalf("delta matrix has %d rows, want %d", dmx.NumExamples(), len(delta))
	}
	// Only the delta's shards may have run: 2 delta shards, one attempt each.
	if rep.TaskAttempts != 2 {
		t.Errorf("delta run launched %d task attempts, want 2 (delta shards only)", rep.TaskAttempts)
	}

	got, err := e.LoadMatrix(names)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: cold full run over the whole corpus on a fresh filesystem.
	refFS := dfs.NewMem()
	stageDocs(t, refFS, append(append([]*corpus.Document(nil), base...), delta...), 2)
	want, _, err := docExecutor(refFS).Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != want.NumExamples() || got.NumFuncs() != want.NumFuncs() {
		t.Fatalf("incremental view %dx%d, full rerun %dx%d",
			got.NumExamples(), got.NumFuncs(), want.NumExamples(), want.NumFuncs())
	}
	for i := 0; i < want.NumExamples(); i++ {
		for j := 0; j < want.NumFuncs(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("vote [%d,%d]: incremental %v, full rerun %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestExecuteDeltaDeletionsOnly covers the tombstone-only path: a delta with
// no staged input publishes a generation carrying only deletions, and the
// loaded view drops those rows.
func TestExecuteDeltaDeletionsOnly(t *testing.T) {
	lfs := []lfapi.LF[*corpus.Document]{keywordLF()}
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	e := docExecutor(fs)
	full, _, err := e.Execute(lfs)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gen, err := e.ExecuteDelta(context.Background(), lfs, Delta{Deleted: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation %d, want 1", gen)
	}
	got, err := e.LoadMatrix([]string{"keyword_gossip"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != 3 {
		t.Fatalf("view has %d rows after 2 tombstones, want 3", got.NumExamples())
	}
	for vi, abs := range []int{0, 2, 4} {
		if got.At(vi, 0) != full.At(abs, 0) {
			t.Fatalf("view row %d (abs %d): got %v want %v", vi, abs, got.At(vi, 0), full.At(abs, 0))
		}
	}
	// A delta with neither input nor deletions is a caller bug.
	if _, _, _, err := e.ExecuteDelta(context.Background(), lfs, Delta{}); err == nil {
		t.Fatal("empty delta accepted")
	}
}

// TestExecuteDeltaRewrite covers changed documents: a delta whose StartRow
// points inside the covered range supersedes those rows in the view.
func TestExecuteDeltaRewrite(t *testing.T) {
	lfs := []lfapi.LF[*corpus.Document]{keywordLF()}
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	e := docExecutor(fs)
	if _, _, err := e.Execute(lfs); err != nil {
		t.Fatal(err)
	}
	// Doc 1 changes: its new body now matches the keyword function.
	rewritten := []*corpus.Document{
		{ID: "1", Title: "quarterly earnings", Body: "dividend gossip inflation", URL: "https://newsroom.example/2", Language: "en"},
	}
	stageDelta(t, fs, rewritten, "in/delta-rw", 1)
	if _, _, _, err := e.ExecuteDelta(context.Background(), lfs, Delta{InputBase: "in/delta-rw", StartRow: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := e.LoadMatrix([]string{"keyword_gossip"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumExamples() != 5 {
		t.Fatalf("view has %d rows, want 5", got.NumExamples())
	}
	if got.At(1, 0) != labelmodel.Positive {
		t.Fatalf("rewritten row 1 = %v, want Positive", got.At(1, 0))
	}
	if got.At(0, 0) != labelmodel.Positive || got.At(2, 0) != labelmodel.Abstain {
		t.Fatal("rows outside the rewrite range changed")
	}
}

// TestCompactGenerationsMatchesFullRun pins the fold at the executor level:
// after base + delta runs, CompactGenerations leaves a flat artifact
// byte-identical to the one a cold full run over the whole corpus publishes
// with the same shard count.
func TestCompactGenerationsMatchesFullRun(t *testing.T) {
	lfs := []lfapi.LF[*corpus.Document]{keywordLF(), nerLF()}
	fs := dfs.NewMem()
	stageDocs(t, fs, testDocs(), 2)
	e := docExecutor(fs)
	if _, _, err := e.Execute(lfs); err != nil {
		t.Fatal(err)
	}
	stageDelta(t, fs, deltaDocs(), "in/delta", 2)
	if _, _, _, err := e.ExecuteDelta(context.Background(), lfs, Delta{InputBase: "in/delta", StartRow: 5}); err != nil {
		t.Fatal(err)
	}
	if err := CompactGenerations(fs, "labels/votes", 2); err != nil {
		t.Fatal(err)
	}

	refFS := dfs.NewMem()
	all := append(append([]*corpus.Document(nil), testDocs()...), deltaDocs()...)
	stageDocs(t, refFS, all, 2)
	if _, _, err := docExecutor(refFS).Execute([]lfapi.LF[*corpus.Document]{keywordLF(), nerLF()}); err != nil {
		t.Fatal(err)
	}
	refKeys, err := refFS.List("labels/votes")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range refKeys {
		want, err := refFS.ReadFile(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(key)
		if err != nil {
			t.Fatalf("compacted store missing %s: %v", key, err)
		}
		if string(got) != string(want) {
			t.Fatalf("compacted %s differs from a cold full run's artifact", key)
		}
	}
}
