// Package features extracts servable feature vectors for the discriminative
// models. The central invariant of cross-feature serving (paper §4) is
// enforced here: everything this package produces is computable from fields
// available at serving time (text, URL, real-time event vectors) — never
// from crawler aggregates, NER output, topic-model scores, or the knowledge
// graph, which exist only on the labeling-function side.
package features

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/nlp"
)

// SparseVector is a sorted sparse feature vector. Indices are strictly
// increasing; Values holds the corresponding weights.
type SparseVector struct {
	Indices []uint32
	Values  []float64
}

// Dot returns the inner product with a dense weight vector.
func (v *SparseVector) Dot(w []float64) float64 {
	s := 0.0
	for k, idx := range v.Indices {
		s += w[idx] * v.Values[k]
	}
	return s
}

// NNZ returns the number of stored entries.
func (v *SparseVector) NNZ() int { return len(v.Indices) }

// DotBatch computes the inner product of every vector with one dense weight
// vector — the batch scoring primitive the online serving path uses to
// score a micro-batch as one operation instead of per-request calls. Large
// batches are split across runtime.GOMAXPROCS workers.
func DotBatch(xs []*SparseVector, w []float64) []float64 {
	return DotBatchInto(xs, w, make([]float64, len(xs)))
}

// dotBatchParallelMin is the batch size below which DotBatchInto stays on
// the caller's goroutine; small batches don't amortize worker spawns.
const dotBatchParallelMin = 256

// DotBatchInto is DotBatch writing into a caller-provided slice (which must
// have len(xs) entries) and returning it — the allocation-free form for
// callers that score batches continuously and reuse buffers.
func DotBatchInto(xs []*SparseVector, w []float64, out []float64) []float64 {
	if len(out) != len(xs) {
		panic(fmt.Sprintf("features: DotBatchInto got %d outputs for %d vectors", len(out), len(xs)))
	}
	workers := runtime.GOMAXPROCS(0)
	if len(xs) < dotBatchParallelMin || workers == 1 {
		dotRange(xs, w, out)
		return out
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for lo := 0; lo < len(xs); lo += chunk {
		hi := min(lo+chunk, len(xs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dotRange(xs[lo:hi], w, out[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func dotRange(xs []*SparseVector, w []float64, out []float64) {
	for i, x := range xs {
		s := 0.0
		for k, idx := range x.Indices {
			s += w[idx] * x.Values[k]
		}
		out[i] = s
	}
}

// L2 returns the Euclidean norm.
func (v *SparseVector) L2() float64 {
	s := 0.0
	for _, x := range v.Values {
		s += x * x
	}
	return math.Sqrt(s)
}

// Hasher maps token features into a fixed-dimension space by hashing
// (the standard production trick for unbounded vocabularies).
type Hasher struct {
	// Dim is the feature-space size; must be a power of two.
	Dim uint32
}

// NewHasher returns a Hasher with the given power-of-two dimension.
func NewHasher(dim uint32) (*Hasher, error) {
	if dim == 0 || dim&(dim-1) != 0 {
		return nil, fmt.Errorf("features: dimension %d is not a power of two", dim)
	}
	return &Hasher{Dim: dim}, nil
}

// Index hashes a feature name to its coordinate.
func (h *Hasher) Index(feature string) uint32 {
	hash := fnv.New32a()
	hash.Write([]byte(feature))
	return hash.Sum32() & (h.Dim - 1)
}

// Vector builds a sparse vector from raw feature strings with count values,
// combining collisions by summation.
func (h *Hasher) Vector(feats []string) *SparseVector {
	counts := make(map[uint32]float64, len(feats))
	for _, f := range feats {
		counts[h.Index(f)]++
	}
	v := &SparseVector{
		Indices: make([]uint32, 0, len(counts)),
		Values:  make([]float64, 0, len(counts)),
	}
	for idx := range counts {
		v.Indices = append(v.Indices, idx)
	}
	sort.Slice(v.Indices, func(a, b int) bool { return v.Indices[a] < v.Indices[b] })
	for _, idx := range v.Indices {
		v.Values = append(v.Values, counts[idx])
	}
	return v
}

// DocumentFeatures extracts the servable feature strings for a document:
// unigrams and bigrams of title+body, plus the URL domain. The topic task
// has an order-of-magnitude more features than the product task in the
// paper; we mirror that by including bigrams only for rich text.
func DocumentFeatures(d *corpus.Document, bigrams bool) []string {
	words := nlp.Words(d.Text())
	feats := make([]string, 0, len(words)*2+1)
	for _, w := range words {
		feats = append(feats, "w:"+w)
	}
	if bigrams {
		for _, b := range nlp.Bigrams(words) {
			feats = append(feats, "b:"+b)
		}
	}
	if dom := URLDomain(d.URL); dom != "" {
		feats = append(feats, "d:"+dom)
	}
	feats = append(feats, "lang:"+d.Language)
	return feats
}

// URLDomain extracts the host from a URL-ish string (servable: the URL
// arrives with the content).
func URLDomain(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// DocumentVector hashes a document's servable features.
func (h *Hasher) DocumentVector(d *corpus.Document, bigrams bool) *SparseVector {
	return h.Vector(DocumentFeatures(d, bigrams))
}

// DocumentVectors hashes a batch.
func (h *Hasher) DocumentVectors(docs []*corpus.Document, bigrams bool) []*SparseVector {
	out := make([]*SparseVector, len(docs))
	for i, d := range docs {
		out[i] = h.DocumentVector(d, bigrams)
	}
	return out
}
