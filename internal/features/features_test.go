package features

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func TestNewHasherValidation(t *testing.T) {
	if _, err := NewHasher(0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewHasher(1000); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewHasher(1 << 10); err != nil {
		t.Error(err)
	}
}

func TestHasherDeterministicAndInRange(t *testing.T) {
	h, _ := NewHasher(1 << 8)
	f := func(s string) bool {
		i := h.Index(s)
		return i < h.Dim && i == h.Index(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorSortedAndCounted(t *testing.T) {
	h, _ := NewHasher(1 << 16)
	v := h.Vector([]string{"a", "b", "a", "c", "a"})
	for i := 0; i+1 < len(v.Indices); i++ {
		if v.Indices[i] >= v.Indices[i+1] {
			t.Fatal("indices not strictly increasing")
		}
	}
	total := 0.0
	for _, x := range v.Values {
		total += x
	}
	if total != 5 {
		t.Errorf("total count = %v, want 5", total)
	}
	// "a" appears 3 times.
	ai := h.Index("a")
	found := false
	for k, idx := range v.Indices {
		if idx == ai && v.Values[k] >= 3 {
			found = true
		}
	}
	if !found {
		t.Error("count for repeated feature missing")
	}
}

func TestDotAndNorm(t *testing.T) {
	v := &SparseVector{Indices: []uint32{1, 3}, Values: []float64{2, -1}}
	w := []float64{9, 4, 9, 5}
	if got := v.Dot(w); got != 2*4-1*5 {
		t.Errorf("Dot = %v, want 3", got)
	}
	if got := v.L2(); math.Abs(got-math.Sqrt(5)) > 1e-9 {
		t.Errorf("L2 = %v, want sqrt(5)", got)
	}
	if v.NNZ() != 2 {
		t.Errorf("NNZ = %d", v.NNZ())
	}
}

func TestURLDomain(t *testing.T) {
	cases := map[string]string{
		"https://starbeat.example/story/1": "starbeat.example",
		"http://a.b/c/d":                   "a.b",
		"nohost":                           "nohost",
		"https://host.only":                "host.only",
	}
	for in, want := range cases {
		if got := URLDomain(in); got != want {
			t.Errorf("URLDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDocumentFeaturesServableOnly(t *testing.T) {
	d := &corpus.Document{
		Title: "Ava Stone premiere", Body: "redcarpet gossip",
		URL: "https://starbeat.example/1", Language: "en",
		Crawler: corpus.CrawlerStats{EngagementScore: 0.99, DomainAuthority: 0.99},
	}
	feats := DocumentFeatures(d, true)
	seen := map[string]bool{}
	for _, f := range feats {
		seen[f] = true
		// Only servable feature namespaces may appear.
		switch f[0] {
		case 'w', 'b', 'd', 'l':
		default:
			t.Errorf("unexpected feature namespace in %q", f)
		}
	}
	if !seen["w:premiere"] || !seen["d:starbeat.example"] || !seen["lang:en"] {
		t.Errorf("missing expected features: %v", feats)
	}
	if !seen["b:ava_stone"] {
		t.Errorf("bigrams missing: %v", feats)
	}
	// Crawler stats must never leak into servable features.
	for f := range seen {
		if f == "0.99" {
			t.Error("crawler stat leaked into features")
		}
	}
}

func TestDocumentFeaturesBigramToggle(t *testing.T) {
	d := &corpus.Document{Title: "alpha beta", Body: "gamma", URL: "https://x.example/1", Language: "en"}
	with := DocumentFeatures(d, true)
	without := DocumentFeatures(d, false)
	if len(with) <= len(without) {
		t.Error("bigrams should add features")
	}
	for _, f := range without {
		if f[0] == 'b' {
			t.Error("bigram present despite toggle off")
		}
	}
}

func TestDocumentVectors(t *testing.T) {
	docs, err := corpus.GenerateTopic(corpus.DefaultTopicSpec(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := NewHasher(1 << 14)
	vecs := h.DocumentVectors(docs, true)
	if len(vecs) != len(docs) {
		t.Fatalf("len = %d", len(vecs))
	}
	for i, v := range vecs {
		if v.NNZ() == 0 {
			t.Errorf("doc %d has empty feature vector", i)
		}
	}
}
