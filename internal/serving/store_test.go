package serving

import (
	"sync"
	"testing"

	"repro/internal/dfs"
	"repro/internal/features"
)

func artifactFixture(name string) *Artifact {
	return &Artifact{
		Name: name, Kind: "logreg", Threshold: 0.5, FeatureDim: 8,
		Signals: []string{"text", "url"},
		Payload: []byte(`{"indices":[1],"values":[2.5]}`),
	}
}

func TestFSRegistryLifecycle(t *testing.T) {
	fs := dfs.NewMem()
	reg, err := OpenFSRegistry(fs, "serving")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := reg.Stage(artifactFixture("m"))
	if err != nil || v1.Version != 1 {
		t.Fatalf("stage v1: %v, %v", v1, err)
	}
	v2, _ := reg.Stage(artifactFixture("m"))
	if v2.Version != 2 {
		t.Fatalf("stage v2 got version %d", v2.Version)
	}
	if _, err := reg.Live("m"); err == nil {
		t.Error("live before promote")
	}
	if err := reg.Promote("m", 2); err != nil {
		t.Fatal(err)
	}
	live, err := reg.Live("m")
	if err != nil || live.Version != 2 || live.Threshold != 0.5 {
		t.Fatalf("live = %+v, %v", live, err)
	}
	if err := reg.Rollback("m"); err != nil {
		t.Fatal(err)
	}
	if live, _ := reg.Live("m"); live.Version != 1 {
		t.Errorf("after rollback version = %d", live.Version)
	}
	if err := reg.Rollback("m"); err == nil {
		t.Error("rollback past v1 accepted")
	}
	if got := reg.Versions("m"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("versions = %v", got)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "m" {
		t.Errorf("names = %v", names)
	}
}

func TestFSRegistryPromoteNeverStaged(t *testing.T) {
	reg, _ := OpenFSRegistry(dfs.NewMem(), "serving")
	if err := reg.Promote("ghost", 1); err == nil {
		t.Error("promoted a model line that was never staged")
	}
	if _, err := reg.Stage(artifactFixture("m")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("m", 7); err == nil {
		t.Error("promoted a version that was never staged")
	}
}

func TestFSRegistryRejectsBadNames(t *testing.T) {
	reg, _ := OpenFSRegistry(dfs.NewMem(), "serving")
	if _, err := reg.Stage(&Artifact{}); err == nil {
		t.Error("anonymous artifact accepted")
	}
	if _, err := reg.Stage(artifactFixture("a/b")); err == nil {
		t.Error("path-traversing name accepted")
	}
}

// TestFSRegistrySurvivesRestart is the daemon-restart story: a fresh
// registry over the same FS recovers staged versions and the live marker.
func TestFSRegistrySurvivesRestart(t *testing.T) {
	fs, err := dfs.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg1, _ := OpenFSRegistry(fs, "serving")
	if _, err := reg1.Stage(artifactFixture("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg1.Stage(artifactFixture("m")); err != nil {
		t.Fatal(err)
	}
	if err := reg1.Promote("m", 2); err != nil {
		t.Fatal(err)
	}

	reg2, _ := OpenFSRegistry(fs, "serving")
	live, err := reg2.Live("m")
	if err != nil {
		t.Fatalf("restarted registry lost live version: %v", err)
	}
	if live.Version != 2 || live.Name != "m" || len(live.Signals) != 2 {
		t.Errorf("recovered artifact = %+v", live)
	}
	if srv, err := NewServer(live); err != nil {
		t.Errorf("recovered artifact not servable: %v", err)
	} else if srv.Artifact().Version != 2 {
		t.Errorf("served version = %d", srv.Artifact().Version)
	}
	if got := reg2.Versions("m"); len(got) != 2 {
		t.Errorf("recovered versions = %v", got)
	}
}

func TestFSRegistryConcurrentStage(t *testing.T) {
	reg, _ := OpenFSRegistry(dfs.NewMem(), "serving")
	const n = 16
	var wg sync.WaitGroup
	versions := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := reg.Stage(artifactFixture("m"))
			if err != nil {
				t.Error(err)
				return
			}
			versions[i] = a.Version
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, v := range versions {
		if seen[v] {
			t.Fatalf("version %d assigned twice", v)
		}
		seen[v] = true
	}
	if got := reg.Versions("m"); len(got) != n {
		t.Errorf("staged %d versions, listed %d", n, len(got))
	}
}

func TestHandleHotSwapKeepsInFlightConsistent(t *testing.T) {
	mk := func(version int, weight string) *Server {
		a := artifactFixture("m")
		a.Version = version
		a.Payload = []byte(`{"indices":[1],"values":[` + weight + `]}`)
		srv, err := NewServer(a)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	h, err := NewHandle(mk(1, "2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHandle(nil); err == nil {
		t.Error("nil server accepted")
	}
	x := &features.SparseVector{Indices: []uint32{1}, Values: []float64{1}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A request scores against one snapshot for its whole
				// lifetime: the score may not change under its feet even
				// when swaps land mid-request.
				srv := h.Current()
				score := srv.Score(x)
				if got := srv.Score(x); got != score {
					t.Errorf("score changed under one snapshot: %v then %v", score, got)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			h.Swap(mk(2, "-2"))
		} else {
			h.Swap(mk(1, "2"))
		}
	}
	close(stop)
	wg.Wait()
	if h.Swaps() != 200 {
		t.Errorf("swaps = %d, want 200", h.Swaps())
	}
	if v := h.Version(); v != 1 {
		t.Errorf("final version = %d, want 1", v)
	}
}
