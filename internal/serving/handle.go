package serving

import (
	"fmt"
	"sync/atomic"
)

// Handle is the lock-free hot-swap point between the promotion workflow and
// the request path. Request handlers load the current *Server with a single
// atomic pointer read and keep scoring against that snapshot; Promote swaps
// in the next version without blocking them, so in-flight requests finish on
// the version they started with and later requests see the new one. No
// request ever observes a half-swapped state.
type Handle struct {
	p     atomic.Pointer[Server]
	swaps atomic.Int64
}

// NewHandle returns a handle serving srv.
func NewHandle(srv *Server) (*Handle, error) {
	if srv == nil {
		return nil, fmt.Errorf("serving: NewHandle(nil)")
	}
	h := &Handle{}
	h.p.Store(srv)
	return h, nil
}

// Current returns the server snapshot to score this request against. The
// caller must use the returned server for the whole request (or batch) so
// featurization and scoring agree on one model version.
func (h *Handle) Current() *Server { return h.p.Load() }

// Swap atomically replaces the served model and returns the previous one.
// Swapping nil is a programming error and panics rather than taking the
// request path down to a nil server.
func (h *Handle) Swap(srv *Server) *Server {
	if srv == nil {
		panic("serving: Handle.Swap(nil)")
	}
	h.swaps.Add(1)
	return h.p.Swap(srv)
}

// Version returns the live artifact version.
func (h *Handle) Version() int { return h.Current().Artifact().Version }

// Swaps returns how many promotions this handle has absorbed.
func (h *Handle) Swaps() int64 { return h.swaps.Load() }
