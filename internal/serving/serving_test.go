package serving

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/model"
)

func trainedLogReg(t *testing.T) *model.LogReg {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	m, err := model.NewLogReg(64, model.DefaultFTRL())
	if err != nil {
		t.Fatal(err)
	}
	var xs []*features.SparseVector
	var ys []float64
	for i := 0; i < 500; i++ {
		if rng.Float64() < 0.5 {
			xs = append(xs, &features.SparseVector{Indices: []uint32{1}, Values: []float64{1}})
			ys = append(ys, 0.9)
		} else {
			xs = append(xs, &features.SparseVector{Indices: []uint32{2}, Values: []float64{1}})
			ys = append(ys, 0.1)
		}
	}
	if err := m.Train(xs, ys, model.TrainConfig{Iterations: 5000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExportServeRoundTrip(t *testing.T) {
	m := trainedLogReg(t)
	art, err := ExportLogReg("clf", m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(art)
	if err != nil {
		t.Fatal(err)
	}
	posX := &features.SparseVector{Indices: []uint32{1}, Values: []float64{1}}
	negX := &features.SparseVector{Indices: []uint32{2}, Values: []float64{1}}
	if got, want := srv.Score(posX), m.Predict(posX); absf(got-want) > 1e-12 {
		t.Errorf("served score %v != training score %v", got, want)
	}
	if !srv.Classify(posX) || srv.Classify(negX) {
		t.Error("classification wrong after export")
	}
	if srv.Artifact().Name != "clf" {
		t.Error("artifact metadata lost")
	}
}

func TestNewServerRejectsBadArtifacts(t *testing.T) {
	if _, err := NewServer(&Artifact{Kind: "dnn"}); err == nil {
		t.Error("unservable kind accepted")
	}
	if _, err := NewServer(&Artifact{Kind: "logreg", Payload: []byte("{bad")}); err == nil {
		t.Error("corrupt payload accepted")
	}
	if _, err := NewServer(&Artifact{
		Kind: "logreg", FeatureDim: 2,
		Payload: []byte(`{"indices":[5],"values":[1]}`),
	}); err == nil {
		t.Error("out-of-dim index accepted")
	}
	if _, err := NewServer(&Artifact{
		Kind: "logreg", FeatureDim: 8,
		Payload: []byte(`{"indices":[1,2],"values":[1]}`),
	}); err == nil {
		t.Error("mismatched payload accepted")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	a := &Artifact{Name: "m", Kind: "logreg", FeatureDim: 4, Payload: []byte(`{}`)}
	v1, err := reg.Stage(a)
	if err != nil || v1.Version != 1 {
		t.Fatalf("stage v1: %v, %v", v1, err)
	}
	v2, _ := reg.Stage(a)
	if v2.Version != 2 {
		t.Fatalf("stage v2 got version %d", v2.Version)
	}
	if _, err := reg.Live("m"); err == nil {
		t.Error("live before promote")
	}
	if err := reg.Promote("m", 2); err != nil {
		t.Fatal(err)
	}
	live, err := reg.Live("m")
	if err != nil || live.Version != 2 {
		t.Fatalf("live = %v, %v", live, err)
	}
	if err := reg.Rollback("m"); err != nil {
		t.Fatal(err)
	}
	live, _ = reg.Live("m")
	if live.Version != 1 {
		t.Errorf("after rollback version = %d", live.Version)
	}
	if err := reg.Rollback("m"); err == nil {
		t.Error("rollback past v1 accepted")
	}
	if err := reg.Promote("m", 9); err == nil {
		t.Error("promote unknown version accepted")
	}
	if len(reg.Versions("m")) != 2 || len(reg.Names()) != 1 {
		t.Errorf("versions=%v names=%v", reg.Versions("m"), reg.Names())
	}
}

func TestRegistryRejectsAnonymous(t *testing.T) {
	if _, err := NewRegistry().Stage(&Artifact{}); err == nil {
		t.Error("anonymous artifact accepted")
	}
}

func TestValidateServable(t *testing.T) {
	ok := &Artifact{Name: "m", Signals: []string{"text", "url", "language"}}
	if err := ValidateServable(ok); err != nil {
		t.Errorf("servable signals rejected: %v", err)
	}
	event := &Artifact{Name: "m", Signals: []string{"event"}}
	if err := ValidateServable(event); err != nil {
		t.Errorf("event signals rejected: %v", err)
	}
	for _, bad := range []string{"crawler", "ner", "topicmodel", "kgraph"} {
		a := &Artifact{Name: "m", Signals: []string{"text", bad}}
		if err := ValidateServable(a); err == nil {
			t.Errorf("non-servable signal %q accepted", bad)
		}
	}
	if err := ValidateServable(&Artifact{Name: "m"}); err == nil {
		t.Error("artifact with no declared signals accepted")
	}
}

func TestServableSignalsSorted(t *testing.T) {
	got := ServableSignals()
	if len(got) != 4 {
		t.Fatalf("servable signals = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("unsorted: %v", got)
		}
	}
}

func TestScoreBatchMatchesScore(t *testing.T) {
	m := trainedLogReg(t)
	art, err := ExportLogReg("clf", m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(art)
	if err != nil {
		t.Fatal(err)
	}
	xs := []*features.SparseVector{
		{Indices: []uint32{1}, Values: []float64{1}},
		{Indices: []uint32{2}, Values: []float64{1}},
		{Indices: []uint32{1, 2}, Values: []float64{0.5, 0.5}},
		{},
	}
	batch := srv.ScoreBatch(xs)
	if len(batch) != len(xs) {
		t.Fatalf("batch scored %d of %d", len(batch), len(xs))
	}
	for i, x := range xs {
		if want := srv.Score(x); absf(batch[i]-want) > 1e-15 {
			t.Errorf("batch[%d] = %v, Score = %v", i, batch[i], want)
		}
	}
}

func TestValidateLatency(t *testing.T) {
	m := trainedLogReg(t)
	art, _ := ExportLogReg("clf", m, 0.5)
	probes := []*features.SparseVector{
		{Indices: []uint32{1}, Values: []float64{1}},
		{Indices: []uint32{2, 3}, Values: []float64{1, 1}},
	}
	if err := ValidateLatency(art, probes, time.Second); err != nil {
		t.Errorf("generous budget failed: %v", err)
	}
	if err := ValidateLatency(art, probes, time.Nanosecond); err == nil {
		t.Error("impossible budget passed")
	}
	if err := ValidateLatency(art, nil, time.Second); err == nil {
		t.Error("no probes accepted")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
